package resourcecentral_test

import (
	"bytes"
	"sync"
	"testing"

	rc "resourcecentral"
	"resourcecentral/internal/trace"
)

// The integration fixture exercises the full public flow once: generate →
// train → publish → serve → simulate.
var (
	intOnce     sync.Once
	intWorkload *rc.Workload
	intClient   *rc.Client
	intResult   *rc.PipelineResult
	intErr      error
)

func setup(t *testing.T) (*rc.Workload, *rc.Client, *rc.PipelineResult) {
	t.Helper()
	intOnce.Do(func() {
		cfg := rc.DefaultWorkloadConfig()
		cfg.Days = 12
		cfg.TargetVMs = 5000
		cfg.MaxDeploymentVMs = 200
		cfg.Seed = 99
		intWorkload, intErr = rc.GenerateWorkload(cfg)
		if intErr != nil {
			return
		}
		intClient, intResult, intErr = rc.TrainAndServe(intWorkload.Trace, rc.PipelineConfig{
			TrainCutoff:    intWorkload.Trace.Horizon * 2 / 3,
			ForestTrees:    10,
			ForestMaxDepth: 10,
			GBTRounds:      12,
			Seed:           1,
		})
	})
	if intErr != nil {
		t.Fatal(intErr)
	}
	return intWorkload, intClient, intResult
}

func TestEndToEndPredictions(t *testing.T) {
	workload, client, result := setup(t)

	if got := len(client.AvailableModels()); got != 6 {
		t.Fatalf("available models = %d, want 6", got)
	}

	// Predict for every held-out VM of known subscriptions; predictions
	// must be well-formed and mostly confident.
	tr := workload.Trace
	tried, ok, confident := 0, 0, 0
	for i := range tr.VMs {
		v := &tr.VMs[i]
		if v.Created < tr.Horizon*2/3 {
			continue
		}
		in := rc.InputsFromVM(v, 1)
		pred, err := client.PredictSingle(rc.Lifetime.String(), &in)
		if err != nil {
			t.Fatal(err)
		}
		tried++
		if pred.OK {
			ok++
			if pred.Score >= 0.6 {
				confident++
			}
		}
		if tried == 1000 {
			break
		}
	}
	if tried == 0 {
		t.Fatal("no held-out VMs")
	}
	if frac := float64(ok) / float64(tried); frac < 0.5 {
		t.Errorf("prediction coverage = %.2f, want >= 0.5", frac)
	}
	if confident == 0 {
		t.Error("no confident predictions at all")
	}
	_ = result
}

func TestEndToEndSimulation(t *testing.T) {
	workload, client, _ := setup(t)
	tr := workload.Trace

	shape := rc.ClusterConfig{
		Servers: 64, CoresPerServer: 16, MemGBPerServer: 112,
		MaxOversub: 1.25, MaxUtil: 1.0,
	}
	baseCfg := rc.SimConfig{Cluster: shape}
	baseCfg.Cluster.Policy = rc.PolicyBaseline
	base, err := rc.Simulate(tr, baseCfg)
	if err != nil {
		t.Fatal(err)
	}
	rcCfg := rc.SimConfig{Cluster: shape, Predictor: rc.NewClientPredictor(client)}
	rcCfg.Cluster.Policy = rc.PolicyRCSoft
	rcSoft, err := rc.Simulate(tr, rcCfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.Arrivals != rcSoft.Arrivals {
		t.Errorf("arrival counts differ: %d vs %d", base.Arrivals, rcSoft.Arrivals)
	}
	// Baseline never exceeds physical capacity.
	if base.ReadingsAbove100 != 0 {
		t.Errorf("baseline produced %d readings above 100%%", base.ReadingsAbove100)
	}
	// RC-informed oversubscription keeps exhaustion rare: well under 0.1%
	// of busy readings (the paper reports 77 readings over a month across
	// 880 servers).
	if rcSoft.BusyReadings > 0 {
		frac := float64(rcSoft.ReadingsAbove100) / float64(rcSoft.BusyReadings)
		if frac > 0.001 {
			t.Errorf("rc-soft exhaustion fraction %.5f too high", frac)
		}
	}
}

func TestTraceCSVRoundTripThroughPublicTypes(t *testing.T) {
	workload, _, _ := setup(t)
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, workload.Trace); err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.VMs) != len(workload.Trace.VMs) {
		t.Fatalf("round trip lost VMs: %d vs %d", len(got.VMs), len(workload.Trace.VMs))
	}
	for i := range got.VMs {
		if got.VMs[i] != workload.Trace.VMs[i] {
			t.Fatalf("vm %d mismatch after round trip", i)
		}
	}
}

func TestPredictManyMatchesSingle(t *testing.T) {
	workload, client, result := setup(t)
	tr := workload.Trace
	var inputs []*rc.ClientInputs
	for i := range tr.VMs {
		v := &tr.VMs[i]
		if _, known := result.Features[v.Subscription]; known && v.Created >= tr.Horizon*2/3 {
			in := rc.InputsFromVM(v, 1)
			inputs = append(inputs, &in)
		}
		if len(inputs) == 50 {
			break
		}
	}
	many, err := client.PredictMany(rc.P95CPU.String(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range inputs {
		single, err := client.PredictSingle(rc.P95CPU.String(), in)
		if err != nil {
			t.Fatal(err)
		}
		if single.Bucket != many[i].Bucket || single.OK != many[i].OK {
			t.Errorf("input %d: single %+v != many %+v", i, single, many[i])
		}
	}
}
