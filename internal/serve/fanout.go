package serve

import (
	"sync"

	"resourcecentral/internal/obs"
	"resourcecentral/internal/store"
)

// Event is one model/feature-data version change pushed to subscribers.
// Seq is a hub-local monotonically increasing sequence number, so a
// reconnecting client can tell whether it missed events while away.
type Event struct {
	Key     string `json:"key"`
	Version int    `json:"version"`
	Seq     uint64 `json:"seq"`
}

// Subscriber is one registered event consumer. Read events from C; a
// closed C means the hub dropped the subscriber (it fell behind by more
// than its buffer, or the hub closed) and the consumer should
// re-subscribe and force-refresh its caches.
type Subscriber struct {
	C <-chan Event
	c chan Event
}

// Hub fans store publish notifications out to many subscribers — the
// paper's push-based cache maintenance (Section 4.2) at serving scale:
// instead of every fabric-controller client holding its own store
// subscription, the serving tier holds one and re-broadcasts.
//
// Broadcast never blocks on a consumer: a subscriber whose buffer is
// full is dropped (its channel closed) rather than queued behind,
// so one stalled client cannot delay invalidation for the fleet. The
// dropped client detects the closed channel and recovers by
// re-subscribing, mirroring the client library's force_reload_cache
// path after a missed push.
type Hub struct {
	buffer int

	notif chan store.Notification
	st    *store.Store

	mu   sync.Mutex
	subs []*Subscriber
	seq  uint64

	done   chan struct{}
	closed bool
	wg     sync.WaitGroup

	sent     obs.Counter
	droppedC obs.Counter
}

// NewHub subscribes to st's publish notifications and starts the
// broadcast goroutine. buffer is each subscriber's event buffer
// (minimum 1); reg receives the fan-out metrics (nil disables).
func NewHub(st *store.Store, buffer int, reg *obs.Registry) *Hub {
	if buffer < 1 {
		buffer = 1
	}
	h := &Hub{
		buffer: buffer,
		st:     st,
		// Deep enough that a whole republish burst (one notification
		// per store key) queues here instead of being dropped by the
		// store's non-blocking send.
		notif: make(chan store.Notification, 8192),
		done:  make(chan struct{}),
		sent: reg.Counter("rc_serve_events_sent_total",
			"Invalidation events delivered to serve-tier subscribers."),
		droppedC: reg.Counter("rc_serve_subscribers_dropped_total",
			"Subscribers dropped for falling behind the broadcast."),
	}
	reg.GaugeFunc("rc_serve_subscribers",
		"Live serve-tier invalidation subscribers.",
		func() float64 {
			h.mu.Lock()
			defer h.mu.Unlock()
			return float64(len(h.subs))
		})
	st.Subscribe(h.notif)
	h.wg.Add(1)
	go h.loop()
	return h
}

// Subscribe registers a new consumer.
func (h *Hub) Subscribe() *Subscriber {
	sub := &Subscriber{c: make(chan Event, h.buffer)}
	sub.C = sub.c
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		close(sub.c)
		return sub
	}
	h.subs = append(h.subs, sub)
	return sub
}

// Unsubscribe detaches a consumer and closes its channel. Safe to call
// after the hub already dropped the subscriber.
func (h *Hub) Unsubscribe(sub *Subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.removeLocked(sub)
}

// removeLocked detaches sub if still attached, closing its channel
// exactly once (only the remover closes; both drop paths hold mu).
func (h *Hub) removeLocked(sub *Subscriber) {
	for i, s := range h.subs {
		if s == sub {
			h.subs = append(h.subs[:i], h.subs[i+1:]...)
			close(sub.c)
			return
		}
	}
}

// Subscribers reports the live subscriber count.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// loop receives store notifications and broadcasts them.
func (h *Hub) loop() {
	defer h.wg.Done()
	for {
		select {
		case <-h.done:
			return
		case n := <-h.notif:
			h.broadcast(n)
		}
	}
}

// broadcast delivers one event to every subscriber, dropping those
// whose buffers are full. It holds mu for the (non-blocking) sends, so
// Subscribe/Unsubscribe order cleanly against the event stream.
func (h *Hub) broadcast(n store.Notification) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.seq++
	ev := Event{Key: n.Key, Version: n.Version, Seq: h.seq}
	live := h.subs[:0]
	for _, sub := range h.subs {
		select {
		case sub.c <- ev:
			h.sent.Inc()
			live = append(live, sub)
		default:
			// Fell behind: drop the consumer, never the publisher.
			close(sub.c)
			h.droppedC.Inc()
		}
	}
	// Clear the tail so dropped subscribers are collectable.
	for i := len(live); i < len(h.subs); i++ {
		h.subs[i] = nil
	}
	h.subs = live
}

// Close detaches from the store, stops the broadcast loop and closes
// every subscriber channel. Idempotent.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	h.mu.Unlock()

	h.st.Unsubscribe(h.notif)
	close(h.done)
	h.wg.Wait()

	h.mu.Lock()
	defer h.mu.Unlock()
	for _, sub := range h.subs {
		close(sub.c)
	}
	h.subs = nil
}
