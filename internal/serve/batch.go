package serve

import (
	"errors"
	"time"

	"resourcecentral/internal/model"
)

// batchLoop is the aggregation goroutine: it accumulates leader calls
// into per-model groups and flushes a group into one upstream
// PredictMany call when it reaches Config.MaxBatch or when the
// aggregation window (Config.MaxDelay, armed at the first pending
// arrival) expires. Flushes execute in their own goroutines so a slow
// upstream call never stalls aggregation of the next window.
func (t *Tier) batchLoop() {
	defer t.wg.Done()

	groups := make(map[string][]*call)
	pending := 0

	// timer is armed iff timerC is non-nil; it is started when the
	// first call of an empty tier arrives and drained on expiry. A
	// max-batch flush may leave it armed with nothing pending — the
	// subsequent no-op expiry just disarms it.
	var timer *time.Timer
	var timerC <-chan time.Time

	flush := func(modelName string) {
		calls := groups[modelName]
		if len(calls) == 0 {
			return
		}
		delete(groups, modelName)
		pending -= len(calls)
		t.startBatch(modelName, calls)
	}
	flushAll := func() {
		// Models flush in insertion-agnostic order; each group is an
		// independent upstream call, so order carries no semantics.
		for name := range groups { //rcvet:allow(each flushed group is independent; no cross-group state accumulates in map order)
			flush(name)
		}
	}

	for {
		select {
		case <-t.done:
			// Fail everything still pending or queued so no waiter
			// blocks past Close.
			for _, calls := range groups { //rcvet:allow(shutdown fan-out; per-call completion is order-independent)
				for _, c := range calls {
					t.failCall(c, ErrClosed)
				}
			}
			for {
				select {
				case c := <-t.in:
					t.failCall(c, ErrClosed)
				default:
					if timer != nil {
						timer.Stop()
					}
					return
				}
			}
		case c := <-t.in:
			groups[c.key.model] = append(groups[c.key.model], c)
			pending++
			if len(groups[c.key.model]) >= t.cfg.MaxBatch {
				flush(c.key.model)
			} else if timerC == nil {
				if timer == nil {
					timer = time.NewTimer(t.cfg.MaxDelay)
				} else {
					timer.Reset(t.cfg.MaxDelay)
				}
				timerC = timer.C
			}
		case <-timerC:
			timerC = nil
			flushAll()
		}
	}
}

// startBatch executes one aggregated upstream call in its own
// goroutine (joined by t.wg in Close) and completes every member call.
func (t *Tier) startBatch(modelName string, calls []*call) {
	t.obs.batches.Inc()
	t.obs.batchSize.Observe(float64(len(calls)))
	t.wg.Add(1)
	//rcvet:allow(joined by t.wg in Close and bounded by the upstream store latency; the BatchPredictor API carries no context to cancel mid-flight)
	go func() {
		defer t.wg.Done()
		now := time.Now()
		for _, c := range calls {
			t.obs.batchWait.Observe(now.Sub(c.enqueued).Seconds())
		}
		ins := make([]*model.ClientInputs, len(calls))
		for i, c := range calls {
			ins[i] = c.in
		}
		start := time.Now()
		preds, err := t.cfg.Upstream.PredictMany(modelName, ins)
		t.obs.upstreamSeconds.ObserveSince(start)
		if err == nil && len(preds) != len(calls) {
			err = errUpstreamShape
		}
		for i, c := range calls {
			if err != nil {
				t.failCall(c, err)
				continue
			}
			t.co.remove(c.key)
			c.pred = preds[i]
			close(c.done)
		}
	}()
}

// failCall completes a call with an error, releasing its coalescer key
// first so new arrivals start a fresh flight.
func (t *Tier) failCall(c *call, err error) {
	t.co.remove(c.key)
	c.err = err
	close(c.done)
}

// errUpstreamShape guards against a misbehaving BatchPredictor returning
// the wrong number of results.
var errUpstreamShape = errors.New("serve: upstream returned mismatched batch length")
