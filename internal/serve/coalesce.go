package serve

import (
	"sync"
	"time"

	"resourcecentral/internal/core"
	"resourcecentral/internal/model"
)

// reqKey identifies one coalescable request: the model name plus the
// client library's own result-cache hash of the inputs. Two requests
// with equal keys would probe the same result-cache slot, so answering
// both from one upstream call preserves the sequential semantics
// exactly (the second would have been a cache hit anyway).
type reqKey struct {
	model string
	hash  uint64
}

// requestKey derives the coalescing key. It runs once per arriving
// request — at fleet request rates this is the tier's hottest
// instruction path, so it must stay allocation-free end to end
// (core.Key → ClientInputs.CacheKey are hotpath-certified; the struct
// literal stays in registers).
//
//rcvet:hotpath
func requestKey(modelName string, in *model.ClientInputs) reqKey {
	return reqKey{model: modelName, hash: core.Key(modelName, in)}
}

// call is one coalesced in-flight prediction: the leader's request plus
// every follower waiting on it. pred/err/degraded are written exactly
// once, before done is closed; waiters read them only after <-done.
type call struct {
	key reqKey
	in  *model.ClientInputs

	// enqueued stamps the hand-off to the batcher, feeding the
	// batch-wait histogram.
	enqueued time.Time

	pred     core.Prediction
	err      error
	degraded bool
	done     chan struct{}
}

// coalescer is a singleflight group keyed by reqKey. The first joiner
// of a key becomes the leader (responsible for feeding the batcher);
// later joiners attach to the leader's call. Keys are removed before
// the call completes, so a request arriving after completion starts a
// fresh flight instead of reading a stale result.
type coalescer struct {
	mu    sync.Mutex
	calls map[reqKey]*call
}

func newCoalescer() coalescer {
	return coalescer{calls: make(map[reqKey]*call)}
}

// join returns the in-flight call for key, creating it (leader=true) if
// none exists.
func (co *coalescer) join(key reqKey, modelName string, in *model.ClientInputs) (*call, bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if c, ok := co.calls[key]; ok {
		return c, false
	}
	c := &call{key: key, in: in, done: make(chan struct{})}
	co.calls[key] = c
	return c, true
}

// remove clears the key's flight. Callers must remove before closing
// the call's done channel.
func (co *coalescer) remove(key reqKey) {
	co.mu.Lock()
	delete(co.calls, key)
	co.mu.Unlock()
}

// size reports the number of in-flight coalesced keys.
func (co *coalescer) size() int {
	co.mu.Lock()
	defer co.mu.Unlock()
	return len(co.calls)
}
