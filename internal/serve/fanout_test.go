package serve

import (
	"sync"
	"testing"
	"time"

	"resourcecentral/internal/obs"
	"resourcecentral/internal/store"
)

func newTestHub(t *testing.T, buffer int) (*Hub, *store.Store, *obs.Registry) {
	t.Helper()
	st := store.New()
	reg := obs.NewRegistry()
	h := NewHub(st, buffer, reg)
	t.Cleanup(h.Close)
	return h, st, reg
}

func recvEvent(t *testing.T, sub *Subscriber) (Event, bool) {
	t.Helper()
	select {
	case ev, ok := <-sub.C:
		return ev, ok
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for event")
		return Event{}, false
	}
}

// TestFanoutDeliversToAll: one store publish reaches every subscriber.
func TestFanoutDeliversToAll(t *testing.T) {
	h, st, _ := newTestHub(t, 8)
	const n = 10
	subs := make([]*Subscriber, n)
	for i := range subs {
		subs[i] = h.Subscribe()
	}

	if _, err := st.Put("model/lifetime", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	for i, sub := range subs {
		ev, ok := recvEvent(t, sub)
		if !ok {
			t.Fatalf("subscriber %d dropped", i)
		}
		if ev.Key != "model/lifetime" || ev.Version != 1 || ev.Seq == 0 {
			t.Errorf("subscriber %d event = %+v", i, ev)
		}
	}
}

// TestFanoutDropsSlowConsumer: a subscriber that stops reading is
// dropped (channel closed) and the publisher never blocks.
func TestFanoutDropsSlowConsumer(t *testing.T) {
	h, st, _ := newTestHub(t, 1)
	slow := h.Subscribe()
	fast := h.Subscribe()

	// Publish more than the slow subscriber's buffer without reading it.
	// Put must return promptly every time (drop the consumer, never
	// block the publisher).
	for i := 0; i < 3; i++ {
		done := make(chan struct{})
		go func() {
			defer close(done)
			if _, err := st.Put("model/lifetime", []byte{byte(i)}); err != nil {
				t.Error(err)
			}
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("publish blocked on a slow subscriber")
		}
		// The fast consumer keeps reading, so only the slow one lags.
		if _, ok := recvEvent(t, fast); !ok {
			t.Fatal("fast subscriber dropped")
		}
	}

	// The slow subscriber eventually sees: its one buffered event, then
	// a closed channel.
	deadline := time.Now().Add(5 * time.Second)
	closed := false
	for !closed {
		select {
		case _, ok := <-slow.C:
			closed = !ok
		default:
			if time.Now().After(deadline) {
				t.Fatal("slow subscriber never dropped")
			}
			time.Sleep(time.Millisecond)
		}
	}
	if h.Subscribers() != 1 {
		t.Errorf("subscribers = %d, want 1 (slow one removed)", h.Subscribers())
	}
}

// TestFanoutSequenceIncreases: events carry increasing sequence numbers
// so reconnecting clients can detect gaps.
func TestFanoutSequenceIncreases(t *testing.T) {
	h, st, _ := newTestHub(t, 16)
	sub := h.Subscribe()
	for i := 0; i < 3; i++ {
		if _, err := st.Put("featuredata/all", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var last uint64
	for i := 0; i < 3; i++ {
		ev, ok := recvEvent(t, sub)
		if !ok {
			t.Fatal("subscriber dropped")
		}
		if ev.Seq <= last {
			t.Errorf("event %d: seq %d not increasing past %d", i, ev.Seq, last)
		}
		last = ev.Seq
	}
}

// TestUnsubscribe: detaching closes the channel and stops delivery.
func TestUnsubscribe(t *testing.T) {
	h, st, _ := newTestHub(t, 4)
	sub := h.Subscribe()
	h.Unsubscribe(sub)
	if _, ok := <-sub.C; ok {
		t.Fatal("unsubscribed channel still open")
	}
	if _, err := st.Put("model/lifetime", []byte("x")); err != nil {
		t.Fatal(err)
	}
	h.Unsubscribe(sub) // double-unsubscribe is a no-op
}

// TestHubCloseClosesSubscribers: Close ends every subscriber stream and
// is idempotent; Subscribe afterwards yields an already-closed channel.
func TestHubCloseClosesSubscribers(t *testing.T) {
	st := store.New()
	h := NewHub(st, 4, obs.NewRegistry())
	sub := h.Subscribe()
	h.Close()
	if _, ok := <-sub.C; ok {
		t.Fatal("subscriber channel open after hub close")
	}
	h.Close()
	if _, ok := <-h.Subscribe().C; ok {
		t.Fatal("post-close Subscribe returned a live channel")
	}
}

// TestFanoutConcurrentChurn: subscribes, reads and publishes racing —
// exercised for the -race suite; nothing must deadlock or panic.
func TestFanoutConcurrentChurn(t *testing.T) {
	h, st, _ := newTestHub(t, 2)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				sub := h.Subscribe()
				select {
				case <-sub.C:
				case <-time.After(time.Millisecond):
				}
				h.Unsubscribe(sub)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 50; j++ {
			if _, err := st.Put("model/lifetime", []byte{byte(j)}); err != nil {
				t.Error(err)
			}
		}
	}()
	wg.Wait()
}
