// Package serve is the fleet-scale prediction serving tier: the layer
// between the HTTP surface (cmd/rcserve) and the Resource Central client
// library (internal/core). The paper's RC instance answers prediction
// requests from every fabric controller in an Azure datacenter
// (Section 4.2); at that rate the server cannot afford one upstream model
// execution per arriving request, cannot queue unboundedly under
// overload, and cannot let each client poll the store for model-version
// changes. The tier therefore composes four mechanisms:
//
//   - Request coalescing (coalesce.go): concurrent identical lookups —
//     same model, same client inputs, keyed by core.Key — collapse onto
//     one in-flight upstream call. N callers, one prediction.
//   - Server-side batching (batch.go): distinct in-flight lookups that
//     arrive within a small window (Config.MaxDelay, capped at
//     Config.MaxBatch) are aggregated into a single PredictMany call,
//     which amortizes lock traffic and featurization scratch across the
//     batch exactly as the client library's batch path was built for.
//   - Admission control (this file): a bounded in-flight budget
//     (Config.MaxInFlight). Over budget the tier degrades gracefully —
//     it answers immediately with the paper's no-prediction flag
//     (Section 4.2: callers must always handle a no-prediction) instead
//     of queueing, so overload raises the shed rate, not the tail
//     latency. Shed and degraded counts are exported via obs.
//   - Push invalidation fan-out (fanout.go): a Hub broadcasts store
//     publish notifications (new model versions) to many subscribed
//     clients, the paper's push cache mode at serving scale.
//
// The tier is deliberately model-agnostic: its upstream is the
// core.BatchPredictor hook, so tests drive it with counting fakes and
// cmd/rcserve drives it with a *core.Client.
package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"resourcecentral/internal/core"
	"resourcecentral/internal/model"
	"resourcecentral/internal/obs"
)

// ReasonShed is the Prediction.Reason of responses degraded by admission
// control. Callers treat it like any other no-prediction (the scheduler
// assumes 100% utilization); load generators use it to split shed
// responses from model-level no-predictions.
const ReasonShed = "shed: serving tier over capacity"

// DegradedHeader is the HTTP response header rcserve sets on responses
// the tier degraded (value: "shed"). It lets thin clients detect
// degradation without parsing the body.
const DegradedHeader = "X-RC-Degraded"

// ErrClosed is returned by Predict and PredictBatch after Close.
var ErrClosed = errors.New("serve: tier closed")

// Config configures a Tier.
type Config struct {
	// Upstream executes the aggregated predictions. Required; cmd/rcserve
	// passes the *core.Client.
	Upstream core.BatchPredictor
	// MaxBatch bounds the distinct lookups aggregated into one upstream
	// PredictMany call (0 = 64). A full group flushes immediately.
	MaxBatch int
	// MaxDelay is the batch aggregation window: the longest a lookup
	// waits for companions before its group flushes (0 = 500µs).
	MaxDelay time.Duration
	// MaxInFlight is the admission budget: requests admitted and not yet
	// answered, across Predict and PredictBatch items (0 = 4096). Beyond
	// it, requests are shed with ReasonShed.
	MaxInFlight int
	// QueueCap bounds the batcher's input queue (0 = MaxInFlight). A
	// full queue sheds like an exhausted admission budget.
	QueueCap int
	// Obs receives the tier's metrics; nil disables recording.
	Obs *obs.Registry
}

// Result is the tier's answer to one prediction request.
type Result struct {
	core.Prediction
	// Degraded marks responses produced without consulting the model:
	// admission control shed the request and answered with the
	// no-prediction flag.
	Degraded bool
	// Coalesced marks responses served by another concurrent identical
	// request's upstream call.
	Coalesced bool
}

// Tier is the serving tier. It is safe for concurrent use; create with
// New and release with Close.
type Tier struct {
	cfg Config
	obs *tierMetrics

	co coalescer

	// in feeds the batcher goroutine; each element is one coalesced
	// leader call awaiting aggregation.
	in chan *call

	inflight atomic.Int64

	done   chan struct{}
	closed atomic.Bool
	// wg joins every goroutine the tier starts: the batcher loop and the
	// per-batch upstream completion goroutines.
	wg sync.WaitGroup
}

// New creates a serving tier over cfg.Upstream and starts its batcher.
func New(cfg Config) (*Tier, error) {
	if cfg.Upstream == nil {
		return nil, errors.New("serve: Config.Upstream is required")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 500 * time.Microsecond
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4096
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = cfg.MaxInFlight
	}
	t := &Tier{
		cfg:  cfg,
		obs:  newTierMetrics(cfg.Obs),
		co:   newCoalescer(),
		in:   make(chan *call, cfg.QueueCap),
		done: make(chan struct{}),
	}
	t.obs.registerInflight(&t.inflight)
	t.wg.Add(1)
	go t.batchLoop()
	return t, nil
}

// Close stops the batcher and its in-flight upstream calls' completion
// goroutines. Requests still waiting are answered with ErrClosed. Close
// is idempotent.
func (t *Tier) Close() {
	if !t.closed.CompareAndSwap(false, true) {
		return
	}
	close(t.done)
	t.wg.Wait()
}

// Predict answers one prediction request through admission control, the
// coalescer and the batcher. ctx cancellation abandons the wait (the
// upstream call still completes and serves any coalesced companions).
// Degraded results report the shed, not an error.
func (t *Tier) Predict(ctx context.Context, modelName string, in *model.ClientInputs) (Result, error) {
	if in == nil {
		return Result{}, errors.New("serve: nil client inputs")
	}
	n := t.inflight.Add(1)
	defer t.inflight.Add(-1)
	if n > int64(t.cfg.MaxInFlight) {
		return t.shed(shedAdmission), nil
	}
	c, leader := t.join(modelName, in)
	if leader && !t.enqueue(c) {
		return t.shed(shedQueue), nil
	}
	return t.await(ctx, c, leader)
}

// PredictBatch answers a batch of requests (the POST /predict path).
// Each input is admitted individually against the shared budget and
// routed through the same coalescer and batcher as single lookups, so
// identical inputs — within the batch or across concurrent requests —
// still cost one upstream prediction. Entry i corresponds to ins[i].
func (t *Tier) PredictBatch(ctx context.Context, modelName string, ins []*model.ClientInputs) ([]Result, error) {
	for _, in := range ins {
		if in == nil {
			return nil, errors.New("serve: nil client inputs in batch")
		}
	}
	n := t.inflight.Add(int64(len(ins)))
	defer t.inflight.Add(int64(-len(ins)))

	out := make([]Result, len(ins))
	calls := make([]*call, len(ins))
	leaders := make([]bool, len(ins))

	// Issue pass: admit and enqueue every input before waiting on any,
	// so the whole batch shares one aggregation window instead of
	// serializing window after window.
	admitted := int64(t.cfg.MaxInFlight) - (n - int64(len(ins)))
	for i, in := range ins {
		if int64(i) >= admitted {
			out[i] = t.shed(shedAdmission)
			continue
		}
		c, leader := t.join(modelName, in)
		if leader && !t.enqueue(c) {
			out[i] = t.shed(shedQueue)
			continue
		}
		calls[i], leaders[i] = c, leader
	}

	// Wait pass.
	for i, c := range calls {
		if c == nil {
			continue // shed above
		}
		r, err := t.await(ctx, c, leaders[i])
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// join registers the request with the coalescer, becoming the leader for
// its key or a follower of an identical in-flight request.
func (t *Tier) join(modelName string, in *model.ClientInputs) (*call, bool) {
	c, leader := t.co.join(requestKey(modelName, in), modelName, in)
	if leader {
		t.obs.coalesceLeaders.Inc()
	} else {
		t.obs.coalesceFollowers.Inc()
	}
	return c, leader
}

// enqueue hands a leader call to the batcher. A full queue fails the
// call for every joined waiter (sheds) and reports false.
func (t *Tier) enqueue(c *call) bool {
	c.enqueued = time.Now()
	select {
	case t.in <- c:
		return true
	default:
		// The batcher is saturated beyond its queue: complete the call
		// as shed so followers that already joined degrade too, and
		// clear the key so later arrivals get a fresh attempt.
		t.co.remove(c.key)
		c.pred = core.Prediction{OK: false, Reason: ReasonShed}
		c.degraded = true
		close(c.done)
		return false
	}
}

// await blocks until the call completes, the caller's ctx is canceled,
// or the tier closes.
func (t *Tier) await(ctx context.Context, c *call, leader bool) (Result, error) {
	select {
	case <-c.done:
		if c.err != nil {
			return Result{}, c.err
		}
		if c.degraded {
			t.obs.degraded.Inc()
			return Result{Prediction: c.pred, Degraded: true}, nil
		}
		return Result{Prediction: c.pred, Coalesced: !leader}, nil
	case <-ctx.Done():
		return Result{}, ctx.Err()
	case <-t.done:
		return Result{}, ErrClosed
	}
}

// shed produces the degraded no-prediction response and counts it.
func (t *Tier) shed(reason string) Result {
	t.obs.shedFor(reason).Inc()
	t.obs.degraded.Inc()
	return Result{
		Prediction: core.Prediction{OK: false, Reason: ReasonShed},
		Degraded:   true,
	}
}
