package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"resourcecentral/internal/core"
	"resourcecentral/internal/model"
	"resourcecentral/internal/obs"
)

// fakeUpstream is a counting core.BatchPredictor. When gate is non-nil,
// PredictMany blocks until the gate closes, so tests can hold flights
// in-flight while more requests join them.
type fakeUpstream struct {
	gate chan struct{}
	err  error

	mu         sync.Mutex
	calls      int
	inputs     int
	batchSizes []int
}

func (f *fakeUpstream) PredictMany(modelName string, ins []*model.ClientInputs) ([]core.Prediction, error) {
	if f.gate != nil {
		<-f.gate
	}
	f.mu.Lock()
	f.calls++
	f.inputs += len(ins)
	f.batchSizes = append(f.batchSizes, len(ins))
	f.mu.Unlock()
	if f.err != nil {
		return nil, f.err
	}
	out := make([]core.Prediction, len(ins))
	for i, in := range ins {
		out[i] = core.Prediction{OK: true, Bucket: len(in.Subscription), Score: 0.5}
	}
	return out, nil
}

func (f *fakeUpstream) stats() (calls, inputs int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls, f.inputs
}

func testInput(sub string) *model.ClientInputs {
	return &model.ClientInputs{
		Subscription: sub, VMType: "IaaS", Role: "IaaS", OS: "linux",
		Party: "third", Cores: 2, MemoryGB: 3.5, RequestedVMs: 1,
	}
}

func newTestTier(t *testing.T, cfg Config) (*Tier, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg.Obs = reg
	tier, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tier.Close)
	return tier, reg
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// TestCoalesceIdenticalLookups is the tentpole invariant: N concurrent
// identical lookups cost exactly one upstream prediction.
func TestCoalesceIdenticalLookups(t *testing.T) {
	const n = 64
	up := &fakeUpstream{gate: make(chan struct{})}
	tier, _ := newTestTier(t, Config{Upstream: up, MaxBatch: 128, MaxDelay: time.Millisecond})

	in := testInput("sub-1")
	var wg sync.WaitGroup
	results := make([]Result, n)
	errs := make([]error, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = tier.Predict(context.Background(), "lifetime", in)
		}(i)
	}

	// Hold the flight open until every request has joined it, then let
	// the single upstream call answer all of them.
	waitFor(t, "all requests joined", func() bool {
		return tier.obs.coalesceLeaders.Value()+tier.obs.coalesceFollowers.Value() == n
	})
	close(up.gate)
	wg.Wait()

	calls, inputs := up.stats()
	if calls != 1 || inputs != 1 {
		t.Fatalf("upstream saw %d calls / %d inputs, want 1/1", calls, inputs)
	}
	leaders := 0
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if !results[i].OK || results[i].Degraded {
			t.Fatalf("request %d: got %+v, want OK non-degraded", i, results[i])
		}
		if !results[i].Coalesced {
			leaders++
		}
	}
	if leaders != 1 {
		t.Errorf("leaders = %d, want 1", leaders)
	}
	if f := tier.obs.coalesceFollowers.Value(); f != n-1 {
		t.Errorf("follower counter = %d, want %d", f, n-1)
	}
	if tier.co.size() != 0 {
		t.Errorf("coalescer still tracks %d keys after completion", tier.co.size())
	}
}

// TestBatchWindowAggregates: distinct lookups inside one MaxDelay window
// land in a single upstream PredictMany.
func TestBatchWindowAggregates(t *testing.T) {
	const n = 8
	up := &fakeUpstream{}
	tier, _ := newTestTier(t, Config{Upstream: up, MaxBatch: 64, MaxDelay: 50 * time.Millisecond})

	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			r, err := tier.Predict(context.Background(), "lifetime", testInput("sub-"+string(rune('a'+i))))
			if err != nil || !r.OK {
				t.Errorf("request %d: r=%+v err=%v", i, r, err)
			}
		}(i)
	}
	wg.Wait()

	calls, inputs := up.stats()
	if inputs != n {
		t.Fatalf("upstream inputs = %d, want %d (distinct lookups must all execute)", inputs, n)
	}
	if calls != 1 {
		t.Errorf("upstream calls = %d, want 1 (one aggregated batch)", calls)
	}
}

// TestBatchMaxBatchFlushesEarly: a full group flushes immediately, long
// before the (deliberately huge) window expires.
func TestBatchMaxBatchFlushesEarly(t *testing.T) {
	const n = 4
	up := &fakeUpstream{}
	tier, _ := newTestTier(t, Config{Upstream: up, MaxBatch: n, MaxDelay: time.Hour})

	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			if _, err := tier.Predict(context.Background(), "lifetime", testInput("s"+string(rune('0'+i)))); err != nil {
				t.Errorf("request %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("full batch took %v; max-batch flush did not bypass the window", elapsed)
	}
	if calls, inputs := up.stats(); calls != 1 || inputs != n {
		t.Errorf("upstream calls/inputs = %d/%d, want 1/%d", calls, inputs, n)
	}
}

// TestBatchRespectsMaxBatch: more distinct lookups than MaxBatch split
// into several upstream calls, none exceeding the cap.
func TestBatchRespectsMaxBatch(t *testing.T) {
	const n, maxBatch = 10, 3
	up := &fakeUpstream{}
	tier, _ := newTestTier(t, Config{Upstream: up, MaxBatch: maxBatch, MaxDelay: 20 * time.Millisecond})

	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			if _, err := tier.Predict(context.Background(), "lifetime", testInput("q"+string(rune('0'+i)))); err != nil {
				t.Errorf("request %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	up.mu.Lock()
	defer up.mu.Unlock()
	if up.inputs != n {
		t.Fatalf("upstream inputs = %d, want %d", up.inputs, n)
	}
	for _, size := range up.batchSizes {
		if size > maxBatch {
			t.Errorf("batch of %d exceeds MaxBatch %d", size, maxBatch)
		}
	}
}

// TestAdmissionSheds: beyond the in-flight budget the tier answers
// immediately with the degraded no-prediction flag instead of queueing.
func TestAdmissionSheds(t *testing.T) {
	up := &fakeUpstream{gate: make(chan struct{})}
	tier, _ := newTestTier(t, Config{Upstream: up, MaxInFlight: 2, MaxBatch: 1, MaxDelay: time.Millisecond})

	var wg sync.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			defer wg.Done()
			if r, err := tier.Predict(context.Background(), "lifetime", testInput("h"+string(rune('0'+i)))); err != nil || !r.OK {
				t.Errorf("held request %d: r=%+v err=%v", i, r, err)
			}
		}(i)
	}
	waitFor(t, "both requests in flight", func() bool { return tier.inflight.Load() == 2 })

	r, err := tier.Predict(context.Background(), "lifetime", testInput("h9"))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Degraded || r.OK || r.Reason != ReasonShed {
		t.Fatalf("over-budget request = %+v, want degraded no-prediction with ReasonShed", r)
	}
	if v := tier.obs.shedFor(shedAdmission).Value(); v != 1 {
		t.Errorf("shed counter = %d, want 1", v)
	}
	if v := tier.obs.degraded.Value(); v != 1 {
		t.Errorf("degraded counter = %d, want 1", v)
	}

	close(up.gate)
	wg.Wait()
}

// TestPredictBatch: the batch entry point answers every input, coalesces
// duplicates inside the batch, and sheds the tail past the budget.
func TestPredictBatch(t *testing.T) {
	up := &fakeUpstream{}
	tier, _ := newTestTier(t, Config{Upstream: up, MaxBatch: 64, MaxDelay: 5 * time.Millisecond})

	ins := []*model.ClientInputs{
		testInput("b1"), testInput("b2"), testInput("b1"), // b1 repeats
	}
	out, err := tier.PredictBatch(context.Background(), "lifetime", ins)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d results, want 3", len(out))
	}
	for i, r := range out {
		if !r.OK || r.Degraded {
			t.Errorf("result %d = %+v, want OK", i, r)
		}
	}
	if out[0].Bucket != out[2].Bucket || out[0].Score != out[2].Score {
		t.Errorf("duplicate inputs disagree: %+v vs %+v", out[0], out[2])
	}
	if !out[2].Coalesced {
		t.Errorf("repeated input not marked coalesced: %+v", out[2])
	}
	if calls, inputs := up.stats(); calls != 1 || inputs != 2 {
		t.Errorf("upstream calls/inputs = %d/%d, want 1/2 (in-batch dedup)", calls, inputs)
	}
}

func TestPredictBatchShedsPastBudget(t *testing.T) {
	up := &fakeUpstream{}
	tier, _ := newTestTier(t, Config{Upstream: up, MaxInFlight: 2, MaxBatch: 8, MaxDelay: time.Millisecond})

	ins := []*model.ClientInputs{testInput("c1"), testInput("c2"), testInput("c3"), testInput("c4")}
	out, err := tier.PredictBatch(context.Background(), "lifetime", ins)
	if err != nil {
		t.Fatal(err)
	}
	admitted, shed := 0, 0
	for _, r := range out {
		if r.Degraded {
			shed++
			if r.Reason != ReasonShed {
				t.Errorf("shed reason = %q, want %q", r.Reason, ReasonShed)
			}
		} else if r.OK {
			admitted++
		}
	}
	if admitted != 2 || shed != 2 {
		t.Errorf("admitted/shed = %d/%d, want 2/2", admitted, shed)
	}
}

// TestContextCancelAbandonsWait: a canceled caller stops waiting but the
// flight completes for everyone else.
func TestContextCancelAbandonsWait(t *testing.T) {
	up := &fakeUpstream{gate: make(chan struct{})}
	tier, _ := newTestTier(t, Config{Upstream: up, MaxBatch: 1, MaxDelay: time.Millisecond})

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := tier.Predict(ctx, "lifetime", testInput("z1"))
		errCh <- err
	}()
	waitFor(t, "request in flight", func() bool { return tier.obs.coalesceLeaders.Value() == 1 })
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled request did not return")
	}
	close(up.gate) // let the in-flight batch goroutine finish for Close
}

// TestCloseFailsPendingWaiters: Close answers pending requests with
// ErrClosed instead of leaving them blocked.
func TestCloseFailsPendingWaiters(t *testing.T) {
	up := &fakeUpstream{}
	reg := obs.NewRegistry()
	tier, err := New(Config{Upstream: up, MaxBatch: 64, MaxDelay: time.Hour, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}

	errCh := make(chan error, 1)
	go func() {
		_, err := tier.Predict(context.Background(), "lifetime", testInput("p1"))
		errCh <- err
	}()
	waitFor(t, "request pending in batcher", func() bool { return tier.obs.coalesceLeaders.Value() == 1 })
	tier.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending request did not return after Close")
	}
	tier.Close() // idempotent
}

// TestUpstreamErrorPropagates: a failed aggregated call errors every
// member request.
func TestUpstreamErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	up := &fakeUpstream{err: boom}
	tier, _ := newTestTier(t, Config{Upstream: up, MaxBatch: 1, MaxDelay: time.Millisecond})

	if _, err := tier.Predict(context.Background(), "lifetime", testInput("e1")); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want upstream error", err)
	}
	if tier.co.size() != 0 {
		t.Errorf("failed flight leaked a coalescer key")
	}
}

// TestNoPredictionPassesThrough: a model-level no-prediction is relayed
// verbatim, not marked degraded — degradation is the tier's own signal.
func TestNoPredictionPassesThrough(t *testing.T) {
	up := &noPredictUpstream{}
	tier, _ := newTestTier(t, Config{Upstream: up, MaxBatch: 1, MaxDelay: time.Millisecond})
	r, err := tier.Predict(context.Background(), "lifetime", testInput("n1"))
	if err != nil {
		t.Fatal(err)
	}
	if r.OK || r.Degraded || r.Reason != "model lifetime not available" {
		t.Fatalf("r = %+v, want pass-through no-prediction", r)
	}
}

type noPredictUpstream struct{}

func (noPredictUpstream) PredictMany(modelName string, ins []*model.ClientInputs) ([]core.Prediction, error) {
	out := make([]core.Prediction, len(ins))
	for i := range out {
		out[i] = core.Prediction{OK: false, Reason: "model " + modelName + " not available"}
	}
	return out, nil
}

// BenchmarkServeCoalesce measures the tentpole claim: 64 concurrent
// identical lookups per round, reporting how many upstream predictions
// each round actually cost (~1, vs 64 uncoalesced).
func BenchmarkServeCoalesce(b *testing.B) {
	up := &fakeUpstream{}
	tier, err := New(Config{Upstream: up, MaxBatch: 128, MaxDelay: 200 * time.Microsecond, MaxInFlight: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	defer tier.Close()
	in := testInput("bench-sub")
	ctx := context.Background()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		wg.Add(64)
		for g := 0; g < 64; g++ {
			go func() {
				defer wg.Done()
				_, _ = tier.Predict(ctx, "lifetime", in)
			}()
		}
		wg.Wait()
	}
	b.StopTimer()
	_, inputs := up.stats()
	b.ReportMetric(float64(inputs)/float64(b.N), "upstream_preds/64req")
}
