package serve

import (
	"sync/atomic"

	"resourcecentral/internal/obs"
)

// tierMetrics holds the serving tier's obs instruments. Counter names
// follow the repo's rc_ convention; the coalesce pair makes the
// coalescing story auditable live (hit rate = followers / (leaders +
// followers)), and the shed counters are the overload signal rcload
// measures.
type tierMetrics struct {
	reg *obs.Registry

	coalesceLeaders   obs.Counter
	coalesceFollowers obs.Counter
	batches           obs.Counter
	degraded          obs.Counter
	batchSize         obs.Histogram
	batchWait         obs.Histogram
	upstreamSeconds   obs.Histogram
}

// Shed reasons (label values of rc_serve_shed_total).
const (
	shedAdmission = "admission" // in-flight budget exhausted
	shedQueue     = "queue"     // batcher input queue full
)

func newTierMetrics(reg *obs.Registry) *tierMetrics {
	return &tierMetrics{
		reg: reg,
		coalesceLeaders: reg.Counter("rc_serve_coalesce_leaders_total",
			"Requests that started a new upstream flight (coalescing leaders)."),
		coalesceFollowers: reg.Counter("rc_serve_coalesce_followers_total",
			"Requests served by joining another request's in-flight upstream call."),
		batches: reg.Counter("rc_serve_batches_total",
			"Aggregated upstream PredictMany calls issued by the batcher."),
		degraded: reg.Counter("rc_serve_degraded_total",
			"Responses answered with the no-prediction flag because the tier degraded (shed)."),
		batchSize: reg.Histogram("rc_serve_batch_size",
			"Distinct lookups per aggregated upstream call.",
			obs.ExponentialBuckets(1, 2, 12)),
		batchWait: reg.Histogram("rc_serve_batch_wait_seconds",
			"Time a leader call spent queued in the batcher before its group flushed.", nil),
		upstreamSeconds: reg.Histogram("rc_serve_upstream_seconds",
			"Latency of aggregated upstream PredictMany calls.", nil),
	}
}

// shedFor returns the shed counter labeled with the reason (constant
// label values only; cardinality is 2).
func (m *tierMetrics) shedFor(reason string) obs.Counter {
	return m.reg.Counter("rc_serve_shed_total",
		"Requests shed by admission control, by reason.", "reason", reason)
}

// registerInflight exposes the live admission count as a gauge.
func (m *tierMetrics) registerInflight(inflight *atomic.Int64) {
	m.reg.GaugeFunc("rc_serve_inflight",
		"Requests admitted and not yet answered.",
		func() float64 { return float64(inflight.Load()) })
}
