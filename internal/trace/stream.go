package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// CSVWriter writes a trace incrementally, one VM at a time, so traces
// larger than memory can be produced (the paper's dataset has tens of
// millions of VMs). The header and horizon row are emitted on the first
// Write.
type CSVWriter struct {
	cw      *csv.Writer
	horizon Minutes
	started bool
	row     []string
}

// NewCSVWriter creates a streaming writer for a trace with the given
// horizon.
func NewCSVWriter(w io.Writer, horizon Minutes) *CSVWriter {
	return &CSVWriter{
		cw:      csv.NewWriter(w),
		horizon: horizon,
		row:     make([]string, len(vmHeader)),
	}
}

// Write appends one VM record.
func (w *CSVWriter) Write(v *VM) error {
	if !w.started {
		w.started = true
		if err := w.cw.Write([]string{"#horizon", strconv.FormatInt(int64(w.horizon), 10)}); err != nil {
			return fmt.Errorf("trace: write horizon: %w", err)
		}
		if err := w.cw.Write(vmHeader); err != nil {
			return fmt.Errorf("trace: write header: %w", err)
		}
	}
	encodeVMRow(v, w.row)
	if err := w.cw.Write(w.row); err != nil {
		return fmt.Errorf("trace: write vm %d: %w", v.ID, err)
	}
	return nil
}

// Flush completes the stream. An empty trace still gets its horizon row
// and header so the output parses back as a valid zero-VM trace.
func (w *CSVWriter) Flush() error {
	if !w.started {
		w.started = true
		if err := w.cw.Write([]string{"#horizon", strconv.FormatInt(int64(w.horizon), 10)}); err != nil {
			return fmt.Errorf("trace: write horizon: %w", err)
		}
		if err := w.cw.Write(vmHeader); err != nil {
			return fmt.Errorf("trace: write header: %w", err)
		}
	}
	w.cw.Flush()
	return w.cw.Error()
}

// CSVReader reads a trace incrementally.
type CSVReader struct {
	cr      *csv.Reader
	horizon Minutes
	line    int
}

// NewCSVReader opens a stream written by WriteCSV or CSVWriter and parses
// the horizon row and header eagerly.
func NewCSVReader(r io.Reader) (*CSVReader, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	horizonRow, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read horizon: %w", err)
	}
	if len(horizonRow) != 2 || horizonRow[0] != "#horizon" {
		return nil, fmt.Errorf("trace: missing #horizon row, got %v", horizonRow)
	}
	horizon, err := strconv.ParseInt(horizonRow[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("trace: bad horizon: %w", err)
	}
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if len(header) != len(vmHeader) {
		return nil, fmt.Errorf("trace: header has %d fields, want %d", len(header), len(vmHeader))
	}
	return &CSVReader{cr: cr, horizon: Minutes(horizon), line: 2}, nil
}

// Horizon returns the trace window length.
func (r *CSVReader) Horizon() Minutes { return r.horizon }

// Read returns the next VM, or io.EOF at the end of the stream.
func (r *CSVReader) Read() (VM, error) {
	row, err := r.cr.Read()
	if err == io.EOF {
		return VM{}, io.EOF
	}
	if err != nil {
		return VM{}, fmt.Errorf("trace: line %d: %w", r.line+1, err)
	}
	r.line++
	v, err := parseVMRow(row)
	if err != nil {
		return VM{}, fmt.Errorf("trace: line %d: %w", r.line, err)
	}
	return v, nil
}

// ReadCSVColumns streams a trace CSV (the WriteCSV format) straight
// into columnar form without materializing a row []VM; the result
// equals FromTrace(ReadCSV(...)).
func ReadCSVColumns(r io.Reader) (*Columns, error) {
	cr, err := NewCSVReader(r)
	if err != nil {
		return nil, err
	}
	c := NewColumns(cr.Horizon())
	for {
		v, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		c.Append(&v)
	}
	return c, nil
}

// TranscodeCSVToColumns streams a trace CSV from r into RCTB binary
// frames on w with bounded memory (one chunk plus the dictionary),
// returning the VM count. The bytes equal
// WriteColumns(FromTrace(ReadCSV(...))).
func TranscodeCSVToColumns(w io.Writer, r io.Reader) (int, error) {
	cr, err := NewCSVReader(r)
	if err != nil {
		return 0, err
	}
	cw := NewColumnsWriter(w, cr.Horizon())
	n := 0
	for {
		v, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, errors.Join(err, cw.Close())
		}
		if err := cw.Write(&v); err != nil {
			return n, errors.Join(err, cw.Close())
		}
		n++
	}
	return n, cw.Close()
}

// TranscodeColumnsToCSV streams an RCTB binary trace from r into the
// CSV format on w, chunk by chunk through one scratch VM, returning
// the VM count.
func TranscodeColumnsToCSV(w io.Writer, r io.Reader) (int, error) {
	crr, err := NewColumnsReader(r)
	if err != nil {
		return 0, err
	}
	cw := NewCSVWriter(w, crr.Horizon())
	var v VM
	n := 0
	for {
		ch, err := crr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, err
		}
		for j := 0; j < ch.Len(); j++ {
			ch.VMAt(j, &v)
			if err := cw.Write(&v); err != nil {
				return n, err
			}
			n++
		}
	}
	return n, cw.Flush()
}

// encodeVMRow fills row with v's columns (row must have len(vmHeader)).
func encodeVMRow(v *VM, row []string) {
	deleted := int64(v.Deleted)
	if v.Deleted == NoEnd {
		deleted = -1
	}
	row[0] = strconv.FormatInt(v.ID, 10)
	row[1] = v.Subscription
	row[2] = v.Deployment
	row[3] = v.Region
	row[4] = v.Role
	row[5] = v.OS
	row[6] = v.Type.String()
	row[7] = v.Party.String()
	row[8] = strconv.FormatBool(v.Production)
	row[9] = strconv.Itoa(v.Cores)
	row[10] = strconv.FormatFloat(v.MemoryGB, 'g', -1, 64)
	row[11] = strconv.FormatInt(int64(v.Created), 10)
	row[12] = strconv.FormatInt(deleted, 10)
	row[13] = v.Util.Kind.String()
	row[14] = strconv.FormatFloat(v.Util.Base, 'g', -1, 64)
	row[15] = strconv.FormatFloat(v.Util.Amplitude, 'g', -1, 64)
	row[16] = strconv.FormatFloat(v.Util.NoiseSD, 'g', -1, 64)
	row[17] = strconv.FormatInt(v.Util.PhaseMin, 10)
	row[18] = strconv.FormatFloat(v.Util.SpikeProb, 'g', -1, 64)
	row[19] = strconv.FormatUint(v.Util.Seed, 10)
	row[20] = strconv.FormatInt(v.Util.RampLifetime, 10)
}
