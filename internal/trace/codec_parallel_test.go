package trace

import (
	"bytes"
	"errors"
	"testing"
)

// The parallel encoder must be byte-identical to the serial one for
// any worker count, including degenerate shapes (empty, exact chunk
// boundary, short tail).
func TestParallelEncodeMatchesSerial(t *testing.T) {
	for _, tr := range []*Trace{
		sampleTrace(),
		{Horizon: 77},
		genTrace(ChunkSize),
		genTrace(3*ChunkSize + 9),
	} {
		cols := FromTrace(tr)
		want, err := EncodeColumns(cols)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 2, 4, 8} {
			got, err := EncodeColumnsParallel(cols, workers)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("vms=%d workers=%d: parallel encoding differs from serial", len(tr.VMs), workers)
			}
		}
	}
}

// The parallel decoder must produce the same Columns as the serial one
// for any worker count: same horizon, same chunks, same dictionary —
// proven by re-encoding to the identical bytes.
func TestParallelDecodeMatchesSerial(t *testing.T) {
	for _, tr := range []*Trace{
		sampleTrace(),
		{Horizon: 77},
		genTrace(ChunkSize),
		genTrace(3*ChunkSize + 9),
	} {
		data, err := EncodeColumns(FromTrace(tr))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 2, 4, 8} {
			cols, err := DecodeColumnsParallel(data, workers)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			again, err := EncodeColumns(cols)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(again, data) {
				t.Fatalf("vms=%d workers=%d: parallel decode is not the serial fixpoint", len(tr.VMs), workers)
			}
			got := cols.ToTrace()
			if got.Horizon != tr.Horizon || len(got.VMs) != len(tr.VMs) {
				t.Fatalf("workers=%d: shape mismatch", workers)
			}
			for i := range tr.VMs {
				if got.VMs[i] != tr.VMs[i] {
					t.Fatalf("workers=%d: vm %d mismatch", workers, i)
				}
			}
		}
	}
}

// The parallel decoder applies the same validation as the serial path:
// every malformed input the serial decoder rejects must be rejected,
// and on byte flips the two must agree input by input.
func TestParallelDecodeErrors(t *testing.T) {
	valid, err := EncodeColumns(FromTrace(sampleTrace()))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", []byte("NOPE")},
		{"csv input", []byte("#horizon,100\n")},
		{"magic only", valid[:4]},
		{"bad version", append(append([]byte{}, "RCTB"...), 99)},
		{"header only", valid[:6]},
		{"truncated frame", valid[:len(valid)/2]},
		{"missing trailer", valid[:len(valid)-2]},
		{"trailing garbage", append(append([]byte{}, valid...), 0xff)},
	}
	for _, c := range cases {
		if _, err := DecodeColumnsParallel(c.data, 4); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if _, err := DecodeColumnsParallel([]byte("#horizon,100\n"), 4); !errors.Is(err, ErrBadMagic) {
		t.Errorf("csv input: err = %v, want ErrBadMagic", err)
	}

	small, err := EncodeColumns(FromTrace(&Trace{Horizon: 9, VMs: sampleTrace().VMs[:1]}))
	if err != nil {
		t.Fatal(err)
	}
	for i := range small {
		mut := append([]byte{}, small...)
		mut[i] ^= 0x41
		scols, serr := DecodeColumns(mut)
		pcols, perr := DecodeColumnsParallel(mut, 4) // must not panic
		if (serr == nil) != (perr == nil) {
			t.Fatalf("flip at %d: serial err=%v, parallel err=%v", i, serr, perr)
		}
		if serr != nil {
			continue
		}
		senc, err := EncodeColumns(scols)
		if err != nil {
			t.Fatal(err)
		}
		penc, err := EncodeColumns(pcols)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(senc, penc) {
			t.Fatalf("flip at %d: serial and parallel decodes differ", i)
		}
	}
}

// A short interior frame breaks global chunk indexing and must be
// rejected by the structural pass, exactly like the streaming reader.
func TestParallelDecodeRejectsShortInteriorFrame(t *testing.T) {
	tr := genTrace(10)
	var one bytes.Buffer
	cw := NewColumnsWriter(&one, tr.Horizon)
	for i := range tr.VMs {
		if err := cw.Write(&tr.VMs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	full := one.Bytes()
	hdrLen := 5
	for full[hdrLen]&0x80 != 0 {
		hdrLen++
	}
	hdrLen++
	frame := full[hdrLen : len(full)-2]
	spliced := append([]byte{}, full[:hdrLen]...)
	spliced = append(spliced, frame...)
	spliced = append(spliced, frame...)
	spliced = append(spliced, 0, 20)
	if _, err := DecodeColumnsParallel(spliced, 4); err == nil {
		t.Fatal("expected error for short interior frame")
	}
}
