package trace

// Columnar trace representation. Trace keeps VMs as a row-major []VM,
// which is convenient but caps fleet scale: every consumer walk drags
// all 21 fields through the cache per VM, and persistence goes through
// CSV, whose parse cost and per-field string allocations dominate load
// time at hundreds of thousands of VMs. Columns is the column-major
// alternative: fixed-size chunks of parallel arrays, one per VM field,
// with subscription/deployment/region/role/OS strings interned in a
// shared table. Consumers iterate chunks (ForEachChunk) and either read
// the column slices directly or fill a caller-owned scratch VM via VMAt,
// so hot paths never materialize per-row structs or allocate.
//
// The representation is lossless: FromTrace followed by ToTrace yields
// a trace equal to the input, field for field, and every columnar
// consumer in charz/featuredata/pipeline is proven byte-identical to
// the retained row path by equivalence tests.

// ChunkSize is the number of VMs per chunk. 8192 VMs keep a full chunk
// of one int64 column at 64 KiB — a few L1 caches' worth of one field —
// while leaving per-chunk bookkeeping (parallel worker claims, codec
// frames) negligible even at million-VM traces.
const ChunkSize = 8192

// StringTable interns the trace's repeated strings (subscription,
// deployment, region, role, OS share one table). IDs are assigned
// densely in first-use order, so a table built by appending VMs in
// trace order is deterministic, and the codec can ship per-frame
// dictionary deltas: every ID referenced by a chunk was interned at or
// before that chunk's frame.
type StringTable struct {
	strs []string
	idx  map[string]uint32
}

// NewStringTable creates an empty table.
func NewStringTable() *StringTable {
	return &StringTable{idx: make(map[string]uint32)}
}

// Intern returns the ID of s, assigning the next dense ID on first use.
func (t *StringTable) Intern(s string) uint32 {
	if id, ok := t.idx[s]; ok {
		return id
	}
	id := uint32(len(t.strs))
	t.strs = append(t.strs, s)
	t.idx[s] = id
	return id
}

// add appends a string decoded from the wire, which arrives in ID order.
func (t *StringTable) add(s string) {
	t.idx[s] = uint32(len(t.strs))
	t.strs = append(t.strs, s)
}

// Len returns the number of interned strings.
func (t *StringTable) Len() int { return len(t.strs) }

// StringAt returns the string with ID i. IDs come from chunk columns,
// which are validated on decode, so the lookup is a bare index.
//
//rcvet:hotpath
func (t *StringTable) StringAt(i uint32) string { return t.strs[i] }

// Chunk holds up to ChunkSize VMs as parallel column slices, all of the
// same length. String-valued fields store StringTable IDs; Deleted
// stores the raw Minutes value including the NoEnd sentinel; Type,
// Party and UtilKind are the enum values narrowed to a byte.
type Chunk struct {
	tab *StringTable

	ID                         []int64
	Sub, Dep, Region, Role, OS []uint32
	Type, Party, UtilKind      []uint8
	Production                 []bool
	Cores                      []int32
	MemoryGB                   []float64
	Created, Deleted           []int64
	Base, Amplitude, NoiseSD   []float64
	SpikeProb                  []float64
	PhaseMin, RampLifetime     []int64
	Seed                       []uint64
}

// newChunk allocates a chunk with capacity for n VMs.
func newChunk(tab *StringTable, n int) *Chunk {
	return &Chunk{
		tab: tab,
		ID:  make([]int64, 0, n),
		Sub: make([]uint32, 0, n), Dep: make([]uint32, 0, n),
		Region: make([]uint32, 0, n), Role: make([]uint32, 0, n), OS: make([]uint32, 0, n),
		Type: make([]uint8, 0, n), Party: make([]uint8, 0, n), UtilKind: make([]uint8, 0, n),
		Production: make([]bool, 0, n),
		Cores:      make([]int32, 0, n),
		MemoryGB:   make([]float64, 0, n),
		Created:    make([]int64, 0, n), Deleted: make([]int64, 0, n),
		Base: make([]float64, 0, n), Amplitude: make([]float64, 0, n), NoiseSD: make([]float64, 0, n),
		SpikeProb: make([]float64, 0, n),
		PhaseMin:  make([]int64, 0, n), RampLifetime: make([]int64, 0, n),
		Seed: make([]uint64, 0, n),
	}
}

// Len returns the number of VMs in the chunk.
//
//rcvet:hotpath
func (c *Chunk) Len() int { return len(c.ID) }

// Strings returns the table the chunk's string IDs index into.
func (c *Chunk) Strings() *StringTable { return c.tab }

// VMAt fills v with row i of the chunk. The strings are shared with the
// intern table, so the call performs no allocation; callers on hot
// paths reuse one scratch VM per worker.
//
//rcvet:hotpath
func (c *Chunk) VMAt(i int, v *VM) {
	v.ID = c.ID[i]
	v.Subscription = c.tab.strs[c.Sub[i]]
	v.Deployment = c.tab.strs[c.Dep[i]]
	v.Region = c.tab.strs[c.Region[i]]
	v.Role = c.tab.strs[c.Role[i]]
	v.OS = c.tab.strs[c.OS[i]]
	v.Type = VMType(c.Type[i])
	v.Party = Party(c.Party[i])
	v.Production = c.Production[i]
	v.Cores = int(c.Cores[i])
	v.MemoryGB = c.MemoryGB[i]
	v.Created = Minutes(c.Created[i])
	v.Deleted = Minutes(c.Deleted[i])
	c.UtilAt(i, &v.Util)
}

// UtilAt fills m with row i's utilization model.
//
//rcvet:hotpath
func (c *Chunk) UtilAt(i int, m *UtilModel) {
	m.Kind = UtilKind(c.UtilKind[i])
	m.Base = c.Base[i]
	m.Amplitude = c.Amplitude[i]
	m.NoiseSD = c.NoiseSD[i]
	m.PhaseMin = c.PhaseMin[i]
	m.SpikeProb = c.SpikeProb[i]
	m.Seed = c.Seed[i]
	m.RampLifetime = c.RampLifetime[i]
}

// appendVM appends one VM to the chunk's columns.
func (c *Chunk) appendVM(v *VM) {
	c.ID = append(c.ID, v.ID)
	c.Sub = append(c.Sub, c.tab.Intern(v.Subscription))
	c.Dep = append(c.Dep, c.tab.Intern(v.Deployment))
	c.Region = append(c.Region, c.tab.Intern(v.Region))
	c.Role = append(c.Role, c.tab.Intern(v.Role))
	c.OS = append(c.OS, c.tab.Intern(v.OS))
	c.Type = append(c.Type, uint8(v.Type))
	c.Party = append(c.Party, uint8(v.Party))
	c.Production = append(c.Production, v.Production)
	c.Cores = append(c.Cores, int32(v.Cores))
	c.MemoryGB = append(c.MemoryGB, v.MemoryGB)
	c.Created = append(c.Created, int64(v.Created))
	c.Deleted = append(c.Deleted, int64(v.Deleted))
	c.UtilKind = append(c.UtilKind, uint8(v.Util.Kind))
	c.Base = append(c.Base, v.Util.Base)
	c.Amplitude = append(c.Amplitude, v.Util.Amplitude)
	c.NoiseSD = append(c.NoiseSD, v.Util.NoiseSD)
	c.SpikeProb = append(c.SpikeProb, v.Util.SpikeProb)
	c.PhaseMin = append(c.PhaseMin, v.Util.PhaseMin)
	c.RampLifetime = append(c.RampLifetime, v.Util.RampLifetime)
	c.Seed = append(c.Seed, v.Util.Seed)
}

// Columns is a chunked column-major trace: the window, the shared
// string table, and the chunk list. Every chunk except the last holds
// exactly ChunkSize VMs, so VMAt resolves a global index with a single
// division.
type Columns struct {
	Horizon Minutes

	tab    *StringTable
	chunks []*Chunk
	n      int
}

// NewColumns creates an empty columnar trace with the given window.
func NewColumns(horizon Minutes) *Columns {
	return &Columns{Horizon: horizon, tab: NewStringTable()}
}

// Append adds one VM to the last chunk, opening a new chunk when it is
// full. VMs must be appended in trace order for the string table (and
// therefore the codec output) to be deterministic.
func (c *Columns) Append(v *VM) {
	if len(c.chunks) == 0 || c.chunks[len(c.chunks)-1].Len() == ChunkSize {
		c.chunks = append(c.chunks, newChunk(c.tab, ChunkSize))
	}
	c.chunks[len(c.chunks)-1].appendVM(v)
	c.n++
}

// appendChunk attaches a decoded chunk (used by the codec; the chunk
// must already index c's table, and only the final chunk may be short).
func (c *Columns) appendChunk(ch *Chunk) {
	c.chunks = append(c.chunks, ch)
	c.n += ch.Len()
}

// Len returns the total VM count.
//
//rcvet:hotpath
func (c *Columns) Len() int { return c.n }

// NumChunks returns the chunk count.
func (c *Columns) NumChunks() int { return len(c.chunks) }

// ChunkAt returns chunk i and the global index of its first VM.
//
//rcvet:hotpath
func (c *Columns) ChunkAt(i int) (ch *Chunk, base int) {
	return c.chunks[i], i * ChunkSize
}

// Strings returns the shared intern table.
func (c *Columns) Strings() *StringTable { return c.tab }

// ForEachChunk calls fn for every chunk in order with the global index
// of the chunk's first VM, stopping at the first error.
func (c *Columns) ForEachChunk(fn func(base int, ch *Chunk) error) error {
	for i, ch := range c.chunks {
		if err := fn(i*ChunkSize, ch); err != nil {
			return err
		}
	}
	return nil
}

// VMAt fills v with the VM at global index i.
//
//rcvet:hotpath
func (c *Columns) VMAt(i int, v *VM) {
	c.chunks[i/ChunkSize].VMAt(i%ChunkSize, v)
}

// FromTrace converts a row-major trace losslessly. The string table is
// built in first-use order, so the result (and its encoding) is
// deterministic for a given input.
func FromTrace(tr *Trace) *Columns {
	c := NewColumns(tr.Horizon)
	for i := range tr.VMs {
		c.Append(&tr.VMs[i])
	}
	return c
}

// ToTrace materializes the row-major form, the inverse of FromTrace.
func (c *Columns) ToTrace() *Trace {
	tr := &Trace{Horizon: c.Horizon, VMs: make([]VM, c.n)}
	for i, ch := range c.chunks {
		base := i * ChunkSize
		for j := 0; j < ch.Len(); j++ {
			ch.VMAt(j, &tr.VMs[base+j])
		}
	}
	return tr
}
