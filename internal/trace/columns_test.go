package trace

import (
	"fmt"
	"math/rand/v2"
	"testing"
)

// genTrace builds a deterministic synthetic trace with realistic string
// cardinalities (many VMs share subscriptions/deployments) spanning
// multiple chunks when n > ChunkSize. Tests and benchmarks share it so
// row/columnar comparisons run over the same population.
func genTrace(n int) *Trace {
	r := rand.New(rand.NewPCG(42, uint64(n)))
	tr := &Trace{Horizon: 30 * 24 * 60}
	regions := []string{"us-east", "us-west", "eu-north", "ap-south"}
	roles := []string{"web", "worker", "db", "cache", "batch"}
	oses := []string{"linux", "windows"}
	tr.VMs = make([]VM, 0, n)
	created := Minutes(0)
	for i := 0; i < n; i++ {
		created += Minutes(r.Int64N(3))
		deleted := created + Minutes(1+r.Int64N(int64(tr.Horizon)))
		if r.IntN(5) == 0 {
			deleted = NoEnd
		}
		v := VM{
			ID:           int64(i + 1),
			Subscription: fmt.Sprintf("sub-%d", r.IntN(n/50+1)),
			Deployment:   fmt.Sprintf("dep-%d", r.IntN(n/10+1)),
			Region:       regions[r.IntN(len(regions))],
			Role:         roles[r.IntN(len(roles))],
			OS:           oses[r.IntN(len(oses))],
			Type:         VMType(r.IntN(2)),
			Party:        Party(r.IntN(2)),
			Production:   r.IntN(2) == 0,
			Cores:        1 << r.IntN(5),
			MemoryGB:     0.75 * float64(int(1)<<r.IntN(6)),
			Created:      created,
			Deleted:      deleted,
			Util: UtilModel{
				Kind:         UtilKind(r.IntN(5)),
				Base:         float64(r.IntN(60)),
				Amplitude:    float64(r.IntN(40)),
				NoiseSD:      float64(r.IntN(8)),
				PhaseMin:     int64(r.IntN(1440)),
				SpikeProb:    float64(r.IntN(30)) / 100,
				Seed:         r.Uint64(),
				RampLifetime: int64(1 + r.IntN(20000)),
			},
		}
		tr.VMs = append(tr.VMs, v)
	}
	return tr
}

func TestColumnsRoundTrip(t *testing.T) {
	for _, tr := range []*Trace{
		sampleTrace(),
		{Horizon: 5},              // empty
		genTrace(ChunkSize),       // exactly one chunk
		genTrace(2*ChunkSize + 7), // multiple chunks + short tail
	} {
		c := FromTrace(tr)
		if c.Len() != len(tr.VMs) || c.Horizon != tr.Horizon {
			t.Fatalf("Len/Horizon = %d/%d, want %d/%d", c.Len(), c.Horizon, len(tr.VMs), tr.Horizon)
		}
		got := c.ToTrace()
		if got.Horizon != tr.Horizon || len(got.VMs) != len(tr.VMs) {
			t.Fatalf("round trip shape mismatch")
		}
		for i := range tr.VMs {
			if got.VMs[i] != tr.VMs[i] {
				t.Fatalf("vm %d mismatch:\n got %+v\nwant %+v", i, got.VMs[i], tr.VMs[i])
			}
		}
	}
}

func TestColumnsVMAt(t *testing.T) {
	tr := genTrace(ChunkSize + 100)
	c := FromTrace(tr)
	var v VM
	for _, i := range []int{0, 1, ChunkSize - 1, ChunkSize, ChunkSize + 99} {
		c.VMAt(i, &v)
		if v != tr.VMs[i] {
			t.Fatalf("VMAt(%d):\n got %+v\nwant %+v", i, v, tr.VMs[i])
		}
	}
}

func TestColumnsForEachChunk(t *testing.T) {
	tr := genTrace(2*ChunkSize + 5)
	c := FromTrace(tr)
	if c.NumChunks() != 3 {
		t.Fatalf("NumChunks = %d, want 3", c.NumChunks())
	}
	var bases []int
	total := 0
	err := c.ForEachChunk(func(base int, ch *Chunk) error {
		bases = append(bases, base)
		// Every chunk except the last must be exactly ChunkSize — the
		// invariant VMAt's index arithmetic depends on.
		if base+ch.Len() < c.Len() && ch.Len() != ChunkSize {
			t.Fatalf("interior chunk at base %d has %d VMs", base, ch.Len())
		}
		var v VM
		for j := 0; j < ch.Len(); j++ {
			ch.VMAt(j, &v)
			if v != tr.VMs[base+j] {
				return fmt.Errorf("vm %d mismatch", base+j)
			}
		}
		total += ch.Len()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != c.Len() {
		t.Fatalf("visited %d VMs, want %d", total, c.Len())
	}
	if bases[0] != 0 || bases[1] != ChunkSize || bases[2] != 2*ChunkSize {
		t.Fatalf("bases = %v", bases)
	}

	// Errors stop iteration and propagate.
	calls := 0
	sentinel := fmt.Errorf("stop")
	if err := c.ForEachChunk(func(base int, ch *Chunk) error {
		calls++
		return sentinel
	}); err != sentinel {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if calls != 1 {
		t.Fatalf("iteration continued after error: %d calls", calls)
	}
}

func TestStringTableIntern(t *testing.T) {
	tab := NewStringTable()
	a := tab.Intern("alpha")
	b := tab.Intern("beta")
	if a != 0 || b != 1 {
		t.Fatalf("dense first-use IDs: got %d, %d", a, b)
	}
	if tab.Intern("alpha") != a {
		t.Fatal("re-intern changed the ID")
	}
	if tab.Len() != 2 || tab.StringAt(a) != "alpha" || tab.StringAt(b) != "beta" {
		t.Fatalf("table contents wrong: len=%d", tab.Len())
	}
}

func TestColumnsSharedStrings(t *testing.T) {
	// Strings handed out by VMAt must be the interned instances, not
	// copies, so repeated fills allocate nothing.
	tr := genTrace(100)
	c := FromTrace(tr)
	var v VM
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < c.Len(); i++ {
			c.VMAt(i, &v)
		}
	})
	if allocs != 0 {
		t.Fatalf("VMAt allocated %v per run, want 0", allocs)
	}
}
