package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV: the trace parser must never panic and must round-trip
// whatever it accepts.
func FuzzReadCSV(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, &Trace{Horizon: 100, VMs: []VM{{
		ID: 1, Subscription: "s", Deployment: "d", Region: "r", Role: "ro",
		OS: "os", Cores: 1, MemoryGB: 1, Created: 0, Deleted: 50,
	}}}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("")
	f.Add("#horizon,100\n")
	f.Add("#horizon,abc\nnot,a,row\n")
	f.Fuzz(func(t *testing.T, raw string) {
		tr, err := ReadCSV(strings.NewReader(raw))
		if err != nil {
			return
		}
		// Anything accepted must survive a write/read cycle unchanged.
		var out bytes.Buffer
		if err := WriteCSV(&out, tr); err != nil {
			t.Fatalf("accepted trace failed to encode: %v", err)
		}
		again, err := ReadCSV(&out)
		if err != nil {
			t.Fatalf("re-encoded trace failed to parse: %v", err)
		}
		if len(again.VMs) != len(tr.VMs) || again.Horizon != tr.Horizon {
			t.Fatal("round trip changed the trace")
		}
	})
}

// FuzzReadAzureVMTable: the public-dataset parser must never panic, and
// accepted rows must produce valid utilization models.
func FuzzReadAzureVMTable(f *testing.F) {
	f.Add("v,s,d,0,600,50,10,40,Delay-insensitive,2,3.5\n", int64(86400))
	f.Add("v,s,d,0,600,50,10,40,Interactive,1,1\n", int64(3600))
	f.Add("", int64(1))
	f.Fuzz(func(t *testing.T, raw string, horizon int64) {
		tr, err := ReadAzureVMTable(strings.NewReader(raw), horizon)
		if err != nil {
			return
		}
		for i := range tr.VMs {
			v := &tr.VMs[i]
			min, avg, max := v.Util.At(v.Created)
			if min < 0 || min > avg || avg > max || max > 100 {
				t.Fatalf("invalid utilization from accepted row: %v/%v/%v", min, avg, max)
			}
		}
	})
}
