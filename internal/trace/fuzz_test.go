package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV: the trace parser must never panic and must round-trip
// whatever it accepts.
func FuzzReadCSV(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, &Trace{Horizon: 100, VMs: []VM{{
		ID: 1, Subscription: "s", Deployment: "d", Region: "r", Role: "ro",
		OS: "os", Cores: 1, MemoryGB: 1, Created: 0, Deleted: 50,
	}}}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("")
	f.Add("#horizon,100\n")
	f.Add("#horizon,abc\nnot,a,row\n")
	f.Fuzz(func(t *testing.T, raw string) {
		tr, err := ReadCSV(strings.NewReader(raw))
		if err != nil {
			return
		}
		// Anything accepted must survive a write/read cycle unchanged.
		var out bytes.Buffer
		if err := WriteCSV(&out, tr); err != nil {
			t.Fatalf("accepted trace failed to encode: %v", err)
		}
		again, err := ReadCSV(&out)
		if err != nil {
			t.Fatalf("re-encoded trace failed to parse: %v", err)
		}
		if len(again.VMs) != len(tr.VMs) || again.Horizon != tr.Horizon {
			t.Fatal("round trip changed the trace")
		}
	})
}

// FuzzColumnsCodec: the binary decoder must never panic — malformed
// headers, truncations, and bit flips are rejected with errors — and
// whatever it accepts must re-encode and decode to the same trace.
func FuzzColumnsCodec(f *testing.F) {
	for _, tr := range []*Trace{
		sampleTrace(),
		{Horizon: 77},
		{Horizon: 10, VMs: []VM{{ID: 1, Deleted: NoEnd, Util: UtilModel{Kind: UtilRamp, RampLifetime: 9}}}},
	} {
		data, err := EncodeColumns(FromTrace(tr))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		if len(data) > 8 {
			f.Add(data[:len(data)/2]) // truncation
			mut := append([]byte{}, data...)
			mut[6] ^= 0xff // corrupt first frame
			f.Add(mut)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("RCTB"))
	f.Add([]byte("RCTB\x01\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		cols, err := DecodeColumns(data)
		// The parallel decoder must agree with the serial one on every
		// input: reject exactly what it rejects, accept the same trace.
		pcols, perr := DecodeColumnsParallel(data, 3)
		if (err == nil) != (perr == nil) {
			t.Fatalf("serial/parallel decode disagree: %v vs %v", err, perr)
		}
		if err != nil {
			return
		}
		penc, err := EncodeColumns(pcols)
		if err != nil {
			t.Fatalf("parallel-decoded columns failed to encode: %v", err)
		}
		// Accepted input must round-trip losslessly.
		again, err := EncodeColumns(cols)
		if err != nil {
			t.Fatalf("accepted columns failed to encode: %v", err)
		}
		if !bytes.Equal(again, penc) {
			t.Fatal("serial and parallel decodes differ")
		}
		if pagain, err := EncodeColumnsParallel(cols, 3); err != nil || !bytes.Equal(pagain, again) {
			t.Fatalf("parallel encode differs from serial (err=%v)", err)
		}
		cols2, err := DecodeColumns(again)
		if err != nil {
			t.Fatalf("re-encoded columns failed to decode: %v", err)
		}
		if cols2.Len() != cols.Len() || cols2.Horizon != cols.Horizon {
			t.Fatal("round trip changed the trace shape")
		}
		// The canonical encoding must be a fixpoint: encoding the decoded
		// form again reproduces it bit for bit. (Byte comparison rather
		// than VM comparison so NaN-payload floats, which the codec
		// preserves exactly, don't trip Go's NaN != NaN.)
		again2, err := EncodeColumns(cols2)
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(again, again2) {
			t.Fatal("canonical encoding is not a fixpoint")
		}
	})
}

// FuzzReadAzureVMTable: the public-dataset parser must never panic, and
// accepted rows must produce valid utilization models.
func FuzzReadAzureVMTable(f *testing.F) {
	f.Add("v,s,d,0,600,50,10,40,Delay-insensitive,2,3.5\n", int64(86400))
	f.Add("v,s,d,0,600,50,10,40,Interactive,1,1\n", int64(3600))
	f.Add("", int64(1))
	f.Fuzz(func(t *testing.T, raw string, horizon int64) {
		tr, err := ReadAzureVMTable(strings.NewReader(raw), horizon)
		if err != nil {
			return
		}
		for i := range tr.VMs {
			v := &tr.VMs[i]
			min, avg, max := v.Util.At(v.Created)
			if min < 0 || min > avg || avg > max || max > 100 {
				t.Fatalf("invalid utilization from accepted row: %v/%v/%v", min, avg, max)
			}
		}
	})
}
