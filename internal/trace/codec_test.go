package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	for _, tr := range []*Trace{
		sampleTrace(),
		{Horizon: 77},             // empty trace still has header+trailer
		genTrace(ChunkSize),       // exact chunk boundary
		genTrace(2*ChunkSize + 9), // multi-chunk + short tail
	} {
		data, err := EncodeColumns(FromTrace(tr))
		if err != nil {
			t.Fatal(err)
		}
		cols, err := DecodeColumns(data)
		if err != nil {
			t.Fatal(err)
		}
		got := cols.ToTrace()
		if got.Horizon != tr.Horizon || len(got.VMs) != len(tr.VMs) {
			t.Fatalf("shape mismatch: %d/%d vs %d/%d", got.Horizon, len(got.VMs), tr.Horizon, len(tr.VMs))
		}
		for i := range tr.VMs {
			if got.VMs[i] != tr.VMs[i] {
				t.Fatalf("vm %d mismatch:\n got %+v\nwant %+v", i, got.VMs[i], tr.VMs[i])
			}
		}
	}
}

func TestCodecDeterministic(t *testing.T) {
	tr := genTrace(ChunkSize + 500)
	a, err := EncodeColumns(FromTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeColumns(FromTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of the same trace differ")
	}
}

func TestColumnsWriterMatchesEncode(t *testing.T) {
	// The streaming writer must produce byte-identical output to the
	// one-shot encoder: both intern strings in trace order.
	tr := genTrace(ChunkSize + 321)
	want, err := EncodeColumns(FromTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cw := NewColumnsWriter(&buf, tr.Horizon)
	for i := range tr.VMs {
		if err := cw.Write(&tr.VMs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("streaming bytes differ from one-shot encode (%d vs %d bytes)", buf.Len(), len(want))
	}
	// Close is idempotent; Write after Close fails.
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cw.Write(&tr.VMs[0]); err == nil {
		t.Fatal("expected write-after-close error")
	}
}

func TestColumnsWriterEmpty(t *testing.T) {
	var buf bytes.Buffer
	cw := NewColumnsWriter(&buf, 123)
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	cols, err := DecodeColumns(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if cols.Len() != 0 || cols.Horizon != 123 {
		t.Fatalf("empty round trip: len=%d horizon=%d", cols.Len(), cols.Horizon)
	}
}

func TestColumnsReaderStreaming(t *testing.T) {
	tr := genTrace(2*ChunkSize + 40)
	data, err := EncodeColumns(FromTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewColumnsReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if r.Horizon() != tr.Horizon {
		t.Fatalf("horizon = %d, want %d", r.Horizon(), tr.Horizon)
	}
	var v VM
	i := 0
	for {
		ch, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < ch.Len(); j++ {
			ch.VMAt(j, &v)
			if v != tr.VMs[i] {
				t.Fatalf("vm %d mismatch", i)
			}
			i++
		}
	}
	if i != len(tr.VMs) || r.Total() != len(tr.VMs) {
		t.Fatalf("streamed %d VMs (Total=%d), want %d", i, r.Total(), len(tr.VMs))
	}
	// Next after EOF keeps returning EOF.
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("post-EOF Next: %v", err)
	}
}

func TestCodecNegativeHorizonAndIDs(t *testing.T) {
	// Zigzag paths: negative horizon, negative/decreasing IDs and
	// timestamps must survive.
	tr := &Trace{Horizon: -5, VMs: []VM{
		{ID: -10, Subscription: "s", Deployment: "d", Region: "r", Role: "ro", OS: "o",
			Cores: 3, Created: -100, Deleted: -50, Util: UtilModel{PhaseMin: -7, RampLifetime: -1}},
		{ID: -40, Subscription: "s", Deployment: "d", Region: "r", Role: "ro", OS: "o",
			Created: 200, Deleted: NoEnd},
	}}
	data, err := EncodeColumns(FromTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	cols, err := DecodeColumns(data)
	if err != nil {
		t.Fatal(err)
	}
	got := cols.ToTrace()
	for i := range tr.VMs {
		if got.VMs[i] != tr.VMs[i] {
			t.Fatalf("vm %d mismatch:\n got %+v\nwant %+v", i, got.VMs[i], tr.VMs[i])
		}
	}
}

func TestCodecEncodeRejectsInvalidSchedules(t *testing.T) {
	// deleted < created (and not NoEnd) has no wire representation.
	bad := FromTrace(&Trace{Horizon: 10, VMs: []VM{{Created: 100, Deleted: 50}}})
	if _, err := EncodeColumns(bad); err == nil {
		t.Fatal("expected error for deleted < created")
	}
	neg := FromTrace(&Trace{Horizon: 10, VMs: []VM{{Cores: -1, Deleted: NoEnd}}})
	if _, err := EncodeColumns(neg); err == nil {
		t.Fatal("expected error for negative core count")
	}
}

func TestCodecDecodeErrors(t *testing.T) {
	valid, err := EncodeColumns(FromTrace(sampleTrace()))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", []byte("NOPE")},
		{"csv input", []byte("#horizon,100\n")},
		{"magic only", valid[:4]},
		{"bad version", append(append([]byte{}, "RCTB"...), 99)},
		{"header only", valid[:6]},
		{"truncated frame", valid[:len(valid)/2]},
		{"missing trailer", valid[:len(valid)-2]},
		{"trailing garbage", append(append([]byte{}, valid...), 0xff)},
	}
	for _, c := range cases {
		if _, err := DecodeColumns(c.data); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}

	// Bad magic is distinguishable for format sniffing.
	if _, err := DecodeColumns([]byte("#horizon,100\n")); !errors.Is(err, ErrBadMagic) {
		t.Errorf("csv input: err = %v, want ErrBadMagic", err)
	}
	// A well-formed binary stream with a corrupted payload byte must
	// error, not panic. Flip each byte of a small trace in turn.
	small, err := EncodeColumns(FromTrace(&Trace{Horizon: 9, VMs: sampleTrace().VMs[:1]}))
	if err != nil {
		t.Fatal(err)
	}
	for i := range small {
		mut := append([]byte{}, small...)
		mut[i] ^= 0x41
		cols, err := DecodeColumns(mut) // must not panic
		if err == nil && cols.Len() > ChunkSize {
			t.Fatalf("flip at %d produced oversized decode", i)
		}
	}
}

func TestCodecRejectsShortInteriorFrame(t *testing.T) {
	// Two short frames back to back: hand-build a stream by closing two
	// writers and splicing the first's frame before the second's. The
	// reader must reject the interior short frame to preserve the
	// all-but-last-chunk-full indexing invariant.
	tr := genTrace(10)
	var one bytes.Buffer
	cw := NewColumnsWriter(&one, tr.Horizon)
	for i := range tr.VMs {
		if err := cw.Write(&tr.VMs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	full := one.Bytes()
	// Locate the frame: header is 4 (magic) + 1 (version) + horizon varint.
	hdrLen := 5
	for full[hdrLen]&0x80 != 0 {
		hdrLen++
	}
	hdrLen++
	frame := full[hdrLen : len(full)-2] // strip sentinel 0x00 + trailer count
	spliced := append([]byte{}, full[:hdrLen]...)
	spliced = append(spliced, frame...)
	spliced = append(spliced, frame...)
	spliced = append(spliced, 0, 20) // sentinel + total=20
	if _, err := DecodeColumns(spliced); err == nil {
		t.Fatal("expected error for short interior frame")
	}
}

func TestCodecTrailerCountMismatch(t *testing.T) {
	data, err := EncodeColumns(FromTrace(sampleTrace()))
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte{}, data...)
	mut[len(mut)-1]++ // trailer varint is the last byte for small counts
	if _, err := DecodeColumns(mut); err == nil {
		t.Fatal("expected trailer count mismatch error")
	}
}

func TestVarintRoundTrip(t *testing.T) {
	var buf [maxVarintLen]byte
	for _, v := range []uint64{0, 1, 127, 128, 300, 1<<32 - 1, 1 << 40, 1<<64 - 1} {
		n := putUvarint(buf[:], v)
		got, m := uvarint(buf[:n])
		if got != v || m != n {
			t.Fatalf("uvarint(%d): got %d (len %d vs %d)", v, got, m, n)
		}
		p := appendUvarint(nil, v)
		if !bytes.Equal(p, buf[:n]) {
			t.Fatalf("appendUvarint(%d) differs from putUvarint", v)
		}
	}
	// Truncated and overlong inputs are rejected.
	if _, n := uvarint([]byte{0x80}); n != 0 {
		t.Fatalf("truncated varint: n = %d, want 0", n)
	}
	if _, n := uvarint([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}); n >= 0 {
		t.Fatalf("overlong varint accepted: n = %d", n)
	}
}
