package trace

import (
	"bytes"
	"math"
	"math/rand/v2"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestVMTypePartyRoundTrip(t *testing.T) {
	for _, vt := range []VMType{IaaS, PaaS} {
		got, err := ParseVMType(vt.String())
		if err != nil || got != vt {
			t.Errorf("ParseVMType(%q) = %v, %v", vt.String(), got, err)
		}
	}
	for _, p := range []Party{FirstParty, ThirdParty} {
		got, err := ParseParty(p.String())
		if err != nil || got != p {
			t.Errorf("ParseParty(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseVMType("bogus"); err == nil {
		t.Error("expected error")
	}
	if _, err := ParseParty("bogus"); err == nil {
		t.Error("expected error")
	}
}

func TestUtilKindRoundTrip(t *testing.T) {
	for _, k := range []UtilKind{UtilFlat, UtilDiurnal, UtilBursty, UtilRamp, UtilIdle} {
		got, err := ParseUtilKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseUtilKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseUtilKind("bogus"); err == nil {
		t.Error("expected error")
	}
}

func TestLifetime(t *testing.T) {
	v := VM{Created: 100, Deleted: 400}
	lt, ok := v.Lifetime()
	if !ok || lt != 300 {
		t.Errorf("lifetime = %v, %v", lt, ok)
	}
	v.Deleted = NoEnd
	if _, ok := v.Lifetime(); ok {
		t.Error("expected no lifetime for running VM")
	}
}

func TestAliveAt(t *testing.T) {
	v := VM{Created: 10, Deleted: 20}
	cases := []struct {
		t    Minutes
		want bool
	}{{5, false}, {10, true}, {15, true}, {20, false}, {25, false}}
	for _, c := range cases {
		if got := v.AliveAt(c.t); got != c.want {
			t.Errorf("AliveAt(%d) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestCoreHours(t *testing.T) {
	v := VM{Cores: 4, Created: 0, Deleted: 120}
	if got := v.CoreHours(1000); got != 8 {
		t.Errorf("core hours = %v, want 8", got)
	}
	// Clipped by horizon.
	if got := v.CoreHours(60); got != 4 {
		t.Errorf("clipped core hours = %v, want 4", got)
	}
	// Created after horizon.
	v2 := VM{Cores: 1, Created: 100, Deleted: 200}
	if got := v2.CoreHours(50); got != 0 {
		t.Errorf("out-of-window core hours = %v, want 0", got)
	}
}

func TestUtilModelDeterministic(t *testing.T) {
	m := UtilModel{Kind: UtilBursty, Base: 20, Amplitude: 50, NoiseSD: 5, SpikeProb: 0.1, Seed: 42}
	for _, tm := range []Minutes{0, 5, 1440, 99995} {
		a1, b1, c1 := m.At(tm)
		a2, b2, c2 := m.At(tm)
		if a1 != a2 || b1 != b2 || c1 != c2 {
			t.Fatalf("non-deterministic at t=%d", tm)
		}
	}
}

func TestUtilModelOrderInvariant(t *testing.T) {
	m := UtilModel{Kind: UtilDiurnal, Base: 30, Amplitude: 40, NoiseSD: 3, Seed: 7}
	// Access out of order, then in order; values must match.
	_, fwd, _ := m.At(500)
	m.At(123456)
	m.At(0)
	_, again, _ := m.At(500)
	if fwd != again {
		t.Error("utilization depends on access order")
	}
}

func TestUtilModelBoundsAndOrdering(t *testing.T) {
	models := []UtilModel{
		{Kind: UtilFlat, Base: 50, NoiseSD: 30, Seed: 1},
		{Kind: UtilDiurnal, Base: 10, Amplitude: 80, NoiseSD: 10, Seed: 2},
		{Kind: UtilBursty, Base: 5, Amplitude: 90, SpikeProb: 0.3, NoiseSD: 5, Seed: 3},
		{Kind: UtilRamp, Base: 0, Amplitude: 100, RampLifetime: 10000, NoiseSD: 2, Seed: 4},
		{Kind: UtilIdle, Base: 1, NoiseSD: 1, Seed: 5},
	}
	for mi, m := range models {
		for tm := Minutes(0); tm < 3000; tm += 5 {
			min, avg, max := m.At(tm)
			if min < 0 || max > 100 || min > avg || avg > max {
				t.Fatalf("model %d t=%d: min=%v avg=%v max=%v violates 0<=min<=avg<=max<=100",
					mi, tm, min, avg, max)
			}
		}
	}
}

func TestUtilModelDiurnalHasDailyCycle(t *testing.T) {
	m := UtilModel{Kind: UtilDiurnal, Base: 20, Amplitude: 60, NoiseSD: 0, Seed: 9}
	_, trough, _ := m.At(0)
	_, peak, _ := m.At(12 * 60)
	if peak-trough < 50 {
		t.Errorf("diurnal swing too small: trough=%v peak=%v", trough, peak)
	}
	// One full day later the value repeats exactly (no noise).
	_, again, _ := m.At(24 * 60)
	if math.Abs(trough-again) > 1e-12 {
		t.Errorf("not periodic: %v vs %v", trough, again)
	}
}

func TestUtilModelBurstySpikeRate(t *testing.T) {
	m := UtilModel{Kind: UtilBursty, Base: 10, Amplitude: 70, SpikeProb: 0.2, NoiseSD: 0, Seed: 11}
	spikes := 0
	n := 20000
	for i := 0; i < n; i++ {
		_, avg, _ := m.At(Minutes(i * 5))
		if avg > 50 {
			spikes++
		}
	}
	rate := float64(spikes) / float64(n)
	if math.Abs(rate-0.2) > 0.02 {
		t.Errorf("spike rate = %v, want ~0.2", rate)
	}
}

func TestSummaryStats(t *testing.T) {
	v := VM{
		Cores:   2,
		Created: 0,
		Deleted: 1440,
		Util:    UtilModel{Kind: UtilFlat, Base: 40, NoiseSD: 0, Seed: 1},
	}
	avg, p95 := SummaryStats(&v, 100000)
	if math.Abs(avg-40) > 1e-9 {
		t.Errorf("avg = %v, want 40", avg)
	}
	if p95 < 40 || p95 > 50 {
		t.Errorf("p95 = %v, want within spread above 40", p95)
	}
}

func TestSummaryStatsEmptyWindow(t *testing.T) {
	v := VM{Created: 100, Deleted: 200}
	avg, p95 := SummaryStats(&v, 50)
	if avg != 0 || p95 != 0 {
		t.Errorf("out-of-window stats = %v, %v", avg, p95)
	}
}

func TestAvgSeriesLength(t *testing.T) {
	v := VM{Created: 0, Deleted: 100, Util: UtilModel{Kind: UtilFlat, Base: 10}}
	s := AvgSeries(&v, 1000)
	if len(s) != 20 {
		t.Errorf("series length = %d, want 20", len(s))
	}
	// Horizon clipping.
	s = AvgSeries(&v, 50)
	if len(s) != 10 {
		t.Errorf("clipped length = %d, want 10", len(s))
	}
	if AvgSeries(&VM{Created: 100, Deleted: 200}, 50) != nil {
		t.Error("expected nil series outside window")
	}
}

func TestQuickSelectMatchesSort(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.IntN(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		k := int(math.Ceil(0.95*float64(n))) - 1
		if k < 0 {
			k = 0
		}
		got := quickP95(append([]float64(nil), xs...))
		if got != sorted[k] {
			t.Fatalf("trial %d: quickP95 = %v, want %v", trial, got, sorted[k])
		}
	}
}

func TestSubscriptionsGrouping(t *testing.T) {
	tr := &Trace{VMs: []VM{
		{ID: 1, Subscription: "a"},
		{ID: 2, Subscription: "b"},
		{ID: 3, Subscription: "a"},
	}}
	subs := tr.Subscriptions()
	if len(subs) != 2 || len(subs["a"]) != 2 || len(subs["b"]) != 1 {
		t.Errorf("subscriptions = %v", subs)
	}
}

func sampleTrace() *Trace {
	return &Trace{
		Horizon: 10000,
		VMs: []VM{
			{
				ID: 1, Subscription: "sub-1", Deployment: "dep-1", Region: "region-0", Role: "IaaS", OS: "linux",
				Type: IaaS, Party: ThirdParty, Production: true,
				Cores: 2, MemoryGB: 3.5, Created: 0, Deleted: 500,
				Util: UtilModel{Kind: UtilDiurnal, Base: 20, Amplitude: 50, NoiseSD: 4, PhaseMin: 60, Seed: 77},
			},
			{
				ID: 2, Subscription: "sub-2", Deployment: "dep-2", Region: "region-1", Role: "WebRole", OS: "windows",
				Type: PaaS, Party: FirstParty, Production: false,
				Cores: 1, MemoryGB: 0.75, Created: 100, Deleted: NoEnd,
				Util: UtilModel{Kind: UtilBursty, Base: 5, Amplitude: 80, SpikeProb: 0.05, NoiseSD: 2, Seed: 78},
			},
		},
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Horizon != tr.Horizon {
		t.Errorf("horizon = %d, want %d", got.Horizon, tr.Horizon)
	}
	if len(got.VMs) != len(tr.VMs) {
		t.Fatalf("vm count = %d, want %d", len(got.VMs), len(tr.VMs))
	}
	for i := range tr.VMs {
		if got.VMs[i] != tr.VMs[i] {
			t.Errorf("vm %d mismatch:\n got %+v\nwant %+v", i, got.VMs[i], tr.VMs[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	bad := []string{
		"",                       // empty
		"nota,horizon\n",         // missing #horizon
		"#horizon,xyz\n",         // bad horizon number
		"#horizon,10\nonlyone\n", // truncated header (1 field vs 19)
	}
	for i, s := range bad {
		if _, err := ReadCSV(strings.NewReader(s)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestReadCSVRowNumberInErrors(t *testing.T) {
	header := "#horizon,10\n" + strings.Join(vmHeader, ",") + "\n"
	good := "1,s,d,rg,r,os,IaaS,third,true,2,3.5,0,500,diurnal,20,50,4,60,0,77,0\n"
	badType := "9,s,d,rg,r,os,Bogus,third,true,2,3.5,0,500,diurnal,20,50,4,60,0,77,0\n"
	badCores, badFields := strings.Replace(good, ",2,3.5,", ",two,3.5,", 1), "just,three,fields\n"
	cases := []struct {
		name, input, wantSub string
	}{
		{"bad row 1", header + badType, "vm row 1:"},
		{"bad row 2", header + good + badType, "vm row 2:"},
		{"bad row 3", header + good + good + badCores, "vm row 3:"},
		{"wrong field count row 2", header + good + badFields, "vm row 2:"},
	}
	for _, c := range cases {
		_, err := ReadCSV(strings.NewReader(c.input))
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not name %q", c.name, err, c.wantSub)
		}
	}
}

func TestReadCSVBadRow(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	corrupted := strings.Replace(buf.String(), "IaaS,third", "Bogus,third", 1)
	if _, err := ReadCSV(strings.NewReader(corrupted)); err == nil {
		t.Error("expected error on corrupted type column")
	}
}

func TestWriteReadingsCSV(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteReadingsCSV(&buf, tr, []int{0}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// header + 500/5 readings
	if len(lines) != 1+100 {
		t.Errorf("line count = %d, want 101", len(lines))
	}
	if err := WriteReadingsCSV(&buf, tr, []int{99}); err == nil {
		t.Error("expected error for out-of-range index")
	}
}

// Property: CSV round trip preserves any valid VM.
func TestQuickCSVRoundTrip(t *testing.T) {
	f := func(id int64, cores uint8, mem uint16, created, life uint32, seed uint64) bool {
		v := VM{
			ID: id, Subscription: "s", Deployment: "d", Region: "rg", Role: "r", OS: "os",
			Type: PaaS, Party: FirstParty, Production: true,
			Cores: int(cores%64) + 1, MemoryGB: float64(mem%1024) + 0.5,
			Created: Minutes(created), Deleted: Minutes(created) + Minutes(life) + 1,
			Util: UtilModel{Kind: UtilFlat, Base: 42, Seed: seed},
		}
		tr := &Trace{Horizon: 1, VMs: []VM{v}}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tr); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		return len(got.VMs) == 1 && got.VMs[0] == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: utilization invariants hold for arbitrary model parameters.
func TestQuickUtilModelInvariants(t *testing.T) {
	f := func(kind uint8, base, amp, noise float64, seed uint64, tm uint32) bool {
		m := UtilModel{
			Kind:         UtilKind(kind % 5),
			Base:         math.Mod(math.Abs(base), 100),
			Amplitude:    math.Mod(math.Abs(amp), 100),
			NoiseSD:      math.Mod(math.Abs(noise), 30),
			SpikeProb:    0.1,
			Seed:         seed,
			RampLifetime: 1000,
		}
		if math.IsNaN(m.Base) || math.IsNaN(m.Amplitude) || math.IsNaN(m.NoiseSD) {
			return true
		}
		min, avg, max := m.At(Minutes(tm))
		return min >= 0 && min <= avg && avg <= max && max <= 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
