package trace

import "testing"

func BenchmarkUtilModelAt(b *testing.B) {
	m := UtilModel{Kind: UtilBursty, Base: 10, Amplitude: 70, SpikeProb: 0.1, NoiseSD: 3, Seed: 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.At(Minutes(i * 5))
	}
}

func BenchmarkSummaryStatsMonth(b *testing.B) {
	v := VM{
		Cores: 2, Created: 0, Deleted: 30 * 24 * 60,
		Util: UtilModel{Kind: UtilDiurnal, Base: 20, Amplitude: 50, NoiseSD: 4, Seed: 9},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SummaryStats(&v, v.Deleted)
	}
}
