package trace

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"testing"
)

func BenchmarkUtilModelAt(b *testing.B) {
	m := UtilModel{Kind: UtilBursty, Base: 10, Amplitude: 70, SpikeProb: 0.1, NoiseSD: 3, Seed: 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.At(Minutes(i * 5))
	}
}

// benchSizes returns the fleet sizes the persistence benchmarks run at.
// RC_TRACE_BENCH_SIZES overrides them (comma-separated), so CI can run a
// quick smoke while `make bench-trace` measures the full 100k/500k pair.
func benchSizes(b *testing.B) []int {
	spec := os.Getenv("RC_TRACE_BENCH_SIZES")
	if spec == "" {
		spec = "100000,500000"
	}
	var sizes []int
	for _, f := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			b.Fatalf("bad RC_TRACE_BENCH_SIZES entry %q", f)
		}
		sizes = append(sizes, n)
	}
	return sizes
}

// benchTraces caches the generated populations across benchmarks in one
// process, so ReadCSV and ColumnsDecode measure codec cost over the
// same trace without regenerating 500k VMs per benchmark.
var benchTraces = map[int]*Trace{}

func benchTrace(n int) *Trace {
	tr, ok := benchTraces[n]
	if !ok {
		tr = genTrace(n)
		benchTraces[n] = tr
	}
	return tr
}

// BenchmarkWriteCSV is the row-path persistence baseline.
func BenchmarkWriteCSV(b *testing.B) {
	for _, n := range benchSizes(b) {
		b.Run(fmt.Sprintf("vms=%d", n), func(b *testing.B) {
			tr := benchTrace(n)
			var buf bytes.Buffer
			if err := WriteCSV(&buf, tr); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(buf.Len()))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := WriteCSV(&buf, tr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReadCSV is the row-path load baseline the binary decode is
// measured against.
func BenchmarkReadCSV(b *testing.B) {
	for _, n := range benchSizes(b) {
		b.Run(fmt.Sprintf("vms=%d", n), func(b *testing.B) {
			var buf bytes.Buffer
			if err := WriteCSV(&buf, benchTrace(n)); err != nil {
				b.Fatal(err)
			}
			data := buf.Bytes()
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ReadCSV(bytes.NewReader(data)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkColumnsBuild measures FromTrace: row → columnar conversion
// including string interning.
func BenchmarkColumnsBuild(b *testing.B) {
	for _, n := range benchSizes(b) {
		b.Run(fmt.Sprintf("vms=%d", n), func(b *testing.B) {
			tr := benchTrace(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if c := FromTrace(tr); c.Len() != n {
					b.Fatal("bad build")
				}
			}
		})
	}
}

// BenchmarkColumnsEncode measures the binary writer (the CSV-write
// counterpart).
func BenchmarkColumnsEncode(b *testing.B) {
	for _, n := range benchSizes(b) {
		b.Run(fmt.Sprintf("vms=%d", n), func(b *testing.B) {
			c := FromTrace(benchTrace(n))
			data, err := EncodeColumns(c)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := WriteColumns(io.Discard, c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkColumnsDecode measures the binary reader (the ReadCSV
// counterpart; the ≥5× throughput / ≥10× allocation target pair).
func BenchmarkColumnsDecode(b *testing.B) {
	for _, n := range benchSizes(b) {
		b.Run(fmt.Sprintf("vms=%d", n), func(b *testing.B) {
			data, err := EncodeColumns(FromTrace(benchTrace(n)))
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := DecodeColumns(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkColumnsDecodeParallel measures DecodeColumnsParallel at
// growing worker counts. The column pass is embarrassingly parallel
// across frames; observed speedup is bounded by GOMAXPROCS — on a
// single-core host every worker count serializes onto one core and
// ns/op stays flat, so read these numbers against the host's core
// count, not the worker axis alone.
func BenchmarkColumnsDecodeParallel(b *testing.B) {
	for _, n := range benchSizes(b) {
		data, err := EncodeColumns(FromTrace(benchTrace(n)))
		if err != nil {
			b.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("vms=%d/workers=%d", n, workers), func(b *testing.B) {
				b.SetBytes(int64(len(data)))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := DecodeColumnsParallel(data, workers); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkColumnsEncodeParallel measures the worker-pipelined frame
// encoder; output bytes are identical to WriteColumns at any worker
// count. The same GOMAXPROCS bound as the decode benchmark applies.
func BenchmarkColumnsEncodeParallel(b *testing.B) {
	for _, n := range benchSizes(b) {
		c := FromTrace(benchTrace(n))
		data, err := EncodeColumns(c)
		if err != nil {
			b.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("vms=%d/workers=%d", n, workers), func(b *testing.B) {
				b.SetBytes(int64(len(data)))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := WriteColumnsParallel(io.Discard, c, workers); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAzureTranscode measures the streaming vmtable → RCTB path:
// one CSV pass, chunked encode, no row slice.
func BenchmarkAzureTranscode(b *testing.B) {
	for _, n := range benchSizes(b) {
		b.Run(fmt.Sprintf("vms=%d", n), func(b *testing.B) {
			raw := genAzureCSV(n)
			const horizon = 30 * 24 * 3600
			b.SetBytes(int64(len(raw)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := TranscodeAzureVMTable(io.Discard, strings.NewReader(raw), horizon); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSummaryStatsMonth(b *testing.B) {
	v := VM{
		Cores: 2, Created: 0, Deleted: 30 * 24 * 60,
		Util: UtilModel{Kind: UtilDiurnal, Base: 20, Amplitude: 50, NoiseSD: 4, Seed: 9},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SummaryStats(&v, v.Deleted)
	}
}
