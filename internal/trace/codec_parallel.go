package trace

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallel forms of the RCTB codec. Frames are self-delimiting, and the
// only order-dependent state is the dictionary: on decode, deltas must
// be applied in frame order; on encode, each frame's delta span depends
// on the running high-water mark. Both are cheap structural scans, so
// the codec splits into a serial structure pass and a parallel column
// pass — the ~21 varint/float kernels per chunk that dominate the
// cost. Every frame lands at a fixed position, so for any worker count
// the decoded Columns and the encoded bytes are identical to the
// serial codec's, byte for byte.

// parseColumnsHeader validates an in-memory blob's magic, version, and
// horizon, returning the horizon and the offset of the first frame.
func parseColumnsHeader(data []byte) (Minutes, int, error) {
	if len(data) < 5 || string(data[:4]) != ColumnsMagic {
		return 0, 0, ErrBadMagic
	}
	if data[4] != colsVersion {
		return 0, 0, fmt.Errorf("%w: unsupported version %d (have %d)", errCorrupt, data[4], colsVersion)
	}
	h, n := uvarint(data[5:])
	if n <= 0 {
		return 0, 0, fmt.Errorf("%w: horizon", errCorrupt)
	}
	return Minutes(int64(h>>1) ^ -int64(h&1)), 5 + n, nil
}

// DecodeColumnsParallel parses a blob produced by EncodeColumns using
// up to workers goroutines for the column kernels (workers <= 0 means
// GOMAXPROCS). The result is identical to DecodeColumns.
func DecodeColumnsParallel(data []byte, workers int) (*Columns, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	horizon, off, err := parseColumnsHeader(data)
	if err != nil {
		return nil, err
	}

	// Serial structure pass: frame boundaries, VM counts, and dictionary
	// deltas, with the same validation the streaming reader applies
	// (short frames only at the end, verified trailer, no trailing data).
	type frameSpan struct {
		d      frameDec
		n      int // VM count
		tabLen int // dictionary size visible to this frame
	}
	tab := NewStringTable()
	var spans []frameSpan
	total, short := 0, false
	for {
		plen, n := uvarint(data[off:])
		if n <= 0 {
			return nil, fmt.Errorf("%w: frame length", errCorrupt)
		}
		off += n
		if plen == 0 {
			tot, n := uvarint(data[off:])
			if n <= 0 {
				return nil, fmt.Errorf("%w: trailer", errCorrupt)
			}
			off += n
			if int(tot) != total {
				return nil, fmt.Errorf("%w: trailer count %d, read %d VMs", errCorrupt, tot, total)
			}
			if off != len(data) {
				return nil, fmt.Errorf("%w: trailing data after trailer", errCorrupt)
			}
			break
		}
		if short {
			return nil, fmt.Errorf("%w: %v", errCorrupt, errShortNotLast)
		}
		if plen > uint64(len(data)-off) {
			return nil, fmt.Errorf("%w: truncated frame (%d of %d bytes)", errCorrupt, len(data)-off, plen)
		}
		sp := frameSpan{d: frameDec{b: data[off : off+int(plen)]}}
		off += int(plen)
		nvm, err := decodeFrameDict(&sp.d, tab)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", errCorrupt, err)
		}
		if nvm < ChunkSize {
			short = true
		}
		sp.n, sp.tabLen = nvm, tab.Len()
		total += nvm
		spans = append(spans, sp)
	}

	// Column pass: with the dictionary complete, every frame is
	// independent given its recorded table snapshot. Chunks land at
	// their frame's index, so the assembled Columns matches the serial
	// decoder for any worker count.
	chunks := make([]*Chunk, len(spans))
	errs := make([]error, len(spans))
	if workers > len(spans) {
		workers = len(spans)
	}
	if workers <= 1 {
		for i := range spans {
			chunks[i], errs[i] = decodeFrameCols(&spans[i].d, tab, spans[i].tabLen, spans[i].n)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(spans) {
						return
					}
					chunks[i], errs[i] = decodeFrameCols(&spans[i].d, tab, spans[i].tabLen, spans[i].n)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%w: %v", errCorrupt, err)
		}
	}

	cols := &Columns{Horizon: horizon, tab: tab}
	for _, ch := range chunks {
		cols.appendChunk(ch)
	}
	return cols, nil
}

// WriteColumnsParallel writes the binary encoding of c to w, encoding
// frame payloads across up to workers goroutines (workers <= 0 means
// GOMAXPROCS). Frames are written strictly in order, so the output is
// byte-identical to WriteColumns; in-flight payload memory is bounded
// to about two frames per worker.
func WriteColumnsParallel(w io.Writer, c *Columns, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	chunks := make([]*Chunk, 0, len(c.chunks))
	for _, ch := range c.chunks {
		if ch.Len() > 0 {
			chunks = append(chunks, ch)
		}
	}
	if workers > len(chunks) {
		workers = len(chunks)
	}
	if workers <= 1 {
		return WriteColumns(w, c)
	}

	// Serial dictionary pass: the delta span of every frame from one
	// scan of the string-ID columns.
	type dictSpan struct{ emitted, need int }
	spans := make([]dictSpan, len(chunks))
	emitted := 0
	for i, ch := range chunks {
		need := dictNeed(ch, emitted)
		spans[i] = dictSpan{emitted, need}
		emitted = need
	}

	// Parallel payload pass. Workers claim the next frame after taking a
	// semaphore token; the writer releases one token per frame written,
	// so at most 2×workers encoded payloads exist at once and the claim
	// order keeps the in-flight window contiguous (the writer always
	// waits on a frame some worker has already claimed).
	slots := make([]struct {
		payload []byte
		err     error
		ready   chan struct{}
	}, len(chunks))
	for i := range slots {
		slots[i].ready = make(chan struct{})
	}
	sem := make(chan struct{}, 2*workers)
	stop := make(chan struct{})
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case sem <- struct{}{}:
				case <-stop:
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(chunks) {
					<-sem
					return
				}
				slots[i].payload, slots[i].err =
					appendFramePayload(nil, chunks[i], c.tab, spans[i].emitted, spans[i].need)
				close(slots[i].ready)
			}
		}()
	}
	finish := func(err error) error {
		close(stop)
		wg.Wait()
		return err
	}

	if err := writeColumnsHeader(w, c.Horizon); err != nil {
		return finish(err)
	}
	var head [maxVarintLen]byte
	for i := range chunks {
		<-slots[i].ready
		if err := slots[i].err; err != nil {
			return finish(err)
		}
		p := slots[i].payload
		hn := putUvarint(head[:], uint64(len(p)))
		if _, err := w.Write(head[:hn]); err != nil {
			return finish(fmt.Errorf("trace: write frame header: %w", err))
		}
		if _, err := w.Write(p); err != nil {
			return finish(fmt.Errorf("trace: write frame: %w", err))
		}
		slots[i].payload = nil
		<-sem
	}
	return finish(writeColumnsTrailer(w, c.n))
}

// EncodeColumnsParallel returns the binary encoding of c, encoding
// frames across up to workers goroutines. The bytes are identical to
// EncodeColumns.
func EncodeColumnsParallel(c *Columns, workers int) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteColumnsParallel(&buf, c, workers); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
