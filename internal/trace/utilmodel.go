package trace

import (
	"fmt"
	"math"
)

// UtilKind names the shape of a VM's utilization time series.
type UtilKind int

// Utilization shapes. Diurnal models interactive workloads with a daily
// cycle; Flat models steady background services; Bursty models batch
// workloads with random spikes; Ramp models jobs whose demand grows over
// their lifetime; Idle models the first-party VM-creation-test workloads
// described in Section 3.2 (created and quickly killed, doing no work).
const (
	UtilFlat UtilKind = iota
	UtilDiurnal
	UtilBursty
	UtilRamp
	UtilIdle
)

// String implements fmt.Stringer.
func (k UtilKind) String() string {
	switch k {
	case UtilFlat:
		return "flat"
	case UtilDiurnal:
		return "diurnal"
	case UtilBursty:
		return "bursty"
	case UtilRamp:
		return "ramp"
	case UtilIdle:
		return "idle"
	default:
		return fmt.Sprintf("UtilKind(%d)", int(k))
	}
}

// ParseUtilKind parses the String form.
func ParseUtilKind(s string) (UtilKind, error) {
	for _, k := range []UtilKind{UtilFlat, UtilDiurnal, UtilBursty, UtilRamp, UtilIdle} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown util kind %q", s)
}

// UtilModel is a compact deterministic generator of 5-minute utilization
// readings. Given the same parameters, At(t) always returns the same
// values, for any t in any order — noise comes from a counter-based hash of
// (Seed, t), not from sequential PRNG state. All levels are percentages of
// the VM's CPU allocation in [0, 100].
type UtilModel struct {
	Kind UtilKind
	// Base is the baseline average utilization level.
	Base float64
	// Amplitude is the peak-to-baseline swing for the diurnal shape, or
	// the spike height for the bursty shape, or the total rise for ramps.
	Amplitude float64
	// NoiseSD is the standard deviation of per-interval Gaussian noise.
	NoiseSD float64
	// PhaseMin shifts the diurnal cycle (minutes).
	PhaseMin int64
	// SpikeProb is the per-interval probability of a spike (bursty only).
	SpikeProb float64
	// Seed decorrelates VMs with identical parameters.
	Seed uint64
	// RampLifetime is the lifetime over which a ramp rises (minutes);
	// zero disables the ramp term even for UtilRamp.
	RampLifetime int64
}

const minutesPerDay = 24 * 60

// At returns the (min, avg, max) utilization over the 5-minute interval
// starting at minute t. Values are clamped to [0, 100].
func (m *UtilModel) At(t Minutes) (min, avg, max float64) {
	level := m.Base
	switch m.Kind {
	case UtilDiurnal:
		phase := 2 * math.Pi * float64((int64(t)+m.PhaseMin)%minutesPerDay) / minutesPerDay
		// Peak mid-day: sin with a -pi/2 shift so minute 0 is the trough.
		level += m.Amplitude * (0.5 - 0.5*math.Cos(phase))
	case UtilBursty:
		if m.SpikeProb > 0 && hashFloat(m.Seed, uint64(t), 1) < m.SpikeProb {
			level += m.Amplitude
		}
	case UtilRamp:
		if m.RampLifetime > 0 {
			frac := float64(int64(t)%m.RampLifetime) / float64(m.RampLifetime)
			level += m.Amplitude * frac
		}
	case UtilIdle:
		level = m.Base // typically ~0-2%
	}
	noise := m.NoiseSD * hashNorm(m.Seed, uint64(t), 2)
	avg = clampPct(level + noise)
	// Within-interval spread: max above avg, min below, each with its own
	// deterministic jitter. Bursty workloads additionally burn CPU in
	// sub-interval bursts, so their per-interval max frequently approaches
	// the full allocation even when the interval average stays low — the
	// low-average/high-P95 pattern of Section 3.2.
	spread := 4 + m.NoiseSD
	max = clampPct(avg + spread*(0.5+0.5*hashFloat(m.Seed, uint64(t), 3)))
	if m.Kind == UtilBursty {
		u := hashFloat(m.Seed, uint64(t), 5)
		max = clampPct(max + m.Amplitude*u*u)
	}
	min = clampPct(avg - spread*(0.5+0.5*hashFloat(m.Seed, uint64(t), 4)))
	if min > avg {
		min = avg
	}
	if max < avg {
		max = avg
	}
	return min, avg, max
}

func clampPct(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 100 {
		return 100
	}
	return x
}

// splitmix64 is the standard 64-bit finalizer used as a counter-based hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashFloat maps (seed, t, stream) to a uniform float64 in [0, 1).
func hashFloat(seed, t, stream uint64) float64 {
	h := splitmix64(seed ^ splitmix64(t^splitmix64(stream)))
	return float64(h>>11) / float64(1<<53)
}

// hashNorm maps (seed, t, stream) to a standard normal variate via
// Box-Muller on two hashed uniforms.
func hashNorm(seed, t, stream uint64) float64 {
	u1 := hashFloat(seed, t, stream*2+101)
	u2 := hashFloat(seed, t, stream*2+102)
	for u1 == 0 {
		u1 = 0.5
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
