package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// The on-disk trace format is CSV with a header, one VM per row, carrying
// both the schedule columns (in the spirit of the public AzurePublicDataset
// vmtable) and the deterministic utilization-model columns that replace
// materialized readings.

var vmHeader = []string{
	"vmid", "subscription", "deployment", "region", "role", "os", "type",
	"party", "production", "cores", "memgb", "created", "deleted",
	"utilkind", "base", "amplitude", "noisesd", "phasemin", "spikeprob",
	"seed", "ramplifetime",
}

// WriteCSV writes the trace to w. The horizon is recorded in a leading
// comment-style row ("#horizon", minutes).
func WriteCSV(w io.Writer, tr *Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"#horizon", strconv.FormatInt(int64(tr.Horizon), 10)}); err != nil {
		return fmt.Errorf("trace: write horizon: %w", err)
	}
	if err := cw.Write(vmHeader); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	row := make([]string, len(vmHeader))
	for i := range tr.VMs {
		encodeVMRow(&tr.VMs[i], row)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write vm %d: %w", tr.VMs[i].ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // the horizon row has 2 fields

	horizonRow, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read horizon: %w", err)
	}
	if len(horizonRow) != 2 || horizonRow[0] != "#horizon" {
		return nil, fmt.Errorf("trace: missing #horizon row, got %v", horizonRow)
	}
	horizon, err := strconv.ParseInt(horizonRow[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("trace: bad horizon: %w", err)
	}

	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if len(header) != len(vmHeader) {
		return nil, fmt.Errorf("trace: header has %d fields, want %d", len(header), len(vmHeader))
	}

	tr := &Trace{Horizon: Minutes(horizon)}
	for rowNum := 1; ; rowNum++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: vm row %d: %w", rowNum, err)
		}
		v, err := parseVMRow(row)
		if err != nil {
			return nil, fmt.Errorf("trace: vm row %d: %w", rowNum, err)
		}
		tr.VMs = append(tr.VMs, v)
	}
	return tr, nil
}

func parseVMRow(row []string) (VM, error) {
	var v VM
	if len(row) != len(vmHeader) {
		return v, fmt.Errorf("row has %d fields, want %d", len(row), len(vmHeader))
	}
	var err error
	if v.ID, err = strconv.ParseInt(row[0], 10, 64); err != nil {
		return v, fmt.Errorf("vmid: %w", err)
	}
	v.Subscription, v.Deployment, v.Region, v.Role, v.OS = row[1], row[2], row[3], row[4], row[5]
	if v.Type, err = ParseVMType(row[6]); err != nil {
		return v, err
	}
	if v.Party, err = ParseParty(row[7]); err != nil {
		return v, err
	}
	if v.Production, err = strconv.ParseBool(row[8]); err != nil {
		return v, fmt.Errorf("production: %w", err)
	}
	if v.Cores, err = strconv.Atoi(row[9]); err != nil {
		return v, fmt.Errorf("cores: %w", err)
	}
	if v.MemoryGB, err = strconv.ParseFloat(row[10], 64); err != nil {
		return v, fmt.Errorf("memgb: %w", err)
	}
	created, err := strconv.ParseInt(row[11], 10, 64)
	if err != nil {
		return v, fmt.Errorf("created: %w", err)
	}
	v.Created = Minutes(created)
	deleted, err := strconv.ParseInt(row[12], 10, 64)
	if err != nil {
		return v, fmt.Errorf("deleted: %w", err)
	}
	if deleted < 0 {
		v.Deleted = NoEnd
	} else {
		v.Deleted = Minutes(deleted)
	}
	if v.Util.Kind, err = ParseUtilKind(row[13]); err != nil {
		return v, err
	}
	if v.Util.Base, err = strconv.ParseFloat(row[14], 64); err != nil {
		return v, fmt.Errorf("base: %w", err)
	}
	if v.Util.Amplitude, err = strconv.ParseFloat(row[15], 64); err != nil {
		return v, fmt.Errorf("amplitude: %w", err)
	}
	if v.Util.NoiseSD, err = strconv.ParseFloat(row[16], 64); err != nil {
		return v, fmt.Errorf("noisesd: %w", err)
	}
	if v.Util.PhaseMin, err = strconv.ParseInt(row[17], 10, 64); err != nil {
		return v, fmt.Errorf("phasemin: %w", err)
	}
	if v.Util.SpikeProb, err = strconv.ParseFloat(row[18], 64); err != nil {
		return v, fmt.Errorf("spikeprob: %w", err)
	}
	if v.Util.Seed, err = strconv.ParseUint(row[19], 10, 64); err != nil {
		return v, fmt.Errorf("seed: %w", err)
	}
	if v.Util.RampLifetime, err = strconv.ParseInt(row[20], 10, 64); err != nil {
		return v, fmt.Errorf("ramplifetime: %w", err)
	}
	return v, nil
}

// WriteReadingsCSV materializes and writes the 5-minute readings of the
// given VMs up to the horizon, in the paper's (id, timestamp, min, avg,
// max) shape. Intended for exporting small subsets, not whole traces.
func WriteReadingsCSV(w io.Writer, tr *Trace, vmIdx []int) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"vmid", "timestamp_min", "mincpu", "avgcpu", "maxcpu"}); err != nil {
		return err
	}
	for _, i := range vmIdx {
		if i < 0 || i >= len(tr.VMs) {
			return fmt.Errorf("trace: vm index %d out of range", i)
		}
		v := &tr.VMs[i]
		end := v.Deleted
		if end > tr.Horizon {
			end = tr.Horizon
		}
		for t := v.Created; t < end; t += ReadingIntervalMin {
			min, avg, max := v.Util.At(t)
			err := cw.Write([]string{
				strconv.FormatInt(v.ID, 10),
				strconv.FormatInt(int64(t), 10),
				strconv.FormatFloat(min, 'f', 3, 64),
				strconv.FormatFloat(avg, 'f', 3, 64),
				strconv.FormatFloat(max, 'f', 3, 64),
			})
			if err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
