package trace

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
)

// Compact binary trace codec. The CSV format spends most of its load
// time in field splitting, strconv parsing, and per-field string
// allocation; the binary format instead ships the columns of each chunk
// as contiguous runs — varint-delta integers, raw little-endian
// float64s, byte enums, a production bitset — with the intern table
// streamed as per-frame dictionary deltas. Decoding is a handful of
// tight kernels per chunk (all //rcvet:hotpath, zero allocations) plus
// one column-slice allocation batch per 8192 VMs.
//
// Wire format (all multi-byte integers little-endian; varints are the
// standard LEB128 base-128 encoding, signed values zigzag-folded):
//
//	header:  "RCTB" | version byte (1) | horizon zigzag-varint
//	frames:  payloadLen uvarint | payload    (payloadLen 0 = end)
//	trailer: total VM count uvarint          (after the 0 sentinel)
//
// Each frame payload carries one chunk (1..ChunkSize VMs):
//
//	n uvarint
//	newStrings uvarint, then per string: len uvarint | bytes
//	  (the strings first referenced by this frame, in intern-ID order)
//	id         n × zigzag delta (running, reset to 0 per frame)
//	sub, dep, region, role, os   n × uvarint intern IDs each
//	type, party                  n bytes each
//	production                   ⌈n/8⌉ bitset bytes (LSB first)
//	cores      n × uvarint
//	created    n × zigzag delta (running, reset per frame)
//	deleted    n × zigzag of (deleted − created); NoEnd encodes −1
//	memgb      n × float64
//	utilkind   n bytes
//	base, amplitude, noisesd     n × float64 each
//	phasemin   n × zigzag
//	spikeprob  n × float64
//	seed       n × fixed 8-byte little-endian (seeds are high-entropy;
//	           varints would expand them)
//	ramplifetime n × zigzag
//
// Frames are self-delimiting, so a reader can stream chunk by chunk
// without loading the file; the per-frame delta reset keeps every frame
// independently decodable given the dictionary built so far.

// Magic and version of the binary trace format.
var colsMagic = [4]byte{'R', 'C', 'T', 'B'}

// ColumnsMagic is the binary trace format's 4-byte header prefix, for
// callers that sniff a file's format before choosing a reader.
const ColumnsMagic = "RCTB"

const colsVersion = 1

// maxVarintLen is the longest LEB128 encoding of a uint64.
const maxVarintLen = 10

// Sentinel errors for malformed input; the decode wrappers add frame
// context. The hot kernels only flip a flag, so they stay
// allocation-free on both the clean and the corrupt path.
var (
	// ErrBadMagic marks input that is not a binary trace (useful for
	// format sniffing).
	ErrBadMagic     = errors.New("trace: not a binary trace (bad magic)")
	errCorrupt      = errors.New("trace: corrupt binary trace")
	errBadFrame     = errors.New("malformed frame")
	errShortNotLast = errors.New("short frame is not the final frame")
)

// --- varint / little-endian primitives ---

// appendUvarint appends the LEB128 encoding of v.
func appendUvarint(p []byte, v uint64) []byte {
	for v >= 0x80 {
		p = append(p, byte(v)|0x80)
		v >>= 7
	}
	return append(p, byte(v))
}

// putUvarint writes the LEB128 encoding of v into b (which must have
// room for maxVarintLen bytes) and returns the encoded length.
func putUvarint(b []byte, v uint64) int {
	i := 0
	for v >= 0x80 {
		b[i] = byte(v) | 0x80
		v >>= 7
		i++
	}
	b[i] = byte(v)
	return i + 1
}

// appendZigzag appends the zigzag-folded LEB128 encoding of v.
func appendZigzag(p []byte, v int64) []byte {
	return appendUvarint(p, uint64(v)<<1^uint64(v>>63))
}

// appendF64 appends the little-endian IEEE-754 bits of f.
func appendF64(p []byte, f float64) []byte {
	u := math.Float64bits(f)
	return append(p, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

// appendU64 appends v as fixed 8 little-endian bytes.
func appendU64(p []byte, v uint64) []byte {
	return append(p, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// uvarint decodes a LEB128 varint from the front of b, returning the
// value and the number of bytes consumed (0 = truncated, negative =
// overflow at |n| bytes), mirroring encoding/binary.Uvarint but staying
// inside the package so the summary engine proves it allocation-free.
//
//rcvet:hotpath
func uvarint(b []byte) (uint64, int) {
	var x uint64
	var s uint
	for i := 0; i < len(b); i++ {
		c := b[i]
		if c < 0x80 {
			if i >= maxVarintLen-1 && c > 1 {
				return 0, -(i + 1)
			}
			return x | uint64(c)<<s, i + 1
		}
		if i >= maxVarintLen-1 {
			return 0, -(i + 1)
		}
		x |= uint64(c&0x7f) << s
		s += 7
	}
	return 0, 0
}

// le64 reads 8 little-endian bytes (b must hold at least 8).
//
//rcvet:hotpath
func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// --- frame decoding ---

// frameDec is a cursor over one frame payload. The kernels record
// corruption in bad instead of returning errors so they stay off the
// allocator; decodeFrame translates bad into a wrapped error once.
type frameDec struct {
	b   []byte
	off int
	bad bool
}

//rcvet:hotpath
func (d *frameDec) uvarint() uint64 {
	x, n := uvarint(d.b[d.off:])
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.off += n
	return x
}

//rcvet:hotpath
func (d *frameDec) zigzag() int64 {
	u := d.uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

// deltaColumn fills dst with a running-sum zigzag-delta column.
//
//rcvet:hotpath
func (d *frameDec) deltaColumn(dst []int64) {
	prev := int64(0)
	for i := range dst {
		prev += d.zigzag()
		dst[i] = prev
	}
}

// zigzagColumn fills dst with independent zigzag values.
//
//rcvet:hotpath
func (d *frameDec) zigzagColumn(dst []int64) {
	for i := range dst {
		dst[i] = d.zigzag()
	}
}

// stringIDColumn fills dst with uvarint intern IDs, validating each
// against the table size.
//
//rcvet:hotpath
func (d *frameDec) stringIDColumn(dst []uint32, tabLen int) {
	for i := range dst {
		v := d.uvarint()
		if v >= uint64(tabLen) {
			d.bad = true
			return
		}
		dst[i] = uint32(v)
	}
}

// byteColumn copies n raw bytes, validating each is at most max.
//
//rcvet:hotpath
func (d *frameDec) byteColumn(dst []uint8, max uint8) {
	n := len(dst)
	if d.off+n > len(d.b) {
		d.bad = true
		return
	}
	copy(dst, d.b[d.off:d.off+n])
	d.off += n
	for _, v := range dst {
		if v > max {
			d.bad = true
			return
		}
	}
}

// boolColumn unpacks an LSB-first bitset.
//
//rcvet:hotpath
func (d *frameDec) boolColumn(dst []bool) {
	nb := (len(dst) + 7) / 8
	if d.off+nb > len(d.b) {
		d.bad = true
		return
	}
	for i := range dst {
		dst[i] = d.b[d.off+i/8]>>(uint(i)&7)&1 == 1
	}
	d.off += nb
}

// coresColumn fills dst with uvarint core counts bounded to int32.
//
//rcvet:hotpath
func (d *frameDec) coresColumn(dst []int32) {
	for i := range dst {
		v := d.uvarint()
		if v > math.MaxInt32 {
			d.bad = true
			return
		}
		dst[i] = int32(v)
	}
}

// deletedColumn reconstructs Deleted from zigzag deltas against
// Created; −1 is the NoEnd sentinel and other negatives are corrupt.
//
//rcvet:hotpath
func (d *frameDec) deletedColumn(dst, created []int64) {
	for i := range dst {
		delta := d.zigzag()
		switch {
		case delta == -1:
			dst[i] = int64(NoEnd)
		case delta < 0:
			d.bad = true
			return
		default:
			del := created[i] + delta
			if del < created[i] { // int64 overflow would not re-encode
				d.bad = true
				return
			}
			dst[i] = del
		}
	}
}

// f64Column fills dst with raw little-endian float64s.
//
//rcvet:hotpath
func (d *frameDec) f64Column(dst []float64) {
	if d.off+8*len(dst) > len(d.b) {
		d.bad = true
		return
	}
	for i := range dst {
		dst[i] = math.Float64frombits(le64(d.b[d.off:]))
		d.off += 8
	}
}

// u64Column fills dst with fixed 8-byte little-endian values.
//
//rcvet:hotpath
func (d *frameDec) u64Column(dst []uint64) {
	if d.off+8*len(dst) > len(d.b) {
		d.bad = true
		return
	}
	for i := range dst {
		dst[i] = le64(d.b[d.off:])
		d.off += 8
	}
}

// decodeFrame parses one frame payload into a fresh chunk, appending
// any new dictionary strings to tab.
func decodeFrame(payload []byte, tab *StringTable) (*Chunk, error) {
	d := &frameDec{b: payload}
	n, err := decodeFrameDict(d, tab)
	if err != nil {
		return nil, err
	}
	return decodeFrameCols(d, tab, tab.Len(), n)
}

// decodeFrameDict parses a frame's VM count and dictionary delta,
// appending the new strings to tab, and leaves d positioned at the
// column runs. It is the order-dependent part of frame decoding: the
// dictionary must be applied in frame order, while the column runs that
// follow are independent (see DecodeColumnsParallel).
func decodeFrameDict(d *frameDec, tab *StringTable) (int, error) {
	n64 := d.uvarint()
	if d.bad || n64 == 0 || n64 > ChunkSize {
		return 0, fmt.Errorf("%w: frame VM count %d", errBadFrame, n64)
	}

	// Dictionary delta. Each new string needs at least one length byte,
	// so the count is bounded by the remaining payload.
	nnew := d.uvarint()
	if d.bad || nnew > uint64(len(d.b)-d.off) {
		return 0, fmt.Errorf("%w: dictionary count %d", errBadFrame, nnew)
	}
	for i := uint64(0); i < nnew; i++ {
		slen := d.uvarint()
		if d.bad || slen > uint64(len(d.b)-d.off) {
			return 0, fmt.Errorf("%w: dictionary string %d", errBadFrame, i)
		}
		tab.add(string(d.b[d.off : d.off+int(slen)]))
		d.off += int(slen)
	}
	return int(n64), nil
}

// decodeFrameCols decodes the column runs that follow a frame's
// dictionary delta into a fresh n-VM chunk. tabLen is the dictionary
// size visible to this frame — the snapshot taken right after its delta
// was applied. The serial reader passes the live table size; the
// parallel decoder passes the recorded snapshot, because by the time a
// worker runs the shared table already holds later frames' strings and
// validating against it would accept forward references the serial
// decoder rejects.
func decodeFrameCols(d *frameDec, tab *StringTable, tabLen, n int) (*Chunk, error) {
	payload := d.b
	ch := newChunk(tab, n)
	ch.ID = ch.ID[:n]
	ch.Sub, ch.Dep, ch.Region, ch.Role, ch.OS =
		ch.Sub[:n], ch.Dep[:n], ch.Region[:n], ch.Role[:n], ch.OS[:n]
	ch.Type, ch.Party, ch.UtilKind = ch.Type[:n], ch.Party[:n], ch.UtilKind[:n]
	ch.Production = ch.Production[:n]
	ch.Cores = ch.Cores[:n]
	ch.MemoryGB = ch.MemoryGB[:n]
	ch.Created, ch.Deleted = ch.Created[:n], ch.Deleted[:n]
	ch.Base, ch.Amplitude, ch.NoiseSD = ch.Base[:n], ch.Amplitude[:n], ch.NoiseSD[:n]
	ch.SpikeProb = ch.SpikeProb[:n]
	ch.PhaseMin, ch.RampLifetime = ch.PhaseMin[:n], ch.RampLifetime[:n]
	ch.Seed = ch.Seed[:n]

	d.deltaColumn(ch.ID)
	d.stringIDColumn(ch.Sub, tabLen)
	d.stringIDColumn(ch.Dep, tabLen)
	d.stringIDColumn(ch.Region, tabLen)
	d.stringIDColumn(ch.Role, tabLen)
	d.stringIDColumn(ch.OS, tabLen)
	d.byteColumn(ch.Type, uint8(PaaS))
	d.byteColumn(ch.Party, uint8(ThirdParty))
	d.boolColumn(ch.Production)
	d.coresColumn(ch.Cores)
	d.deltaColumn(ch.Created)
	d.deletedColumn(ch.Deleted, ch.Created)
	d.f64Column(ch.MemoryGB)
	d.byteColumn(ch.UtilKind, uint8(UtilIdle))
	d.f64Column(ch.Base)
	d.f64Column(ch.Amplitude)
	d.f64Column(ch.NoiseSD)
	d.zigzagColumn(ch.PhaseMin)
	d.f64Column(ch.SpikeProb)
	d.u64Column(ch.Seed)
	d.zigzagColumn(ch.RampLifetime)
	if d.bad {
		return nil, fmt.Errorf("%w: truncated or out-of-range column at byte %d", errBadFrame, d.off)
	}
	if d.off != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing bytes", errBadFrame, len(payload)-d.off)
	}
	return ch, nil
}

// --- frame encoding ---

// frameEnc tracks the dictionary high-water mark and reuses the payload
// scratch across frames.
type frameEnc struct {
	tab     *StringTable
	emitted int
	payload []byte
}

// writeFrame encodes ch into e.payload and writes the length-prefixed
// frame to w.
func (e *frameEnc) writeFrame(w io.Writer, ch *Chunk) error {
	need := dictNeed(ch, e.emitted)
	p, err := appendFramePayload(e.payload[:0], ch, e.tab, e.emitted, need)
	if err != nil {
		return err
	}
	e.payload = p
	e.emitted = need

	var head [maxVarintLen]byte
	hn := putUvarint(head[:], uint64(len(p)))
	if _, err := w.Write(head[:hn]); err != nil {
		return fmt.Errorf("trace: write frame header: %w", err)
	}
	if _, err := w.Write(p); err != nil {
		return fmt.Errorf("trace: write frame: %w", err)
	}
	return nil
}

// dictNeed returns the dictionary high-water mark after ch: one past
// the highest string ID its string columns reference, or emitted when
// the chunk only reuses already-shipped strings. Because IDs are
// assigned in first-use order, the spans [emitted, need) for every
// frame are computable in one cheap serial scan — which is what lets
// frame payloads encode in parallel (see WriteColumnsParallel).
//
//rcvet:hotpath
func dictNeed(ch *Chunk, emitted int) int {
	need := emitted
	for _, col := range [...][]uint32{ch.Sub, ch.Dep, ch.Region, ch.Role, ch.OS} {
		for _, id := range col {
			if int(id) >= need {
				need = int(id) + 1
			}
		}
	}
	return need
}

// appendFramePayload appends ch's frame payload — VM count, the
// dictionary delta covering tab's IDs [emitted, need), and the column
// runs — to p. It only reads ch and tab, so distinct frames can encode
// concurrently once their dictionary spans are known.
func appendFramePayload(p []byte, ch *Chunk, tab *StringTable, emitted, need int) ([]byte, error) {
	n := ch.Len()
	p = appendUvarint(p, uint64(n))
	p = appendUvarint(p, uint64(need-emitted))
	for _, s := range tab.strs[emitted:need] {
		p = appendUvarint(p, uint64(len(s)))
		p = append(p, s...)
	}

	prev := int64(0)
	for _, id := range ch.ID {
		p = appendZigzag(p, id-prev)
		prev = id
	}
	for _, col := range [...][]uint32{ch.Sub, ch.Dep, ch.Region, ch.Role, ch.OS} {
		for _, id := range col {
			p = appendUvarint(p, uint64(id))
		}
	}
	p = append(p, ch.Type...)
	p = append(p, ch.Party...)
	nb := (n + 7) / 8
	for b := 0; b < nb; b++ {
		var bits uint8
		for j := 0; j < 8 && b*8+j < n; j++ {
			if ch.Production[b*8+j] {
				bits |= 1 << uint(j)
			}
		}
		p = append(p, bits)
	}
	for i, c := range ch.Cores {
		if c < 0 {
			return nil, fmt.Errorf("trace: vm %d: negative core count %d is not encodable", ch.ID[i], c)
		}
		p = appendUvarint(p, uint64(c))
	}
	prev = 0
	for _, t := range ch.Created {
		p = appendZigzag(p, t-prev)
		prev = t
	}
	for i, del := range ch.Deleted {
		if Minutes(del) == NoEnd {
			p = appendZigzag(p, -1)
			continue
		}
		delta := del - ch.Created[i]
		if delta < 0 {
			return nil, fmt.Errorf("trace: vm %d: deleted %d before created %d is not encodable",
				ch.ID[i], del, ch.Created[i])
		}
		p = appendZigzag(p, delta)
	}
	for _, f := range ch.MemoryGB {
		p = appendF64(p, f)
	}
	p = append(p, ch.UtilKind...)
	for _, f := range ch.Base {
		p = appendF64(p, f)
	}
	for _, f := range ch.Amplitude {
		p = appendF64(p, f)
	}
	for _, f := range ch.NoiseSD {
		p = appendF64(p, f)
	}
	for _, v := range ch.PhaseMin {
		p = appendZigzag(p, v)
	}
	for _, f := range ch.SpikeProb {
		p = appendF64(p, f)
	}
	for _, s := range ch.Seed {
		p = appendU64(p, s)
	}
	for _, v := range ch.RampLifetime {
		p = appendZigzag(p, v)
	}
	return p, nil
}

// writeColumnsHeader writes the magic, version, and horizon.
func writeColumnsHeader(w io.Writer, horizon Minutes) error {
	var head [4 + 1 + maxVarintLen]byte
	copy(head[:], colsMagic[:])
	head[4] = colsVersion
	n := 5 + putUvarint(head[5:], uint64(int64(horizon))<<1^uint64(int64(horizon)>>63))
	if _, err := w.Write(head[:n]); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	return nil
}

// writeColumnsTrailer writes the end sentinel and the total VM count.
func writeColumnsTrailer(w io.Writer, total int) error {
	var tail [1 + maxVarintLen]byte
	tail[0] = 0 // zero-length frame = end of stream
	n := 1 + putUvarint(tail[1:], uint64(total))
	if _, err := w.Write(tail[:n]); err != nil {
		return fmt.Errorf("trace: write trailer: %w", err)
	}
	return nil
}

// WriteColumns writes the binary encoding of c to w.
func WriteColumns(w io.Writer, c *Columns) error {
	if err := writeColumnsHeader(w, c.Horizon); err != nil {
		return err
	}
	enc := frameEnc{tab: c.tab}
	for _, ch := range c.chunks {
		if ch.Len() == 0 {
			continue
		}
		if err := enc.writeFrame(w, ch); err != nil {
			return err
		}
	}
	return writeColumnsTrailer(w, c.n)
}

// EncodeColumns returns the binary encoding of c as one byte slice
// (the shape store blobs use).
func EncodeColumns(c *Columns) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteColumns(&buf, c); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// --- streaming reader ---

// ColumnsReader streams a binary trace chunk by chunk, so consumers can
// process traces larger than memory. Chunks share the reader's string
// table and remain valid after further reads.
type ColumnsReader struct {
	br      *bufio.Reader
	tab     *StringTable
	horizon Minutes
	payload []byte
	total   int
	short   bool
	done    bool
}

// NewColumnsReader parses the header eagerly, so a bad-magic error can
// be used to sniff the format.
func NewColumnsReader(r io.Reader) (*ColumnsReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	if magic != colsMagic {
		return nil, ErrBadMagic
	}
	version, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: missing version: %v", errCorrupt, err)
	}
	if version != colsVersion {
		return nil, fmt.Errorf("%w: unsupported version %d (have %d)", errCorrupt, version, colsVersion)
	}
	h, err := readUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: horizon: %v", errCorrupt, err)
	}
	horizon := int64(h>>1) ^ -int64(h&1)
	return &ColumnsReader{br: br, tab: NewStringTable(), horizon: Minutes(horizon)}, nil
}

// Horizon returns the trace window length.
func (r *ColumnsReader) Horizon() Minutes { return r.horizon }

// Strings returns the dictionary built so far; after the stream is
// drained it is the complete table.
func (r *ColumnsReader) Strings() *StringTable { return r.tab }

// Total returns the VM count read so far; after io.EOF it has been
// verified against the trailer.
func (r *ColumnsReader) Total() int { return r.total }

// Next returns the next chunk, or io.EOF after the verified trailer.
func (r *ColumnsReader) Next() (*Chunk, error) {
	if r.done {
		return nil, io.EOF
	}
	plen, err := readUvarint(r.br)
	if err != nil {
		return nil, fmt.Errorf("%w: frame length: %v", errCorrupt, err)
	}
	if plen == 0 {
		total, err := readUvarint(r.br)
		if err != nil {
			return nil, fmt.Errorf("%w: trailer: %v", errCorrupt, err)
		}
		if int(total) != r.total {
			return nil, fmt.Errorf("%w: trailer count %d, read %d VMs", errCorrupt, total, r.total)
		}
		r.done = true
		return nil, io.EOF
	}
	if r.short {
		// Only the last chunk may be partial; anything after one is
		// corrupt and would break global chunk indexing.
		return nil, fmt.Errorf("%w: %v", errCorrupt, errShortNotLast)
	}
	payload, err := r.readPayload(plen)
	if err != nil {
		return nil, err
	}
	ch, err := decodeFrame(payload, r.tab)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errCorrupt, err)
	}
	if ch.Len() < ChunkSize {
		r.short = true
	}
	r.total += ch.Len()
	return ch, nil
}

// readPayload fills the reusable frame buffer with plen bytes. Growth
// is incremental so a forged multi-gigabyte length fails on the read,
// not with a huge up-front allocation.
func (r *ColumnsReader) readPayload(plen uint64) ([]byte, error) {
	if plen > uint64(math.MaxInt32) {
		return nil, fmt.Errorf("%w: frame length %d", errCorrupt, plen)
	}
	need := int(plen)
	if cap(r.payload) < need {
		grow := cap(r.payload)*2 + 1024
		if grow > need {
			grow = need
		}
		// Read what we can into the grown buffer first; if the stream
		// really has `need` bytes, keep growing toward it.
		r.payload = make([]byte, 0, grow)
	}
	r.payload = r.payload[:0]
	for len(r.payload) < need {
		chunk := need - len(r.payload)
		if room := cap(r.payload) - len(r.payload); chunk > room {
			chunk = room
		}
		if chunk == 0 {
			next := cap(r.payload) * 2
			if next > need {
				next = need
			}
			bigger := make([]byte, len(r.payload), next)
			copy(bigger, r.payload)
			r.payload = bigger
			continue
		}
		n, err := io.ReadFull(r.br, r.payload[len(r.payload):len(r.payload)+chunk])
		r.payload = r.payload[:len(r.payload)+n]
		if err != nil {
			return nil, fmt.Errorf("%w: truncated frame (%d of %d bytes): %v", errCorrupt, len(r.payload), need, err)
		}
	}
	return r.payload, nil
}

// readUvarint reads a LEB128 varint from a byte reader.
func readUvarint(br io.ByteReader) (uint64, error) {
	var x uint64
	var s uint
	for i := 0; i < maxVarintLen; i++ {
		c, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		if c < 0x80 {
			if i == maxVarintLen-1 && c > 1 {
				return 0, errors.New("varint overflows uint64")
			}
			return x | uint64(c)<<s, nil
		}
		x |= uint64(c&0x7f) << s
		s += 7
	}
	return 0, errors.New("varint overflows uint64")
}

// ReadColumns loads a whole binary trace, rejecting trailing garbage.
func ReadColumns(r io.Reader) (*Columns, error) {
	cr, err := NewColumnsReader(r)
	if err != nil {
		return nil, err
	}
	cols := &Columns{Horizon: cr.Horizon(), tab: cr.tab}
	for {
		ch, err := cr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		cols.appendChunk(ch)
	}
	if _, err := cr.br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing data after trailer", errCorrupt)
	}
	return cols, nil
}

// DecodeColumns parses a blob produced by EncodeColumns.
func DecodeColumns(data []byte) (*Columns, error) {
	return ReadColumns(bytes.NewReader(data))
}

// --- streaming writer ---

// ColumnsWriter writes a binary trace incrementally, one VM at a time,
// the spill path for traces larger than memory (the CSV analog is
// CSVWriter). Frames are flushed at every full chunk; Close flushes the
// final partial chunk and the trailer.
type ColumnsWriter struct {
	w       io.Writer
	horizon Minutes
	tab     *StringTable
	cur     *Chunk
	enc     frameEnc
	started bool
	closed  bool
	total   int
}

// NewColumnsWriter creates a streaming writer for a trace with the
// given horizon.
func NewColumnsWriter(w io.Writer, horizon Minutes) *ColumnsWriter {
	tab := NewStringTable()
	return &ColumnsWriter{
		w:       w,
		horizon: horizon,
		tab:     tab,
		cur:     newChunk(tab, ChunkSize),
		enc:     frameEnc{tab: tab},
	}
}

// Write appends one VM record, flushing a frame at each full chunk.
func (cw *ColumnsWriter) Write(v *VM) error {
	if cw.closed {
		return errors.New("trace: write after Close")
	}
	if !cw.started {
		cw.started = true
		if err := writeColumnsHeader(cw.w, cw.horizon); err != nil {
			return err
		}
	}
	cw.cur.appendVM(v)
	cw.total++
	if cw.cur.Len() == ChunkSize {
		if err := cw.enc.writeFrame(cw.w, cw.cur); err != nil {
			return err
		}
		cw.cur.reset()
	}
	return nil
}

// Close flushes the final partial chunk and the trailer. An empty trace
// still gets its header and trailer so the output parses back as a
// valid zero-VM trace.
func (cw *ColumnsWriter) Close() error {
	if cw.closed {
		return nil
	}
	cw.closed = true
	if !cw.started {
		if err := writeColumnsHeader(cw.w, cw.horizon); err != nil {
			return err
		}
	}
	if cw.cur.Len() > 0 {
		if err := cw.enc.writeFrame(cw.w, cw.cur); err != nil {
			return err
		}
		cw.cur.reset()
	}
	return writeColumnsTrailer(cw.w, cw.total)
}

// reset truncates all columns, keeping their capacity for the next
// frame.
func (c *Chunk) reset() {
	c.ID = c.ID[:0]
	c.Sub, c.Dep, c.Region, c.Role, c.OS = c.Sub[:0], c.Dep[:0], c.Region[:0], c.Role[:0], c.OS[:0]
	c.Type, c.Party, c.UtilKind = c.Type[:0], c.Party[:0], c.UtilKind[:0]
	c.Production = c.Production[:0]
	c.Cores = c.Cores[:0]
	c.MemoryGB = c.MemoryGB[:0]
	c.Created, c.Deleted = c.Created[:0], c.Deleted[:0]
	c.Base, c.Amplitude, c.NoiseSD = c.Base[:0], c.Amplitude[:0], c.NoiseSD[:0]
	c.SpikeProb = c.SpikeProb[:0]
	c.PhaseMin, c.RampLifetime = c.PhaseMin[:0], c.RampLifetime[:0]
	c.Seed = c.Seed[:0]
}
