package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestStreamWriterReaderRoundTrip(t *testing.T) {
	src := sampleTrace()
	var buf bytes.Buffer
	w := NewCSVWriter(&buf, src.Horizon)
	for i := range src.VMs {
		if err := w.Write(&src.VMs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewCSVReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Horizon() != src.Horizon {
		t.Errorf("horizon = %d", r.Horizon())
	}
	var got []VM
	for {
		v, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, v)
	}
	if len(got) != len(src.VMs) {
		t.Fatalf("read %d VMs, want %d", len(got), len(src.VMs))
	}
	for i := range got {
		if got[i] != src.VMs[i] {
			t.Errorf("vm %d mismatch", i)
		}
	}
}

func TestStreamInteropWithBatchAPIs(t *testing.T) {
	src := sampleTrace()
	// Stream-written output parses with the batch reader.
	var buf bytes.Buffer
	w := NewCSVWriter(&buf, src.Horizon)
	for i := range src.VMs {
		if err := w.Write(&src.VMs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	batch, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.VMs) != len(src.VMs) {
		t.Errorf("batch read %d VMs", len(batch.VMs))
	}

	// Batch-written output parses with the stream reader.
	buf.Reset()
	if err := WriteCSV(&buf, src); err != nil {
		t.Fatal(err)
	}
	r, err := NewCSVReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, err := r.Read(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != len(src.VMs) {
		t.Errorf("stream read %d VMs", n)
	}
}

func TestStreamEmptyFlush(t *testing.T) {
	var buf bytes.Buffer
	w := NewCSVWriter(&buf, 777)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Horizon != 777 || len(tr.VMs) != 0 {
		t.Errorf("empty stream parsed as %+v", tr)
	}
}

func TestStreamReaderErrors(t *testing.T) {
	if _, err := NewCSVReader(strings.NewReader("")); err == nil {
		t.Error("expected error on empty input")
	}
	if _, err := NewCSVReader(strings.NewReader("#horizon,abc\n")); err == nil {
		t.Error("expected error on bad horizon")
	}
	// Corrupted row surfaces at Read.
	var buf bytes.Buffer
	w := NewCSVWriter(&buf, 10)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("garbage row\n")
	r, err := NewCSVReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil || err == io.EOF {
		t.Errorf("expected parse error, got %v", err)
	}
}

// ReadCSVColumns and the two streaming transcoders must match the
// row-materializing compositions byte for byte.
func TestCSVColumnsTranscodeEquivalence(t *testing.T) {
	tr := genTrace(ChunkSize + 57)
	var csvBuf bytes.Buffer
	if err := WriteCSV(&csvBuf, tr); err != nil {
		t.Fatal(err)
	}
	raw := csvBuf.Bytes()

	want, err := EncodeColumns(FromTrace(tr))
	if err != nil {
		t.Fatal(err)
	}

	cols, err := ReadCSVColumns(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	got, err := EncodeColumns(cols)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("ReadCSVColumns differs from FromTrace(ReadCSV(...))")
	}

	var bin bytes.Buffer
	n, err := TranscodeCSVToColumns(&bin, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(tr.VMs) {
		t.Fatalf("transcoded %d VMs, want %d", n, len(tr.VMs))
	}
	if !bytes.Equal(bin.Bytes(), want) {
		t.Fatal("CSV->RCTB transcode differs from one-shot encode")
	}

	var backCSV bytes.Buffer
	n, err = TranscodeColumnsToCSV(&backCSV, bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(tr.VMs) {
		t.Fatalf("transcoded back %d VMs, want %d", n, len(tr.VMs))
	}
	if !bytes.Equal(backCSV.Bytes(), raw) {
		t.Fatal("RCTB->CSV transcode differs from WriteCSV")
	}
}

func TestCSVColumnsTranscodeErrors(t *testing.T) {
	var buf bytes.Buffer
	if _, err := ReadCSVColumns(strings.NewReader("nope")); err == nil {
		t.Error("ReadCSVColumns: expected error on garbage")
	}
	if _, err := TranscodeCSVToColumns(&buf, strings.NewReader("nope")); err == nil {
		t.Error("TranscodeCSVToColumns: expected error on garbage")
	}
	if _, err := TranscodeColumnsToCSV(&buf, strings.NewReader("nope")); err == nil {
		t.Error("TranscodeColumnsToCSV: expected error on garbage")
	}
}
