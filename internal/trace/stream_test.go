package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestStreamWriterReaderRoundTrip(t *testing.T) {
	src := sampleTrace()
	var buf bytes.Buffer
	w := NewCSVWriter(&buf, src.Horizon)
	for i := range src.VMs {
		if err := w.Write(&src.VMs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewCSVReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Horizon() != src.Horizon {
		t.Errorf("horizon = %d", r.Horizon())
	}
	var got []VM
	for {
		v, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, v)
	}
	if len(got) != len(src.VMs) {
		t.Fatalf("read %d VMs, want %d", len(got), len(src.VMs))
	}
	for i := range got {
		if got[i] != src.VMs[i] {
			t.Errorf("vm %d mismatch", i)
		}
	}
}

func TestStreamInteropWithBatchAPIs(t *testing.T) {
	src := sampleTrace()
	// Stream-written output parses with the batch reader.
	var buf bytes.Buffer
	w := NewCSVWriter(&buf, src.Horizon)
	for i := range src.VMs {
		if err := w.Write(&src.VMs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	batch, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.VMs) != len(src.VMs) {
		t.Errorf("batch read %d VMs", len(batch.VMs))
	}

	// Batch-written output parses with the stream reader.
	buf.Reset()
	if err := WriteCSV(&buf, src); err != nil {
		t.Fatal(err)
	}
	r, err := NewCSVReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, err := r.Read(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != len(src.VMs) {
		t.Errorf("stream read %d VMs", n)
	}
}

func TestStreamEmptyFlush(t *testing.T) {
	var buf bytes.Buffer
	w := NewCSVWriter(&buf, 777)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Horizon != 777 || len(tr.VMs) != 0 {
		t.Errorf("empty stream parsed as %+v", tr)
	}
}

func TestStreamReaderErrors(t *testing.T) {
	if _, err := NewCSVReader(strings.NewReader("")); err == nil {
		t.Error("expected error on empty input")
	}
	if _, err := NewCSVReader(strings.NewReader("#horizon,abc\n")); err == nil {
		t.Error("expected error on bad horizon")
	}
	// Corrupted row surfaces at Read.
	var buf bytes.Buffer
	w := NewCSVWriter(&buf, 10)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("garbage row\n")
	r, err := NewCSVReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil || err == io.EOF {
		t.Errorf("expected parse error, got %v", err)
	}
}
