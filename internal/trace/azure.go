package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadAzureVMTable parses a vmtable.csv in the schema of the public
// AzurePublicDataset (V1) that accompanied the paper:
//
//	vmid, subscriptionid, deploymentid, vmcreated, vmdeleted,
//	maxcpu, avgcpu, p95maxcpu, vmcategory, vmcorecount, vmmemory
//
// Timestamps are seconds from the trace start at 300-second granularity;
// CPU columns are percentages of the allocation; vmcategory is one of
// "Delay-insensitive", "Interactive", or "Unknown".
//
// The public dataset carries whole-life summary statistics rather than the
// 5-minute series, so each VM receives a deterministic utilization model
// fitted to its (avg, p95max) pair: a diurnal shape for interactive VMs
// and a bursty shape otherwise. The fitted model reproduces the published
// summary statistics, which is all the characterization, pipeline, and
// scheduler consume. horizonSeconds bounds the observation window; VMs
// deleted at or beyond it are treated as still running.
func ReadAzureVMTable(r io.Reader, horizonSeconds int64) (*Trace, error) {
	tr := &Trace{Horizon: Minutes(horizonSeconds / 60)}
	err := EachAzureVM(r, horizonSeconds, func(v *VM) error {
		tr.VMs = append(tr.VMs, *v)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tr, nil
}

// EachAzureVM streams a public-dataset vmtable (the format
// ReadAzureVMTable documents), calling fn once per VM in file order
// with IDs assigned 1..n. The VM behind v is reused between calls; fn
// must copy what it keeps. This is the row iterator every Azure ingest
// path shares — the row reader, the columnar reader, and the RCTB
// transcoder differ only in their fn.
func EachAzureVM(r io.Reader, horizonSeconds int64, fn func(v *VM) error) error {
	if horizonSeconds <= 0 {
		return fmt.Errorf("trace: horizon %d must be positive", horizonSeconds)
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.ReuseRecord = true
	horizon := Minutes(horizonSeconds / 60)

	var v VM
	line, n := 0, int64(0)
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("trace: azure vmtable line %d: %w", line+1, err)
		}
		line++
		if line == 1 && looksLikeHeader(row) {
			continue
		}
		if len(row) != 11 {
			return fmt.Errorf("trace: azure vmtable line %d has %d fields, want 11", line, len(row))
		}
		v, err = parseAzureRow(row, horizon)
		if err != nil {
			return fmt.Errorf("trace: azure vmtable line %d: %w", line, err)
		}
		n++
		v.ID = n
		if err := fn(&v); err != nil {
			return err
		}
	}
	if n == 0 {
		return fmt.Errorf("trace: azure vmtable contains no VM rows")
	}
	return nil
}

// ReadAzureVMTableColumns transcodes a public-dataset vmtable straight
// into columnar form: rows are parsed, interned, and appended chunk by
// chunk without ever materializing a row []VM. The result equals
// FromTrace(ReadAzureVMTable(...)) — same intern order, same chunks —
// by the transcode equivalence test.
func ReadAzureVMTableColumns(r io.Reader, horizonSeconds int64) (*Columns, error) {
	if horizonSeconds <= 0 {
		return nil, fmt.Errorf("trace: horizon %d must be positive", horizonSeconds)
	}
	c := NewColumns(Minutes(horizonSeconds / 60))
	if err := EachAzureVM(r, horizonSeconds, func(v *VM) error {
		c.Append(v)
		return nil
	}); err != nil {
		return nil, err
	}
	return c, nil
}

// TranscodeAzureVMTable streams a public-dataset vmtable from r into
// RCTB binary frames on w with bounded memory: one chunk plus the
// dictionary, independent of trace size. It returns the VM count. The
// bytes equal WriteColumns(FromTrace(ReadAzureVMTable(...))).
func TranscodeAzureVMTable(w io.Writer, r io.Reader, horizonSeconds int64) (int, error) {
	if horizonSeconds <= 0 {
		return 0, fmt.Errorf("trace: horizon %d must be positive", horizonSeconds)
	}
	cw := NewColumnsWriter(w, Minutes(horizonSeconds/60))
	n := 0
	if err := EachAzureVM(r, horizonSeconds, func(v *VM) error {
		n++
		return cw.Write(v)
	}); err != nil {
		return n, err
	}
	return n, cw.Close()
}

func looksLikeHeader(row []string) bool {
	return len(row) > 0 && strings.EqualFold(strings.TrimSpace(row[0]), "vmid")
}

func parseAzureRow(row []string, horizon Minutes) (VM, error) {
	var v VM
	v.Subscription = row[1]
	v.Deployment = row[2]
	v.Region = "azure"
	v.Role = "IaaS"
	v.OS = "unknown"
	// The public dataset does not label party or production status; treat
	// everything as third-party production, the conservative choice for
	// the oversubscription rule.
	v.Party = ThirdParty
	v.Production = true
	v.Type = IaaS

	created, err := strconv.ParseInt(row[3], 10, 64)
	if err != nil {
		return v, fmt.Errorf("vmcreated: %w", err)
	}
	deleted, err := strconv.ParseInt(row[4], 10, 64)
	if err != nil {
		return v, fmt.Errorf("vmdeleted: %w", err)
	}
	v.Created = Minutes(created / 60)
	if del := Minutes(deleted / 60); del <= v.Created || del >= horizon {
		v.Deleted = NoEnd
	} else {
		v.Deleted = del
	}

	maxCPU, err := strconv.ParseFloat(row[5], 64)
	if err != nil {
		return v, fmt.Errorf("maxcpu: %w", err)
	}
	avgCPU, err := strconv.ParseFloat(row[6], 64)
	if err != nil {
		return v, fmt.Errorf("avgcpu: %w", err)
	}
	p95, err := strconv.ParseFloat(row[7], 64)
	if err != nil {
		return v, fmt.Errorf("p95maxcpu: %w", err)
	}
	category := strings.TrimSpace(row[8])

	cores, err := strconv.Atoi(strings.TrimPrefix(row[9], ">"))
	if err != nil || cores <= 0 {
		return v, fmt.Errorf("vmcorecount %q invalid", row[9])
	}
	v.Cores = cores
	mem, err := strconv.ParseFloat(strings.TrimPrefix(row[10], ">"), 64)
	if err != nil || mem <= 0 {
		return v, fmt.Errorf("vmmemory %q invalid", row[10])
	}
	v.MemoryGB = mem

	v.Util = fitUtilModel(avgCPU, p95, maxCPU, category, uint64(created)*2654435761+uint64(len(row)))
	return v, nil
}

// fitUtilModel builds a deterministic utilization model whose whole-life
// average and high-percentile maximum approximate the dataset's summary
// columns.
func fitUtilModel(avg, p95, max float64, category string, seed uint64) UtilModel {
	avg = clampPct(avg)
	p95 = clampPct(p95)
	if p95 < avg {
		p95 = avg
	}
	if max < p95 {
		max = p95
	}
	if strings.EqualFold(category, "Interactive") {
		// Diurnal: mean = base + amp/2, peak ≈ base + amp.
		base := clampPct(2*avg - p95)
		return UtilModel{
			Kind:      UtilDiurnal,
			Base:      base,
			Amplitude: clampPct(p95 - base),
			NoiseSD:   2,
			PhaseMin:  12 * 60,
			Seed:      seed,
		}
	}
	// Bursty: mean = base + spikeProb*amp; p95 of maxes ≈ base + amp for
	// spike probabilities comfortably above 5%.
	const spikeProb = 0.1
	base := clampPct((avg - spikeProb*p95) / (1 - spikeProb))
	return UtilModel{
		Kind:      UtilBursty,
		Base:      base,
		Amplitude: clampPct(p95 - base),
		SpikeProb: spikeProb,
		NoiseSD:   1.5,
		Seed:      seed,
	}
}
