package trace

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
)

const azureSample = `vmid,subscriptionid,deploymentid,vmcreated,vmdeleted,maxcpu,avgcpu,p95maxcpu,vmcategory,vmcorecount,vmmemory
hash-vm-1,hash-sub-1,hash-dep-1,0,86400,99.5,12.3,85.0,Delay-insensitive,2,3.5
hash-vm-2,hash-sub-1,hash-dep-2,3600,2592000,70.0,35.0,65.0,Interactive,4,7
hash-vm-3,hash-sub-2,hash-dep-3,600,900,5.0,1.0,4.0,Unknown,1,0.75
`

func TestReadAzureVMTable(t *testing.T) {
	tr, err := ReadAzureVMTable(strings.NewReader(azureSample), 30*24*3600)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.VMs) != 3 {
		t.Fatalf("parsed %d VMs, want 3", len(tr.VMs))
	}
	if tr.Horizon != 30*24*60 {
		t.Errorf("horizon = %d", tr.Horizon)
	}

	v1 := &tr.VMs[0]
	if v1.Subscription != "hash-sub-1" || v1.Cores != 2 || v1.MemoryGB != 3.5 {
		t.Errorf("vm1 = %+v", v1)
	}
	if v1.Created != 0 || v1.Deleted != 1440 {
		t.Errorf("vm1 window = %d..%d", v1.Created, v1.Deleted)
	}
	if v1.Util.Kind != UtilBursty {
		t.Errorf("vm1 kind = %v, want bursty", v1.Util.Kind)
	}

	v2 := &tr.VMs[1]
	if v2.Util.Kind != UtilDiurnal {
		t.Errorf("interactive vm kind = %v, want diurnal", v2.Util.Kind)
	}
	// Deleted at the horizon → still running.
	if v2.Deleted != NoEnd {
		t.Errorf("vm2 deleted = %d, want NoEnd", v2.Deleted)
	}

	// All VMs conservatively production/third-party.
	for i := range tr.VMs {
		if !tr.VMs[i].Production || tr.VMs[i].Party != ThirdParty {
			t.Errorf("vm %d not conservative: %+v", i, tr.VMs[i])
		}
	}
}

// The fitted utilization models must reproduce the dataset's summary
// statistics within tolerance.
func TestAzureFitReproducesSummaries(t *testing.T) {
	tr, err := ReadAzureVMTable(strings.NewReader(azureSample), 30*24*3600)
	if err != nil {
		t.Fatal(err)
	}
	wantAvg := []float64{12.3, 35.0, 1.0}
	wantP95 := []float64{85.0, 65.0, 4.0}
	for i := range tr.VMs {
		v := &tr.VMs[i]
		avg, p95 := SummaryStats(v, tr.Horizon)
		if math.Abs(avg-wantAvg[i]) > 6 {
			t.Errorf("vm %d avg = %.1f, dataset says %.1f", i, avg, wantAvg[i])
		}
		// The within-interval spread biases the fitted p95 upward a
		// little; allow a wider band.
		if math.Abs(p95-wantP95[i]) > 15 {
			t.Errorf("vm %d p95 = %.1f, dataset says %.1f", i, p95, wantP95[i])
		}
	}
}

func TestReadAzureVMTableHeaderless(t *testing.T) {
	raw := "vm,sub,dep,0,600,50,10,40,Delay-insensitive,1,1.75\n"
	tr, err := ReadAzureVMTable(strings.NewReader(raw), 86400)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.VMs) != 1 {
		t.Fatalf("parsed %d VMs", len(tr.VMs))
	}
}

func TestReadAzureVMTableErrors(t *testing.T) {
	cases := []struct {
		name string
		raw  string
		hz   int64
	}{
		{"bad horizon", azureSample, 0},
		{"empty", "", 86400},
		{"short row", "a,b,c\n", 86400},
		{"bad created", "v,s,d,x,600,50,10,40,Unknown,1,1\n", 86400},
		{"bad deleted", "v,s,d,0,x,50,10,40,Unknown,1,1\n", 86400},
		{"bad cpu", "v,s,d,0,600,x,10,40,Unknown,1,1\n", 86400},
		{"bad avg", "v,s,d,0,600,50,x,40,Unknown,1,1\n", 86400},
		{"bad p95", "v,s,d,0,600,50,10,x,Unknown,1,1\n", 86400},
		{"bad cores", "v,s,d,0,600,50,10,40,Unknown,zero,1\n", 86400},
		{"bad memory", "v,s,d,0,600,50,10,40,Unknown,1,zero\n", 86400},
		{"header only", "vmid,subscriptionid,deploymentid,vmcreated,vmdeleted,maxcpu,avgcpu,p95maxcpu,vmcategory,vmcorecount,vmmemory\n", 86400},
	}
	for _, c := range cases {
		if _, err := ReadAzureVMTable(strings.NewReader(c.raw), c.hz); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestFitUtilModelEdgeCases(t *testing.T) {
	// p95 below avg gets clamped up; values beyond 100 are clamped.
	m := fitUtilModel(80, 20, 10, "Delay-insensitive", 1)
	if m.Base < 0 || m.Base > 100 || m.Amplitude < 0 {
		t.Errorf("model out of range: %+v", m)
	}
	m = fitUtilModel(120, 150, 200, "Interactive", 2)
	if m.Base > 100 || m.Base+m.Amplitude > 200 {
		t.Errorf("clamping failed: %+v", m)
	}
}

// A synthetic vmtable large enough to cross a chunk boundary, so the
// transcode tests exercise multi-frame output.
func genAzureCSV(n int) string {
	var b strings.Builder
	b.WriteString("vmid,subscriptionid,deploymentid,vmcreated,vmdeleted,maxcpu,avgcpu,p95maxcpu,vmcategory,vmcorecount,vmmemory\n")
	cats := []string{"Delay-insensitive", "Interactive", "Unknown"}
	for i := 0; i < n; i++ {
		created := int64(i) * 300
		deleted := created + int64(600+i%7*43200)
		fmt.Fprintf(&b, "vm-%d,sub-%d,dep-%d,%d,%d,%.1f,%.1f,%.1f,%s,%d,%g\n",
			i, i%97, i%311, created, deleted,
			float64(30+i%70), float64(5+i%25), float64(20+i%60),
			cats[i%3], 1+i%8, 0.75*float64(1+i%16))
	}
	return b.String()
}

// The columnar Azure reader must equal FromTrace over the row reader —
// same intern order, same chunks — proven byte for byte through the
// codec; and the streaming RCTB transcode must produce those same
// bytes with bounded memory.
func TestAzureColumnsTranscodeEquivalence(t *testing.T) {
	raw := genAzureCSV(ChunkSize + 123)
	const horizon = 30 * 24 * 3600

	tr, err := ReadAzureVMTable(strings.NewReader(raw), horizon)
	if err != nil {
		t.Fatal(err)
	}
	want, err := EncodeColumns(FromTrace(tr))
	if err != nil {
		t.Fatal(err)
	}

	cols, err := ReadAzureVMTableColumns(strings.NewReader(raw), horizon)
	if err != nil {
		t.Fatal(err)
	}
	if cols.Len() != len(tr.VMs) {
		t.Fatalf("columns has %d VMs, want %d", cols.Len(), len(tr.VMs))
	}
	got, err := EncodeColumns(cols)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("ReadAzureVMTableColumns differs from FromTrace(ReadAzureVMTable(...))")
	}

	var stream bytes.Buffer
	n, err := TranscodeAzureVMTable(&stream, strings.NewReader(raw), horizon)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(tr.VMs) {
		t.Fatalf("transcoded %d VMs, want %d", n, len(tr.VMs))
	}
	if !bytes.Equal(stream.Bytes(), want) {
		t.Fatal("streaming transcode differs from one-shot encode")
	}
}

// The columnar and transcoding Azure paths reject exactly what the row
// reader rejects.
func TestAzureColumnsErrors(t *testing.T) {
	for _, c := range []struct {
		name string
		raw  string
		hz   int64
	}{
		{"bad horizon", azureSample, 0},
		{"empty", "", 86400},
		{"short row", "a,b,c\n", 86400},
	} {
		if _, err := ReadAzureVMTableColumns(strings.NewReader(c.raw), c.hz); err == nil {
			t.Errorf("columns %s: expected error", c.name)
		}
		var buf bytes.Buffer
		if _, err := TranscodeAzureVMTable(&buf, strings.NewReader(c.raw), c.hz); err == nil {
			t.Errorf("transcode %s: expected error", c.name)
		}
	}
}
