// Package trace defines the VM workload trace data model of the
// reproduction: VM records, subscriptions, deployments, and 5-minute
// utilization readings, mirroring the dataset described in Section 3 of the
// paper (and, in spirit, the public AzurePublicDataset schema).
//
// Utilization time series are not materialized: each VM carries a compact
// deterministic utilization model (UtilModel) from which any 5-minute
// reading can be computed on demand. This keeps month-long traces with
// hundreds of thousands of VMs small while remaining exactly reproducible.
package trace

import (
	"fmt"
	"math"
	"time"
)

// VMType distinguishes Infrastructure-as-a-Service from
// Platform-as-a-Service VMs (Section 3.1).
type VMType int

// VM types.
const (
	IaaS VMType = iota
	PaaS
)

// String implements fmt.Stringer.
func (t VMType) String() string {
	switch t {
	case IaaS:
		return "IaaS"
	case PaaS:
		return "PaaS"
	default:
		return fmt.Sprintf("VMType(%d)", int(t))
	}
}

// ParseVMType parses the String form.
func ParseVMType(s string) (VMType, error) {
	switch s {
	case "IaaS":
		return IaaS, nil
	case "PaaS":
		return PaaS, nil
	}
	return 0, fmt.Errorf("trace: unknown VM type %q", s)
}

// Party distinguishes first-party (internal and first-party services) from
// third-party (external customer) workloads.
type Party int

// Parties.
const (
	FirstParty Party = iota
	ThirdParty
)

// String implements fmt.Stringer.
func (p Party) String() string {
	switch p {
	case FirstParty:
		return "first"
	case ThirdParty:
		return "third"
	default:
		return fmt.Sprintf("Party(%d)", int(p))
	}
}

// ParseParty parses the String form.
func ParseParty(s string) (Party, error) {
	switch s {
	case "first":
		return FirstParty, nil
	case "third":
		return ThirdParty, nil
	}
	return 0, fmt.Errorf("trace: unknown party %q", s)
}

// Minutes is a timestamp measured in minutes from the start of the trace.
// The telemetry granularity is 5 minutes, matching the paper's dataset.
type Minutes int64

// Duration converts to a time.Duration.
func (m Minutes) Duration() time.Duration { return time.Duration(m) * time.Minute }

// ReadingIntervalMin is the telemetry reporting interval in minutes.
const ReadingIntervalMin = 5

// VM is one virtual machine record. Created/Deleted delimit its lifetime;
// a Deleted value of NoEnd means the VM outlived the observation window.
type VM struct {
	ID           int64
	Subscription string
	Deployment   string
	Region       string
	Role         string
	// OS is the guest operating system family — one of the attributes the
	// paper found relevant for prediction accuracy (Section 6.1).
	OS    string
	Type  VMType
	Party Party
	// Production carries the production/non-production annotation of
	// first-party subscriptions used by the oversubscription rule
	// (Section 5). Third-party VMs are always treated as production.
	Production bool

	Cores    int
	MemoryGB float64

	Created Minutes
	Deleted Minutes

	Util UtilModel
}

// NoEnd marks a VM still running at the end of the observation window.
const NoEnd Minutes = 1<<62 - 1

// Lifetime returns the VM lifetime in minutes, or ok=false if the VM did
// not complete inside the window.
func (v *VM) Lifetime() (Minutes, bool) {
	if v.Deleted == NoEnd {
		return 0, false
	}
	return v.Deleted - v.Created, true
}

// AliveAt reports whether the VM is running at minute t.
func (v *VM) AliveAt(t Minutes) bool {
	return t >= v.Created && t < v.Deleted
}

// CoreHours returns the core-hours the VM consumed inside the window
// [0, horizon).
func (v *VM) CoreHours(horizon Minutes) float64 {
	return CoreHoursOf(v.Cores, v.Created, v.Deleted, horizon)
}

// CoreHoursOf is CoreHours over bare schedule columns, shared by the
// row and columnar walks so both produce bit-identical values.
//
//rcvet:hotpath
func CoreHoursOf(cores int, created, deleted, horizon Minutes) float64 {
	end := deleted
	if end > horizon {
		end = horizon
	}
	if end <= created {
		return 0
	}
	return float64(end-created) / 60 * float64(cores)
}

// Reading is one 5-minute utilization report: min, avg and max virtual CPU
// utilization over the interval, in percent of the VM's allocation.
type Reading struct {
	VMID Minutes
	T    Minutes
	Min  float64
	Avg  float64
	Max  float64
}

// Trace is a complete workload trace: the VM population plus the window.
type Trace struct {
	// Horizon is the length of the observation window in minutes.
	Horizon Minutes
	VMs     []VM
}

// Subscriptions groups VM indices by subscription id.
func (tr *Trace) Subscriptions() map[string][]int {
	subs := make(map[string][]int)
	for i := range tr.VMs {
		s := tr.VMs[i].Subscription
		subs[s] = append(subs[s], i)
	}
	return subs
}

// AvgSeries materializes the average-CPU series of v between its creation
// and min(deletion, horizon), one sample per 5 minutes. It allocates per
// call; hot loops should use AvgSeriesAppend with a reused buffer.
func AvgSeries(v *VM, horizon Minutes) []float64 {
	end := v.Deleted
	if end > horizon {
		end = horizon
	}
	if end <= v.Created {
		return nil
	}
	return AvgSeriesAppend(v, horizon, make([]float64, 0, int((end-v.Created)/ReadingIntervalMin)))
}

// AvgSeriesAppend appends v's average-CPU series to dst and returns it,
// reusing dst's capacity. Pass buf[:0] to overwrite a scratch buffer.
func AvgSeriesAppend(v *VM, horizon Minutes, dst []float64) []float64 {
	end := v.Deleted
	if end > horizon {
		end = horizon
	}
	for t := v.Created; t < end; t += ReadingIntervalMin {
		_, avg, _ := v.Util.At(t)
		dst = append(dst, avg)
	}
	return dst
}

// SummaryStats computes the whole-life average CPU utilization and the 95th
// percentile of the per-interval maximum utilizations — the two headline
// metrics of Figure 1. It streams the deterministic model rather than
// materializing readings.
func SummaryStats(v *VM, horizon Minutes) (avgCPU, p95Max float64) {
	avgCPU, p95Max, _ = SummaryStatsBuf(v, horizon, nil)
	return avgCPU, p95Max
}

// SummaryStatsBuf is SummaryStats with a caller-owned scratch buffer: it
// returns the (possibly grown) buffer so per-VM loops allocate it once.
// The buffer's contents are overwritten.
func SummaryStatsBuf(v *VM, horizon Minutes, scratch []float64) (avgCPU, p95Max float64, buf []float64) {
	end := v.Deleted
	if end > horizon {
		end = horizon
	}
	if end <= v.Created {
		return 0, 0, scratch
	}
	var sum float64
	maxes := scratch[:0]
	for t := v.Created; t < end; t += ReadingIntervalMin {
		_, avg, max := v.Util.At(t)
		sum += avg
		maxes = append(maxes, max)
	}
	if len(maxes) == 0 {
		return 0, 0, maxes
	}
	avgCPU = sum / float64(len(maxes))
	p95Max = quickP95(maxes)
	return avgCPU, p95Max, maxes
}

// SummarizeSeries walks v's telemetry once, producing everything the
// feature-data and extraction hot loops need: the whole-life average CPU,
// the P95 of per-interval maxima, and the average-CPU series (for the
// periodicity FFT). SummaryStats + AvgSeries compute the same values in
// two passes; fusing them halves the utilization-model evaluations, the
// dominant cost of walking a trace. series and maxes are caller-owned
// scratch buffers (contents overwritten, capacity reused); the returned
// slices must be taken back by the caller.
func SummarizeSeries(v *VM, horizon Minutes, series, maxes []float64) (avgCPU, p95Max float64, seriesOut, maxesOut []float64) {
	return SummarizeModel(&v.Util, v.Created, v.Deleted, horizon, series, maxes)
}

// SummarizeModel is SummarizeSeries over bare columns: the utilization
// model plus the schedule timestamps, without a materialized VM. It is
// the one walk kernel both representations share, which is what makes
// the columnar consumers bit-identical to the row path.
func SummarizeModel(m *UtilModel, created, deleted, horizon Minutes, series, maxes []float64) (avgCPU, p95Max float64, seriesOut, maxesOut []float64) {
	series, maxes = series[:0], maxes[:0]
	end := deleted
	if end > horizon {
		end = horizon
	}
	if end <= created {
		return 0, 0, series, maxes
	}
	var sum float64
	for t := created; t < end; t += ReadingIntervalMin {
		_, avg, max := m.At(t)
		sum += avg
		series = append(series, avg)
		maxes = append(maxes, max)
	}
	if len(maxes) == 0 {
		return 0, 0, series, maxes
	}
	return sum / float64(len(maxes)), quickP95(maxes), series, maxes
}

// quickP95 computes the 95th percentile with a partial selection rather
// than a full sort; it is on the hot path of characterization and feature
// generation over millions of intervals.
//
//rcvet:hotpath
func quickP95(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	// Upper nearest-rank convention: the smallest value with at least 95%
	// of the sample at or below it.
	k := int(math.Ceil(0.95*float64(len(xs)))) - 1
	if k < 0 {
		k = 0
	}
	if k >= len(xs) {
		k = len(xs) - 1
	}
	return quickSelect(xs, k)
}

// quickSelect returns the k-th smallest element (0-based), reordering xs.
//
//rcvet:hotpath
func quickSelect(xs []float64, k int) float64 {
	lo, hi := 0, len(xs)-1
	for lo < hi {
		p := partition(xs, lo, hi)
		switch {
		case k == p:
			return xs[k]
		case k < p:
			hi = p - 1
		default:
			lo = p + 1
		}
	}
	return xs[k]
}

//rcvet:hotpath
func partition(xs []float64, lo, hi int) int {
	// Median-of-three pivot to avoid quadratic behaviour on sorted input.
	mid := (lo + hi) / 2
	if xs[mid] < xs[lo] {
		xs[mid], xs[lo] = xs[lo], xs[mid]
	}
	if xs[hi] < xs[lo] {
		xs[hi], xs[lo] = xs[lo], xs[hi]
	}
	if xs[hi] < xs[mid] {
		xs[hi], xs[mid] = xs[mid], xs[hi]
	}
	pivot := xs[mid]
	xs[mid], xs[hi] = xs[hi], xs[mid]
	i := lo
	for j := lo; j < hi; j++ {
		if xs[j] < pivot {
			xs[i], xs[j] = xs[j], xs[i]
			i++
		}
	}
	xs[i], xs[hi] = xs[hi], xs[i]
	return i
}
