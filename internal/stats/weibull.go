package stats

import (
	"errors"
	"math"
	"math/rand/v2"
)

// Weibull is a two-parameter Weibull distribution with shape K and scale
// Lambda. Section 3.7 of the paper reports that VM inter-arrival times fit
// Weibull distributions "nearly perfectly"; the synthetic arrival process
// samples from this type and the characterization refits it.
type Weibull struct {
	K      float64 // shape
	Lambda float64 // scale
}

// Sample draws one variate using inverse transform sampling.
func (w Weibull) Sample(r *rand.Rand) float64 {
	u := r.Float64()
	// Guard against log(0).
	for u == 0 {
		u = r.Float64()
	}
	return w.Lambda * math.Pow(-math.Log(u), 1/w.K)
}

// Mean returns the distribution mean lambda * Gamma(1 + 1/k).
func (w Weibull) Mean() float64 {
	return w.Lambda * math.Gamma(1+1/w.K)
}

// CDF returns P(X <= x).
func (w Weibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-math.Pow(x/w.Lambda, w.K))
}

// Quantile returns the p-quantile.
func (w Weibull) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return w.Lambda * math.Pow(-math.Log(1-p), 1/w.K)
}

// FitWeibull estimates Weibull parameters from positive samples by maximum
// likelihood, solving the shape equation with bisection + Newton polish.
// Non-positive samples are rejected.
func FitWeibull(xs []float64) (Weibull, error) {
	if len(xs) < 2 {
		return Weibull{}, errors.New("stats: weibull fit needs at least 2 samples")
	}
	logs := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			return Weibull{}, errors.New("stats: weibull fit needs positive samples")
		}
		logs[i] = math.Log(x)
	}
	meanLog, _ := Mean(logs)

	// MLE shape k solves: sum(x^k ln x)/sum(x^k) - 1/k - mean(ln x) = 0.
	f := func(k float64) float64 {
		var num, den float64
		for _, x := range xs {
			xk := math.Pow(x, k)
			num += xk * math.Log(x)
			den += xk
		}
		return num/den - 1/k - meanLog
	}

	// Bracket the root. f is increasing in k; start from a wide bracket.
	lo, hi := 1e-3, 1.0
	for f(hi) < 0 && hi < 1e4 {
		hi *= 2
	}
	if f(hi) < 0 {
		return Weibull{}, errors.New("stats: weibull shape did not converge")
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if f(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-10 {
			break
		}
	}
	k := (lo + hi) / 2

	// Scale lambda = (mean(x^k))^(1/k).
	var sum float64
	for _, x := range xs {
		sum += math.Pow(x, k)
	}
	lambda := math.Pow(sum/float64(len(xs)), 1/k)
	return Weibull{K: k, Lambda: lambda}, nil
}

// KolmogorovSmirnov returns the KS statistic of xs against the Weibull w —
// the max absolute difference between the empirical CDF and w.CDF. The
// characterization uses it to verify the "nearly perfect" Weibull fit of
// inter-arrival times.
func KolmogorovSmirnov(xs []float64, w Weibull) (float64, error) {
	cdf, err := NewCDF(xs)
	if err != nil {
		return 0, err
	}
	maxD := 0.0
	n := float64(len(cdf.sorted))
	for i, x := range cdf.sorted {
		theo := w.CDF(x)
		// Compare against both step edges of the empirical CDF.
		dHi := math.Abs(float64(i+1)/n - theo)
		dLo := math.Abs(float64(i)/n - theo)
		if dHi > maxD {
			maxD = dHi
		}
		if dLo > maxD {
			maxD = dLo
		}
	}
	return maxD, nil
}
