package stats

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
)

// PiecewiseCDF is a distribution specified by CDF control points, sampled
// by inverse transform with linear interpolation between points. The
// synthetic workload generator uses these to reproduce the published CDF
// figures (utilization, lifetime, deployment size) directly from the curves
// in the paper.
type PiecewiseCDF struct {
	xs []float64 // ascending values
	ps []float64 // ascending cumulative probabilities, ps[len-1] == 1
}

// NewPiecewiseCDF builds a distribution from (value, cumulative
// probability) control points. Points must be strictly ascending in both
// coordinates; the final probability must be 1. A leading implicit point at
// probability 0 uses the first value (i.e. the first value is the
// distribution minimum).
func NewPiecewiseCDF(points []Point) (*PiecewiseCDF, error) {
	if len(points) < 2 {
		return nil, errors.New("stats: piecewise CDF needs at least 2 points")
	}
	xs := make([]float64, len(points))
	ps := make([]float64, len(points))
	for i, pt := range points {
		xs[i] = pt.X
		ps[i] = pt.Y
		if i > 0 {
			if xs[i] <= xs[i-1] {
				return nil, fmt.Errorf("stats: piecewise CDF x not ascending at %d", i)
			}
			if ps[i] <= ps[i-1] {
				return nil, fmt.Errorf("stats: piecewise CDF p not ascending at %d", i)
			}
		}
		if pt.Y < 0 || pt.Y > 1 {
			return nil, fmt.Errorf("stats: piecewise CDF p %v out of [0,1]", pt.Y)
		}
	}
	if ps[len(ps)-1] != 1 {
		return nil, errors.New("stats: piecewise CDF must end at probability 1")
	}
	return &PiecewiseCDF{xs: xs, ps: ps}, nil
}

// Sample draws one variate.
func (d *PiecewiseCDF) Sample(r *rand.Rand) float64 {
	return d.Quantile(r.Float64())
}

// Quantile returns the value at cumulative probability p.
func (d *PiecewiseCDF) Quantile(p float64) float64 {
	if p <= d.ps[0] {
		return d.xs[0]
	}
	if p >= 1 {
		return d.xs[len(d.xs)-1]
	}
	i := sort.SearchFloat64s(d.ps, p)
	// ps[i-1] < p <= ps[i]; interpolate on the segment.
	x0, x1 := d.xs[i-1], d.xs[i]
	p0, p1 := d.ps[i-1], d.ps[i]
	frac := (p - p0) / (p1 - p0)
	return x0 + frac*(x1-x0)
}

// CDF returns P(X <= x) under the piecewise model.
func (d *PiecewiseCDF) CDF(x float64) float64 {
	if x <= d.xs[0] {
		return d.ps[0]
	}
	if x >= d.xs[len(d.xs)-1] {
		return 1
	}
	i := sort.SearchFloat64s(d.xs, x)
	if d.xs[i] == x {
		return d.ps[i]
	}
	x0, x1 := d.xs[i-1], d.xs[i]
	p0, p1 := d.ps[i-1], d.ps[i]
	frac := (x - x0) / (x1 - x0)
	return p0 + frac*(p1-p0)
}

// Discrete is a categorical distribution over integer categories with
// explicit weights (e.g. the VM core-count mix of Figure 2).
type Discrete struct {
	values []int
	cum    []float64
}

// NewDiscrete builds a categorical distribution; weights need not sum to 1
// but must be non-negative with a positive total.
func NewDiscrete(values []int, weights []float64) (*Discrete, error) {
	if len(values) == 0 || len(values) != len(weights) {
		return nil, errors.New("stats: discrete needs equal-length non-empty values and weights")
	}
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("stats: negative weight at %d", i)
		}
		total += w
		cum[i] = total
	}
	if total == 0 {
		return nil, errors.New("stats: discrete needs positive total weight")
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Discrete{values: append([]int(nil), values...), cum: cum}, nil
}

// Sample draws one category.
func (d *Discrete) Sample(r *rand.Rand) int {
	u := r.Float64()
	i := sort.SearchFloat64s(d.cum, u)
	if i >= len(d.values) {
		i = len(d.values) - 1
	}
	return d.values[i]
}

// Prob returns the probability mass of value v (0 when absent).
func (d *Discrete) Prob(v int) float64 {
	for i, val := range d.values {
		if val == v {
			prev := 0.0
			if i > 0 {
				prev = d.cum[i-1]
			}
			return d.cum[i] - prev
		}
	}
	return 0
}
