package stats

import (
	"math/rand/v2"
	"testing"
)

func benchSample(n int) []float64 {
	r := rand.New(rand.NewPCG(1, 2))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Float64() * 100
	}
	return xs
}

func BenchmarkPercentile10k(b *testing.B) {
	xs := benchSample(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Percentile(xs, 0.95); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpearman10k(b *testing.B) {
	xs := benchSample(10000)
	ys := benchSample(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Spearman(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWeibullFit(b *testing.B) {
	r := rand.New(rand.NewPCG(3, 4))
	w := Weibull{K: 0.6, Lambda: 50}
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = w.Sample(r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitWeibull(xs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMomentsAdd(b *testing.B) {
	var m Moments
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Add(float64(i % 100))
	}
}
