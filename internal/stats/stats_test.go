package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, name string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (tol %v)", name, got, want, tol)
	}
}

func TestPercentileBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", c.p, err)
		}
		approx(t, got, c.want, 1e-12, "percentile")
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 0.5); err == nil {
		t.Error("expected error on empty sample")
	}
	if _, err := Percentile([]float64{1}, 1.5); err == nil {
		t.Error("expected error on p out of range")
	}
	if _, err := Percentile([]float64{1}, -0.1); err == nil {
		t.Error("expected error on negative p")
	}
}

func TestPercentileInterpolates(t *testing.T) {
	got, err := Percentile([]float64{0, 10}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, got, 9.5, 1e-12, "P95 of {0,10}")
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, err := Mean(xs)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, m, 5, 1e-12, "mean")
	v, err := Variance(xs)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, v, 4, 1e-12, "variance")
	sd, err := StdDev(xs)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sd, 2, 1e-12, "stddev")
}

func TestCoV(t *testing.T) {
	cv, err := CoV([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, cv, 0.4, 1e-12, "cov")

	cv, err = CoV([]float64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, cv, 0, 1e-12, "cov of zeros")
}

func TestMomentsMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	xs := make([]float64, 1000)
	var m Moments
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 10
		m.Add(xs[i])
	}
	bm, _ := Mean(xs)
	bv, _ := Variance(xs)
	approx(t, m.Mean(), bm, 1e-9, "moments mean")
	approx(t, m.Variance(), bv, 1e-9, "moments variance")
	if m.Count() != 1000 {
		t.Errorf("count = %d", m.Count())
	}
}

func TestMomentsMerge(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	var all, a, b Moments
	for i := 0; i < 500; i++ {
		x := r.ExpFloat64()
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	approx(t, a.Mean(), all.Mean(), 1e-9, "merged mean")
	approx(t, a.Variance(), all.Variance(), 1e-9, "merged variance")
	approx(t, a.Min(), all.Min(), 0, "merged min")
	approx(t, a.Max(), all.Max(), 0, "merged max")
}

func TestMomentsMergeEmpty(t *testing.T) {
	var a, b Moments
	a.Add(5)
	a.Merge(b) // merging empty is a no-op
	if a.Count() != 1 || a.Mean() != 5 {
		t.Errorf("merge empty changed accumulator: %+v", a)
	}
	b.Merge(a) // merging into empty copies
	if b.Count() != 1 || b.Mean() != 5 {
		t.Errorf("merge into empty: %+v", b)
	}
}

func TestCDF(t *testing.T) {
	c, err := NewCDF([]float64{1, 2, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, c.At(0), 0, 0, "At(0)")
	approx(t, c.At(2), 0.6, 1e-12, "At(2)")
	approx(t, c.At(10), 1, 0, "At(10)")
	approx(t, c.Quantile(0), 1, 0, "Quantile(0)")
	approx(t, c.Quantile(1), 4, 0, "Quantile(1)")
	if c.N() != 5 {
		t.Errorf("N = %d", c.N())
	}
}

func TestCDFPoints(t *testing.T) {
	c, err := NewCDF([]float64{0, 100})
	if err != nil {
		t.Fatal(err)
	}
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("points len = %d", len(pts))
	}
	if pts[0].X != 0 || pts[4].X != 100 {
		t.Errorf("endpoints wrong: %v", pts)
	}
	if pts[4].Y != 1 {
		t.Errorf("last Y = %v, want 1", pts[4].Y)
	}
	// Monotone non-decreasing.
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			t.Errorf("CDF not monotone at %d: %v", i, pts)
		}
	}
}

func TestCDFEmpty(t *testing.T) {
	if _, err := NewCDF(nil); err == nil {
		t.Error("expected error on empty sample")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{25, 50, 75})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{10, 25, 26, 80, 100} {
		h.Add(x)
	}
	want := []int{2, 1, 0, 2}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	if h.Total() != 5 {
		t.Errorf("total = %d", h.Total())
	}
	fr := h.Fractions()
	approx(t, fr[0], 0.4, 1e-12, "fraction 0")
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h, err := NewHistogram([]float64{1, 10, 100})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x    float64
		want int
	}{{0.5, 0}, {1, 0}, {1.01, 1}, {10, 1}, {11, 2}, {100, 2}, {101, 3}}
	for _, c := range cases {
		if got := h.Bucket(c.x); got != c.want {
			t.Errorf("Bucket(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil); err == nil {
		t.Error("expected error on no bounds")
	}
	if _, err := NewHistogram([]float64{2, 1}); err == nil {
		t.Error("expected error on non-ascending bounds")
	}
}

func TestHistogramFractionsEmpty(t *testing.T) {
	h, _ := NewHistogram([]float64{1})
	fr := h.Fractions()
	if fr[0] != 0 || fr[1] != 0 {
		t.Errorf("fractions of empty histogram = %v", fr)
	}
}

func TestRanks(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		approx(t, got[i], want[i], 1e-12, "rank")
	}
}

func TestSpearmanPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{10, 100, 1000, 10000, 100000} // monotone, nonlinear
	rho, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, rho, 1, 1e-12, "spearman monotone")

	rev := []float64{5, 4, 3, 2, 1}
	rho, err = Spearman(xs, rev)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, rho, -1, 1e-12, "spearman reversed")
}

func TestSpearmanIndependent(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 8))
	n := 5000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = r.Float64()
		ys[i] = r.Float64()
	}
	rho, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho) > 0.05 {
		t.Errorf("independent spearman = %v, want ~0", rho)
	}
}

func TestSpearmanErrors(t *testing.T) {
	if _, err := Spearman([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("expected length mismatch error")
	}
	if _, err := Spearman([]float64{1}, []float64{1}); err == nil {
		t.Error("expected too-few-samples error")
	}
}

func TestSpearmanConstantSeries(t *testing.T) {
	rho, err := Spearman([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, rho, 0, 0, "constant series")
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	rho, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, rho, 1, 1e-12, "pearson linear")
}

func TestWeibullSampleFitRoundTrip(t *testing.T) {
	r := rand.New(rand.NewPCG(11, 12))
	w := Weibull{K: 0.7, Lambda: 120}
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = w.Sample(r)
	}
	fit, err := FitWeibull(xs)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, fit.K, w.K, 0.05, "fitted shape")
	approx(t, fit.Lambda, w.Lambda, 8, "fitted scale")

	ks, err := KolmogorovSmirnov(xs, fit)
	if err != nil {
		t.Fatal(err)
	}
	if ks > 0.02 {
		t.Errorf("KS statistic %v too large for a good fit", ks)
	}
}

func TestWeibullCDFQuantileInverse(t *testing.T) {
	w := Weibull{K: 1.5, Lambda: 10}
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
		x := w.Quantile(p)
		approx(t, w.CDF(x), p, 1e-9, "weibull CDF(Quantile(p))")
	}
	if w.CDF(-1) != 0 {
		t.Error("CDF of negative should be 0")
	}
	if w.Quantile(0) != 0 {
		t.Error("Quantile(0) should be 0")
	}
	if !math.IsInf(w.Quantile(1), 1) {
		t.Error("Quantile(1) should be +Inf")
	}
}

func TestWeibullMean(t *testing.T) {
	// k=1 reduces to exponential with mean lambda.
	w := Weibull{K: 1, Lambda: 42}
	approx(t, w.Mean(), 42, 1e-9, "exponential mean")
}

func TestFitWeibullErrors(t *testing.T) {
	if _, err := FitWeibull([]float64{1}); err == nil {
		t.Error("expected error on single sample")
	}
	if _, err := FitWeibull([]float64{1, -2}); err == nil {
		t.Error("expected error on non-positive sample")
	}
}

func TestPiecewiseCDFQuantileEndpoints(t *testing.T) {
	d, err := NewPiecewiseCDF([]Point{{X: 0, Y: 0.1}, {X: 50, Y: 0.6}, {X: 100, Y: 1}})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, d.Quantile(0), 0, 0, "quantile 0")
	approx(t, d.Quantile(0.05), 0, 0, "quantile below first point")
	approx(t, d.Quantile(1), 100, 0, "quantile 1")
	// Midpoint of the first segment: p=0.35 is halfway between 0.1 and 0.6.
	approx(t, d.Quantile(0.35), 25, 1e-9, "quantile interior")
}

func TestPiecewiseCDFRoundTrip(t *testing.T) {
	d, err := NewPiecewiseCDF([]Point{{X: 1, Y: 0.2}, {X: 10, Y: 0.9}, {X: 20, Y: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.25, 0.5, 0.9, 0.95} {
		x := d.Quantile(p)
		approx(t, d.CDF(x), p, 1e-9, "piecewise CDF(Quantile(p))")
	}
}

func TestPiecewiseCDFSampleMatches(t *testing.T) {
	d, err := NewPiecewiseCDF([]Point{{X: 0, Y: 0}, {X: 1, Y: 1}}) // uniform(0,1)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewPCG(21, 22))
	var m Moments
	for i := 0; i < 20000; i++ {
		m.Add(d.Sample(r))
	}
	approx(t, m.Mean(), 0.5, 0.01, "uniform mean")
	approx(t, m.Variance(), 1.0/12, 0.005, "uniform variance")
}

func TestPiecewiseCDFErrors(t *testing.T) {
	bad := [][]Point{
		{{X: 0, Y: 1}},                                 // too few
		{{X: 1, Y: 0.5}, {X: 0, Y: 1}},                 // x not ascending
		{{X: 0, Y: 0.9}, {X: 1, Y: 0.5}},               // p not ascending
		{{X: 0, Y: 0.5}, {X: 1, Y: 0.9}},               // doesn't end at 1
		{{X: 0, Y: -0.1}, {X: 1, Y: 1}},                // p out of range
		{{X: 0, Y: 0.1}, {X: 1, Y: 0.1}, {X: 2, Y: 1}}, // equal p
	}
	for i, pts := range bad {
		if _, err := NewPiecewiseCDF(pts); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestDiscrete(t *testing.T) {
	d, err := NewDiscrete([]int{1, 2, 4}, []float64{0.5, 0.3, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, d.Prob(1), 0.5, 1e-12, "prob 1")
	approx(t, d.Prob(4), 0.2, 1e-12, "prob 4")
	approx(t, d.Prob(99), 0, 0, "prob missing")

	r := rand.New(rand.NewPCG(31, 32))
	counts := map[int]int{}
	n := 50000
	for i := 0; i < n; i++ {
		counts[d.Sample(r)]++
	}
	approx(t, float64(counts[1])/float64(n), 0.5, 0.01, "sampled frequency 1")
	approx(t, float64(counts[2])/float64(n), 0.3, 0.01, "sampled frequency 2")
}

func TestDiscreteErrors(t *testing.T) {
	if _, err := NewDiscrete(nil, nil); err == nil {
		t.Error("expected error on empty")
	}
	if _, err := NewDiscrete([]int{1}, []float64{-1}); err == nil {
		t.Error("expected error on negative weight")
	}
	if _, err := NewDiscrete([]int{1}, []float64{0}); err == nil {
		t.Error("expected error on zero total")
	}
	if _, err := NewDiscrete([]int{1, 2}, []float64{1}); err == nil {
		t.Error("expected error on length mismatch")
	}
}

// Property: for any sample, the empirical CDF is monotone and bounded, and
// Quantile inverts At within sample resolution.
func TestQuickCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c, err := NewCDF(xs)
		if err != nil {
			return false
		}
		prev := -1.0
		for _, pt := range c.Points(16) {
			if pt.Y < prev || pt.Y < 0 || pt.Y > 1 {
				return false
			}
			prev = pt.Y
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: ranks are a permutation-invariant assignment summing to
// n(n+1)/2.
func TestQuickRanksSum(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) {
				xs = append(xs, x)
			}
		}
		n := len(xs)
		if n == 0 {
			return true
		}
		sum := 0.0
		for _, rk := range Ranks(xs) {
			sum += rk
		}
		return math.Abs(sum-float64(n*(n+1))/2) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Spearman is bounded in [-1, 1].
func TestQuickSpearmanBounded(t *testing.T) {
	f := func(pairs [][2]float64) bool {
		if len(pairs) < 2 {
			return true
		}
		xs := make([]float64, len(pairs))
		ys := make([]float64, len(pairs))
		for i, p := range pairs {
			if math.IsNaN(p[0]) || math.IsNaN(p[1]) || math.IsInf(p[0], 0) || math.IsInf(p[1], 0) {
				return true
			}
			xs[i], ys[i] = p[0], p[1]
		}
		rho, err := Spearman(xs, ys)
		if err != nil {
			return false
		}
		return rho >= -1-1e-9 && rho <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
