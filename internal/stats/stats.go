// Package stats provides the statistical substrate used throughout the
// Resource Central reproduction: empirical CDFs, histograms, percentiles,
// coefficients of variation, Spearman rank correlation, Weibull
// fitting/sampling, and streaming moment accumulators.
//
// All functions are deterministic and depend only on the standard library.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by estimators that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Percentile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation between closest ranks. xs does not need to be sorted; the
// input slice is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("stats: percentile %v out of [0,1]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p), nil
}

// PercentileSorted is Percentile for data already in ascending order. It
// avoids the copy and sort, which matters on hot simulation paths.
func PercentileSorted(sorted []float64, p float64) (float64, error) {
	if len(sorted) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("stats: percentile %v out of [0,1]", p)
	}
	return percentileSorted(sorted, p), nil
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Variance returns the population variance of xs.
func Variance(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// CoV returns the coefficient of variation (stddev / mean) of xs. Section 3
// of the paper uses the CoV to show per-subscription behavioural
// consistency. A mean of zero yields CoV 0 by convention (all-zero samples
// are perfectly consistent).
func CoV(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	sd, err := StdDev(xs)
	if err != nil {
		return 0, err
	}
	if m == 0 {
		return 0, nil
	}
	return sd / math.Abs(m), nil
}

// Moments accumulates count, mean and variance incrementally using
// Welford's algorithm. The zero value is ready to use.
type Moments struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (m *Moments) Add(x float64) {
	if m.n == 0 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	m.n++
	delta := x - m.mean
	m.mean += delta / float64(m.n)
	m.m2 += delta * (x - m.mean)
}

// Merge folds the other accumulator into m (parallel Welford merge).
func (m *Moments) Merge(o Moments) {
	if o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = o
		return
	}
	n := m.n + o.n
	delta := o.mean - m.mean
	mean := m.mean + delta*float64(o.n)/float64(n)
	m2 := m.m2 + o.m2 + delta*delta*float64(m.n)*float64(o.n)/float64(n)
	if o.min < m.min {
		m.min = o.min
	}
	if o.max > m.max {
		m.max = o.max
	}
	m.n, m.mean, m.m2 = n, mean, m2
}

// Count returns the number of samples added.
func (m *Moments) Count() int { return m.n }

// Mean returns the running mean (0 for the empty accumulator).
func (m *Moments) Mean() float64 { return m.mean }

// Min returns the smallest sample seen (0 for the empty accumulator).
func (m *Moments) Min() float64 { return m.min }

// Max returns the largest sample seen (0 for the empty accumulator).
func (m *Moments) Max() float64 { return m.max }

// Variance returns the running population variance.
func (m *Moments) Variance() float64 {
	if m.n == 0 {
		return 0
	}
	return m.m2 / float64(m.n)
}

// StdDev returns the running population standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// CoV returns the running coefficient of variation (0 if the mean is 0).
func (m *Moments) CoV() float64 {
	if m.mean == 0 {
		return 0
	}
	return m.StdDev() / math.Abs(m.mean)
}

// CDF is an empirical cumulative distribution function over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs. The input is copied.
func NewCDF(xs []float64) (*CDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}, nil
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	// sort.SearchFloat64s returns the first index with sorted[i] >= x; we
	// want the count of samples <= x, so search for the first > x.
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the p-quantile of the sample.
func (c *CDF) Quantile(p float64) float64 {
	q, _ := PercentileSorted(c.sorted, p) // sample is never empty
	return q
}

// N returns the sample size.
func (c *CDF) N() int { return len(c.sorted) }

// Points evaluates the CDF at n evenly spaced x positions between the
// sample min and max, returning (x, P(X<=x)) pairs — the series plotted in
// the paper's CDF figures.
func (c *CDF) Points(n int) []Point {
	if n < 2 {
		n = 2
	}
	lo, hi := c.sorted[0], c.sorted[len(c.sorted)-1]
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		pts[i] = Point{X: x, Y: c.At(x)}
	}
	return pts
}

// Point is one (x, y) sample of a curve.
type Point struct {
	X, Y float64
}

// Histogram counts samples into caller-defined bucket boundaries.
// A sample x lands in bucket i when Bounds[i-1] < x <= Bounds[i]
// (bucket 0 is x <= Bounds[0]; the last bucket is x > Bounds[len-1]).
type Histogram struct {
	Bounds []float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with the given ascending upper bounds.
// There are len(bounds)+1 buckets, the last one catching overflow.
func NewHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, errors.New("stats: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("stats: histogram bounds not ascending at %d", i)
		}
	}
	return &Histogram{
		Bounds: append([]float64(nil), bounds...),
		Counts: make([]int, len(bounds)+1),
	}, nil
}

// Add places x into its bucket.
func (h *Histogram) Add(x float64) {
	i := sort.SearchFloat64s(h.Bounds, x)
	h.Counts[i]++
	h.total++
}

// Bucket returns the bucket index for x without modifying the histogram.
func (h *Histogram) Bucket(x float64) int {
	return sort.SearchFloat64s(h.Bounds, x)
}

// Total returns the number of samples added.
func (h *Histogram) Total() int { return h.total }

// Fractions returns each bucket's share of the total (all zeros when empty).
func (h *Histogram) Fractions() []float64 {
	fr := make([]float64, len(h.Counts))
	if h.total == 0 {
		return fr
	}
	for i, c := range h.Counts {
		fr[i] = float64(c) / float64(h.total)
	}
	return fr
}

// Spearman computes Spearman's rank correlation coefficient between xs and
// ys (used for the Figure 8 heat map). Ties receive average ranks.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, errors.New("stats: spearman needs at least 2 samples")
	}
	rx := Ranks(xs)
	ry := Ranks(ys)
	return pearson(rx, ry)
}

// Ranks assigns 1-based average ranks to xs (ties share the mean rank).
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	i := 0
	for i < n {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// average rank for the tie group [i, j]
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

func pearson(xs, ys []float64) (float64, error) {
	mx, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	my, _ := Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil // constant series: no relationship by convention
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Pearson computes the Pearson product-moment correlation of xs and ys.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, errors.New("stats: pearson needs at least 2 samples")
	}
	return pearson(xs, ys)
}
