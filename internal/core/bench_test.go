package core

import (
	"strconv"
	"sync/atomic"
	"testing"

	"resourcecentral/internal/model"
)

// benchClient builds a push-mode client over the shared fixture.
func benchClient(b *testing.B) (*Client, *model.ClientInputs) {
	b.Helper()
	c := newPushClient(b, publishedStore(b))
	return c, knownInputs(b)
}

// BenchmarkPredictSingleParallel measures the prediction path under
// GOMAXPROCS-way concurrency — the Section 6.1 scenario of a VM scheduler
// issuing predictions from many allocation threads at once. "hit" is the
// result-cache fast path (the paper's 1.3 µs P99); "miss" forces a model
// execution per request by making every request's inputs unique.
func BenchmarkPredictSingleParallel(b *testing.B) {
	b.Run("hit", func(b *testing.B) {
		c, in := benchClient(b)
		if _, err := c.PredictSingle("lifetime", in); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				p, err := c.PredictSingle("lifetime", in)
				if err != nil {
					b.Fatal(err)
				}
				if !p.OK {
					b.Fatal(p.Reason)
				}
			}
		})
	})
	b.Run("miss", func(b *testing.B) {
		c, base := benchClient(b)
		var ctr atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			in := *base
			for pb.Next() {
				// Unique RequestedVMs per request → unique cache key.
				in.RequestedVMs = int(ctr.Add(1))
				p, err := c.PredictSingle("lifetime", &in)
				if err != nil {
					b.Fatal(err)
				}
				if !p.OK {
					b.Fatal(p.Reason)
				}
			}
		})
	})
}

// BenchmarkPredictMany measures the batch path with a scheduler-shaped
// batch: 256 requests, 7/8 of which repeat earlier inputs (cache hits)
// and 1/8 are new deployments (misses on the first iteration, hits after).
func BenchmarkPredictMany(b *testing.B) {
	for _, size := range []int{16, 256} {
		b.Run(strconv.Itoa(size), func(b *testing.B) {
			c, base := benchClient(b)
			ins := make([]*model.ClientInputs, size)
			for i := range ins {
				in := *base
				in.RequestedVMs = i%(size/8+1) + 1
				ins[i] = &in
			}
			if _, err := c.PredictMany("lifetime", ins); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				preds, err := c.PredictMany("lifetime", ins)
				if err != nil {
					b.Fatal(err)
				}
				if len(preds) != size {
					b.Fatal("short batch")
				}
			}
		})
	}
}
