package core

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"resourcecentral/internal/metric"
	"resourcecentral/internal/model"
	"resourcecentral/internal/pipeline"
	"resourcecentral/internal/store"
	"resourcecentral/internal/synth"
	"resourcecentral/internal/trace"
)

// The test fixture runs the offline pipeline once and publishes to a
// store; individual tests create clients against copies of it.
var (
	fixtureOnce   sync.Once
	fixtureResult *pipeline.Result
	fixtureTrace  *trace.Trace
	fixtureErr    error
)

func fixture(t testing.TB) (*pipeline.Result, *trace.Trace) {
	t.Helper()
	fixtureOnce.Do(func() {
		cfg := synth.DefaultConfig()
		cfg.Days = 12
		cfg.TargetVMs = 4000
		cfg.MaxDeploymentVMs = 200
		cfg.Seed = 11
		res, err := synth.Generate(cfg)
		if err != nil {
			fixtureErr = err
			return
		}
		fixtureTrace = res.Trace
		fixtureResult, fixtureErr = pipeline.Run(res.Trace, pipeline.Config{
			TrainCutoff:    res.Trace.Horizon * 2 / 3,
			ForestTrees:    8,
			ForestMaxDepth: 10,
			GBTRounds:      10,
			Seed:           3,
		})
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureResult, fixtureTrace
}

func publishedStore(t testing.TB) *store.Store {
	t.Helper()
	res, _ := fixture(t)
	st := store.New()
	if err := pipeline.Publish(st, res); err != nil {
		t.Fatal(err)
	}
	return st
}

// knownInputs returns client inputs for a subscription that has feature
// data.
func knownInputs(t testing.TB) *model.ClientInputs {
	t.Helper()
	res, tr := fixture(t)
	for i := range tr.VMs {
		v := &tr.VMs[i]
		if _, ok := res.Features[v.Subscription]; ok {
			in := model.FromVM(v, 1)
			return &in
		}
	}
	t.Fatal("no VM with feature data")
	return nil
}

func newPushClient(t testing.TB, st *store.Store) *Client {
	t.Helper()
	c, err := New(Config{Store: st, Mode: Push})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Initialize(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("expected error for nil store")
	}
}

func TestPredictBeforeInitialize(t *testing.T) {
	c, err := New(Config{Store: store.New()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PredictSingle("x", &model.ClientInputs{}); err == nil {
		t.Error("expected error before Initialize")
	}
}

func TestDoubleInitialize(t *testing.T) {
	c := newPushClient(t, publishedStore(t))
	if err := c.Initialize(); err == nil {
		t.Error("expected error on second Initialize")
	}
}

func TestPredictSingleAllMetrics(t *testing.T) {
	c := newPushClient(t, publishedStore(t))
	in := knownInputs(t)
	for _, m := range metric.All {
		p, err := c.PredictSingle(m.String(), in)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if !p.OK {
			t.Fatalf("%s: unexpected no-prediction: %s", m, p.Reason)
		}
		if p.Bucket < 0 || p.Bucket >= m.Buckets() {
			t.Errorf("%s: bucket %d out of range", m, p.Bucket)
		}
		if p.Score <= 0 || p.Score > 1 {
			t.Errorf("%s: score %v out of range", m, p.Score)
		}
	}
}

func TestResultCacheHit(t *testing.T) {
	c := newPushClient(t, publishedStore(t))
	in := knownInputs(t)
	first, err := c.PredictSingle("lifetime", in)
	if err != nil {
		t.Fatal(err)
	}
	if first.FromResultCache {
		t.Error("first call should be a miss")
	}
	second, err := c.PredictSingle("lifetime", in)
	if err != nil {
		t.Fatal(err)
	}
	if !second.FromResultCache {
		t.Error("second call should hit the result cache")
	}
	if second.Bucket != first.Bucket || second.Score != first.Score {
		t.Error("cached result differs from computed result")
	}
	s := c.Stats()
	if s.ResultHits != 1 || s.ResultMisses != 1 || s.ModelExecs != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestNoPredictionUnknownSubscription(t *testing.T) {
	c := newPushClient(t, publishedStore(t))
	in := knownInputs(t)
	in.Subscription = "sub-never-seen"
	p, err := c.PredictSingle("lifetime", in)
	if err != nil {
		t.Fatal(err)
	}
	if p.OK {
		t.Error("expected no-prediction for unknown subscription")
	}
	if c.Stats().NoPredictions != 1 {
		t.Errorf("stats = %+v", c.Stats())
	}
}

func TestNoPredictionUnknownModel(t *testing.T) {
	c := newPushClient(t, publishedStore(t))
	p, err := c.PredictSingle("no-such-model", knownInputs(t))
	if err != nil {
		t.Fatal(err)
	}
	if p.OK {
		t.Error("expected no-prediction for unknown model")
	}
}

func TestPredictMany(t *testing.T) {
	c := newPushClient(t, publishedStore(t))
	in := knownInputs(t)
	other := *in
	other.Cores = in.Cores * 2
	preds, err := c.PredictMany("avg-cpu-util", []*model.ClientInputs{in, &other, in})
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 3 {
		t.Fatalf("got %d predictions", len(preds))
	}
	if !preds[0].OK || !preds[1].OK || !preds[2].OK {
		t.Error("expected all predictions OK")
	}
	// Third request repeats the first → served from cache.
	if !preds[2].FromResultCache {
		t.Error("repeat in batch should hit the cache")
	}
}

func TestResultCacheEviction(t *testing.T) {
	st := publishedStore(t)
	c, err := New(Config{Store: st, Mode: Push, ResultCacheCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Initialize(); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	base := knownInputs(t)
	for i := 0; i < 20; i++ {
		in := *base
		in.Cores = i + 1
		if _, err := c.PredictSingle("lifetime", &in); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.ResultCacheLen(); n > 4 {
		t.Errorf("result cache grew to %d entries, cap 4", n)
	}
}

func TestAvailableModels(t *testing.T) {
	st := publishedStore(t)
	push := newPushClient(t, st)
	if got := len(push.AvailableModels()); got != len(metric.All) {
		t.Errorf("push: %d models, want %d", got, len(metric.All))
	}
	pull, err := New(Config{Store: st, Mode: Pull})
	if err != nil {
		t.Fatal(err)
	}
	if err := pull.Initialize(); err != nil {
		t.Fatal(err)
	}
	defer pull.Close()
	if got := len(pull.AvailableModels()); got != len(metric.All) {
		t.Errorf("pull: %d models, want %d", got, len(metric.All))
	}
}

func TestPullModeFetchesOnDemand(t *testing.T) {
	st := publishedStore(t)
	c, err := New(Config{Store: st, Mode: Pull})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Initialize(); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	in := knownInputs(t)
	p, err := c.PredictSingle("p95-cpu-util", in)
	if err != nil {
		t.Fatal(err)
	}
	if !p.OK {
		t.Fatalf("pull prediction failed: %s", p.Reason)
	}
	s := c.Stats()
	if s.StoreFetches < 2 { // model + subscription record
		t.Errorf("expected on-demand fetches, stats = %+v", s)
	}
	// Second call is served from cache without new fetches.
	before := c.Stats().StoreFetches
	if _, err := c.PredictSingle("p95-cpu-util", in); err != nil {
		t.Fatal(err)
	}
	if c.Stats().StoreFetches != before {
		t.Error("cached pull prediction touched the store")
	}
}

func TestPullAsyncEventuallyServes(t *testing.T) {
	st := publishedStore(t)
	c, err := New(Config{Store: st, Mode: PullAsync})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Initialize(); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	in := knownInputs(t)

	// First request misses everything: no-prediction, background fetch.
	p, err := c.PredictSingle("lifetime", in)
	if err != nil {
		t.Fatal(err)
	}
	if p.OK {
		t.Fatal("first async-pull request should be a no-prediction")
	}
	// The background loop fills the caches; poll until served.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		p, err = c.PredictSingle("lifetime", in)
		if err != nil {
			t.Fatal(err)
		}
		if p.OK {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !p.OK {
		t.Fatalf("async pull never served: %s", p.Reason)
	}
	if got := len(c.AvailableModels()); got != len(metric.All) {
		t.Errorf("available models = %d", got)
	}
}

func TestPullAsyncUnknownSubscriptionStaysNoPrediction(t *testing.T) {
	st := publishedStore(t)
	c, err := New(Config{Store: st, Mode: PullAsync})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Initialize(); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	in := knownInputs(t)
	in.Subscription = "sub-unknown-forever"
	for i := 0; i < 20; i++ {
		p, err := c.PredictSingle("lifetime", in)
		if err != nil {
			t.Fatal(err)
		}
		if p.OK {
			t.Fatal("prediction for a subscription that has no record")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestPushUpdateRefreshesModel(t *testing.T) {
	res, _ := fixture(t)
	st := publishedStore(t)
	c := newPushClient(t, st)
	in := knownInputs(t)
	if _, err := c.PredictSingle("lifetime", in); err != nil {
		t.Fatal(err)
	}
	// Republish: the client should absorb the new versions via push.
	if err := pipeline.Publish(st, res); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.Stats().PushUpdates > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if c.Stats().PushUpdates == 0 {
		t.Fatal("push update never applied")
	}
	// Result cache was invalidated by the update; prediction still works.
	p, err := c.PredictSingle("lifetime", in)
	if err != nil {
		t.Fatal(err)
	}
	if !p.OK {
		t.Errorf("prediction after push update: %s", p.Reason)
	}
}

func TestDiskCacheFallback(t *testing.T) {
	st := publishedStore(t)
	dir := t.TempDir()
	// First client warms the disk cache.
	warm, err := New(Config{Store: st, Mode: Push, DiskCacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.Initialize(); err != nil {
		t.Fatal(err)
	}
	warm.Close()

	// Store goes down; a fresh client must come up from disk.
	st.SetAvailable(false)
	cold, err := New(Config{Store: st, Mode: Push, DiskCacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.Initialize(); err != nil {
		t.Fatalf("initialize from disk cache: %v", err)
	}
	defer cold.Close()
	if cold.Stats().DiskHits == 0 {
		t.Error("expected disk-cache hits")
	}
	p, err := cold.PredictSingle("avg-cpu-util", knownInputs(t))
	if err != nil {
		t.Fatal(err)
	}
	if !p.OK {
		t.Errorf("prediction from disk-cached state: %s", p.Reason)
	}
	st.SetAvailable(true)
}

func TestDiskCacheExpiry(t *testing.T) {
	st := publishedStore(t)
	dir := t.TempDir()
	warm, err := New(Config{Store: st, Mode: Push, DiskCacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.Initialize(); err != nil {
		t.Fatal(err)
	}
	warm.Close()

	// Age the cache files beyond the expiry.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-48 * time.Hour)
	for _, e := range entries {
		path := filepath.Join(dir, e.Name())
		if err := os.Chtimes(path, old, old); err != nil {
			t.Fatal(err)
		}
	}

	st.SetAvailable(false)
	defer st.SetAvailable(true)
	cold, err := New(Config{Store: st, Mode: Push, DiskCacheDir: dir, DiskCacheExpiry: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.Initialize(); err == nil {
		cold.Close()
		t.Fatal("expected initialization failure with expired disk cache")
	}
}

func TestFlushCacheAndReload(t *testing.T) {
	st := publishedStore(t)
	dir := t.TempDir()
	c, err := New(Config{Store: st, Mode: Push, DiskCacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Initialize(); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	in := knownInputs(t)
	if _, err := c.PredictSingle("lifetime", in); err != nil {
		t.Fatal(err)
	}
	if err := c.FlushCache(); err != nil {
		t.Fatal(err)
	}
	// After flush everything is a no-prediction.
	p, err := c.PredictSingle("lifetime", in)
	if err != nil {
		t.Fatal(err)
	}
	if p.OK {
		t.Error("expected no-prediction after flush")
	}
	files, _ := os.ReadDir(dir)
	for _, f := range files {
		if filepath.Ext(f.Name()) == ".bin" {
			t.Errorf("disk cache entry %s survived flush", f.Name())
		}
	}
	// ForceReloadCache restores service.
	if err := c.ForceReloadCache(); err != nil {
		t.Fatal(err)
	}
	p, err = c.PredictSingle("lifetime", in)
	if err != nil {
		t.Fatal(err)
	}
	if !p.OK {
		t.Errorf("prediction after reload: %s", p.Reason)
	}
}

func TestConcurrentPredictions(t *testing.T) {
	c := newPushClient(t, publishedStore(t))
	base := knownInputs(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				in := *base
				in.Cores = (w*100+i)%8 + 1
				if _, err := c.PredictSingle("avg-cpu-util", &in); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s := c.Stats()
	if s.ResultHits+s.ResultMisses != 800 {
		t.Errorf("request accounting off: %+v", s)
	}
}

func TestPredictSingleNilInputs(t *testing.T) {
	c := newPushClient(t, publishedStore(t))
	if _, err := c.PredictSingle("lifetime", nil); err == nil {
		t.Error("expected error for nil inputs")
	}
}
