package core

import (
	"strings"
	"sync"
	"testing"

	"resourcecentral/internal/obs"
)

// TestConcurrentPredictSingle hammers the instrumented client from many
// goroutines mixing result-cache hits, misses and no-predictions; run
// under -race it is the regression test for the old unsynchronized
// Stats counters.
func TestConcurrentPredictSingle(t *testing.T) {
	c := newPushClient(t, publishedStore(t))
	in := knownInputs(t)

	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				local := *in
				switch i % 3 {
				case 0:
					// Same inputs: result-cache hit after the first call.
				case 1:
					// Unique inputs: cache miss and model execution.
					local.RequestedVMs = w*perWorker + i + 2
				case 2:
					// Unknown subscription: no-prediction.
					local.Subscription = "sub-missing"
				}
				if _, err := c.PredictSingle("lifetime", &local); err != nil {
					t.Error(err)
					return
				}
				_ = c.Stats()
				_ = c.ResultCacheLen()
			}
		}(w)
	}
	wg.Wait()

	s := c.Stats()
	total := s.ResultHits + s.ResultMisses
	if total != workers*perWorker {
		t.Errorf("hits+misses = %d, want %d", total, workers*perWorker)
	}
	if s.NoPredictions == 0 || s.ModelExecs == 0 || s.ResultHits == 0 {
		t.Errorf("stats = %+v", s)
	}
	if s.ResultMisses != s.ModelExecs+s.NoPredictions {
		t.Errorf("misses %d != execs %d + nopreds %d", s.ResultMisses, s.ModelExecs, s.NoPredictions)
	}
}

func TestClientMetricsExposed(t *testing.T) {
	reg := obs.NewRegistry()
	c, err := New(Config{Store: publishedStore(t), Mode: Push, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Initialize(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	in := knownInputs(t)
	for i := 0; i < 5; i++ {
		if _, err := c.PredictSingle("lifetime", in); err != nil {
			t.Fatal(err)
		}
	}

	hit, ok := reg.Snapshot(MetricPredictSeconds, "result", "hit")
	if !ok || hit.Count != 4 {
		t.Errorf("hit histogram count = %d (ok=%v), want 4", hit.Count, ok)
	}
	miss, ok := reg.Snapshot(MetricPredictSeconds, "result", "miss")
	if !ok || miss.Count != 1 {
		t.Errorf("miss histogram count = %d (ok=%v), want 1", miss.Count, ok)
	}
	exec, ok := reg.Snapshot(MetricModelExecSeconds, "model", "lifetime")
	if !ok || exec.Count != 1 {
		t.Errorf("exec histogram count = %d (ok=%v), want 1", exec.Count, ok)
	}
	if q := hit.Quantile(0.99); !(q > 0) {
		t.Errorf("hit P99 = %g, want > 0", q)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`rc_client_predict_seconds_bucket{result="hit",le="+Inf"} 4`,
		"rc_client_result_cache_hits_total 4",
		"rc_client_result_cache_misses_total 1",
		"rc_client_result_cache_size 1",
		"rc_client_models_loaded",
		"rc_client_features_loaded",
		"rc_client_fetch_queue_depth 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestNopRegistryClient checks a client with observability disabled
// still predicts correctly (Stats then reads zeros by design).
func TestNopRegistryClient(t *testing.T) {
	c, err := New(Config{Store: publishedStore(t), Mode: Push, Obs: obs.NewNopRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Initialize(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	in := knownInputs(t)
	p, err := c.PredictSingle("lifetime", in)
	if err != nil {
		t.Fatal(err)
	}
	if !p.OK {
		t.Fatalf("prediction = %+v", p)
	}
	if s := c.Stats(); s.ResultMisses != 0 {
		t.Errorf("nop registry recorded stats: %+v", s)
	}
	if got := c.Obs().Gather(); got != nil {
		t.Errorf("nop Gather = %v", got)
	}
}
