package core

import "sync"

// maxResultShards bounds the shard count of the result cache. 64 shards
// keep lock contention negligible at scheduler request rates while the
// per-shard maps stay large enough to amortize map overhead.
const maxResultShards = 64

type resultEntry struct {
	bucket int
	score  float64
	// model tags the entry with the model that produced it, so a model
	// reload invalidates only its own entries.
	model string
}

// resultShard is one lock domain of the result cache.
type resultShard struct {
	mu      sync.RWMutex
	entries map[uint64]resultEntry
}

// resultCache is a sharded prediction-result cache. Keys (FNV-64a of the
// model name and client inputs) are uniformly distributed, so the low
// bits pick the shard. Each shard has its own lock and its own segment of
// the capacity; eviction is per-shard, so an eviction sweep never stalls
// predictions hashing to the other shards.
type resultCache struct {
	shards   []resultShard
	mask     uint64
	shardCap int
}

// newResultCache builds a cache with capacity entries total. The shard
// count is the largest power of two ≤ min(maxResultShards, capacity), so
// small caps (tests use single digits) still respect the global bound.
func newResultCache(capacity int) *resultCache {
	n := maxResultShards
	for n > 1 && n > capacity {
		n >>= 1
	}
	rc := &resultCache{
		shards:   make([]resultShard, n),
		mask:     uint64(n - 1),
		shardCap: capacity / n,
	}
	for i := range rc.shards {
		rc.shards[i].entries = make(map[uint64]resultEntry)
	}
	return rc
}

//rcvet:hotpath
func (rc *resultCache) shard(key uint64) *resultShard {
	return &rc.shards[key&rc.mask]
}

// get returns the cached entry for key, if any. It sits inside the
// result-cache hit path's ~1 µs budget.
//
//rcvet:hotpath
func (rc *resultCache) get(key uint64) (resultEntry, bool) {
	s := rc.shard(key)
	s.mu.RLock()
	e, ok := s.entries[key]
	s.mu.RUnlock()
	return e, ok
}

// put inserts an entry, evicting within the key's shard if that shard is
// at capacity. It reports whether an eviction sweep ran.
func (rc *resultCache) put(key uint64, e resultEntry) (evicted bool) {
	s := rc.shard(key)
	s.mu.Lock()
	if len(s.entries) >= rc.shardCap {
		rc.evictShardLocked(s)
		evicted = true
	}
	s.entries[key] = e
	s.mu.Unlock()
	return evicted
}

// evictShardLocked drops roughly half of one shard (map iteration order
// makes this an arbitrary-victim policy; entries are tiny and rebuilt on
// demand). Caller holds the shard's lock.
func (rc *resultCache) evictShardLocked(s *resultShard) {
	target := rc.shardCap / 2
	for k := range s.entries {
		if len(s.entries) <= target {
			break
		}
		delete(s.entries, k)
	}
}

// cacheInsert is one pending insert of a batch put.
type cacheInsert struct {
	key   uint64
	entry resultEntry
}

// groupByShard bucket-sorts the indices 0..n-1 by the shard of their key
// (keyAt maps an index to its key). It returns the sorted index order and
// the per-shard offsets: order[offsets[s]:offsets[s+1]] are the indices
// whose keys live in shard s.
func (rc *resultCache) groupByShard(n int, keyAt func(int) uint64) (order []int, offsets []int) {
	shards := len(rc.shards)
	offsets = make([]int, shards+1)
	for i := 0; i < n; i++ {
		offsets[(keyAt(i)&rc.mask)+1]++
	}
	for s := 1; s <= shards; s++ {
		offsets[s] += offsets[s-1]
	}
	order = make([]int, n)
	pos := make([]int, shards)
	copy(pos, offsets[:shards])
	for i := 0; i < n; i++ {
		s := keyAt(i) & rc.mask
		order[pos[s]] = i
		pos[s]++
	}
	return order, offsets
}

// getBatch looks up all keys, calling onHit(i, entry) for each key found,
// and returns the hit count. Each shard's lock is acquired at most once
// for the whole batch.
func (rc *resultCache) getBatch(keys []uint64, onHit func(int, resultEntry)) int {
	order, offsets := rc.groupByShard(len(keys), func(i int) uint64 { return keys[i] })
	hits := 0
	for s := range rc.shards {
		lo, hi := offsets[s], offsets[s+1]
		if lo == hi {
			continue
		}
		sh := &rc.shards[s]
		sh.mu.RLock()
		for _, i := range order[lo:hi] {
			if e, ok := sh.entries[keys[i]]; ok {
				onHit(i, e)
				hits++
			}
		}
		sh.mu.RUnlock()
	}
	return hits
}

// putBatch inserts all entries (keys must be distinct), acquiring each
// shard's lock at most once. It returns the number of eviction sweeps.
func (rc *resultCache) putBatch(inserts []cacheInsert) (evictions int) {
	if len(inserts) == 0 {
		return 0
	}
	order, offsets := rc.groupByShard(len(inserts), func(i int) uint64 { return inserts[i].key })
	for s := range rc.shards {
		lo, hi := offsets[s], offsets[s+1]
		if lo == hi {
			continue
		}
		sh := &rc.shards[s]
		sh.mu.Lock()
		for _, i := range order[lo:hi] {
			if len(sh.entries) >= rc.shardCap {
				rc.evictShardLocked(sh)
				evictions++
			}
			sh.entries[inserts[i].key] = inserts[i].entry
		}
		sh.mu.Unlock()
	}
	return evictions
}

// invalidateModel removes the entries produced by one model, leaving the
// other models' cached results intact. Shards are swept one at a time, so
// concurrent predictions only ever wait on the shard currently being
// swept.
func (rc *resultCache) invalidateModel(model string) {
	for i := range rc.shards {
		s := &rc.shards[i]
		s.mu.Lock()
		for k, e := range s.entries {
			if e.model == model {
				delete(s.entries, k)
			}
		}
		s.mu.Unlock()
	}
}

// clear empties the cache (feature data changed: every model's results
// are stale).
func (rc *resultCache) clear() {
	for i := range rc.shards {
		s := &rc.shards[i]
		s.mu.Lock()
		s.entries = make(map[uint64]resultEntry)
		s.mu.Unlock()
	}
}

// len reports the total number of cached entries. The count is weakly
// consistent under concurrent inserts (shards are read one at a time).
func (rc *resultCache) len() int {
	n := 0
	for i := range rc.shards {
		s := &rc.shards[i]
		s.mu.RLock()
		n += len(s.entries)
		s.mu.RUnlock()
	}
	return n
}
