package core

import (
	"runtime"
	"sync"
	"testing"

	"resourcecentral/internal/model"
)

// TestConcurrentPredictUnderEviction hammers PredictSingle and
// PredictMany from GOMAXPROCS goroutines against a tiny result cache, so
// evictions run constantly, while another goroutine keeps reloading a
// model (per-model invalidation sweeps). Run under -race this is the
// regression test for the sharded cache: no prediction may be lost, the
// accounting must balance, and the cache must respect its bound.
func TestConcurrentPredictUnderEviction(t *testing.T) {
	st := publishedStore(t)
	c, err := New(Config{Store: st, Mode: Push, ResultCacheCap: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Initialize(); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	base := knownInputs(t)

	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	const perWorker = 150
	const batch = 8

	done := make(chan struct{})
	var reloadWG sync.WaitGroup
	reloadWG.Add(1)
	go func() {
		defer reloadWG.Done()
		for {
			select {
			case <-done:
				return
			default:
				// Concurrent model reload: invalidates only "lifetime"
				// entries while predictions keep flowing.
				if err := c.loadModel("lifetime"); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				in := *base
				in.Cores = (w*perWorker+i)%64 + 1
				p, err := c.PredictSingle("lifetime", &in)
				if err != nil {
					t.Error(err)
					return
				}
				if !p.OK {
					t.Errorf("lost prediction: %s", p.Reason)
					return
				}
				ins := make([]*model.ClientInputs, batch)
				for j := range ins {
					bi := *base
					bi.RequestedVMs = (i+j)%32 + 1
					ins[j] = &bi
				}
				preds, err := c.PredictMany("avg-cpu-util", ins)
				if err != nil {
					t.Error(err)
					return
				}
				for j, p := range preds {
					if !p.OK {
						t.Errorf("batch[%d] lost prediction: %s", j, p.Reason)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(done)
	reloadWG.Wait()

	if n := c.ResultCacheLen(); n > 32 {
		t.Errorf("result cache grew to %d entries, cap 32", n)
	}
	s := c.Stats()
	want := uint64(workers * perWorker * (1 + batch))
	if got := s.ResultHits + s.ResultMisses; got != want {
		t.Errorf("hits+misses = %d, want %d", got, want)
	}
	if s.ResultMisses != s.ModelExecs+s.NoPredictions {
		t.Errorf("misses %d != execs %d + nopreds %d",
			s.ResultMisses, s.ModelExecs, s.NoPredictions)
	}
}

// TestLoadModelInvalidatesOnlyThatModel pins the per-model invalidation
// semantics: reloading one model must not evict other models' cached
// results (the pre-sharding client wiped the whole cache, so a Pull-mode
// miss storm on one model destroyed every model's hit rate).
func TestLoadModelInvalidatesOnlyThatModel(t *testing.T) {
	c := newPushClient(t, publishedStore(t))
	in := knownInputs(t)

	if _, err := c.PredictSingle("lifetime", in); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PredictSingle("avg-cpu-util", in); err != nil {
		t.Fatal(err)
	}

	if err := c.loadModel("lifetime"); err != nil {
		t.Fatal(err)
	}

	p, err := c.PredictSingle("avg-cpu-util", in)
	if err != nil {
		t.Fatal(err)
	}
	if !p.FromResultCache {
		t.Error("avg-cpu-util entry was evicted by a lifetime reload")
	}
	p, err = c.PredictSingle("lifetime", in)
	if err != nil {
		t.Fatal(err)
	}
	if p.FromResultCache {
		t.Error("lifetime entry survived its own model's reload")
	}
}

// TestPredictManyBatchSemantics pins the batch path's contract: entry i
// matches ins[i], in-batch duplicates are served by the first
// occurrence's execution, and a later batch hits the cache.
func TestPredictManyBatchSemantics(t *testing.T) {
	c := newPushClient(t, publishedStore(t))
	base := knownInputs(t)

	ins := make([]*model.ClientInputs, 6)
	for i := range ins {
		in := *base
		in.Cores = i%3 + 1 // three distinct inputs, each twice
		ins[i] = &in
	}
	preds, err := c.PredictMany("lifetime", ins)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range preds {
		if !p.OK {
			t.Fatalf("preds[%d]: %s", i, p.Reason)
		}
		dup := preds[i%3]
		if p.Bucket != dup.Bucket || p.Score != dup.Score {
			t.Errorf("preds[%d] disagrees with its duplicate", i)
		}
		if i >= 3 && !p.FromResultCache {
			t.Errorf("preds[%d]: duplicate should be served as a hit", i)
		}
	}
	s := c.Stats()
	if s.ModelExecs != 3 {
		t.Errorf("model execs = %d, want 3 (one per distinct input)", s.ModelExecs)
	}
	if s.ResultHits != 3 || s.ResultMisses != 3 {
		t.Errorf("stats = %+v", s)
	}

	// The whole batch again: all hits, none recomputed.
	preds, err = c.PredictMany("lifetime", ins)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range preds {
		if !p.OK || !p.FromResultCache {
			t.Fatalf("preds[%d] = %+v, want cache hit", i, p)
		}
	}
	if s := c.Stats(); s.ModelExecs != 3 {
		t.Errorf("second batch re-executed the model: %+v", s)
	}

	// Mixed batch: known + unknown subscription → per-item no-prediction.
	bad := *base
	bad.Subscription = "sub-not-there"
	mixed, err := c.PredictMany("lifetime", []*model.ClientInputs{ins[0], &bad})
	if err != nil {
		t.Fatal(err)
	}
	if !mixed[0].OK || mixed[1].OK {
		t.Errorf("mixed batch = %+v", mixed)
	}
}

// TestResultCacheShardBounds checks the sharded cache keeps its global
// bound for a range of capacities, including caps smaller than the
// default shard count.
func TestResultCacheShardBounds(t *testing.T) {
	for _, capacity := range []int{1, 3, 8, 100, 1000} {
		rc := newResultCache(capacity)
		for i := 0; i < 10*capacity+100; i++ {
			rc.put(uint64(i)*0x9e3779b97f4a7c15, resultEntry{bucket: i})
		}
		if n := rc.len(); n > capacity {
			t.Errorf("cap %d: cache holds %d entries", capacity, n)
		}
	}
}
