package core

import "resourcecentral/internal/model"

// Key returns the coalescing key for one (model, inputs) prediction
// request: the same FNV-64a hash the result cache indexes by. Identical
// requests always map to the same key, so a serving tier can use it to
// collapse N concurrent identical lookups into one upstream prediction
// (and the collapsed prediction lands in the result-cache slot every
// follower would have probed). Exported for internal/serve; it sits on
// the per-request fast path, so it inherits CacheKey's zero-alloc
// contract.
//
//rcvet:hotpath
func Key(modelName string, in *model.ClientInputs) uint64 {
	return in.CacheKey(modelName)
}

// BatchPredictor is the upstream hook a serving tier batches into: one
// call predicts a whole set of distinct in-flight inputs (Table 2:
// predict_many). *Client implements it with shard-grouped cache passes
// and in-batch dedup; tests substitute counting fakes.
type BatchPredictor interface {
	PredictMany(modelName string, ins []*model.ClientInputs) ([]Prediction, error)
}

var _ BatchPredictor = (*Client)(nil)
