package core

import (
	"sync"

	"resourcecentral/internal/metric"
	"resourcecentral/internal/obs"
)

// Exported metric names (see README "Observability"). All latency
// histograms are in seconds with obs.DefaultLatencyBuckets, matching the
// Section 6.1 measurements: predict latency split by result-cache
// hit/miss (Fig 10, the 1.3 µs hit P99), and per-model execution time
// (the 95–147 µs medians).
const (
	MetricPredictSeconds   = "rc_client_predict_seconds"
	MetricModelExecSeconds = "rc_client_model_exec_seconds"
)

// clientMetrics is the registry-backed replacement for the old
// unsynchronized Stats struct. Every field is an atomic metric, so hot
// paths record without taking the client mutex; Stats() snapshots the
// counters for backward compatibility.
type clientMetrics struct {
	reg *obs.Registry

	predictHit  obs.Histogram // predict latency, result-cache hits
	predictMiss obs.Histogram // predict latency, misses (incl. no-predictions)

	resultHits    obs.Counter
	resultMisses  obs.Counter
	modelExecs    obs.Counter
	noPredictions obs.Counter
	storeFetches  obs.Counter
	pushUpdates   obs.Counter
	diskHits      obs.Counter
	evictions     obs.Counter
	invalidations obs.Counter

	// execHists caches the per-model execution-time histograms; the six
	// paper metrics are pre-registered, other model names fall through to
	// the registry.
	execMu    sync.RWMutex
	execHists map[string]obs.Histogram
}

// newClientMetrics registers the client's metrics on reg (which may be
// nil or a no-op registry; instrumentation then discards updates but
// Stats() would read zeros, so New falls back to a private real registry
// in that case).
func newClientMetrics(reg *obs.Registry) *clientMetrics {
	m := &clientMetrics{
		reg: reg,
		predictHit: reg.Histogram(MetricPredictSeconds,
			"PredictSingle latency in seconds, by result-cache outcome.", nil,
			"result", "hit"),
		predictMiss: reg.Histogram(MetricPredictSeconds, "", nil,
			"result", "miss"),
		resultHits: reg.Counter("rc_client_result_cache_hits_total",
			"Predictions answered from the result cache."),
		resultMisses: reg.Counter("rc_client_result_cache_misses_total",
			"Predictions that missed the result cache."),
		modelExecs: reg.Counter("rc_client_model_execs_total",
			"Model executions (result-cache misses that ran a model)."),
		noPredictions: reg.Counter("rc_client_no_predictions_total",
			"Requests answered with the no-prediction flag."),
		storeFetches: reg.Counter("rc_client_store_fetches_total",
			"Successful fetches from the store."),
		pushUpdates: reg.Counter("rc_client_push_updates_total",
			"Push notifications applied to the caches."),
		diskHits: reg.Counter("rc_client_disk_cache_hits_total",
			"Fetches served from the local disk cache."),
		evictions: reg.Counter("rc_client_result_cache_evictions_total",
			"Result-cache eviction sweeps."),
		invalidations: reg.Counter("rc_client_result_cache_invalidations_total",
			"Per-model result-cache invalidations (model reloads)."),
		execHists: make(map[string]obs.Histogram, len(metric.All)),
	}
	for _, mt := range metric.All {
		name := mt.String()
		m.execHists[name] = reg.Histogram(MetricModelExecSeconds,
			"Model execution time in seconds, by model.", nil,
			"model", name)
	}
	return m
}

// execHist returns the execution-time histogram for a model name.
func (m *clientMetrics) execHist(model string) obs.Histogram {
	m.execMu.RLock()
	h, ok := m.execHists[model]
	m.execMu.RUnlock()
	if ok {
		return h
	}
	h = m.reg.Histogram(MetricModelExecSeconds, "", nil, "model", model)
	m.execMu.Lock()
	m.execHists[model] = h
	m.execMu.Unlock()
	return h
}

// registerGauges exposes the client's cache and queue sizes as callback
// gauges. Called once the client struct is fully constructed.
func (c *Client) registerGauges() {
	reg := c.obs.reg
	reg.GaugeFunc("rc_client_result_cache_size",
		"Entries in the prediction result cache.",
		func() float64 { return float64(c.ResultCacheLen()) })
	reg.GaugeFunc("rc_client_models_loaded",
		"Models resident in the in-memory cache.",
		func() float64 {
			c.mu.RLock()
			defer c.mu.RUnlock()
			return float64(len(c.models))
		})
	reg.GaugeFunc("rc_client_features_loaded",
		"Per-subscription feature records resident in memory.",
		func() float64 {
			c.mu.RLock()
			defer c.mu.RUnlock()
			return float64(len(c.features))
		})
	reg.GaugeFunc("rc_client_fetch_queue_depth",
		"Background fetch requests queued in PullAsync mode.",
		func() float64 {
			c.fetchMu.Lock()
			q := c.fetchQ
			c.fetchMu.Unlock()
			return float64(len(q))
		})
}
