// Package core implements the Resource Central client library — the
// "client DLL" of Section 4.2. It is the only view of RC that client
// systems (VM scheduler, health manager, power manager) see. The library
// caches prediction results, models, and per-subscription feature data in
// memory, mirrors model/feature data to a local disk cache for use when
// the store is unavailable, supports push- and pull-based cache
// maintenance, and executes models locally so that no remote access sits
// on the critical path of a prediction.
package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"resourcecentral/internal/featuredata"
	"resourcecentral/internal/metric"
	"resourcecentral/internal/model"
	"resourcecentral/internal/obs"
	"resourcecentral/internal/pipeline"
	"resourcecentral/internal/store"
)

// CacheMode selects how the model and feature caches are maintained
// (Section 4.2 "Cache management").
type CacheMode int

// Cache modes.
const (
	// Push: the store notifies the client of new versions; lookups never
	// touch the store on the prediction path. A missing model or feature
	// record yields a no-prediction.
	Push CacheMode = iota
	// Pull: missing models and feature records are fetched from the store
	// on demand, placing the interconnect on the critical path (the
	// configuration measured at 2.9 ms median in Section 6.1).
	Pull
	// PullAsync: a miss returns a no-prediction immediately and schedules
	// the fetch in the background, so remote accesses and model loads
	// never sit on the prediction path (the paper's other pull
	// configuration, for clients whose models or feature data exceed
	// memory or whose time budget is strict).
	PullAsync
)

// Config configures a client.
type Config struct {
	// Store is the highly available store the offline pipeline publishes
	// to. Required.
	Store *store.Store
	// Mode selects push- or pull-based cache maintenance.
	Mode CacheMode
	// DiskCacheDir mirrors models and feature data to the local file
	// system; empty disables the disk cache.
	DiskCacheDir string
	// DiskCacheExpiry bounds the age of usable disk-cache entries
	// (0 = 24h).
	DiskCacheExpiry time.Duration
	// ResultCacheCap bounds the number of cached prediction results
	// (0 = 1<<20). When full, an arbitrary half of the entries is evicted.
	ResultCacheCap int
	// Obs receives the client's metrics (predict latency histograms,
	// cache counters and gauges — the live Section 6.1 numbers). nil
	// creates a private registry so Stats() keeps working; pass
	// obs.NewNopRegistry() to disable recording entirely. When one
	// registry is shared by several clients the counters are shared too
	// (a process-wide view), and the cache-size gauges report the first
	// client's caches.
	Obs *obs.Registry
}

// Prediction is the result of one prediction request. When OK is false the
// client could not produce a prediction (Section 4.2's no-prediction
// flag) and Reason says why; the calling system must handle it (e.g. the
// scheduler assumes 100% utilization).
type Prediction struct {
	OK     bool
	Bucket int
	Score  float64
	Reason string
	// FromResultCache marks result-cache hits.
	FromResultCache bool
}

// Stats counts client-side events for the Section 6.1 performance
// analysis. It is a compatibility snapshot of the registry-backed
// counters in Config.Obs; the live view (including latency histograms)
// is the registry itself.
type Stats struct {
	ResultHits    uint64
	ResultMisses  uint64
	ModelExecs    uint64
	NoPredictions uint64
	StoreFetches  uint64
	PushUpdates   uint64
	DiskHits      uint64
}

// Client is the thread-safe RC client library.
type Client struct {
	cfg Config

	// mu guards the model and feature caches only; the result cache has
	// its own per-shard locks, so a prediction served from cache never
	// contends with model/feature updates.
	mu       sync.RWMutex
	models   map[string]*model.Trained
	features map[string]*featuredata.SubscriptionFeatures

	// results is the sharded prediction-result cache.
	results *resultCache

	inited atomic.Bool

	// obs holds the registry-backed atomic counters and latency
	// histograms; hot paths record without taking mu.
	obs *clientMetrics

	notif chan store.Notification
	done  chan struct{}
	wg    sync.WaitGroup

	// fetchMu guards the PullAsync background-fetch state (fetchQ and the
	// inflight dedup map). It is separate from mu so enqueueing a
	// background fetch never touches the prediction locks.
	fetchMu  sync.Mutex
	fetchQ   chan string
	inflight map[string]bool
}

// New creates a client; call Initialize before requesting predictions.
func New(cfg Config) (*Client, error) {
	if cfg.Store == nil {
		return nil, errors.New("core: Config.Store is required")
	}
	if cfg.DiskCacheExpiry <= 0 {
		cfg.DiskCacheExpiry = 24 * time.Hour
	}
	if cfg.ResultCacheCap <= 0 {
		cfg.ResultCacheCap = 1 << 20
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	c := &Client{
		cfg:      cfg,
		models:   make(map[string]*model.Trained),
		features: make(map[string]*featuredata.SubscriptionFeatures),
		results:  newResultCache(cfg.ResultCacheCap),
		done:     make(chan struct{}),
		inflight: make(map[string]bool),
		obs:      newClientMetrics(cfg.Obs),
	}
	c.registerGauges()
	return c, nil
}

// Obs returns the registry holding the client's metrics.
func (c *Client) Obs() *obs.Registry { return c.cfg.Obs }

// Initialize loads caches and, in push mode, subscribes to store updates
// (Table 2: initialize).
func (c *Client) Initialize() error {
	if !c.inited.CompareAndSwap(false, true) {
		return errors.New("core: already initialized")
	}

	switch c.cfg.Mode {
	case Push:
		if err := c.loadAll(); err != nil {
			return err
		}
		c.notif = make(chan store.Notification, 1024)
		c.cfg.Store.Subscribe(c.notif)
		c.wg.Add(1)
		go c.pushLoop()
	case PullAsync:
		// Under fetchMu: the fetch-queue-depth gauge may read c.fetchQ
		// concurrently.
		c.fetchMu.Lock()
		c.fetchQ = make(chan string, 4096)
		c.fetchMu.Unlock()
		c.wg.Add(1)
		go c.fetchLoop()
	}
	return nil
}

// fetchLoop serves PullAsync background fetches.
func (c *Client) fetchLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			return
		case key := <-c.fetchQ:
			c.backgroundFetch(key)
			c.fetchMu.Lock()
			delete(c.inflight, key)
			c.fetchMu.Unlock()
		}
	}
}

// backgroundFetch loads one key into the caches (errors are dropped; the
// next prediction request re-enqueues the key).
func (c *Client) backgroundFetch(key string) {
	switch {
	case strings.HasPrefix(key, "model/"):
		_ = c.loadModel(strings.TrimPrefix(key, "model/"))
	case strings.HasPrefix(key, "featuredata/sub/"):
		data, err := c.fetch(key)
		if err != nil {
			return
		}
		rec, err := featuredata.DecodeRecord(data)
		if err != nil {
			return
		}
		c.mu.Lock()
		c.features[rec.Subscription] = rec
		c.mu.Unlock()
	}
}

// enqueueFetch schedules a background fetch if one is not in flight. It
// only takes the small fetchMu, never the prediction locks.
func (c *Client) enqueueFetch(key string) {
	c.fetchMu.Lock()
	if c.inflight[key] {
		c.fetchMu.Unlock()
		return
	}
	c.inflight[key] = true
	c.fetchMu.Unlock()
	select {
	case c.fetchQ <- key:
	default:
		// Queue full: drop; the next miss re-enqueues.
		c.fetchMu.Lock()
		delete(c.inflight, key)
		c.fetchMu.Unlock()
	}
}

// Close stops background cache maintenance.
func (c *Client) Close() {
	if c.notif != nil {
		// Push mode registered the notification channel at Init; the
		// store would keep signaling it after the pushLoop exits.
		c.cfg.Store.Unsubscribe(c.notif)
	}
	close(c.done)
	c.wg.Wait()
}

// pushLoop applies store notifications to the in-memory caches.
func (c *Client) pushLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			return
		case n := <-c.notif:
			if err := c.applyUpdate(n.Key); err == nil {
				c.obs.pushUpdates.Inc()
			}
		}
	}
}

// applyUpdate refreshes one key from the store.
func (c *Client) applyUpdate(key string) error {
	switch {
	case strings.HasPrefix(key, "model/"):
		return c.loadModel(strings.TrimPrefix(key, "model/"))
	case key == pipeline.FeatureSetKey:
		return c.loadFeatureSet()
	default:
		return nil // per-subscription records are covered by the full set
	}
}

// loadAll fetches every model and the full feature dataset.
func (c *Client) loadAll() error {
	for _, m := range metric.All {
		if err := c.loadModel(m.String()); err != nil {
			return err
		}
	}
	return c.loadFeatureSet()
}

// loadModel fetches one model from the store (falling back to disk when
// the store is unavailable) and installs it.
func (c *Client) loadModel(name string) error {
	key := "model/" + name
	data, err := c.fetch(key)
	if err != nil {
		return err
	}
	trained, err := model.Decode(data)
	if err != nil {
		return fmt.Errorf("core: %s: %w", key, err)
	}
	c.mu.Lock()
	c.models[name] = trained
	c.mu.Unlock()
	// Only this model's cached results are stale; every other model's
	// entries survive the reload, so a Pull-mode miss storm on one model
	// cannot wipe the whole result cache.
	c.results.invalidateModel(name)
	c.obs.invalidations.Inc()
	return nil
}

// loadFeatureSet fetches the full feature dataset.
func (c *Client) loadFeatureSet() error {
	data, err := c.fetch(pipeline.FeatureSetKey)
	if err != nil {
		return err
	}
	set, err := featuredata.DecodeSet(data)
	if err != nil {
		return fmt.Errorf("core: %s: %w", pipeline.FeatureSetKey, err)
	}
	c.mu.Lock()
	c.features = set
	c.mu.Unlock()
	// Feature data feeds every model, so all cached results are stale.
	c.results.clear()
	return nil
}

// fetch reads a key from the store, mirroring successes to the disk cache
// and falling back to an unexpired disk entry when the store is
// unavailable (Section 4.2's two disk-cache cases).
func (c *Client) fetch(key string) ([]byte, error) {
	blob, err := c.cfg.Store.Get(key)
	if err == nil {
		c.obs.storeFetches.Inc()
		c.writeDisk(key, blob.Data)
		return blob.Data, nil
	}
	if errors.Is(err, store.ErrUnavailable) {
		if data, derr := c.readDisk(key); derr == nil {
			c.obs.diskHits.Inc()
			return data, nil
		}
	}
	return nil, err
}

func (c *Client) diskPath(key string) string {
	return filepath.Join(c.cfg.DiskCacheDir, strings.ReplaceAll(key, "/", "_")+".bin")
}

func (c *Client) writeDisk(key string, data []byte) {
	if c.cfg.DiskCacheDir == "" {
		return
	}
	path := c.diskPath(key)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o600); err != nil {
		return // disk cache is best effort
	}
	_ = os.Rename(tmp, path)
}

func (c *Client) readDisk(key string) ([]byte, error) {
	if c.cfg.DiskCacheDir == "" {
		return nil, errors.New("core: disk cache disabled")
	}
	path := c.diskPath(key)
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if time.Since(info.ModTime()) > c.cfg.DiskCacheExpiry { //rcvet:allow(disk-cache expiry is wall-clock by design; seeded simulations run with in-memory stores)
		return nil, fmt.Errorf("core: disk cache entry %s expired", key)
	}
	return os.ReadFile(path)
}

// AvailableModels lists the loaded (push) or published (pull) model names
// (Table 2: get_available_models).
func (c *Client) AvailableModels() []string {
	if c.cfg.Mode != Push {
		names := make([]string, 0, len(metric.All))
		for _, key := range c.cfg.Store.Keys() {
			if strings.HasPrefix(key, "model/") {
				names = append(names, strings.TrimPrefix(key, "model/"))
			}
		}
		return names
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.models))
	for name := range c.models {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// PredictSingle produces one prediction (Table 2: predict_single). It
// never returns an error for missing models/feature data — those become
// no-predictions, which callers must handle; errors indicate misuse.
func (c *Client) PredictSingle(modelName string, in *model.ClientInputs) (Prediction, error) {
	start := time.Now() //rcvet:allow(observational: feeds the predict-latency histograms only, never prediction results)
	if in == nil {
		return Prediction{}, errors.New("core: nil client inputs")
	}
	if !c.inited.Load() {
		return Prediction{}, errors.New("core: client not initialized")
	}
	p, key, ok := c.lookupResult(modelName, in, start)
	if ok {
		return p, nil
	}
	c.obs.resultMisses.Inc()

	c.mu.RLock()
	trained := c.models[modelName]
	sub := c.features[in.Subscription]
	c.mu.RUnlock()

	trained = c.resolveModel(trained, modelName)
	if trained == nil {
		return c.noPrediction(start, "model "+modelName+" not available"), nil
	}
	sub = c.resolveFeatures(sub, in.Subscription)
	if sub == nil {
		return c.noPrediction(start, "no feature data for subscription "+in.Subscription), nil
	}

	bucket, score, _, err := c.execute(trained, modelName, in, sub, nil)
	if err != nil {
		return Prediction{}, err
	}
	if c.results.put(key, resultEntry{bucket: bucket, score: score, model: modelName}) {
		c.obs.evictions.Inc()
	}
	c.obs.predictMiss.ObserveSince(start)
	return Prediction{OK: true, Bucket: bucket, Score: score}, nil
}

// lookupResult serves the result-cache hit path: key hash, one sharded
// read, hit metrics. This is the ~1 µs budget the paper allots a cached
// prediction, so the whole chain — CacheKey, resultCache.get, the
// metric ops — must stay off the heap; allocfree enforces that
// transitively.
//
//rcvet:hotpath
func (c *Client) lookupResult(modelName string, in *model.ClientInputs, start time.Time) (Prediction, uint64, bool) {
	key := in.CacheKey(modelName)
	entry, ok := c.results.get(key)
	if !ok {
		return Prediction{}, key, false
	}
	c.obs.resultHits.Inc()
	c.obs.predictHit.ObserveSince(start)
	return Prediction{OK: true, Bucket: entry.bucket, Score: entry.score, FromResultCache: true}, key, true
}

// resolveModel applies the cache-mode policy to a model-cache miss: Pull
// fetches it synchronously, PullAsync schedules a background fetch and
// answers no-prediction (trained stays nil), Push leaves the miss as-is.
func (c *Client) resolveModel(trained *model.Trained, modelName string) *model.Trained {
	if trained != nil {
		return trained
	}
	switch c.cfg.Mode {
	case Pull:
		if err := c.loadModel(modelName); err == nil {
			c.mu.RLock()
			trained = c.models[modelName]
			c.mu.RUnlock()
		}
	case PullAsync:
		c.enqueueFetch("model/" + modelName)
	}
	return trained
}

// resolveFeatures applies the cache-mode policy to a feature-cache miss.
func (c *Client) resolveFeatures(sub *featuredata.SubscriptionFeatures, subscription string) *featuredata.SubscriptionFeatures {
	if sub != nil {
		return sub
	}
	switch c.cfg.Mode {
	case Pull:
		if data, err := c.fetch(pipeline.SubFeatureKey(subscription)); err == nil {
			if rec, err := featuredata.DecodeRecord(data); err == nil {
				c.mu.Lock()
				c.features[subscription] = rec
				c.mu.Unlock()
				sub = rec
			}
		}
	case PullAsync:
		c.enqueueFetch(pipeline.SubFeatureKey(subscription))
	}
	return sub
}

// execute featurizes one input into scratch and runs the model, recording
// the execution metrics. scratch may be nil; batch paths pass the
// returned buffer back in to reuse its capacity across the batch.
func (c *Client) execute(trained *model.Trained, modelName string, in *model.ClientInputs,
	sub *featuredata.SubscriptionFeatures, scratch []float64) (int, float64, []float64, error) {
	execStart := time.Now() //rcvet:allow(observational: feeds the per-model execution histogram only, never prediction results)
	x := trained.Spec.Featurize(in, sub, scratch[:0])
	bucket, score, err := trained.Predict(x)
	if err != nil {
		return 0, 0, x, fmt.Errorf("core: model %s execution: %w", modelName, err)
	}
	c.obs.modelExecs.Inc()
	c.obs.execHist(modelName).ObserveSince(execStart)
	return bucket, score, x, nil
}

func (c *Client) noPrediction(start time.Time, reason string) Prediction {
	c.obs.noPredictions.Inc()
	c.obs.predictMiss.ObserveSince(start)
	return Prediction{OK: false, Reason: reason}
}

// PredictMany produces predictions for a batch of inputs (Table 2:
// predict_many). Entry i of the result corresponds to ins[i].
//
// This is a real batch path, not a loop over PredictSingle: the lookup
// and insert passes visit each cache shard at most once per batch, the
// featurize scratch buffer is shared across the whole batch, and inputs
// repeated within the batch execute the model only once (later
// occurrences are reported as result-cache hits, matching the sequential
// semantics).
func (c *Client) PredictMany(modelName string, ins []*model.ClientInputs) ([]Prediction, error) {
	start := time.Now() //rcvet:allow(observational: feeds the predict-latency histograms only, never prediction results)
	if !c.inited.Load() {
		return nil, errors.New("core: client not initialized")
	}
	out := make([]Prediction, len(ins))
	if len(ins) == 0 {
		return out, nil
	}
	keys := make([]uint64, len(ins))
	for i, in := range ins {
		if in == nil {
			return nil, fmt.Errorf("core: input %d: nil client inputs", i)
		}
		keys[i] = in.CacheKey(modelName)
	}

	// Lookup pass: each shard's lock is taken at most once for the batch.
	found := c.results.getBatch(keys, func(i int, e resultEntry) {
		out[i] = Prediction{OK: true, Bucket: e.bucket, Score: e.score, FromResultCache: true}
	})
	if found > 0 {
		c.obs.resultHits.Add(uint64(found))
		// The per-item cost of a batched hit is the batch lookup divided
		// across its hits; recording that per item keeps the hit
		// histogram's totals comparable with the single-call path.
		perHit := time.Since(start).Seconds() / float64(found) //rcvet:allow(observational: per-hit latency split for the hit histogram only)
		for i := 0; i < found; i++ {
			c.obs.predictHit.Observe(perHit)
		}
	}
	if found == len(ins) {
		return out, nil
	}

	// Miss pass: resolve the model once for the whole batch, then execute
	// each distinct missing input with a shared featurize scratch buffer.
	c.mu.RLock()
	trained := c.models[modelName]
	c.mu.RUnlock()
	trained = c.resolveModel(trained, modelName)

	var scratch []float64
	computed := make(map[uint64]resultEntry)
	var inserts []cacheInsert
	for i := range ins {
		if out[i].OK {
			continue // served by the lookup pass
		}
		key, in := keys[i], ins[i]
		if e, ok := computed[key]; ok {
			// Repeated input within the batch: the first occurrence's
			// execution serves it, exactly as if it had hit the cache.
			c.obs.resultHits.Inc()
			out[i] = Prediction{OK: true, Bucket: e.bucket, Score: e.score, FromResultCache: true}
			continue
		}
		c.obs.resultMisses.Inc()
		itemStart := time.Now() //rcvet:allow(observational: feeds the predict-latency histograms only, never prediction results)
		if trained == nil {
			out[i] = c.noPrediction(itemStart, "model "+modelName+" not available")
			continue
		}
		c.mu.RLock()
		sub := c.features[in.Subscription]
		c.mu.RUnlock()
		sub = c.resolveFeatures(sub, in.Subscription)
		if sub == nil {
			out[i] = c.noPrediction(itemStart, "no feature data for subscription "+in.Subscription)
			continue
		}
		var bucket int
		var score float64
		var err error
		bucket, score, scratch, err = c.execute(trained, modelName, in, sub, scratch)
		if err != nil {
			return nil, fmt.Errorf("core: input %d: %w", i, err)
		}
		e := resultEntry{bucket: bucket, score: score, model: modelName}
		computed[key] = e
		inserts = append(inserts, cacheInsert{key: key, entry: e})
		out[i] = Prediction{OK: true, Bucket: bucket, Score: score}
		c.obs.predictMiss.ObserveSince(itemStart)
	}

	// Insert pass: again one lock acquisition per shard.
	if evictions := c.results.putBatch(inserts); evictions > 0 {
		c.obs.evictions.Add(uint64(evictions))
	}
	return out, nil
}

// ForceReloadCache refreshes the memory and disk caches from the store
// (Table 2: force_reload_cache).
func (c *Client) ForceReloadCache() error {
	return c.loadAll()
}

// FlushCache drops the memory caches and removes disk-cache entries
// (Table 2: flush_cache).
func (c *Client) FlushCache() error {
	c.mu.Lock()
	c.models = make(map[string]*model.Trained)
	c.features = make(map[string]*featuredata.SubscriptionFeatures)
	c.mu.Unlock()
	c.results.clear()
	if c.cfg.DiskCacheDir != "" {
		entries, err := os.ReadDir(c.cfg.DiskCacheDir)
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".bin") {
				if err := os.Remove(filepath.Join(c.cfg.DiskCacheDir, e.Name())); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Stats returns a race-safe snapshot of the client counters. It is a
// compatibility shim over the registry-backed atomics; each field is
// loaded independently, so the snapshot is weakly consistent under
// concurrent predictions.
func (c *Client) Stats() Stats {
	return Stats{
		ResultHits:    c.obs.resultHits.Value(),
		ResultMisses:  c.obs.resultMisses.Value(),
		ModelExecs:    c.obs.modelExecs.Value(),
		NoPredictions: c.obs.noPredictions.Value(),
		StoreFetches:  c.obs.storeFetches.Value(),
		PushUpdates:   c.obs.pushUpdates.Value(),
		DiskHits:      c.obs.diskHits.Value(),
	}
}

// ResultCacheLen reports the number of cached prediction results (the
// Section 6.1 result cache stays small: ~25 MB for a month of requests).
// The count sums the shards one at a time, so it is weakly consistent
// under concurrent predictions.
func (c *Client) ResultCacheLen() int {
	return c.results.len()
}
