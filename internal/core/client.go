// Package core implements the Resource Central client library — the
// "client DLL" of Section 4.2. It is the only view of RC that client
// systems (VM scheduler, health manager, power manager) see. The library
// caches prediction results, models, and per-subscription feature data in
// memory, mirrors model/feature data to a local disk cache for use when
// the store is unavailable, supports push- and pull-based cache
// maintenance, and executes models locally so that no remote access sits
// on the critical path of a prediction.
package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"resourcecentral/internal/featuredata"
	"resourcecentral/internal/metric"
	"resourcecentral/internal/model"
	"resourcecentral/internal/obs"
	"resourcecentral/internal/pipeline"
	"resourcecentral/internal/store"
)

// CacheMode selects how the model and feature caches are maintained
// (Section 4.2 "Cache management").
type CacheMode int

// Cache modes.
const (
	// Push: the store notifies the client of new versions; lookups never
	// touch the store on the prediction path. A missing model or feature
	// record yields a no-prediction.
	Push CacheMode = iota
	// Pull: missing models and feature records are fetched from the store
	// on demand, placing the interconnect on the critical path (the
	// configuration measured at 2.9 ms median in Section 6.1).
	Pull
	// PullAsync: a miss returns a no-prediction immediately and schedules
	// the fetch in the background, so remote accesses and model loads
	// never sit on the prediction path (the paper's other pull
	// configuration, for clients whose models or feature data exceed
	// memory or whose time budget is strict).
	PullAsync
)

// Config configures a client.
type Config struct {
	// Store is the highly available store the offline pipeline publishes
	// to. Required.
	Store *store.Store
	// Mode selects push- or pull-based cache maintenance.
	Mode CacheMode
	// DiskCacheDir mirrors models and feature data to the local file
	// system; empty disables the disk cache.
	DiskCacheDir string
	// DiskCacheExpiry bounds the age of usable disk-cache entries
	// (0 = 24h).
	DiskCacheExpiry time.Duration
	// ResultCacheCap bounds the number of cached prediction results
	// (0 = 1<<20). When full, an arbitrary half of the entries is evicted.
	ResultCacheCap int
	// Obs receives the client's metrics (predict latency histograms,
	// cache counters and gauges — the live Section 6.1 numbers). nil
	// creates a private registry so Stats() keeps working; pass
	// obs.NewNopRegistry() to disable recording entirely. When one
	// registry is shared by several clients the counters are shared too
	// (a process-wide view), and the cache-size gauges report the first
	// client's caches.
	Obs *obs.Registry
}

// Prediction is the result of one prediction request. When OK is false the
// client could not produce a prediction (Section 4.2's no-prediction
// flag) and Reason says why; the calling system must handle it (e.g. the
// scheduler assumes 100% utilization).
type Prediction struct {
	OK     bool
	Bucket int
	Score  float64
	Reason string
	// FromResultCache marks result-cache hits.
	FromResultCache bool
}

// Stats counts client-side events for the Section 6.1 performance
// analysis. It is a compatibility snapshot of the registry-backed
// counters in Config.Obs; the live view (including latency histograms)
// is the registry itself.
type Stats struct {
	ResultHits    uint64
	ResultMisses  uint64
	ModelExecs    uint64
	NoPredictions uint64
	StoreFetches  uint64
	PushUpdates   uint64
	DiskHits      uint64
}

type resultEntry struct {
	bucket int
	score  float64
}

// Client is the thread-safe RC client library.
type Client struct {
	cfg Config

	mu       sync.RWMutex
	models   map[string]*model.Trained
	features map[string]*featuredata.SubscriptionFeatures
	results  map[uint64]resultEntry
	inited   bool

	// obs holds the registry-backed atomic counters and latency
	// histograms; hot paths record without taking mu.
	obs *clientMetrics

	notif chan store.Notification
	done  chan struct{}
	wg    sync.WaitGroup

	// fetchQ carries background fetch requests in PullAsync mode;
	// inflight deduplicates them.
	fetchQ   chan string
	inflight map[string]bool
}

// New creates a client; call Initialize before requesting predictions.
func New(cfg Config) (*Client, error) {
	if cfg.Store == nil {
		return nil, errors.New("core: Config.Store is required")
	}
	if cfg.DiskCacheExpiry <= 0 {
		cfg.DiskCacheExpiry = 24 * time.Hour
	}
	if cfg.ResultCacheCap <= 0 {
		cfg.ResultCacheCap = 1 << 20
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	c := &Client{
		cfg:      cfg,
		models:   make(map[string]*model.Trained),
		features: make(map[string]*featuredata.SubscriptionFeatures),
		results:  make(map[uint64]resultEntry),
		done:     make(chan struct{}),
		inflight: make(map[string]bool),
		obs:      newClientMetrics(cfg.Obs),
	}
	c.registerGauges()
	return c, nil
}

// Obs returns the registry holding the client's metrics.
func (c *Client) Obs() *obs.Registry { return c.cfg.Obs }

// Initialize loads caches and, in push mode, subscribes to store updates
// (Table 2: initialize).
func (c *Client) Initialize() error {
	c.mu.Lock()
	if c.inited {
		c.mu.Unlock()
		return errors.New("core: already initialized")
	}
	c.inited = true
	c.mu.Unlock()

	switch c.cfg.Mode {
	case Push:
		if err := c.loadAll(); err != nil {
			return err
		}
		c.notif = make(chan store.Notification, 1024)
		c.cfg.Store.Subscribe(c.notif)
		c.wg.Add(1)
		go c.pushLoop()
	case PullAsync:
		// Under mu: the fetch-queue-depth gauge may read c.fetchQ
		// concurrently.
		c.mu.Lock()
		c.fetchQ = make(chan string, 4096)
		c.mu.Unlock()
		c.wg.Add(1)
		go c.fetchLoop()
	}
	return nil
}

// fetchLoop serves PullAsync background fetches.
func (c *Client) fetchLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			return
		case key := <-c.fetchQ:
			c.backgroundFetch(key)
			c.mu.Lock()
			delete(c.inflight, key)
			c.mu.Unlock()
		}
	}
}

// backgroundFetch loads one key into the caches (errors are dropped; the
// next prediction request re-enqueues the key).
func (c *Client) backgroundFetch(key string) {
	switch {
	case strings.HasPrefix(key, "model/"):
		_ = c.loadModel(strings.TrimPrefix(key, "model/"))
	case strings.HasPrefix(key, "featuredata/sub/"):
		data, err := c.fetch(key)
		if err != nil {
			return
		}
		rec, err := featuredata.DecodeRecord(data)
		if err != nil {
			return
		}
		c.mu.Lock()
		c.features[rec.Subscription] = rec
		c.mu.Unlock()
	}
}

// enqueueFetch schedules a background fetch if one is not in flight.
func (c *Client) enqueueFetch(key string) {
	c.mu.Lock()
	if c.inflight[key] {
		c.mu.Unlock()
		return
	}
	c.inflight[key] = true
	c.mu.Unlock()
	select {
	case c.fetchQ <- key:
	default:
		// Queue full: drop; the next miss re-enqueues.
		c.mu.Lock()
		delete(c.inflight, key)
		c.mu.Unlock()
	}
}

// Close stops background cache maintenance.
func (c *Client) Close() {
	close(c.done)
	c.wg.Wait()
}

// pushLoop applies store notifications to the in-memory caches.
func (c *Client) pushLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			return
		case n := <-c.notif:
			if err := c.applyUpdate(n.Key); err == nil {
				c.obs.pushUpdates.Inc()
			}
		}
	}
}

// applyUpdate refreshes one key from the store.
func (c *Client) applyUpdate(key string) error {
	switch {
	case strings.HasPrefix(key, "model/"):
		return c.loadModel(strings.TrimPrefix(key, "model/"))
	case key == pipeline.FeatureSetKey:
		return c.loadFeatureSet()
	default:
		return nil // per-subscription records are covered by the full set
	}
}

// loadAll fetches every model and the full feature dataset.
func (c *Client) loadAll() error {
	for _, m := range metric.All {
		if err := c.loadModel(m.String()); err != nil {
			return err
		}
	}
	return c.loadFeatureSet()
}

// loadModel fetches one model from the store (falling back to disk when
// the store is unavailable) and installs it.
func (c *Client) loadModel(name string) error {
	key := "model/" + name
	data, err := c.fetch(key)
	if err != nil {
		return err
	}
	trained, err := model.Decode(data)
	if err != nil {
		return fmt.Errorf("core: %s: %w", key, err)
	}
	c.mu.Lock()
	c.models[name] = trained
	// Models changed; cached results may be stale.
	c.results = make(map[uint64]resultEntry)
	c.mu.Unlock()
	return nil
}

// loadFeatureSet fetches the full feature dataset.
func (c *Client) loadFeatureSet() error {
	data, err := c.fetch(pipeline.FeatureSetKey)
	if err != nil {
		return err
	}
	set, err := featuredata.DecodeSet(data)
	if err != nil {
		return fmt.Errorf("core: %s: %w", pipeline.FeatureSetKey, err)
	}
	c.mu.Lock()
	c.features = set
	c.results = make(map[uint64]resultEntry)
	c.mu.Unlock()
	return nil
}

// fetch reads a key from the store, mirroring successes to the disk cache
// and falling back to an unexpired disk entry when the store is
// unavailable (Section 4.2's two disk-cache cases).
func (c *Client) fetch(key string) ([]byte, error) {
	blob, err := c.cfg.Store.Get(key)
	if err == nil {
		c.obs.storeFetches.Inc()
		c.writeDisk(key, blob.Data)
		return blob.Data, nil
	}
	if errors.Is(err, store.ErrUnavailable) {
		if data, derr := c.readDisk(key); derr == nil {
			c.obs.diskHits.Inc()
			return data, nil
		}
	}
	return nil, err
}

func (c *Client) diskPath(key string) string {
	return filepath.Join(c.cfg.DiskCacheDir, strings.ReplaceAll(key, "/", "_")+".bin")
}

func (c *Client) writeDisk(key string, data []byte) {
	if c.cfg.DiskCacheDir == "" {
		return
	}
	path := c.diskPath(key)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o600); err != nil {
		return // disk cache is best effort
	}
	_ = os.Rename(tmp, path)
}

func (c *Client) readDisk(key string) ([]byte, error) {
	if c.cfg.DiskCacheDir == "" {
		return nil, errors.New("core: disk cache disabled")
	}
	path := c.diskPath(key)
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if time.Since(info.ModTime()) > c.cfg.DiskCacheExpiry {
		return nil, fmt.Errorf("core: disk cache entry %s expired", key)
	}
	return os.ReadFile(path)
}

// AvailableModels lists the loaded (push) or published (pull) model names
// (Table 2: get_available_models).
func (c *Client) AvailableModels() []string {
	if c.cfg.Mode != Push {
		names := make([]string, 0, len(metric.All))
		for _, key := range c.cfg.Store.Keys() {
			if strings.HasPrefix(key, "model/") {
				names = append(names, strings.TrimPrefix(key, "model/"))
			}
		}
		return names
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.models))
	for name := range c.models {
		names = append(names, name)
	}
	return names
}

// PredictSingle produces one prediction (Table 2: predict_single). It
// never returns an error for missing models/feature data — those become
// no-predictions, which callers must handle; errors indicate misuse.
func (c *Client) PredictSingle(modelName string, in *model.ClientInputs) (Prediction, error) {
	start := time.Now()
	if in == nil {
		return Prediction{}, errors.New("core: nil client inputs")
	}
	key := in.CacheKey(modelName)
	c.mu.RLock()
	if !c.inited {
		c.mu.RUnlock()
		return Prediction{}, errors.New("core: client not initialized")
	}
	if entry, ok := c.results[key]; ok {
		c.mu.RUnlock()
		c.obs.resultHits.Inc()
		c.obs.predictHit.ObserveSince(start)
		return Prediction{OK: true, Bucket: entry.bucket, Score: entry.score, FromResultCache: true}, nil
	}
	trained := c.models[modelName]
	sub := c.features[in.Subscription]
	c.mu.RUnlock()

	c.obs.resultMisses.Inc()

	// Pull mode fetches what is missing on demand; PullAsync returns a
	// no-prediction and fetches in the background instead.
	if trained == nil {
		switch c.cfg.Mode {
		case Pull:
			if err := c.loadModel(modelName); err == nil {
				c.mu.RLock()
				trained = c.models[modelName]
				c.mu.RUnlock()
			}
		case PullAsync:
			c.enqueueFetch("model/" + modelName)
		}
	}
	if trained == nil {
		return c.noPrediction(start, "model "+modelName+" not available"), nil
	}
	if sub == nil {
		switch c.cfg.Mode {
		case Pull:
			if data, err := c.fetch(pipeline.SubFeatureKey(in.Subscription)); err == nil {
				if rec, err := featuredata.DecodeRecord(data); err == nil {
					c.mu.Lock()
					c.features[in.Subscription] = rec
					c.mu.Unlock()
					sub = rec
				}
			}
		case PullAsync:
			c.enqueueFetch(pipeline.SubFeatureKey(in.Subscription))
		}
	}
	if sub == nil {
		return c.noPrediction(start, "no feature data for subscription "+in.Subscription), nil
	}

	execStart := time.Now()
	x := trained.Spec.Featurize(in, sub, nil)
	bucket, score, err := trained.Predict(x)
	if err != nil {
		return Prediction{}, fmt.Errorf("core: model %s execution: %w", modelName, err)
	}
	c.obs.modelExecs.Inc()
	c.obs.execHist(modelName).ObserveSince(execStart)
	c.mu.Lock()
	if len(c.results) >= c.cfg.ResultCacheCap {
		c.evictLocked()
	}
	c.results[key] = resultEntry{bucket: bucket, score: score}
	c.mu.Unlock()
	c.obs.predictMiss.ObserveSince(start)
	return Prediction{OK: true, Bucket: bucket, Score: score}, nil
}

// evictLocked drops roughly half of the result cache (map iteration order
// makes this an arbitrary-victim policy; entries are tiny and rebuilt on
// demand). Caller holds mu.
func (c *Client) evictLocked() {
	c.obs.evictions.Inc()
	target := c.cfg.ResultCacheCap / 2
	for k := range c.results {
		if len(c.results) <= target {
			break
		}
		delete(c.results, k)
	}
}

func (c *Client) noPrediction(start time.Time, reason string) Prediction {
	c.obs.noPredictions.Inc()
	c.obs.predictMiss.ObserveSince(start)
	return Prediction{OK: false, Reason: reason}
}

// PredictMany produces predictions for a batch of inputs (Table 2:
// predict_many). Entry i of the result corresponds to ins[i].
func (c *Client) PredictMany(modelName string, ins []*model.ClientInputs) ([]Prediction, error) {
	out := make([]Prediction, len(ins))
	for i, in := range ins {
		p, err := c.PredictSingle(modelName, in)
		if err != nil {
			return nil, fmt.Errorf("core: input %d: %w", i, err)
		}
		out[i] = p
	}
	return out, nil
}

// ForceReloadCache refreshes the memory and disk caches from the store
// (Table 2: force_reload_cache).
func (c *Client) ForceReloadCache() error {
	return c.loadAll()
}

// FlushCache drops the memory caches and removes disk-cache entries
// (Table 2: flush_cache).
func (c *Client) FlushCache() error {
	c.mu.Lock()
	c.models = make(map[string]*model.Trained)
	c.features = make(map[string]*featuredata.SubscriptionFeatures)
	c.results = make(map[uint64]resultEntry)
	c.mu.Unlock()
	if c.cfg.DiskCacheDir != "" {
		entries, err := os.ReadDir(c.cfg.DiskCacheDir)
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".bin") {
				if err := os.Remove(filepath.Join(c.cfg.DiskCacheDir, e.Name())); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Stats returns a race-safe snapshot of the client counters. It is a
// compatibility shim over the registry-backed atomics; each field is
// loaded independently, so the snapshot is weakly consistent under
// concurrent predictions.
func (c *Client) Stats() Stats {
	return Stats{
		ResultHits:    c.obs.resultHits.Value(),
		ResultMisses:  c.obs.resultMisses.Value(),
		ModelExecs:    c.obs.modelExecs.Value(),
		NoPredictions: c.obs.noPredictions.Value(),
		StoreFetches:  c.obs.storeFetches.Value(),
		PushUpdates:   c.obs.pushUpdates.Value(),
		DiskHits:      c.obs.diskHits.Value(),
	}
}

// ResultCacheLen reports the number of cached prediction results (the
// Section 6.1 result cache stays small: ~25 MB for a month of requests).
func (c *Client) ResultCacheLen() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.results)
}
