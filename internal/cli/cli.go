// Package cli carries the flag plumbing shared by the command-line tools:
// every tool consumes a workload trace that either comes from a file
// written by rcgen (CSV or the compact binary format, sniffed by magic
// bytes) or is synthesized on the fly.
package cli

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"resourcecentral/internal/synth"
	"resourcecentral/internal/trace"
)

// TraceSource holds the common trace-selection flags.
type TraceSource struct {
	Path string
	Days int
	VMs  int
	Seed uint64
}

// RegisterFlags installs the shared flags on fs.
func (s *TraceSource) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&s.Path, "trace", "", "trace file produced by rcgen, CSV or binary (empty = synthesize)")
	fs.IntVar(&s.Days, "days", 30, "synthetic trace length in days")
	fs.IntVar(&s.VMs, "vms", 30000, "synthetic trace target VM count")
	fs.Uint64Var(&s.Seed, "seed", 1, "synthetic trace seed")
}

// Load returns the row trace from the file or the generator.
func (s *TraceSource) Load() (*trace.Trace, error) {
	if s.Path == "" {
		return s.synthesize()
	}
	var tr *trace.Trace
	err := s.readFile(func(br *bufio.Reader, binary bool) error {
		var err error
		if binary {
			var c *trace.Columns
			if c, err = trace.ReadColumns(br); err == nil {
				tr = c.ToTrace()
			}
			return err
		}
		tr, err = trace.ReadCSV(br)
		return err
	})
	return tr, err
}

// LoadColumns returns the columnar trace from the file or the generator.
// Binary traces decode straight into columns, and CSV streams row by row
// into chunks — neither path materializes a row slice; only the
// generator builds one (transiently, for arrival-time sorting).
func (s *TraceSource) LoadColumns() (*trace.Columns, error) {
	if s.Path == "" {
		res, err := s.synthesizeColumns()
		if err != nil {
			return nil, err
		}
		return res.Columns, nil
	}
	var c *trace.Columns
	err := s.readFile(func(br *bufio.Reader, binary bool) error {
		var err error
		if binary {
			c, err = trace.ReadColumns(br)
			return err
		}
		c, err = trace.ReadCSVColumns(br)
		return err
	})
	return c, err
}

// readFile opens the trace file, sniffs its format off the first bytes,
// and hands the buffered reader to parse.
func (s *TraceSource) readFile(parse func(br *bufio.Reader, binary bool) error) error {
	f, err := os.Open(s.Path)
	if err != nil {
		return fmt.Errorf("open trace: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	prefix, err := br.Peek(len(trace.ColumnsMagic))
	if err != nil && err != io.EOF {
		return fmt.Errorf("read trace %s: %w", s.Path, err)
	}
	if err := parse(br, string(prefix) == trace.ColumnsMagic); err != nil {
		return fmt.Errorf("parse trace %s: %w", s.Path, err)
	}
	return nil
}

func (s *TraceSource) synthConfig() synth.Config {
	cfg := synth.DefaultConfig()
	cfg.Days = s.Days
	cfg.TargetVMs = s.VMs
	cfg.Seed = s.Seed
	return cfg
}

func (s *TraceSource) synthesize() (*trace.Trace, error) {
	res, err := synth.Generate(s.synthConfig())
	if err != nil {
		return nil, err
	}
	return res.Trace, nil
}

func (s *TraceSource) synthesizeColumns() (*synth.ColumnsResult, error) {
	return synth.GenerateColumns(s.synthConfig())
}
