// Package cli carries the flag plumbing shared by the command-line tools:
// every tool consumes a workload trace that either comes from a file
// written by rcgen (CSV or the compact binary format, sniffed by magic
// bytes) or is synthesized on the fly.
package cli

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"resourcecentral/internal/synth"
	"resourcecentral/internal/trace"
)

// TraceSource holds the common trace-selection flags.
type TraceSource struct {
	Path string
	Days int
	VMs  int
	Seed uint64
}

// RegisterFlags installs the shared flags on fs.
func (s *TraceSource) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&s.Path, "trace", "", "trace file produced by rcgen, CSV or binary (empty = synthesize)")
	fs.IntVar(&s.Days, "days", 30, "synthetic trace length in days")
	fs.IntVar(&s.VMs, "vms", 30000, "synthetic trace target VM count")
	fs.Uint64Var(&s.Seed, "seed", 1, "synthetic trace seed")
}

// Load returns the row trace from the file or the generator.
func (s *TraceSource) Load() (*trace.Trace, error) {
	if s.Path == "" {
		return s.synthesize()
	}
	var tr *trace.Trace
	err := s.readFile(func(br *bufio.Reader, binary bool) error {
		var err error
		if binary {
			var c *trace.Columns
			if c, err = trace.ReadColumns(br); err == nil {
				tr = c.ToTrace()
			}
			return err
		}
		tr, err = trace.ReadCSV(br)
		return err
	})
	return tr, err
}

// LoadColumns returns the columnar trace from the file or the generator.
// Binary traces decode straight into columns; CSV and synthetic traces
// are converted after reading.
func (s *TraceSource) LoadColumns() (*trace.Columns, error) {
	if s.Path == "" {
		tr, err := s.synthesize()
		if err != nil {
			return nil, err
		}
		return trace.FromTrace(tr), nil
	}
	var c *trace.Columns
	err := s.readFile(func(br *bufio.Reader, binary bool) error {
		var err error
		if binary {
			c, err = trace.ReadColumns(br)
			return err
		}
		var tr *trace.Trace
		if tr, err = trace.ReadCSV(br); err == nil {
			c = trace.FromTrace(tr)
		}
		return err
	})
	return c, err
}

// readFile opens the trace file, sniffs its format off the first bytes,
// and hands the buffered reader to parse.
func (s *TraceSource) readFile(parse func(br *bufio.Reader, binary bool) error) error {
	f, err := os.Open(s.Path)
	if err != nil {
		return fmt.Errorf("open trace: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	prefix, err := br.Peek(len(trace.ColumnsMagic))
	if err != nil && err != io.EOF {
		return fmt.Errorf("read trace %s: %w", s.Path, err)
	}
	if err := parse(br, string(prefix) == trace.ColumnsMagic); err != nil {
		return fmt.Errorf("parse trace %s: %w", s.Path, err)
	}
	return nil
}

func (s *TraceSource) synthesize() (*trace.Trace, error) {
	cfg := synth.DefaultConfig()
	cfg.Days = s.Days
	cfg.TargetVMs = s.VMs
	cfg.Seed = s.Seed
	res, err := synth.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return res.Trace, nil
}
