// Package cli carries the flag plumbing shared by the command-line tools:
// every tool consumes a workload trace that either comes from a CSV file
// (written by rcgen) or is synthesized on the fly.
package cli

import (
	"flag"
	"fmt"
	"os"

	"resourcecentral/internal/synth"
	"resourcecentral/internal/trace"
)

// TraceSource holds the common trace-selection flags.
type TraceSource struct {
	Path string
	Days int
	VMs  int
	Seed uint64
}

// RegisterFlags installs the shared flags on fs.
func (s *TraceSource) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&s.Path, "trace", "", "trace CSV produced by rcgen (empty = synthesize)")
	fs.IntVar(&s.Days, "days", 30, "synthetic trace length in days")
	fs.IntVar(&s.VMs, "vms", 30000, "synthetic trace target VM count")
	fs.Uint64Var(&s.Seed, "seed", 1, "synthetic trace seed")
}

// Load returns the trace from the file or the generator.
func (s *TraceSource) Load() (*trace.Trace, error) {
	if s.Path != "" {
		f, err := os.Open(s.Path)
		if err != nil {
			return nil, fmt.Errorf("open trace: %w", err)
		}
		defer f.Close()
		tr, err := trace.ReadCSV(f)
		if err != nil {
			return nil, fmt.Errorf("parse trace %s: %w", s.Path, err)
		}
		return tr, nil
	}
	cfg := synth.DefaultConfig()
	cfg.Days = s.Days
	cfg.TargetVMs = s.VMs
	cfg.Seed = s.Seed
	res, err := synth.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return res.Trace, nil
}
