package cli

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"resourcecentral/internal/trace"
)

func TestRegisterFlagsDefaults(t *testing.T) {
	var src TraceSource
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	src.RegisterFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if src.Days != 30 || src.VMs != 30000 || src.Seed != 1 || src.Path != "" {
		t.Errorf("defaults = %+v", src)
	}
}

func TestLoadSynthesizes(t *testing.T) {
	src := TraceSource{Days: 5, VMs: 500, Seed: 3}
	tr, err := src.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.VMs) == 0 {
		t.Fatal("no VMs synthesized")
	}
	if tr.Horizon != 5*24*60 {
		t.Errorf("horizon = %d", tr.Horizon)
	}
}

func TestLoadFromFile(t *testing.T) {
	src := TraceSource{Days: 4, VMs: 300, Seed: 9}
	orig, err := src.Load()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteCSV(f, orig); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	fileSrc := TraceSource{Path: path}
	got, err := fileSrc.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.VMs) != len(orig.VMs) {
		t.Errorf("loaded %d VMs, want %d", len(got.VMs), len(orig.VMs))
	}
}

// TestLoadSniffsBinary writes the same trace in both formats and checks
// that Load and LoadColumns each accept either file, dispatching on the
// magic bytes rather than the extension.
func TestLoadSniffsBinary(t *testing.T) {
	src := TraceSource{Days: 4, VMs: 300, Seed: 9}
	orig, err := src.Load()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	csvPath := filepath.Join(dir, "trace.anyext")
	binPath := filepath.Join(dir, "trace.csv") // deliberately misleading name
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteCSV(f, orig); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	f, err = os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteColumns(f, trace.FromTrace(orig)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{csvPath, binPath} {
		fileSrc := TraceSource{Path: path}
		tr, err := fileSrc.Load()
		if err != nil {
			t.Fatalf("Load(%s): %v", path, err)
		}
		if len(tr.VMs) != len(orig.VMs) || tr.Horizon != orig.Horizon {
			t.Errorf("Load(%s): %d VMs horizon %d, want %d/%d",
				path, len(tr.VMs), tr.Horizon, len(orig.VMs), orig.Horizon)
		}
		c, err := fileSrc.LoadColumns()
		if err != nil {
			t.Fatalf("LoadColumns(%s): %v", path, err)
		}
		if c.Len() != len(orig.VMs) || c.Horizon != orig.Horizon {
			t.Errorf("LoadColumns(%s): %d VMs horizon %d, want %d/%d",
				path, c.Len(), c.Horizon, len(orig.VMs), orig.Horizon)
		}
	}
}

func TestLoadColumnsSynthesizes(t *testing.T) {
	src := TraceSource{Days: 5, VMs: 500, Seed: 3}
	c, err := src.LoadColumns()
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() == 0 {
		t.Fatal("no VMs synthesized")
	}
	tr, err := src.Load()
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != len(tr.VMs) || c.Horizon != tr.Horizon {
		t.Errorf("columns (%d, %d) != rows (%d, %d)",
			c.Len(), c.Horizon, len(tr.VMs), tr.Horizon)
	}
}

// LoadColumns must produce exactly what FromTrace over Load produces —
// for CSV (now streamed row→chunk without a []VM), for binary, and for
// the generator (GenerateColumns) — proven byte for byte through the
// codec.
func TestLoadColumnsMatchesRowPath(t *testing.T) {
	src := TraceSource{Days: 4, VMs: 300, Seed: 9}
	orig, err := src.Load()
	if err != nil {
		t.Fatal(err)
	}
	want, err := trace.EncodeColumns(trace.FromTrace(orig))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	csvPath := filepath.Join(dir, "trace.csv")
	binPath := filepath.Join(dir, "trace.rctb")
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteCSV(f, orig); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	f, err = os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteColumns(f, trace.FromTrace(orig)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{"", csvPath, binPath} {
		fileSrc := src
		fileSrc.Path = path
		c, err := fileSrc.LoadColumns()
		if err != nil {
			t.Fatalf("LoadColumns(%q): %v", path, err)
		}
		got, err := trace.EncodeColumns(c)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("LoadColumns(%q) differs from FromTrace(Load())", path)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := (&TraceSource{Path: "/nonexistent/trace.csv"}).Load(); err == nil {
		t.Error("expected error for missing file")
	}
	bad := filepath.Join(t.TempDir(), "bad.csv")
	if err := os.WriteFile(bad, []byte("not,a,trace\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := (&TraceSource{Path: bad}).Load(); err == nil {
		t.Error("expected error for malformed trace")
	}
	if _, err := (&TraceSource{Days: 0, VMs: 10}).Load(); err == nil {
		t.Error("expected error for invalid synth config")
	}
}
