package cli

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"resourcecentral/internal/trace"
)

func TestRegisterFlagsDefaults(t *testing.T) {
	var src TraceSource
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	src.RegisterFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if src.Days != 30 || src.VMs != 30000 || src.Seed != 1 || src.Path != "" {
		t.Errorf("defaults = %+v", src)
	}
}

func TestLoadSynthesizes(t *testing.T) {
	src := TraceSource{Days: 5, VMs: 500, Seed: 3}
	tr, err := src.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.VMs) == 0 {
		t.Fatal("no VMs synthesized")
	}
	if tr.Horizon != 5*24*60 {
		t.Errorf("horizon = %d", tr.Horizon)
	}
}

func TestLoadFromFile(t *testing.T) {
	src := TraceSource{Days: 4, VMs: 300, Seed: 9}
	orig, err := src.Load()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteCSV(f, orig); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	fileSrc := TraceSource{Path: path}
	got, err := fileSrc.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.VMs) != len(orig.VMs) {
		t.Errorf("loaded %d VMs, want %d", len(got.VMs), len(orig.VMs))
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := (&TraceSource{Path: "/nonexistent/trace.csv"}).Load(); err == nil {
		t.Error("expected error for missing file")
	}
	bad := filepath.Join(t.TempDir(), "bad.csv")
	if err := os.WriteFile(bad, []byte("not,a,trace\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := (&TraceSource{Path: bad}).Load(); err == nil {
		t.Error("expected error for malformed trace")
	}
	if _, err := (&TraceSource{Days: 0, VMs: 10}).Load(); err == nil {
		t.Error("expected error for invalid synth config")
	}
}
