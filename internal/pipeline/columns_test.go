package pipeline

import (
	"reflect"
	"testing"

	"resourcecentral/internal/metric"
	"resourcecentral/internal/trace"
)

// TestExtractorColumnsEquivalence compares the raw sample streams: the
// columnar extractor must produce exactly the same per-metric samples
// (inputs, labels, order) as the row extractor for both windows.
func TestExtractorColumnsEquivalence(t *testing.T) {
	tr := testTrace(t)
	cols := trace.FromTrace(tr)
	cfg := fastConfig(tr).withDefaults()

	rowExt := newExtractor(tr, cfg)
	colExt := newExtractorColumns(cols, cfg)

	if len(rowExt.deps) != len(colExt.deps) {
		t.Fatalf("deployment count: row %d, columnar %d", len(rowExt.deps), len(colExt.deps))
	}
	for id, rd := range rowExt.deps {
		cd := colExt.deps[id]
		if cd == nil {
			t.Fatalf("deployment %q missing from columnar index", id)
		}
		if rd.firstVM != cd.firstVM || rd.firstTime != cd.firstTime || rd.requested != cd.requested {
			t.Fatalf("deployment %q indexed differently", id)
		}
	}

	for _, win := range []struct {
		name     string
		from, to trace.Minutes
	}{
		{"train", 0, cfg.TrainCutoff},
		{"test", cfg.TrainCutoff, tr.Horizon},
	} {
		rowSamples := rowExt.collect(win.from, win.to)
		colSamples := colExt.collect(win.from, win.to)
		for _, m := range metric.All {
			if !reflect.DeepEqual(rowSamples[m], colSamples[m]) {
				t.Errorf("%s window, metric %s: columnar samples differ from row samples",
					win.name, m)
			}
		}
	}
}

// TestRunColumnsEquivalence is the end-to-end guarantee: RunColumns on
// the columnar trace trains identical models and produces the same
// validation reports as Run on the row trace. Models are compared
// structurally (DeepEqual) rather than by Encode bytes: gob writes the
// one-hot vocabulary maps in randomized iteration order, so even two
// encodes of the *same* model differ byte-wise.
func TestRunColumnsEquivalence(t *testing.T) {
	tr := testTrace(t)
	cols := trace.FromTrace(tr)
	cfg := fastConfig(tr)

	rowRes := runPipeline(t)
	colRes, err := RunColumns(cols, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if colRes.FeatureDataBytes != rowRes.FeatureDataBytes {
		t.Errorf("FeatureDataBytes: row %d, columnar %d",
			rowRes.FeatureDataBytes, colRes.FeatureDataBytes)
	}
	if !reflect.DeepEqual(colRes.Features, rowRes.Features) {
		t.Error("feature data differs between row and columnar runs")
	}
	for _, m := range metric.All {
		rm, cm := rowRes.ByMetric[m], colRes.ByMetric[m]
		if rm == nil || cm == nil {
			t.Fatalf("metric %s missing from a run", m)
		}
		if !reflect.DeepEqual(rm.Model, cm.Model) {
			t.Errorf("metric %s: trained models differ", m)
		}
		if !reflect.DeepEqual(rm.Report, cm.Report) {
			t.Errorf("metric %s: validation reports differ", m)
		}
		if rm.TrainSamples != cm.TrainSamples || rm.TestSamples != cm.TestSamples ||
			rm.NoFeatureData != cm.NoFeatureData {
			t.Errorf("metric %s: sample counts differ", m)
		}
	}
}

func TestRunColumnsValidation(t *testing.T) {
	tr := testTrace(t)
	cols := trace.FromTrace(tr)
	if _, err := RunColumns(cols, Config{TrainCutoff: 0}); err == nil {
		t.Error("expected error for zero cutoff")
	}
	if _, err := RunColumns(cols, Config{TrainCutoff: cols.Horizon}); err == nil {
		t.Error("expected error for cutoff at horizon")
	}
	if _, err := RunColumns(trace.NewColumns(100), Config{TrainCutoff: 50}); err == nil {
		t.Error("expected error for empty trace")
	}
}
