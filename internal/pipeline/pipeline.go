// Package pipeline implements Resource Central's offline workflow
// (Figure 9): data extraction and cleanup from a trace, aggregation,
// feature-data generation, model training, validation against a held-out
// window, and publication of versioned models and feature data to the
// store. The paper trains on two months of telemetry and tests on the
// third; Config.TrainCutoff sets that split point.
package pipeline

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"resourcecentral/internal/featuredata"
	"resourcecentral/internal/fftperiod"
	"resourcecentral/internal/metric"
	"resourcecentral/internal/ml/eval"
	"resourcecentral/internal/ml/feature"
	"resourcecentral/internal/ml/forest"
	"resourcecentral/internal/ml/gbt"
	"resourcecentral/internal/model"
	"resourcecentral/internal/obs"
	"resourcecentral/internal/store"
	"resourcecentral/internal/trace"
)

// Config controls the offline run. TrainCutoff is required; everything
// else has working defaults.
type Config struct {
	// TrainCutoff splits the trace: VMs created before it train the
	// models, VMs created at or after it evaluate them.
	TrainCutoff trace.Minutes
	// Threshold is the confidence cut for P^θ/R^θ (0 = 0.6, as in §6.1).
	Threshold float64
	// ForestTrees / ForestMaxDepth configure the Random Forest metrics.
	ForestTrees    int
	ForestMaxDepth int
	// GBTRounds / GBTMaxDepth / GBTColSample configure the boosted-tree
	// metrics.
	GBTRounds    int
	GBTMaxDepth  int
	GBTColSample float64
	// InteractiveBoost duplicates interactive training samples to push the
	// workload-class model toward high interactive recall — the paper
	// deliberately trades interactive precision (7%) for recall (84%).
	InteractiveBoost int
	// Seed makes the whole run reproducible.
	Seed uint64
	// Detector classifies workload class (nil = default 3-day detector).
	Detector *fftperiod.Detector
	// DisableSubscriptionFeatures trains and evaluates the models with
	// only client inputs (no per-subscription history). This is the
	// ablation for the paper's claim that the subscription's bucket
	// history is the most important attribute.
	DisableSubscriptionFeatures bool
	// Obs receives per-stage durations and row counts (nil disables
	// instrumentation).
	Obs *obs.Registry
}

// stageHist returns the per-stage duration histogram for one stage of
// the extract→publish workflow.
func stageHist(reg *obs.Registry, stage string) obs.Histogram {
	return reg.Histogram("rc_pipeline_stage_seconds",
		"Offline pipeline stage durations in seconds.",
		obs.DefaultDurationBuckets, "stage", stage)
}

func (c Config) withDefaults() Config {
	if c.Threshold == 0 {
		c.Threshold = 0.6
	}
	if c.ForestTrees <= 0 {
		c.ForestTrees = 40
	}
	if c.ForestMaxDepth <= 0 {
		c.ForestMaxDepth = 14
	}
	if c.GBTRounds <= 0 {
		c.GBTRounds = 40
	}
	if c.GBTMaxDepth <= 0 {
		c.GBTMaxDepth = 4
	}
	if c.GBTColSample <= 0 {
		c.GBTColSample = 0.5
	}
	if c.InteractiveBoost <= 0 {
		c.InteractiveBoost = 15
	}
	if c.Detector == nil {
		c.Detector = fftperiod.NewDetector()
	}
	return c
}

// MetricResult is the trained model and validation report for one metric.
// Report is nil when the held-out window produced no evaluable samples
// for the metric (e.g. no VM lived long enough to classify) — the model
// is still trained and publishable.
type MetricResult struct {
	Model        *model.Trained
	Report       *eval.Report
	TrainSamples int
	TestSamples  int
	// NoFeatureData counts test samples whose subscription had no feature
	// data at the cutoff. RC answers those with a no-prediction (push
	// mode, Section 4.2), so they are excluded from the report, exactly as
	// a client would never receive a bucket for them.
	NoFeatureData int
}

// Result is the output of one offline run.
type Result struct {
	ByMetric map[metric.Metric]*MetricResult
	// Features is the per-subscription feature data at the train cutoff.
	Features map[string]*featuredata.SubscriptionFeatures
	// FeatureDataBytes is the encoded size of the full feature dataset
	// (the rightmost column of Table 1).
	FeatureDataBytes int
	// Threshold echoes the confidence threshold used for P^θ/R^θ.
	Threshold float64
}

// Run executes the offline pipeline on the trace.
func Run(tr *trace.Trace, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.TrainCutoff <= 0 || cfg.TrainCutoff >= tr.Horizon {
		return nil, fmt.Errorf("pipeline: TrainCutoff %d outside (0, %d)", cfg.TrainCutoff, tr.Horizon)
	}
	if len(tr.VMs) == 0 {
		return nil, errors.New("pipeline: empty trace")
	}
	return run(cfg, tr.Horizon,
		func() (map[string]*featuredata.SubscriptionFeatures, error) {
			return featuredata.Build(tr, cfg.TrainCutoff, cfg.Detector)
		},
		func() *extractor { return newExtractor(tr, cfg) })
}

// RunColumns executes the offline pipeline directly on a columnar trace,
// without materializing row structs. The result — trained model bytes,
// validation reports, feature data — is identical to Run on the
// equivalent row trace.
func RunColumns(c *trace.Columns, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.TrainCutoff <= 0 || cfg.TrainCutoff >= c.Horizon {
		return nil, fmt.Errorf("pipeline: TrainCutoff %d outside (0, %d)", cfg.TrainCutoff, c.Horizon)
	}
	if c.Len() == 0 {
		return nil, errors.New("pipeline: empty trace")
	}
	return run(cfg, c.Horizon,
		func() (map[string]*featuredata.SubscriptionFeatures, error) {
			return featuredata.BuildColumns(c, cfg.TrainCutoff, cfg.Detector)
		},
		func() *extractor { return newExtractorColumns(c, cfg) })
}

// run is the trace-representation-independent pipeline body. cfg must
// already have defaults applied and a validated TrainCutoff.
func run(cfg Config, horizon trace.Minutes,
	buildFeats func() (map[string]*featuredata.SubscriptionFeatures, error),
	newExt func() *extractor) (*Result, error) {

	reg := cfg.Obs
	runSpan := reg.StartSpan("pipeline.run")
	reg.Counter("rc_pipeline_runs_total", "Offline pipeline runs started.").Inc()

	// Feature-data generation over the training window.
	span := reg.StartSpan("pipeline.featuredata")
	feats, err := buildFeats()
	if err != nil {
		span.End()
		runSpan.End()
		return nil, err
	}
	encoded, err := featuredata.EncodeSet(feats)
	if err != nil {
		span.End()
		runSpan.End()
		return nil, err
	}
	span.End(stageHist(reg, "featuredata"))
	reg.Gauge("rc_pipeline_feature_records",
		"Per-subscription feature records produced by the last run.").Set(float64(len(feats)))
	reg.Gauge("rc_pipeline_feature_bytes",
		"Encoded size of the last run's full feature dataset (Table 1).").Set(float64(len(encoded)))

	// Extraction: training and test samples for every metric.
	span = reg.StartSpan("pipeline.extract")
	ext := newExt()
	trainSamples := ext.collect(0, cfg.TrainCutoff)
	testSamples := ext.collect(cfg.TrainCutoff, horizon)
	span.End(stageHist(reg, "extract"))
	for _, m := range metric.All {
		reg.Counter("rc_pipeline_samples_total",
			"Samples extracted from the trace, by window and metric.",
			"window", "train", "metric", m.String()).Add(uint64(len(trainSamples[m])))
		reg.Counter("rc_pipeline_samples_total", "",
			"window", "test", "metric", m.String()).Add(uint64(len(testSamples[m])))
	}

	// Categorical vocabularies come from the training window only.
	var roles, oses []string
	for _, s := range trainSamples[metric.AvgCPU] {
		roles = append(roles, s.in.Role)
		oses = append(oses, s.in.OS)
	}
	if len(roles) == 0 {
		runSpan.End()
		return nil, errors.New("pipeline: no training samples before cutoff")
	}

	res := &Result{
		ByMetric:         make(map[metric.Metric]*MetricResult, len(metric.All)),
		Features:         feats,
		FeatureDataBytes: len(encoded),
		Threshold:        cfg.Threshold,
	}

	// Train and validate the six metrics concurrently.
	var wg sync.WaitGroup
	var mu sync.Mutex
	errs := make([]error, len(metric.All))
	trainSpan := reg.StartSpan("pipeline.train")
	for i, m := range metric.All {
		wg.Add(1)
		go func(i int, m metric.Metric) {
			defer wg.Done()
			sp := reg.StartSpan("pipeline.train." + m.String())
			mr, err := trainOne(m, cfg, roles, oses, feats,
				trainSamples[m], testSamples[m])
			sp.End(reg.Histogram("rc_pipeline_train_seconds",
				"Per-metric train+validate duration in seconds.",
				obs.DefaultDurationBuckets, "metric", m.String()))
			if err != nil {
				errs[i] = fmt.Errorf("pipeline: %s: %w", m, err)
				return
			}
			mu.Lock()
			res.ByMetric[m] = mr
			mu.Unlock()
		}(i, m)
	}
	wg.Wait()
	trainSpan.End(stageHist(reg, "train"))
	for _, err := range errs {
		if err != nil {
			runSpan.End()
			return nil, err
		}
	}
	runSpan.End(stageHist(reg, "run"))
	return res, nil
}

// trainOne fits and validates the model for one metric.
func trainOne(m metric.Metric, cfg Config, roles, oses []string,
	feats map[string]*featuredata.SubscriptionFeatures,
	train, test []sample) (*MetricResult, error) {

	if len(train) == 0 {
		return nil, errors.New("no training samples")
	}
	spec, err := model.NewSpec(m, roles, oses)
	if err != nil {
		return nil, err
	}
	spec.TrainedAt = cfg.TrainCutoff

	lookup := func(sub string) *featuredata.SubscriptionFeatures {
		if cfg.DisableSubscriptionFeatures {
			return nil
		}
		return feats[sub]
	}

	ds := &feature.Dataset{NumClasses: m.Buckets(), Names: spec.FeatureNames()}
	for _, s := range train {
		repeat := 1
		if m == metric.WorkloadClass && s.label == metric.ClassInteractive {
			repeat = cfg.InteractiveBoost
		}
		x := spec.Featurize(&s.in, lookup(s.in.Subscription), nil)
		for r := 0; r < repeat; r++ {
			ds.Add(x, s.label)
		}
	}

	trained := &model.Trained{Spec: *spec}
	switch m {
	case metric.AvgCPU, metric.P95CPU:
		f, err := forest.Train(ds, forest.Config{
			Trees:    cfg.ForestTrees,
			MaxDepth: cfg.ForestMaxDepth,
			Seed:     cfg.Seed ^ uint64(m),
		})
		if err != nil {
			return nil, err
		}
		trained.Forest = f
	default:
		g, err := gbt.Train(ds, gbt.Config{
			Rounds:    cfg.GBTRounds,
			MaxDepth:  cfg.GBTMaxDepth,
			ColSample: cfg.GBTColSample,
			Subsample: 0.8,
			Seed:      cfg.Seed ^ uint64(m),
		})
		if err != nil {
			return nil, err
		}
		trained.GBT = g
	}
	if err := trained.SanityCheck(); err != nil {
		return nil, err
	}

	// Validation on the held-out window: prediction requests use only the
	// train-window feature data, exactly as the online client would.
	// Subscriptions without feature data receive a no-prediction in push
	// mode, so they are excluded here and counted separately.
	preds, noFeature, err := validate(trained, spec, cfg, lookup, test)
	if err != nil {
		return nil, err
	}
	var report *eval.Report
	if len(preds) > 0 {
		report, err = eval.Evaluate(preds, m.Buckets(), cfg.Threshold)
		if err != nil {
			return nil, err
		}
	}
	return &MetricResult{
		Model:         trained,
		Report:        report,
		TrainSamples:  len(train),
		TestSamples:   len(test),
		NoFeatureData: noFeature,
	}, nil
}

// validateChunkMin is the smallest per-goroutine slice of held-out
// samples worth the spawn overhead.
const validateChunkMin = 512

// validate scores the trained model over the held-out samples, chunked
// across GOMAXPROCS goroutines with per-chunk featurize buffers. Chunks
// are concatenated in order, so the prediction list (and therefore the
// evaluation report) is identical to the serial sweep's.
func validate(trained *model.Trained, spec *model.Spec, cfg Config,
	lookup func(string) *featuredata.SubscriptionFeatures,
	test []sample) ([]eval.Prediction, int, error) {

	workers := runtime.GOMAXPROCS(0)
	if max := (len(test) + validateChunkMin - 1) / validateChunkMin; workers > max {
		workers = max
	}
	if workers < 1 {
		workers = 1
	}
	chunkLen := (len(test) + workers - 1) / workers

	chunkPreds := make([][]eval.Prediction, workers)
	chunkNoFeat := make([]int, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunkLen
		hi := lo + chunkLen
		if hi > len(test) {
			hi = len(test)
		}
		wg.Add(1)
		go func(w int, chunk []sample) {
			defer wg.Done()
			preds := make([]eval.Prediction, 0, len(chunk))
			var buf []float64
			for _, s := range chunk {
				sub := lookup(s.in.Subscription)
				if sub == nil && !cfg.DisableSubscriptionFeatures {
					chunkNoFeat[w]++
					continue
				}
				buf = spec.Featurize(&s.in, sub, buf[:0])
				cls, score, err := trained.Predict(buf)
				if err != nil {
					errs[w] = err
					return
				}
				preds = append(preds, eval.Prediction{Truth: s.label, Pred: cls, Score: score})
			}
			chunkPreds[w] = preds
		}(w, test[lo:hi])
	}
	wg.Wait()

	preds := make([]eval.Prediction, 0, len(test))
	noFeature := 0
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return nil, 0, errs[w]
		}
		preds = append(preds, chunkPreds[w]...)
		noFeature += chunkNoFeat[w]
	}
	return preds, noFeature, nil
}

// --- store publication ---

// ModelKey is the store key of a published model.
func ModelKey(m metric.Metric) string { return "model/" + m.String() }

// FeatureSetKey is the store key of the full feature dataset.
const FeatureSetKey = "featuredata/all"

// SubFeatureKey is the store key of one subscription's feature record
// (used by pull-based caching).
func SubFeatureKey(subscription string) string { return "featuredata/sub/" + subscription }

// Publish writes the trained models and feature data to the store with
// fresh versions, triggering push notifications to subscribed clients.
// An optional registry records the publish stage duration and record
// count (the store's own metrics cover per-record sizes).
func Publish(st *store.Store, res *Result, obsReg ...*obs.Registry) error {
	var reg *obs.Registry
	if len(obsReg) > 0 {
		reg = obsReg[0]
	}
	span := reg.StartSpan("pipeline.publish")
	records := 0
	defer func() {
		span.End(stageHist(reg, "publish"))
		reg.Counter("rc_pipeline_published_records_total",
			"Records written to the store by Publish.").Add(uint64(records))
	}()
	for _, m := range metric.All {
		mr, ok := res.ByMetric[m]
		if !ok {
			return fmt.Errorf("pipeline: no result for metric %s", m)
		}
		if err := mr.Model.SanityCheck(); err != nil {
			return err
		}
		data, err := mr.Model.Encode()
		if err != nil {
			return err
		}
		if _, err := st.Put(ModelKey(m), data); err != nil {
			return err
		}
		records++
	}
	all, err := featuredata.EncodeSet(res.Features)
	if err != nil {
		return err
	}
	if _, err := st.Put(FeatureSetKey, all); err != nil {
		return err
	}
	records++
	// Publish per-subscription records in sorted order so the store's
	// put sequence — and therefore the push-notification stream clients
	// observe — is identical run to run.
	subs := make([]string, 0, len(res.Features))
	for sub := range res.Features {
		subs = append(subs, sub)
	}
	sort.Strings(subs)
	for _, sub := range subs {
		rec, err := featuredata.EncodeRecord(res.Features[sub])
		if err != nil {
			return err
		}
		if _, err := st.Put(SubFeatureKey(sub), rec); err != nil {
			return err
		}
		records++
	}
	return nil
}
