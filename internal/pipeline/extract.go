package pipeline

import (
	"sort"

	"resourcecentral/internal/fftperiod"
	"resourcecentral/internal/metric"
	"resourcecentral/internal/model"
	"resourcecentral/internal/trace"
)

// fft class aliases for readability in the switch below.
const (
	fftClassInteractive      = fftperiod.ClassInteractive
	fftClassDelayInsensitive = fftperiod.ClassDelayInsensitive
)

// sample is one labeled training/test example for a metric.
type sample struct {
	in    model.ClientInputs
	label int
}

// extractor walks a trace once to index deployments, then collects
// per-metric samples for arbitrary windows. It is not safe for concurrent
// use: the FFT plan and scratch buffers below are reused across VMs so
// the per-VM labeling loop allocates nothing in steady state. The trace
// representation is abstracted behind each — the row and columnar
// constructors both run the same indexing and collection code, so their
// samples (and the models trained on them) are identical.
type extractor struct {
	cfg Config

	// each iterates the trace in order; the lent VM is only valid for
	// the callback (the columnar side fills one scratch struct).
	each func(fn func(v *trace.VM))

	// deployments indexed by id.
	deps map[string]*deployment

	plan   fftperiod.Plan
	series []float64
	stats  []float64
}

// deployment aggregates a deployment's waves.
type deployment struct {
	// firstVM is a value copy: the iteration only lends VMs for the
	// duration of a callback. Its strings are interned and safe to keep.
	firstVM   trace.VM
	firstTime trace.Minutes
	// requested is the size of the initial wave (what the scheduler sees).
	requested int
	// arrivals lists (time, vms, cores) per VM for windowed maxima.
	times []trace.Minutes
	cores []int
}

func newExtractor(tr *trace.Trace, cfg Config) *extractor {
	return buildExtractor(cfg, func(fn func(v *trace.VM)) {
		for i := range tr.VMs {
			fn(&tr.VMs[i])
		}
	})
}

// newExtractorColumns indexes the columnar trace without materializing
// rows: the walk fills one reusable scratch VM per sweep.
func newExtractorColumns(c *trace.Columns, cfg Config) *extractor {
	var scratch trace.VM
	return buildExtractor(cfg, func(fn func(v *trace.VM)) {
		_ = c.ForEachChunk(func(base int, ch *trace.Chunk) error {
			for j := 0; j < ch.Len(); j++ {
				ch.VMAt(j, &scratch)
				fn(&scratch)
			}
			return nil
		})
	})
}

func buildExtractor(cfg Config, each func(fn func(v *trace.VM))) *extractor {
	e := &extractor{cfg: cfg, each: each, deps: make(map[string]*deployment)}
	e.each(func(v *trace.VM) {
		d := e.deps[v.Deployment]
		if d == nil {
			d = &deployment{firstVM: *v, firstTime: v.Created}
			e.deps[v.Deployment] = d
		}
		if v.Created < d.firstTime {
			d.firstTime = v.Created
			d.firstVM = *v
		}
		d.times = append(d.times, v.Created)
		d.cores = append(d.cores, v.Cores)
	})
	for _, d := range e.deps {
		for _, t := range d.times {
			if t == d.firstTime {
				d.requested++
			}
		}
	}
	return e
}

// sizeBy returns the deployment's VM and core counts visible by `end`.
func (d *deployment) sizeBy(end trace.Minutes) (vms, cores int) {
	for i, t := range d.times {
		if t < end {
			vms++
			cores += d.cores[i]
		}
	}
	return vms, cores
}

// collect gathers per-metric samples for VMs/deployments created in
// [from, to), labeling them with telemetry visible up to `to`.
func (e *extractor) collect(from, to trace.Minutes) map[metric.Metric][]sample {
	out := make(map[metric.Metric][]sample, len(metric.All))

	e.each(func(v *trace.VM) {
		if v.Created < from || v.Created >= to {
			return
		}
		d := e.deps[v.Deployment]
		in := model.FromVM(v, d.requested)

		// Fused single walk: summary stats and the FFT series from one pass
		// over the utilization model.
		var avg, p95 float64
		avg, p95, e.series, e.stats = trace.SummarizeSeries(v, to, e.series, e.stats)
		out[metric.AvgCPU] = append(out[metric.AvgCPU],
			sample{in: in, label: metric.AvgCPU.Bucket(avg)})
		out[metric.P95CPU] = append(out[metric.P95CPU],
			sample{in: in, label: metric.P95CPU.Bucket(p95)})

		// Lifetime: completed VMs are labeled exactly; VMs still running
		// but already older than a day are provably in the >24h bucket;
		// other censored VMs are skipped.
		if v.Deleted <= to {
			life, _ := v.Lifetime()
			out[metric.Lifetime] = append(out[metric.Lifetime],
				sample{in: in, label: metric.Lifetime.Bucket(float64(life))})
		} else if to-v.Created > 1440 {
			out[metric.Lifetime] = append(out[metric.Lifetime],
				sample{in: in, label: 3})
		}

		// Workload class: only VMs with enough history for the FFT.
		cls, _ := e.cfg.Detector.ClassifyWith(&e.plan, e.series)
		switch cls {
		case fftClassInteractive:
			out[metric.WorkloadClass] = append(out[metric.WorkloadClass],
				sample{in: in, label: metric.ClassInteractive})
		case fftClassDelayInsensitive:
			out[metric.WorkloadClass] = append(out[metric.WorkloadClass],
				sample{in: in, label: metric.ClassDelayInsensitive})
		}
	})

	// Deployment-size metrics: one sample per deployment created in the
	// window, labeled with the maximum size reached by `to`. Deployments
	// are walked in sorted key order: sample order is training-data order
	// for the seeded GBT models, so it must not inherit map iteration
	// randomness.
	depIDs := make([]string, 0, len(e.deps))
	for id := range e.deps {
		depIDs = append(depIDs, id)
	}
	sort.Strings(depIDs)
	for _, id := range depIDs {
		d := e.deps[id]
		if d.firstTime < from || d.firstTime >= to {
			continue
		}
		vms, cores := d.sizeBy(to)
		if vms == 0 {
			continue
		}
		in := model.FromVM(&d.firstVM, d.requested)
		out[metric.DeploySizeVMs] = append(out[metric.DeploySizeVMs],
			sample{in: in, label: metric.DeploySizeVMs.Bucket(float64(vms))})
		out[metric.DeploySizeCores] = append(out[metric.DeploySizeCores],
			sample{in: in, label: metric.DeploySizeCores.Bucket(float64(cores))})
	}
	return out
}
