package pipeline

import (
	"fmt"
	"strings"
	"testing"

	"resourcecentral/internal/featuredata"
	"resourcecentral/internal/metric"
	"resourcecentral/internal/model"
	"resourcecentral/internal/store"
	"resourcecentral/internal/synth"
	"resourcecentral/internal/trace"
)

// pipelineTrace is a mid-sized synthetic trace shared across tests (the
// pipeline is the expensive part; generate once).
var pipelineTrace *trace.Trace

func testTrace(t *testing.T) *trace.Trace {
	t.Helper()
	if pipelineTrace == nil {
		cfg := synth.DefaultConfig()
		cfg.Days = 15
		cfg.TargetVMs = 6000
		cfg.MaxDeploymentVMs = 200
		cfg.Seed = 7
		res, err := synth.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pipelineTrace = res.Trace
	}
	return pipelineTrace
}

// fastConfig keeps unit-test runtime low; benches use the full defaults.
func fastConfig(tr *trace.Trace) Config {
	return Config{
		TrainCutoff:    tr.Horizon * 2 / 3,
		ForestTrees:    12,
		ForestMaxDepth: 12,
		GBTRounds:      15,
		GBTMaxDepth:    3,
		Seed:           1,
	}
}

var cachedRun *Result

func runPipeline(t *testing.T) *Result {
	t.Helper()
	if cachedRun == nil {
		tr := testTrace(t)
		res, err := Run(tr, fastConfig(tr))
		if err != nil {
			t.Fatal(err)
		}
		cachedRun = res
	}
	return cachedRun
}

func TestRunValidation(t *testing.T) {
	tr := testTrace(t)
	if _, err := Run(tr, Config{TrainCutoff: 0}); err == nil {
		t.Error("expected error for zero cutoff")
	}
	if _, err := Run(tr, Config{TrainCutoff: tr.Horizon}); err == nil {
		t.Error("expected error for cutoff at horizon")
	}
	if _, err := Run(&trace.Trace{Horizon: 100}, Config{TrainCutoff: 50}); err == nil {
		t.Error("expected error for empty trace")
	}
}

func TestRunProducesAllMetrics(t *testing.T) {
	res := runPipeline(t)
	for _, m := range metric.All {
		mr := res.ByMetric[m]
		if mr == nil {
			t.Fatalf("no result for %s", m)
		}
		if mr.Model == nil || mr.Report == nil {
			t.Fatalf("%s: incomplete result", m)
		}
		if mr.TrainSamples == 0 || mr.TestSamples == 0 {
			t.Errorf("%s: %d train / %d test samples", m, mr.TrainSamples, mr.TestSamples)
		}
		if err := mr.Model.SanityCheck(); err != nil {
			t.Errorf("%s: %v", m, err)
		}
	}
	if res.FeatureDataBytes == 0 || len(res.Features) == 0 {
		t.Error("feature data missing")
	}
}

// The headline reproduction check: prediction accuracy in the ballpark the
// paper reports (0.79-0.90 across metrics). The floor here is deliberately
// looser (small trace, small models); EXPERIMENTS.md records the
// full-scale numbers.
func TestPredictionAccuracyBallpark(t *testing.T) {
	res := runPipeline(t)
	for _, m := range metric.All {
		rep := res.ByMetric[m].Report
		if rep.Accuracy < 0.65 {
			t.Errorf("%s: accuracy %.3f below floor 0.65", m, rep.Accuracy)
		}
		if rep.Accuracy > 0.999 && m != metric.WorkloadClass {
			t.Errorf("%s: accuracy %.3f suspiciously perfect (leakage?)", m, rep.Accuracy)
		}
	}
}

// Thresholding must improve precision without collapsing recall (the
// paper's P^θ between 0.85 and 0.94, R^θ between 0.73 and 0.98).
func TestThresholdingImprovesPrecision(t *testing.T) {
	res := runPipeline(t)
	for _, m := range metric.All {
		rep := res.ByMetric[m].Report
		if rep.ThresholdedPrecision < rep.Accuracy-0.02 {
			t.Errorf("%s: P^θ %.3f below accuracy %.3f", m, rep.ThresholdedPrecision, rep.Accuracy)
		}
		if rep.ThresholdedRecall < 0.4 {
			t.Errorf("%s: R^θ %.3f collapsed", m, rep.ThresholdedRecall)
		}
	}
}

// The workload-class model must favour interactive recall over precision,
// matching the paper's conservative design (recall 0.84, precision 0.07).
func TestWorkloadClassFavorsInteractiveRecall(t *testing.T) {
	res := runPipeline(t)
	mr := res.ByMetric[metric.WorkloadClass]
	rep := mr.Report
	// Recall is only statistically meaningful with enough interactive
	// samples in the (small) test window.
	evaluated := float64(mr.TestSamples - mr.NoFeatureData)
	interactiveSamples := rep.Share[metric.ClassInteractive] * evaluated
	if interactiveSamples >= 10 && rep.Recall[metric.ClassInteractive] < 0.4 {
		t.Errorf("interactive recall %.3f too low over %.0f samples",
			rep.Recall[metric.ClassInteractive], interactiveSamples)
	}
	// Delay-insensitive dominates the classified population (the paper
	// reports 99%; our interactive VMs are bigger and fewer, so the count
	// share is higher — see EXPERIMENTS.md).
	if rep.Share[metric.ClassDelayInsensitive] < 0.7 {
		t.Errorf("delay-insensitive share %.3f unexpectedly low", rep.Share[metric.ClassDelayInsensitive])
	}
}

func TestModelAndFeatureSizesCompact(t *testing.T) {
	res := runPipeline(t)
	for _, m := range metric.All {
		size := res.ByMetric[m].Model.SizeBytes()
		// Table 1: models are hundreds of KB; ours must also be small
		// enough for client-side caching. Allow up to 32 MB.
		if size <= 0 || size > 32<<20 {
			t.Errorf("%s: model size %d bytes out of range", m, size)
		}
	}
	// Feature data: paper ~376 MB for millions of subscriptions; ours must
	// scale at a few hundred bytes per subscription.
	perSub := float64(res.FeatureDataBytes) / float64(len(res.Features))
	if perSub > 2048 {
		t.Errorf("feature data %.0f bytes/subscription, want <= 2048", perSub)
	}
}

func TestPublishWritesStore(t *testing.T) {
	res := runPipeline(t)
	st := store.New()
	if err := Publish(st, res); err != nil {
		t.Fatal(err)
	}
	for _, m := range metric.All {
		blob, err := st.Get(ModelKey(m))
		if err != nil {
			t.Fatalf("model %s not in store: %v", m, err)
		}
		decoded, err := model.Decode(blob.Data)
		if err != nil {
			t.Fatalf("model %s does not decode: %v", m, err)
		}
		if decoded.Spec.Metric != m {
			t.Errorf("model %s decoded with metric %s", m, decoded.Spec.Metric)
		}
	}
	blob, err := st.Get(FeatureSetKey)
	if err != nil {
		t.Fatal(err)
	}
	set, err := featuredata.DecodeSet(blob.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != len(res.Features) {
		t.Errorf("decoded %d feature records, want %d", len(set), len(res.Features))
	}
	// Per-subscription record exists for an arbitrary subscription.
	for sub := range res.Features {
		if _, err := st.Get(SubFeatureKey(sub)); err != nil {
			t.Errorf("per-sub record missing for %s: %v", sub, err)
		}
		break
	}
}

func TestPublishRejectsIncompleteResult(t *testing.T) {
	res := runPipeline(t)
	broken := &Result{ByMetric: map[metric.Metric]*MetricResult{}, Features: res.Features}
	if err := Publish(store.New(), broken); err == nil {
		t.Error("expected error for missing metrics")
	}
}

func TestExtractorDeploymentRequested(t *testing.T) {
	tr := &trace.Trace{
		Horizon: 10000,
		VMs: []trace.VM{
			{ID: 1, Deployment: "d", Subscription: "s", Created: 100, Deleted: 5000, Cores: 2},
			{ID: 2, Deployment: "d", Subscription: "s", Created: 100, Deleted: 5000, Cores: 2},
			{ID: 3, Deployment: "d", Subscription: "s", Created: 2000, Deleted: 6000, Cores: 4},
		},
	}
	e := newExtractor(tr, Config{}.withDefaults())
	d := e.deps["d"]
	if d.requested != 2 {
		t.Errorf("requested = %d, want 2 (initial wave)", d.requested)
	}
	vms, cores := d.sizeBy(10000)
	if vms != 3 || cores != 8 {
		t.Errorf("sizeBy(horizon) = %d VMs, %d cores", vms, cores)
	}
	vms, cores = d.sizeBy(1000)
	if vms != 2 || cores != 4 {
		t.Errorf("sizeBy(1000) = %d VMs, %d cores", vms, cores)
	}
}

func TestExtractorLifetimeCensoring(t *testing.T) {
	tr := &trace.Trace{
		Horizon: 10000,
		VMs: []trace.VM{
			// Completed: exact label (30 min → bucket 1).
			{ID: 1, Deployment: "a", Subscription: "s", Created: 0, Deleted: 30, Cores: 1},
			// Alive and older than a day: provably bucket 3.
			{ID: 2, Deployment: "b", Subscription: "s", Created: 0, Deleted: trace.NoEnd, Cores: 1},
			// Alive, younger than a day at window end: censored, skipped.
			{ID: 3, Deployment: "c", Subscription: "s", Created: 9500, Deleted: trace.NoEnd, Cores: 1},
		},
	}
	e := newExtractor(tr, Config{}.withDefaults())
	samples := e.collect(0, 10000)
	life := samples[metric.Lifetime]
	if len(life) != 2 {
		t.Fatalf("lifetime samples = %d, want 2", len(life))
	}
	labels := map[int]bool{}
	for _, s := range life {
		labels[s.label] = true
	}
	if !labels[1] || !labels[3] {
		t.Errorf("lifetime labels = %v, want {1,3}", labels)
	}
}

func TestRunGracefulWhenNoTestSamples(t *testing.T) {
	// A trace whose VMs all live in the training window only; they run
	// long enough (5 days) that every metric has training samples, but
	// the held-out day sees no new VMs.
	tr := &trace.Trace{Horizon: 10 * 24 * 60}
	for i := 0; i < 30; i++ {
		created := trace.Minutes(i * 10)
		tr.VMs = append(tr.VMs, trace.VM{
			ID: int64(i), Deployment: fmt.Sprintf("d%d", i), Subscription: "s",
			Created: created, Deleted: created + 5*24*60, Cores: 1,
			Util: trace.UtilModel{Kind: trace.UtilFlat, Base: 30, Seed: uint64(i)},
		})
	}
	res, err := Run(tr, Config{TrainCutoff: 9 * 24 * 60, ForestTrees: 2, GBTRounds: 2})
	if err != nil {
		t.Fatalf("empty test window should degrade gracefully: %v", err)
	}
	for m, mr := range res.ByMetric {
		if mr.Report != nil {
			t.Errorf("%s: unexpected report with no test samples", m)
		}
		if mr.Model == nil {
			t.Errorf("%s: model missing", m)
		}
	}
}

// The paper's most important attribute for every metric is the
// subscription's per-bucket history to date; the trained models must
// agree (their top feature is one of the sub-* history features).
func TestFeatureImportanceMatchesPaper(t *testing.T) {
	res := runPipeline(t)
	for _, m := range []metric.Metric{metric.Lifetime, metric.P95CPU, metric.AvgCPU} {
		top := res.ByMetric[m].Model.TopFeatures(3)
		if len(top) == 0 {
			t.Fatalf("%s: no importances", m)
		}
		found := false
		for _, fi := range top {
			if strings.HasPrefix(fi.Name, "sub-") {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: top features %v lack subscription history", m, top)
		}
	}
}
