package pipeline

import (
	"testing"

	"resourcecentral/internal/metric"
	"resourcecentral/internal/obs"
	"resourcecentral/internal/store"
	"resourcecentral/internal/synth"
)

// TestRunInstrumented checks the offline pipeline reports per-stage
// durations and row counts.
func TestRunInstrumented(t *testing.T) {
	gen, err := synth.Generate(func() synth.Config {
		cfg := synth.DefaultConfig()
		cfg.Days = 9
		cfg.TargetVMs = 1500
		cfg.MaxDeploymentVMs = 150
		cfg.Seed = 7
		return cfg
	}())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	res, err := Run(gen.Trace, Config{
		TrainCutoff:    gen.Trace.Horizon * 2 / 3,
		ForestTrees:    4,
		ForestMaxDepth: 6,
		GBTRounds:      4,
		Seed:           1,
		Obs:            reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, stage := range []string{"featuredata", "extract", "train", "run"} {
		snap, ok := reg.Snapshot("rc_pipeline_stage_seconds", "stage", stage)
		if !ok || snap.Count != 1 {
			t.Errorf("stage %q: count = %d (ok=%v), want 1", stage, snap.Count, ok)
		}
	}
	for _, m := range metric.All {
		snap, ok := reg.Snapshot("rc_pipeline_train_seconds", "metric", m.String())
		if !ok || snap.Count != 1 {
			t.Errorf("train %s: count = %d (ok=%v), want 1", m, snap.Count, ok)
		}
	}

	values := map[string]map[string]float64{} // family -> label sig -> value
	for _, fam := range reg.Gather() {
		values[fam.Name] = map[string]float64{}
		for _, s := range fam.Samples {
			sig := ""
			for _, l := range s.Labels {
				sig += l.Key + "=" + l.Value + ";"
			}
			values[fam.Name][sig] = s.Value
		}
	}
	if got := values["rc_pipeline_runs_total"][""]; got != 1 {
		t.Errorf("runs_total = %g", got)
	}
	if got := values["rc_pipeline_feature_records"][""]; got != float64(len(res.Features)) {
		t.Errorf("feature_records = %g, want %d", got, len(res.Features))
	}
	if got := values["rc_pipeline_feature_bytes"][""]; got != float64(res.FeatureDataBytes) {
		t.Errorf("feature_bytes = %g, want %d", got, res.FeatureDataBytes)
	}
	trainRows := values["rc_pipeline_samples_total"]["window=train;metric="+metric.AvgCPU.String()+";"]
	if trainRows <= 0 {
		t.Errorf("train sample rows = %g, want > 0", trainRows)
	}

	// Publish with a registry records the publish stage and record count.
	st := store.New()
	if err := Publish(st, res, reg); err != nil {
		t.Fatal(err)
	}
	snap, ok := reg.Snapshot("rc_pipeline_stage_seconds", "stage", "publish")
	if !ok || snap.Count != 1 {
		t.Errorf("publish stage count = %d (ok=%v)", snap.Count, ok)
	}
	wantRecords := float64(len(metric.All) + 1 + len(res.Features))
	if got := values["rc_pipeline_published_records_total"]; got != nil {
		t.Errorf("published before Publish: %v", got)
	}
	var published float64
	for _, fam := range reg.Gather() {
		if fam.Name == "rc_pipeline_published_records_total" {
			published = fam.Samples[0].Value
		}
	}
	if published != wantRecords {
		t.Errorf("published records = %g, want %g", published, wantRecords)
	}
}
