package featuredata

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"resourcecentral/internal/fftperiod"
	"resourcecentral/internal/trace"
)

// BuildColumns is BuildColumnsParallel with GOMAXPROCS workers.
func BuildColumns(c *trace.Columns, cutoff trace.Minutes, det *fftperiod.Detector) (map[string]*SubscriptionFeatures, error) {
	return BuildColumnsParallel(c, cutoff, det, 0)
}

// colBuilder wraps the shared per-VM accumulation kernel with a scratch
// VM filled from the columns; the strings it carries are interned
// instances, so the fill allocates nothing.
type colBuilder struct {
	subBuilder
	cols *trace.Columns
	v    trace.VM
}

func (b *colBuilder) build(w *subWork) *SubscriptionFeatures {
	f := &SubscriptionFeatures{Subscription: w.name}
	for _, i := range w.vms {
		b.cols.VMAt(i, &b.v)
		b.subBuilder.addVM(f, &b.v)
	}
	return f
}

// BuildColumnsParallel is BuildParallel over the columnar trace. The
// grouping pass reads the subscription/deployment/schedule columns
// directly; the heavy pass runs the same addVM kernel over per-worker
// scratch VMs with each subscription's VMs in trace order. The output
// is byte-identical (same EncodeSet bytes) to the row build on the
// equivalent trace, for any worker count.
func BuildColumnsParallel(c *trace.Columns, cutoff trace.Minutes, det *fftperiod.Detector, workers int) (map[string]*SubscriptionFeatures, error) {
	if cutoff <= 0 || cutoff > c.Horizon {
		return nil, fmt.Errorf("featuredata: cutoff %d outside (0, %d]", cutoff, c.Horizon)
	}
	if det == nil {
		det = fftperiod.NewDetector()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Pass 1 (serial, cheap): group global VM indices by subscription
	// and aggregate deployments, in trace order, straight off the
	// columns — no row structs.
	deps := make(map[string]*depAgg)
	subIdx := make(map[string]int)
	var subs []*subWork
	tab := c.Strings()
	if err := c.ForEachChunk(func(base int, ch *trace.Chunk) error {
		for j := 0; j < ch.Len(); j++ {
			if trace.Minutes(ch.Created[j]) >= cutoff {
				continue
			}
			sub := tab.StringAt(ch.Sub[j])
			k, ok := subIdx[sub]
			if !ok {
				k = len(subs)
				subIdx[sub] = k
				subs = append(subs, &subWork{name: sub})
			}
			subs[k].vms = append(subs[k].vms, base+j)

			dep := tab.StringAt(ch.Dep[j])
			d := deps[dep]
			if d == nil {
				d = &depAgg{sub: sub}
				deps[dep] = d
			}
			d.vms++
			d.cores += int(ch.Cores[j])
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Pass 2 (parallel): the per-VM heavy work, one subscription at a
	// time per worker, each worker with its own scratch VM and detector
	// state.
	if workers > len(subs) {
		workers = len(subs)
	}
	results := make([]*SubscriptionFeatures, len(subs))
	if workers <= 1 {
		b := &colBuilder{subBuilder: subBuilder{cutoff: cutoff, det: det}, cols: c}
		for j, w := range subs {
			results[j] = b.build(w)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				b := &colBuilder{subBuilder: subBuilder{cutoff: cutoff, det: det}, cols: c}
				for {
					j := int(next.Add(1)) - 1
					if j >= len(subs) {
						return
					}
					results[j] = b.build(subs[j])
				}
			}()
		}
		wg.Wait()
	}
	out := make(map[string]*SubscriptionFeatures, len(subs))
	for j, w := range subs {
		out[w.name] = results[j]
	}
	finalize(out, deps)
	return out, nil
}
