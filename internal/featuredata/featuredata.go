// Package featuredata builds and serializes the per-subscription feature
// data that Resource Central's models consume alongside client inputs
// (Section 4.2). For every metric the record carries the fraction of the
// subscription's VMs observed in each prediction bucket to date — the
// attribute the paper found most important for prediction accuracy — plus
// scalar aggregates (mean size, type mix, production share).
package featuredata

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"resourcecentral/internal/fftperiod"
	"resourcecentral/internal/metric"
	"resourcecentral/internal/trace"
)

// SubscriptionFeatures is the feature-data record of one subscription,
// summarizing its history up to the build cutoff.
type SubscriptionFeatures struct {
	Subscription string

	// VMCount and DeployCount are the history sizes behind the fractions.
	VMCount     int
	DeployCount int

	// Per-metric bucket fractions to date (each sums to ~1 when the
	// corresponding count is non-zero).
	AvgUtilBuckets    [4]float64
	P95UtilBuckets    [4]float64
	LifetimeBuckets   [4]float64
	DeployVMBuckets   [4]float64
	DeployCoreBuckets [4]float64
	// ClassShares over {unknown, delay-insensitive, interactive} of
	// long-running VMs (>= 3 days of history at the cutoff).
	ClassShares [3]float64

	// Scalar aggregates.
	MeanCores       float64
	MeanMemoryGB    float64
	IaaSFrac        float64
	ProdFrac        float64
	MeanLifetimeMin float64
	MeanAvgUtil     float64
	MeanP95Util     float64
}

// BucketFracs returns the record's bucket-fraction vector for m.
func (f *SubscriptionFeatures) BucketFracs(m metric.Metric) []float64 {
	switch m {
	case metric.AvgCPU:
		return f.AvgUtilBuckets[:]
	case metric.P95CPU:
		return f.P95UtilBuckets[:]
	case metric.DeploySizeVMs:
		return f.DeployVMBuckets[:]
	case metric.DeploySizeCores:
		return f.DeployCoreBuckets[:]
	case metric.Lifetime:
		return f.LifetimeBuckets[:]
	case metric.WorkloadClass:
		return f.ClassShares[1:] // delay-insensitive, interactive
	}
	return nil
}

// Build computes feature data from all VMs created before cutoff, using
// only telemetry visible up to the cutoff (no leakage from the future).
// det classifies workload class from utilization series; nil uses the
// default detector. It parallelizes across subscriptions with GOMAXPROCS
// workers; use BuildParallel to pick the worker count explicitly.
func Build(tr *trace.Trace, cutoff trace.Minutes, det *fftperiod.Detector) (map[string]*SubscriptionFeatures, error) {
	return BuildParallel(tr, cutoff, det, 0)
}

// subWork is one subscription's unit of parallel work: the indices of its
// VMs created before the cutoff, in trace order.
type subWork struct {
	name string
	vms  []int
}

// subBuilder is one worker's state: the FFT plan and the per-VM scratch
// buffers live for the worker's whole sweep, so the heavy per-VM loop
// allocates nothing in steady state.
type subBuilder struct {
	tr     *trace.Trace
	cutoff trace.Minutes
	det    *fftperiod.Detector
	plan   fftperiod.Plan
	series []float64
	stats  []float64
}

// build computes one subscription's un-normalized aggregates. VMs are
// visited in trace order — the same accumulation order the serial build
// used — so the floating-point sums are bit-identical no matter how
// subscriptions are spread over workers.
func (b *subBuilder) build(w *subWork) *SubscriptionFeatures {
	f := &SubscriptionFeatures{Subscription: w.name}
	for _, i := range w.vms {
		b.addVM(f, &b.tr.VMs[i])
	}
	return f
}

// addVM folds one VM into the subscription's aggregates. It is the one
// accumulation kernel both the row and columnar builds run, which makes
// their outputs bit-identical when VMs arrive in the same order.
func (b *subBuilder) addVM(f *SubscriptionFeatures, v *trace.VM) {
	f.VMCount++
	f.MeanCores += float64(v.Cores)
	f.MeanMemoryGB += v.MemoryGB
	if v.Type == trace.IaaS {
		f.IaaSFrac++
	}
	if v.Production {
		f.ProdFrac++
	}

	// One fused walk over the VM's telemetry yields the summary stats
	// and the series for the FFT; the utilization model is by far the
	// most expensive thing to evaluate here.
	var avg, p95 float64
	avg, p95, b.series, b.stats = trace.SummarizeSeries(v, b.cutoff, b.series, b.stats)
	f.AvgUtilBuckets[metric.AvgCPU.Bucket(avg)]++
	f.P95UtilBuckets[metric.P95CPU.Bucket(p95)]++
	f.MeanAvgUtil += avg
	f.MeanP95Util += p95

	if v.Deleted <= b.cutoff {
		life, _ := v.Lifetime()
		f.LifetimeBuckets[metric.Lifetime.Bucket(float64(life))]++
		f.MeanLifetimeMin += float64(life)
	}

	cls, _ := b.det.ClassifyWith(&b.plan, b.series)
	switch cls {
	case fftperiod.ClassDelayInsensitive:
		f.ClassShares[1]++
	case fftperiod.ClassInteractive:
		f.ClassShares[2]++
	default:
		f.ClassShares[0]++
	}
}

// BuildParallel is Build with an explicit worker count (≤ 0 means
// GOMAXPROCS). The output is byte-identical (same EncodeSet bytes) for
// any worker count: the cheap grouping and deployment-aggregation passes
// stay serial in trace order, the heavy per-VM pass (utilization summary
// + FFT classification) runs per subscription with each subscription's
// VMs in trace order, and the remaining cross-subscription merges only
// add exactly-representable increments.
func BuildParallel(tr *trace.Trace, cutoff trace.Minutes, det *fftperiod.Detector, workers int) (map[string]*SubscriptionFeatures, error) {
	if cutoff <= 0 || cutoff > tr.Horizon {
		return nil, fmt.Errorf("featuredata: cutoff %d outside (0, %d]", cutoff, tr.Horizon)
	}
	if det == nil {
		det = fftperiod.NewDetector()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Pass 1 (serial, cheap): group VM indices by subscription and
	// aggregate deployments, both in trace order.
	deps := make(map[string]*depAgg)
	subIdx := make(map[string]int)
	var subs []*subWork
	for i := range tr.VMs {
		v := &tr.VMs[i]
		if v.Created >= cutoff {
			continue
		}
		j, ok := subIdx[v.Subscription]
		if !ok {
			j = len(subs)
			subIdx[v.Subscription] = j
			subs = append(subs, &subWork{name: v.Subscription})
		}
		subs[j].vms = append(subs[j].vms, i)

		d := deps[v.Deployment]
		if d == nil {
			d = &depAgg{sub: v.Subscription}
			deps[v.Deployment] = d
		}
		d.vms++
		d.cores += v.Cores
	}

	// Pass 2 (parallel): the per-VM heavy work, one subscription at a
	// time per worker, each worker with its own detector scratch.
	if workers > len(subs) {
		workers = len(subs)
	}
	results := make([]*SubscriptionFeatures, len(subs))
	if workers <= 1 {
		b := &subBuilder{tr: tr, cutoff: cutoff, det: det}
		for j, w := range subs {
			results[j] = b.build(w)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				b := &subBuilder{tr: tr, cutoff: cutoff, det: det}
				for {
					j := int(next.Add(1)) - 1
					if j >= len(subs) {
						return
					}
					results[j] = b.build(subs[j])
				}
			}()
		}
		wg.Wait()
	}
	out := make(map[string]*SubscriptionFeatures, len(subs))
	for j, w := range subs {
		out[w.name] = results[j]
	}
	finalize(out, deps)
	return out, nil
}

// depAgg accumulates one deployment's size during the grouping pass.
type depAgg struct {
	sub   string
	vms   int
	cores int
}

// finalize folds the deployment aggregates in and normalizes counts
// into fractions — the serial tail both builds share. Map iteration
// order is random, but every deployment merge adds small integers —
// exact in float64 — so the result does not depend on the order.
func finalize(out map[string]*SubscriptionFeatures, deps map[string]*depAgg) {
	for _, d := range deps {
		f := out[d.sub]
		f.DeployCount++
		f.DeployVMBuckets[metric.DeploySizeVMs.Bucket(float64(d.vms))]++
		f.DeployCoreBuckets[metric.DeploySizeCores.Bucket(float64(d.cores))]++
	}
	for _, f := range out {
		n := float64(f.VMCount)
		f.MeanCores /= n
		f.MeanMemoryGB /= n
		f.IaaSFrac /= n
		f.ProdFrac /= n
		f.MeanAvgUtil /= n
		f.MeanP95Util /= n
		normalize(f.AvgUtilBuckets[:])
		normalize(f.P95UtilBuckets[:])
		completed := normalize(f.LifetimeBuckets[:])
		if completed > 0 {
			f.MeanLifetimeMin /= completed
		}
		normalize(f.ClassShares[:])
		normalize(f.DeployVMBuckets[:])
		normalize(f.DeployCoreBuckets[:])
	}
}

// normalize divides xs by its sum in place and returns the original sum.
func normalize(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	if sum > 0 {
		for i := range xs {
			xs[i] /= sum
		}
	}
	return sum
}

// --- binary serialization ---
//
// Fixed little-endian layout: the paper's store holds one small record per
// subscription (~850 bytes); this layout is a few hundred bytes.

const recordMagic = uint32(0x52435344) // "RCSD"

// EncodeRecord serializes one record.
func EncodeRecord(f *SubscriptionFeatures) ([]byte, error) {
	if f == nil {
		return nil, errors.New("featuredata: nil record")
	}
	var buf bytes.Buffer
	w := func(v any) {
		binary.Write(&buf, binary.LittleEndian, v) //nolint:errcheck // bytes.Buffer cannot fail
	}
	w(recordMagic)
	name := []byte(f.Subscription)
	if len(name) > math.MaxUint16 {
		return nil, fmt.Errorf("featuredata: subscription name too long (%d bytes)", len(name))
	}
	w(uint16(len(name)))
	buf.Write(name)
	w(int64(f.VMCount))
	w(int64(f.DeployCount))
	for _, arr := range [][]float64{
		f.AvgUtilBuckets[:], f.P95UtilBuckets[:], f.LifetimeBuckets[:],
		f.DeployVMBuckets[:], f.DeployCoreBuckets[:], f.ClassShares[:],
	} {
		for _, x := range arr {
			w(x)
		}
	}
	for _, x := range []float64{
		f.MeanCores, f.MeanMemoryGB, f.IaaSFrac, f.ProdFrac,
		f.MeanLifetimeMin, f.MeanAvgUtil, f.MeanP95Util,
	} {
		w(x)
	}
	return buf.Bytes(), nil
}

// DecodeRecord parses a record produced by EncodeRecord.
func DecodeRecord(data []byte) (*SubscriptionFeatures, error) {
	r := bytes.NewReader(data)
	var magic uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("featuredata: truncated record: %w", err)
	}
	if magic != recordMagic {
		return nil, fmt.Errorf("featuredata: bad magic %#x", magic)
	}
	var nameLen uint16
	if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return nil, fmt.Errorf("featuredata: truncated name: %w", err)
	}
	f := &SubscriptionFeatures{Subscription: string(name)}
	var vmCount, depCount int64
	if err := binary.Read(r, binary.LittleEndian, &vmCount); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &depCount); err != nil {
		return nil, err
	}
	f.VMCount, f.DeployCount = int(vmCount), int(depCount)
	for _, arr := range [][]float64{
		f.AvgUtilBuckets[:], f.P95UtilBuckets[:], f.LifetimeBuckets[:],
		f.DeployVMBuckets[:], f.DeployCoreBuckets[:], f.ClassShares[:],
	} {
		for i := range arr {
			if err := binary.Read(r, binary.LittleEndian, &arr[i]); err != nil {
				return nil, fmt.Errorf("featuredata: truncated buckets: %w", err)
			}
		}
	}
	for _, p := range []*float64{
		&f.MeanCores, &f.MeanMemoryGB, &f.IaaSFrac, &f.ProdFrac,
		&f.MeanLifetimeMin, &f.MeanAvgUtil, &f.MeanP95Util,
	} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("featuredata: truncated scalars: %w", err)
		}
	}
	return f, nil
}

// EncodeSet serializes a whole feature dataset (order-independent; records
// are written sorted by subscription for determinism).
func EncodeSet(set map[string]*SubscriptionFeatures) ([]byte, error) {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, uint32(len(keys))) //nolint:errcheck
	for _, k := range keys {
		rec, err := EncodeRecord(set[k])
		if err != nil {
			return nil, err
		}
		binary.Write(&buf, binary.LittleEndian, uint32(len(rec))) //nolint:errcheck
		buf.Write(rec)
	}
	return buf.Bytes(), nil
}

// DecodeSet parses a dataset produced by EncodeSet.
func DecodeSet(data []byte) (map[string]*SubscriptionFeatures, error) {
	r := bytes.NewReader(data)
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("featuredata: truncated set: %w", err)
	}
	// Never trust length fields from the wire for allocation sizing: a
	// corrupted header must not force a multi-gigabyte allocation.
	hint := int(n)
	if hint > r.Len() {
		hint = r.Len()
	}
	out := make(map[string]*SubscriptionFeatures, hint)
	for i := uint32(0); i < n; i++ {
		var recLen uint32
		if err := binary.Read(r, binary.LittleEndian, &recLen); err != nil {
			return nil, fmt.Errorf("featuredata: truncated set at %d: %w", i, err)
		}
		if int(recLen) > r.Len() {
			return nil, fmt.Errorf("featuredata: record %d length %d exceeds remaining input %d",
				i, recLen, r.Len())
		}
		rec := make([]byte, recLen)
		if _, err := io.ReadFull(r, rec); err != nil {
			return nil, fmt.Errorf("featuredata: truncated record %d: %w", i, err)
		}
		f, err := DecodeRecord(rec)
		if err != nil {
			return nil, fmt.Errorf("featuredata: record %d: %w", i, err)
		}
		out[f.Subscription] = f
	}
	return out, nil
}
