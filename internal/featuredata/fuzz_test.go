package featuredata

import "testing"

// FuzzDecodeRecord: the binary record parser must never panic, and
// accepted payloads must re-encode to an equal record.
func FuzzDecodeRecord(f *testing.F) {
	good, err := EncodeRecord(&SubscriptionFeatures{
		Subscription: "sub-1", VMCount: 3, DeployCount: 1,
		MeanCores: 2, MeanMemoryGB: 3.5,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0x44, 0x53, 0x43, 0x52})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeRecord(data)
		if err != nil {
			return
		}
		out, err := EncodeRecord(rec)
		if err != nil {
			t.Fatalf("accepted record failed to encode: %v", err)
		}
		again, err := DecodeRecord(out)
		if err != nil {
			t.Fatalf("re-encoded record failed to decode: %v", err)
		}
		if again.Subscription != rec.Subscription || again.VMCount != rec.VMCount {
			t.Fatal("round trip changed the record")
		}
	})
}

// FuzzDecodeSet: the set parser must never panic on arbitrary input.
func FuzzDecodeSet(f *testing.F) {
	set := map[string]*SubscriptionFeatures{
		"a": {Subscription: "a", VMCount: 1},
		"b": {Subscription: "b", VMCount: 2},
	}
	good, err := EncodeSet(set)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := DecodeSet(data)
		if err != nil {
			return
		}
		out, err := EncodeSet(decoded)
		if err != nil {
			t.Fatalf("accepted set failed to encode: %v", err)
		}
		again, err := DecodeSet(out)
		if err != nil {
			t.Fatalf("re-encoded set failed to decode: %v", err)
		}
		if len(again) != len(decoded) {
			t.Fatal("round trip changed the set size")
		}
	})
}
