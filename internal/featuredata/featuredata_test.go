package featuredata

import (
	"math"
	"testing"
	"testing/quick"

	"resourcecentral/internal/metric"
	"resourcecentral/internal/synth"
	"resourcecentral/internal/trace"
)

// tinyTrace builds a hand-constructed trace with known statistics.
func tinyTrace() *trace.Trace {
	return &trace.Trace{
		Horizon: 20000,
		VMs: []trace.VM{
			// sub-a: two short idle VMs in one deployment.
			{
				ID: 1, Subscription: "sub-a", Deployment: "d1", Type: trace.IaaS,
				Production: true, Cores: 2, MemoryGB: 3.5, Created: 0, Deleted: 10,
				Util: trace.UtilModel{Kind: trace.UtilIdle, Base: 1, Seed: 1},
			},
			{
				ID: 2, Subscription: "sub-a", Deployment: "d1", Type: trace.IaaS,
				Production: true, Cores: 2, MemoryGB: 3.5, Created: 0, Deleted: 12,
				Util: trace.UtilModel{Kind: trace.UtilIdle, Base: 1, Seed: 2},
			},
			// sub-b: one long flat-high VM.
			{
				ID: 3, Subscription: "sub-b", Deployment: "d2", Type: trace.PaaS,
				Production: false, Cores: 4, MemoryGB: 7, Created: 0, Deleted: 9000,
				Util: trace.UtilModel{Kind: trace.UtilFlat, Base: 80, Seed: 3},
			},
			// Created after the cutoff used in tests; must be excluded.
			{
				ID: 4, Subscription: "sub-a", Deployment: "d3", Type: trace.PaaS,
				Production: false, Cores: 16, MemoryGB: 112, Created: 15000, Deleted: 16000,
				Util: trace.UtilModel{Kind: trace.UtilFlat, Base: 50, Seed: 4},
			},
		},
	}
}

func TestBuildBasic(t *testing.T) {
	set, err := Build(tinyTrace(), 10000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 {
		t.Fatalf("subscriptions = %d, want 2", len(set))
	}
	a := set["sub-a"]
	if a.VMCount != 2 || a.DeployCount != 1 {
		t.Errorf("sub-a counts = %d VMs, %d deploys", a.VMCount, a.DeployCount)
	}
	if a.MeanCores != 2 || a.IaaSFrac != 1 || a.ProdFrac != 1 {
		t.Errorf("sub-a aggregates: %+v", a)
	}
	// Both VMs are idle → avg util bucket 0.
	if a.AvgUtilBuckets[0] != 1 {
		t.Errorf("sub-a avg util buckets = %v", a.AvgUtilBuckets)
	}
	// Lifetimes 10 and 12 minutes → bucket 0.
	if a.LifetimeBuckets[0] != 1 {
		t.Errorf("sub-a lifetime buckets = %v", a.LifetimeBuckets)
	}
	if math.Abs(a.MeanLifetimeMin-11) > 1e-9 {
		t.Errorf("sub-a mean lifetime = %v", a.MeanLifetimeMin)
	}
	// Deployment of 2 VMs → VM bucket 1; 4 cores → core bucket 1.
	if a.DeployVMBuckets[1] != 1 || a.DeployCoreBuckets[1] != 1 {
		t.Errorf("sub-a deploy buckets = %v / %v", a.DeployVMBuckets, a.DeployCoreBuckets)
	}

	b := set["sub-b"]
	// Flat 80% → avg bucket 3.
	if b.AvgUtilBuckets[3] != 1 {
		t.Errorf("sub-b avg util buckets = %v", b.AvgUtilBuckets)
	}
	// 9000 min > 3 days: classified, flat → delay-insensitive share 1.
	if b.ClassShares[1] != 1 {
		t.Errorf("sub-b class shares = %v", b.ClassShares)
	}
	// sub-a VMs are too short to classify → unknown.
	if a.ClassShares[0] != 1 {
		t.Errorf("sub-a class shares = %v", a.ClassShares)
	}
}

func TestBuildExcludesPostCutoffVMs(t *testing.T) {
	set, err := Build(tinyTrace(), 10000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if set["sub-a"].VMCount != 2 {
		t.Errorf("VM created after cutoff leaked into features")
	}
	// With a later cutoff it appears.
	set, err = Build(tinyTrace(), 20000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if set["sub-a"].VMCount != 3 {
		t.Errorf("expected 3 VMs at full cutoff, got %d", set["sub-a"].VMCount)
	}
}

func TestBuildCutoffValidation(t *testing.T) {
	tr := tinyTrace()
	if _, err := Build(tr, 0, nil); err == nil {
		t.Error("expected error for zero cutoff")
	}
	if _, err := Build(tr, tr.Horizon+1, nil); err == nil {
		t.Error("expected error for cutoff beyond horizon")
	}
}

func TestBucketFracsSelectors(t *testing.T) {
	f := &SubscriptionFeatures{
		AvgUtilBuckets:    [4]float64{1, 0, 0, 0},
		P95UtilBuckets:    [4]float64{0, 1, 0, 0},
		LifetimeBuckets:   [4]float64{0, 0, 1, 0},
		DeployVMBuckets:   [4]float64{0, 0, 0, 1},
		DeployCoreBuckets: [4]float64{0.5, 0.5, 0, 0},
		ClassShares:       [3]float64{0.2, 0.7, 0.1},
	}
	if f.BucketFracs(metric.AvgCPU)[0] != 1 {
		t.Error("avg selector")
	}
	if f.BucketFracs(metric.P95CPU)[1] != 1 {
		t.Error("p95 selector")
	}
	if f.BucketFracs(metric.Lifetime)[2] != 1 {
		t.Error("lifetime selector")
	}
	if f.BucketFracs(metric.DeploySizeVMs)[3] != 1 {
		t.Error("deploy vm selector")
	}
	if f.BucketFracs(metric.DeploySizeCores)[0] != 0.5 {
		t.Error("deploy core selector")
	}
	cs := f.BucketFracs(metric.WorkloadClass)
	if len(cs) != 2 || cs[0] != 0.7 || cs[1] != 0.1 {
		t.Errorf("class selector = %v", cs)
	}
}

func TestRecordEncodeDecodeRoundTrip(t *testing.T) {
	set, err := Build(tinyTrace(), 10000, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range set {
		data, err := EncodeRecord(f)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeRecord(data)
		if err != nil {
			t.Fatal(err)
		}
		if *got != *f {
			t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, f)
		}
	}
}

func TestRecordSizeCompact(t *testing.T) {
	// The paper's per-subscription record is ~850 bytes; ours must be in
	// the same small ballpark so client caching conclusions carry over.
	f := &SubscriptionFeatures{Subscription: "sub-with-a-typical-name-000123"}
	data, err := EncodeRecord(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 1024 {
		t.Errorf("record size = %d bytes, want <= 1024", len(data))
	}
}

func TestDecodeRecordErrors(t *testing.T) {
	if _, err := DecodeRecord(nil); err == nil {
		t.Error("expected error on empty input")
	}
	if _, err := DecodeRecord([]byte{1, 2, 3, 4, 5, 6, 7, 8}); err == nil {
		t.Error("expected error on bad magic")
	}
	good, _ := EncodeRecord(&SubscriptionFeatures{Subscription: "x"})
	if _, err := DecodeRecord(good[:len(good)-4]); err == nil {
		t.Error("expected error on truncation")
	}
	if _, err := EncodeRecord(nil); err == nil {
		t.Error("expected error on nil record")
	}
}

func TestSetEncodeDecodeRoundTrip(t *testing.T) {
	set, err := Build(tinyTrace(), 10000, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeSet(set)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSet(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(set) {
		t.Fatalf("set size = %d, want %d", len(got), len(set))
	}
	for k, f := range set {
		if *got[k] != *f {
			t.Errorf("record %s mismatch", k)
		}
	}
}

func TestDecodeSetErrors(t *testing.T) {
	if _, err := DecodeSet(nil); err == nil {
		t.Error("expected error on empty input")
	}
	set := map[string]*SubscriptionFeatures{"a": {Subscription: "a"}}
	data, _ := EncodeSet(set)
	if _, err := DecodeSet(data[:len(data)-2]); err == nil {
		t.Error("expected error on truncation")
	}
}

// On a synthetic trace, bucket fractions must reflect the sharpened
// per-subscription behaviour: most subscriptions have a dominant lifetime
// bucket holding most of the mass.
func TestBuildOnSyntheticTraceShowsConsistency(t *testing.T) {
	cfg := synth.DefaultConfig()
	cfg.Days = 10
	cfg.TargetVMs = 3000
	cfg.MaxDeploymentVMs = 200
	res, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	set, err := Build(res.Trace, res.Trace.Horizon, nil)
	if err != nil {
		t.Fatal(err)
	}
	dominant := 0
	n := 0
	for _, f := range set {
		if f.VMCount < 10 {
			continue
		}
		n++
		for _, frac := range f.LifetimeBuckets {
			if frac >= 0.6 {
				dominant++
				break
			}
		}
	}
	if n == 0 {
		t.Fatal("no subscriptions with enough VMs")
	}
	if share := float64(dominant) / float64(n); share < 0.6 {
		t.Errorf("dominant-bucket share = %.3f over %d subs, want >= 0.6", share, n)
	}
}

// Property: fractions are normalized and in [0,1].
func TestQuickBuildFractionsNormalized(t *testing.T) {
	set, err := Build(tinyTrace(), 10000, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range set {
		for _, arr := range [][]float64{
			f.AvgUtilBuckets[:], f.P95UtilBuckets[:], f.DeployVMBuckets[:],
			f.DeployCoreBuckets[:], f.ClassShares[:],
		} {
			sum := 0.0
			for _, x := range arr {
				if x < 0 || x > 1 {
					t.Fatalf("fraction out of range: %v", arr)
				}
				sum += x
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("fractions not normalized: %v", arr)
			}
		}
	}
}

// Property: encode/decode round-trips arbitrary records.
func TestQuickRecordRoundTrip(t *testing.T) {
	f := func(name string, vms, deps uint16, vals [8]float64) bool {
		rec := &SubscriptionFeatures{
			Subscription: name,
			VMCount:      int(vms),
			DeployCount:  int(deps),
		}
		for i, v := range vals[:4] {
			if math.IsNaN(v) {
				return true
			}
			rec.AvgUtilBuckets[i] = v
		}
		rec.MeanCores = vals[4]
		rec.MeanMemoryGB = vals[5]
		rec.MeanAvgUtil = vals[6]
		rec.MeanP95Util = vals[7]
		for _, v := range vals[4:] {
			if math.IsNaN(v) {
				return true
			}
		}
		data, err := EncodeRecord(rec)
		if err != nil {
			return false
		}
		got, err := DecodeRecord(data)
		if err != nil {
			return false
		}
		return *got == *rec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
