package featuredata

import (
	"bytes"
	"testing"

	"resourcecentral/internal/synth"
)

// TestBuildParallelDeterministic is the guard for the repo's determinism
// guarantee: the encoded feature dataset must be byte-identical for the
// same trace regardless of how many workers Build spreads the
// subscriptions over.
func TestBuildParallelDeterministic(t *testing.T) {
	cfg := synth.DefaultConfig()
	cfg.Days = 8
	cfg.TargetVMs = 1200
	cfg.MaxDeploymentVMs = 200
	cfg.Seed = 7
	res, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	cutoff := tr.Horizon * 2 / 3

	var want []byte
	for _, workers := range []int{1, 2, 3, 8, 64} {
		set, err := BuildParallel(tr, cutoff, nil, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		enc, err := EncodeSet(set)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == nil {
			want = enc
			continue
		}
		if !bytes.Equal(enc, want) {
			t.Fatalf("workers=%d: EncodeSet bytes differ from workers=1", workers)
		}
	}
}
