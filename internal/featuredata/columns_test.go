package featuredata

import (
	"bytes"
	"testing"

	"resourcecentral/internal/synth"
	"resourcecentral/internal/trace"
)

// TestBuildColumnsByteIdentical is the columnar half of the determinism
// guarantee: the encoded feature dataset from the columnar build must be
// byte-identical to the row build on the equivalent trace, for any
// worker count.
func TestBuildColumnsByteIdentical(t *testing.T) {
	cfg := synth.DefaultConfig()
	cfg.Days = 8
	cfg.TargetVMs = 1200
	cfg.MaxDeploymentVMs = 200
	cfg.Seed = 7
	res, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	cols := trace.FromTrace(tr)
	cutoff := tr.Horizon * 2 / 3

	rowSet, err := BuildParallel(tr, cutoff, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := EncodeSet(rowSet)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 3, 8, 64} {
		set, err := BuildColumnsParallel(cols, cutoff, nil, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		enc, err := EncodeSet(set)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(enc, want) {
			t.Fatalf("workers=%d: columnar EncodeSet bytes differ from row build", workers)
		}
	}
}

func TestBuildColumnsCutoffValidation(t *testing.T) {
	cols := trace.NewColumns(100)
	for _, cutoff := range []trace.Minutes{0, -5, 101} {
		if _, err := BuildColumnsParallel(cols, cutoff, nil, 1); err == nil {
			t.Errorf("cutoff %d: expected error", cutoff)
		}
	}
}
