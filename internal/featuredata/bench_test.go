package featuredata

import "testing"

func benchRecord() *SubscriptionFeatures {
	return &SubscriptionFeatures{
		Subscription:   "sub-third-01234",
		VMCount:        412,
		DeployCount:    37,
		AvgUtilBuckets: [4]float64{0.7, 0.2, 0.08, 0.02},
		MeanCores:      2.2, MeanMemoryGB: 3.9, IaaSFrac: 0.5,
	}
}

func BenchmarkEncodeRecord(b *testing.B) {
	rec := benchRecord()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeRecord(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeRecord(b *testing.B) {
	data, err := EncodeRecord(benchRecord())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeRecord(data); err != nil {
			b.Fatal(err)
		}
	}
}
