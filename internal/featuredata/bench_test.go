package featuredata

import (
	"testing"

	"resourcecentral/internal/synth"
	"resourcecentral/internal/trace"
)

// benchTrace generates the synthetic trace the Build benchmark walks:
// big enough that per-VM classification (the FFT) dominates, as it does
// on the paper's month-scale telemetry.
func benchTrace(b *testing.B) (*trace.Trace, trace.Minutes) {
	b.Helper()
	cfg := synth.DefaultConfig()
	cfg.Days = 12
	cfg.TargetVMs = 4000
	cfg.MaxDeploymentVMs = 200
	cfg.Seed = 11
	res, err := synth.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res.Trace, res.Trace.Horizon * 2 / 3
}

// BenchmarkFeatureDataBuild measures the feature-data generation stage of
// the offline pipeline (Figure 9) over a 4k-VM synthetic trace.
// "default" is the Build entry point (GOMAXPROCS workers); the numbered
// variants pin the worker count so the scaling curve is visible on
// multi-core runners.
func BenchmarkFeatureDataBuild(b *testing.B) {
	tr, cutoff := benchTrace(b)
	run := func(workers int) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := BuildParallel(tr, cutoff, nil, workers); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("default", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Build(tr, cutoff, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("workers=1", run(1))
	b.Run("workers=4", run(4))
}

func benchRecord() *SubscriptionFeatures {
	return &SubscriptionFeatures{
		Subscription:   "sub-third-01234",
		VMCount:        412,
		DeployCount:    37,
		AvgUtilBuckets: [4]float64{0.7, 0.2, 0.08, 0.02},
		MeanCores:      2.2, MeanMemoryGB: 3.9, IaaSFrac: 0.5,
	}
}

func BenchmarkEncodeRecord(b *testing.B) {
	rec := benchRecord()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeRecord(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeRecord(b *testing.B) {
	data, err := EncodeRecord(benchRecord())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeRecord(data); err != nil {
			b.Fatal(err)
		}
	}
}
