package sim

import (
	"testing"

	"resourcecentral/internal/cluster"
	"resourcecentral/internal/obs"
)

// TestRunInstrumented checks the simulation reports arrival/placement
// counters, rule-evaluation counts, and a placement rate, all labeled by
// policy (plus the run label when set).
func TestRunInstrumented(t *testing.T) {
	tr := loadTrace(t)
	reg := obs.NewRegistry()
	res, err := Run(tr, Config{
		Cluster:  clusterConfig(cluster.Baseline, 2000),
		Obs:      reg,
		RunLabel: "unit",
	})
	if err != nil {
		t.Fatal(err)
	}

	values := map[string]map[string]float64{}
	for _, fam := range reg.Gather() {
		values[fam.Name] = map[string]float64{}
		for _, s := range fam.Samples {
			sig := ""
			for _, l := range s.Labels {
				sig += l.Key + "=" + l.Value + ";"
			}
			values[fam.Name][sig] = s.Value
		}
	}

	run := "policy=baseline;run=unit;"
	if got := values["rc_sim_arrivals_total"][run]; got != float64(res.Arrivals) {
		t.Errorf("arrivals metric = %g, want %d", got, res.Arrivals)
	}
	if got := values["rc_sim_placements_total"][run]; got != float64(res.Placed) {
		t.Errorf("placements metric = %g, want %d", got, res.Placed)
	}
	if got := values["rc_sim_failures_total"][run]; got != float64(res.Failures) {
		t.Errorf("failures metric = %g, want %d", got, res.Failures)
	}
	// Every Schedule call evaluates the admission rule; spread and
	// packing only run when candidates exist (all of them here, since
	// nothing failed).
	if got := values["rc_sim_rule_evaluations_total"][run+"rule=admission;"]; got != float64(res.Arrivals) {
		t.Errorf("admission evaluations = %g, want %d", got, res.Arrivals)
	}
	if got := values["rc_sim_rule_evaluations_total"][run+"rule=packing;"]; got != float64(res.Placed) {
		t.Errorf("packing evaluations = %g, want %d", got, res.Placed)
	}
	if got := values["rc_sim_placements_per_second"][run]; got <= 0 {
		t.Errorf("placements/sec = %g, want > 0", got)
	}
	if snap, ok := reg.Snapshot("rc_sim_run_seconds", "policy", "baseline", "run", "unit"); !ok || snap.Count != 1 {
		t.Errorf("run_seconds count = %d (ok=%v)", snap.Count, ok)
	}
}

// TestRunUninstrumented ensures a nil registry stays the fast path.
func TestRunUninstrumented(t *testing.T) {
	tr := loadTrace(t)
	if _, err := Run(tr, Config{Cluster: clusterConfig(cluster.Baseline, 2000)}); err != nil {
		t.Fatal(err)
	}
}
