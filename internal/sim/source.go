package sim

import (
	"math"

	"resourcecentral/internal/cluster"
	"resourcecentral/internal/trace"
)

// arrivalSource feeds the run core one VM arrival at a time, in trace
// order, together with the cluster request backing it. Sources own the
// memory: the row source hands out pointers into the trace slice and
// fresh requests, while the columnar source recycles a bounded pool of
// scratch VM+request boxes. Both yield identical values per arrival, so
// the core's float operations — and therefore the Result — are
// byte-identical across representations.
type arrivalSource interface {
	// horizon is the trace window length.
	horizon() trace.Minutes
	// each calls fn once per VM in trace order. v and req stay valid
	// until release(req); requested is the initial-wave size of the VM's
	// deployment (the client input RC models consume).
	each(fn func(v *trace.VM, req *cluster.Request, requested int) error) error
	// release returns an arrival's request (and the VM backing it) to
	// the source once the cluster can no longer reference it: after
	// VMCompleted, on a failed placement, or when the VM never
	// completes inside the window.
	release(req *cluster.Request)
}

// rowSource adapts a row-major trace. It is stateless beyond the
// precomputed wave sizes (shared, read-only), so one instance can feed
// concurrent sweep points.
type rowSource struct {
	tr    *trace.Trace
	waves map[string]int
}

func newRowSource(tr *trace.Trace) *rowSource {
	return &rowSource{tr: tr, waves: countInitialWaves(tr)}
}

func (s *rowSource) horizon() trace.Minutes { return s.tr.Horizon }

func (s *rowSource) each(fn func(v *trace.VM, req *cluster.Request, requested int) error) error {
	for i := range s.tr.VMs {
		v := &s.tr.VMs[i]
		if err := fn(v, &cluster.Request{}, s.waves[v.Deployment]); err != nil {
			return err
		}
	}
	return nil
}

func (s *rowSource) release(*cluster.Request) {}

// colArrival is one pooled arrival: the scratch VM a chunk row is
// expanded into and the request wrapping it.
type colArrival struct {
	vm  trace.VM
	req cluster.Request
}

// colSource feeds arrivals straight from columnar chunks. Boxes return
// to the free list as the cluster finishes with them, so a run's
// allocations are bounded by the peak number of in-flight VMs (at most
// the cluster's capacity) rather than the trace length.
type colSource struct {
	c     *trace.Columns
	waves []int // initial-wave size by deployment string ID
	free  []*colArrival
	byReq map[*cluster.Request]*colArrival
}

func newColSource(c *trace.Columns, waves []int) *colSource {
	return &colSource{c: c, waves: waves, byReq: make(map[*cluster.Request]*colArrival)}
}

func (s *colSource) horizon() trace.Minutes { return s.c.Horizon }

func (s *colSource) each(fn func(v *trace.VM, req *cluster.Request, requested int) error) error {
	return s.c.ForEachChunk(func(_ int, ch *trace.Chunk) error {
		n := ch.Len()
		for j := 0; j < n; j++ {
			a := s.acquire()
			fillArrival(a, ch, j)
			if err := fn(&a.vm, &a.req, s.waves[ch.Dep[j]]); err != nil {
				return err
			}
		}
		return nil
	})
}

// fillArrival expands chunk row j into the box's scratch VM. The
// strings land interned (shared with the table), so the per-arrival
// fill is allocation-free.
//
//rcvet:hotpath
func fillArrival(a *colArrival, ch *trace.Chunk, j int) {
	ch.VMAt(j, &a.vm)
}

func (s *colSource) acquire() *colArrival {
	if n := len(s.free); n > 0 {
		a := s.free[n-1]
		s.free = s.free[:n-1]
		return a
	}
	a := &colArrival{}
	s.byReq[&a.req] = a
	return a
}

func (s *colSource) release(req *cluster.Request) {
	if a, ok := s.byReq[req]; ok {
		s.free = append(s.free, a)
	}
}

// countInitialWaves maps deployment id to its initial request size (the
// number of VMs in its first wave), the client input RC models consume.
func countInitialWaves(tr *trace.Trace) map[string]int {
	first := make(map[string]trace.Minutes)
	for i := range tr.VMs {
		v := &tr.VMs[i]
		if t, ok := first[v.Deployment]; !ok || v.Created < t {
			first[v.Deployment] = v.Created
		}
	}
	count := make(map[string]int, len(first))
	for i := range tr.VMs {
		v := &tr.VMs[i]
		if v.Created == first[v.Deployment] {
			count[v.Deployment]++
		}
	}
	return count
}

// countInitialWavesColumns computes the same wave sizes keyed by the
// columns' deployment string IDs — two chunk walks over the Dep and
// Created columns, no map and no row structs. Deployment names and IDs
// are in bijection within one Columns, so for every VM the looked-up
// wave size equals the row path's.
func countInitialWavesColumns(c *trace.Columns) []int {
	const unseen = trace.Minutes(math.MaxInt64)
	var first []trace.Minutes
	_ = c.ForEachChunk(func(_ int, ch *trace.Chunk) error {
		for j, id := range ch.Dep {
			for int(id) >= len(first) {
				first = append(first, unseen)
			}
			if t := trace.Minutes(ch.Created[j]); t < first[id] {
				first[id] = t
			}
		}
		return nil
	})
	counts := make([]int, len(first))
	_ = c.ForEachChunk(func(_ int, ch *trace.Chunk) error {
		countWavesChunk(counts, first, ch)
		return nil
	})
	return counts
}

// countWavesChunk tallies one chunk's first-wave memberships.
//
//rcvet:hotpath
func countWavesChunk(counts []int, first []trace.Minutes, ch *trace.Chunk) {
	for j, id := range ch.Dep {
		if trace.Minutes(ch.Created[j]) == first[id] {
			counts[id]++
		}
	}
}
