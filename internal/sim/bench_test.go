package sim

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"resourcecentral/internal/cluster"
	"resourcecentral/internal/synth"
	"resourcecentral/internal/trace"
)

var (
	benchMu  sync.Mutex
	benchTrs = map[int]*trace.Trace{}
)

// benchTraceN generates (and caches) a ten-day trace targeting vms VMs.
func benchTraceN(b *testing.B, vms int) *trace.Trace {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	tr, ok := benchTrs[vms]
	if !ok {
		cfg := synth.DefaultConfig()
		cfg.Days = 10
		cfg.TargetVMs = vms
		cfg.MaxDeploymentVMs = 150
		cfg.Seed = 7
		res, err := synth.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		tr = res.Trace
		benchTrs[vms] = tr
	}
	return tr
}

// benchTrace is the shared default: enough VMs to keep a 2000-server
// cluster visibly loaded.
func benchTrace(b *testing.B) *trace.Trace {
	return benchTraceN(b, 12000)
}

// fixedPredictor returns a constant bucket with full confidence; it keeps
// scheduler benchmarks from being dominated by predictor cost.
type fixedPredictor struct{ bucket int }

func (p fixedPredictor) PredictP95Bucket(*trace.VM, int) (int, float64, bool) {
	return p.bucket, 1, true
}

func benchClusterConfig(policy cluster.Policy, servers int) cluster.Config {
	return cluster.Config{
		Servers:        servers,
		CoresPerServer: 16,
		MemGBPerServer: 112,
		Policy:         policy,
		MaxOversub:     1.25,
		MaxUtil:        1.0,
	}
}

// BenchmarkSimRun measures one full trace replay at growing cluster sizes
// (the Section 6.2 Fig. 11 run). The servers subbenchmarks are the
// scaling curve: before the indexed scheduler and streaming aggregation,
// both time and allocations grew with servers × intervals. The vms axis
// (fixed 500-server cluster) is the row-path allocation baseline the
// chunk-fed BenchmarkSimRunColumns/vms=... is compared against: one
// fresh request per VM, so allocs/op grows linearly with trace length.
func BenchmarkSimRun(b *testing.B) {
	for _, servers := range []int{250, 500, 1000, 2000} {
		b.Run(fmt.Sprintf("servers=%d", servers), func(b *testing.B) {
			tr := benchTrace(b)
			cfg := Config{
				Cluster:   benchClusterConfig(cluster.RCSoft, servers),
				Predictor: fixedPredictor{bucket: 2},
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(tr, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, vms := range []int{6000, 12000, 24000} {
		b.Run(fmt.Sprintf("vms=%d", vms), func(b *testing.B) {
			tr := benchTraceN(b, vms)
			cfg := Config{
				Cluster:   benchClusterConfig(cluster.RCSoft, 500),
				Predictor: fixedPredictor{bucket: 2},
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(tr, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchSweepGrid is the six-point policy grid (the Fig. 11 comparison
// plus two sensitivity points) shared by the sweep benchmarks.
func benchSweepGrid() []Config {
	pred := fixedPredictor{bucket: 2}
	return []Config{
		{Cluster: benchClusterConfig(cluster.Baseline, 500)},
		{Cluster: benchClusterConfig(cluster.Naive, 500)},
		{Cluster: benchClusterConfig(cluster.RCHard, 500), Predictor: pred},
		{Cluster: benchClusterConfig(cluster.RCSoft, 500), Predictor: pred},
		{Cluster: benchClusterConfig(cluster.RCSoft, 500), Predictor: pred, UtilScale: 1.25},
		{Cluster: benchClusterConfig(cluster.RCSoft, 500), Predictor: pred, BucketShift: 1},
	}
}

// BenchmarkSimSweep replays the policy grid through RunSweep at several
// worker counts. Points are independent full simulations, so wall time
// should drop with workers — but only while workers fit in GOMAXPROCS.
// Past that the goroutines timeshare the same cores and ns/op stays
// flat (on a 1-CPU host every worker count measures the same serial
// work), so oversubscribed points are skipped rather than reported as
// if they were parallel measurements. TestRunSweepPointsConcurrency
// separately proves the fan-out itself engages regardless of cores.
func BenchmarkSimSweep(b *testing.B) {
	tr := benchTrace(b)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			if max := runtime.GOMAXPROCS(0); workers > max {
				b.Skipf("workers=%d exceeds GOMAXPROCS=%d; timesharing would repeat the serial measurement", workers, max)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := RunSweep(tr, benchSweepGrid(), SweepOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimRunColumns is BenchmarkSimRun fed straight from columnar
// chunks, on two axes. The servers axis mirrors BenchmarkSimRun for a
// direct row-vs-chunk comparison at each cluster size. The vms axis
// (fixed 500-server cluster) is the allocation story: the row path
// allocates one fresh request per VM, so its allocs/op is linear in
// trace length (~1/VM, see BenchmarkSimRun/vms=...); the chunk-fed
// path's allocations are bounded by concurrency — the arrival pool
// sized by peak in-flight VMs, per-server active-slice growth, the
// completion heap — not by trace length, so doubling the trace adds
// only the pool growth that the higher arrival rate itself causes
// (~0.1 allocs/VM marginal here, flat once the cluster saturates).
func BenchmarkSimRunColumns(b *testing.B) {
	cfgFor := func(servers int) Config {
		return Config{
			Cluster:   benchClusterConfig(cluster.RCSoft, servers),
			Predictor: fixedPredictor{bucket: 2},
		}
	}
	for _, servers := range []int{250, 500, 1000, 2000} {
		b.Run(fmt.Sprintf("servers=%d", servers), func(b *testing.B) {
			cols := trace.FromTrace(benchTrace(b))
			cfg := cfgFor(servers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := RunColumns(cols, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, vms := range []int{6000, 12000, 24000} {
		b.Run(fmt.Sprintf("vms=%d", vms), func(b *testing.B) {
			cols := trace.FromTrace(benchTraceN(b, vms))
			cfg := cfgFor(500)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := RunColumns(cols, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimSweepColumns drives the policy grid from shared chunks:
// one wave-size pass per sweep, one arrival pool per point, zero row
// materialization. Worker counts past GOMAXPROCS are skipped for the
// same reason as BenchmarkSimSweep.
func BenchmarkSimSweepColumns(b *testing.B) {
	cols := trace.FromTrace(benchTrace(b))
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			if max := runtime.GOMAXPROCS(0); workers > max {
				b.Skipf("workers=%d exceeds GOMAXPROCS=%d; timesharing would repeat the serial measurement", workers, max)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := RunSweepColumns(cols, benchSweepGrid(), SweepOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
