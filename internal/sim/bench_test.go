package sim

import (
	"fmt"
	"sync"
	"testing"

	"resourcecentral/internal/cluster"
	"resourcecentral/internal/synth"
	"resourcecentral/internal/trace"
)

var (
	benchOnce sync.Once
	benchTr   *trace.Trace
	benchErr  error
)

// benchTrace generates the shared benchmark trace: ten days and enough
// VMs to keep a 2000-server cluster visibly loaded.
func benchTrace(b *testing.B) *trace.Trace {
	b.Helper()
	benchOnce.Do(func() {
		cfg := synth.DefaultConfig()
		cfg.Days = 10
		cfg.TargetVMs = 12000
		cfg.MaxDeploymentVMs = 150
		cfg.Seed = 7
		res, err := synth.Generate(cfg)
		if err != nil {
			benchErr = err
			return
		}
		benchTr = res.Trace
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchTr
}

// fixedPredictor returns a constant bucket with full confidence; it keeps
// scheduler benchmarks from being dominated by predictor cost.
type fixedPredictor struct{ bucket int }

func (p fixedPredictor) PredictP95Bucket(*trace.VM, int) (int, float64, bool) {
	return p.bucket, 1, true
}

func benchClusterConfig(policy cluster.Policy, servers int) cluster.Config {
	return cluster.Config{
		Servers:        servers,
		CoresPerServer: 16,
		MemGBPerServer: 112,
		Policy:         policy,
		MaxOversub:     1.25,
		MaxUtil:        1.0,
	}
}

// BenchmarkSimRun measures one full trace replay at growing cluster sizes
// (the Section 6.2 Fig. 11 run). The subbenchmarks are the scaling curve:
// before the indexed scheduler and streaming aggregation, both time and
// allocations grew with servers × intervals.
func BenchmarkSimRun(b *testing.B) {
	tr := benchTrace(b)
	for _, servers := range []int{250, 500, 1000, 2000} {
		b.Run(fmt.Sprintf("servers=%d", servers), func(b *testing.B) {
			cfg := Config{
				Cluster:   benchClusterConfig(cluster.RCSoft, servers),
				Predictor: fixedPredictor{bucket: 2},
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(tr, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimSweep replays a six-point policy grid (the Fig. 11
// comparison plus two sensitivity points) through RunSweep at several
// worker counts. Points are independent full simulations, so scaling
// should track available cores.
func BenchmarkSimSweep(b *testing.B) {
	tr := benchTrace(b)
	grid := func() []Config {
		pred := fixedPredictor{bucket: 2}
		return []Config{
			{Cluster: benchClusterConfig(cluster.Baseline, 500)},
			{Cluster: benchClusterConfig(cluster.Naive, 500)},
			{Cluster: benchClusterConfig(cluster.RCHard, 500), Predictor: pred},
			{Cluster: benchClusterConfig(cluster.RCSoft, 500), Predictor: pred},
			{Cluster: benchClusterConfig(cluster.RCSoft, 500), Predictor: pred, UtilScale: 1.25},
			{Cluster: benchClusterConfig(cluster.RCSoft, 500), Predictor: pred, BucketShift: 1},
		}
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := RunSweep(tr, grid(), SweepOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
