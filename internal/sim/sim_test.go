package sim

import (
	"sync"
	"testing"

	"resourcecentral/internal/cluster"
	"resourcecentral/internal/metric"
	"resourcecentral/internal/synth"
	"resourcecentral/internal/trace"
)

var (
	simOnce  sync.Once
	simTrace *trace.Trace
	simErr   error
)

// loadTrace generates a trace sized to stress a small test cluster.
func loadTrace(t *testing.T) *trace.Trace {
	t.Helper()
	simOnce.Do(func() {
		cfg := synth.DefaultConfig()
		cfg.Days = 10
		cfg.TargetVMs = 5000
		cfg.MaxDeploymentVMs = 150
		cfg.Seed = 21
		res, err := synth.Generate(cfg)
		if err != nil {
			simErr = err
			return
		}
		simTrace = res.Trace
	})
	if simErr != nil {
		t.Fatal(simErr)
	}
	return simTrace
}

func clusterConfig(policy cluster.Policy, servers int) cluster.Config {
	return cluster.Config{
		Servers:        servers,
		CoresPerServer: 16,
		MemGBPerServer: 112,
		Policy:         policy,
		MaxOversub:     1.25,
		MaxUtil:        1.0,
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(&trace.Trace{Horizon: 100}, Config{}); err == nil {
		t.Error("expected error for empty trace")
	}
	tr := loadTrace(t)
	if _, err := Run(tr, Config{Cluster: cluster.Config{}}); err == nil {
		t.Error("expected error for invalid cluster config")
	}
}

// A huge cluster places everything; accounting must balance.
func TestRunAccounting(t *testing.T) {
	tr := loadTrace(t)
	res, err := Run(tr, Config{Cluster: clusterConfig(cluster.Baseline, 2000)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrivals != len(tr.VMs) {
		t.Errorf("arrivals = %d, want %d", res.Arrivals, len(tr.VMs))
	}
	if res.Placed+res.Failures != res.Arrivals {
		t.Errorf("placed %d + failures %d != arrivals %d", res.Placed, res.Failures, res.Arrivals)
	}
	if res.Failures != 0 {
		t.Errorf("failures on an oversized cluster: %d", res.Failures)
	}
	if res.AllocatedCoreHours <= 0 {
		t.Error("no core-hours accounted")
	}
	if res.ReadingsAbove100 != 0 {
		t.Errorf("baseline produced %d readings above 100%%", res.ReadingsAbove100)
	}
}

// Baseline on a tight cluster fails some placements but never exceeds
// physical capacity in allocation terms.
func TestBaselineTightCluster(t *testing.T) {
	tr := loadTrace(t)
	res, err := Run(tr, Config{Cluster: clusterConfig(cluster.Baseline, 40)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures == 0 {
		t.Log("warning: expected some failures on a tight cluster")
	}
	if res.ReadingsAbove100 != 0 {
		t.Errorf("baseline exceeded 100%%: %d readings (no oversubscription!)", res.ReadingsAbove100)
	}
}

// RC-informed oversubscription accepts at least as many VMs as baseline
// on the same tight cluster, with few >100% readings.
func TestRCInformedBeatsBaseline(t *testing.T) {
	tr := loadTrace(t)
	// Moderate load: in extreme overload the prod/non-prod segregation
	// dominates and no policy helps (see EXPERIMENTS.md).
	servers := 72
	base, err := Run(tr, Config{Cluster: clusterConfig(cluster.Baseline, servers)})
	if err != nil {
		t.Fatal(err)
	}
	oracle := &OraclePredictor{Horizon: tr.Horizon}
	rc, err := Run(tr, Config{
		Cluster:   clusterConfig(cluster.RCSoft, servers),
		Predictor: oracle,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rc.Failures > base.Failures {
		t.Errorf("rc-soft failures %d > baseline %d", rc.Failures, base.Failures)
	}
	if rc.Placed < base.Placed {
		t.Errorf("rc-soft placed %d < baseline %d", rc.Placed, base.Placed)
	}
}

// Naive oversubscription produces more >100% readings than RC-informed.
func TestNaiveWorseThanRC(t *testing.T) {
	tr := loadTrace(t)
	servers := 72
	oracle := &OraclePredictor{Horizon: tr.Horizon}
	rc, err := Run(tr, Config{
		Cluster:   clusterConfig(cluster.RCSoft, servers),
		Predictor: oracle,
	})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Run(tr, Config{Cluster: clusterConfig(cluster.Naive, servers)})
	if err != nil {
		t.Fatal(err)
	}
	if naive.ReadingsAbove100 < rc.ReadingsAbove100 {
		t.Errorf("naive readings>100 (%d) below rc-informed (%d)",
			naive.ReadingsAbove100, rc.ReadingsAbove100)
	}
}

// Wrong predictions must be worse than right predictions on resource
// exhaustion (the RC-soft-wrong vs RC-soft-right comparison).
func TestWrongPredictionsWorseThanRight(t *testing.T) {
	tr := loadTrace(t)
	servers := 72
	right, err := Run(tr, Config{
		Cluster:   clusterConfig(cluster.RCSoft, servers),
		Predictor: &OraclePredictor{Horizon: tr.Horizon},
	})
	if err != nil {
		t.Fatal(err)
	}
	wrong, err := Run(tr, Config{
		Cluster:   clusterConfig(cluster.RCSoft, servers),
		Predictor: &WrongPredictor{Horizon: tr.Horizon},
	})
	if err != nil {
		t.Fatal(err)
	}
	if wrong.ReadingsAbove100 < right.ReadingsAbove100 {
		t.Errorf("wrong predictions produced fewer exhaustion readings (%d) than right (%d)",
			wrong.ReadingsAbove100, right.ReadingsAbove100)
	}
}

// Lower MAX_OVERSUB lowers exhaustion but raises failures.
func TestOversubSensitivityDirection(t *testing.T) {
	tr := loadTrace(t)
	servers := 40
	run := func(maxOversub float64) *Result {
		cfg := clusterConfig(cluster.RCSoft, servers)
		cfg.MaxOversub = maxOversub
		res, err := Run(tr, Config{Cluster: cfg, Predictor: &OraclePredictor{Horizon: tr.Horizon}})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	hi := run(1.25)
	lo := run(1.05)
	if lo.Failures < hi.Failures {
		t.Errorf("lower oversubscription should not reduce failures: %d vs %d", lo.Failures, hi.Failures)
	}
	if lo.ReadingsAbove100 > hi.ReadingsAbove100 {
		t.Errorf("lower oversubscription should not increase exhaustion: %d vs %d",
			lo.ReadingsAbove100, hi.ReadingsAbove100)
	}
}

// BucketShift saturates and biases predictions upward → fewer exhaustion
// readings, potentially more failures under RC-hard.
func TestBucketShift(t *testing.T) {
	tr := loadTrace(t)
	servers := 40
	plain, err := Run(tr, Config{
		Cluster:   clusterConfig(cluster.RCHard, servers),
		Predictor: &OraclePredictor{Horizon: tr.Horizon},
	})
	if err != nil {
		t.Fatal(err)
	}
	shifted, err := Run(tr, Config{
		Cluster:     clusterConfig(cluster.RCHard, servers),
		Predictor:   &OraclePredictor{Horizon: tr.Horizon},
		BucketShift: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if shifted.ReadingsAbove100 > plain.ReadingsAbove100 {
		t.Errorf("upward-biased predictions increased exhaustion: %d vs %d",
			shifted.ReadingsAbove100, plain.ReadingsAbove100)
	}
}

func TestUtilScaleIncreasesReadings(t *testing.T) {
	tr := loadTrace(t)
	servers := 40
	plain, err := Run(tr, Config{
		Cluster:   clusterConfig(cluster.RCSoft, servers),
		Predictor: &OraclePredictor{Horizon: tr.Horizon},
	})
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := Run(tr, Config{
		Cluster:   clusterConfig(cluster.RCSoft, servers),
		Predictor: &OraclePredictor{Horizon: tr.Horizon}, // predictions unaware of the scale
		UtilScale: 1.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if scaled.ReadingsAbove100 < plain.ReadingsAbove100 {
		t.Errorf("+25%% utilization lowered exhaustion readings: %d vs %d",
			scaled.ReadingsAbove100, plain.ReadingsAbove100)
	}
}

func TestPredictorImplementations(t *testing.T) {
	tr := loadTrace(t)
	v := &tr.VMs[0]

	oracle := &OraclePredictor{Horizon: tr.Horizon}
	b, score, ok := oracle.PredictP95Bucket(v, 1)
	if !ok || score != 1 {
		t.Error("oracle must always predict")
	}
	_, p95 := trace.SummaryStats(v, tr.Horizon)
	if b != metric.P95CPU.Bucket(p95) {
		t.Error("oracle predicted wrong bucket")
	}

	wrong := &WrongPredictor{Horizon: tr.Horizon}
	wb, _, ok := wrong.PredictP95Bucket(v, 1)
	if !ok {
		t.Error("wrong predictor must predict")
	}
	if wb == b {
		t.Error("wrong predictor matched the truth")
	}
	if wb < 0 || wb >= metric.P95CPU.Buckets() {
		t.Errorf("wrong bucket %d out of range", wb)
	}
}

func TestCompletionsFreeCapacity(t *testing.T) {
	// Two sequential short VMs that both need the whole cluster: the
	// second must succeed only because the first completed.
	tr := &trace.Trace{
		Horizon: 1000,
		VMs: []trace.VM{
			{ID: 1, Deployment: "a", Subscription: "s", Production: true,
				Cores: 16, MemoryGB: 100, Created: 0, Deleted: 100},
			{ID: 2, Deployment: "b", Subscription: "s", Production: true,
				Cores: 16, MemoryGB: 100, Created: 200, Deleted: 300},
		},
	}
	res, err := Run(tr, Config{Cluster: clusterConfig(cluster.Baseline, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 {
		t.Errorf("failures = %d, want 0 (completion must free capacity)", res.Failures)
	}
}

// Lifetime-aware co-location (the §4.1 extension) should increase the
// number of complete server drains — maintenance opportunities without
// live migration — without hurting placement success.
func TestLifetimeColocationIncreasesDrains(t *testing.T) {
	tr := loadTrace(t)
	servers := 72
	plainCfg := clusterConfig(cluster.Baseline, servers)
	plain, err := Run(tr, Config{Cluster: plainCfg})
	if err != nil {
		t.Fatal(err)
	}
	awareCfg := clusterConfig(cluster.Baseline, servers)
	awareCfg.LifetimeAware = true
	aware, err := Run(tr, Config{
		Cluster:           awareCfg,
		LifetimePredictor: &OracleLifetimePredictor{Horizon: tr.Horizon},
	})
	if err != nil {
		t.Fatal(err)
	}
	if aware.ServerDrains <= plain.ServerDrains {
		t.Errorf("lifetime-aware drains %d not above plain %d",
			aware.ServerDrains, plain.ServerDrains)
	}
	if aware.Failures > plain.Failures*3/2+5 {
		t.Errorf("lifetime-aware failures %d much worse than plain %d",
			aware.Failures, plain.Failures)
	}
}

func TestLifetimePredictorImplementations(t *testing.T) {
	tr := loadTrace(t)
	oracle := &OracleLifetimePredictor{Horizon: tr.Horizon}
	for i := range tr.VMs[:50] {
		v := &tr.VMs[i]
		b, score, ok := oracle.PredictLifetimeBucket(v, 1)
		if !ok || score != 1 {
			t.Fatal("oracle must always predict")
		}
		if life, completed := v.Lifetime(); completed && v.Deleted <= tr.Horizon {
			if want := metric.Lifetime.Bucket(float64(life)); b != want {
				t.Fatalf("vm %d: bucket %d, want %d", v.ID, b, want)
			}
		} else if b != metric.Lifetime.Buckets()-1 {
			t.Fatalf("censored vm %d: bucket %d, want top", v.ID, b)
		}
	}
}

func TestClusterSelectionValidation(t *testing.T) {
	tr := loadTrace(t)
	if _, err := RunClusterSelection(&trace.Trace{}, ClusterSelConfig{ClusterCores: []int{10}}); err == nil {
		t.Error("expected error for empty trace")
	}
	if _, err := RunClusterSelection(tr, ClusterSelConfig{}); err == nil {
		t.Error("expected error for no clusters")
	}
	if _, err := RunClusterSelection(tr, ClusterSelConfig{ClusterCores: []int{0}}); err == nil {
		t.Error("expected error for zero capacity")
	}
}

func TestClusterSelectionAccounting(t *testing.T) {
	tr := loadTrace(t)
	res, err := RunClusterSelection(tr, ClusterSelConfig{ClusterCores: []int{1 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	if res.PlacedVMs+res.StrandedVMs != len(tr.VMs) {
		t.Errorf("placed %d + stranded %d != %d VMs", res.PlacedVMs, res.StrandedVMs, len(tr.VMs))
	}
	// A nearly infinite cluster strands nothing.
	if res.StrandedVMs != 0 || res.Rejected != 0 {
		t.Errorf("oversized cluster rejected %d, stranded %d", res.Rejected, res.StrandedVMs)
	}
}

// Predicted cluster selection must strand fewer growth VMs than selecting
// by the initial request alone (the §4.1 claim).
func TestClusterSelectionPredictionsReduceStranding(t *testing.T) {
	tr := loadTrace(t)
	// A mixed fleet: small clusters are attractive to the naive selector
	// but cannot absorb growth.
	fleet := []int{64, 64, 128, 256, 2048}
	naive, err := RunClusterSelection(tr, ClusterSelConfig{ClusterCores: fleet})
	if err != nil {
		t.Fatal(err)
	}
	oracle := &OracleDeployPredictor{Totals: DeploymentCoreTotals(tr)}
	pred, err := RunClusterSelection(tr, ClusterSelConfig{ClusterCores: fleet, Predictor: oracle})
	if err != nil {
		t.Fatal(err)
	}
	if pred.StrandedVMs >= naive.StrandedVMs {
		t.Errorf("predicted stranding %d not below naive %d", pred.StrandedVMs, naive.StrandedVMs)
	}
	if naive.Deployments != pred.Deployments {
		t.Errorf("deployment counts differ: %d vs %d", naive.Deployments, pred.Deployments)
	}
}

func TestOracleDeployPredictor(t *testing.T) {
	tr := loadTrace(t)
	totals := DeploymentCoreTotals(tr)
	p := &OracleDeployPredictor{Totals: totals}
	v := &tr.VMs[0]
	b, score, ok := p.PredictDeployCoresBucket(v, 1)
	if !ok || score != 1 {
		t.Fatal("oracle must predict")
	}
	if want := metric.DeploySizeCores.Bucket(float64(totals[v.Deployment])); b != want {
		t.Errorf("bucket %d, want %d", b, want)
	}
	if _, _, ok := p.PredictDeployCoresBucket(&trace.VM{Deployment: "missing"}, 1); ok {
		t.Error("unknown deployment must be a no-prediction")
	}
}
