package sim

import (
	"container/heap"
	"errors"

	"resourcecentral/internal/core"
	"resourcecentral/internal/metric"
	"resourcecentral/internal/model"
	"resourcecentral/internal/trace"
)

// DeploySizePredictor supplies maximum-deployment-size (in cores)
// predictions for the smart cluster selection use-case of Section 4.1.
type DeploySizePredictor interface {
	// PredictDeployCoresBucket returns the predicted Table 3 bucket for
	// the deployment's final core count.
	PredictDeployCoresBucket(v *trace.VM, requestedVMs int) (bucket int, score float64, ok bool)
}

// ClientDeployPredictor serves deployment-size predictions from the RC
// client library.
type ClientDeployPredictor struct {
	Client *core.Client
}

// PredictDeployCoresBucket implements DeploySizePredictor.
func (p *ClientDeployPredictor) PredictDeployCoresBucket(v *trace.VM, requestedVMs int) (int, float64, bool) {
	in := model.FromVM(v, requestedVMs)
	pred, err := p.Client.PredictSingle(metric.DeploySizeCores.String(), &in)
	if err != nil || !pred.OK {
		return 0, 0, false
	}
	return pred.Bucket, pred.Score, true
}

// OracleDeployPredictor predicts the deployment's true final core bucket.
type OracleDeployPredictor struct {
	// Totals maps deployment id to its final core count; build it with
	// DeploymentCoreTotals.
	Totals map[string]int
}

// PredictDeployCoresBucket implements DeploySizePredictor.
func (p *OracleDeployPredictor) PredictDeployCoresBucket(v *trace.VM, _ int) (int, float64, bool) {
	total, ok := p.Totals[v.Deployment]
	if !ok {
		return 0, 0, false
	}
	return metric.DeploySizeCores.Bucket(float64(total)), 1, true
}

// DeploymentCoreTotals computes each deployment's final core count.
func DeploymentCoreTotals(tr *trace.Trace) map[string]int {
	out := make(map[string]int)
	for i := range tr.VMs {
		v := &tr.VMs[i]
		out[v.Deployment] += v.Cores
	}
	return out
}

// ClusterSelConfig parameterizes the cluster-selection study.
type ClusterSelConfig struct {
	// ClusterCores lists each cluster's core capacity.
	ClusterCores []int
	// Predictor estimates final deployment sizes; nil means the selector
	// only knows the initial request (the naive strategy).
	Predictor DeploySizePredictor
	// ConfidenceThreshold gates predictions (0 = 0.6).
	ConfidenceThreshold float64
}

// ClusterSelResult summarizes one run.
type ClusterSelResult struct {
	Deployments int
	// Rejected counts deployments no cluster had headroom for at
	// admission time.
	Rejected int
	// StrandedVMs counts growth-wave VMs that arrived after admission but
	// no longer fit their deployment's cluster — the paper's "eventual
	// deployment failures".
	StrandedVMs int
	// PlacedVMs counts VMs that landed in their cluster.
	PlacedVMs int
}

// clusterSelState is one cluster's committed allocation.
type clusterSelState struct {
	capacity int
	used     int
}

// RunClusterSelection replays the trace's deployments against a set of
// clusters: each deployment is admitted to one cluster at its first wave
// (sized by the predicted final core count when a predictor is given, by
// the initial request otherwise) and all its growth must fit in that same
// cluster, as in the paper's deployment model.
func RunClusterSelection(tr *trace.Trace, cfg ClusterSelConfig) (*ClusterSelResult, error) {
	if len(tr.VMs) == 0 {
		return nil, errors.New("sim: empty trace")
	}
	if len(cfg.ClusterCores) == 0 {
		return nil, errors.New("sim: no clusters configured")
	}
	if cfg.ConfidenceThreshold == 0 {
		cfg.ConfidenceThreshold = 0.6
	}

	clusters := make([]*clusterSelState, len(cfg.ClusterCores))
	for i, c := range cfg.ClusterCores {
		if c <= 0 {
			return nil, errors.New("sim: cluster capacity must be positive")
		}
		clusters[i] = &clusterSelState{capacity: c}
	}

	requested := countInitialWaves(tr)
	res := &ClusterSelResult{}
	// deployment id → cluster index (-1 = rejected).
	assignment := make(map[string]int)
	var completions clusterSelHeap

	for i := range tr.VMs {
		v := &tr.VMs[i]
		for len(completions) > 0 && completions[0].at <= v.Created {
			done := heap.Pop(&completions).(clusterSelCompletion)
			clusters[done.cluster].used -= done.cores
		}

		ci, seen := assignment[v.Deployment]
		if !seen {
			res.Deployments++
			ci = selectCluster(clusters, v, requested[v.Deployment], cfg)
			assignment[v.Deployment] = ci
			if ci < 0 {
				res.Rejected++
			}
		}
		if ci < 0 {
			// The whole deployment was rejected at admission.
			res.StrandedVMs++
			continue
		}
		cl := clusters[ci]
		if cl.used+v.Cores > cl.capacity {
			res.StrandedVMs++
			continue
		}
		cl.used += v.Cores
		res.PlacedVMs++
		if v.Deleted < trace.NoEnd {
			heap.Push(&completions, clusterSelCompletion{at: v.Deleted, cluster: ci, cores: v.Cores})
		}
	}
	return res, nil
}

// selectCluster picks the cluster for a new deployment: the smallest
// cluster whose free capacity covers the expected final size (best fit
// keeps the big clusters free for big deployments).
func selectCluster(clusters []*clusterSelState, v *trace.VM, requestedVMs int, cfg ClusterSelConfig) int {
	expected := v.Cores // the first VM's cores: minimum knowledge
	if requestedVMs > 0 {
		expected = requestedVMs * v.Cores
	}
	if cfg.Predictor != nil {
		if b, score, ok := cfg.Predictor.PredictDeployCoresBucket(v, requestedVMs); ok && score >= cfg.ConfidenceThreshold {
			if pred := int(metric.DeploySizeCores.BucketHigh(b)); pred > expected {
				expected = pred
			}
		}
	}
	best := -1
	bestFree := 0
	for i, cl := range clusters {
		free := cl.capacity - cl.used
		if free >= expected && (best < 0 || free < bestFree) {
			best = i
			bestFree = free
		}
	}
	return best
}

type clusterSelCompletion struct {
	at      trace.Minutes
	cluster int
	cores   int
}

type clusterSelHeap []clusterSelCompletion

func (h clusterSelHeap) Len() int           { return len(h) }
func (h clusterSelHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h clusterSelHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *clusterSelHeap) Push(x any)        { *h = append(*h, x.(clusterSelCompletion)) }
func (h *clusterSelHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
