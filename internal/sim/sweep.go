package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"resourcecentral/internal/obs"
	"resourcecentral/internal/trace"
)

// SweepOptions tunes RunSweep.
type SweepOptions struct {
	// Workers caps concurrent simulation runs; <= 0 uses GOMAXPROCS.
	Workers int
	// CollectObs gives every point without a registry its own, and merges
	// all per-point registries into SweepResult.Metrics.
	CollectObs bool
}

// SweepResult is the outcome of one sweep.
type SweepResult struct {
	// Results holds one entry per input config, in input order; entries
	// whose run failed are nil (and the error is reported by RunSweep).
	Results []*Result
	// Metrics is the merged snapshot of every per-point registry (nil
	// unless CollectObs was set or configs carried registries).
	Metrics []obs.Family
}

// RunSweep replays the trace against every config concurrently — the
// Fig. 11 policy grid and the sensitivity studies are embarrassingly
// parallel, since each point simulates a fresh cluster. Points missing a
// RunLabel get "point<i>" so their metrics stay distinguishable after the
// merge. Run errors don't abort the sweep; they are joined into the
// returned error while the remaining points complete. The initial-wave
// sizes are computed once and shared read-only across all points.
func RunSweep(tr *trace.Trace, cfgs []Config, opt SweepOptions) (*SweepResult, error) {
	if len(tr.VMs) == 0 {
		return runSweepPoints(cfgs, opt, func(Config) (*Result, error) {
			return nil, errors.New("sim: empty trace")
		})
	}
	src := newRowSource(tr) // stateless per run; safe to share across points
	return runSweepPoints(cfgs, opt, func(cfg Config) (*Result, error) {
		return runSource(src, cfg)
	})
}

// RunSweepColumns is RunSweep over a columnar trace: every point runs
// RunColumns against the shared chunks, with the wave sizes computed
// once per sweep. Each point gets its own arrival pool (the pool is the
// only per-run state), so points stay independent while the underlying
// columns are shared read-only.
func RunSweepColumns(c *trace.Columns, cfgs []Config, opt SweepOptions) (*SweepResult, error) {
	if c.Len() == 0 {
		return runSweepPoints(cfgs, opt, func(Config) (*Result, error) {
			return nil, errors.New("sim: empty trace")
		})
	}
	waves := countInitialWavesColumns(c)
	return runSweepPoints(cfgs, opt, func(cfg Config) (*Result, error) {
		return runSource(newColSource(c, waves), cfg)
	})
}

// runSweepPoints is the sweep scaffolding shared by the row and
// columnar entry points: label/registry defaulting, the worker pool
// over points, and the deterministic metric merge. runOne executes a
// single point and must be safe for concurrent calls.
func runSweepPoints(cfgs []Config, opt SweepOptions, runOne func(Config) (*Result, error)) (*SweepResult, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}

	points := make([]Config, len(cfgs))
	for i, cfg := range cfgs {
		if cfg.RunLabel == "" {
			cfg.RunLabel = fmt.Sprintf("point%d", i)
		}
		if cfg.Obs == nil && opt.CollectObs {
			cfg.Obs = obs.NewRegistry()
		}
		points[i] = cfg
	}

	res := &SweepResult{Results: make([]*Result, len(points))}
	errs := make([]error, len(points))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(points) {
					return
				}
				r, err := runOne(points[i])
				if err != nil {
					errs[i] = fmt.Errorf("sweep point %q: %w", points[i].RunLabel, err)
					continue
				}
				res.Results[i] = r
			}
		}()
	}
	wg.Wait()

	// Merge per-point registries in point order so the snapshot is
	// deterministic; a registry shared by several points contributes once.
	var snaps [][]obs.Family
	seen := map[*obs.Registry]bool{}
	for _, cfg := range points {
		if cfg.Obs == nil || seen[cfg.Obs] {
			continue
		}
		seen[cfg.Obs] = true
		snaps = append(snaps, cfg.Obs.Gather())
	}
	merged, err := obs.MergeFamilies(snaps...)
	if err != nil {
		errs = append(errs, err)
	}
	res.Metrics = merged
	return res, errors.Join(errs...)
}
