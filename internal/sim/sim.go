// Package sim drives the cluster scheduler with a VM trace and aggregates
// physical CPU utilization, reproducing the methodology of Section 6.2:
// VMs arrive in trace order, the scheduler places or fails them, and for
// every server the co-located VMs' maximum utilizations are summed in each
// 5-minute period — pessimistically assuming each interval maximum lasts
// the whole interval, so aggregated server utilization can exceed 100%.
package sim

import (
	"container/heap"
	"errors"
	"fmt"

	"resourcecentral/internal/cluster"
	"resourcecentral/internal/metric"
	"resourcecentral/internal/obs"
	"resourcecentral/internal/trace"
)

// Predictor supplies P95-utilization bucket predictions to the scheduler.
type Predictor interface {
	// PredictP95Bucket returns the predicted Table 3 utilization bucket
	// for the VM and a confidence score; ok=false is a no-prediction.
	PredictP95Bucket(v *trace.VM, requestedVMs int) (bucket int, score float64, ok bool)
}

// LifetimePredictor supplies lifetime bucket predictions for the
// Section 4.1 lifetime-aware co-location extension.
type LifetimePredictor interface {
	// PredictLifetimeBucket returns the predicted Table 3 lifetime bucket
	// and a confidence score; ok=false is a no-prediction.
	PredictLifetimeBucket(v *trace.VM, requestedVMs int) (bucket int, score float64, ok bool)
}

// Config parameterizes one simulation run.
type Config struct {
	Cluster cluster.Config
	// Predictor provides the RC predictions; nil means no predictions
	// (Baseline and Naive policies, or "assume 100%" behaviour).
	Predictor Predictor
	// ConfidenceThreshold is Algorithm 1's score cut (0 = 0.6); below it
	// the VM is assumed to use its full allocation.
	ConfidenceThreshold float64
	// UtilScale multiplies all real utilization values in the aggregation
	// and the oracle (the "+25%" sensitivity study uses 1.25).
	UtilScale float64
	// BucketShift adds to every predicted bucket, saturating at the top
	// bucket (the sensitivity study adds 1).
	BucketShift int
	// LifetimePredictor enables lifetime-aware co-location when the
	// cluster's LifetimeAware flag is set.
	LifetimePredictor LifetimePredictor
	// Obs receives simulation metrics: arrivals/placements/failures,
	// rule-evaluation counts by rule, predictor calls, and the
	// placements-per-second rate of the run (nil disables them).
	Obs *obs.Registry
}

// Result summarizes one run.
type Result struct {
	Policy   cluster.Policy
	Arrivals int
	Placed   int
	Failures int
	// FailuresProd / FailuresNonProd split the failures by the VM's
	// production tag (diagnosing the segregation cost of Algorithm 1).
	FailuresProd    int
	FailuresNonProd int
	// FailureRate is Failures / Arrivals.
	FailureRate float64
	// ReadingsAbove100 counts (server, 5-minute) aggregated utilization
	// readings exceeding 100% of physical cores.
	ReadingsAbove100 int
	// BusyReadings counts readings on servers hosting at least some load.
	BusyReadings int
	// MaxReadingPct is the highest aggregated server reading observed, as
	// a percentage of server capacity.
	MaxReadingPct float64
	// AvgUtilizationPct is the mean aggregated utilization over all
	// servers and intervals relative to capacity — the "more capacity
	// from the same hardware" measure.
	AvgUtilizationPct float64
	// AllocatedCoreHours is the total core-hours of allocation the
	// cluster hosted (placement-weighted).
	AllocatedCoreHours float64
	// ServerDrains counts transitions of a server to fully empty — each
	// one is a maintenance opportunity that needs no live migration
	// (Section 4.1's lifetime-aware co-location measures this).
	ServerDrains int
}

// Run simulates the trace against a fresh cluster.
func Run(tr *trace.Trace, cfg Config) (*Result, error) {
	if len(tr.VMs) == 0 {
		return nil, errors.New("sim: empty trace")
	}
	if cfg.ConfidenceThreshold == 0 {
		cfg.ConfidenceThreshold = 0.6
	}
	if cfg.UtilScale == 0 {
		cfg.UtilScale = 1
	}
	reg := cfg.Obs
	runSpan := reg.StartSpan("sim.run")
	arrivals := reg.Counter("rc_sim_arrivals_total", "VM arrivals simulated.")
	placements := reg.Counter("rc_sim_placements_total", "VMs placed by the scheduler.")
	failures := reg.Counter("rc_sim_failures_total", "Scheduling failures.")
	predictions := reg.Counter("rc_sim_predictions_total",
		"Predictor calls made by the simulation, by kind.", "kind", "p95cpu")
	lifetimePreds := reg.Counter("rc_sim_predictions_total", "", "kind", "lifetime")
	if reg.Enabled() {
		ruleCounters := map[string]obs.Counter{}
		for _, rule := range []string{"admission", "spread", "lifetime", "packing"} {
			ruleCounters[rule] = reg.Counter("rc_sim_rule_evaluations_total",
				"Scheduler rule-chain evaluations, by rule.", "rule", rule)
		}
		prev := cfg.Cluster.RuleHook
		cfg.Cluster.RuleHook = func(rule string) {
			if c, ok := ruleCounters[rule]; ok {
				c.Inc()
			}
			if prev != nil {
				prev(rule)
			}
		}
	}
	cl, err := cluster.New(cfg.Cluster)
	if err != nil {
		return nil, err
	}

	intervals := int(tr.Horizon / trace.ReadingIntervalMin)
	if intervals <= 0 {
		return nil, fmt.Errorf("sim: horizon %d too short", tr.Horizon)
	}
	series := make([][]float32, len(cl.Servers))
	for i := range series {
		series[i] = make([]float32, intervals)
	}

	deployRequested := countInitialWaves(tr)

	res := &Result{Policy: cfg.Cluster.Policy}
	var completions completionHeap

	for i := range tr.VMs {
		v := &tr.VMs[i]
		// Release every VM that completed before this arrival.
		for len(completions) > 0 && completions[0].at <= v.Created {
			done := heap.Pop(&completions).(completion)
			srv, err := cl.VMCompleted(done.req)
			if err != nil {
				return nil, err
			}
			if srv.Empty() {
				res.ServerDrains++
			}
		}

		res.Arrivals++
		arrivals.Inc()
		req := &cluster.Request{
			VM:         v,
			Production: v.Production,
			Deployment: v.Deployment,
		}
		req.PredUtilCores = c95Cores(v, cfg, deployRequested[v.Deployment])
		if cfg.Predictor != nil {
			predictions.Inc()
		}
		if cfg.LifetimePredictor != nil {
			lifetimePreds.Inc()
			if b, score, ok := cfg.LifetimePredictor.PredictLifetimeBucket(v, deployRequested[v.Deployment]); ok && score >= cfg.ConfidenceThreshold {
				req.PredEndTime = v.Created + trace.Minutes(metric.Lifetime.BucketHigh(b))
			}
		}

		server, ok := cl.Schedule(req)
		if !ok {
			res.Failures++
			failures.Inc()
			if req.Production {
				res.FailuresProd++
			} else {
				res.FailuresNonProd++
			}
			continue
		}
		res.Placed++
		placements.Inc()

		end := v.Deleted
		if end > tr.Horizon {
			end = tr.Horizon
		}
		res.AllocatedCoreHours += float64(end-v.Created) / 60 * float64(v.Cores)
		addUtilization(series[server.ID], v, end, cfg.UtilScale)
		if v.Deleted < trace.NoEnd {
			heap.Push(&completions, completion{at: v.Deleted, req: req})
		}
	}

	capacity := float32(cfg.Cluster.CoresPerServer)
	var sum float64
	for _, s := range series {
		for _, reading := range s {
			pct := float64(reading) / float64(capacity) * 100
			sum += pct
			if reading > 0 {
				res.BusyReadings++
			}
			if pct > 100 {
				res.ReadingsAbove100++
			}
			if pct > res.MaxReadingPct {
				res.MaxReadingPct = pct
			}
		}
	}
	res.AvgUtilizationPct = sum / float64(len(series)*intervals)
	res.FailureRate = float64(res.Failures) / float64(res.Arrivals)
	if d := runSpan.End(reg.Histogram("rc_sim_run_seconds",
		"Wall time of one simulation run.", obs.DefaultDurationBuckets)); d > 0 {
		reg.Gauge("rc_sim_placements_per_second",
			"Placement throughput of the most recent run.").
			Set(float64(res.Placed) / d.Seconds())
	}
	return res, nil
}

// c95Cores computes V.util of Algorithm 1: the predicted 95th-percentile
// utilization in cores, falling back to the full allocation when there is
// no prediction or the confidence is low (lines 10-13).
func c95Cores(v *trace.VM, cfg Config, requested int) float64 {
	full := float64(v.Cores)
	if cfg.Predictor == nil {
		return full
	}
	bucket, score, ok := cfg.Predictor.PredictP95Bucket(v, requested)
	if !ok || score < cfg.ConfidenceThreshold {
		return full
	}
	bucket += cfg.BucketShift
	if max := metric.P95CPU.Buckets() - 1; bucket > max {
		bucket = max
	}
	return metric.P95CPU.BucketHigh(bucket) / 100 * full
}

// addUtilization folds the VM's per-interval maximum utilization (in
// cores) into the server's series, following the paper's pessimistic
// aggregation. Contributions are aligned to the 5-minute grid and only
// cover intervals the VM fully occupies: two VMs that time-share a server
// slot within one window must not double-count, otherwise even
// non-oversubscribed servers would report readings above 100% (the paper's
// Baseline never does).
func addUtilization(series []float32, v *trace.VM, end trace.Minutes, scale float64) {
	cores := float64(v.Cores)
	start := v.Created
	if rem := start % trace.ReadingIntervalMin; rem != 0 {
		start += trace.ReadingIntervalMin - rem
	}
	for t := start; t+trace.ReadingIntervalMin <= end; t += trace.ReadingIntervalMin {
		idx := int(t / trace.ReadingIntervalMin)
		if idx < 0 || idx >= len(series) {
			continue
		}
		_, _, max := v.Util.At(t)
		series[idx] += float32(max / 100 * cores * scale)
	}
}

// countInitialWaves maps deployment id to its initial request size (the
// number of VMs in its first wave), the client input RC models consume.
func countInitialWaves(tr *trace.Trace) map[string]int {
	first := make(map[string]trace.Minutes)
	for i := range tr.VMs {
		v := &tr.VMs[i]
		if t, ok := first[v.Deployment]; !ok || v.Created < t {
			first[v.Deployment] = v.Created
		}
	}
	count := make(map[string]int, len(first))
	for i := range tr.VMs {
		v := &tr.VMs[i]
		if v.Created == first[v.Deployment] {
			count[v.Deployment]++
		}
	}
	return count
}

// completion is a pending VM termination.
type completion struct {
	at  trace.Minutes
	req *cluster.Request
}

type completionHeap []completion

func (h completionHeap) Len() int           { return len(h) }
func (h completionHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h completionHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x any)        { *h = append(*h, x.(completion)) }
func (h *completionHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
