// Package sim drives the cluster scheduler with a VM trace and aggregates
// physical CPU utilization, reproducing the methodology of Section 6.2:
// VMs arrive in trace order, the scheduler places or fails them, and for
// every server the co-located VMs' maximum utilizations are summed in each
// 5-minute period — pessimistically assuming each interval maximum lasts
// the whole interval, so aggregated server utilization can exceed 100%.
package sim

import (
	"errors"
	"fmt"

	"resourcecentral/internal/cluster"
	"resourcecentral/internal/metric"
	"resourcecentral/internal/obs"
	"resourcecentral/internal/trace"
)

// Predictor supplies P95-utilization bucket predictions to the scheduler.
type Predictor interface {
	// PredictP95Bucket returns the predicted Table 3 utilization bucket
	// for the VM and a confidence score; ok=false is a no-prediction.
	PredictP95Bucket(v *trace.VM, requestedVMs int) (bucket int, score float64, ok bool)
}

// LifetimePredictor supplies lifetime bucket predictions for the
// Section 4.1 lifetime-aware co-location extension.
type LifetimePredictor interface {
	// PredictLifetimeBucket returns the predicted Table 3 lifetime bucket
	// and a confidence score; ok=false is a no-prediction.
	PredictLifetimeBucket(v *trace.VM, requestedVMs int) (bucket int, score float64, ok bool)
}

// Config parameterizes one simulation run.
type Config struct {
	Cluster cluster.Config
	// Predictor provides the RC predictions; nil means no predictions
	// (Baseline and Naive policies, or "assume 100%" behaviour).
	Predictor Predictor
	// ConfidenceThreshold is Algorithm 1's score cut (0 = 0.6); below it
	// the VM is assumed to use its full allocation.
	ConfidenceThreshold float64
	// UtilScale multiplies all real utilization values in the aggregation
	// and the oracle (the "+25%" sensitivity study uses 1.25).
	UtilScale float64
	// BucketShift adds to every predicted bucket, saturating at the top
	// bucket (the sensitivity study adds 1).
	BucketShift int
	// LifetimePredictor enables lifetime-aware co-location when the
	// cluster's LifetimeAware flag is set.
	LifetimePredictor LifetimePredictor
	// Obs receives simulation metrics: arrivals/placements/failures,
	// rule-evaluation counts by rule, predictor calls, and the
	// placements-per-second rate of the run (nil disables them). All sim
	// metrics are labeled by policy (and by RunLabel when set) so sweep
	// points sharing a registry don't clobber each other.
	Obs *obs.Registry
	// RunLabel, when non-empty, is added as a "run" label on every sim
	// metric, distinguishing sweep points that share a policy.
	RunLabel string
}

// Result summarizes one run.
type Result struct {
	Policy   cluster.Policy
	Arrivals int
	Placed   int
	Failures int
	// FailuresProd / FailuresNonProd split the failures by the VM's
	// production tag (diagnosing the segregation cost of Algorithm 1).
	FailuresProd    int
	FailuresNonProd int
	// FailureRate is Failures / Arrivals.
	FailureRate float64
	// ReadingsAbove100 counts (server, 5-minute) aggregated utilization
	// readings exceeding 100% of physical cores.
	ReadingsAbove100 int
	// BusyReadings counts readings on servers hosting at least some load.
	BusyReadings int
	// MaxReadingPct is the highest aggregated server reading observed, as
	// a percentage of server capacity.
	MaxReadingPct float64
	// AvgUtilizationPct is the mean aggregated utilization over all
	// servers and intervals relative to capacity — the "more capacity
	// from the same hardware" measure.
	AvgUtilizationPct float64
	// AllocatedCoreHours is the total core-hours of allocation the
	// cluster hosted (placement-weighted).
	AllocatedCoreHours float64
	// ServerDrains counts transitions of a server to fully empty — each
	// one is a maintenance opportunity that needs no live migration
	// (Section 4.1's lifetime-aware co-location measures this).
	ServerDrains int
}

// Run simulates the trace against a fresh cluster.
func Run(tr *trace.Trace, cfg Config) (*Result, error) {
	if len(tr.VMs) == 0 {
		return nil, errors.New("sim: empty trace")
	}
	return runSource(newRowSource(tr), cfg)
}

// RunColumns simulates a columnar trace against a fresh cluster without
// materializing row structs: arrivals are filled from chunk columns
// into a bounded pool of scratch VMs, so allocations stay flat in trace
// length. The result is byte-identical to Run over the equivalent row
// trace — both drive the same core, executing the same float operations
// in the same order (see the columns equivalence tests).
func RunColumns(c *trace.Columns, cfg Config) (*Result, error) {
	if c.Len() == 0 {
		return nil, errors.New("sim: empty trace")
	}
	return runSource(newColSource(c, countInitialWavesColumns(c)), cfg)
}

// runSource is the shared Section 6.2 core: it drains completions,
// schedules each arrival the source yields, and folds placements into
// the streaming per-server accumulators. Everything trace-shaped is
// behind src, so the row and columnar paths differ only in how arrivals
// are produced.
func runSource(src arrivalSource, cfg Config) (*Result, error) {
	if cfg.ConfidenceThreshold == 0 {
		cfg.ConfidenceThreshold = 0.6
	}
	if cfg.UtilScale == 0 {
		cfg.UtilScale = 1
	}
	reg := cfg.Obs
	runLabels := []string{"policy", cfg.Cluster.Policy.String()}
	if cfg.RunLabel != "" {
		runLabels = append(runLabels, "run", cfg.RunLabel)
	}
	withLabels := func(extra ...string) []string {
		return append(append(make([]string, 0, len(runLabels)+len(extra)), runLabels...), extra...)
	}
	runSpan := reg.StartSpan("sim.run")
	arrivals := reg.Counter("rc_sim_arrivals_total", "VM arrivals simulated.", runLabels...)
	placements := reg.Counter("rc_sim_placements_total", "VMs placed by the scheduler.", runLabels...)
	failures := reg.Counter("rc_sim_failures_total", "Scheduling failures.", runLabels...)
	predictions := reg.Counter("rc_sim_predictions_total",
		"Predictor calls made by the simulation, by kind.", withLabels("kind", "p95cpu")...)
	lifetimePreds := reg.Counter("rc_sim_predictions_total", "", withLabels("kind", "lifetime")...)
	if reg.Enabled() {
		ruleCounters := map[string]obs.Counter{}
		for _, rule := range []string{"admission", "spread", "lifetime", "packing"} {
			ruleCounters[rule] = reg.Counter("rc_sim_rule_evaluations_total",
				"Scheduler rule-chain evaluations, by rule.", withLabels("rule", rule)...)
		}
		prev := cfg.Cluster.RuleHook
		cfg.Cluster.RuleHook = func(rule string) {
			if c, ok := ruleCounters[rule]; ok {
				c.Inc()
			}
			if prev != nil {
				prev(rule)
			}
		}
	}
	cl, err := cluster.New(cfg.Cluster)
	if err != nil {
		runSpan.End()
		return nil, err
	}

	horizon := src.horizon()
	intervals := int(horizon / trace.ReadingIntervalMin)
	if intervals <= 0 {
		runSpan.End()
		return nil, fmt.Errorf("sim: horizon %d too short", horizon)
	}
	// One streaming accumulator per server instead of a servers×intervals
	// matrix: each placement advances the target server's finalized-interval
	// frontier before joining its active set, and the final flush drains
	// every accumulator to the horizon.
	accums := make([]serverAccum, len(cl.Servers))
	// The original stats pass divided by a float32 capacity; keep that
	// rounding so per-reading percentages stay bit-identical.
	capacity := float64(float32(cfg.Cluster.CoresPerServer))

	res := &Result{Policy: cfg.Cluster.Policy}
	var completions completionHeap

	err = src.each(func(v *trace.VM, req *cluster.Request, requested int) error {
		// Release every VM that completed before this arrival.
		for len(completions) > 0 && completions[0].at <= v.Created {
			done := completions.pop()
			srv, err := cl.VMCompleted(done.req)
			if err != nil {
				return err
			}
			if srv.Empty() {
				res.ServerDrains++
			}
			src.release(done.req)
		}

		res.Arrivals++
		arrivals.Inc()
		*req = cluster.Request{
			VM:         v,
			Production: v.Production,
			Deployment: v.Deployment,
		}
		req.PredUtilCores = c95Cores(v, cfg, requested)
		if cfg.Predictor != nil {
			predictions.Inc()
		}
		if cfg.LifetimePredictor != nil {
			lifetimePreds.Inc()
			if b, score, ok := cfg.LifetimePredictor.PredictLifetimeBucket(v, requested); ok && score >= cfg.ConfidenceThreshold {
				req.PredEndTime = v.Created + trace.Minutes(metric.Lifetime.BucketHigh(b))
			}
		}

		server, ok := cl.Schedule(req)
		if !ok {
			res.Failures++
			failures.Inc()
			if req.Production {
				res.FailuresProd++
			} else {
				res.FailuresNonProd++
			}
			src.release(req)
			return nil
		}
		res.Placed++
		placements.Inc()

		end := v.Deleted
		if end > horizon {
			end = horizon
		}
		res.AllocatedCoreHours += float64(end-v.Created) / 60 * float64(v.Cores)
		a := &accums[server.ID]
		startIdx := int(alignUp(v.Created) / trace.ReadingIntervalMin)
		if startIdx > intervals {
			startIdx = intervals
		}
		a.advance(startIdx, cfg.UtilScale, capacity)
		a.active = append(a.active, activeVM{util: v.Util, end: end, cores: float64(v.Cores)})
		if v.Deleted < trace.NoEnd {
			completions.push(completion{at: v.Deleted, req: req})
		} else {
			// The VM never completes inside the window; the cluster keeps
			// only its ID-keyed bookkeeping, so the request can recycle.
			src.release(req)
		}
		return nil
	})
	if err != nil {
		runSpan.End()
		return nil, err
	}

	// Flush every accumulator to the horizon, then combine per-server
	// statistics in server-ID order. The counters and maximum are
	// order-independent; the utilization mean sums per-server subtotals
	// instead of one global chain over every matrix cell — the only float
	// regrouping relative to the matrix implementation (see the streaming
	// equivalence test, whose reference reduces the same way).
	var sum float64
	for i := range accums {
		a := &accums[i]
		a.advance(intervals, cfg.UtilScale, capacity)
		sum += a.sumPct
		res.BusyReadings += a.busy
		res.ReadingsAbove100 += a.above100
		if a.maxPct > res.MaxReadingPct {
			res.MaxReadingPct = a.maxPct
		}
	}
	res.AvgUtilizationPct = sum / float64(len(accums)*intervals)
	res.FailureRate = float64(res.Failures) / float64(res.Arrivals)
	if d := runSpan.End(reg.Histogram("rc_sim_run_seconds",
		"Wall time of one simulation run.", obs.DefaultDurationBuckets, runLabels...)); d > 0 {
		reg.Gauge("rc_sim_placements_per_second",
			"Placement throughput of the most recent run.", runLabels...).
			Set(float64(res.Placed) / d.Seconds())
	}
	return res, nil
}

// c95Cores computes V.util of Algorithm 1: the predicted 95th-percentile
// utilization in cores, falling back to the full allocation when there is
// no prediction or the confidence is low (lines 10-13).
func c95Cores(v *trace.VM, cfg Config, requested int) float64 {
	full := float64(v.Cores)
	if cfg.Predictor == nil {
		return full
	}
	bucket, score, ok := cfg.Predictor.PredictP95Bucket(v, requested)
	if !ok || score < cfg.ConfidenceThreshold {
		return full
	}
	bucket += cfg.BucketShift
	if max := metric.P95CPU.Buckets() - 1; bucket > max {
		bucket = max
	}
	return metric.P95CPU.BucketHigh(bucket) / 100 * full
}

// activeVM is one VM currently contributing to a server's utilization
// readings: its contribution window was fixed at placement time. The
// utilization model is held by value — not via the *trace.VM — because
// accumulators read it long after the arrival is gone, and the columnar
// path recycles its scratch VMs (At is a pure function of the model's
// fields, so the copy reads identically).
type activeVM struct {
	util  trace.UtilModel
	end   trace.Minutes // Deleted clamped to the horizon
	cores float64
}

// serverAccum streams one server's utilization statistics without
// materializing its per-interval series. Intervals below frontier are
// finalized; active holds the VMs that can still contribute, in placement
// order — the same order the matrix implementation accumulated each
// float32 cell in, which keeps every reading bit-identical.
type serverAccum struct {
	frontier int // next unfinalized 5-minute interval
	active   []activeVM
	sumPct   float64
	busy     int
	above100 int
	maxPct   float64
}

// advance finalizes intervals [frontier, upto), folding the paper's
// pessimistic aggregation — the sum of co-located VMs' interval-maximum
// utilizations, each pessimistically held for the whole 5-minute window —
// into the running statistics. Contributions only cover intervals the VM
// fully occupies: two VMs that time-share a server slot within one window
// must not double-count, otherwise even non-oversubscribed servers would
// report readings above 100% (the paper's Baseline never does). VMs whose
// window has passed are compacted out in place, preserving order; once the
// active set is empty every remaining reading is exactly zero, so the
// frontier jumps straight to upto.
func (a *serverAccum) advance(upto int, scale, capacity float64) {
	for ; a.frontier < upto; a.frontier++ {
		if len(a.active) == 0 {
			a.frontier = upto
			break
		}
		t := trace.Minutes(a.frontier) * trace.ReadingIntervalMin
		var reading float32
		live := a.active[:0]
		for i := range a.active {
			vm := &a.active[i]
			if t+trace.ReadingIntervalMin > vm.end {
				continue
			}
			live = append(live, *vm)
			_, _, max := vm.util.At(t)
			reading += float32(max / 100 * vm.cores * scale)
		}
		a.active = live
		if reading <= 0 {
			continue
		}
		pct := float64(reading) / capacity * 100
		a.sumPct += pct
		a.busy++
		if pct > 100 {
			a.above100++
		}
		if pct > a.maxPct {
			a.maxPct = pct
		}
	}
}

// alignUp rounds t up to the 5-minute reading grid.
func alignUp(t trace.Minutes) trace.Minutes {
	if rem := t % trace.ReadingIntervalMin; rem != 0 {
		t += trace.ReadingIntervalMin - rem
	}
	return t
}

// completion is a pending VM termination.
type completion struct {
	at  trace.Minutes
	req *cluster.Request
}

// completionHeap is a binary min-heap on completion time. The typed
// push/pop replicate container/heap's sift algorithm exactly — same
// child choice, same tie behaviour — so pop order (and therefore every
// downstream float) matches the original container/heap implementation,
// without boxing each completion into an interface per push.
type completionHeap []completion

func (h *completionHeap) push(c completion) {
	*h = append(*h, c)
	j := len(*h) - 1
	for j > 0 {
		i := (j - 1) / 2
		if (*h)[j].at >= (*h)[i].at {
			break
		}
		(*h)[i], (*h)[j] = (*h)[j], (*h)[i]
		j = i
	}
}

// pop removes and returns the earliest completion.
//
//rcvet:hotpath
func (h *completionHeap) pop() completion {
	old := *h
	n := len(old) - 1
	old[0], old[n] = old[n], old[0]
	old[:n].down(0)
	c := old[n]
	*h = old[:n]
	return c
}

//rcvet:hotpath
func (h completionHeap) down(i int) {
	n := len(h)
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h[j2].at < h[j1].at {
			j = j2
		}
		if h[j].at >= h[i].at {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// Len, Less, Swap, Push and Pop keep completionHeap usable with
// container/heap; the matrix-reference equivalence test drives it that
// way to prove the typed operations above preserve the original order.
func (h completionHeap) Len() int           { return len(h) }
func (h completionHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h completionHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x any)        { *h = append(*h, x.(completion)) }
func (h *completionHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
