package sim

import (
	"container/heap"
	"fmt"
	"reflect"
	"testing"

	"resourcecentral/internal/cluster"
	"resourcecentral/internal/metric"
	"resourcecentral/internal/trace"
)

// referenceRun is the pre-streaming implementation of Run, kept verbatim
// (minus metrics): it materializes the full servers×intervals float32
// matrix and derives the utilization statistics in a final pass. The one
// deliberate difference from the historical code is the mean reduction:
// per-server row subtotals summed in server-ID order, matching the
// regrouping the streaming implementation documents — every other field
// is computed exactly as before.
func referenceRun(tr *trace.Trace, cfg Config) (*Result, error) {
	if cfg.ConfidenceThreshold == 0 {
		cfg.ConfidenceThreshold = 0.6
	}
	if cfg.UtilScale == 0 {
		cfg.UtilScale = 1
	}
	cl, err := cluster.New(cfg.Cluster)
	if err != nil {
		return nil, err
	}
	intervals := int(tr.Horizon / trace.ReadingIntervalMin)
	series := make([][]float32, len(cl.Servers))
	for i := range series {
		series[i] = make([]float32, intervals)
	}
	deployRequested := countInitialWaves(tr)
	res := &Result{Policy: cfg.Cluster.Policy}
	var completions completionHeap
	for i := range tr.VMs {
		v := &tr.VMs[i]
		for len(completions) > 0 && completions[0].at <= v.Created {
			done := heap.Pop(&completions).(completion)
			srv, err := cl.VMCompleted(done.req)
			if err != nil {
				return nil, err
			}
			if srv.Empty() {
				res.ServerDrains++
			}
		}
		res.Arrivals++
		req := &cluster.Request{
			VM:         v,
			Production: v.Production,
			Deployment: v.Deployment,
		}
		req.PredUtilCores = c95Cores(v, cfg, deployRequested[v.Deployment])
		if cfg.LifetimePredictor != nil {
			if b, score, ok := cfg.LifetimePredictor.PredictLifetimeBucket(v, deployRequested[v.Deployment]); ok && score >= cfg.ConfidenceThreshold {
				req.PredEndTime = v.Created + trace.Minutes(metric.Lifetime.BucketHigh(b))
			}
		}
		server, ok := cl.Schedule(req)
		if !ok {
			res.Failures++
			if req.Production {
				res.FailuresProd++
			} else {
				res.FailuresNonProd++
			}
			continue
		}
		res.Placed++
		end := v.Deleted
		if end > tr.Horizon {
			end = tr.Horizon
		}
		res.AllocatedCoreHours += float64(end-v.Created) / 60 * float64(v.Cores)
		cores := float64(v.Cores)
		for t := alignUp(v.Created); t+trace.ReadingIntervalMin <= end; t += trace.ReadingIntervalMin {
			idx := int(t / trace.ReadingIntervalMin)
			if idx < 0 || idx >= intervals {
				continue
			}
			_, _, max := v.Util.At(t)
			series[server.ID][idx] += float32(max / 100 * cores * cfg.UtilScale)
		}
		if v.Deleted < trace.NoEnd {
			heap.Push(&completions, completion{at: v.Deleted, req: req})
		}
	}
	capacity := float32(cfg.Cluster.CoresPerServer)
	var sum float64
	for _, s := range series {
		var rowSum float64
		for _, reading := range s {
			pct := float64(reading) / float64(capacity) * 100
			rowSum += pct
			if reading > 0 {
				res.BusyReadings++
			}
			if pct > 100 {
				res.ReadingsAbove100++
			}
			if pct > res.MaxReadingPct {
				res.MaxReadingPct = pct
			}
		}
		sum += rowSum
	}
	res.AvgUtilizationPct = sum / float64(len(series)*intervals)
	res.FailureRate = float64(res.Failures) / float64(res.Arrivals)
	return res, nil
}

// TestStreamingMatchesMatrix proves the streaming aggregation reproduces
// the matrix implementation's Result bit-for-bit across all policies and
// the sensitivity-study knobs.
func TestStreamingMatchesMatrix(t *testing.T) {
	tr := loadTrace(t)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"baseline", Config{Cluster: clusterConfig(cluster.Baseline, 2000)}},
		{"naive", Config{Cluster: clusterConfig(cluster.Naive, 2000)}},
		{"rc-hard", Config{
			Cluster:   clusterConfig(cluster.RCHard, 2000),
			Predictor: &OraclePredictor{Horizon: tr.Horizon},
		}},
		{"rc-soft", Config{
			Cluster:   clusterConfig(cluster.RCSoft, 2000),
			Predictor: &OraclePredictor{Horizon: tr.Horizon},
		}},
		{"rc-soft/scaled", Config{
			Cluster:   clusterConfig(cluster.RCSoft, 2000),
			Predictor: &OraclePredictor{Horizon: tr.Horizon},
			UtilScale: 1.25,
		}},
		{"rc-soft/shifted", Config{
			Cluster:     clusterConfig(cluster.RCSoft, 2000),
			Predictor:   &OraclePredictor{Horizon: tr.Horizon},
			BucketShift: 1,
		}},
		{"rc-soft/small-cluster", Config{
			Cluster:   clusterConfig(cluster.RCSoft, 600),
			Predictor: &OraclePredictor{Horizon: tr.Horizon},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Run(tr, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := referenceRun(tr, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("streaming Result diverges from matrix reference:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestStreamingMatchesMatrixLifetime covers the lifetime-aware extension
// (predicted end times change placements and drain counting).
func TestStreamingMatchesMatrixLifetime(t *testing.T) {
	tr := loadTrace(t)
	cc := clusterConfig(cluster.RCSoft, 2000)
	cc.LifetimeAware = true
	for _, threshold := range []float64{0.6, 0.9} {
		t.Run(fmt.Sprintf("threshold=%g", threshold), func(t *testing.T) {
			cfg := Config{
				Cluster:             cc,
				Predictor:           &OraclePredictor{Horizon: tr.Horizon},
				LifetimePredictor:   &OracleLifetimePredictor{Horizon: tr.Horizon},
				ConfidenceThreshold: threshold,
			}
			got, err := Run(tr, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := referenceRun(tr, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("streaming Result diverges from matrix reference:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}
