package sim

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"resourcecentral/internal/cluster"
	"resourcecentral/internal/obs"
	"resourcecentral/internal/trace"
)

func sweepGrid(tr *trace.Trace) []Config {
	oracle := &OraclePredictor{Horizon: tr.Horizon}
	return []Config{
		{Cluster: clusterConfig(cluster.Baseline, 90)},
		{Cluster: clusterConfig(cluster.Naive, 90)},
		{Cluster: clusterConfig(cluster.RCHard, 90), Predictor: oracle},
		{Cluster: clusterConfig(cluster.RCSoft, 90), Predictor: oracle},
		{Cluster: clusterConfig(cluster.RCSoft, 90), Predictor: oracle, UtilScale: 1.25},
		{Cluster: clusterConfig(cluster.RCSoft, 90), Predictor: oracle, BucketShift: 1},
	}
}

// TestRunSweepMatchesSequential proves the parallel sweep returns exactly
// the results sequential Run calls produce, in input order, for any
// worker count.
func TestRunSweepMatchesSequential(t *testing.T) {
	tr := loadTrace(t)
	grid := sweepGrid(tr)
	want := make([]*Result, len(grid))
	for i, cfg := range grid {
		r, err := Run(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	for _, workers := range []int{1, 2, 4, 16} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			got, err := RunSweep(tr, sweepGrid(tr), SweepOptions{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Results, want) {
				t.Errorf("sweep results diverge from sequential runs")
			}
			if got.Metrics != nil {
				t.Errorf("metrics collected without CollectObs")
			}
		})
	}
}

// TestRunSweepMergedMetrics checks per-point registries merge into one
// labeled snapshot where no point clobbers another.
func TestRunSweepMergedMetrics(t *testing.T) {
	tr := loadTrace(t)
	grid := sweepGrid(tr)
	got, err := RunSweep(tr, grid, SweepOptions{Workers: 4, CollectObs: true})
	if err != nil {
		t.Fatal(err)
	}
	var placed []obs.Sample
	for _, fam := range got.Metrics {
		if fam.Name == "rc_sim_placements_total" {
			placed = fam.Samples
		}
	}
	if len(placed) != len(grid) {
		t.Fatalf("placements samples = %d, want one per point", len(placed))
	}
	byRun := map[string]float64{}
	for _, s := range placed {
		var run string
		for _, l := range s.Labels {
			if l.Key == "run" {
				run = l.Value
			}
		}
		byRun[run] = s.Value
	}
	for i, r := range got.Results {
		label := fmt.Sprintf("point%d", i)
		if v, ok := byRun[label]; !ok || v != float64(r.Placed) {
			t.Errorf("%s: metric %g, want %d placements", label, v, r.Placed)
		}
	}
}

// TestRunSweepPointsConcurrency proves the sweep fan-out actually runs
// points concurrently: with two workers, two runOne calls must be in
// flight at the same time. This is the property bench numbers cannot
// show on a single-core host — there GOMAXPROCS=1 timeshares the
// goroutines and every worker count measures the same serial work, so
// the engagement proof lives here instead of in BenchmarkSimSweep.
func TestRunSweepPointsConcurrency(t *testing.T) {
	const points = 4
	arrived := make(chan int, points)
	proceed := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := runSweepPoints(make([]Config, points), SweepOptions{Workers: 2},
			func(Config) (*Result, error) {
				arrived <- 1
				<-proceed
				return &Result{}, nil
			})
		done <- err
	}()
	// Two workers must both enter runOne before either is released; a
	// serial pool would hold the second point back until the first
	// finishes, so bound the wait.
	for i := 0; i < 2; i++ {
		select {
		case <-arrived:
		case <-time.After(10 * time.Second):
			t.Fatal("sweep ran points serially: second worker never entered runOne")
		}
	}
	close(proceed)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestRunSweepPartialFailure: a bad point reports its error without
// aborting the healthy points.
func TestRunSweepPartialFailure(t *testing.T) {
	tr := loadTrace(t)
	grid := []Config{
		{Cluster: clusterConfig(cluster.Baseline, 90)},
		{Cluster: cluster.Config{}}, // invalid
	}
	got, err := RunSweep(tr, grid, SweepOptions{Workers: 2})
	if err == nil {
		t.Fatal("expected error from invalid point")
	}
	if got.Results[0] == nil || got.Results[1] != nil {
		t.Errorf("results = [%v, %v], want [ok, nil]", got.Results[0], got.Results[1])
	}
}
