package sim

import (
	"reflect"
	"testing"

	"resourcecentral/internal/cluster"
	"resourcecentral/internal/obs"
	"resourcecentral/internal/synth"
	"resourcecentral/internal/trace"
)

// genEquivTrace synthesizes a multi-chunk trace for a given seed so the
// columnar equivalence runs cover chunk-boundary crossings.
func genEquivTrace(t *testing.T, seed uint64) *trace.Trace {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.Days = 10
	cfg.TargetVMs = 12000
	cfg.MaxDeploymentVMs = 150
	cfg.Seed = seed
	res, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace
}

// equivConfigs is the policy grid the byte-identity claim covers: all
// four policies, the sensitivity knobs, and lifetime-aware co-location.
func equivConfigs(tr *trace.Trace, servers int) []Config {
	oracle := &OraclePredictor{Horizon: tr.Horizon}
	return []Config{
		{Cluster: clusterConfig(cluster.Baseline, servers)},
		{Cluster: clusterConfig(cluster.Naive, servers)},
		{Cluster: clusterConfig(cluster.RCHard, servers), Predictor: oracle},
		{Cluster: clusterConfig(cluster.RCSoft, servers), Predictor: oracle},
		{Cluster: clusterConfig(cluster.RCSoft, servers), Predictor: oracle, UtilScale: 1.25},
		{Cluster: clusterConfig(cluster.RCSoft, servers), Predictor: oracle, BucketShift: 1},
		func() Config {
			c := clusterConfig(cluster.RCSoft, servers)
			c.LifetimeAware = true
			return Config{Cluster: c, Predictor: oracle,
				LifetimePredictor: &OracleLifetimePredictor{Horizon: tr.Horizon}}
		}(),
	}
}

// RunColumns must be byte-identical to Run — same placements, same
// stats, same floats — for every policy, across seeds. Both paths
// share one core; this pins the arrival sources to equal behaviour.
func TestRunColumnsMatchesRun(t *testing.T) {
	for _, seed := range []uint64{21, 97} {
		tr := genEquivTrace(t, seed)
		cols := trace.FromTrace(tr)
		for i, cfg := range equivConfigs(tr, 400) {
			want, err := Run(tr, cfg)
			if err != nil {
				t.Fatalf("seed %d cfg %d: %v", seed, i, err)
			}
			got, err := RunColumns(cols, cfg)
			if err != nil {
				t.Fatalf("seed %d cfg %d: %v", seed, i, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("seed %d cfg %d (%v): columnar result differs:\n got %+v\nwant %+v",
					seed, i, cfg.Cluster.Policy, got, want)
			}
		}
	}
}

// The columnar wave-size pass must agree with the row map for every VM.
func TestCountInitialWavesColumnsMatchesRows(t *testing.T) {
	tr := genEquivTrace(t, 21)
	cols := trace.FromTrace(tr)
	rows := countInitialWaves(tr)
	byID := countInitialWavesColumns(cols)
	err := cols.ForEachChunk(func(base int, ch *trace.Chunk) error {
		tab := ch.Strings()
		for j, id := range ch.Dep {
			if byID[id] != rows[tab.StringAt(id)] {
				t.Fatalf("vm %d dep %q: columnar wave %d, row wave %d",
					base+j, tab.StringAt(id), byID[id], rows[tab.StringAt(id)])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// RunColumns validation mirrors Run's.
func TestRunColumnsValidation(t *testing.T) {
	if _, err := RunColumns(trace.NewColumns(100), Config{}); err == nil {
		t.Error("expected error for empty columns")
	}
	cols := trace.FromTrace(loadTrace(t))
	if _, err := RunColumns(cols, Config{Cluster: cluster.Config{}}); err == nil {
		t.Error("expected error for invalid cluster config")
	}
}

// RunSweepColumns must reproduce RunSweep point for point, including
// the merged counter metrics (timings are wall-clock and excluded).
func TestRunSweepColumnsMatchesRunSweep(t *testing.T) {
	tr := genEquivTrace(t, 21)
	cols := trace.FromTrace(tr)
	cfgs := equivConfigs(tr, 400)
	want, err := RunSweep(tr, cfgs, SweepOptions{Workers: 2, CollectObs: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSweepColumns(cols, cfgs, SweepOptions{Workers: 2, CollectObs: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Results, want.Results) {
		t.Errorf("sweep results differ:\n got %+v\nwant %+v", got.Results, want.Results)
	}
	if !reflect.DeepEqual(counterFamilies(got.Metrics), counterFamilies(want.Metrics)) {
		t.Errorf("merged counters differ:\n got %+v\nwant %+v",
			counterFamilies(got.Metrics), counterFamilies(want.Metrics))
	}
}

// counterFamilies filters a metric snapshot down to the deterministic
// counters (run-duration histograms and throughput gauges depend on
// wall time and cannot be compared across runs).
func counterFamilies(fams []obs.Family) []obs.Family {
	var out []obs.Family
	for _, f := range fams {
		if f.Kind == obs.KindCounter {
			out = append(out, f)
		}
	}
	return out
}

// An empty columnar sweep fails every point, like the row sweep.
func TestRunSweepColumnsEmpty(t *testing.T) {
	res, err := RunSweepColumns(trace.NewColumns(100), []Config{{}}, SweepOptions{})
	if err == nil {
		t.Fatal("expected error")
	}
	if res.Results[0] != nil {
		t.Fatal("expected nil result for failed point")
	}
}
