package sim

import (
	"resourcecentral/internal/core"
	"resourcecentral/internal/metric"
	"resourcecentral/internal/model"
	"resourcecentral/internal/trace"
)

// ClientPredictor obtains P95-utilization predictions from the RC client
// library, exactly as the production scheduler would (Algorithm 1 line 9).
type ClientPredictor struct {
	Client *core.Client
}

// PredictP95Bucket implements Predictor.
func (p *ClientPredictor) PredictP95Bucket(v *trace.VM, requestedVMs int) (int, float64, bool) {
	in := model.FromVM(v, requestedVMs)
	pred, err := p.Client.PredictSingle(metric.P95CPU.String(), &in)
	if err != nil || !pred.OK {
		return 0, 0, false
	}
	return pred.Bucket, pred.Score, true
}

// ClientLifetimePredictor obtains lifetime predictions from the client
// library for the co-location extension.
type ClientLifetimePredictor struct {
	Client *core.Client
}

// PredictLifetimeBucket implements LifetimePredictor.
func (p *ClientLifetimePredictor) PredictLifetimeBucket(v *trace.VM, requestedVMs int) (int, float64, bool) {
	in := model.FromVM(v, requestedVMs)
	pred, err := p.Client.PredictSingle(metric.Lifetime.String(), &in)
	if err != nil || !pred.OK {
		return 0, 0, false
	}
	return pred.Bucket, pred.Score, true
}

// OracleLifetimePredictor predicts the true lifetime bucket.
type OracleLifetimePredictor struct {
	Horizon trace.Minutes
}

// PredictLifetimeBucket implements LifetimePredictor.
func (p *OracleLifetimePredictor) PredictLifetimeBucket(v *trace.VM, _ int) (int, float64, bool) {
	if v.Deleted > p.Horizon {
		return metric.Lifetime.Buckets() - 1, 1, true
	}
	life, ok := v.Lifetime()
	if !ok {
		return metric.Lifetime.Buckets() - 1, 1, true
	}
	return metric.Lifetime.Bucket(float64(life)), 1, true
}

// OraclePredictor always predicts the correct bucket (the paper's
// RC-soft-right configuration) by peeking at the VM's actual telemetry.
type OraclePredictor struct {
	Horizon trace.Minutes
	// UtilScale matches the simulation's utilization scaling so the
	// oracle stays "right" in the sensitivity studies.
	UtilScale float64
}

// PredictP95Bucket implements Predictor.
func (p *OraclePredictor) PredictP95Bucket(v *trace.VM, _ int) (int, float64, bool) {
	scale := p.UtilScale
	if scale == 0 {
		scale = 1
	}
	_, p95 := trace.SummaryStats(v, p.Horizon)
	return metric.P95CPU.Bucket(p95 * scale), 1, true
}

// WrongPredictor always predicts an incorrect random bucket (the paper's
// RC-soft-wrong configuration). The wrong bucket is a deterministic
// function of the VM id so runs are reproducible.
type WrongPredictor struct {
	Horizon trace.Minutes
}

// PredictP95Bucket implements Predictor.
func (p *WrongPredictor) PredictP95Bucket(v *trace.VM, _ int) (int, float64, bool) {
	_, p95 := trace.SummaryStats(v, p.Horizon)
	truth := metric.P95CPU.Bucket(p95)
	// Pick a pseudo-random bucket different from the truth.
	h := uint64(v.ID) * 0x9e3779b97f4a7c15
	offset := 1 + int((h>>33)%uint64(metric.P95CPU.Buckets()-1))
	return (truth + offset) % metric.P95CPU.Buckets(), 1, true
}
