package model

import (
	"math"
	"testing"

	"resourcecentral/internal/featuredata"
	"resourcecentral/internal/metric"
	"resourcecentral/internal/ml/feature"
	"resourcecentral/internal/ml/forest"
	"resourcecentral/internal/ml/gbt"
)

func testSpec(t *testing.T, m metric.Metric) *Spec {
	t.Helper()
	s, err := NewSpec(m, []string{"IaaS", "WebRole", "WorkerRole"}, []string{"linux", "windows"})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sampleInputs() *ClientInputs {
	return &ClientInputs{
		Subscription: "sub-1",
		VMType:       "IaaS",
		Role:         "IaaS",
		OS:           "linux",
		Party:        "third",
		Production:   true,
		Cores:        2,
		MemoryGB:     3.5,
		CreateMinute: 3 * 24 * 60,
		RequestedVMs: 4,
	}
}

func TestFeaturizeLayoutMatchesNames(t *testing.T) {
	s := testSpec(t, metric.AvgCPU)
	x := s.Featurize(sampleInputs(), nil, nil)
	if len(x) != s.NumFeatures() {
		t.Errorf("featurize produced %d values for %d names", len(x), s.NumFeatures())
	}
	// The feature count should be substantial (the paper's util models use
	// 127 features derived from a smaller number of attributes).
	if s.NumFeatures() < 40 {
		t.Errorf("only %d features; expected a rich feature space", s.NumFeatures())
	}
}

func TestFeaturizeUnknownSubscriptionFlag(t *testing.T) {
	s := testSpec(t, metric.Lifetime)
	names := s.FeatureNames()
	knownIdx := -1
	for i, n := range names {
		if n == "sub-known" {
			knownIdx = i
		}
	}
	if knownIdx < 0 {
		t.Fatal("no sub-known feature")
	}
	without := s.Featurize(sampleInputs(), nil, nil)
	if without[knownIdx] != 0 {
		t.Error("sub-known should be 0 without feature data")
	}
	with := s.Featurize(sampleInputs(), &featuredata.SubscriptionFeatures{VMCount: 5}, nil)
	if with[knownIdx] != 1 {
		t.Error("sub-known should be 1 with feature data")
	}
}

func TestFeaturizeDeterministic(t *testing.T) {
	s := testSpec(t, metric.P95CPU)
	sub := &featuredata.SubscriptionFeatures{VMCount: 10, MeanCores: 2}
	a := s.Featurize(sampleInputs(), sub, nil)
	b := s.Featurize(sampleInputs(), sub, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("featurize not deterministic")
		}
	}
}

func TestFeaturizeAppendsToDst(t *testing.T) {
	s := testSpec(t, metric.AvgCPU)
	dst := []float64{42}
	out := s.Featurize(sampleInputs(), nil, dst)
	if out[0] != 42 || len(out) != 1+s.NumFeatures() {
		t.Error("featurize did not append to dst")
	}
}

func TestCacheKeyStableAndSensitive(t *testing.T) {
	a := sampleInputs()
	b := sampleInputs()
	if a.CacheKey("m") != b.CacheKey("m") {
		t.Error("identical inputs hash differently")
	}
	if a.CacheKey("m") == a.CacheKey("other-model") {
		t.Error("model name not in key")
	}
	b.Cores = 4
	if a.CacheKey("m") == b.CacheKey("m") {
		t.Error("cores change not reflected in key")
	}
	c := sampleInputs()
	c.Subscription = "sub-2"
	if a.CacheKey("m") == c.CacheKey("m") {
		t.Error("subscription change not reflected in key")
	}
}

// trainTinyModel fits a trivially learnable dataset through the spec
// featurizer so the whole model path is exercised.
func trainTinyModel(t *testing.T, useForest bool) *Trained {
	t.Helper()
	s := testSpec(t, metric.AvgCPU)
	ds := &feature.Dataset{NumClasses: 4, Names: s.FeatureNames()}
	for i := 0; i < 200; i++ {
		in := sampleInputs()
		in.Cores = 1 + i%4 // label equals cores-1, perfectly learnable
		x := s.Featurize(in, nil, nil)
		ds.Add(x, i%4)
	}
	tr := &Trained{Spec: *s}
	if useForest {
		f, err := forest.Train(ds, forest.Config{Trees: 10, MaxDepth: 6, MaxFeatures: s.NumFeatures(), Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		tr.Forest = f
	} else {
		g, err := gbt.Train(ds, gbt.Config{Rounds: 15, MaxDepth: 3, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		tr.GBT = g
	}
	return tr
}

func TestTrainedPredictBothLearners(t *testing.T) {
	for _, useForest := range []bool{true, false} {
		tr := trainTinyModel(t, useForest)
		in := sampleInputs()
		in.Cores = 3
		x := tr.Spec.Featurize(in, nil, nil)
		cls, score, err := tr.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		if cls != 2 {
			t.Errorf("forest=%v: predicted %d, want 2", useForest, cls)
		}
		if score < 0.5 {
			t.Errorf("forest=%v: low confidence %v on clean data", useForest, score)
		}
	}
}

func TestTrainedEncodeDecodeRoundTrip(t *testing.T) {
	for _, useForest := range []bool{true, false} {
		tr := trainTinyModel(t, useForest)
		data, err := tr.Encode()
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		x := got.Spec.Featurize(sampleInputs(), nil, nil)
		p1, err := tr.PredictProba(x)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := got.PredictProba(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range p1 {
			if math.Abs(p1[i]-p2[i]) > 1e-12 {
				t.Fatalf("decoded model differs: %v vs %v", p1, p2)
			}
		}
		if got.Name() != tr.Name() {
			t.Error("name lost in round trip")
		}
	}
}

func TestClassifierUnionValidation(t *testing.T) {
	bad := &Trained{}
	if _, err := bad.Classifier(); err == nil {
		t.Error("expected error for empty union")
	}
	tr := trainTinyModel(t, true)
	tr.GBT = trainTinyModel(t, false).GBT
	if _, err := tr.Classifier(); err == nil {
		t.Error("expected error for double union")
	}
}

func TestSanityCheck(t *testing.T) {
	tr := trainTinyModel(t, true)
	if err := tr.SanityCheck(); err != nil {
		t.Errorf("sane model failed check: %v", err)
	}
	// Wrong bucket count: an AvgCPU spec with a 2-class model.
	s := testSpec(t, metric.AvgCPU)
	ds := &feature.Dataset{NumClasses: 2, Names: s.FeatureNames()}
	for i := 0; i < 50; i++ {
		ds.Add(s.Featurize(sampleInputs(), nil, nil), i%2)
	}
	g, err := gbt.Train(ds, gbt.Config{Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	mismatched := &Trained{Spec: *s, GBT: g}
	if err := mismatched.SanityCheck(); err == nil {
		t.Error("expected sanity failure for bucket-count mismatch")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("expected error on empty data")
	}
	if _, err := Decode([]byte("garbage")); err == nil {
		t.Error("expected error on garbage")
	}
}

func TestSizeBytes(t *testing.T) {
	tr := trainTinyModel(t, true)
	if tr.SizeBytes() <= 0 {
		t.Error("size should be positive")
	}
	empty := &Trained{}
	if empty.SizeBytes() != 0 {
		t.Error("empty model size should be 0")
	}
}
