// Package model defines Resource Central's model specifications: the
// client inputs each model accepts, the featurization that combines client
// inputs with per-subscription feature data (shared verbatim between
// offline training and online prediction, which is what makes the client
// DLL's model execution correct), and the serialized form models are
// published to the store in.
package model

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"

	"resourcecentral/internal/featuredata"
	"resourcecentral/internal/metric"
	"resourcecentral/internal/ml/feature"
	"resourcecentral/internal/ml/forest"
	"resourcecentral/internal/ml/gbt"
	"resourcecentral/internal/trace"
)

// ClientInputs is the information a client system (VM scheduler, health
// manager, ...) passes with a prediction request (Section 4.2). All fields
// are known at VM deployment time.
type ClientInputs struct {
	Subscription string
	VMType       string // "IaaS" or "PaaS"
	Role         string
	OS           string
	Party        string // "first" or "third"
	Production   bool
	Cores        int
	MemoryGB     float64
	// CreateMinute is the deployment time as minutes from trace start;
	// only its hour-of-day and day-of-week reach the feature vector.
	CreateMinute trace.Minutes
	// RequestedVMs is the size of the initial deployment request.
	RequestedVMs int
}

// FNV-64a parameters (hash/fnv), inlined so CacheKey hashes without heap
// allocation or interface dispatch — it sits on the prediction fast path,
// where the paper budgets ~1 µs for a whole result-cache hit.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvString folds s plus a 0-byte separator into an FNV-64a state.
//
//rcvet:hotpath
func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h * fnvPrime64 // separator byte 0: h ^ 0 == h
}

// CacheKey hashes the model name and client inputs for the result cache.
// Identical inputs always produce identical keys. The hash is FNV-64a
// over the same byte sequence the fnv-package implementation consumed,
// computed allocation-free — the //rcvet:hotpath contract makes that a
// build-time guarantee, not a benchmark-day observation.
//
//rcvet:hotpath
func (c *ClientInputs) CacheKey(modelName string) uint64 {
	var num [32]byte
	h := uint64(fnvOffset64)
	h = fnvString(h, modelName)
	h = fnvString(h, c.Subscription)
	h = fnvString(h, c.VMType)
	h = fnvString(h, c.Role)
	h = fnvString(h, c.OS)
	h = fnvString(h, c.Party)
	if c.Production {
		h = fnvString(h, "true")
	} else {
		h = fnvString(h, "false")
	}
	h = fnvString(h, string(strconv.AppendInt(num[:0], int64(c.Cores), 10)))
	h = fnvString(h, string(strconv.AppendFloat(num[:0], c.MemoryGB, 'g', -1, 64)))
	h = fnvString(h, string(strconv.AppendInt(num[:0], int64(c.CreateMinute/60), 10))) // hour granularity
	h = fnvString(h, string(strconv.AppendInt(num[:0], int64(c.RequestedVMs), 10)))
	return h
}

// FromVM derives client inputs from a trace VM record plus the size of its
// deployment request.
func FromVM(v *trace.VM, requestedVMs int) ClientInputs {
	return ClientInputs{
		Subscription: v.Subscription,
		VMType:       v.Type.String(),
		Role:         v.Role,
		OS:           v.OS,
		Party:        v.Party.String(),
		Production:   v.Production,
		Cores:        v.Cores,
		MemoryGB:     v.MemoryGB,
		CreateMinute: v.Created,
		RequestedVMs: requestedVMs,
	}
}

// Spec describes one model's inputs: which metric it predicts and the
// fitted categorical encoders. It fully determines the feature layout.
type Spec struct {
	Metric  metric.Metric
	RoleEnc *feature.OneHot
	OSEnc   *feature.OneHot
	// TrainedAt records the feature-data cutoff used in training.
	TrainedAt trace.Minutes
	// Version is the published model version.
	Version int
}

// NewSpec fits the categorical encoders over the training population.
func NewSpec(m metric.Metric, roles, oses []string) (*Spec, error) {
	roleEnc, err := feature.FitOneHot("role", roles, 8)
	if err != nil {
		return nil, err
	}
	osEnc, err := feature.FitOneHot("os", oses, 6)
	if err != nil {
		return nil, err
	}
	return &Spec{Metric: m, RoleEnc: roleEnc, OSEnc: osEnc}, nil
}

// FeatureNames lists the feature layout, in Featurize order.
func (s *Spec) FeatureNames() []string {
	names := []string{
		"cores", "log2-memgb", "production", "is-iaas", "is-third-party",
		"hour-sin", "hour-cos", "day-of-week", "is-weekend",
		"log-requested-vms",
	}
	names = append(names, s.RoleEnc.FeatureNames()...)
	names = append(names, s.OSEnc.FeatureNames()...)
	names = append(names, "sub-known", "log-sub-vms", "log-sub-deploys",
		"sub-mean-cores", "sub-mean-memgb", "sub-iaas-frac", "sub-prod-frac",
		"sub-mean-lifetime", "sub-mean-avg-util", "sub-mean-p95-util")
	for _, m := range metric.All {
		for b := 0; b < m.Buckets(); b++ {
			names = append(names, fmt.Sprintf("sub-%s-b%d", m, b+1))
		}
	}
	return names
}

// NumFeatures returns the feature dimensionality.
func (s *Spec) NumFeatures() int { return len(s.FeatureNames()) }

// Featurize builds the model input vector from client inputs and the
// subscription's feature data (sub may be nil for an unknown
// subscription; the sub-known flag tells the model). dst is appended to
// and returned, so callers can reuse buffers.
func (s *Spec) Featurize(in *ClientInputs, sub *featuredata.SubscriptionFeatures, dst []float64) []float64 {
	hour := float64((in.CreateMinute / 60) % 24)
	day := float64((in.CreateMinute / (24 * 60)) % 7)
	isWeekend := 0.0
	if day == 5 || day == 6 {
		isWeekend = 1
	}
	isIaaS := 0.0
	if in.VMType == trace.IaaS.String() {
		isIaaS = 1
	}
	isThird := 0.0
	if in.Party == trace.ThirdParty.String() {
		isThird = 1
	}
	prod := 0.0
	if in.Production {
		prod = 1
	}
	dst = append(dst,
		float64(in.Cores),
		math.Log2(math.Max(in.MemoryGB, 0.25)),
		prod, isIaaS, isThird,
		math.Sin(2*math.Pi*hour/24),
		math.Cos(2*math.Pi*hour/24),
		day, isWeekend,
		math.Log1p(float64(in.RequestedVMs)),
	)
	dst = s.RoleEnc.Encode(dst, in.Role)
	dst = s.OSEnc.Encode(dst, in.OS)

	if sub == nil {
		sub = &featuredata.SubscriptionFeatures{}
		dst = append(dst, 0) // sub-known
	} else {
		dst = append(dst, 1)
	}
	dst = append(dst,
		math.Log1p(float64(sub.VMCount)),
		math.Log1p(float64(sub.DeployCount)),
		sub.MeanCores, sub.MeanMemoryGB, sub.IaaSFrac, sub.ProdFrac,
		math.Log1p(sub.MeanLifetimeMin), sub.MeanAvgUtil, sub.MeanP95Util,
	)
	for _, m := range metric.All {
		fr := sub.BucketFracs(m)
		dst = append(dst, fr...)
	}
	return dst
}

// Classifier is the prediction interface both learner families satisfy.
type Classifier interface {
	PredictProba(x []float64) ([]float64, error)
	SizeBytes() int
}

// Trained couples a spec with its fitted classifier. Exactly one of Forest
// and GBT is non-nil; the union keeps gob serialization simple and
// explicit.
type Trained struct {
	Spec   Spec
	Forest *forest.Forest
	GBT    *gbt.Model
}

// Name returns the model's store name.
func (t *Trained) Name() string { return t.Spec.Metric.String() }

// Classifier returns the fitted learner.
func (t *Trained) Classifier() (Classifier, error) {
	switch {
	case t.Forest != nil && t.GBT != nil:
		return nil, errors.New("model: both learners set")
	case t.Forest != nil:
		return t.Forest, nil
	case t.GBT != nil:
		return t.GBT, nil
	default:
		return nil, errors.New("model: no learner set")
	}
}

// PredictProba runs the model on a featurized input.
func (t *Trained) PredictProba(x []float64) ([]float64, error) {
	c, err := t.Classifier()
	if err != nil {
		return nil, err
	}
	return c.PredictProba(x)
}

// Predict returns the most likely bucket and its confidence score.
func (t *Trained) Predict(x []float64) (int, float64, error) {
	probs, err := t.PredictProba(x)
	if err != nil {
		return 0, 0, err
	}
	best := 0
	for c, p := range probs {
		if p > probs[best] {
			best = c
		}
	}
	return best, probs[best], nil
}

// SizeBytes reports the learner size (Table 1).
func (t *Trained) SizeBytes() int {
	c, err := t.Classifier()
	if err != nil {
		return 0
	}
	return c.SizeBytes()
}

// FeatureImportance pairs a feature name with its normalized importance.
type FeatureImportance struct {
	Name       string
	Importance float64
}

// TopFeatures returns the k most important features, most important first
// (the paper reports that the per-subscription bucket history dominates).
func (t *Trained) TopFeatures(k int) []FeatureImportance {
	var imp []float64
	switch {
	case t.Forest != nil:
		imp = t.Forest.Importance()
	case t.GBT != nil:
		imp = t.GBT.Importance()
	}
	names := t.Spec.FeatureNames()
	if len(imp) != len(names) {
		return nil
	}
	out := make([]FeatureImportance, len(names))
	for i := range names {
		out[i] = FeatureImportance{Name: names[i], Importance: imp[i]}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Importance > out[j].Importance })
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// SanityCheck verifies the model produces valid distributions on a probe
// input, the check RC applies before publishing models (Section 4.2).
func (t *Trained) SanityCheck() error {
	probe := t.Spec.Featurize(&ClientInputs{
		Subscription: "sanity", VMType: "IaaS", Role: "IaaS", OS: "linux",
		Party: "third", Cores: 2, MemoryGB: 3.5,
	}, nil, nil)
	probs, err := t.PredictProba(probe)
	if err != nil {
		return fmt.Errorf("model %s: probe failed: %w", t.Name(), err)
	}
	if len(probs) != t.Spec.Metric.Buckets() {
		return fmt.Errorf("model %s: %d outputs for %d buckets", t.Name(), len(probs), t.Spec.Metric.Buckets())
	}
	sum := 0.0
	for _, p := range probs {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return fmt.Errorf("model %s: invalid probability %v", t.Name(), p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("model %s: probabilities sum to %v", t.Name(), sum)
	}
	return nil
}

// Encode serializes the model for publication to the store.
func (t *Trained) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(t); err != nil {
		return nil, fmt.Errorf("model: encode %s: %w", t.Name(), err)
	}
	return buf.Bytes(), nil
}

// Decode parses a model published by Encode.
func Decode(data []byte) (*Trained, error) {
	var t Trained
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&t); err != nil {
		return nil, fmt.Errorf("model: decode: %w", err)
	}
	if _, err := t.Classifier(); err != nil {
		return nil, err
	}
	return &t, nil
}
