package charz

import (
	"math"
	"sync"
	"testing"

	"resourcecentral/internal/synth"
	"resourcecentral/internal/trace"
)

var (
	once    sync.Once
	chTrace *trace.Trace
	chStats []VMStat
	chErr   error
)

func fixture(t *testing.T) (*trace.Trace, []VMStat) {
	t.Helper()
	once.Do(func() {
		cfg := synth.DefaultConfig()
		cfg.Days = 33
		cfg.TargetVMs = 8000
		cfg.MaxDeploymentVMs = 250
		cfg.Seed = 33
		res, err := synth.Generate(cfg)
		if err != nil {
			chErr = err
			return
		}
		chTrace = res.Trace
		chStats, chErr = ComputeVMStats(chTrace, nil)
	})
	if chErr != nil {
		t.Fatal(chErr)
	}
	return chTrace, chStats
}

func TestComputeVMStatsErrors(t *testing.T) {
	if _, err := ComputeVMStats(&trace.Trace{}, nil); err == nil {
		t.Error("expected error on empty trace")
	}
}

// Figure 1: ~60% of VMs below 20% average utilization; ~40% below 50% at
// the 95th percentile; first-party utilization lower than third-party.
func TestFig1UtilizationCDFs(t *testing.T) {
	tr, vs := fixture(t)
	pairs, err := UtilizationCDFs(tr, vs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 3 {
		t.Fatalf("groups = %d", len(pairs))
	}
	byGroup := map[Group]CDFPair{}
	for _, p := range pairs {
		byGroup[p.Group] = p
	}
	all := byGroup[All]
	if got := all.Avg.At(20); math.Abs(got-0.60) > 0.15 {
		t.Errorf("P(avg<=20%%) = %.3f, paper ~0.60", got)
	}
	if got := all.P95.At(50); math.Abs(got-0.40) > 0.15 {
		t.Errorf("P(p95<=50%%) = %.3f, paper ~0.40", got)
	}
	// First-party lower utilization: its CDF dominates third-party's.
	if byGroup[First].Avg.At(20) <= byGroup[Third].Avg.At(20) {
		t.Errorf("first-party avg CDF (%.3f) not above third-party (%.3f) at 20%%",
			byGroup[First].Avg.At(20), byGroup[Third].Avg.At(20))
	}
	// A large share of VMs needs >80% at the 95th percentile.
	if got := 1 - all.P95.At(80); got < 0.25 {
		t.Errorf("P(p95>80%%) = %.3f, paper reports a large share", got)
	}
}

// Figure 2: ~80% of VMs use 1-2 cores; shares sum to 1.
func TestFig2CoreBuckets(t *testing.T) {
	tr, _ := fixture(t)
	b := CoreBuckets(tr)
	for _, g := range Groups {
		sum := 0.0
		for _, s := range b.Share[g] {
			sum += s
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%v shares sum to %v", g, sum)
		}
	}
	small := b.Share[All][0] + b.Share[All][1]
	if math.Abs(small-0.80) > 0.12 {
		t.Errorf("1-2 core share = %.3f, paper ~0.80", small)
	}
}

// Figure 3: ~70% of VMs below 4 GB.
func TestFig3MemoryBuckets(t *testing.T) {
	tr, _ := fixture(t)
	b := MemoryBuckets(tr)
	lowMem := b.Share[All][0] + b.Share[All][1] + b.Share[All][2] // 0.75+1.75+3.5
	if math.Abs(lowMem-0.70) > 0.13 {
		t.Errorf("<4GB share = %.3f, paper ~0.70", lowMem)
	}
	if len(b.Labels) != len(b.Share[All]) {
		t.Error("labels/share length mismatch")
	}
}

// Figure 4: ~40% single-VM deployments; ~80% at most 5 VMs.
func TestFig4DeploymentSizeCDF(t *testing.T) {
	tr, _ := fixture(t)
	cdfs, err := DeploymentSizeCDF(tr)
	if err != nil {
		t.Fatal(err)
	}
	var all *GroupCDF
	for i := range cdfs {
		if cdfs[i].Group == All {
			all = &cdfs[i]
		}
	}
	if all == nil {
		t.Fatal("no all-group CDF")
	}
	// The subscription-region-day merge makes this statistic sensitive to
	// trace scale: daily-active subscriptions absorb their single-VM
	// deployments into one group. Enforce a broad band around the paper's
	// ~0.40.
	if got := all.CDF.At(1); got < 0.18 || got > 0.62 {
		t.Errorf("P(size=1) = %.3f, paper ~0.40", got)
	}
	if got := all.CDF.At(5); got < 0.60 {
		t.Errorf("P(size<=5) = %.3f, paper ~0.80", got)
	}
}

// Figure 5: >90% of lifetimes shorter than a day; the curve flattens
// beyond; first-party has more very short VMs.
func TestFig5LifetimeCDF(t *testing.T) {
	tr, vs := fixture(t)
	cdfs, err := LifetimeCDF(tr, vs)
	if err != nil {
		t.Fatal(err)
	}
	var all, first, third *GroupCDF
	for i := range cdfs {
		switch cdfs[i].Group {
		case All:
			all = &cdfs[i]
		case First:
			first = &cdfs[i]
		case Third:
			third = &cdfs[i]
		}
	}
	if got := all.CDF.At(1440); got < 0.85 {
		t.Errorf("P(lifetime<=1day) = %.3f, paper >0.90", got)
	}
	if first.CDF.At(15) <= third.CDF.At(15) {
		t.Errorf("first-party short-VM share (%.3f) not above third-party (%.3f)",
			first.CDF.At(15), third.CDF.At(15))
	}
}

// Figure 6: delay-insensitive VMs consume most core-hours (~68%),
// interactive a significant share (~28%).
func TestFig6WorkloadClassShares(t *testing.T) {
	tr, vs := fixture(t)
	shares := WorkloadClassShares(tr, vs)
	var all ClassShares
	for _, s := range shares {
		if s.Group == All {
			all = s
		}
	}
	if all.DelayInsensitive < 0.45 {
		t.Errorf("delay-insensitive share = %.3f, paper ~0.68", all.DelayInsensitive)
	}
	if all.Interactive < 0.08 || all.Interactive > 0.45 {
		t.Errorf("interactive share = %.3f, paper ~0.28", all.Interactive)
	}
	total := all.DelayInsensitive + all.Interactive + all.Unknown
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("shares sum to %v", total)
	}
}

// Figure 7: diurnal arrivals with weekend dip, heavy-tailed Weibull gaps.
func TestFig7Arrivals(t *testing.T) {
	tr, _ := fixture(t)
	rep, err := ArrivalSeries(tr, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Hourly) != int(tr.Horizon/60) {
		t.Fatalf("hourly length = %d", len(rep.Hourly))
	}
	if rep.Weibull.K <= 0 || rep.Weibull.K >= 1.05 {
		t.Errorf("Weibull shape = %.3f, want heavy-tailed (<1)", rep.Weibull.K)
	}
	if rep.KS > 0.15 {
		t.Errorf("Weibull KS = %.3f, paper reports a near-perfect fit", rep.KS)
	}
	// Region filter returns a subset.
	region, err := ArrivalSeries(tr, tr.VMs[0].Region)
	if err != nil {
		t.Fatal(err)
	}
	totalAll, totalRegion := 0, 0
	for i := range rep.Hourly {
		totalAll += rep.Hourly[i]
		totalRegion += region.Hourly[i]
	}
	if totalRegion <= 0 || totalRegion >= totalAll {
		t.Errorf("region arrivals %d not a strict subset of %d", totalRegion, totalAll)
	}
}

// Figure 8: structural relationships — cores strongly correlate with
// memory, avg with p95 utilization; diagonal is 1.
func TestFig8Correlations(t *testing.T) {
	tr, vs := fixture(t)
	m, err := Correlations(tr, vs)
	if err != nil {
		t.Fatal(err)
	}
	idx := map[string]int{}
	for i, n := range m.Names {
		idx[n] = i
	}
	for i := range m.Names {
		if math.Abs(m.Rho[i][i]-1) > 1e-9 {
			t.Errorf("diagonal %s = %v", m.Names[i], m.Rho[i][i])
		}
		for j := range m.Names {
			if math.Abs(m.Rho[i][j]-m.Rho[j][i]) > 1e-9 {
				t.Error("matrix not symmetric")
			}
		}
	}
	if rho := m.Rho[idx["cores"]][idx["memory"]]; rho < 0.6 {
		t.Errorf("cores-memory rho = %.3f, paper strongly positive", rho)
	}
	if rho := m.Rho[idx["avg util"]][idx["p95 util"]]; rho < 0.5 {
		t.Errorf("avg-p95 rho = %.3f, paper strongly positive", rho)
	}
	if rho := m.Rho[idx["class"]][idx["lifetime"]]; rho < 0 {
		t.Errorf("class-lifetime rho = %.3f, paper lightly positive", rho)
	}
}

// Per-subscription consistency (Sections 3.2-3.6).
func TestConsistencyReport(t *testing.T) {
	tr, vs := fixture(t)
	rep, err := Consistency(tr, vs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SingleType < 0.90 {
		t.Errorf("single-type share = %.3f, paper 0.96", rep.SingleType)
	}
	if rep.CoVBelow1["avg util"] < 0.75 {
		t.Errorf("avg util CoV<1 share = %.3f, paper ~0.80", rep.CoVBelow1["avg util"])
	}
	if rep.CoVBelow1["cores"] < 0.85 {
		t.Errorf("cores CoV<1 share = %.3f, paper ~all", rep.CoVBelow1["cores"])
	}
	if rep.CoVBelow1["lifetime"] < 0.60 {
		t.Errorf("lifetime CoV<1 share = %.3f, paper ~0.75", rep.CoVBelow1["lifetime"])
	}
	if rep.SingleClass < 0.70 {
		t.Errorf("single-class share = %.3f, paper 0.76", rep.SingleClass)
	}
}

func TestGroupStrings(t *testing.T) {
	if All.String() != "all" || First.String() != "first-party" || Third.String() != "third-party" {
		t.Error("group strings wrong")
	}
}

func TestUtilizationCDFsLengthMismatch(t *testing.T) {
	tr, _ := fixture(t)
	if _, err := UtilizationCDFs(tr, nil); err == nil {
		t.Error("expected error for stats/VM mismatch")
	}
}

func TestCorrelationsPerGroup(t *testing.T) {
	tr, vs := fixture(t)
	for _, g := range Groups {
		m, err := CorrelationsGroup(tr, vs, g)
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		for i := range m.Names {
			if math.Abs(m.Rho[i][i]-1) > 1e-9 {
				t.Errorf("%v: diagonal %s = %v", g, m.Names[i], m.Rho[i][i])
			}
		}
	}
	// Group matrices must differ from each other somewhere (the paper
	// highlights first- vs third-party differences).
	first, err := CorrelationsGroup(tr, vs, First)
	if err != nil {
		t.Fatal(err)
	}
	third, err := CorrelationsGroup(tr, vs, Third)
	if err != nil {
		t.Fatal(err)
	}
	differ := false
	for i := range first.Names {
		for j := range first.Names {
			if math.Abs(first.Rho[i][j]-third.Rho[i][j]) > 0.05 {
				differ = true
			}
		}
	}
	if !differ {
		t.Error("first- and third-party correlation matrices identical")
	}
}

func TestCoreHourConcentration(t *testing.T) {
	tr, vs := fixture(t)
	rep, err := Consistency(tr, vs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LongRunnerCoreHourShare < 0.75 {
		t.Errorf("long-runner core-hour share = %.3f, paper >0.95", rep.LongRunnerCoreHourShare)
	}
	if rep.ClassifiedCoreHourShare < 0.70 {
		t.Errorf("classified core-hour share = %.3f, paper 0.94", rep.ClassifiedCoreHourShare)
	}
}
