package charz

import (
	"sync"
	"testing"

	"resourcecentral/internal/synth"
	"resourcecentral/internal/trace"
)

var (
	benchOnce  sync.Once
	benchTr    *trace.Trace
	benchCols  *trace.Columns
	benchGenEr error
)

func benchFixture(b *testing.B) (*trace.Trace, *trace.Columns) {
	benchOnce.Do(func() {
		cfg := synth.DefaultConfig()
		cfg.Days = 33
		cfg.TargetVMs = 8000
		cfg.MaxDeploymentVMs = 250
		cfg.Seed = 33
		res, err := synth.Generate(cfg)
		if err != nil {
			benchGenEr = err
			return
		}
		benchTr = res.Trace
		benchCols = trace.FromTrace(benchTr)
	})
	if benchGenEr != nil {
		b.Fatal(benchGenEr)
	}
	return benchTr, benchCols
}

// BenchmarkCharzRows is the row-path characterization baseline
// BenchmarkCharzColumnar is measured against.
func BenchmarkCharzRows(b *testing.B) {
	tr, _ := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeVMStats(tr, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCharzColumnar measures the chunk-iterating statistics pass
// over the columnar trace.
func BenchmarkCharzColumnar(b *testing.B) {
	_, cols := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeVMStatsColumns(cols, nil); err != nil {
			b.Fatal(err)
		}
	}
}
