package charz

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"resourcecentral/internal/fftperiod"
	"resourcecentral/internal/trace"
)

// The columnar entry points. Every figure function has one body,
// written against source, and two wrappers; the row and columnar paths
// therefore execute identical float operations in identical order, so
// their outputs are bit-identical (proven by the equivalence tests).

// source abstracts the two trace representations for the figure walks:
// the window, the VM count, and an in-order iteration. each lends fn a
// VM that is only valid during the call — the columnar side fills one
// scratch struct per walk. Strings are interned instances and safe to
// retain; anything else must be copied.
type source struct {
	horizon trace.Minutes
	n       int
	each    func(fn func(i int, v *trace.VM))
}

func rowSource(tr *trace.Trace) source {
	return source{
		horizon: tr.Horizon,
		n:       len(tr.VMs),
		each: func(fn func(i int, v *trace.VM)) {
			for i := range tr.VMs {
				fn(i, &tr.VMs[i])
			}
		},
	}
}

func colSource(c *trace.Columns) source {
	return source{
		horizon: c.Horizon,
		n:       c.Len(),
		each: func(fn func(i int, v *trace.VM)) {
			var v trace.VM
			_ = c.ForEachChunk(func(base int, ch *trace.Chunk) error {
				for j := 0; j < ch.Len(); j++ {
					ch.VMAt(j, &v)
					fn(base+j, &v)
				}
				return nil
			})
		},
	}
}

// ComputeVMStatsColumns is ComputeVMStats over the columnar trace. The
// walk reads the schedule and utilization-model columns directly — no
// row structs — and shares the row path's summarize/core-hour kernels,
// so the output is bit-identical to ComputeVMStats on the equivalent
// row trace for any worker count.
func ComputeVMStatsColumns(c *trace.Columns, det *fftperiod.Detector) ([]VMStat, error) {
	return computeVMStatsColumns(c, det, runtime.GOMAXPROCS(0))
}

func computeVMStatsColumns(c *trace.Columns, det *fftperiod.Detector, workers int) ([]VMStat, error) {
	if c.Len() == 0 {
		return nil, errors.New("charz: empty trace")
	}
	if det == nil {
		det = fftperiod.NewDetector()
	}
	out := make([]VMStat, c.Len())
	if workers < 1 {
		workers = 1
	}
	// Same chunked work-stealing as the row path: 64-VM claims over the
	// global index space, far finer than the 8192-VM storage chunks, so
	// long-lived VMs don't serialize a whole storage chunk on one worker.
	const chunk = 64
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var plan fftperiod.Plan
			var um trace.UtilModel
			var series, maxes []float64
			for {
				lo := int(next.Add(chunk)) - chunk
				if lo >= c.Len() {
					return
				}
				hi := lo + chunk
				if hi > c.Len() {
					hi = c.Len()
				}
				for i := lo; i < hi; i++ {
					ch, base := c.ChunkAt(i / trace.ChunkSize)
					off := i - base
					created := trace.Minutes(ch.Created[off])
					deleted := trace.Minutes(ch.Deleted[off])
					ch.UtilAt(off, &um)
					st := &out[i]
					st.AvgCPU, st.P95MaxCPU, series, maxes =
						trace.SummarizeModel(&um, created, deleted, c.Horizon, series, maxes)
					if deleted != trace.NoEnd {
						st.LifetimeMin = float64(deleted - created)
						st.Completed = true
					}
					st.Class, _ = det.ClassifyWith(&plan, series)
					st.CoreHours = trace.CoreHoursOf(int(ch.Cores[off]), created, deleted, c.Horizon)
				}
			}
		}()
	}
	wg.Wait()
	return out, nil
}

// UtilizationCDFsColumns computes Figure 1 from the columnar trace.
func UtilizationCDFsColumns(c *trace.Columns, vs []VMStat) ([]CDFPair, error) {
	return utilizationCDFs(colSource(c), vs)
}

// CoreBucketsColumns computes Figure 2 from the columnar trace.
func CoreBucketsColumns(c *trace.Columns) *Breakdown {
	return coreBuckets(colSource(c))
}

// MemoryBucketsColumns computes Figure 3 from the columnar trace.
func MemoryBucketsColumns(c *trace.Columns) *Breakdown {
	return memoryBuckets(colSource(c))
}

// DeploymentSizeCDFColumns computes Figure 4 from the columnar trace.
func DeploymentSizeCDFColumns(c *trace.Columns) ([]GroupCDF, error) {
	return deploymentSizeCDF(colSource(c))
}

// LifetimeCDFColumns computes Figure 5 from the columnar trace.
func LifetimeCDFColumns(c *trace.Columns, vs []VMStat) ([]GroupCDF, error) {
	return lifetimeCDF(colSource(c), vs)
}

// WorkloadClassSharesColumns computes Figure 6 from the columnar trace.
func WorkloadClassSharesColumns(c *trace.Columns, vs []VMStat) []ClassShares {
	return workloadClassShares(colSource(c), vs)
}

// ArrivalSeriesColumns computes Figure 7 from the columnar trace.
func ArrivalSeriesColumns(c *trace.Columns, region string) (*ArrivalReport, error) {
	return arrivalSeries(colSource(c), region)
}

// CorrelationsColumns computes Figure 8 from the columnar trace.
func CorrelationsColumns(c *trace.Columns, vs []VMStat) (*CorrelationMatrix, error) {
	return correlationsGroup(colSource(c), vs, All)
}

// CorrelationsGroupColumns computes Figure 8 for one workload group from
// the columnar trace.
func CorrelationsGroupColumns(c *trace.Columns, vs []VMStat, g Group) (*CorrelationMatrix, error) {
	return correlationsGroup(colSource(c), vs, g)
}

// ConsistencyColumns computes the Section 3 per-subscription statistics
// from the columnar trace.
func ConsistencyColumns(c *trace.Columns, vs []VMStat, minVMs int) (*ConsistencyReport, error) {
	return consistency(colSource(c), vs, minVMs)
}
