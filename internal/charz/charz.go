// Package charz is the workload characterization engine: it regenerates
// every distribution of Section 3 (Figures 1-8) from a trace, including
// the per-subscription consistency statistics that motivate Resource
// Central's prediction approach.
package charz

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"resourcecentral/internal/fftperiod"
	"resourcecentral/internal/stats"
	"resourcecentral/internal/trace"
)

// Group selects a workload subset, matching the paper's per-figure
// breakdowns.
type Group int

// Groups.
const (
	All Group = iota
	First
	Third
)

// String implements fmt.Stringer.
func (g Group) String() string {
	switch g {
	case First:
		return "first-party"
	case Third:
		return "third-party"
	default:
		return "all"
	}
}

// Groups lists the three standard breakdowns.
var Groups = []Group{All, First, Third}

func (g Group) match(v *trace.VM) bool {
	switch g {
	case First:
		return v.Party == trace.FirstParty
	case Third:
		return v.Party == trace.ThirdParty
	default:
		return true
	}
}

// VMStat caches the per-VM derived statistics that several figures share.
type VMStat struct {
	AvgCPU    float64
	P95MaxCPU float64
	// LifetimeMin is the lifetime in minutes; Completed is false for VMs
	// censored by the window end.
	LifetimeMin float64
	Completed   bool
	Class       fftperiod.Class
	CoreHours   float64
}

// ComputeVMStats derives the per-VM statistics for the whole trace. It is
// the expensive pass; figure functions accept its output. VMs are
// independent, so the work fans out across GOMAXPROCS workers; the output
// is identical for any worker count (each VM's entry depends only on that
// VM).
func ComputeVMStats(tr *trace.Trace, det *fftperiod.Detector) ([]VMStat, error) {
	return computeVMStats(tr, det, runtime.GOMAXPROCS(0))
}

func computeVMStats(tr *trace.Trace, det *fftperiod.Detector, workers int) ([]VMStat, error) {
	if len(tr.VMs) == 0 {
		return nil, errors.New("charz: empty trace")
	}
	if det == nil {
		det = fftperiod.NewDetector()
	}
	out := make([]VMStat, len(tr.VMs))
	if workers < 1 {
		workers = 1
	}
	// Chunked work-stealing: VM telemetry lengths vary wildly, so static
	// partitioning would leave workers idle behind the long-lived VMs.
	const chunk = 64
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker scratch: the FFT plan and the fused series walk
			// reuse their buffers across every VM this worker claims.
			var plan fftperiod.Plan
			var series, maxes []float64
			for {
				lo := int(next.Add(chunk)) - chunk
				if lo >= len(tr.VMs) {
					return
				}
				hi := lo + chunk
				if hi > len(tr.VMs) {
					hi = len(tr.VMs)
				}
				for i := lo; i < hi; i++ {
					v := &tr.VMs[i]
					st := &out[i]
					st.AvgCPU, st.P95MaxCPU, series, maxes = trace.SummarizeSeries(v, tr.Horizon, series, maxes)
					if life, ok := v.Lifetime(); ok {
						st.LifetimeMin = float64(life)
						st.Completed = true
					}
					st.Class, _ = det.ClassifyWith(&plan, series)
					st.CoreHours = v.CoreHours(tr.Horizon)
				}
			}
		}()
	}
	wg.Wait()
	return out, nil
}

// CDFPair is Figure 1's content for one group: the CDFs of average CPU
// utilization and of the 95th percentile of maximum utilizations.
type CDFPair struct {
	Group Group
	Avg   *stats.CDF
	P95   *stats.CDF
}

// UtilizationCDFs computes Figure 1 for the three groups.
func UtilizationCDFs(tr *trace.Trace, vs []VMStat) ([]CDFPair, error) {
	return utilizationCDFs(rowSource(tr), vs)
}

func utilizationCDFs(src source, vs []VMStat) ([]CDFPair, error) {
	if len(vs) != src.n {
		return nil, fmt.Errorf("charz: %d stats for %d VMs", len(vs), src.n)
	}
	out := make([]CDFPair, 0, len(Groups))
	for _, g := range Groups {
		var avgs, p95s []float64
		src.each(func(i int, v *trace.VM) {
			if g.match(v) {
				avgs = append(avgs, vs[i].AvgCPU)
				p95s = append(p95s, vs[i].P95MaxCPU)
			}
		})
		if len(avgs) == 0 {
			continue
		}
		avgCDF, err := stats.NewCDF(avgs)
		if err != nil {
			return nil, err
		}
		p95CDF, err := stats.NewCDF(p95s)
		if err != nil {
			return nil, err
		}
		out = append(out, CDFPair{Group: g, Avg: avgCDF, P95: p95CDF})
	}
	return out, nil
}

// Breakdown is a categorical share table (Figures 2 and 3): Share[g][k] is
// group g's fraction of VMs in category Labels[k].
type Breakdown struct {
	Labels []string
	Share  map[Group][]float64
}

// CoreBuckets computes Figure 2: virtual core counts per VM.
func CoreBuckets(tr *trace.Trace) *Breakdown {
	return coreBuckets(rowSource(tr))
}

func coreBuckets(src source) *Breakdown {
	cats := []int{1, 2, 4, 8, 16}
	labels := []string{"1", "2", "4", "8", ">=16"}
	b := &Breakdown{Labels: labels, Share: make(map[Group][]float64)}
	for _, g := range Groups {
		counts := make([]float64, len(cats))
		total := 0.0
		src.each(func(i int, v *trace.VM) {
			if !g.match(v) {
				return
			}
			total++
			idx := len(cats) - 1
			for k, c := range cats[:len(cats)-1] {
				if v.Cores <= c {
					idx = k
					break
				}
			}
			counts[idx]++
		})
		if total > 0 {
			for k := range counts {
				counts[k] /= total
			}
		}
		b.Share[g] = counts
	}
	return b
}

// MemoryBuckets computes Figure 3: memory per VM in GBytes.
func MemoryBuckets(tr *trace.Trace) *Breakdown {
	return memoryBuckets(rowSource(tr))
}

func memoryBuckets(src source) *Breakdown {
	bounds := []float64{0.75, 1.75, 3.5, 7, 14, 28}
	labels := []string{"0.75", "1.75", "3.5", "7", "14", "28", ">28"}
	b := &Breakdown{Labels: labels, Share: make(map[Group][]float64)}
	for _, g := range Groups {
		counts := make([]float64, len(bounds)+1)
		total := 0.0
		src.each(func(i int, v *trace.VM) {
			if !g.match(v) {
				return
			}
			total++
			idx := len(bounds)
			for k, m := range bounds {
				if v.MemoryGB <= m {
					idx = k
					break
				}
			}
			counts[idx]++
		})
		if total > 0 {
			for k := range counts {
				counts[k] /= total
			}
		}
		b.Share[g] = counts
	}
	return b
}

// GroupCDF is one group's CDF (Figures 4 and 5).
type GroupCDF struct {
	Group Group
	CDF   *stats.CDF
}

// DeploymentSizeCDF computes Figure 4: the paper redefines a deployment as
// the set of VMs a subscription deploys to one region during one day, then
// takes each deployment's maximum (final) size.
func DeploymentSizeCDF(tr *trace.Trace) ([]GroupCDF, error) {
	return deploymentSizeCDF(rowSource(tr))
}

func deploymentSizeCDF(src source) ([]GroupCDF, error) {
	type key struct {
		sub, region string
		day         int64
	}
	type agg struct {
		count int
		party trace.Party
	}
	groups := make(map[key]*agg)
	src.each(func(i int, v *trace.VM) {
		k := key{sub: v.Subscription, region: v.Region, day: int64(v.Created) / (24 * 60)}
		a := groups[k]
		if a == nil {
			a = &agg{party: v.Party}
			groups[k] = a
		}
		a.count++
	})
	var out []GroupCDF
	for _, g := range Groups {
		var sizes []float64
		for _, a := range groups {
			switch g {
			case First:
				if a.party != trace.FirstParty {
					continue
				}
			case Third:
				if a.party != trace.ThirdParty {
					continue
				}
			}
			//rcvet:allow(stats.NewCDF sorts a copy of its input, so append order is immaterial)
			sizes = append(sizes, float64(a.count))
		}
		if len(sizes) == 0 {
			continue
		}
		cdf, err := stats.NewCDF(sizes)
		if err != nil {
			return nil, err
		}
		out = append(out, GroupCDF{Group: g, CDF: cdf})
	}
	return out, nil
}

// LifetimeCDF computes Figure 5 over VMs that completed in the window.
func LifetimeCDF(tr *trace.Trace, vs []VMStat) ([]GroupCDF, error) {
	return lifetimeCDF(rowSource(tr), vs)
}

func lifetimeCDF(src source, vs []VMStat) ([]GroupCDF, error) {
	var out []GroupCDF
	for _, g := range Groups {
		var lifetimes []float64
		src.each(func(i int, v *trace.VM) {
			if g.match(v) && vs[i].Completed {
				lifetimes = append(lifetimes, vs[i].LifetimeMin)
			}
		})
		if len(lifetimes) == 0 {
			continue
		}
		cdf, err := stats.NewCDF(lifetimes)
		if err != nil {
			return nil, err
		}
		out = append(out, GroupCDF{Group: g, CDF: cdf})
	}
	return out, nil
}

// ClassShares is Figure 6's content for one group: core-hour shares of the
// three classes.
type ClassShares struct {
	Group            Group
	DelayInsensitive float64
	Interactive      float64
	Unknown          float64
}

// WorkloadClassShares computes Figure 6.
func WorkloadClassShares(tr *trace.Trace, vs []VMStat) []ClassShares {
	return workloadClassShares(rowSource(tr), vs)
}

func workloadClassShares(src source, vs []VMStat) []ClassShares {
	out := make([]ClassShares, 0, len(Groups))
	for _, g := range Groups {
		var s ClassShares
		s.Group = g
		total := 0.0
		src.each(func(i int, v *trace.VM) {
			if !g.match(v) {
				return
			}
			ch := vs[i].CoreHours
			total += ch
			switch vs[i].Class {
			case fftperiod.ClassInteractive:
				s.Interactive += ch
			case fftperiod.ClassDelayInsensitive:
				s.DelayInsensitive += ch
			default:
				s.Unknown += ch
			}
		})
		if total > 0 {
			s.Interactive /= total
			s.DelayInsensitive /= total
			s.Unknown /= total
		}
		out = append(out, s)
	}
	return out
}

// ArrivalReport is Figure 7's content: hourly VM arrival counts at one
// region plus the Weibull fit of the deployment inter-arrival gaps.
type ArrivalReport struct {
	Region string
	// Hourly[h] counts VM arrivals in hour h of the window.
	Hourly []int
	// Weibull is fitted to the inter-arrival times of deployment groups.
	Weibull stats.Weibull
	// KS is the Kolmogorov-Smirnov distance of the fit.
	KS float64
}

// ArrivalSeries computes Figure 7 for one region ("" = whole platform).
func ArrivalSeries(tr *trace.Trace, region string) (*ArrivalReport, error) {
	return arrivalSeries(rowSource(tr), region)
}

func arrivalSeries(src source, region string) (*ArrivalReport, error) {
	hours := int(src.horizon / 60)
	if hours == 0 {
		return nil, errors.New("charz: horizon shorter than an hour")
	}
	rep := &ArrivalReport{Region: region, Hourly: make([]int, hours)}
	seen := make(map[string]bool)
	var arrivals []float64
	src.each(func(i int, v *trace.VM) {
		if region != "" && v.Region != region {
			return
		}
		if h := int(v.Created / 60); h < hours {
			rep.Hourly[h]++
		}
		if !seen[v.Deployment] {
			seen[v.Deployment] = true
			arrivals = append(arrivals, float64(v.Created))
		}
	})
	gaps := make([]float64, 0, len(arrivals))
	for i := 1; i < len(arrivals); i++ {
		if d := arrivals[i] - arrivals[i-1]; d > 0 {
			gaps = append(gaps, d)
		}
	}
	if len(gaps) >= 2 {
		w, err := stats.FitWeibull(gaps)
		if err == nil {
			rep.Weibull = w
			rep.KS, _ = stats.KolmogorovSmirnov(gaps, w)
		}
	}
	return rep, nil
}

// CorrelationMatrix computes Figure 8: Spearman correlations between the
// studied metrics over VMs with complete data (completed lifetime and a
// known class; the paper numbers classes 1 and 2).
type CorrelationMatrix struct {
	Names []string
	Rho   [][]float64
}

// Correlations computes the Figure 8 matrix over the whole platform.
func Correlations(tr *trace.Trace, vs []VMStat) (*CorrelationMatrix, error) {
	return CorrelationsGroup(tr, vs, All)
}

// CorrelationsGroup computes the Figure 8 matrix for one workload group
// (the paper notes the correlations differ between first- and third-party
// workloads).
func CorrelationsGroup(tr *trace.Trace, vs []VMStat, g Group) (*CorrelationMatrix, error) {
	return correlationsGroup(rowSource(tr), vs, g)
}

func correlationsGroup(src source, vs []VMStat, g Group) (*CorrelationMatrix, error) {
	// Deployment sizes via the Figure 4 grouping.
	type key struct {
		sub, region string
		day         int64
	}
	sizes := make(map[key]int)
	src.each(func(i int, v *trace.VM) {
		sizes[key{v.Subscription, v.Region, int64(v.Created) / (24 * 60)}]++
	})

	names := []string{"avg util", "p95 util", "cores", "memory", "lifetime", "deploy size", "class"}
	cols := make([][]float64, len(names))
	src.each(func(i int, v *trace.VM) {
		if !g.match(v) || vs[i].Class == fftperiod.ClassUnknown {
			return
		}
		class := 1.0
		if vs[i].Class == fftperiod.ClassInteractive {
			class = 2.0
		}
		// Lifetime uses the observed in-window duration for VMs censored
		// by the window end; rank correlations only need the ordering,
		// and excluding censored VMs would systematically drop the
		// longest-lived (interactive-heavy) population.
		life := vs[i].LifetimeMin
		if !vs[i].Completed {
			end := v.Deleted
			if end > src.horizon {
				end = src.horizon
			}
			life = float64(end - v.Created)
		}
		dep := sizes[key{v.Subscription, v.Region, int64(v.Created) / (24 * 60)}]
		row := []float64{
			vs[i].AvgCPU, vs[i].P95MaxCPU, float64(v.Cores), v.MemoryGB,
			life, float64(dep), class,
		}
		for c, x := range row {
			cols[c] = append(cols[c], x)
		}
	})
	if len(cols[0]) < 2 {
		return nil, errors.New("charz: too few complete VMs for correlations")
	}
	m := &CorrelationMatrix{Names: names, Rho: make([][]float64, len(names))}
	for a := range names {
		m.Rho[a] = make([]float64, len(names))
		for b := range names {
			rho, err := stats.Spearman(cols[a], cols[b])
			if err != nil {
				return nil, err
			}
			m.Rho[a][b] = rho
		}
	}
	return m, nil
}

// ConsistencyReport summarizes the per-subscription perspective: for each
// metric, the fraction of subscriptions (with at least MinVMs VMs) whose
// coefficient of variation is below 1.
type ConsistencyReport struct {
	MinVMs        int
	Subscriptions int
	// CoVBelow1 maps metric name to the fraction of subscriptions with
	// CoV < 1.
	CoVBelow1 map[string]float64
	// SingleType is the fraction of subscriptions whose VMs are all one
	// type (the paper reports 96%).
	SingleType float64
	// SingleClass is the fraction of subscriptions with long-running VMs
	// dominated (>75%) by one workload class (the paper reports 76%).
	SingleClass float64
	// LongRunnerCoreHourShare is the core-hour share of VMs that ran
	// longer than a day (the paper: the relatively few long-running VMs
	// account for >95% of core hours).
	LongRunnerCoreHourShare float64
	// ClassifiedCoreHourShare is the core-hour share of VMs that lived at
	// least 3 days and therefore have a workload class (the paper: 94%).
	ClassifiedCoreHourShare float64
}

// Consistency computes the per-subscription statistics quoted throughout
// Section 3.
func Consistency(tr *trace.Trace, vs []VMStat, minVMs int) (*ConsistencyReport, error) {
	return consistency(rowSource(tr), vs, minVMs)
}

func consistency(src source, vs []VMStat, minVMs int) (*ConsistencyReport, error) {
	if minVMs < 2 {
		minVMs = 2
	}
	type acc struct {
		avg, p95, cores, mem, lifetimes []float64
		types                           map[trace.VMType]bool
		classCounts                     [3]int
	}
	subs := make(map[string]*acc)
	src.each(func(i int, v *trace.VM) {
		a := subs[v.Subscription]
		if a == nil {
			a = &acc{types: make(map[trace.VMType]bool)}
			subs[v.Subscription] = a
		}
		a.avg = append(a.avg, vs[i].AvgCPU)
		a.p95 = append(a.p95, vs[i].P95MaxCPU)
		a.cores = append(a.cores, float64(v.Cores))
		a.mem = append(a.mem, v.MemoryGB)
		if vs[i].Completed {
			a.lifetimes = append(a.lifetimes, vs[i].LifetimeMin)
		}
		a.types[v.Type] = true
		a.classCounts[int(vs[i].Class)]++
	})

	rep := &ConsistencyReport{
		MinVMs:    minVMs,
		CoVBelow1: make(map[string]float64),
	}
	counts := map[string][2]int{} // metric → {below-1, eligible}
	singleType, singleClass, classEligible := 0, 0, 0
	for _, a := range subs {
		if len(a.avg) >= minVMs {
			rep.Subscriptions++
		}
		if len(a.types) == 1 {
			singleType++
		}
		// Single-class dominance among classified VMs.
		classified := a.classCounts[int(fftperiod.ClassDelayInsensitive)] +
			a.classCounts[int(fftperiod.ClassInteractive)]
		if classified > 0 {
			classEligible++
			for _, c := range []fftperiod.Class{fftperiod.ClassDelayInsensitive, fftperiod.ClassInteractive} {
				if float64(a.classCounts[int(c)]) > 0.75*float64(classified) {
					singleClass++
					break
				}
			}
		}
		for name, xs := range map[string][]float64{
			"avg util": a.avg, "p95 util": a.p95, "cores": a.cores,
			"memory": a.mem, "lifetime": a.lifetimes,
		} {
			if len(xs) < minVMs {
				continue
			}
			cv, err := stats.CoV(xs)
			if err != nil {
				return nil, err
			}
			c := counts[name]
			c[1]++
			if cv < 1 {
				c[0]++
			}
			counts[name] = c
		}
	}
	for name, c := range counts {
		if c[1] > 0 {
			rep.CoVBelow1[name] = float64(c[0]) / float64(c[1])
		}
	}
	rep.SingleType = float64(singleType) / float64(len(subs))
	if classEligible > 0 {
		rep.SingleClass = float64(singleClass) / float64(classEligible)
	}

	var longCH, classifiedCH, totalCH float64
	src.each(func(i int, v *trace.VM) {
		ch := vs[i].CoreHours
		totalCH += ch
		end := v.Deleted
		if end > src.horizon {
			end = src.horizon
		}
		if end-v.Created > 1440 {
			longCH += ch
		}
		if vs[i].Class != fftperiod.ClassUnknown {
			classifiedCH += ch
		}
	})
	if totalCH > 0 {
		rep.LongRunnerCoreHourShare = longCH / totalCH
		rep.ClassifiedCoreHourShare = classifiedCH / totalCH
	}
	return rep, nil
}
