package charz

import (
	"fmt"
	"reflect"
	"testing"
)

// TestComputeVMStatsDeterministic proves the parallel statistics pass is
// identical for any worker count: each VMStat depends only on its VM, so
// scheduling must never change the output.
func TestComputeVMStatsDeterministic(t *testing.T) {
	tr, _ := fixture(t)
	want, err := computeVMStats(tr, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 64, -1} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			got, err := computeVMStats(tr, nil, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("vm %d: %+v != %+v", i, got[i], want[i])
					}
				}
				t.Fatal("stats diverge")
			}
		})
	}
}
