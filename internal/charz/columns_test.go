package charz

import (
	"fmt"
	"reflect"
	"testing"

	"resourcecentral/internal/trace"
)

// TestColumnsStatsEquivalence proves the columnar statistics pass is
// bit-identical to the row path: both share the SummarizeModel and
// CoreHoursOf kernels, so every float is computed by the same
// operations in the same order.
func TestColumnsStatsEquivalence(t *testing.T) {
	tr, want := fixture(t)
	cols := trace.FromTrace(tr)
	for _, workers := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			got, err := computeVMStatsColumns(cols, nil, workers)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("len = %d, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("vm %d: %+v != %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestColumnsFiguresEquivalence proves every figure walk produces
// deep-equal output from the two representations.
func TestColumnsFiguresEquivalence(t *testing.T) {
	tr, vs := fixture(t)
	cols := trace.FromTrace(tr)

	check := func(name string, row, col any, rowErr, colErr error) {
		t.Helper()
		if rowErr != nil || colErr != nil {
			t.Fatalf("%s: errors row=%v col=%v", name, rowErr, colErr)
		}
		if !reflect.DeepEqual(row, col) {
			t.Errorf("%s: columnar output diverges from row output", name)
		}
	}

	rowCDF, err1 := UtilizationCDFs(tr, vs)
	colCDF, err2 := UtilizationCDFsColumns(cols, vs)
	check("UtilizationCDFs", rowCDF, colCDF, err1, err2)

	check("CoreBuckets", CoreBuckets(tr), CoreBucketsColumns(cols), nil, nil)
	check("MemoryBuckets", MemoryBuckets(tr), MemoryBucketsColumns(cols), nil, nil)

	rowDep, err1 := DeploymentSizeCDF(tr)
	colDep, err2 := DeploymentSizeCDFColumns(cols)
	check("DeploymentSizeCDF", rowDep, colDep, err1, err2)

	rowLife, err1 := LifetimeCDF(tr, vs)
	colLife, err2 := LifetimeCDFColumns(cols, vs)
	check("LifetimeCDF", rowLife, colLife, err1, err2)

	check("WorkloadClassShares", WorkloadClassShares(tr, vs), WorkloadClassSharesColumns(cols, vs), nil, nil)

	rowArr, err1 := ArrivalSeries(tr, "")
	colArr, err2 := ArrivalSeriesColumns(cols, "")
	check("ArrivalSeries", rowArr, colArr, err1, err2)

	for _, g := range Groups {
		rowCorr, err1 := CorrelationsGroup(tr, vs, g)
		colCorr, err2 := CorrelationsGroupColumns(cols, vs, g)
		check(fmt.Sprintf("Correlations/%s", g), rowCorr, colCorr, err1, err2)
	}

	rowCons, err1 := Consistency(tr, vs, 5)
	colCons, err2 := ConsistencyColumns(cols, vs, 5)
	check("Consistency", rowCons, colCons, err1, err2)
}

func TestComputeVMStatsColumnsEmpty(t *testing.T) {
	if _, err := ComputeVMStatsColumns(trace.NewColumns(100), nil); err == nil {
		t.Error("expected error on empty trace")
	}
}
