package health

import (
	"sync"
	"testing"

	"resourcecentral/internal/core"
	"resourcecentral/internal/pipeline"
	"resourcecentral/internal/store"
	"resourcecentral/internal/synth"
	"resourcecentral/internal/trace"
)

var (
	once   sync.Once
	client *core.Client
	tra    *trace.Trace
	feats  map[string]bool
	setupE error
)

func setup(t *testing.T) (*core.Client, *trace.Trace) {
	t.Helper()
	once.Do(func() {
		cfg := synth.DefaultConfig()
		cfg.Days = 10
		cfg.TargetVMs = 3000
		cfg.MaxDeploymentVMs = 150
		cfg.Seed = 17
		wl, err := synth.Generate(cfg)
		if err != nil {
			setupE = err
			return
		}
		tra = wl.Trace
		res, err := pipeline.Run(tra, pipeline.Config{
			TrainCutoff: tra.Horizon * 2 / 3,
			ForestTrees: 8, GBTRounds: 10, Seed: 1,
		})
		if err != nil {
			setupE = err
			return
		}
		feats = make(map[string]bool, len(res.Features))
		for sub := range res.Features {
			feats[sub] = true
		}
		st := store.New()
		if err := pipeline.Publish(st, res); err != nil {
			setupE = err
			return
		}
		client, err = core.New(core.Config{Store: st, Mode: core.Push})
		if err != nil {
			setupE = err
			return
		}
		setupE = client.Initialize()
	})
	if setupE != nil {
		t.Fatal(setupE)
	}
	return client, tra
}

// serverVMs picks VMs alive at `now` from subscriptions with feature data.
func serverVMs(t *testing.T, tr *trace.Trace, now trace.Minutes, n int) []*trace.VM {
	t.Helper()
	var out []*trace.VM
	for i := range tr.VMs {
		v := &tr.VMs[i]
		if v.AliveAt(now) && feats[v.Subscription] {
			out = append(out, v)
		}
		if len(out) == n {
			break
		}
	}
	if len(out) == 0 {
		t.Fatal("no live VMs found")
	}
	return out
}

func TestPlannerValidation(t *testing.T) {
	p := &Planner{}
	if _, err := p.Plan(0, []*trace.VM{{}}); err == nil {
		t.Error("expected error for nil client")
	}
	c, _ := setup(t)
	p = &Planner{Client: c}
	if _, err := p.Plan(0, nil); err == nil {
		t.Error("expected error for empty VM list")
	}
}

func TestPlanCoversEveryVM(t *testing.T) {
	c, tr := setup(t)
	now := tr.Horizon * 2 / 3
	vms := serverVMs(t, tr, now, 10)
	p := &Planner{Client: c}
	plan, err := p.Plan(now, vms)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Decisions) != len(vms) {
		t.Fatalf("decisions = %d, want %d", len(plan.Decisions), len(vms))
	}
	migrations := 0
	for _, d := range plan.Decisions {
		if d.Migrate {
			migrations++
		} else {
			if !d.Predicted {
				t.Errorf("vm %d drains without a prediction", d.VMID)
			}
			if d.ExpectedEnd <= now || d.ExpectedEnd > now+24*60 {
				t.Errorf("vm %d drain end %d outside (now, now+24h]", d.VMID, d.ExpectedEnd)
			}
			if d.ExpectedEnd > plan.DrainBy {
				t.Errorf("DrainBy %d below a drain decision %d", plan.DrainBy, d.ExpectedEnd)
			}
		}
	}
	if migrations != plan.Migrations {
		t.Errorf("migrations = %d, plan says %d", migrations, plan.Migrations)
	}
	if plan.WaitForDrain != (plan.Migrations == 0) {
		t.Error("WaitForDrain inconsistent with Migrations")
	}
}

func TestPlanConservativeOnUnknownSubscription(t *testing.T) {
	c, tr := setup(t)
	now := tr.Horizon * 2 / 3
	vm := *serverVMs(t, tr, now, 1)[0]
	vm.Subscription = "sub-nobody-knows"
	p := &Planner{Client: c}
	plan, err := p.Plan(now, []*trace.VM{&vm})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Decisions[0].Migrate {
		t.Error("no-prediction VM must be migrated, not drained")
	}
	if plan.WaitForDrain {
		t.Error("plan with migrations cannot wait for drain")
	}
}

func TestPlanShortDeadlineForcesMigration(t *testing.T) {
	c, tr := setup(t)
	now := tr.Horizon * 2 / 3
	vms := serverVMs(t, tr, now, 8)
	// A deadline of one minute cannot be met by any bucket except VMs
	// whose predicted end is within a minute — effectively none.
	p := &Planner{Client: c, Deadline: 1}
	plan, err := p.Plan(now, vms)
	if err != nil {
		t.Fatal(err)
	}
	relaxed := &Planner{Client: c, Deadline: 40 * 24 * 60}
	relaxedPlan, err := relaxed.Plan(now, vms)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Migrations < relaxedPlan.Migrations {
		t.Errorf("tighter deadline yielded fewer migrations: %d vs %d",
			plan.Migrations, relaxedPlan.Migrations)
	}
}

func TestPlanOutlivedPredictionMigrates(t *testing.T) {
	c, tr := setup(t)
	now := tr.Horizon * 2 / 3
	vm := *serverVMs(t, tr, now, 1)[0]
	// Pretend the VM was created long ago: whatever bucket is predicted,
	// its upper bound is already exceeded.
	vm.Created = 0
	p := &Planner{Client: c}
	plan, err := p.Plan(60*24*60, []*trace.VM{&vm})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Decisions[0].Migrate {
		t.Error("VM that outlived its predicted bucket must be migrated")
	}
}
