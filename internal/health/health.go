// Package health implements the server-maintenance use-case of
// Section 4.1: when a server misbehaves, the health management system
// queries Resource Central for the expected lifetimes of the VMs on the
// server and decides whether maintenance can wait for a natural drain or
// which VMs must be live-migrated.
package health

import (
	"errors"
	"fmt"

	"resourcecentral/internal/core"
	"resourcecentral/internal/metric"
	"resourcecentral/internal/model"
	"resourcecentral/internal/trace"
)

// Planner turns lifetime predictions into maintenance decisions.
type Planner struct {
	// Client serves the lifetime predictions. Required.
	Client *core.Client
	// Confidence is the minimum prediction score to act on (0 = 0.6);
	// below it the planner conservatively assumes the VM stays.
	Confidence float64
	// Deadline is how long the planner may wait for a drain before
	// falling back to live migration (0 = 24h).
	Deadline trace.Minutes
}

// Decision is the verdict for one VM.
type Decision struct {
	VMID int64
	// Predicted is true when a confident lifetime prediction was
	// available.
	Predicted bool
	// Bucket is the predicted lifetime bucket (valid when Predicted).
	Bucket int
	// ExpectedEnd is the latest time the VM is expected to terminate
	// (creation time plus the bucket's upper bound).
	ExpectedEnd trace.Minutes
	// Migrate is true when the VM must be live-migrated to meet the
	// deadline.
	Migrate bool
}

// Plan is the maintenance schedule for one server.
type Plan struct {
	Decisions []Decision
	// Migrations counts the VMs that need live migration.
	Migrations int
	// DrainBy is the latest expected termination among VMs that are
	// allowed to drain naturally.
	DrainBy trace.Minutes
	// WaitForDrain is true when no migration is needed: maintenance can
	// be scheduled at DrainBy with zero VM downtime.
	WaitForDrain bool
}

// Plan evaluates the VMs currently on a server at time now.
func (p *Planner) Plan(now trace.Minutes, vms []*trace.VM) (*Plan, error) {
	if p.Client == nil {
		return nil, errors.New("health: Planner.Client is required")
	}
	if len(vms) == 0 {
		return nil, errors.New("health: no VMs to plan for")
	}
	confidence := p.Confidence
	if confidence == 0 {
		confidence = 0.6
	}
	deadline := p.Deadline
	if deadline == 0 {
		deadline = 24 * 60
	}

	plan := &Plan{Decisions: make([]Decision, 0, len(vms))}
	for _, v := range vms {
		d := Decision{VMID: v.ID}
		in := model.FromVM(v, 1)
		pred, err := p.Client.PredictSingle(metric.Lifetime.String(), &in)
		if err != nil {
			return nil, fmt.Errorf("health: vm %d: %w", v.ID, err)
		}
		switch {
		case !pred.OK || pred.Score < confidence:
			// No usable prediction: conservatively assume the VM stays
			// (the paper's no-prediction handling).
			d.Migrate = true
		default:
			d.Predicted = true
			d.Bucket = pred.Bucket
			d.ExpectedEnd = v.Created + trace.Minutes(metric.Lifetime.BucketHigh(pred.Bucket))
			if d.ExpectedEnd <= now {
				// The VM already outlived its predicted bucket; the
				// prediction is known-wrong, so assume it stays.
				d.Migrate = true
			} else if d.ExpectedEnd > now+deadline {
				d.Migrate = true
			}
		}
		if d.Migrate {
			plan.Migrations++
		} else if d.ExpectedEnd > plan.DrainBy {
			plan.DrainBy = d.ExpectedEnd
		}
		plan.Decisions = append(plan.Decisions, d)
	}
	plan.WaitForDrain = plan.Migrations == 0
	return plan, nil
}
