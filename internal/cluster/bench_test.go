package cluster

import (
	"fmt"
	"testing"
)

// BenchmarkSchedule drives the seed-equivalence workload through linear
// and indexed candidate selection at growing fleet sizes. The linear
// scan's per-arrival cost grows with the fleet; the indexed scheduler
// visits only servers that can host the request.
func BenchmarkSchedule(b *testing.B) {
	for _, servers := range []int{250, 1000, 4000} {
		for _, impl := range []struct {
			name   string
			linear bool
		}{{"linear", true}, {"indexed", false}} {
			b.Run(fmt.Sprintf("impl=%s/servers=%d", impl.name, servers), func(b *testing.B) {
				ops := genWorkload(3, 4000)
				cfg := Config{
					Servers: servers, CoresPerServer: 16, MemGBPerServer: 112,
					FaultDomains: 10, Policy: RCSoft,
					MaxOversub: 1.25, MaxUtil: 1.0,
					forceLinear: impl.linear,
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c, err := New(cfg)
					if err != nil {
						b.Fatal(err)
					}
					var live []*Request
					for _, o := range ops {
						if o.complete {
							if len(live) == 0 {
								continue
							}
							idx := o.liveIdx % len(live)
							req := live[idx]
							live = append(live[:idx], live[idx+1:]...)
							if _, err := c.VMCompleted(req); err != nil {
								b.Fatal(err)
							}
							continue
						}
						req := o.req
						if s, ok := c.Schedule(&req); ok && s != nil {
							live = append(live, &req)
						}
					}
				}
			})
		}
	}
}
