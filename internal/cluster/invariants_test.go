package cluster

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"resourcecentral/internal/trace"
)

// checkInvariants verifies the cluster's global bookkeeping invariants.
func checkInvariants(t *testing.T, c *Cluster, live map[int64]*Request) {
	t.Helper()
	var allocCores int
	var allocMem float64
	vms := 0
	for _, s := range c.Servers {
		if s.AllocCores < 0 || s.AllocMemGB < -1e-9 || s.VMCount() < 0 {
			t.Fatalf("server %d has negative accounting: %+v", s.ID, s)
		}
		if s.AllocMemGB > s.MemoryGB+1e-9 {
			t.Fatalf("server %d memory over capacity: %v > %v", s.ID, s.AllocMemGB, s.MemoryGB)
		}
		if float64(s.AllocCores) > c.Config().MaxOversub*float64(s.Cores)+1e-9 {
			t.Fatalf("server %d cores beyond oversubscription cap: %d", s.ID, s.AllocCores)
		}
		if s.Kind == NonOversubscribable && s.AllocCores > s.Cores {
			t.Fatalf("non-oversubscribable server %d oversubscribed: %d > %d",
				s.ID, s.AllocCores, s.Cores)
		}
		if s.Empty() && s.Kind != Empty {
			t.Fatalf("empty server %d still tagged %v", s.ID, s.Kind)
		}
		if s.PredUtilCores < 0 {
			t.Fatalf("server %d negative predicted utilization", s.ID)
		}
		allocCores += s.AllocCores
		allocMem += s.AllocMemGB
		vms += s.VMCount()
	}
	var wantCores int
	var wantMem float64
	for _, req := range live {
		wantCores += req.VM.Cores
		wantMem += req.VM.MemoryGB
	}
	if allocCores != wantCores || vms != len(live) {
		t.Fatalf("global accounting: %d cores / %d vms, want %d / %d",
			allocCores, vms, wantCores, len(live))
	}
	if diff := allocMem - wantMem; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("global memory accounting off by %v", diff)
	}
	checkIndex(t, c)
}

// checkIndex audits the free-capacity index against the fleet: every
// non-empty server sits in exactly the (Kind, AllocCores) bucket matching
// its state at the recorded position, and every empty server is reachable
// through its fault domain's heap. The audit runs after every operation in
// the randomized workloads, so any PlaceVM/VMCompleted path that forgets a
// reindex fails immediately.
func checkIndex(t *testing.T, c *Cluster) {
	t.Helper()
	seen := make(map[int]bool, len(c.Servers))
	for slot := range c.index.byAlloc {
		for alloc, bucket := range c.index.byAlloc[slot] {
			for pos, s := range bucket {
				if seen[s.ID] {
					t.Fatalf("server %d indexed twice", s.ID)
				}
				seen[s.ID] = true
				if s.Kind == Empty {
					t.Fatalf("empty server %d in alloc bucket (%d, %d)", s.ID, slot, alloc)
				}
				if kindSlot(s.Kind) != slot || s.AllocCores != alloc {
					t.Fatalf("server %d (kind %v, alloc %d) filed under (%d, %d)",
						s.ID, s.Kind, s.AllocCores, slot, alloc)
				}
				if s.bucketPos != pos {
					t.Fatalf("server %d bucketPos %d, actually at %d", s.ID, s.bucketPos, pos)
				}
			}
		}
	}
	// Heap entries may be stale (lazily discarded), but every live empty
	// server must appear in its own domain's heap exactly as many times as
	// needed to be found — at least once.
	inHeap := make(map[int]bool)
	for d, h := range c.index.emptyByDomain {
		for i, id := range h {
			s := c.index.servers[id]
			if s.FaultDomain != d {
				t.Fatalf("server %d (domain %d) in domain %d heap", id, s.FaultDomain, d)
			}
			if i > 0 && h[(i-1)/2] > id {
				t.Fatalf("domain %d heap violates min order at %d: %v", d, i, h)
			}
			inHeap[id] = true
		}
	}
	for _, s := range c.Servers {
		switch {
		case s.Kind == Empty:
			if !inHeap[s.ID] {
				t.Fatalf("empty server %d unreachable from domain %d heap", s.ID, s.FaultDomain)
			}
			if seen[s.ID] {
				t.Fatalf("empty server %d also in an alloc bucket", s.ID)
			}
		case !seen[s.ID]:
			t.Fatalf("non-empty server %d missing from the index", s.ID)
		}
	}
}

// TestQuickClusterInvariants drives random place/complete sequences under
// every policy and checks the bookkeeping invariants throughout.
func TestQuickClusterInvariants(t *testing.T) {
	f := func(seed uint64, policyRaw uint8) bool {
		r := rand.New(rand.NewPCG(seed, 77))
		policy := Policy(policyRaw % 4)
		c, err := New(Config{
			Servers: 6, CoresPerServer: 16, MemGBPerServer: 112,
			Policy: policy, MaxOversub: 1.25, MaxUtil: 1.0,
			LifetimeAware: seed%2 == 0,
		})
		if err != nil {
			return false
		}
		live := make(map[int64]*Request)
		var id int64
		for step := 0; step < 300; step++ {
			if r.Float64() < 0.6 || len(live) == 0 {
				id++
				cores := []int{1, 1, 2, 2, 4, 8}[r.IntN(6)]
				req := &Request{
					VM: &trace.VM{
						ID: id, Cores: cores, MemoryGB: float64(cores) * 1.75,
					},
					Production:    r.Float64() < 0.7,
					PredUtilCores: float64(cores) * r.Float64(),
					Deployment:    []string{"a", "b", "c"}[r.IntN(3)],
				}
				if r.Float64() < 0.5 {
					req.PredEndTime = trace.Minutes(r.IntN(10000))
				}
				if _, ok := c.Schedule(req); ok {
					live[id] = req
				}
			} else {
				// Complete a random live VM.
				for vid, req := range live {
					if _, err := c.VMCompleted(req); err != nil {
						t.Logf("completion failed: %v", err)
						return false
					}
					delete(live, vid)
					break
				}
			}
			checkInvariants(t, c, live)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickProductionIsolation: under the RC policies, production VMs
// never share a server with oversubscribed (non-production) VMs.
func TestQuickProductionIsolation(t *testing.T) {
	f := func(seed uint64, hard bool) bool {
		r := rand.New(rand.NewPCG(seed, 99))
		policy := RCSoft
		if hard {
			policy = RCHard
		}
		c, err := New(Config{
			Servers: 5, CoresPerServer: 16, MemGBPerServer: 112,
			Policy: policy, MaxOversub: 1.25, MaxUtil: 1.0,
		})
		if err != nil {
			return false
		}
		// serverHas[production][serverID]
		serverHas := map[bool]map[int]bool{true: {}, false: {}}
		var id int64
		for step := 0; step < 200; step++ {
			id++
			prod := r.Float64() < 0.5
			req := &Request{
				VM:            &trace.VM{ID: id, Cores: 1 + r.IntN(4), MemoryGB: 3.5},
				Production:    prod,
				PredUtilCores: 0.5,
				Deployment:    "d",
			}
			if s, ok := c.Schedule(req); ok {
				serverHas[prod][s.ID] = true
				if serverHas[true][s.ID] && serverHas[false][s.ID] {
					t.Logf("server %d mixed production and non-production", s.ID)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
