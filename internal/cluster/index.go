// Server pools indexed by kind and free capacity, so candidate selection
// touches only servers that can actually host the request instead of
// scanning the whole fleet per arrival.
//
// Two structures cover the scheduler's queries:
//
//   - Non-empty servers live in per-kind bucket lists keyed by AllocCores.
//     A request's core-fit check depends only on AllocCores (server shapes
//     are uniform within a cluster), so eligible servers are exactly the
//     buckets below the request's allocation threshold; full servers are
//     never visited.
//   - Empty servers are interchangeable except for their fault domain (the
//     spreading rule) and their ID (the packing tie-break), so the index
//     keeps one lazy min-heap of empty-server IDs per fault domain and
//     candidate selection emits at most one representative — the lowest ID
//     empty server — per domain. Every scheduling rule treats empty
//     servers identically (no allocation, no predicted utilization, no
//     mean predicted end time), so the representative's fate is the fate
//     of every empty server in its domain, and the chosen placement is
//     provably identical to scanning them all (see the seed-equivalence
//     tests).
//
// Index maintenance is O(1) per placement/completion; selection cost is
// proportional to the number of eligible servers plus the number of fault
// domains, independent of fleet size.
package cluster

// kindSlot maps a non-empty Kind to its byAlloc slot.
func kindSlot(k Kind) int {
	if k == Oversubscribable {
		return 0
	}
	return 1
}

// serverIndex is the cluster's free-capacity index.
type serverIndex struct {
	// byAlloc[kindSlot(kind)][alloc] lists the non-empty servers of that
	// kind with AllocCores == alloc. Servers track their position for
	// O(1) swap-removal.
	byAlloc [2][][]*Server
	// emptyByDomain[d] is a min-heap of server IDs that were empty when
	// pushed. Entries are lazily discarded at peek time once the server
	// is no longer empty, so pushes and placements never search the heap.
	emptyByDomain [][]int
	// servers resolves heap entries (IDs) back to servers.
	servers []*Server
}

// init indexes an all-empty fleet.
func (ix *serverIndex) init(servers []*Server, domains, maxAlloc int) {
	for i := range ix.byAlloc {
		ix.byAlloc[i] = make([][]*Server, maxAlloc+1)
	}
	ix.servers = servers
	ix.emptyByDomain = make([][]int, domains)
	// Server IDs ascend, so each per-domain slice is already a valid
	// min-heap.
	for _, s := range servers {
		ix.emptyByDomain[s.FaultDomain] = append(ix.emptyByDomain[s.FaultDomain], s.ID)
	}
}

// add registers a non-empty server under its current (Kind, AllocCores).
func (ix *serverIndex) add(s *Server) {
	buckets := &ix.byAlloc[kindSlot(s.Kind)]
	for len(*buckets) <= s.AllocCores {
		*buckets = append(*buckets, nil)
	}
	lst := (*buckets)[s.AllocCores]
	s.bucketPos = len(lst)
	(*buckets)[s.AllocCores] = append(lst, s)
}

// remove deregisters a server from the non-empty bucket it occupied under
// (kind, alloc) — the values captured before the bookkeeping mutation.
func (ix *serverIndex) remove(s *Server, kind Kind, alloc int) {
	lst := ix.byAlloc[kindSlot(kind)][alloc]
	last := len(lst) - 1
	moved := lst[last]
	lst[s.bucketPos] = moved
	moved.bucketPos = s.bucketPos
	ix.byAlloc[kindSlot(kind)][alloc] = lst[:last]
}

// pushEmpty records that the server just became empty.
func (ix *serverIndex) pushEmpty(s *Server) {
	h := ix.emptyByDomain[s.FaultDomain]
	h = append(h, s.ID)
	// Sift up.
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent] <= h[i] {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	ix.emptyByDomain[s.FaultDomain] = h
}

// peekEmpty returns the lowest-ID empty server in the fault domain, or
// nil when the domain has none. Stale heap entries (servers that have
// since been placed on) are discarded on the way.
func (ix *serverIndex) peekEmpty(domain int) *Server {
	h := ix.emptyByDomain[domain]
	for len(h) > 0 {
		s := ix.servers[h[0]]
		if s.Kind == Empty {
			ix.emptyByDomain[domain] = h
			return s
		}
		// Pop the stale minimum: move the last entry to the root and
		// sift down.
		last := len(h) - 1
		h[0] = h[last]
		h = h[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			smallest := i
			if l < len(h) && h[l] < h[smallest] {
				smallest = l
			}
			if r < len(h) && h[r] < h[smallest] {
				smallest = r
			}
			if smallest == i {
				break
			}
			h[i], h[smallest] = h[smallest], h[i]
			i = smallest
		}
	}
	ix.emptyByDomain[domain] = h
	return nil
}

// reindex moves a server whose (Kind, AllocCores) key changed from
// (oldKind, oldAlloc) to its current values. Empty servers live in the
// domain heaps, not the alloc buckets.
func (ix *serverIndex) reindex(s *Server, oldKind Kind, oldAlloc int) {
	if oldKind == s.Kind && oldAlloc == s.AllocCores {
		return
	}
	if oldKind != Empty {
		ix.remove(s, oldKind, oldAlloc)
	}
	if s.Kind == Empty {
		ix.pushEmpty(s)
	} else {
		ix.add(s)
	}
}
