// Package cluster models an Azure-style server cluster and the rule-chain
// VM scheduler of Section 5, including the CPU-oversubscription rule of
// Algorithm 1 in both its hard and soft variants, with the bookkeeping
// functions PlaceVM and VMCompleted.
package cluster

import (
	"errors"
	"fmt"

	"resourcecentral/internal/trace"
)

// Kind tags a server's oversubscription group (Algorithm 1 logically
// splits servers into oversubscribable and non-oversubscribable; empty
// servers are untagged until their first placement).
type Kind int

// Server kinds.
const (
	Empty Kind = iota
	Oversubscribable
	NonOversubscribable
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Oversubscribable:
		return "oversubscribable"
	case NonOversubscribable:
		return "non-oversubscribable"
	default:
		return "empty"
	}
}

// Server is one physical server's scheduler-visible state.
type Server struct {
	ID          int
	FaultDomain int
	Cores       int
	MemoryGB    float64

	Kind Kind
	// AllocCores is the sum of placed VMs' core allocations (V.alloc).
	AllocCores int
	// AllocMemGB is the sum of placed VMs' memory allocations.
	AllocMemGB float64
	// PredUtilCores is the sum of placed VMs' predicted 95th-percentile
	// utilizations in core units (c.util in Algorithm 1); only maintained
	// on oversubscribable servers.
	PredUtilCores float64

	vmCount int
	// sumPredEnd accumulates placed VMs' predicted completion times (for
	// the lifetime-aware co-location rule); predEndCount tracks how many
	// carried a prediction.
	sumPredEnd   float64
	predEndCount int
	// bucketPos is the server's position in its serverIndex bucket, for
	// O(1) removal.
	bucketPos int
}

// MeanPredEnd returns the mean predicted completion time of the VMs on
// the server, and ok=false when none carried a prediction.
func (s *Server) MeanPredEnd() (trace.Minutes, bool) {
	if s.predEndCount == 0 {
		return 0, false
	}
	return trace.Minutes(s.sumPredEnd / float64(s.predEndCount)), true
}

// Empty reports whether no VM is placed (c.alloc == 0 in Algorithm 1).
func (s *Server) Empty() bool { return s.AllocCores == 0 && s.vmCount == 0 }

// VMCount returns the number of VMs currently placed.
func (s *Server) VMCount() int { return s.vmCount }

// Request is one VM placement request with its prediction-derived
// utilization estimate.
type Request struct {
	VM *trace.VM
	// Production mirrors the prod/non-prod annotation (V.type in
	// Algorithm 1); only non-production VMs oversubscribe.
	Production bool
	// PredUtilCores is the VM's estimated 95th-percentile utilization in
	// core units (V.util = Highest_Util_in_Bucket[pred] * V.alloc); for a
	// low-confidence or missing prediction the caller must set it to the
	// full allocation.
	PredUtilCores float64
	// Deployment is used by the spreading rule.
	Deployment string
	// PredEndTime is the predicted completion time (creation time plus
	// the predicted lifetime bucket's upper bound); zero means no
	// prediction. Used only when the cluster's lifetime-aware co-location
	// rule is enabled.
	PredEndTime trace.Minutes
}

// Policy selects the scheduler variant compared in Section 6.2.
type Policy int

// Policies.
const (
	// Baseline: no oversubscription, no production/non-production
	// distinction.
	Baseline Policy = iota
	// Naive: CPU oversubscription up to MaxOversub but no utilization
	// check (no predictions).
	Naive
	// RCHard: Algorithm 1 as a hard rule — the utilization check can
	// cause scheduling failures.
	RCHard
	// RCSoft: the utilization check is best-effort; if it would eliminate
	// every server that has the resources, it is disregarded.
	RCSoft
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Baseline:
		return "baseline"
	case Naive:
		return "naive"
	case RCHard:
		return "rc-informed-hard"
	case RCSoft:
		return "rc-informed-soft"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config parameterizes the cluster and scheduler.
type Config struct {
	Servers        int
	CoresPerServer int
	MemGBPerServer float64
	FaultDomains   int
	Policy         Policy
	// MaxOversub is the allowed virtual-to-physical core ratio on
	// oversubscribable servers (the paper's default is 1.25).
	MaxOversub float64
	// MaxUtil is the target maximum physical utilization as a fraction of
	// capacity (the paper's default is 1.0).
	MaxUtil float64
	// LifetimeAware enables the Section 4.1 co-location extension: a soft
	// rule that prefers servers whose VMs are predicted to terminate
	// around the same time as the new VM, so servers drain completely and
	// maintenance needs no live migration.
	LifetimeAware bool
	// RuleHook, when set, is called once per rule evaluation in the
	// scheduling chain ("admission", "spread", "lifetime", "packing") so
	// callers can count rule activity without the cluster depending on a
	// metrics package. It runs synchronously on the scheduling path.
	RuleHook func(rule string)
	// forceLinear disables the free-capacity index and selects candidates
	// by scanning every server, as the original implementation did. It
	// exists for the seed-equivalence tests and before/after benchmarks.
	forceLinear bool
}

// Cluster is the scheduler plus its server fleet.
type Cluster struct {
	cfg     Config
	Servers []*Server
	// placement remembers which server each VM landed on.
	placement map[int64]*Server
	// deployDomains counts VMs per (deployment, fault domain) for the
	// spreading rule. Entries are removed (and their slices recycled via
	// domainsFree) once a deployment fully drains, so the map is sized by
	// concurrent deployments, not every deployment the cluster ever saw —
	// on a month-scale trace the difference is the dominant allocation.
	deployDomains map[string][]int
	// domainsFree holds drained (all-zero) domain-count slices for reuse.
	domainsFree [][]int
	// index is the free-capacity server index behind selectCandidates.
	index serverIndex
	// candScratch, allocScratch and lifeScratch are reusable candidate
	// buffers so steady-state scheduling allocates nothing. They are only
	// valid within one Schedule call.
	candScratch  []*Server
	allocScratch []*Server
	lifeScratch  []*Server
}

// New builds an idle cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Servers <= 0 || cfg.CoresPerServer <= 0 || cfg.MemGBPerServer <= 0 {
		return nil, fmt.Errorf("cluster: invalid shape %d x %d cores x %v GB",
			cfg.Servers, cfg.CoresPerServer, cfg.MemGBPerServer)
	}
	if cfg.FaultDomains <= 0 {
		cfg.FaultDomains = 5
	}
	if cfg.MaxOversub <= 0 {
		cfg.MaxOversub = 1.25
	}
	if cfg.MaxUtil <= 0 {
		cfg.MaxUtil = 1.0
	}
	c := &Cluster{
		cfg:           cfg,
		placement:     make(map[int64]*Server),
		deployDomains: make(map[string][]int),
	}
	for i := 0; i < cfg.Servers; i++ {
		c.Servers = append(c.Servers, &Server{
			ID:          i,
			FaultDomain: i % cfg.FaultDomains,
			Cores:       cfg.CoresPerServer,
			MemoryGB:    cfg.MemGBPerServer,
		})
	}
	c.index.init(c.Servers, cfg.FaultDomains, int(cfg.MaxOversub*float64(cfg.CoresPerServer))+1)
	return c, nil
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// ruleEvaluated reports one rule evaluation to the configured hook.
func (c *Cluster) ruleEvaluated(rule string) {
	if c.cfg.RuleHook != nil {
		c.cfg.RuleHook(rule)
	}
}

// Schedule runs the rule chain for the request and, on success, places
// the VM (PlaceVM bookkeeping included). It returns the chosen server, or
// ok=false for a scheduling failure.
func (c *Cluster) Schedule(req *Request) (*Server, bool) {
	c.ruleEvaluated("admission")
	candidates := c.selectCandidates(req)
	if len(candidates) == 0 {
		return nil, false
	}
	// Soft spreading rule: prefer fault domains not already hosting a VM
	// of this deployment.
	c.ruleEvaluated("spread")
	candidates = c.spreadRule(req, candidates)
	// Soft lifetime co-location rule (Section 4.1 extension): prefer
	// servers whose VMs terminate around the same predicted time.
	if c.cfg.LifetimeAware && req.PredEndTime > 0 {
		c.ruleEvaluated("lifetime")
		candidates = c.lifetimeRule(req, candidates)
	}
	// Soft packing rule: fill used servers before empty ones, tightest
	// first, so empty servers stay free for the other group.
	c.ruleEvaluated("packing")
	best := candidates[0]
	for _, s := range candidates[1:] {
		if packingBetter(s, best) {
			best = s
		}
	}
	c.PlaceVM(req, best)
	return best, true
}

// lifetimeRule keeps the candidates whose mean predicted completion time
// is within one lifetime-bucket-scale window of the request's, falling
// back to all candidates if none qualifies (soft rule). Servers without
// predictions (or empty ones) always qualify.
func (c *Cluster) lifetimeRule(req *Request, candidates []*Server) []*Server {
	const window = 24 * 60 // minutes; the paper's lifetime knee is 1 day
	out := c.lifeScratch[:0]
	for _, s := range candidates {
		mean, ok := s.MeanPredEnd()
		if !ok {
			out = append(out, s)
			continue
		}
		d := int64(mean - req.PredEndTime)
		if d < 0 {
			d = -d
		}
		if d <= window {
			out = append(out, s)
		}
	}
	c.lifeScratch = out[:0]
	if len(out) == 0 {
		return candidates
	}
	return out
}

// packingBetter orders candidate servers: non-empty before empty, then
// higher core allocation (tighter packing), then lower ID for determinism.
func packingBetter(a, b *Server) bool {
	if (a.AllocCores > 0) != (b.AllocCores > 0) {
		return a.AllocCores > 0
	}
	if a.AllocCores != b.AllocCores {
		return a.AllocCores > b.AllocCores
	}
	return a.ID < b.ID
}

// selectCandidates implements SELECTCANDIDATESERVERS of Algorithm 1 (and
// the Baseline/Naive variants of Section 6.2) over the free-capacity
// index. The returned slice is scratch owned by the cluster; it is valid
// until the next Schedule call.
func (c *Cluster) selectCandidates(req *Request) []*Server {
	if c.cfg.forceLinear {
		return c.selectCandidatesLinear(req)
	}
	out := c.candScratch[:0]
	switch c.cfg.Policy {
	case Baseline:
		out = c.appendEmptyCandidates(out, req, 1.0)
		out = c.appendKindCandidates(out, req, Oversubscribable, 1.0)
		out = c.appendKindCandidates(out, req, NonOversubscribable, 1.0)
	case Naive:
		// Oversubscribe non-production VMs by allocation alone.
		if req.Production {
			return c.prodCandidates(req)
		}
		out = c.appendEmptyCandidates(out, req, c.cfg.MaxOversub)
		out = c.appendKindCandidates(out, req, Oversubscribable, c.cfg.MaxOversub)
	case RCHard, RCSoft:
		if req.Production {
			return c.prodCandidates(req)
		}
		// Hard part: allocation fit under the oversubscription cap.
		allocFit := c.allocScratch[:0]
		allocFit = c.appendEmptyCandidates(allocFit, req, c.cfg.MaxOversub)
		allocFit = c.appendKindCandidates(allocFit, req, Oversubscribable, c.cfg.MaxOversub)
		c.allocScratch = allocFit[:0]
		// Utilization check (lines 15-17 of Algorithm 1).
		maxUtil := c.cfg.MaxUtil * float64(c.cfg.CoresPerServer)
		for _, s := range allocFit {
			if s.PredUtilCores+req.PredUtilCores <= maxUtil {
				out = append(out, s)
			}
		}
		if len(out) == 0 && c.cfg.Policy == RCSoft {
			// Soft rule: disregarded when it would exclude every server
			// that has the resources.
			c.candScratch = out[:0]
			return allocFit
		}
	}
	c.candScratch = out[:0]
	return out
}

// appendKindCandidates appends every non-empty server of the kind that
// passes fitsBasic under the core factor, walking the allocation buckets
// from empty-most upward and stopping at the first bucket whose servers
// no longer fit.
func (c *Cluster) appendKindCandidates(dst []*Server, req *Request, kind Kind, coreFactor float64) []*Server {
	for alloc, bucket := range c.index.byAlloc[kindSlot(kind)] {
		// Server shapes are uniform, so the core-fit check is a property
		// of the bucket; float64(alloc) grows monotonically, so once a
		// bucket fails every later one does too.
		if float64(alloc+req.VM.Cores) > coreFactor*float64(c.cfg.CoresPerServer) {
			break
		}
		for _, s := range bucket {
			if c.fitsBasic(s, req, coreFactor) {
				dst = append(dst, s)
			}
		}
	}
	return dst
}

// appendEmptyCandidates appends at most one empty server per fault domain
// — the lowest-ID one, which is the only empty server any rule chain can
// select (empty servers are interchangeable up to ID and fault domain).
func (c *Cluster) appendEmptyCandidates(dst []*Server, req *Request, coreFactor float64) []*Server {
	for d := range c.index.emptyByDomain {
		if s := c.index.peekEmpty(d); s != nil && c.fitsBasic(s, req, coreFactor) {
			dst = append(dst, s)
		}
	}
	return dst
}

// selectCandidatesLinear is the pre-index implementation: a full fleet
// scan per arrival. Kept as the reference for seed-equivalence tests and
// before/after benchmarks.
func (c *Cluster) selectCandidatesLinear(req *Request) []*Server {
	var out []*Server
	switch c.cfg.Policy {
	case Baseline:
		for _, s := range c.Servers {
			if c.fitsBasic(s, req, 1.0) {
				out = append(out, s)
			}
		}
	case Naive:
		// Oversubscribe non-production VMs by allocation alone.
		if req.Production {
			return c.prodCandidatesLinear(req)
		}
		for _, s := range c.Servers {
			if (s.Kind == Oversubscribable || s.Empty()) && c.fitsBasic(s, req, c.cfg.MaxOversub) {
				out = append(out, s)
			}
		}
	case RCHard, RCSoft:
		if req.Production {
			return c.prodCandidatesLinear(req)
		}
		// Hard part: allocation fit under the oversubscription cap.
		var allocFit []*Server
		for _, s := range c.Servers {
			if (s.Kind == Oversubscribable || s.Empty()) && c.fitsBasic(s, req, c.cfg.MaxOversub) {
				allocFit = append(allocFit, s)
			}
		}
		// Utilization check (lines 15-17 of Algorithm 1).
		maxUtil := c.cfg.MaxUtil * float64(c.cfg.CoresPerServer)
		for _, s := range allocFit {
			if s.PredUtilCores+req.PredUtilCores <= maxUtil {
				out = append(out, s)
			}
		}
		if len(out) == 0 && c.cfg.Policy == RCSoft {
			// Soft rule: disregarded when it would exclude every server
			// that has the resources.
			out = allocFit
		}
	}
	return out
}

// prodCandidates lists servers eligible for a production VM: empty or
// non-oversubscribable, with un-oversubscribed allocation headroom
// (lines 4-7 of Algorithm 1).
func (c *Cluster) prodCandidates(req *Request) []*Server {
	if c.cfg.forceLinear {
		return c.prodCandidatesLinear(req)
	}
	out := c.candScratch[:0]
	out = c.appendEmptyCandidates(out, req, 1.0)
	out = c.appendKindCandidates(out, req, NonOversubscribable, 1.0)
	c.candScratch = out[:0]
	return out
}

// prodCandidatesLinear is the pre-index production scan.
func (c *Cluster) prodCandidatesLinear(req *Request) []*Server {
	var out []*Server
	for _, s := range c.Servers {
		if (s.Kind == NonOversubscribable || s.Empty()) && c.fitsBasic(s, req, 1.0) {
			out = append(out, s)
		}
	}
	return out
}

// fitsBasic checks core (scaled by the oversubscription factor) and
// memory headroom.
func (c *Cluster) fitsBasic(s *Server, req *Request, coreFactor float64) bool {
	if float64(s.AllocCores+req.VM.Cores) > coreFactor*float64(s.Cores) {
		return false
	}
	return s.AllocMemGB+req.VM.MemoryGB <= s.MemoryGB
}

// spreadRule keeps only servers in fault domains hosting the fewest VMs
// of this deployment; it is soft by construction (never empties the set).
func (c *Cluster) spreadRule(req *Request, candidates []*Server) []*Server {
	counts := c.deployDomains[req.Deployment]
	if counts == nil {
		return candidates
	}
	best := -1
	for _, s := range candidates {
		n := counts[s.FaultDomain]
		if best == -1 || n < best {
			best = n
		}
	}
	out := candidates[:0]
	for _, s := range candidates {
		if counts[s.FaultDomain] == best {
			out = append(out, s)
		}
	}
	return out
}

// PlaceVM applies the bookkeeping of Algorithm 1: tag empty servers by the
// VM's production annotation, then charge allocation and predicted
// utilization.
func (c *Cluster) PlaceVM(req *Request, s *Server) {
	oldKind, oldAlloc := s.Kind, s.AllocCores
	if s.Empty() {
		if req.Production {
			s.Kind = NonOversubscribable
		} else {
			s.Kind = Oversubscribable
		}
	}
	s.AllocCores += req.VM.Cores
	s.AllocMemGB += req.VM.MemoryGB
	s.vmCount++
	if s.Kind == Oversubscribable {
		s.PredUtilCores += req.PredUtilCores
	}
	if req.PredEndTime > 0 {
		s.sumPredEnd += float64(req.PredEndTime)
		s.predEndCount++
	}
	c.index.reindex(s, oldKind, oldAlloc)
	c.placement[req.VM.ID] = s
	counts := c.deployDomains[req.Deployment]
	if counts == nil {
		if n := len(c.domainsFree); n > 0 {
			counts = c.domainsFree[n-1] // all zeros: recycled only when drained
			c.domainsFree = c.domainsFree[:n-1]
		} else {
			counts = make([]int, c.cfg.FaultDomains)
		}
		c.deployDomains[req.Deployment] = counts
	}
	counts[s.FaultDomain]++
}

// VMCompleted releases the VM's resources (Algorithm 1's bookkeeping). It
// returns the server the VM ran on.
func (c *Cluster) VMCompleted(req *Request) (*Server, error) {
	s, ok := c.placement[req.VM.ID]
	if !ok {
		return nil, fmt.Errorf("cluster: VM %d was never placed", req.VM.ID)
	}
	delete(c.placement, req.VM.ID)
	oldKind, oldAlloc := s.Kind, s.AllocCores
	s.AllocCores -= req.VM.Cores
	s.AllocMemGB -= req.VM.MemoryGB
	s.vmCount--
	if s.Kind == Oversubscribable {
		s.PredUtilCores -= req.PredUtilCores
		if s.PredUtilCores < 1e-9 {
			s.PredUtilCores = 0
		}
	}
	if req.PredEndTime > 0 {
		s.sumPredEnd -= float64(req.PredEndTime)
		s.predEndCount--
		if s.predEndCount <= 0 {
			s.sumPredEnd, s.predEndCount = 0, 0
		}
	}
	if s.AllocCores < 0 || s.AllocMemGB < -1e-9 || s.vmCount < 0 {
		return nil, errors.New("cluster: negative allocation after release")
	}
	if s.Empty() {
		s.Kind = Empty // server can be re-tagged by its next VM
	}
	c.index.reindex(s, oldKind, oldAlloc)
	counts := c.deployDomains[req.Deployment]
	if counts != nil {
		counts[s.FaultDomain]--
		live := 0
		for _, n := range counts {
			live += n
		}
		// A drained deployment's all-zero table is behaviorally identical
		// to an absent one (spreadRule keeps every candidate either way),
		// so drop it and recycle the slice.
		if live == 0 {
			delete(c.deployDomains, req.Deployment)
			c.domainsFree = append(c.domainsFree, counts)
		}
	}
	return s, nil
}

// ServerOf returns the server currently hosting the VM.
func (c *Cluster) ServerOf(vmID int64) (*Server, bool) {
	s, ok := c.placement[vmID]
	return s, ok
}
