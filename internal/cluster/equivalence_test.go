package cluster

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"resourcecentral/internal/trace"
)

// op is one step of a recorded workload: a placement request or the
// completion of a previously placed VM (by position in the live list).
type op struct {
	complete bool
	liveIdx  int
	req      Request
}

// genWorkload builds a seeded random request/completion sequence that
// exercises every rule: mixed production tags, fractional predicted
// utilizations, several deployments, lifetime predictions, and enough
// volume to fill and drain the cluster repeatedly.
func genWorkload(seed uint64, steps int) []op {
	r := rand.New(rand.NewPCG(seed, 0xec0))
	ops := make([]op, 0, steps)
	var id int64
	live := 0
	for i := 0; i < steps; i++ {
		if r.Float64() < 0.4 && live > 0 {
			ops = append(ops, op{complete: true, liveIdx: r.IntN(live)})
			live--
			continue
		}
		id++
		cores := []int{1, 1, 2, 2, 4, 8, 16}[r.IntN(7)]
		o := op{req: Request{
			VM: &trace.VM{
				ID:       id,
				Cores:    cores,
				MemoryGB: float64(cores) * []float64{1.75, 3.5, 7}[r.IntN(3)],
			},
			Production:    r.Float64() < 0.5,
			PredUtilCores: float64(cores) * r.Float64(),
			Deployment:    []string{"a", "b", "c", "d"}[r.IntN(4)],
		}}
		if r.Float64() < 0.5 {
			o.req.PredEndTime = trace.Minutes(r.IntN(7 * 24 * 60))
		}
		ops = append(ops, o)
		live++
	}
	return ops
}

// replay drives one cluster through the workload and records, per op, the
// chosen server ID (-1 for scheduling failures, -2 for completions).
func replay(t *testing.T, c *Cluster, ops []op) []int {
	t.Helper()
	out := make([]int, 0, len(ops))
	var live []*Request
	for _, o := range ops {
		if o.complete {
			// Scheduling failures mean the live list can be shorter than
			// the generator assumed; resolve the index against the actual
			// list. Both clusters replay identically up to the first
			// divergence, which the caller's comparison reports.
			if len(live) == 0 {
				out = append(out, -3)
				continue
			}
			idx := o.liveIdx % len(live)
			req := live[idx]
			live = append(live[:idx], live[idx+1:]...)
			if _, err := c.VMCompleted(req); err != nil {
				t.Fatal(err)
			}
			out = append(out, -2)
			continue
		}
		req := o.req // fresh copy per cluster
		if s, ok := c.Schedule(&req); ok {
			live = append(live, &req)
			out = append(out, s.ID)
		} else {
			out = append(out, -1)
		}
	}
	return out
}

// TestIndexedMatchesLinear is the seed-equivalence proof for the indexed
// scheduler: on seeded random workloads, for every policy (with and
// without the lifetime rule), the indexed candidate selection must pick
// byte-identical placements to the original full-fleet linear scan.
func TestIndexedMatchesLinear(t *testing.T) {
	for _, policy := range []Policy{Baseline, Naive, RCHard, RCSoft} {
		for _, lifetime := range []bool{false, true} {
			t.Run(fmt.Sprintf("%v/lifetime=%v", policy, lifetime), func(t *testing.T) {
				for seed := uint64(1); seed <= 8; seed++ {
					cfg := Config{
						Servers: 23, CoresPerServer: 16, MemGBPerServer: 112,
						FaultDomains: 5, Policy: policy,
						MaxOversub: 1.25, MaxUtil: 1.0,
						LifetimeAware: lifetime,
					}
					indexed, err := New(cfg)
					if err != nil {
						t.Fatal(err)
					}
					cfg.forceLinear = true
					linear, err := New(cfg)
					if err != nil {
						t.Fatal(err)
					}
					ops := genWorkload(seed, 1200)
					got := replay(t, indexed, ops)
					want := replay(t, linear, ops)
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("seed %d step %d: indexed chose %d, linear chose %d",
								seed, i, got[i], want[i])
						}
					}
				}
			})
		}
	}
}

// TestIndexedMatchesLinearTightCluster repeats the equivalence check on a
// tiny overloaded cluster where failures, the RCSoft fallback, and empty
// retagging dominate.
func TestIndexedMatchesLinearTightCluster(t *testing.T) {
	for _, policy := range []Policy{Baseline, Naive, RCHard, RCSoft} {
		for seed := uint64(20); seed < 26; seed++ {
			cfg := Config{
				Servers: 3, CoresPerServer: 16, MemGBPerServer: 56,
				FaultDomains: 2, Policy: policy,
				MaxOversub: 1.25, MaxUtil: 0.9,
			}
			indexed, _ := New(cfg)
			cfg.forceLinear = true
			linear, _ := New(cfg)
			ops := genWorkload(seed, 600)
			got := replay(t, indexed, ops)
			want := replay(t, linear, ops)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("policy %v seed %d step %d: indexed %d, linear %d",
						policy, seed, i, got[i], want[i])
				}
			}
		}
	}
}
