package cluster

import (
	"testing"

	"resourcecentral/internal/trace"
)

func testConfig(policy Policy) Config {
	return Config{
		Servers:        4,
		CoresPerServer: 16,
		MemGBPerServer: 112,
		FaultDomains:   2,
		Policy:         policy,
		MaxOversub:     1.25,
		MaxUtil:        1.0,
	}
}

var nextID int64

func req(cores int, memGB float64, prod bool, predCores float64) *Request {
	nextID++
	return &Request{
		VM:            &trace.VM{ID: nextID, Cores: cores, MemoryGB: memGB},
		Production:    prod,
		PredUtilCores: predCores,
		Deployment:    "dep",
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("expected error for zero shape")
	}
	c, err := New(testConfig(Baseline))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Servers) != 4 {
		t.Errorf("servers = %d", len(c.Servers))
	}
}

func TestBaselinePlacesUntilFull(t *testing.T) {
	c, _ := New(testConfig(Baseline))
	placed := 0
	for i := 0; i < 100; i++ {
		if _, ok := c.Schedule(req(4, 7, true, 4)); ok {
			placed++
		}
	}
	// 4 servers x 16 cores / 4 cores per VM = 16 VMs.
	if placed != 16 {
		t.Errorf("placed %d VMs, want 16 (no oversubscription)", placed)
	}
}

func TestBaselineMemoryBound(t *testing.T) {
	c, _ := New(testConfig(Baseline))
	placed := 0
	for i := 0; i < 100; i++ {
		if _, ok := c.Schedule(req(1, 56, true, 1)); ok {
			placed++
		}
	}
	// Memory binds first: 112/56 = 2 VMs per server.
	if placed != 8 {
		t.Errorf("placed %d VMs, want 8 (memory bound)", placed)
	}
}

func TestProductionNeverOversubscribed(t *testing.T) {
	c, _ := New(testConfig(RCHard))
	placed := 0
	for i := 0; i < 100; i++ {
		if _, ok := c.Schedule(req(4, 7, true, 0.4)); ok {
			placed++
		}
	}
	if placed != 16 {
		t.Errorf("production VMs placed %d, want 16 (no oversubscription)", placed)
	}
}

func TestNonProductionOversubscribedUpToCap(t *testing.T) {
	c, _ := New(testConfig(RCHard))
	placed := 0
	// Each VM predicts only 0.4 cores of P95 utilization: the util check
	// passes easily; the 125% allocation cap binds.
	for i := 0; i < 100; i++ {
		if _, ok := c.Schedule(req(4, 7, false, 0.4)); ok {
			placed++
		}
	}
	// 16 * 1.25 = 20 cores allocatable → 5 VMs per server → 20 total.
	if placed != 20 {
		t.Errorf("placed %d VMs, want 20 (125%% oversubscription)", placed)
	}
}

func TestHardUtilizationCheckBlocks(t *testing.T) {
	c, _ := New(testConfig(RCHard))
	placed := 0
	// Predicted utilization equals the full allocation: the MAX_UTIL
	// check binds at 16 cores → 4 VMs per server, no oversubscription
	// benefit.
	for i := 0; i < 100; i++ {
		if _, ok := c.Schedule(req(4, 7, false, 4)); ok {
			placed++
		}
	}
	if placed != 16 {
		t.Errorf("placed %d VMs, want 16 (utilization check binds)", placed)
	}
}

func TestSoftUtilizationCheckYields(t *testing.T) {
	c, _ := New(testConfig(RCSoft))
	placed := 0
	for i := 0; i < 100; i++ {
		if _, ok := c.Schedule(req(4, 7, false, 4)); ok {
			placed++
		}
	}
	// Soft rule yields when it would exclude every alloc-feasible server:
	// the 125% cap then binds → 20 placements.
	if placed != 20 {
		t.Errorf("placed %d VMs, want 20 (soft rule yields)", placed)
	}
}

func TestNaiveIgnoresUtilization(t *testing.T) {
	c, _ := New(testConfig(Naive))
	placed := 0
	for i := 0; i < 100; i++ {
		if _, ok := c.Schedule(req(4, 7, false, 4)); ok {
			placed++
		}
	}
	if placed != 20 {
		t.Errorf("placed %d VMs, want 20 (naive ignores utilization)", placed)
	}
}

func TestGroupSegregation(t *testing.T) {
	c, _ := New(testConfig(RCHard))
	// First production VM tags a server non-oversubscribable.
	sProd, ok := c.Schedule(req(2, 3.5, true, 2))
	if !ok {
		t.Fatal("production placement failed")
	}
	if sProd.Kind != NonOversubscribable {
		t.Errorf("server kind = %v", sProd.Kind)
	}
	// Non-production VM must land elsewhere.
	sNon, ok := c.Schedule(req(2, 3.5, false, 0.5))
	if !ok {
		t.Fatal("non-production placement failed")
	}
	if sNon == sProd {
		t.Error("non-production VM placed on a production server")
	}
	if sNon.Kind != Oversubscribable {
		t.Errorf("server kind = %v", sNon.Kind)
	}
}

func TestPackingPrefersUsedServers(t *testing.T) {
	c, _ := New(testConfig(Baseline))
	first, _ := c.Schedule(req(2, 3.5, true, 2))
	second, _ := c.Schedule(req(2, 3.5, true, 2))
	// The spreading rule may route within the same fault domain; the
	// second VM (different deployment counts share "dep") should prefer
	// the already-used server if the domain rule allows.
	_ = first
	_ = second
	used := 0
	for _, s := range c.Servers {
		if s.AllocCores > 0 {
			used++
		}
	}
	if used > 2 {
		t.Errorf("VMs scattered across %d servers", used)
	}
}

func TestSpreadRuleSeparatesDeploymentAcrossDomains(t *testing.T) {
	cfg := testConfig(Baseline)
	cfg.Servers = 4
	cfg.FaultDomains = 2
	c, _ := New(cfg)
	domains := map[int]int{}
	for i := 0; i < 4; i++ {
		s, ok := c.Schedule(req(2, 3.5, true, 2))
		if !ok {
			t.Fatal("placement failed")
		}
		domains[s.FaultDomain]++
	}
	// 4 VMs of one deployment over 2 domains → 2 per domain.
	if domains[0] != 2 || domains[1] != 2 {
		t.Errorf("domain spread = %v, want even", domains)
	}
}

func TestVMCompletedReleasesResources(t *testing.T) {
	c, _ := New(testConfig(RCHard))
	r := req(4, 7, false, 1.5)
	s, ok := c.Schedule(r)
	if !ok {
		t.Fatal("placement failed")
	}
	if s.AllocCores != 4 || s.PredUtilCores != 1.5 || s.VMCount() != 1 {
		t.Errorf("after place: %+v", s)
	}
	got, err := c.VMCompleted(r)
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Error("completed on wrong server")
	}
	if s.AllocCores != 0 || s.PredUtilCores != 0 || !s.Empty() {
		t.Errorf("after release: %+v", s)
	}
	if s.Kind != Empty {
		t.Errorf("server not re-taggable: %v", s.Kind)
	}
	// Double completion is an error.
	if _, err := c.VMCompleted(r); err == nil {
		t.Error("expected error for double completion")
	}
}

func TestEmptyServerRetagging(t *testing.T) {
	c, _ := New(testConfig(RCHard))
	r := req(2, 3.5, false, 0.5)
	s, _ := c.Schedule(r)
	if s.Kind != Oversubscribable {
		t.Fatal("expected oversubscribable tag")
	}
	if _, err := c.VMCompleted(r); err != nil {
		t.Fatal(err)
	}
	// Now a production VM can claim the same (empty) server.
	r2 := req(2, 3.5, true, 2)
	s2, ok := c.Schedule(r2)
	if !ok {
		t.Fatal("placement failed")
	}
	if s2 == s && s2.Kind != NonOversubscribable {
		t.Errorf("server not retagged: %v", s2.Kind)
	}
}

func TestServerOf(t *testing.T) {
	c, _ := New(testConfig(Baseline))
	r := req(1, 1.75, true, 1)
	s, _ := c.Schedule(r)
	got, ok := c.ServerOf(r.VM.ID)
	if !ok || got != s {
		t.Error("ServerOf mismatch")
	}
	if _, ok := c.ServerOf(99999); ok {
		t.Error("ServerOf found unplaced VM")
	}
}

func TestPolicyStrings(t *testing.T) {
	for p, want := range map[Policy]string{
		Baseline: "baseline", Naive: "naive",
		RCHard: "rc-informed-hard", RCSoft: "rc-informed-soft",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q", p, p.String())
		}
	}
}

func TestKindStrings(t *testing.T) {
	if Empty.String() != "empty" || Oversubscribable.String() != "oversubscribable" ||
		NonOversubscribable.String() != "non-oversubscribable" {
		t.Error("kind strings wrong")
	}
}
