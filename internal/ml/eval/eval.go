// Package eval provides classifier evaluation: confusion matrices,
// accuracy, per-class precision/recall, and the confidence-thresholded
// precision/recall (P^θ / R^θ) columns of the paper's Table 4.
package eval

import (
	"errors"
	"fmt"
)

// Confusion is a confusion matrix; Counts[truth][pred] accumulates.
type Confusion struct {
	Counts [][]int
	total  int
}

// NewConfusion creates a k-class confusion matrix.
func NewConfusion(k int) (*Confusion, error) {
	if k < 2 {
		return nil, fmt.Errorf("eval: need at least 2 classes, got %d", k)
	}
	counts := make([][]int, k)
	for i := range counts {
		counts[i] = make([]int, k)
	}
	return &Confusion{Counts: counts}, nil
}

// Add records one (truth, predicted) pair.
func (c *Confusion) Add(truth, pred int) error {
	k := len(c.Counts)
	if truth < 0 || truth >= k || pred < 0 || pred >= k {
		return fmt.Errorf("eval: class out of range: truth=%d pred=%d k=%d", truth, pred, k)
	}
	c.Counts[truth][pred]++
	c.total++
	return nil
}

// Total returns the number of recorded pairs.
func (c *Confusion) Total() int { return c.total }

// Accuracy returns the fraction of correct predictions.
func (c *Confusion) Accuracy() float64 {
	if c.total == 0 {
		return 0
	}
	correct := 0
	for i := range c.Counts {
		correct += c.Counts[i][i]
	}
	return float64(correct) / float64(c.total)
}

// ClassShare returns the fraction of samples whose true class is k
// (the "%" columns of Table 4).
func (c *Confusion) ClassShare(k int) float64 {
	if c.total == 0 {
		return 0
	}
	n := 0
	for _, v := range c.Counts[k] {
		n += v
	}
	return float64(n) / float64(c.total)
}

// Precision returns TP / (TP + FP) for class k (0 when the class is never
// predicted).
func (c *Confusion) Precision(k int) float64 {
	predicted := 0
	for truth := range c.Counts {
		predicted += c.Counts[truth][k]
	}
	if predicted == 0 {
		return 0
	}
	return float64(c.Counts[k][k]) / float64(predicted)
}

// Recall returns TP / (TP + FN) for class k (0 when the class never
// occurs).
func (c *Confusion) Recall(k int) float64 {
	actual := 0
	for _, v := range c.Counts[k] {
		actual += v
	}
	if actual == 0 {
		return 0
	}
	return float64(c.Counts[k][k]) / float64(actual)
}

// Prediction is one scored prediction against ground truth.
type Prediction struct {
	Truth int
	Pred  int
	Score float64
}

// Report is the evaluation summary for one metric — one row of Table 4.
type Report struct {
	Accuracy float64
	// Share, Precision, Recall are per-bucket.
	Share     []float64
	Precision []float64
	Recall    []float64
	// ThresholdedPrecision/Recall are P^θ/R^θ: predictions with score
	// below the threshold are replaced by no-prediction; precision is
	// measured over answered predictions, recall over all samples.
	ThresholdedPrecision float64
	ThresholdedRecall    float64
	// Answered is the fraction of samples with score >= threshold.
	Answered float64
}

// Evaluate computes the Table 4 row for the predictions with the given
// number of classes and confidence threshold (the paper uses 0.6).
func Evaluate(preds []Prediction, k int, threshold float64) (*Report, error) {
	if len(preds) == 0 {
		return nil, errors.New("eval: no predictions")
	}
	conf, err := NewConfusion(k)
	if err != nil {
		return nil, err
	}
	answered, answeredCorrect := 0, 0
	for _, p := range preds {
		if err := conf.Add(p.Truth, p.Pred); err != nil {
			return nil, err
		}
		if p.Score >= threshold {
			answered++
			if p.Truth == p.Pred {
				answeredCorrect++
			}
		}
	}
	rep := &Report{
		Accuracy:  conf.Accuracy(),
		Share:     make([]float64, k),
		Precision: make([]float64, k),
		Recall:    make([]float64, k),
	}
	for c := 0; c < k; c++ {
		rep.Share[c] = conf.ClassShare(c)
		rep.Precision[c] = conf.Precision(c)
		rep.Recall[c] = conf.Recall(c)
	}
	if answered > 0 {
		rep.ThresholdedPrecision = float64(answeredCorrect) / float64(answered)
	}
	rep.ThresholdedRecall = float64(answeredCorrect) / float64(len(preds))
	rep.Answered = float64(answered) / float64(len(preds))
	return rep, nil
}
