package eval

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfusionBasics(t *testing.T) {
	c, err := NewConfusion(2)
	if err != nil {
		t.Fatal(err)
	}
	// 3 correct class-0, 1 correct class-1, 1 class-1 predicted as 0.
	pairs := [][2]int{{0, 0}, {0, 0}, {0, 0}, {1, 1}, {1, 0}}
	for _, p := range pairs {
		if err := c.Add(p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	if c.Total() != 5 {
		t.Errorf("total = %d", c.Total())
	}
	if got := c.Accuracy(); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("accuracy = %v", got)
	}
	if got := c.ClassShare(0); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("share(0) = %v", got)
	}
	// Precision of class 0: 3 TP of 4 predicted-0.
	if got := c.Precision(0); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("precision(0) = %v", got)
	}
	// Recall of class 1: 1 of 2.
	if got := c.Recall(1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("recall(1) = %v", got)
	}
}

func TestConfusionEdgeCases(t *testing.T) {
	if _, err := NewConfusion(1); err == nil {
		t.Error("expected error for k=1")
	}
	c, _ := NewConfusion(3)
	if err := c.Add(3, 0); err == nil {
		t.Error("expected range error")
	}
	if err := c.Add(0, -1); err == nil {
		t.Error("expected range error")
	}
	if c.Accuracy() != 0 {
		t.Error("empty accuracy should be 0")
	}
	// Never-predicted class has precision 0; never-occurring class recall 0.
	c.Add(0, 0)
	if c.Precision(1) != 0 || c.Recall(2) != 0 {
		t.Error("expected zero precision/recall for absent class")
	}
}

func TestEvaluateThresholded(t *testing.T) {
	preds := []Prediction{
		{Truth: 0, Pred: 0, Score: 0.9},  // answered, correct
		{Truth: 0, Pred: 1, Score: 0.9},  // answered, wrong
		{Truth: 1, Pred: 1, Score: 0.95}, // answered, correct
		{Truth: 1, Pred: 0, Score: 0.3},  // below threshold (wrong anyway)
		{Truth: 0, Pred: 0, Score: 0.4},  // below threshold (correct)
	}
	rep, err := Evaluate(preds, 2, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	// Accuracy counts all five: 3 correct.
	if math.Abs(rep.Accuracy-0.6) > 1e-12 {
		t.Errorf("accuracy = %v", rep.Accuracy)
	}
	// Thresholded precision: 2 of 3 answered correct.
	if math.Abs(rep.ThresholdedPrecision-2.0/3) > 1e-12 {
		t.Errorf("P^θ = %v", rep.ThresholdedPrecision)
	}
	// Thresholded recall: 2 correct-answered of 5 total.
	if math.Abs(rep.ThresholdedRecall-0.4) > 1e-12 {
		t.Errorf("R^θ = %v", rep.ThresholdedRecall)
	}
	if math.Abs(rep.Answered-0.6) > 1e-12 {
		t.Errorf("answered = %v", rep.Answered)
	}
	if len(rep.Share) != 2 || len(rep.Precision) != 2 || len(rep.Recall) != 2 {
		t.Error("per-class slices wrong length")
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate(nil, 2, 0.5); err == nil {
		t.Error("expected error for no predictions")
	}
	if _, err := Evaluate([]Prediction{{Truth: 9, Pred: 0}}, 2, 0.5); err == nil {
		t.Error("expected error for out-of-range class")
	}
}

func TestEvaluateAllBelowThreshold(t *testing.T) {
	preds := []Prediction{{Truth: 0, Pred: 0, Score: 0.1}, {Truth: 1, Pred: 1, Score: 0.2}}
	rep, err := Evaluate(preds, 2, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ThresholdedPrecision != 0 || rep.ThresholdedRecall != 0 || rep.Answered != 0 {
		t.Errorf("expected zero thresholded stats, got %+v", rep)
	}
	if rep.Accuracy != 1 {
		t.Errorf("raw accuracy = %v", rep.Accuracy)
	}
}

// Property: for any prediction set, micro metrics are consistent:
// accuracy == sum_k share_k * recall_k, and R^θ <= P^θ, R^θ <= answered.
func TestQuickEvaluateConsistency(t *testing.T) {
	f := func(raw []struct {
		T, P  uint8
		Score float64
	}) bool {
		if len(raw) == 0 {
			return true
		}
		k := 3
		preds := make([]Prediction, len(raw))
		for i, r := range raw {
			s := math.Abs(r.Score)
			s -= math.Floor(s)
			preds[i] = Prediction{Truth: int(r.T) % k, Pred: int(r.P) % k, Score: s}
		}
		rep, err := Evaluate(preds, k, 0.5)
		if err != nil {
			return false
		}
		acc := 0.0
		for c := 0; c < k; c++ {
			acc += rep.Share[c] * rep.Recall[c]
		}
		if math.Abs(acc-rep.Accuracy) > 1e-9 {
			return false
		}
		if rep.ThresholdedRecall > rep.ThresholdedPrecision+1e-12 {
			return false
		}
		return rep.ThresholdedRecall <= rep.Answered+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
