package feature

import (
	"math"
	"testing"
	"testing/quick"
)

func smallDataset() *Dataset {
	return &Dataset{
		X:          [][]float64{{1, 0}, {2, 1}, {3, 0}, {4, 1}},
		Y:          []int{0, 1, 0, 1},
		Names:      []string{"a", "b"},
		NumClasses: 2,
	}
}

func TestValidateOK(t *testing.T) {
	if err := smallDataset().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []func(*Dataset){
		func(d *Dataset) { d.Y = d.Y[:2] },                       // length mismatch
		func(d *Dataset) { d.NumClasses = 1 },                    // too few classes
		func(d *Dataset) { d.X[1] = []float64{1} },               // ragged rows
		func(d *Dataset) { d.X[0][0] = math.NaN() },              // NaN
		func(d *Dataset) { d.X[0][1] = math.Inf(1) },             // Inf
		func(d *Dataset) { d.Y[0] = 5 },                          // label out of range
		func(d *Dataset) { d.Y[0] = -1 },                         // negative label
		func(d *Dataset) { d.Names = []string{"only one name"} }, // name count
	}
	for i, mutate := range cases {
		d := smallDataset()
		mutate(d)
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestAddAndCounts(t *testing.T) {
	d := &Dataset{NumClasses: 3}
	d.Add([]float64{1}, 0)
	d.Add([]float64{2}, 2)
	d.Add([]float64{3}, 2)
	counts := d.ClassCounts()
	if counts[0] != 1 || counts[1] != 0 || counts[2] != 2 {
		t.Errorf("counts = %v", counts)
	}
	if d.Len() != 3 || d.NumFeatures() != 1 {
		t.Errorf("len=%d nf=%d", d.Len(), d.NumFeatures())
	}
}

func TestSplitPartitions(t *testing.T) {
	d := &Dataset{NumClasses: 2}
	for i := 0; i < 100; i++ {
		d.Add([]float64{float64(i)}, i%2)
	}
	train, test, err := d.Split(0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if test.Len() != 25 || train.Len() != 75 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
	// No overlap and full coverage.
	seen := map[float64]int{}
	for _, row := range train.X {
		seen[row[0]]++
	}
	for _, row := range test.X {
		seen[row[0]]++
	}
	if len(seen) != 100 {
		t.Errorf("coverage %d, want 100", len(seen))
	}
	for v, n := range seen {
		if n != 1 {
			t.Errorf("sample %v appears %d times", v, n)
		}
	}
}

func TestSplitDeterministic(t *testing.T) {
	d := &Dataset{NumClasses: 2}
	for i := 0; i < 50; i++ {
		d.Add([]float64{float64(i)}, i%2)
	}
	_, t1, _ := d.Split(0.2, 3)
	_, t2, _ := d.Split(0.2, 3)
	for i := range t1.X {
		if t1.X[i][0] != t2.X[i][0] {
			t.Fatal("split not deterministic")
		}
	}
}

func TestSplitErrors(t *testing.T) {
	d := smallDataset()
	if _, _, err := d.Split(0, 1); err == nil {
		t.Error("expected error for frac 0")
	}
	if _, _, err := d.Split(1, 1); err == nil {
		t.Error("expected error for frac 1")
	}
	tiny := &Dataset{NumClasses: 2, X: [][]float64{{1}}, Y: []int{0}}
	if _, _, err := tiny.Split(0.5, 1); err == nil {
		t.Error("expected error for tiny dataset")
	}
}

func TestOneHotEncode(t *testing.T) {
	enc, err := FitOneHot("os", []string{"linux", "linux", "windows", "windows", "linux", "bsd"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if enc.Width != 3 {
		t.Fatalf("width = %d, want 3", enc.Width)
	}
	// linux is most frequent → slot 0.
	got := enc.Encode(nil, "linux")
	if got[0] != 1 || got[1] != 0 || got[2] != 0 {
		t.Errorf("linux encoding = %v", got)
	}
	// bsd fell out of the cap → other slot.
	got = enc.Encode(nil, "bsd")
	if got[2] != 1 {
		t.Errorf("bsd encoding = %v", got)
	}
	// unseen value → other slot.
	got = enc.Encode(nil, "plan9")
	if got[2] != 1 {
		t.Errorf("plan9 encoding = %v", got)
	}
}

func TestOneHotAppends(t *testing.T) {
	enc, _ := FitOneHot("x", []string{"a", "b"}, 4)
	dst := []float64{9, 9}
	dst = enc.Encode(dst, "a")
	if len(dst) != 2+enc.Width || dst[0] != 9 {
		t.Errorf("encode did not append: %v", dst)
	}
}

func TestOneHotNames(t *testing.T) {
	enc, _ := FitOneHot("role", []string{"web", "web", "worker"}, 5)
	names := enc.FeatureNames()
	if len(names) != enc.Width {
		t.Fatalf("names = %v", names)
	}
	if names[0] != "role=web" || names[len(names)-1] != "role=<other>" {
		t.Errorf("names = %v", names)
	}
}

func TestOneHotCapError(t *testing.T) {
	if _, err := FitOneHot("x", []string{"a"}, 0); err == nil {
		t.Error("expected cap error")
	}
}

func TestOneHotDeterministicTieBreak(t *testing.T) {
	a, _ := FitOneHot("x", []string{"b", "a"}, 1)
	b, _ := FitOneHot("x", []string{"a", "b"}, 1)
	if len(a.Index) != 1 || len(b.Index) != 1 {
		t.Fatal("cap not applied")
	}
	if _, ok := a.Index["a"]; !ok {
		t.Error("tie not broken lexicographically")
	}
	if _, ok := b.Index["a"]; !ok {
		t.Error("tie break not order-independent")
	}
}

func TestScaler(t *testing.T) {
	X := [][]float64{{0, 5}, {10, 5}}
	s, err := FitScaler(X)
	if err != nil {
		t.Fatal(err)
	}
	row := s.Transform([]float64{0, 5})
	if math.Abs(row[0]+1) > 1e-9 {
		t.Errorf("scaled = %v, want -1", row[0])
	}
	// Constant column untouched.
	if row[1] != 5 {
		t.Errorf("constant column changed: %v", row[1])
	}
	if _, err := FitScaler(nil); err == nil {
		t.Error("expected error on empty")
	}
}

// Property: split preserves total size and class counts.
func TestQuickSplitPreservesCounts(t *testing.T) {
	f := func(n uint8, seed uint64) bool {
		size := int(n)%200 + 4
		d := &Dataset{NumClasses: 3}
		for i := 0; i < size; i++ {
			d.Add([]float64{float64(i)}, i%3)
		}
		train, test, err := d.Split(0.3, seed)
		if err != nil {
			return false
		}
		if train.Len()+test.Len() != size {
			return false
		}
		tc := train.ClassCounts()
		sc := test.ClassCounts()
		orig := d.ClassCounts()
		for c := 0; c < 3; c++ {
			if tc[c]+sc[c] != orig[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
