// Package feature provides the dataset and feature-encoding substrate for
// the hand-rolled learners: dense feature matrices with class labels,
// deterministic train/test splitting, one-hot encoding of categoricals with
// vocabulary capping, and standardization.
package feature

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// Dataset is a dense classification dataset: X[i] is the feature vector of
// sample i and Y[i] its class in [0, NumClasses).
type Dataset struct {
	X          [][]float64
	Y          []int
	Names      []string
	NumClasses int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// NumFeatures returns the feature dimensionality (0 when empty).
func (d *Dataset) NumFeatures() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Validate checks structural invariants.
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("feature: %d rows but %d labels", len(d.X), len(d.Y))
	}
	if d.NumClasses < 2 {
		return fmt.Errorf("feature: NumClasses %d < 2", d.NumClasses)
	}
	nf := d.NumFeatures()
	if len(d.Names) != 0 && len(d.Names) != nf {
		return fmt.Errorf("feature: %d names for %d features", len(d.Names), nf)
	}
	for i, row := range d.X {
		if len(row) != nf {
			return fmt.Errorf("feature: row %d has %d features, want %d", i, len(row), nf)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("feature: row %d feature %d is %v", i, j, v)
			}
		}
	}
	for i, y := range d.Y {
		if y < 0 || y >= d.NumClasses {
			return fmt.Errorf("feature: label %d of sample %d out of [0,%d)", y, i, d.NumClasses)
		}
	}
	return nil
}

// Add appends one sample.
func (d *Dataset) Add(x []float64, y int) {
	d.X = append(d.X, x)
	d.Y = append(d.Y, y)
}

// Split partitions the dataset into train/test with the given test
// fraction, shuffled deterministically by seed. The underlying rows are
// shared, not copied.
func (d *Dataset) Split(testFrac float64, seed uint64) (train, test *Dataset, err error) {
	if testFrac <= 0 || testFrac >= 1 {
		return nil, nil, fmt.Errorf("feature: test fraction %v out of (0,1)", testFrac)
	}
	if d.Len() < 2 {
		return nil, nil, errors.New("feature: need at least 2 samples to split")
	}
	r := rand.New(rand.NewPCG(seed, 0xdeadbeef))
	idx := r.Perm(d.Len())
	nTest := int(testFrac * float64(d.Len()))
	if nTest == 0 {
		nTest = 1
	}
	test = d.subset(idx[:nTest])
	train = d.subset(idx[nTest:])
	return train, test, nil
}

func (d *Dataset) subset(idx []int) *Dataset {
	out := &Dataset{
		Names:      d.Names,
		NumClasses: d.NumClasses,
		X:          make([][]float64, len(idx)),
		Y:          make([]int, len(idx)),
	}
	for i, j := range idx {
		out.X[i] = d.X[j]
		out.Y[i] = d.Y[j]
	}
	return out
}

// ClassCounts returns the number of samples per class.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.NumClasses)
	for _, y := range d.Y {
		if y >= 0 && y < d.NumClasses {
			counts[y]++
		}
	}
	return counts
}

// OneHot encodes string categories as one-hot feature groups with a capped
// vocabulary; categories beyond the cap (by frequency at Fit time) share an
// "other" slot. This mirrors the paper's treatment of attributes like
// service name ("the name of a top first-party subscription or 'unknown'
// for the others").
type OneHot struct {
	Name  string
	Index map[string]int
	// Width is the number of slots including the trailing "other".
	Width int
}

// FitOneHot builds an encoder over the observed values keeping at most cap
// explicit categories (most frequent first; ties broken lexicographically
// for determinism).
func FitOneHot(name string, values []string, cap int) (*OneHot, error) {
	if cap < 1 {
		return nil, fmt.Errorf("feature: one-hot cap %d < 1", cap)
	}
	freq := make(map[string]int)
	for _, v := range values {
		freq[v]++
	}
	keys := make([]string, 0, len(freq))
	for k := range freq {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if freq[keys[i]] != freq[keys[j]] {
			return freq[keys[i]] > freq[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if len(keys) > cap {
		keys = keys[:cap]
	}
	idx := make(map[string]int, len(keys))
	for i, k := range keys {
		idx[k] = i
	}
	return &OneHot{Name: name, Index: idx, Width: len(keys) + 1}, nil
}

// Encode appends the one-hot encoding of value to dst and returns it.
func (o *OneHot) Encode(dst []float64, value string) []float64 {
	start := len(dst)
	for i := 0; i < o.Width; i++ {
		dst = append(dst, 0)
	}
	if i, ok := o.Index[value]; ok {
		dst[start+i] = 1
	} else {
		dst[start+o.Width-1] = 1 // "other"
	}
	return dst
}

// FeatureNames returns the names of the encoded slots.
func (o *OneHot) FeatureNames() []string {
	names := make([]string, o.Width)
	inv := make([]string, o.Width-1)
	for k, i := range o.Index {
		inv[i] = k
	}
	for i, k := range inv {
		names[i] = o.Name + "=" + k
	}
	names[o.Width-1] = o.Name + "=<other>"
	return names
}

// Scaler standardizes features to zero mean and unit variance (paper:
// "feature engineering and normalization"). Constant features are left
// unscaled.
type Scaler struct {
	Mean []float64
	Std  []float64
}

// FitScaler computes column statistics.
func FitScaler(X [][]float64) (*Scaler, error) {
	if len(X) == 0 {
		return nil, errors.New("feature: cannot fit scaler on empty data")
	}
	nf := len(X[0])
	mean := make([]float64, nf)
	std := make([]float64, nf)
	for _, row := range X {
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(len(X))
	}
	for _, row := range X {
		for j, v := range row {
			d := v - mean[j]
			std[j] += d * d
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(len(X)))
	}
	return &Scaler{Mean: mean, Std: std}, nil
}

// Transform standardizes row in place and returns it.
func (s *Scaler) Transform(row []float64) []float64 {
	for j := range row {
		if j < len(s.Mean) && s.Std[j] > 0 {
			row[j] = (row[j] - s.Mean[j]) / s.Std[j]
		}
	}
	return row
}
