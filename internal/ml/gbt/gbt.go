// Package gbt implements extreme-gradient-boosted tree classifiers
// (multi-class softmax objective, XGBoost-style second-order splits) — the
// modelling approach the paper uses for deployment size, lifetime, and
// workload class (Table 1).
package gbt

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"resourcecentral/internal/ml/feature"
)

// Config controls boosting.
type Config struct {
	// Rounds is the number of boosting iterations (0 = 100). Each round
	// adds one tree per class.
	Rounds int
	// MaxDepth limits each regression tree (0 = 4).
	MaxDepth int
	// LearningRate is the shrinkage factor (0 = 0.3).
	LearningRate float64
	// Lambda is the L2 regularization on leaf weights (0 = 1).
	Lambda float64
	// MinChildWeight is the minimum hessian sum in a child (0 = 1).
	MinChildWeight float64
	// Subsample is the row-sampling fraction per round (0 = 1).
	Subsample float64
	// ColSample is the feature-sampling fraction per tree (0 = 1).
	ColSample float64
	// Seed makes training reproducible.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Rounds <= 0 {
		c.Rounds = 100
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 4
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.3
	}
	if c.Lambda <= 0 {
		c.Lambda = 1
	}
	if c.MinChildWeight <= 0 {
		c.MinChildWeight = 1
	}
	if c.Subsample <= 0 || c.Subsample > 1 {
		c.Subsample = 1
	}
	if c.ColSample <= 0 || c.ColSample > 1 {
		c.ColSample = 1
	}
	return c
}

// RegNode is one node of a boosted regression tree. Leaves have Left == -1
// and carry the leaf weight.
type RegNode struct {
	Feature   int32
	Threshold float64
	Left      int32
	Right     int32
	Value     float64
}

// RegTree is one boosted regression tree.
type RegTree struct {
	Nodes []RegNode
}

// eval walks the tree for x.
func (t *RegTree) eval(x []float64) float64 {
	i := int32(0)
	for {
		n := &t.Nodes[i]
		if n.Left < 0 {
			return n.Value
		}
		if x[n.Feature] <= n.Threshold {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// Model is a trained gradient-boosted classifier. Trees[m][k] is the
// round-m tree for class k.
type Model struct {
	Trees       [][]*RegTree
	NumClasses  int
	NumFeatures int
	// BasePrior holds the initial per-class log-odds.
	BasePrior []float64
	// LearningRate is the shrinkage applied to each tree's output; it is
	// serialized with the model so prediction matches training.
	LearningRate float64
	// GainImportance accumulates each feature's total structure-score gain
	// across all splits of all trees.
	GainImportance []float64
}

// Train fits the boosted ensemble.
func Train(ds *feature.Dataset, cfg Config) (*Model, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	n := ds.Len()
	if n == 0 {
		return nil, errors.New("gbt: empty dataset")
	}
	cfg = cfg.withDefaults()
	k := ds.NumClasses
	r := rand.New(rand.NewPCG(cfg.Seed, 0x6b7))

	m := &Model{
		NumClasses:     k,
		NumFeatures:    ds.NumFeatures(),
		BasePrior:      make([]float64, k),
		LearningRate:   cfg.LearningRate,
		GainImportance: make([]float64, ds.NumFeatures()),
	}
	// Initialize scores with class log-priors (smoothed).
	counts := ds.ClassCounts()
	for c := 0; c < k; c++ {
		m.BasePrior[c] = math.Log((float64(counts[c]) + 1) / float64(n+k))
	}

	// F[i*k+c] is the current score of sample i for class c.
	F := make([]float64, n*k)
	for i := 0; i < n; i++ {
		copy(F[i*k:(i+1)*k], m.BasePrior)
	}
	probs := make([]float64, n*k)
	grad := make([]float64, n)
	hess := make([]float64, n)

	for round := 0; round < cfg.Rounds; round++ {
		// Softmax over current scores.
		for i := 0; i < n; i++ {
			softmaxInto(F[i*k:(i+1)*k], probs[i*k:(i+1)*k])
		}
		// Row subsample for this round.
		rows := make([]int, 0, n)
		if cfg.Subsample < 1 {
			for i := 0; i < n; i++ {
				if r.Float64() < cfg.Subsample {
					rows = append(rows, i)
				}
			}
			if len(rows) < 2 {
				for i := 0; i < n; i++ {
					rows = append(rows, i)
				}
			}
		} else {
			for i := 0; i < n; i++ {
				rows = append(rows, i)
			}
		}

		// Feature subset for this round's trees.
		var cols []int
		nf := ds.NumFeatures()
		if cfg.ColSample < 1 && nf > 1 {
			nCols := int(cfg.ColSample * float64(nf))
			if nCols < 1 {
				nCols = 1
			}
			perm := r.Perm(nf)
			cols = perm[:nCols]
		}

		roundTrees := make([]*RegTree, k)
		for c := 0; c < k; c++ {
			for i := 0; i < n; i++ {
				p := probs[i*k+c]
				y := 0.0
				if ds.Y[i] == c {
					y = 1
				}
				grad[i] = p - y
				hess[i] = p * (1 - p)
				if hess[i] < 1e-16 {
					hess[i] = 1e-16
				}
			}
			tb := &regBuilder{ds: ds, grad: grad, hess: hess, cfg: cfg, cols: cols, importance: m.GainImportance}
			tree := &RegTree{}
			tb.t = tree
			tb.grow(rows, 0)
			roundTrees[c] = tree
			for i := 0; i < n; i++ {
				F[i*k+c] += cfg.LearningRate * tree.eval(ds.X[i])
			}
		}
		m.Trees = append(m.Trees, roundTrees)
	}
	return m, nil
}

func softmaxInto(scores, out []float64) {
	max := scores[0]
	for _, s := range scores[1:] {
		if s > max {
			max = s
		}
	}
	sum := 0.0
	for i, s := range scores {
		out[i] = math.Exp(s - max)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
}

// regBuilder grows one XGBoost-style regression tree on (grad, hess).
type regBuilder struct {
	ds   *feature.Dataset
	grad []float64
	hess []float64
	cfg  Config
	t    *RegTree
	// cols restricts split search to a feature subset (nil = all).
	cols []int
	// importance accumulates split gains per feature (shared with the
	// model).
	importance []float64
}

func (b *regBuilder) grow(rows []int, depth int) int32 {
	var G, H float64
	for _, i := range rows {
		G += b.grad[i]
		H += b.hess[i]
	}
	nodeIdx := int32(len(b.t.Nodes))
	b.t.Nodes = append(b.t.Nodes, RegNode{Left: -1, Right: -1})

	leafValue := -G / (H + b.cfg.Lambda)
	if depth >= b.cfg.MaxDepth || len(rows) < 2 {
		b.t.Nodes[nodeIdx].Value = leafValue
		return nodeIdx
	}

	f, thr, gain, ok := b.bestSplit(rows, G, H)
	if !ok {
		b.t.Nodes[nodeIdx].Value = leafValue
		return nodeIdx
	}
	if b.importance != nil {
		b.importance[f] += gain
	}
	var left, right []int
	for _, i := range rows {
		if b.ds.X[i][f] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		b.t.Nodes[nodeIdx].Value = leafValue
		return nodeIdx
	}
	b.t.Nodes[nodeIdx].Feature = int32(f)
	b.t.Nodes[nodeIdx].Threshold = thr
	l := b.grow(left, depth+1)
	rr := b.grow(right, depth+1)
	b.t.Nodes[nodeIdx].Left = l
	b.t.Nodes[nodeIdx].Right = rr
	return nodeIdx
}

// bestSplit maximizes the structure-score gain
// GL^2/(HL+λ) + GR^2/(HR+λ) − G^2/(H+λ).
func (b *regBuilder) bestSplit(rows []int, G, H float64) (feat int, thr, bestGain float64, ok bool) {
	lambda := b.cfg.Lambda
	parent := G * G / (H + lambda)
	bestGain = 1e-9

	entries := make([]entry, len(rows))
	feats := b.cols
	if feats == nil {
		feats = make([]int, b.ds.NumFeatures())
		for i := range feats {
			feats[i] = i
		}
	}
	for _, f := range feats {
		for i, s := range rows {
			entries[i] = entry{b.ds.X[s][f], b.grad[s], b.hess[s]}
		}
		sortEntries(entries)
		if entries[0].v == entries[len(entries)-1].v {
			continue
		}
		var gl, hl float64
		for i := 0; i < len(entries)-1; i++ {
			gl += entries[i].g
			hl += entries[i].h
			if entries[i].v == entries[i+1].v {
				continue
			}
			gr := G - gl
			hr := H - hl
			if hl < b.cfg.MinChildWeight || hr < b.cfg.MinChildWeight {
				continue
			}
			gain := gl*gl/(hl+lambda) + gr*gr/(hr+lambda) - parent
			if gain > bestGain {
				bestGain = gain
				feat = f
				thr = (entries[i].v + entries[i+1].v) / 2
				ok = true
			}
		}
	}
	return feat, thr, bestGain, ok
}

// Importance returns the gain-based feature importances normalized to sum
// to 1 (all zeros if no split happened).
func (m *Model) Importance() []float64 {
	out := make([]float64, len(m.GainImportance))
	copy(out, m.GainImportance)
	total := 0.0
	for _, v := range out {
		total += v
	}
	if total > 0 {
		for i := range out {
			out[i] /= total
		}
	}
	return out
}

// PredictProba returns softmax class probabilities for x.
func (m *Model) PredictProba(x []float64) ([]float64, error) {
	if len(x) != m.NumFeatures {
		return nil, fmt.Errorf("gbt: input has %d features, want %d", len(x), m.NumFeatures)
	}
	scores := make([]float64, m.NumClasses)
	copy(scores, m.BasePrior)
	lr := m.LearningRate
	if lr <= 0 {
		lr = 0.3
	}
	for _, round := range m.Trees {
		for c, tree := range round {
			scores[c] += lr * tree.eval(x)
		}
	}
	out := make([]float64, m.NumClasses)
	softmaxInto(scores, out)
	return out, nil
}

// Predict returns the most likely class and its probability.
func (m *Model) Predict(x []float64) (int, float64, error) {
	probs, err := m.PredictProba(x)
	if err != nil {
		return 0, 0, err
	}
	best := 0
	for c, p := range probs {
		if p > probs[best] {
			best = c
		}
	}
	return best, probs[best], nil
}

// SizeBytes estimates in-memory model size.
func (m *Model) SizeBytes() int {
	size := 8 * len(m.BasePrior)
	for _, round := range m.Trees {
		for _, t := range round {
			size += len(t.Nodes) * (8 + 8 + 4 + 4 + 4)
		}
	}
	return size
}

// entry is one (feature value, gradient, hessian) triple used during split
// search.
type entry struct {
	v    float64
	g, h float64
}

// sortEntries sorts by value ascending with an allocation-free quicksort,
// avoiding interface-based sort overhead on this hot path.
func sortEntries(es []entry) {
	// Simple three-way quicksort avoiding interface-based sort.Slice
	// overhead on this hot path.
	var qs func(lo, hi int)
	qs = func(lo, hi int) {
		for hi-lo > 12 {
			mid := lo + (hi-lo)/2
			if es[mid].v < es[lo].v {
				es[mid], es[lo] = es[lo], es[mid]
			}
			if es[hi].v < es[lo].v {
				es[hi], es[lo] = es[lo], es[hi]
			}
			if es[hi].v < es[mid].v {
				es[hi], es[mid] = es[mid], es[hi]
			}
			pivot := es[mid].v
			i, j := lo, hi
			for i <= j {
				for es[i].v < pivot {
					i++
				}
				for es[j].v > pivot {
					j--
				}
				if i <= j {
					es[i], es[j] = es[j], es[i]
					i++
					j--
				}
			}
			if j-lo < hi-i {
				qs(lo, j)
				lo = i
			} else {
				qs(i, hi)
				hi = j
			}
		}
		// Insertion sort for small ranges.
		for i := lo + 1; i <= hi; i++ {
			for j := i; j > lo && es[j].v < es[j-1].v; j-- {
				es[j], es[j-1] = es[j-1], es[j]
			}
		}
	}
	if len(es) > 1 {
		qs(0, len(es)-1)
	}
}
