package gbt

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"resourcecentral/internal/ml/feature"
)

func spiralish(n int, seed uint64) *feature.Dataset {
	r := rand.New(rand.NewPCG(seed, 1))
	d := &feature.Dataset{NumClasses: 4, Names: []string{"x", "y"}}
	for i := 0; i < n; i++ {
		x := r.Float64()*2 - 1
		y := r.Float64()*2 - 1
		label := 0
		if x > 0 {
			label += 1
		}
		if y > 0 {
			label += 2
		}
		d.Add([]float64{x, y}, label)
	}
	return d
}

func modelAccuracy(t *testing.T, m *Model, ds *feature.Dataset) float64 {
	t.Helper()
	correct := 0
	for i := range ds.X {
		pred, _, err := m.Predict(ds.X[i])
		if err != nil {
			t.Fatal(err)
		}
		if pred == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}

func TestGBTLearnsQuadrants(t *testing.T) {
	train := spiralish(800, 1)
	test := spiralish(300, 2)
	m, err := Train(train, Config{Rounds: 30, MaxDepth: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if acc := modelAccuracy(t, m, test); acc < 0.97 {
		t.Errorf("quadrant accuracy = %.3f, want >= 0.97", acc)
	}
}

func TestGBTImprovesWithRounds(t *testing.T) {
	train := spiralish(600, 4)
	test := spiralish(300, 5)
	weak, err := Train(train, Config{Rounds: 1, MaxDepth: 1, LearningRate: 0.1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	strong, err := Train(train, Config{Rounds: 40, MaxDepth: 3, LearningRate: 0.3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	wa := modelAccuracy(t, weak, test)
	sa := modelAccuracy(t, strong, test)
	if sa <= wa {
		t.Errorf("more rounds did not help: weak %.3f, strong %.3f", wa, sa)
	}
}

func TestGBTSubsample(t *testing.T) {
	train := spiralish(500, 7)
	m, err := Train(train, Config{Rounds: 25, MaxDepth: 3, Subsample: 0.7, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if acc := modelAccuracy(t, m, train); acc < 0.95 {
		t.Errorf("subsampled accuracy = %.3f", acc)
	}
}

func TestGBTDeterministic(t *testing.T) {
	train := spiralish(300, 9)
	cfg := Config{Rounds: 10, MaxDepth: 3, Subsample: 0.8, Seed: 10}
	a, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.3, -0.4}
	pa, _ := a.PredictProba(probe)
	pb, _ := b.PredictProba(probe)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("training not deterministic")
		}
	}
}

func TestGBTClassPriorsOnly(t *testing.T) {
	// Constant features: GBT should fall back to class priors.
	d := &feature.Dataset{NumClasses: 2}
	for i := 0; i < 100; i++ {
		label := 0
		if i < 80 {
			label = 1 // 80% class 1
		}
		d.Add([]float64{1}, label)
	}
	m, err := Train(d, Config{Rounds: 5})
	if err != nil {
		t.Fatal(err)
	}
	pred, score, err := m.Predict([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if pred != 1 {
		t.Errorf("pred = %d, want majority class 1", pred)
	}
	if score < 0.6 {
		t.Errorf("majority score = %.3f, want > 0.6", score)
	}
}

func TestGBTErrors(t *testing.T) {
	if _, err := Train(&feature.Dataset{NumClasses: 2}, Config{}); err == nil {
		t.Error("expected error on empty dataset")
	}
	m, _ := Train(spiralish(100, 11), Config{Rounds: 2})
	if _, err := m.PredictProba([]float64{1}); err == nil {
		t.Error("expected dimension error")
	}
}

func TestGBTSizeBytes(t *testing.T) {
	m, _ := Train(spiralish(100, 12), Config{Rounds: 3})
	if m.SizeBytes() <= 0 {
		t.Error("size should be positive")
	}
}

func TestSortEntries(t *testing.T) {
	r := rand.New(rand.NewPCG(13, 14))
	for trial := 0; trial < 30; trial++ {
		n := 1 + r.IntN(500)
		es := make([]entry, n)
		for i := range es {
			es[i] = entry{v: r.Float64(), g: float64(i), h: 1}
		}
		sortEntries(es)
		for i := 1; i < n; i++ {
			if es[i].v < es[i-1].v {
				t.Fatalf("trial %d: not sorted at %d", trial, i)
			}
		}
	}
}

func TestSoftmax(t *testing.T) {
	out := make([]float64, 3)
	softmaxInto([]float64{1, 1, 1}, out)
	for _, p := range out {
		if math.Abs(p-1.0/3) > 1e-12 {
			t.Errorf("uniform softmax = %v", out)
		}
	}
	// Large scores must not overflow.
	softmaxInto([]float64{1000, 0, -1000}, out)
	if out[0] < 0.999 || math.IsNaN(out[0]) {
		t.Errorf("softmax overflow: %v", out)
	}
}

// Property: probabilities are valid and Predict is the argmax.
func TestQuickGBTProbsValid(t *testing.T) {
	m, err := Train(spiralish(300, 15), Config{Rounds: 8, MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			return true
		}
		probs, err := m.PredictProba([]float64{x, y})
		if err != nil {
			return false
		}
		sum := 0.0
		best := 0
		for c, p := range probs {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
			sum += p
			if p > probs[best] {
				best = c
			}
		}
		cls, score, err := m.Predict([]float64{x, y})
		if err != nil {
			return false
		}
		return math.Abs(sum-1) < 1e-9 && cls == best && score == probs[best]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
