package forest

import (
	"math"
	"math/rand/v2"
	"testing"

	"resourcecentral/internal/ml/dtree"
	"resourcecentral/internal/ml/feature"
)

// noisyBlobs builds a 3-class gaussian-blob dataset with label noise.
func noisyBlobs(n int, seed uint64) *feature.Dataset {
	r := rand.New(rand.NewPCG(seed, 1))
	centers := [][]float64{{0, 0}, {4, 0}, {2, 4}}
	d := &feature.Dataset{NumClasses: 3, Names: []string{"x", "y"}}
	for i := 0; i < n; i++ {
		c := i % 3
		x := centers[c][0] + r.NormFloat64()
		y := centers[c][1] + r.NormFloat64()
		label := c
		if r.Float64() < 0.05 {
			label = r.IntN(3)
		}
		d.Add([]float64{x, y}, label)
	}
	return d
}

func forestAccuracy(t *testing.T, f *Forest, ds *feature.Dataset) float64 {
	t.Helper()
	correct := 0
	for i := range ds.X {
		pred, _, err := f.Predict(ds.X[i])
		if err != nil {
			t.Fatal(err)
		}
		if pred == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}

func TestForestLearnsBlobs(t *testing.T) {
	train := noisyBlobs(900, 1)
	test := noisyBlobs(300, 2)
	f, err := Train(train, Config{Trees: 30, MaxDepth: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if acc := forestAccuracy(t, f, test); acc < 0.85 {
		t.Errorf("blob accuracy = %.3f, want >= 0.85", acc)
	}
}

func TestForestBeatsSingleShallowTree(t *testing.T) {
	train := noisyBlobs(600, 4)
	test := noisyBlobs(300, 5)
	f, err := Train(train, Config{Trees: 40, MaxDepth: 6, MaxFeatures: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	single, err := dtree.Train(train, dtree.Config{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range test.X {
		pred, _, _ := single.Predict(test.X[i])
		if pred == test.Y[i] {
			correct++
		}
	}
	singleAcc := float64(correct) / float64(test.Len())
	if facc := forestAccuracy(t, f, test); facc <= singleAcc-0.02 {
		t.Errorf("forest %.3f not better than shallow tree %.3f", facc, singleAcc)
	}
}

func TestForestDeterministicDespiteConcurrency(t *testing.T) {
	train := noisyBlobs(300, 7)
	cfg := Config{Trees: 16, MaxDepth: 5, Seed: 11, Workers: 4}
	a, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	b, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{2, 2}
	pa, _ := a.PredictProba(probe)
	pb, _ := b.PredictProba(probe)
	for c := range pa {
		if pa[c] != pb[c] {
			t.Fatalf("concurrency changed results: %v vs %v", pa, pb)
		}
	}
}

func TestForestDefaults(t *testing.T) {
	train := noisyBlobs(150, 8)
	f, err := Train(train, Config{Trees: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Trees) != 5 {
		t.Errorf("trees = %d", len(f.Trees))
	}
	// Default MaxFeatures = sqrt(2) = 1; just ensure it trained.
	probs, err := f.PredictProba([]float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range probs {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probs sum = %v", sum)
	}
}

func TestForestErrors(t *testing.T) {
	if _, err := Train(&feature.Dataset{NumClasses: 2}, Config{}); err == nil {
		t.Error("expected error on empty dataset")
	}
	empty := &Forest{NumClasses: 2}
	if _, err := empty.PredictProba([]float64{1}); err == nil {
		t.Error("expected error on empty forest")
	}
	f, _ := Train(noisyBlobs(60, 9), Config{Trees: 2})
	if _, _, err := f.Predict([]float64{1}); err == nil {
		t.Error("expected dimension error")
	}
}

func TestForestScoreIsConfidence(t *testing.T) {
	train := noisyBlobs(600, 10)
	f, err := Train(train, Config{Trees: 25, MaxDepth: 8, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	// Deep inside a cluster the confidence should be high; between
	// clusters it should be lower.
	_, confident, _ := f.Predict([]float64{0, 0})
	_, uncertain, _ := f.Predict([]float64{2, 1.3})
	if confident < uncertain {
		t.Errorf("center confidence %.3f < boundary confidence %.3f", confident, uncertain)
	}
	if confident < 0.6 {
		t.Errorf("cluster-center confidence %.3f unexpectedly low", confident)
	}
}

func TestForestSizeBytes(t *testing.T) {
	f, _ := Train(noisyBlobs(100, 13), Config{Trees: 3})
	if f.SizeBytes() <= 0 {
		t.Error("size should be positive")
	}
}
