// Package forest implements random-forest classifiers (bootstrap
// aggregation of CART trees with per-split feature subsampling) — the
// modelling approach the paper uses for the average and P95 CPU
// utilization metrics (Table 1).
package forest

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"
	"sync"

	"resourcecentral/internal/ml/dtree"
	"resourcecentral/internal/ml/feature"
)

// Config controls forest training.
type Config struct {
	// Trees is the ensemble size (0 = 100).
	Trees int
	// MaxDepth limits each tree (0 = 64).
	MaxDepth int
	// MinLeaf is the per-tree minimum leaf size (0 = 1).
	MinLeaf int
	// MaxFeatures examined per split (0 = sqrt of feature count).
	MaxFeatures int
	// Criterion is the split impurity measure.
	Criterion dtree.Criterion
	// Seed makes training reproducible.
	Seed uint64
	// Workers bounds training parallelism (0 = GOMAXPROCS).
	Workers int
}

func (c Config) withDefaults(numFeatures int) Config {
	if c.Trees <= 0 {
		c.Trees = 100
	}
	if c.MaxFeatures <= 0 {
		c.MaxFeatures = int(math.Sqrt(float64(numFeatures)))
		if c.MaxFeatures < 1 {
			c.MaxFeatures = 1
		}
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Forest is a trained random forest.
type Forest struct {
	Trees      []*dtree.Tree
	NumClasses int
}

// Train fits the ensemble. Trees are trained concurrently but the result
// is deterministic for a given Config.Seed.
func Train(ds *feature.Dataset, cfg Config) (*Forest, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if ds.Len() == 0 {
		return nil, errors.New("forest: empty dataset")
	}
	cfg = cfg.withDefaults(ds.NumFeatures())

	f := &Forest{
		Trees:      make([]*dtree.Tree, cfg.Trees),
		NumClasses: ds.NumClasses,
	}
	// Pre-derive one seed per tree so concurrency cannot affect results.
	seeds := make([]uint64, cfg.Trees)
	seedGen := rand.New(rand.NewPCG(cfg.Seed, 0xf0125))
	for i := range seeds {
		seeds[i] = seedGen.Uint64()
	}

	var wg sync.WaitGroup
	errs := make([]error, cfg.Trees)
	sem := make(chan struct{}, cfg.Workers)
	for i := 0; i < cfg.Trees; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r := rand.New(rand.NewPCG(seeds[i], 0xb001))
			boot := bootstrap(ds, r)
			tree, err := dtree.Train(boot, dtree.Config{
				MaxDepth:    cfg.MaxDepth,
				MinLeaf:     cfg.MinLeaf,
				MaxFeatures: cfg.MaxFeatures,
				Criterion:   cfg.Criterion,
				Seed:        seeds[i] ^ 0x51ee7,
			})
			if err != nil {
				errs[i] = err
				return
			}
			f.Trees[i] = tree
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("forest: tree training: %w", err)
		}
	}
	return f, nil
}

// bootstrap draws n samples with replacement (rows shared, not copied).
func bootstrap(ds *feature.Dataset, r *rand.Rand) *feature.Dataset {
	n := ds.Len()
	out := &feature.Dataset{
		Names:      ds.Names,
		NumClasses: ds.NumClasses,
		X:          make([][]float64, n),
		Y:          make([]int, n),
	}
	for i := 0; i < n; i++ {
		j := r.IntN(n)
		out.X[i] = ds.X[j]
		out.Y[i] = ds.Y[j]
	}
	return out
}

// PredictProba averages the trees' class distributions.
func (f *Forest) PredictProba(x []float64) ([]float64, error) {
	if len(f.Trees) == 0 {
		return nil, errors.New("forest: no trees")
	}
	acc := make([]float64, f.NumClasses)
	for _, t := range f.Trees {
		p, err := t.PredictProba(x)
		if err != nil {
			return nil, err
		}
		for c, v := range p {
			acc[c] += v
		}
	}
	for c := range acc {
		acc[c] /= float64(len(f.Trees))
	}
	return acc, nil
}

// Predict returns the most likely class and its averaged probability,
// which serves as the prediction confidence score.
func (f *Forest) Predict(x []float64) (int, float64, error) {
	probs, err := f.PredictProba(x)
	if err != nil {
		return 0, 0, err
	}
	best := 0
	for c, p := range probs {
		if p > probs[best] {
			best = c
		}
	}
	return best, probs[best], nil
}

// Importance averages the trees' impurity-decrease feature importances,
// normalized to sum to 1 (all zeros if the forest never split).
func (f *Forest) Importance() []float64 {
	if len(f.Trees) == 0 {
		return nil
	}
	out := make([]float64, f.Trees[0].NumFeatures)
	for _, t := range f.Trees {
		for i, v := range t.Importance {
			out[i] += v
		}
	}
	total := 0.0
	for _, v := range out {
		total += v
	}
	if total > 0 {
		for i := range out {
			out[i] /= total
		}
	}
	return out
}

// SizeBytes estimates the in-memory model size.
func (f *Forest) SizeBytes() int {
	size := 0
	for _, t := range f.Trees {
		size += t.SizeBytes()
	}
	return size
}
