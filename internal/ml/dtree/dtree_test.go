package dtree

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"resourcecentral/internal/ml/feature"
)

// xorDataset is a classic non-linearly-separable problem a depth-2 tree
// solves exactly.
func xorDataset(n int, seed uint64) *feature.Dataset {
	r := rand.New(rand.NewPCG(seed, 1))
	d := &feature.Dataset{NumClasses: 2, Names: []string{"x", "y"}}
	for i := 0; i < n; i++ {
		x := r.Float64()
		y := r.Float64()
		label := 0
		if (x > 0.5) != (y > 0.5) {
			label = 1
		}
		d.Add([]float64{x, y}, label)
	}
	return d
}

func accuracy(t *testing.T, tree *Tree, ds *feature.Dataset) float64 {
	t.Helper()
	correct := 0
	for i := range ds.X {
		pred, _, err := tree.Predict(ds.X[i])
		if err != nil {
			t.Fatal(err)
		}
		if pred == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}

func TestTrainSolvesXOR(t *testing.T) {
	train := xorDataset(600, 1)
	test := xorDataset(200, 2)
	tree, err := Train(train, Config{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(t, tree, test); acc < 0.97 {
		t.Errorf("XOR accuracy = %.3f, want >= 0.97", acc)
	}
}

func TestTrainBothCriteria(t *testing.T) {
	train := xorDataset(400, 3)
	for _, crit := range []Criterion{Gini, Entropy} {
		tree, err := Train(train, Config{MaxDepth: 4, Criterion: crit})
		if err != nil {
			t.Fatalf("%v: %v", crit, err)
		}
		if acc := accuracy(t, tree, train); acc < 0.97 {
			t.Errorf("%v train accuracy = %.3f", crit, acc)
		}
	}
}

func TestCriterionString(t *testing.T) {
	if Gini.String() != "gini" || Entropy.String() != "entropy" {
		t.Error("criterion names wrong")
	}
}

func TestMaxDepthLimitsTree(t *testing.T) {
	train := xorDataset(500, 4)
	tree, err := Train(train, Config{MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d := tree.Depth(); d > 1 {
		t.Errorf("depth = %d, want <= 1", d)
	}
}

func TestMinLeafRespected(t *testing.T) {
	train := xorDataset(200, 5)
	tree, err := Train(train, Config{MaxDepth: 10, MinLeaf: 50})
	if err != nil {
		t.Fatal(err)
	}
	// With MinLeaf 50 on 200 samples, at most 4 leaves are possible.
	if l := tree.NumLeaves(); l > 4 {
		t.Errorf("leaves = %d, want <= 4", l)
	}
}

func TestPureNodeBecomesLeaf(t *testing.T) {
	d := &feature.Dataset{NumClasses: 2}
	for i := 0; i < 20; i++ {
		d.Add([]float64{float64(i)}, 0) // single class
	}
	tree, err := Train(d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Nodes) != 1 || tree.Nodes[0].Left != -1 {
		t.Errorf("pure dataset should produce a single leaf, got %d nodes", len(tree.Nodes))
	}
	probs, err := tree.PredictProba([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if probs[0] != 1 {
		t.Errorf("probs = %v", probs)
	}
}

func TestConstantFeaturesBecomeLeaf(t *testing.T) {
	d := &feature.Dataset{NumClasses: 2}
	for i := 0; i < 10; i++ {
		d.Add([]float64{7}, i%2) // unseparable
	}
	tree, err := Train(d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Nodes) != 1 {
		t.Errorf("constant features should yield a leaf, got %d nodes", len(tree.Nodes))
	}
	probs, _ := tree.PredictProba([]float64{7})
	if math.Abs(probs[0]-0.5) > 1e-9 {
		t.Errorf("probs = %v, want [0.5 0.5]", probs)
	}
}

func TestPredictDimensionMismatch(t *testing.T) {
	tree, err := Train(xorDataset(50, 6), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.PredictProba([]float64{1}); err == nil {
		t.Error("expected dimension error")
	}
	if _, _, err := tree.Predict([]float64{1, 2, 3}); err == nil {
		t.Error("expected dimension error")
	}
}

func TestTrainRejectsBadDataset(t *testing.T) {
	if _, err := Train(&feature.Dataset{NumClasses: 2}, Config{}); err == nil {
		t.Error("expected error on empty dataset")
	}
	bad := &feature.Dataset{NumClasses: 2, X: [][]float64{{1}}, Y: []int{5}}
	if _, err := Train(bad, Config{}); err == nil {
		t.Error("expected error on invalid labels")
	}
}

func TestDeterministicTraining(t *testing.T) {
	train := xorDataset(300, 7)
	t1, err := Train(train, Config{MaxFeatures: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Train(train, Config{MaxFeatures: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Nodes) != len(t2.Nodes) {
		t.Fatal("node counts differ")
	}
	for i := range t1.Nodes {
		if t1.Nodes[i].Feature != t2.Nodes[i].Feature || t1.Nodes[i].Threshold != t2.Nodes[i].Threshold {
			t.Fatal("trees differ")
		}
	}
}

func TestSizeBytesPositive(t *testing.T) {
	tree, _ := Train(xorDataset(100, 8), Config{})
	if tree.SizeBytes() <= 0 {
		t.Error("size should be positive")
	}
}

// Property: predicted distributions are valid probabilities summing to 1.
func TestQuickProbsSumToOne(t *testing.T) {
	tree, err := Train(xorDataset(300, 10), Config{MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			return true
		}
		probs, err := tree.PredictProba([]float64{x, y})
		if err != nil {
			return false
		}
		sum := 0.0
		for _, p := range probs {
			if p < 0 || p > 1 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Predict agrees with the argmax of PredictProba.
func TestQuickPredictIsArgmax(t *testing.T) {
	tree, err := Train(xorDataset(300, 11), Config{MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		probs, err := tree.PredictProba([]float64{x, y})
		if err != nil {
			return false
		}
		cls, score, err := tree.Predict([]float64{x, y})
		if err != nil {
			return false
		}
		return probs[cls] == score && score >= probs[1-cls]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
