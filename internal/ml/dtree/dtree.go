// Package dtree implements CART-style classification decision trees — the
// base learner of the random forests used by Resource Central's
// utilization models (Table 1).
package dtree

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"resourcecentral/internal/ml/feature"
)

// Criterion selects the impurity measure used to score splits.
type Criterion int

// Impurity criteria.
const (
	Gini Criterion = iota
	Entropy
)

// String implements fmt.Stringer.
func (c Criterion) String() string {
	if c == Entropy {
		return "entropy"
	}
	return "gini"
}

// Config controls tree induction. The zero value trains a fully grown gini
// tree on all features.
type Config struct {
	// MaxDepth limits tree depth (0 = 64).
	MaxDepth int
	// MinLeaf is the minimum number of samples in a leaf (0 = 1).
	MinLeaf int
	// MinSplit is the minimum samples required to attempt a split (0 = 2).
	MinSplit int
	// MaxFeatures is the number of features examined per split (0 = all);
	// random forests use sqrt(#features).
	MaxFeatures int
	// Criterion selects gini or entropy.
	Criterion Criterion
	// Seed drives feature subsampling.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 64
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 1
	}
	if c.MinSplit < 2 {
		c.MinSplit = 2
	}
	return c
}

// Node is one tree node. Leaves have Left == -1 and carry the class
// distribution; internal nodes route on X[Feature] <= Threshold.
type Node struct {
	Feature   int32
	Threshold float64
	Left      int32
	Right     int32
	Probs     []float32
}

// Tree is a trained classification tree.
type Tree struct {
	Nodes       []Node
	NumClasses  int
	NumFeatures int
	// Importance accumulates each feature's total impurity decrease,
	// weighted by the fraction of samples reaching the split (the paper
	// reports which attributes matter most per metric).
	Importance []float64
}

// Train grows a tree on ds.
func Train(ds *feature.Dataset, cfg Config) (*Tree, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if ds.Len() == 0 {
		return nil, errors.New("dtree: empty dataset")
	}
	cfg = cfg.withDefaults()
	t := &Tree{
		NumClasses:  ds.NumClasses,
		NumFeatures: ds.NumFeatures(),
		Importance:  make([]float64, ds.NumFeatures()),
	}
	b := &builder{
		ds:  ds,
		cfg: cfg,
		t:   t,
		r:   rand.New(rand.NewPCG(cfg.Seed, 0x7ee5)),
	}
	idx := make([]int, ds.Len())
	for i := range idx {
		idx[i] = i
	}
	b.total = ds.Len()
	b.grow(idx, 0)
	return t, nil
}

type builder struct {
	ds    *feature.Dataset
	cfg   Config
	t     *Tree
	r     *rand.Rand
	total int
}

// grow builds the subtree over idx and returns its node index.
func (b *builder) grow(idx []int, depth int) int32 {
	counts := make([]int, b.ds.NumClasses)
	for _, i := range idx {
		counts[b.ds.Y[i]]++
	}
	nodeIdx := int32(len(b.t.Nodes))
	b.t.Nodes = append(b.t.Nodes, Node{Left: -1, Right: -1})

	pure := false
	for _, c := range counts {
		if c == len(idx) {
			pure = true
		}
	}
	if pure || depth >= b.cfg.MaxDepth || len(idx) < b.cfg.MinSplit {
		b.t.Nodes[nodeIdx].Probs = probsFromCounts(counts)
		return nodeIdx
	}

	f, thr, gain, ok := b.bestSplit(idx, counts)
	if !ok {
		b.t.Nodes[nodeIdx].Probs = probsFromCounts(counts)
		return nodeIdx
	}
	b.t.Importance[f] += gain * float64(len(idx)) / float64(b.total)

	var left, right []int
	for _, i := range idx {
		if b.ds.X[i][f] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.cfg.MinLeaf || len(right) < b.cfg.MinLeaf {
		b.t.Nodes[nodeIdx].Probs = probsFromCounts(counts)
		return nodeIdx
	}

	b.t.Nodes[nodeIdx].Feature = int32(f)
	b.t.Nodes[nodeIdx].Threshold = thr
	l := b.grow(left, depth+1)
	r := b.grow(right, depth+1)
	b.t.Nodes[nodeIdx].Left = l
	b.t.Nodes[nodeIdx].Right = r
	return nodeIdx
}

// bestSplit searches (a subset of) features for the impurity-minimizing
// threshold.
func (b *builder) bestSplit(idx []int, parentCounts []int) (feat int, thr, bestGain float64, ok bool) {
	nf := b.ds.NumFeatures()
	feats := make([]int, nf)
	for i := range feats {
		feats[i] = i
	}
	if b.cfg.MaxFeatures > 0 && b.cfg.MaxFeatures < nf {
		b.r.Shuffle(nf, func(i, j int) { feats[i], feats[j] = feats[j], feats[i] })
		feats = feats[:b.cfg.MaxFeatures]
	}

	parent := b.impurity(parentCounts, len(idx))
	bestGain = 1e-12
	n := float64(len(idx))

	type pair struct {
		v float64
		y int
	}
	pairs := make([]pair, len(idx))
	leftCounts := make([]int, b.ds.NumClasses)
	rightCounts := make([]int, b.ds.NumClasses)

	for _, f := range feats {
		for i, s := range idx {
			pairs[i] = pair{b.ds.X[s][f], b.ds.Y[s]}
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })
		if pairs[0].v == pairs[len(pairs)-1].v {
			continue // constant feature in this node
		}
		for c := range leftCounts {
			leftCounts[c] = 0
			rightCounts[c] = parentCounts[c]
		}
		for i := 0; i < len(pairs)-1; i++ {
			leftCounts[pairs[i].y]++
			rightCounts[pairs[i].y]--
			if pairs[i].v == pairs[i+1].v {
				continue
			}
			nl := i + 1
			nr := len(pairs) - nl
			if nl < b.cfg.MinLeaf || nr < b.cfg.MinLeaf {
				continue
			}
			gain := parent -
				(float64(nl)/n)*b.impurity(leftCounts, nl) -
				(float64(nr)/n)*b.impurity(rightCounts, nr)
			if gain > bestGain {
				bestGain = gain
				feat = f
				thr = (pairs[i].v + pairs[i+1].v) / 2
				ok = true
			}
		}
	}
	return feat, thr, bestGain, ok
}

func (b *builder) impurity(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	switch b.cfg.Criterion {
	case Entropy:
		h := 0.0
		for _, c := range counts {
			if c > 0 {
				p := float64(c) / float64(n)
				h -= p * math.Log2(p)
			}
		}
		return h
	default: // Gini
		g := 1.0
		for _, c := range counts {
			p := float64(c) / float64(n)
			g -= p * p
		}
		return g
	}
}

func probsFromCounts(counts []int) []float32 {
	total := 0
	for _, c := range counts {
		total += c
	}
	probs := make([]float32, len(counts))
	if total == 0 {
		return probs
	}
	for i, c := range counts {
		probs[i] = float32(c) / float32(total)
	}
	return probs
}

// PredictProba returns the class distribution for x.
func (t *Tree) PredictProba(x []float64) ([]float64, error) {
	if len(x) != t.NumFeatures {
		return nil, fmt.Errorf("dtree: input has %d features, want %d", len(x), t.NumFeatures)
	}
	i := int32(0)
	for {
		n := &t.Nodes[i]
		if n.Left < 0 {
			out := make([]float64, len(n.Probs))
			for c, p := range n.Probs {
				out[c] = float64(p)
			}
			return out, nil
		}
		if x[n.Feature] <= n.Threshold {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// Predict returns the most likely class and its probability.
func (t *Tree) Predict(x []float64) (int, float64, error) {
	probs, err := t.PredictProba(x)
	if err != nil {
		return 0, 0, err
	}
	best := 0
	for c, p := range probs {
		if p > probs[best] {
			best = c
		}
	}
	return best, probs[best], nil
}

// Depth returns the maximum depth of the tree (root = 0).
func (t *Tree) Depth() int {
	var walk func(i int32, d int) int
	walk = func(i int32, d int) int {
		n := &t.Nodes[i]
		if n.Left < 0 {
			return d
		}
		l := walk(n.Left, d+1)
		r := walk(n.Right, d+1)
		if l > r {
			return l
		}
		return r
	}
	if len(t.Nodes) == 0 {
		return 0
	}
	return walk(0, 0)
}

// NumLeaves counts leaf nodes.
func (t *Tree) NumLeaves() int {
	n := 0
	for i := range t.Nodes {
		if t.Nodes[i].Left < 0 {
			n++
		}
	}
	return n
}

// SizeBytes estimates the in-memory model size (Table 1 reports model
// sizes in the hundreds of kilobytes).
func (t *Tree) SizeBytes() int {
	size := 0
	for i := range t.Nodes {
		size += 8 + 4 + 4 + 4 + 4*len(t.Nodes[i].Probs) // threshold + ids + probs
	}
	return size
}
