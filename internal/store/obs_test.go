package store

import (
	"testing"
	"time"

	"resourcecentral/internal/obs"
)

func TestStoreInstrumented(t *testing.T) {
	reg := obs.NewRegistry()
	s := New()
	s.Instrument(reg)

	// One subscriber with a full channel to exercise the dropped-notification
	// counter alongside a healthy one.
	healthy := make(chan Notification, 4)
	full := make(chan Notification) // unbuffered, never read
	s.Subscribe(healthy)
	s.Subscribe(full)

	if _, err := s.Put("model/x", make([]byte, 850)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("model/x"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("missing"); err == nil {
		t.Fatal("expected not-found")
	}
	s.SetAvailable(false)
	if _, err := s.Get("model/x"); err == nil {
		t.Fatal("expected unavailable")
	}
	s.SetAvailable(true)

	counts := map[string]float64{}
	gauges := map[string]float64{}
	for _, fam := range reg.Gather() {
		for _, sm := range fam.Samples {
			if sm.Histogram == nil {
				counts[fam.Name] = sm.Value
				gauges[fam.Name] = sm.Value
			}
		}
	}
	for name, want := range map[string]float64{
		"rc_store_puts_total":                  1,
		"rc_store_gets_total":                  2, // hit + not-found (store was up)
		"rc_store_get_errors_total":            2, // not-found + unavailable
		"rc_store_notifications_sent_total":    1,
		"rc_store_notifications_dropped_total": 1,
		"rc_store_keys":                        1,
		"rc_store_subscribers":                 2,
	} {
		if counts[name] != want {
			t.Errorf("%s = %g, want %g", name, counts[name], want)
		}
	}

	bytesSnap, ok := reg.Snapshot("rc_store_record_bytes")
	if !ok || bytesSnap.Count != 1 || bytesSnap.Sum != 850 {
		t.Errorf("record bytes = %+v (ok=%v)", bytesSnap, ok)
	}
	latSnap, ok := reg.Snapshot("rc_store_get_seconds")
	if !ok || latSnap.Count != 2 {
		t.Errorf("get seconds = %+v (ok=%v)", latSnap, ok)
	}
}

// TestStoreLatencyHistogramMatchesModel checks the exposed pull-latency
// histogram reproduces the injected Section 6.1 distribution (median
// 2.9 ms) without sleeping.
func TestStoreLatencyHistogramMatchesModel(t *testing.T) {
	reg := obs.NewRegistry()
	s := New()
	s.Instrument(reg)
	s.Latency = LatencyModel{Median: 2900 * time.Microsecond, P99: 5600 * time.Microsecond}
	if _, err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if _, err := s.Get("k"); err != nil {
			t.Fatal(err)
		}
	}
	snap, ok := reg.Snapshot("rc_store_get_seconds")
	if !ok || snap.Count != 2000 {
		t.Fatalf("snapshot = %+v (ok=%v)", snap, ok)
	}
	p50 := snap.Quantile(0.5)
	if p50 < 2e-3 || p50 > 4e-3 {
		t.Errorf("P50 = %.4gs, want ~2.9ms", p50)
	}
	p99 := snap.Quantile(0.99)
	if p99 < 4e-3 || p99 > 9e-3 {
		t.Errorf("P99 = %.4gs, want ~5.6ms", p99)
	}
}

func TestUninstrumentedStoreStillWorks(t *testing.T) {
	s := New()
	if _, err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("k"); err != nil {
		t.Fatal(err)
	}
}
