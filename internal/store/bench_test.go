package store

import (
	"strconv"
	"testing"
)

func BenchmarkGet(b *testing.B) {
	s := New()
	payload := make([]byte, 850)
	for i := 0; i < 1000; i++ {
		if _, err := s.Put("k"+strconv.Itoa(i), payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get("k" + strconv.Itoa(i%1000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPut(b *testing.B) {
	s := New()
	payload := make([]byte, 850)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Put("k"+strconv.Itoa(i%100), payload); err != nil {
			b.Fatal(err)
		}
	}
}
