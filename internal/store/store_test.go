package store

import (
	"errors"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestPutGetRoundTrip(t *testing.T) {
	s := New()
	v, err := s.Put("model/lifetime", []byte("abc"))
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Errorf("version = %d, want 1", v)
	}
	b, err := s.Get("model/lifetime")
	if err != nil {
		t.Fatal(err)
	}
	if string(b.Data) != "abc" || b.Version != 1 || b.Key != "model/lifetime" {
		t.Errorf("blob = %+v", b)
	}
}

func TestVersionsIncrement(t *testing.T) {
	s := New()
	s.Put("k", []byte("1"))
	v, _ := s.Put("k", []byte("2"))
	if v != 2 {
		t.Errorf("version = %d, want 2", v)
	}
	b, _ := s.Get("k")
	if string(b.Data) != "2" {
		t.Errorf("data = %q", b.Data)
	}
}

func TestPutCopiesData(t *testing.T) {
	s := New()
	data := []byte("orig")
	s.Put("k", data)
	data[0] = 'X'
	b, _ := s.Get("k")
	if string(b.Data) != "orig" {
		t.Error("store aliased caller's buffer")
	}
}

func TestGetMissing(t *testing.T) {
	s := New()
	_, err := s.Get("nope")
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	s := New()
	if _, err := s.Put("", nil); err == nil {
		t.Error("expected error for empty key")
	}
}

func TestUnavailability(t *testing.T) {
	s := New()
	s.Put("k", []byte("v"))
	s.SetAvailable(false)
	if _, err := s.Get("k"); !errors.Is(err, ErrUnavailable) {
		t.Errorf("err = %v, want ErrUnavailable", err)
	}
	// Puts still succeed (pipeline side).
	if _, err := s.Put("k", []byte("v2")); err != nil {
		t.Errorf("put while unavailable: %v", err)
	}
	s.SetAvailable(true)
	b, err := s.Get("k")
	if err != nil || string(b.Data) != "v2" {
		t.Errorf("recovered get = %+v, %v", b, err)
	}
}

func TestKeys(t *testing.T) {
	s := New()
	s.Put("b", nil)
	s.Put("a", nil)
	keys := s.Keys()
	sort.Strings(keys)
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Errorf("keys = %v", keys)
	}
}

func TestPushNotification(t *testing.T) {
	s := New()
	ch := make(chan Notification, 4)
	s.Subscribe(ch)
	s.Put("m", []byte("x"))
	s.Put("m", []byte("y"))
	n1 := <-ch
	n2 := <-ch
	if n1.Key != "m" || n1.Version != 1 || n2.Version != 2 {
		t.Errorf("notifications = %+v %+v", n1, n2)
	}
}

func TestPushDoesNotBlockOnSlowSubscriber(t *testing.T) {
	s := New()
	ch := make(chan Notification) // unbuffered and never drained
	s.Subscribe(ch)
	done := make(chan struct{})
	go func() {
		s.Put("k", nil)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Put blocked on slow subscriber")
	}
}

func TestLatencyModelDistribution(t *testing.T) {
	l := LatencyModel{Median: 2900 * time.Microsecond, P99: 5600 * time.Microsecond}
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = float64(l.sample(uint64(i)))
	}
	sort.Float64s(samples)
	median := time.Duration(samples[len(samples)/2])
	p99 := time.Duration(samples[int(0.99*float64(len(samples)))])
	if median < 2500*time.Microsecond || median > 3300*time.Microsecond {
		t.Errorf("median = %v, want ~2.9ms", median)
	}
	if p99 < 4800*time.Microsecond || p99 > 6500*time.Microsecond {
		t.Errorf("p99 = %v, want ~5.6ms", p99)
	}
}

func TestZeroLatencyModel(t *testing.T) {
	var l LatencyModel
	if l.sample(1) != 0 {
		t.Error("zero model should inject no latency")
	}
}

func TestLatencyReportedWithoutSleep(t *testing.T) {
	s := New()
	s.Latency = LatencyModel{Median: time.Millisecond, P99: 2 * time.Millisecond}
	s.Put("k", nil)
	start := time.Now()
	if _, err := s.Get("k"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Microsecond {
		t.Logf("get took %v (expected fast path without Sleep)", elapsed)
	}
	if s.LastLatency() <= 0 {
		t.Error("LastLatency not recorded")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				key := []string{"a", "b", "c"}[j%3]
				if i%2 == 0 {
					s.Put(key, []byte{byte(j)})
				} else {
					s.Get(key)
				}
			}
		}(i)
	}
	wg.Wait()
	// Survived the race detector; verify final state readable.
	if _, err := s.Get("a"); err != nil && !errors.Is(err, ErrNotFound) {
		t.Errorf("final get: %v", err)
	}
}
