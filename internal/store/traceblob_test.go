package store

import (
	"errors"
	"reflect"
	"testing"

	"resourcecentral/internal/trace"
)

func traceFixture() *trace.Columns {
	tr := &trace.Trace{Horizon: 10080}
	for i := 0; i < 100; i++ {
		tr.VMs = append(tr.VMs, trace.VM{
			ID:           int64(i + 1),
			Subscription: "sub-" + string(rune('a'+i%3)),
			Deployment:   "dep-" + string(rune('a'+i%7)),
			Region:       "us-east",
			Cores:        1 << (i % 4),
			MemoryGB:     1.75,
			Created:      trace.Minutes(i * 13),
			Deleted:      trace.Minutes(i*13 + 500),
		})
	}
	return trace.FromTrace(tr)
}

func TestPutGetTrace(t *testing.T) {
	st := New()
	c := traceFixture()

	v, err := PutTrace(st, "azure-2016", c)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("version = %d, want 1", v)
	}

	got, gv, err := GetTrace(st, "azure-2016")
	if err != nil {
		t.Fatal(err)
	}
	if gv != v {
		t.Fatalf("get version = %d, want %d", gv, v)
	}
	if got.Len() != c.Len() || got.Horizon != c.Horizon {
		t.Fatalf("round-trip shape: got (%d, %d), want (%d, %d)",
			got.Len(), got.Horizon, c.Len(), c.Horizon)
	}
	if !reflect.DeepEqual(got.ToTrace(), c.ToTrace()) {
		t.Fatal("round-tripped trace differs")
	}

	// A second put bumps the version like any other record.
	if v2, err := PutTrace(st, "azure-2016", c); err != nil || v2 != 2 {
		t.Fatalf("second put: version %d, err %v", v2, err)
	}
}

func TestGetTraceMissing(t *testing.T) {
	st := New()
	if _, _, err := GetTrace(st, "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestGetTraceCorrupt(t *testing.T) {
	st := New()
	if _, err := st.Put(TraceKey("bad"), []byte("not a trace")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := GetTrace(st, "bad"); !errors.Is(err, trace.ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}
