package store

import (
	"fmt"

	"resourcecentral/internal/trace"
)

// TraceKey is the store key of a persisted columnar trace.
func TraceKey(name string) string { return "trace/" + name }

// PutTrace persists a columnar trace under TraceKey(name) using the
// compact binary codec and returns the new version. Traces are the
// largest records the store holds; the binary layout keeps them roughly
// an order of magnitude smaller than the CSV spill format.
func PutTrace(st *Store, name string, c *trace.Columns) (int, error) {
	data, err := trace.EncodeColumns(c)
	if err != nil {
		return 0, fmt.Errorf("store: encode trace %q: %w", name, err)
	}
	return st.Put(TraceKey(name), data)
}

// GetTrace fetches and decodes the columnar trace stored under
// TraceKey(name).
func GetTrace(st *Store, name string) (*trace.Columns, int, error) {
	blob, err := st.Get(TraceKey(name))
	if err != nil {
		return nil, 0, err
	}
	c, err := trace.DecodeColumns(blob.Data)
	if err != nil {
		return nil, 0, fmt.Errorf("store: decode trace %q: %w", name, err)
	}
	return c, blob.Version, nil
}
