// Package store simulates the highly available, per-datacenter store that
// Resource Central publishes models and feature data to (Figure 9). It
// supports versioned puts, gets with configurable injected latency (to
// reproduce the pull-path numbers of Section 6.1), push subscriptions for
// the client library's push-based caching, and an availability switch for
// exercising the client's disk-cache fallback.
package store

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"resourcecentral/internal/obs"
)

// ErrUnavailable is returned while the store is marked unavailable.
var ErrUnavailable = errors.New("store: unavailable")

// ErrNotFound is returned for keys that were never put.
var ErrNotFound = errors.New("store: key not found")

// Blob is one versioned record.
type Blob struct {
	Key     string
	Version int
	Data    []byte
}

// Notification announces a new version of a key to push subscribers.
type Notification struct {
	Key     string
	Version int
}

// LatencyModel injects synthetic access latency. The zero value injects
// none. The distribution is lognormal, parameterized by its median and
// P99 — the paper reports median 2.9 ms and P99 5.6 ms for an 850-byte
// record.
type LatencyModel struct {
	Median time.Duration
	P99    time.Duration
}

// z99 is the 99th-percentile standard normal quantile.
const z99 = 2.3263478740408408

// sample returns a deterministic latency for access counter n (hash-based
// lognormal; no shared PRNG state so concurrent gets stay independent).
func (l LatencyModel) sample(n uint64) time.Duration {
	if l.Median <= 0 {
		return 0
	}
	sigma := 0.0
	if l.P99 > l.Median {
		sigma = math.Log(float64(l.P99)/float64(l.Median)) / z99
	}
	u1 := hashFloat(n, 1)
	u2 := hashFloat(n, 2)
	if u1 == 0 {
		u1 = 0.5
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return time.Duration(float64(l.Median) * math.Exp(sigma*z))
}

func hashFloat(n, stream uint64) float64 {
	x := n ^ (stream * 0x9e3779b97f4a7c15)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// Store is a thread-safe versioned blob store.
type Store struct {
	mu          sync.RWMutex
	blobs       map[string]Blob
	subs        []chan<- Notification
	unavailable bool
	gets        uint64

	// Latency injects synthetic access delay on Get (not on Put, which in
	// the real system happens on the offline data-processing path).
	Latency LatencyModel
	// Sleep actually sleeps for the injected latency when true; when
	// false, the latency is only reported via LastLatency (useful for
	// tests that should not slow down).
	Sleep bool

	lastLatency time.Duration

	// obs holds the store's metrics; nil until Instrument is called.
	obs *storeMetrics
}

// storeMetrics instruments the store's pull and publish paths
// (Section 6.1's store access analysis: median 2.9 ms, P99 5.6 ms pulls
// of ~850-byte records).
type storeMetrics struct {
	getSeconds   obs.Histogram // pull-path latency
	gets         obs.Counter
	getErrors    obs.Counter
	puts         obs.Counter
	recordBytes  obs.Histogram // published record sizes
	notifSent    obs.Counter   // push fan-out
	notifDropped obs.Counter
}

// New creates an empty store.
func New() *Store {
	return &Store{blobs: make(map[string]Blob)}
}

// Instrument registers the store's metrics on reg: pull latency
// (rc_store_get_seconds), push fan-out (rc_store_notifications_*),
// record sizes (rc_store_record_bytes) and the key count. Call before
// sharing the store across goroutines.
func (s *Store) Instrument(reg *obs.Registry) {
	s.obs = &storeMetrics{
		getSeconds: reg.Histogram("rc_store_get_seconds",
			"Store pull-path latency in seconds (injected latency when a LatencyModel is configured, wall time otherwise).", nil),
		gets: reg.Counter("rc_store_gets_total",
			"Store Get calls that found the store available."),
		getErrors: reg.Counter("rc_store_get_errors_total",
			"Store Get calls that failed (unavailable or key not found)."),
		puts: reg.Counter("rc_store_puts_total",
			"Records published to the store."),
		recordBytes: reg.Histogram("rc_store_record_bytes",
			"Published record sizes in bytes.", obs.DefaultSizeBuckets),
		notifSent: reg.Counter("rc_store_notifications_sent_total",
			"Push notifications delivered to subscribers."),
		notifDropped: reg.Counter("rc_store_notifications_dropped_total",
			"Push notifications dropped because a subscriber channel was full."),
	}
	reg.GaugeFunc("rc_store_keys", "Distinct keys in the store.",
		func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(len(s.blobs))
		})
	reg.GaugeFunc("rc_store_subscribers", "Registered push subscribers.",
		func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(len(s.subs))
		})
}

// Put stores data under key, bumping the version, and notifies push
// subscribers. Put succeeds even while unavailable (the offline pipeline
// and the store are co-located; unavailability models the client's view).
func (s *Store) Put(key string, data []byte) (int, error) {
	if key == "" {
		return 0, errors.New("store: empty key")
	}
	s.mu.Lock()
	b := s.blobs[key]
	b.Key = key
	b.Version++
	b.Data = append([]byte(nil), data...)
	s.blobs[key] = b
	version := b.Version
	subs := append([]chan<- Notification(nil), s.subs...)
	s.mu.Unlock()

	for _, ch := range subs {
		// Non-blocking: a slow subscriber must not stall the publisher.
		select {
		case ch <- Notification{Key: key, Version: version}:
			if s.obs != nil {
				s.obs.notifSent.Inc()
			}
		default:
			if s.obs != nil {
				s.obs.notifDropped.Inc()
			}
		}
	}
	if s.obs != nil {
		s.obs.puts.Inc()
		s.obs.recordBytes.Observe(float64(len(data)))
	}
	return version, nil
}

// Get fetches the latest version of key, injecting latency if configured.
func (s *Store) Get(key string) (Blob, error) {
	start := time.Now() //rcvet:allow(observational: feeds the store pull-latency histogram only; modeled latency drives results)
	s.mu.Lock()
	if s.unavailable {
		s.mu.Unlock()
		if s.obs != nil {
			s.obs.getErrors.Inc()
		}
		return Blob{}, ErrUnavailable
	}
	s.gets++
	n := s.gets
	b, ok := s.blobs[key]
	s.mu.Unlock()

	lat := s.Latency.sample(n)
	s.mu.Lock()
	s.lastLatency = lat
	s.mu.Unlock()
	if s.Sleep && lat > 0 {
		time.Sleep(lat)
	}
	if s.obs != nil {
		s.obs.gets.Inc()
		// Record the modeled latency when one is configured (whether or
		// not Sleep actually waits it out), so the exposed histogram
		// reproduces the Section 6.1 pull-path distribution; otherwise
		// record wall time.
		if lat > 0 {
			s.obs.getSeconds.Observe(lat.Seconds())
		} else {
			s.obs.getSeconds.ObserveSince(start)
		}
	}
	if !ok {
		if s.obs != nil {
			s.obs.getErrors.Inc()
		}
		return Blob{}, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return b, nil
}

// LastLatency reports the latency injected by the most recent Get.
func (s *Store) LastLatency() time.Duration {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lastLatency
}

// Keys returns all stored keys, sorted: callers walk the result to build
// user-visible listings (rcserve /models) and publish sweeps, so the
// order must not leak map iteration randomness.
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.blobs))
	for k := range s.blobs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Subscribe registers a push channel that receives a notification per Put.
// Sends are non-blocking; size the channel accordingly.
func (s *Store) Subscribe(ch chan<- Notification) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.subs = append(s.subs, ch)
}

// Unsubscribe removes a previously registered push channel. A Put that
// snapshotted the subscriber list concurrently may deliver one final
// notification, so callers should drain rather than close ch (sends are
// non-blocking either way). Unknown channels are a no-op.
func (s *Store) Unsubscribe(ch chan<- Notification) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, sub := range s.subs {
		if sub == ch {
			s.subs = append(s.subs[:i], s.subs[i+1:]...)
			return
		}
	}
}

// SetAvailable toggles availability as seen by Get.
func (s *Store) SetAvailable(up bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.unavailable = !up
}
