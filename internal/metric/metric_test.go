package metric

import "testing"

func TestStringParseRoundTrip(t *testing.T) {
	for _, m := range All {
		got, err := Parse(m.String())
		if err != nil || got != m {
			t.Errorf("Parse(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := Parse("bogus"); err == nil {
		t.Error("expected error")
	}
}

func TestBucketCounts(t *testing.T) {
	for _, m := range All {
		want := 4
		if m == WorkloadClass {
			want = 2
		}
		if got := m.Buckets(); got != want {
			t.Errorf("%v.Buckets() = %d, want %d", m, got, want)
		}
	}
}

func TestUtilBuckets(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{{0, 0}, {25, 0}, {25.01, 1}, {50, 1}, {60, 2}, {75, 2}, {75.1, 3}, {100, 3}}
	for _, c := range cases {
		if got := AvgCPU.Bucket(c.v); got != c.want {
			t.Errorf("AvgCPU.Bucket(%v) = %d, want %d", c.v, got, c.want)
		}
		if got := P95CPU.Bucket(c.v); got != c.want {
			t.Errorf("P95CPU.Bucket(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestDeployBuckets(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{{1, 0}, {2, 1}, {10, 1}, {11, 2}, {100, 2}, {101, 3}, {5000, 3}}
	for _, c := range cases {
		if got := DeploySizeVMs.Bucket(c.v); got != c.want {
			t.Errorf("DeploySizeVMs.Bucket(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestLifetimeBuckets(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{{1, 0}, {15, 0}, {16, 1}, {60, 1}, {61, 2}, {1440, 2}, {1441, 3}}
	for _, c := range cases {
		if got := Lifetime.Bucket(c.v); got != c.want {
			t.Errorf("Lifetime.Bucket(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestWorkloadClassBucket(t *testing.T) {
	if WorkloadClass.Bucket(0) != ClassDelayInsensitive {
		t.Error("0 should be delay-insensitive")
	}
	if WorkloadClass.Bucket(1) != ClassInteractive {
		t.Error("1 should be interactive")
	}
}

func TestBucketValueOrdering(t *testing.T) {
	for _, m := range All {
		for b := 0; b < m.Buckets(); b++ {
			lo, mid, hi := m.BucketLow(b), m.BucketMid(b), m.BucketHigh(b)
			if lo > mid || mid > hi {
				t.Errorf("%v bucket %d: low %v mid %v high %v not ordered", m, b, lo, mid, hi)
			}
			if m.BucketLabel(b) == "" {
				t.Errorf("%v bucket %d: empty label", m, b)
			}
		}
	}
}

func TestBucketValueConsistentWithBucket(t *testing.T) {
	// The mid value of each bucket must map back to the same bucket.
	for _, m := range []Metric{AvgCPU, P95CPU, DeploySizeVMs, DeploySizeCores, Lifetime} {
		for b := 0; b < m.Buckets(); b++ {
			if got := m.Bucket(m.BucketMid(b)); got != b {
				t.Errorf("%v: Bucket(BucketMid(%d)) = %d", m, b, got)
			}
		}
	}
}

func TestApproachNames(t *testing.T) {
	if AvgCPU.Approach() != "Random Forest" {
		t.Error("avg cpu approach")
	}
	if Lifetime.Approach() != "Extreme Gradient Boosting Tree" {
		t.Error("lifetime approach")
	}
	if WorkloadClass.Approach() != "FFT, Extreme Gradient Boosting Tree" {
		t.Error("class approach")
	}
}
