// Package metric defines the six predicted metrics and their prediction
// buckets (Tables 1 and 3 of the paper). Formulating the predictions as
// bucketed classification rather than regression is a deliberate design
// decision of Resource Central: buckets are easier to predict, and clients
// convert a predicted bucket back to a number with the bucket's highest,
// middle, or lowest value.
package metric

import "fmt"

// Metric identifies one predicted VM/deployment behaviour.
type Metric int

// The six metrics of Table 1.
const (
	AvgCPU Metric = iota
	P95CPU
	DeploySizeVMs
	DeploySizeCores
	Lifetime
	WorkloadClass
)

// All lists every metric in Table 1 order.
var All = []Metric{AvgCPU, P95CPU, DeploySizeVMs, DeploySizeCores, Lifetime, WorkloadClass}

// String implements fmt.Stringer with the model names used as store keys.
func (m Metric) String() string {
	switch m {
	case AvgCPU:
		return "avg-cpu-util"
	case P95CPU:
		return "p95-cpu-util"
	case DeploySizeVMs:
		return "deploy-size-vms"
	case DeploySizeCores:
		return "deploy-size-cores"
	case Lifetime:
		return "lifetime"
	case WorkloadClass:
		return "workload-class"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Parse resolves the String form.
func Parse(s string) (Metric, error) {
	for _, m := range All {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("metric: unknown metric %q", s)
}

// Buckets returns the number of prediction buckets (Table 3).
func (m Metric) Buckets() int {
	if m == WorkloadClass {
		return 2
	}
	return 4
}

// Workload class buckets.
const (
	ClassDelayInsensitive = 0
	ClassInteractive      = 1
)

// utilization bucket upper bounds (percent).
var utilBounds = [3]float64{25, 50, 75}

// deployment-size bucket upper bounds (count).
var deployBounds = [3]float64{1, 10, 100}

// lifetime bucket upper bounds (minutes).
var lifetimeBounds = [3]float64{15, 60, 1440}

// Bucket maps a raw metric value to its bucket index. For WorkloadClass the
// value is already a class index (0 or 1).
func (m Metric) Bucket(value float64) int {
	var bounds [3]float64
	switch m {
	case AvgCPU, P95CPU:
		bounds = utilBounds
	case DeploySizeVMs, DeploySizeCores:
		bounds = deployBounds
	case Lifetime:
		bounds = lifetimeBounds
	case WorkloadClass:
		if value >= 1 {
			return ClassInteractive
		}
		return ClassDelayInsensitive
	}
	for i, b := range bounds {
		if value <= b {
			return i
		}
	}
	return 3
}

// BucketLabel returns the human-readable bucket description from Table 3.
func (m Metric) BucketLabel(bucket int) string {
	switch m {
	case AvgCPU, P95CPU:
		return [...]string{"0-25%", "25-50%", "50-75%", "75-100%"}[bucket]
	case DeploySizeVMs, DeploySizeCores:
		return [...]string{"1", ">1 & <=10", ">10 & <=100", ">100"}[bucket]
	case Lifetime:
		return [...]string{"<=15 min", ">15 & <=60 min", ">1 & <=24 h", ">24 h"}[bucket]
	case WorkloadClass:
		return [...]string{"delay-insensitive", "interactive"}[bucket]
	}
	return ""
}

// BucketHigh returns the highest numeric value of the bucket, the
// conversion the oversubscription rule in Algorithm 1 uses
// (Highest_Util_in_Bucket). For unbounded top buckets it returns a
// representative cap: 100% utilization, 1000 VMs/cores, 60 days.
func (m Metric) BucketHigh(bucket int) float64 {
	switch m {
	case AvgCPU, P95CPU:
		return [...]float64{25, 50, 75, 100}[bucket]
	case DeploySizeVMs, DeploySizeCores:
		return [...]float64{1, 10, 100, 1000}[bucket]
	case Lifetime:
		return [...]float64{15, 60, 1440, 60 * 1440}[bucket]
	case WorkloadClass:
		return float64(bucket)
	}
	return 0
}

// BucketMid returns the middle numeric value of the bucket.
func (m Metric) BucketMid(bucket int) float64 {
	switch m {
	case AvgCPU, P95CPU:
		return [...]float64{12.5, 37.5, 62.5, 87.5}[bucket]
	case DeploySizeVMs, DeploySizeCores:
		return [...]float64{1, 5.5, 55, 550}[bucket]
	case Lifetime:
		return [...]float64{7.5, 37.5, 750, 30.5 * 1440}[bucket]
	case WorkloadClass:
		return float64(bucket)
	}
	return 0
}

// BucketLow returns the lowest numeric value of the bucket.
func (m Metric) BucketLow(bucket int) float64 {
	switch m {
	case AvgCPU, P95CPU:
		return [...]float64{0, 25, 50, 75}[bucket]
	case DeploySizeVMs, DeploySizeCores:
		return [...]float64{1, 2, 11, 101}[bucket]
	case Lifetime:
		return [...]float64{0, 15, 60, 1440}[bucket]
	case WorkloadClass:
		return float64(bucket)
	}
	return 0
}

// Approach names the modelling approach from Table 1.
func (m Metric) Approach() string {
	switch m {
	case AvgCPU, P95CPU:
		return "Random Forest"
	case WorkloadClass:
		return "FFT, Extreme Gradient Boosting Tree"
	default:
		return "Extreme Gradient Boosting Tree"
	}
}
