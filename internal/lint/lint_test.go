package lint_test

import (
	"go/token"
	"testing"

	"resourcecentral/internal/lint"
)

func TestIsSeededPackage(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"resourcecentral/internal/synth", true},
		{"resourcecentral/internal/sim", true},
		{"resourcecentral/internal/cluster", true},
		{"resourcecentral/internal/charz", true},
		{"resourcecentral/internal/pipeline", true},
		{"resourcecentral/internal/featuredata", true},
		{"resourcecentral/internal/fftperiod", true},
		{"resourcecentral/internal/stats", true},
		{"resourcecentral/internal/ml/forest", true},
		{"resourcecentral/internal/ml/gbt", true},
		{"resourcecentral/internal/obs", false},
		{"resourcecentral/internal/store", false},
		{"resourcecentral/internal/core", false},
		{"resourcecentral/cmd/rcserve", false},
		// A suffix must match a whole path component.
		{"resourcecentral/internal/simulator", false},
		{"resourcecentral/internal/mlx", false},
	}
	for _, c := range cases {
		if got := lint.IsSeededPackage(c.path); got != c.want {
			t.Errorf("IsSeededPackage(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestByName(t *testing.T) {
	as, err := lint.ByName([]string{"maporder", "determinism"})
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[0].Name != "maporder" || as[1].Name != "determinism" {
		t.Fatalf("ByName returned %v", as)
	}
	if _, err := lint.ByName([]string{"nope"}); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
}

// TestSortDiagnosticsStable pins the finding order `make lint` emits:
// file, then line, then column, then analyzer, then message.
func TestSortDiagnosticsStable(t *testing.T) {
	at := func(file string, line, col int, a, msg string) lint.Diagnostic {
		return lint.Diagnostic{
			Analyzer: a,
			Pos:      token.Position{Filename: file, Line: line, Column: col},
			Message:  msg,
		}
	}
	diags := []lint.Diagnostic{
		at("b.go", 1, 1, "maporder", "z"),
		at("a.go", 9, 2, "maporder", "m"),
		at("a.go", 9, 2, "lockscope", "m"),
		at("a.go", 2, 5, "maporder", "m"),
	}
	lint.SortDiagnostics(diags)
	got := ""
	for _, d := range diags {
		got += d.Pos.Filename + ":" + d.Analyzer + ";"
	}
	want := "a.go:maporder;a.go:lockscope;a.go:maporder;b.go:maporder;"
	if got != want {
		t.Fatalf("order = %s, want %s", got, want)
	}
}

// TestLoadRealPackage smoke-tests the go list -export loader against a
// real module package and runs the full suite over it; the shipped tree
// must be clean.
func TestLoadRealPackage(t *testing.T) {
	pkgs, err := lint.Load("../..", []string{"./internal/metric"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "resourcecentral/internal/metric" {
		t.Fatalf("Load returned %+v", pkgs)
	}
	diags, err := lint.RunAnalyzers(pkgs[0], lint.All(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("internal/metric should be clean, got %v", diags)
	}
}
