package lint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// This file implements the interprocedural layer of rcvet: per-function
// summaries computed bottom-up over the package-local call graph
// (callgraph.go), iterated to a fixed point inside each strongly
// connected component, installed in a SummaryTable, and composed across
// package boundaries. The table can be serialized to JSON sidecar files
// so `go vet -vettool=` unit-at-a-time runs (and the standalone driver's
// -summarydir cache) see facts for dependency packages they did not
// type-check themselves.
//
// Facts are monotone: a summary only ever gains taints, locks, and
// edges, and every taint keeps the first witness chain that established
// it. That makes the SCC fixed point trivially terminating (the fact
// lattice is finite) and keeps witness chains stable across iterations.

// Frame is one hop of a witness chain: a source position (short form,
// "file.go:12") and what happens there.
type Frame struct {
	Pos  string `json:"pos,omitempty"`
	Call string `json:"call"`
}

// maxChain caps witness-chain length; recursion and deep call stacks
// truncate with a trailing "..." frame.
const maxChain = 8

// Taint is a reachable fact (wall-clock read, global-rand read,
// allocation, blocking call) with the call chain that witnesses it.
// A nil *Taint means "provably free of this fact".
type Taint struct {
	Chain []Frame `json:"chain,omitempty"`
}

// String renders the witness chain for diagnostics:
// "a.go:10: calls core.fetch -> b.go:3: time.Now".
func (t *Taint) String() string { return renderChain(t.Chain) }

func renderChain(chain []Frame) string {
	parts := make([]string, 0, len(chain))
	for _, f := range chain {
		if f.Pos != "" {
			parts = append(parts, f.Pos+": "+f.Call)
		} else {
			parts = append(parts, f.Call)
		}
	}
	return strings.Join(parts, " -> ")
}

func capChain(chain []Frame) []Frame {
	if len(chain) <= maxChain {
		return chain
	}
	out := append([]Frame(nil), chain[:maxChain]...)
	out = append(out, Frame{Call: "..."})
	return out
}

func prependFrame(f Frame, chain []Frame) []Frame {
	out := make([]Frame, 0, len(chain)+1)
	out = append(out, f)
	out = append(out, chain...)
	return capChain(out)
}

// LockAcq records that a function (transitively) acquires a lock class,
// with the chain from the function's entry to the acquisition.
type LockAcq struct {
	Class string  `json:"class"`
	Chain []Frame `json:"chain,omitempty"`
}

// LockEdge records a lock-order constraint: while Held was held,
// Acquired was (transitively) acquired. Pkg is the package whose code
// establishes the edge — lockorder uses it to report each cycle exactly
// once. Chain witnesses the acquisition of the second lock.
type LockEdge struct {
	Held     string  `json:"held"`
	Acquired string  `json:"acquired"`
	Pkg      string  `json:"pkg"`
	Chain    []Frame `json:"chain,omitempty"`
}

// FuncSummary is the exported interprocedural fact set for one function,
// method, function literal, or interface method (joined over its known
// implementations).
type FuncSummary struct {
	// Clock / Rand: the function transitively reads the wall clock /
	// the global process-seeded rand source (determinism).
	Clock *Taint `json:"clock,omitempty"`
	Rand  *Taint `json:"rand,omitempty"`
	// Alloc: the function may allocate (allocfree).
	Alloc *Taint `json:"alloc,omitempty"`
	// Blocking: the function transitively calls into obs-registry /
	// store / Featurize — the calls lockscope bans under shard locks.
	Blocking *Taint `json:"blocking,omitempty"`
	// IO: the function reaches stdlib I/O (errflow).
	IO bool `json:"io,omitempty"`
	// JoinSignal: the body contains (or reaches) a goroutine join
	// mechanism — WaitGroup.Done/Wait, a channel op, or a select
	// (goroleak).
	JoinSignal bool `json:"join,omitempty"`
	// SpawnsGoroutine / DropsError are informational facts.
	SpawnsGoroutine bool `json:"spawns,omitempty"`
	DropsError      bool `json:"dropserr,omitempty"`
	// Locks lists the lock classes the function (transitively)
	// acquires; LockEdges the lock-order constraints its body creates.
	Locks     []LockAcq  `json:"locks,omitempty"`
	LockEdges []LockEdge `json:"edges,omitempty"`
	// AtomicFields lists struct fields the function (transitively)
	// accesses through sync/atomic (atomicfield).
	AtomicFields []FieldFact `json:"atomics,omitempty"`
	// PoolSource: the function returns memory obtained from sync.Pool
	// or a free list, possibly through wrappers (poolescape).
	PoolSource *Taint `json:"poolsrc,omitempty"`
	// PoolPuts lists parameter indices the function (transitively)
	// recycles into a pool or free list (poolescape).
	PoolPuts []int `json:"poolputs,omitempty"`
	// Blocks: the body contains an unguarded potentially-unbounded
	// wait — a channel op outside a cancellable select, or a blocking
	// intrinsic like time.Sleep or an HTTP round trip (ctxflow).
	Blocks *Taint `json:"blocks,omitempty"`
	// Cancel: the function consumes a cancellation signal — ctx.Done,
	// a stop-channel select case, a close-terminated receive (ctxflow).
	Cancel bool `json:"cancel,omitempty"`
	// Acquires / Releases are the typestate obligation facts
	// (typestate.go): the function hands its caller a value that must
	// be released, or discharges the obligation of a parameter.
	// Interface-method entries never carry them — joining "releases"
	// over implementations would grant a discharge some implementation
	// does not perform.
	Acquires []AcquireFact `json:"acquires,omitempty"`
	Releases []ReleaseFact `json:"releases,omitempty"`
}

// sidecarSchema versions the sidecar format. Bump it whenever
// FuncSummary gains fact kinds: a sidecar from an older rcvet silently
// lacks the new facts, so ReadSidecar discards mismatched files and
// the driver recomputes (the content hash alone cannot catch this —
// the sources didn't change, the tool did). Schema 3 added the
// typestate obligation facts (Acquires/Releases).
const sidecarSchema = 3

// PackageSummary is the sidecar payload for one package.
type PackageSummary struct {
	Schema int                     `json:"schema,omitempty"`
	Path   string                  `json:"path"`
	Hash   string                  `json:"hash,omitempty"`
	Funcs  map[string]*FuncSummary `json:"funcs"`
}

// SummaryTable accumulates function summaries across packages. It is
// not safe for concurrent use; drivers summarize packages in dependency
// order on one goroutine.
type SummaryTable struct {
	funcs    map[string]*FuncSummary
	pkgs     map[string]*PackageSummary
	defaults map[string]*FuncSummary
	cfgs     map[*ast.BlockStmt]*CFG
	// keyOf memoizes types.Func.FullName, which formats the receiver
	// type on every call — with thirteen analyzers resolving callee
	// summaries per call site, recomputing it dominated the cold pass.
	keyOf map[*types.Func]string
}

// NewSummaryTable returns an empty table.
func NewSummaryTable() *SummaryTable {
	return &SummaryTable{
		funcs:    make(map[string]*FuncSummary),
		pkgs:     make(map[string]*PackageSummary),
		defaults: make(map[string]*FuncSummary),
		cfgs:     make(map[*ast.BlockStmt]*CFG),
		keyOf:    make(map[*types.Func]string),
	}
}

// CFGOf returns the control-flow graph of a function body, built on
// first request and cached for the lifetime of the table. The
// summarizer (obligation facts) and the flow-sensitive analyzers
// (typestate, nilflow, poolescape) all need the same graphs; sharing
// them through the table keeps the whole-repo cold pass inside its
// latency budget.
func (t *SummaryTable) CFGOf(body *ast.BlockStmt) *CFG {
	if c, ok := t.cfgs[body]; ok {
		return c
	}
	c := buildCFG(body)
	t.cfgs[body] = c
	return c
}

// AddPackage installs a previously computed (sidecar-loaded) package
// summary.
func (t *SummaryTable) AddPackage(ps *PackageSummary) {
	if ps == nil || ps.Path == "" {
		return
	}
	t.pkgs[ps.Path] = ps
	for k, s := range ps.Funcs {
		t.funcs[k] = s
	}
}

// HasPackage reports whether the table already holds summaries for the
// import path.
func (t *SummaryTable) HasPackage(path string) bool { return t.pkgs[path] != nil }

// Package returns the stored summary for an import path, or nil.
func (t *SummaryTable) Package(path string) *PackageSummary { return t.pkgs[path] }

// Lookup returns the stored summary for a function key (the
// types.Func.FullName form), or nil.
func (t *SummaryTable) Lookup(key string) *FuncSummary { return t.funcs[key] }

// ResolveFunc returns the best available summary for a callee: the
// stored cross-package summary when the callee's package has been
// summarized, otherwise a conservative default derived from the stdlib
// intrinsic tables below.
func (t *SummaryTable) ResolveFunc(fn *types.Func) *FuncSummary {
	key := t.FuncKey(fn)
	if s, ok := t.funcs[key]; ok {
		return s
	}
	if s, ok := t.defaults[key]; ok {
		return s
	}
	s := defaultSummary(fn)
	t.defaults[key] = s
	return s
}

// FuncKey returns fn's summary-table key (types.Func.FullName),
// memoized by object identity — the objects are stable for the life
// of the loaded package set.
func (t *SummaryTable) FuncKey(fn *types.Func) string {
	if key, ok := t.keyOf[fn]; ok {
		return key
	}
	key := fn.FullName()
	t.keyOf[fn] = key
	return key
}

// AllEdges returns every lock-order edge in the table, deduplicated by
// (held, acquired) with the first witness in sorted-function-key order,
// sorted by (held, acquired) — the input to lockorder's cycle search.
func (t *SummaryTable) AllEdges() []LockEdge {
	keys := make([]string, 0, len(t.funcs))
	for k := range t.funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	seen := make(map[[2]string]bool)
	var out []LockEdge
	for _, k := range keys {
		for _, e := range t.funcs[k].LockEdges {
			id := [2]string{e.Held, e.Acquired}
			if seen[id] {
				continue
			}
			seen[id] = true
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Held != out[j].Held {
			return out[i].Held < out[j].Held
		}
		return out[i].Acquired < out[j].Acquired
	})
	return out
}

// WriteSidecar serializes a package summary to path (the .vetx payload
// for vettool mode and the -summarydir cache format).
func WriteSidecar(path string, ps *PackageSummary) error {
	ps.Schema = sidecarSchema
	data, err := json.Marshal(ps)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadSidecar loads a sidecar written by WriteSidecar. Unreadable or
// foreign-format files (e.g. empty placeholders from other vet tools)
// return (nil, nil): summaries are an optimization, not a correctness
// requirement, so drivers fall back to conservative defaults.
func ReadSidecar(path string) (*PackageSummary, error) {
	data, err := os.ReadFile(path)
	if err != nil || len(data) == 0 {
		return nil, nil
	}
	var ps PackageSummary
	if err := json.Unmarshal(data, &ps); err != nil || ps.Path == "" || ps.Schema != sidecarSchema {
		return nil, nil
	}
	return &ps, nil
}

// HashPackage fingerprints a package's non-test sources plus its
// dependencies' hashes; the -summarydir cache invalidates on any change
// below the package.
func HashPackage(pkg *Package, depHashes []string) string {
	h := sha256.New()
	var names []string
	for _, f := range nonTestFiles(pkg) {
		names = append(names, pkg.Fset.Position(f.Pos()).Filename)
	}
	sort.Strings(names)
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			continue
		}
		fmt.Fprintf(h, "%s %d\n", filepath.Base(name), len(data))
		h.Write(data)
	}
	deps := append([]string(nil), depHashes...)
	sort.Strings(deps)
	for _, d := range deps {
		fmt.Fprintf(h, "dep %s\n", d)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// nonTestFiles returns the package's syntax trees excluding *_test.go,
// the file set every analyzer and the summary engine run over.
func nonTestFiles(pkg *Package) []*ast.File {
	files := make([]*ast.File, 0, len(pkg.Syntax))
	for _, f := range pkg.Syntax {
		name := pkg.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, f)
	}
	return files
}

// isObsPath reports whether an import path is the observability
// package. obs is an observational sink: clock values flowing into it
// only feed metrics, never results, so Clock/Rand taints do not
// propagate out of it (see DESIGN.md).
func isObsPath(path string) bool {
	return path == "internal/obs" || strings.HasSuffix(path, "/internal/obs")
}

// shortFuncName renders a types.Func for humans: the import path in its
// FullName is collapsed to the package name —
// "(resourcecentral/internal/obs.Counter).Inc" → "(obs.Counter).Inc".
func shortFuncName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return strings.ReplaceAll(fn.FullName(), fn.Pkg().Path(), fn.Pkg().Name())
}

// Summarize computes summaries for every function in pkg (bottom-up
// over call-graph SCCs, fixed point within each), derives
// interface-method summaries by joining the package's concrete
// implementations, installs everything in the table, and returns the
// package summary. Summarize is idempotent per path.
func (t *SummaryTable) Summarize(pkg *Package) *PackageSummary {
	if ps := t.pkgs[pkg.Path]; ps != nil {
		return ps
	}
	files := nonTestFiles(pkg)
	g := buildCallGraph(pkg, files)
	s := &summarizer{
		pkg:        pkg,
		table:      t,
		graph:      g,
		local:      make(map[*funcNode]*FuncSummary, len(g.Nodes)),
		allow:      buildAllowIndex(pkg.Fset, files),
		freeFields: findFreelistFields(pkg.TypesInfo, files),
		scanned:    make(map[*funcNode]bool, len(g.Nodes)),
		flows:      make(map[*funcNode]*valueFlow, len(g.Nodes)),
		sites:      make(map[*funcNode]*poolSites, len(g.Nodes)),
		obsites:    make(map[*funcNode][]*ast.CallExpr, len(g.Nodes)),
	}
	s.scanChanProofs(files)
	for _, n := range g.Nodes {
		s.local[n] = &FuncSummary{}
	}
	for _, scc := range g.SCCs() {
		// A non-recursive function (singleton component, no self-edge)
		// composes only against callees whose components have already
		// converged, so a single pass is exact; iterating to a fixed
		// point is only needed inside genuinely recursive components.
		if len(scc) == 1 && !callsSelf(scc[0]) {
			s.computePass(scc[0])
			continue
		}
		for {
			s.changed = false
			for _, n := range scc {
				s.computePass(n)
			}
			if !s.changed {
				break
			}
		}
	}
	ps := &PackageSummary{Path: pkg.Path, Funcs: make(map[string]*FuncSummary, len(g.Nodes))}
	for n, sum := range s.local {
		ps.Funcs[n.Key] = sum
	}
	s.interfaceEntries(ps)
	t.AddPackage(ps)
	return ps
}

// summarizer holds the in-progress state for one package.
type summarizer struct {
	pkg        *Package
	table      *SummaryTable
	graph      *callGraph
	local      map[*funcNode]*FuncSummary
	allow      map[string]string
	freeFields map[string]bool
	scanned    map[*funcNode]bool
	flows      map[*funcNode]*valueFlow
	sites      map[*funcNode]*poolSites
	obsites    map[*funcNode][]*ast.CallExpr
	// boundedSend marks send statements proven non-blocking by the
	// package-wide channel proofs (scanChanProofs): a buffered channel
	// with constant capacity, at most cap send sites, none in a loop,
	// never escaping. semOps marks every op on a proven semaphore
	// channel (send + deferred receive, token element type). Both let
	// scanBlockFacts skip the Blocks taint where flow-insensitive
	// scanning used to force an //rcvet:allow.
	boundedSend map[ast.Node]bool
	semOps      map[ast.Node]bool
	changed     bool
}

// allowed reports whether an //rcvet:allow comment covers the position.
// A fact arising at an allowed line is cleared from the summary, not
// just silenced at report time: the human judged the site safe, so
// transitive propagation to callers is suppressed too.
func (s *summarizer) allowed(pos token.Pos) bool {
	p := s.pkg.Fset.Position(pos)
	_, ok := s.allow[fmt.Sprintf("%s:%d", p.Filename, p.Line)]
	return ok
}

func (s *summarizer) shortPos(pos token.Pos) string {
	p := s.pkg.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

func (s *summarizer) setTaint(dst **Taint, chain []Frame) {
	if *dst != nil {
		return
	}
	*dst = &Taint{Chain: capChain(chain)}
	s.changed = true
}

func (s *summarizer) setBool(dst *bool) {
	if !*dst {
		*dst = true
		s.changed = true
	}
}

func (s *summarizer) addLock(sum *FuncSummary, acq LockAcq) {
	for _, have := range sum.Locks {
		if have.Class == acq.Class {
			return
		}
	}
	sum.Locks = append(sum.Locks, acq)
	s.changed = true
}

func (s *summarizer) addEdge(sum *FuncSummary, held string, acq LockAcq) {
	if held == acq.Class || isLocalLockClass(held) || isLocalLockClass(acq.Class) {
		// Re-entrant self-edges are a different bug (lockscope/runtime
		// territory), and function-local mutexes cannot participate in
		// cross-function ordering cycles.
		return
	}
	for _, have := range sum.LockEdges {
		if have.Held == held && have.Acquired == acq.Class {
			return
		}
	}
	sum.LockEdges = append(sum.LockEdges, LockEdge{
		Held: held, Acquired: acq.Class, Pkg: s.pkg.Path, Chain: acq.Chain,
	})
	s.changed = true
}

// computePass re-walks one function, merging newly provable facts into
// its persistent summary. Facts are set-once, so repeated passes are
// cheap and chains stay stable; s.changed records whether anything new
// was learned.
func (s *summarizer) computePass(n *funcNode) {
	body := n.Body()
	if body == nil {
		return
	}
	sum := s.local[n]
	// Base facts: allocation sites, join signals, goroutine spawns,
	// dropped errors. These don't depend on the held-lock set, so one
	// whole-body walk (cutting at nested function literals, which are
	// their own nodes) suffices.
	// Base, atomic, and blocking facts are purely syntactic — they read
	// no other function's summary — so one pass per node suffices even
	// inside an SCC's fixed point; only the pool scan (which resolves
	// callee PoolSource/PoolPuts facts) re-runs until convergence, over
	// a cached def-use and candidate-site index.
	if !s.scanned[n] {
		s.scanned[n] = true
		s.scanBaseFacts(sum, body)
		s.scanAtomicFacts(sum, body)
		s.scanBlockFacts(sum, body)
	}
	s.scanPoolFacts(n, sum, body)
	s.scanObligationFacts(n, sum, body)
	// Call composition and lock tracking, statement list by statement
	// list with the held set threaded through.
	s.walkStmts(sum, body.List, nil)
}

// --- base facts ---

func (s *summarizer) scanBaseFacts(sum *FuncSummary, body *ast.BlockStmt) {
	forEachAllocSite(s.pkg.TypesInfo, body, func(pos token.Pos, what string) {
		if s.allowed(pos) {
			return
		}
		s.setTaint(&sum.Alloc, []Frame{{Pos: s.shortPos(pos), Call: what}})
	})
	info := s.pkg.TypesInfo
	ast.Inspect(body, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			s.setBool(&sum.SpawnsGoroutine)
		case *ast.SelectStmt, *ast.SendStmt:
			s.setBool(&sum.JoinSignal)
		case *ast.UnaryExpr:
			if nd.Op == token.ARROW {
				s.setBool(&sum.JoinSignal)
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(nd.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					s.setBool(&sum.JoinSignal)
				}
			}
		case ast.Stmt:
			if call := ignoredErrorCall(info, nd); call != nil && !s.allowed(call.Pos()) {
				s.setBool(&sum.DropsError)
			}
		}
		return true
	})
}

// ignoredErrorCall recognizes a statement that discards an error result:
// an expression or defer statement whose call returns an error, or an
// assignment binding an error result to the blank identifier. Returns
// the call, or nil.
func ignoredErrorCall(info *types.Info, st ast.Node) *ast.CallExpr {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok && callReturnsError(info, call) {
			return call
		}
	case *ast.DeferStmt:
		if callReturnsError(info, st.Call) {
			return st.Call
		}
	case *ast.AssignStmt:
		if len(st.Rhs) != 1 {
			return nil
		}
		call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return nil
		}
		t := info.TypeOf(call)
		if t == nil {
			return nil
		}
		if tup, ok := t.(*types.Tuple); ok {
			for i := 0; i < tup.Len() && i < len(st.Lhs); i++ {
				if !isErrorType(tup.At(i).Type()) {
					continue
				}
				if id, ok := st.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
					return call
				}
			}
			return nil
		}
		if isErrorType(t) {
			if id, ok := st.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
				return call
			}
		}
	}
	return nil
}

func callReturnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }

// --- call composition and lock tracking ---

// walkStmts processes one statement list in order, tracking held lock
// classes exactly like lockscope's walkLocked: a region opens at Lock/
// RLock and closes at the matching Unlock/RUnlock in the same list; a
// deferred unlock keeps it open to the end of the list; nested lists
// get a copy of the held set.
func (s *summarizer) walkStmts(sum *FuncSummary, stmts []ast.Stmt, held []string) {
	held = append([]string(nil), held...)
	for _, st := range stmts {
		if cls, kind := s.lockStmt(st); cls != "" {
			if kind == lockAcquire {
				if !s.allowed(st.Pos()) && !isLocalLockClass(cls) {
					acq := LockAcq{Class: cls, Chain: []Frame{{Pos: s.shortPos(st.Pos()), Call: "acquires " + cls}}}
					for _, h := range held {
						s.addEdge(sum, h, acq)
					}
					s.addLock(sum, acq)
				}
				held = append(held, cls)
			} else {
				for i := len(held) - 1; i >= 0; i-- {
					if held[i] == cls {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			}
			continue
		}
		s.scanCalls(sum, st, held)
		s.walkNestedStmts(sum, st, held)
	}
}

func (s *summarizer) walkNestedStmts(sum *FuncSummary, st ast.Stmt, held []string) {
	switch st := st.(type) {
	case *ast.BlockStmt:
		s.walkStmts(sum, st.List, held)
	case *ast.IfStmt:
		s.walkStmts(sum, st.Body.List, held)
		if st.Else != nil {
			s.walkNestedStmts(sum, st.Else, held)
		}
	case *ast.ForStmt:
		s.walkStmts(sum, st.Body.List, held)
	case *ast.RangeStmt:
		s.walkStmts(sum, st.Body.List, held)
	case *ast.SwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.walkStmts(sum, cc.Body, held)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.walkStmts(sum, cc.Body, held)
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				s.walkStmts(sum, cc.Body, held)
			}
		}
	case *ast.LabeledStmt:
		s.walkNestedStmts(sum, st.Stmt, held)
	}
}

// scanCalls composes callee summaries for the calls syntactically inside
// one statement (cutting at nested statement lists, which walkStmts
// re-visits with the right held set, and at function literals, which are
// separate nodes). Deferred calls run at function exit: their facts
// compose, but with no held locks.
func (s *summarizer) scanCalls(sum *FuncSummary, st ast.Stmt, held []string) {
	root := ast.Node(st)
	switch st := st.(type) {
	case *ast.DeferStmt:
		root, held = st.Call, nil
	case *ast.GoStmt:
		// The spawned body is its own summary node; goroleak inspects
		// it directly. Its facts do not merge into the spawner.
		return
	}
	ast.Inspect(root, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.FuncLit, *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
			return false
		case *ast.CallExpr:
			s.composeCall(sum, nd, held)
		}
		return true
	})
}

// composeCall merges one callee's facts into the caller's summary.
func (s *summarizer) composeCall(sum *FuncSummary, call *ast.CallExpr, held []string) {
	if s.allowed(call.Pos()) {
		return
	}
	var cs *FuncSummary
	var calleePkg, calleeName string
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// Immediately invoked literal: its facts flow into the caller.
		node := s.graph.byLit[lit]
		if node == nil {
			return
		}
		cs = s.local[node]
		calleePkg, calleeName = s.pkg.Path, "func literal"
	} else {
		fn := calleeFunc(s.pkg.TypesInfo, call)
		if fn == nil {
			return // builtins and dynamic calls: handled by forEachAllocSite
		}
		if fn.Pkg() != nil {
			calleePkg = fn.Pkg().Path()
		}
		calleeName = shortFuncName(fn)
		if node := s.graph.Resolve(fn); node != nil {
			cs = s.local[node]
		} else {
			cs = s.table.ResolveFunc(fn)
		}
		// Base blocking fact: a cross-package call into the obs
		// registry, the store, or Featurize — what lockscope bans under
		// shard locks.
		if calleePkg != s.pkg.Path &&
			((forbiddenUnderLock(calleePkg) && locksInternally(fn)) || fn.Name() == "Featurize") {
			s.setTaint(&sum.Blocking, []Frame{{Pos: s.shortPos(call.Pos()), Call: "calls " + calleeName}})
		}
	}
	frame := Frame{Pos: s.shortPos(call.Pos()), Call: "calls " + calleeName}
	// Clock/Rand taints stop at the obs boundary: obs is an
	// observational sink (clock values only feed metrics).
	if !isObsPath(calleePkg) {
		if cs.Clock != nil {
			s.setTaint(&sum.Clock, prependFrame(frame, cs.Clock.Chain))
		}
		if cs.Rand != nil {
			s.setTaint(&sum.Rand, prependFrame(frame, cs.Rand.Chain))
		}
	}
	if cs.Alloc != nil {
		s.setTaint(&sum.Alloc, prependFrame(frame, cs.Alloc.Chain))
	}
	if cs.Blocking != nil {
		s.setTaint(&sum.Blocking, prependFrame(frame, cs.Blocking.Chain))
	}
	if cs.IO {
		s.setBool(&sum.IO)
	}
	if cs.JoinSignal {
		s.setBool(&sum.JoinSignal)
	}
	if cs.SpawnsGoroutine {
		s.setBool(&sum.SpawnsGoroutine)
	}
	for _, acq := range cs.Locks {
		chain := prependFrame(frame, acq.Chain)
		composed := LockAcq{Class: acq.Class, Chain: chain}
		s.addLock(sum, composed)
		for _, h := range held {
			s.addEdge(sum, h, composed)
		}
	}
	for _, af := range cs.AtomicFields {
		s.addAtomicField(sum, FieldFact{Field: af.Field, Chain: prependFrame(frame, af.Chain)})
	}
	if cs.Blocks != nil {
		s.setTaint(&sum.Blocks, prependFrame(frame, cs.Blocks.Chain))
	}
	if cs.Cancel {
		s.setBool(&sum.Cancel)
	}
	// PoolSource and PoolPuts do not compose here: returning or
	// recycling pooled memory is about *this* function's own returns
	// and parameters, which scanPoolFacts resolves per call site.
}

// --- lock classes ---

// isLocalLockClass reports whether a class names a function-local mutex,
// which cannot participate in cross-function lock-order cycles.
func isLocalLockClass(cls string) bool { return strings.HasPrefix(cls, "local:") }

// lockStmt recognizes `expr.Lock()` / `expr.RLock()` (acquire) and
// `expr.Unlock()` / `expr.RUnlock()` (release) statements and names the
// lock's class. Classes are stable across packages:
//
//	pkgpath.Type.field  — a mutex field (core.resultShard.mu)
//	pkgpath.varname     — a package-level mutex
//	local:<expr>        — a function-local mutex (held-tracked, no facts)
func (s *summarizer) lockStmt(st ast.Stmt) (string, lockKind) {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return "", lockNone
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return "", lockNone
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", lockNone
	}
	fn, _ := s.pkg.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", lockNone
	}
	var kind lockKind
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
		kind = lockAcquire
	case "Unlock", "RUnlock":
		kind = lockRelease
	default:
		return "", lockNone
	}
	return lockClass(s.pkg.TypesInfo, sel.X), kind
}

// lockClass names the lock a receiver expression denotes. See lockStmt.
func lockClass(info *types.Info, recv ast.Expr) string {
	recv = ast.Unparen(recv)
	switch recv := recv.(type) {
	case *ast.SelectorExpr:
		// Package-level mutex referenced as pkg.mu.
		if v, ok := info.Uses[recv.Sel].(*types.Var); ok && !v.IsField() && v.Pkg() != nil &&
			v.Pkg().Scope().Lookup(v.Name()) == v {
			return v.Pkg().Path() + "." + v.Name()
		}
		// Field selection: name by the owning named type.
		if t := deref(info.TypeOf(recv.X)); t != nil {
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + recv.Sel.Name
			}
		}
	case *ast.Ident:
		if v, ok := info.Uses[recv].(*types.Var); ok && v.Pkg() != nil {
			if v.Pkg().Scope().Lookup(v.Name()) == v {
				return v.Pkg().Path() + "." + v.Name()
			}
			// A named non-sync type used directly as the receiver means
			// an embedded mutex: class by the embedding type.
			if named, ok := deref(v.Type()).(*types.Named); ok && named.Obj().Pkg() != nil &&
				named.Obj().Pkg().Path() != "sync" {
				return named.Obj().Pkg().Path() + "." + named.Obj().Name() + ".<embedded>"
			}
		}
	}
	return "local:" + types.ExprString(recv)
}

func deref(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// --- interface-method summaries ---

// interfaceEntries derives summaries for the interfaces this package
// defines by joining the facts of its concrete implementations — the
// method-set half of the call graph. A call through obs.Counter then
// resolves to the join of counter and nopCounter instead of the
// conservative default. Implementations living in other packages are
// not visible here; calls through such interfaces fall back to defaults
// (unknown interface methods assume allocation).
func (s *summarizer) interfaceEntries(ps *PackageSummary) {
	scope := s.pkg.Types.Scope()
	var ifaces []*types.Named
	var concrete []*types.Named
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if iface, ok := named.Underlying().(*types.Interface); ok {
			if iface.NumMethods() > 0 {
				ifaces = append(ifaces, named)
			}
			continue
		}
		concrete = append(concrete, named)
	}
	for _, in := range ifaces {
		iface := in.Underlying().(*types.Interface)
		for _, cn := range concrete {
			ptr := types.NewPointer(cn)
			if !types.Implements(ptr, iface) && !types.Implements(cn, iface) {
				continue
			}
			for i := 0; i < iface.NumMethods(); i++ {
				m := iface.Method(i)
				entry := ps.Funcs[m.FullName()]
				if entry == nil {
					entry = &FuncSummary{}
					ps.Funcs[m.FullName()] = entry
				}
				s.joinImpl(entry, ps, cn, m)
			}
		}
	}
}

// joinImpl merges one concrete implementation's summary into an
// interface-method entry.
func (s *summarizer) joinImpl(entry *FuncSummary, ps *PackageSummary, cn *types.Named, m *types.Func) {
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(cn), true, s.pkg.Types, m.Name())
	impl, ok := obj.(*types.Func)
	if !ok {
		return
	}
	is := ps.Funcs[impl.FullName()]
	if is == nil {
		is = s.table.Lookup(impl.FullName())
	}
	via := Frame{Call: "via " + shortFuncName(impl)}
	if is == nil {
		// Implementation summarized elsewhere (or not at all): assume
		// the worst for allocation, nothing for the rest.
		if entry.Alloc == nil {
			entry.Alloc = &Taint{Chain: []Frame{via, {Call: "no summary (assumed to allocate)"}}}
		}
		return
	}
	if is.Clock != nil && entry.Clock == nil {
		entry.Clock = &Taint{Chain: prependFrame(via, is.Clock.Chain)}
	}
	if is.Rand != nil && entry.Rand == nil {
		entry.Rand = &Taint{Chain: prependFrame(via, is.Rand.Chain)}
	}
	if is.Alloc != nil && entry.Alloc == nil {
		entry.Alloc = &Taint{Chain: prependFrame(via, is.Alloc.Chain)}
	}
	if is.Blocking != nil && entry.Blocking == nil {
		entry.Blocking = &Taint{Chain: prependFrame(via, is.Blocking.Chain)}
	}
	if is.Blocks != nil && entry.Blocks == nil {
		entry.Blocks = &Taint{Chain: prependFrame(via, is.Blocks.Chain)}
	}
	if is.PoolSource != nil && entry.PoolSource == nil {
		entry.PoolSource = &Taint{Chain: prependFrame(via, is.PoolSource.Chain)}
	}
	entry.IO = entry.IO || is.IO
	entry.JoinSignal = entry.JoinSignal || is.JoinSignal
	entry.SpawnsGoroutine = entry.SpawnsGoroutine || is.SpawnsGoroutine
	entry.DropsError = entry.DropsError || is.DropsError
	entry.Cancel = entry.Cancel || is.Cancel
	for _, af := range is.AtomicFields {
		dup := false
		for _, have := range entry.AtomicFields {
			if have.Field == af.Field {
				dup = true
				break
			}
		}
		if !dup {
			entry.AtomicFields = append(entry.AtomicFields, FieldFact{Field: af.Field, Chain: prependFrame(via, af.Chain)})
		}
	}
	for _, acq := range is.Locks {
		dup := false
		for _, have := range entry.Locks {
			if have.Class == acq.Class {
				dup = true
				break
			}
		}
		if !dup {
			entry.Locks = append(entry.Locks, LockAcq{Class: acq.Class, Chain: prependFrame(via, acq.Chain)})
		}
	}
}
