// Package metricname exercises the rcvet metricname analyzer: metric
// names and label keys handed to obs registration calls must be
// compile-time constants.
package metricname

import (
	"fmt"

	"resourcecentral/internal/obs"
)

const goodName = "rc_test_good_total"

func constantNames(reg *obs.Registry, model string) {
	reg.Counter("rc_test_lit_total", "literal name").Inc()
	reg.Counter(goodName, "named const").Inc()
	reg.Counter(goodName+"_suffix", "constant concatenation").Inc()
	// Dynamic label VALUES are the whole point of labels; only names
	// and keys must be constant.
	reg.Histogram("rc_test_exec_seconds", "dynamic value ok", nil, "model", model).Observe(0.1)
	reg.Gauge("rc_test_depth", "no labels").Set(1)
}

func dynamicNames(reg *obs.Registry, which string) {
	reg.Counter(which, "variable name").Inc()                             // want `metric name passed to obs\.Registry\.Counter is not a compile-time constant`
	reg.Counter(fmt.Sprintf("rc_%s_total", which), "built name").Inc()    // want `metric name passed to obs\.Registry\.Counter is not a compile-time constant`
	reg.Histogram(which+"_seconds", "partly dynamic", nil).Observe(1)     // want `metric name passed to obs\.Registry\.Histogram is not a compile-time constant`
	reg.Gauge("rc_test_ok_gauge", "dynamic label key", which, "v").Set(1) // want `label key passed to obs\.Registry\.Gauge is not a compile-time constant`
}

func gaugeFunc(reg *obs.Registry, key string) {
	reg.GaugeFunc("rc_test_fn_gauge", "const key", func() float64 { return 0 }, "shard", "0")
	reg.GaugeFunc("rc_test_fn_gauge", "dynamic key", func() float64 { return 0 }, key, "0") // want `label key passed to obs\.Registry\.GaugeFunc is not a compile-time constant`
}

// splat passes a prebuilt label slice; the construction site, not this
// call, is responsible for constant keys (the sim sweep's runLabels
// pattern). Not flagged here.
func splat(reg *obs.Registry, labels []string) {
	reg.Counter("rc_test_splat_total", "spread labels", labels...).Inc()
}

func allowedDynamic(reg *obs.Registry, shard string) {
	//rcvet:allow(debug-only registry that is never merged or scraped)
	reg.Counter(shard, "annotated escape hatch").Inc()
}
