// Package poolescape exercises the rcvet poolescape analyzer: values
// leased from sync.Pool or a free list must not be retained in
// long-lived structures or used after they are recycled, with origins
// tracked through cross-package PoolSource/PoolPuts summary facts.
package poolescape

import (
	"sync"

	"resourcecentral/internal/lint/fixture/lintfixture"
)

type obj struct{ id int }

var pool = sync.Pool{New: func() any { return new(obj) }}

type registry struct {
	last *obj
	byID map[int]*obj
}

// Direct retention: a pooled box stored in a field outlives its lease.
func retainField(r *registry) {
	o := pool.Get().(*obj)
	r.last = o // want `pooled value stored in a long-lived structure`
	pool.Put(o)
}

// Direct use-after-put.
func useAfterPut() int {
	o := pool.Get().(*obj)
	o.id = 1
	pool.Put(o)
	return o.id // want `use of o after it was recycled`
}

// Cross-package, multi-hop transitive positives: GetBox -> getBox ->
// sync.Pool.Get and PutBox -> putBox -> sync.Pool.Put are facts from
// lintfixture's sidecar, not syntax this package can see.
var kept *lintfixture.Box

func retainTransitive() {
	b := lintfixture.GetBox()
	kept = b // want `pooled value stored in a long-lived structure`
	lintfixture.PutBox(b)
}

func useAfterPutTransitive() int {
	b := lintfixture.GetBox()
	lintfixture.PutBox(b)
	return len(b.Buf) // want `use of b after it was recycled`
}

// Correct usage: write into the box, copy out, recycle after the last
// use. Must not flag.
func copyOut() int {
	o := pool.Get().(*obj)
	o.id = 7
	id := o.id
	pool.Put(o)
	return id
}

// A free list in the simulator's style: popping and shrinking scratch
// qualifies it, appending to it is the sanctioned recycle path.
type src struct {
	scratch []*obj
	byID    map[int]*obj
}

func (s *src) acquire() *obj {
	if n := len(s.scratch); n > 0 {
		o := s.scratch[n-1]
		s.scratch = s.scratch[:n-1]
		return o
	}
	return new(obj)
}

func (s *src) release(o *obj) {
	s.scratch = append(s.scratch, o)
}

// A popped box aliased into a live map escapes the lease.
func (s *src) leak(id int) {
	o := s.acquire()
	s.byID[id] = o // want `pooled value stored in a long-lived structure`
}

// The escape hatch.
func allowedUse() int {
	o := pool.Get().(*obj)
	pool.Put(o)
	//rcvet:allow(single-threaded helper; nothing can reuse the box between the put and this read)
	return o.id
}
