// Package poolescape exercises the rcvet poolescape analyzer: values
// leased from sync.Pool or a free list must not be retained in
// long-lived structures or used after they are recycled, with origins
// tracked through cross-package PoolSource/PoolPuts summary facts.
package poolescape

import (
	"sync"

	"resourcecentral/internal/lint/fixture/lintfixture"
)

type obj struct{ id int }

var pool = sync.Pool{New: func() any { return new(obj) }}

type registry struct {
	last *obj
	byID map[int]*obj
}

// Direct retention: a pooled box stored in a field outlives its lease.
func retainField(r *registry) {
	o := pool.Get().(*obj)
	r.last = o // want `pooled value stored in a long-lived structure`
	pool.Put(o)
}

// Direct use-after-put.
func useAfterPut() int {
	o := pool.Get().(*obj)
	o.id = 1
	pool.Put(o)
	return o.id // want `use of o after it was recycled`
}

// Cross-package, multi-hop transitive positives: GetBox -> getBox ->
// sync.Pool.Get and PutBox -> putBox -> sync.Pool.Put are facts from
// lintfixture's sidecar, not syntax this package can see.
var kept *lintfixture.Box

func retainTransitive() {
	b := lintfixture.GetBox()
	kept = b // want `pooled value stored in a long-lived structure`
	lintfixture.PutBox(b)
}

func useAfterPutTransitive() int {
	b := lintfixture.GetBox()
	lintfixture.PutBox(b)
	return len(b.Buf) // want `use of b after it was recycled`
}

// Correct usage: write into the box, copy out, recycle after the last
// use. Must not flag.
func copyOut() int {
	o := pool.Get().(*obj)
	o.id = 7
	id := o.id
	pool.Put(o)
	return id
}

// A free list in the simulator's style: popping and shrinking scratch
// qualifies it, appending to it is the sanctioned recycle path.
type src struct {
	scratch []*obj
	byID    map[int]*obj
}

func (s *src) acquire() *obj {
	if n := len(s.scratch); n > 0 {
		o := s.scratch[n-1]
		s.scratch = s.scratch[:n-1]
		return o
	}
	return new(obj)
}

func (s *src) release(o *obj) {
	s.scratch = append(s.scratch, o)
}

// A popped box aliased into a live map escapes the lease.
func (s *src) leak(id int) {
	o := s.acquire()
	s.byID[id] = o // want `pooled value stored in a long-lived structure`
}

// The escape hatch.
func allowedUse() int {
	o := pool.Get().(*obj)
	pool.Put(o)
	//rcvet:allow(single-threaded helper; nothing can reuse the box between the put and this read)
	return o.id
}

// --- flow-sensitive cases: the CFG upgrade ---

// A put inside one branch poisons the join: SOME execution recycled
// the box, so the read after the if is a use-after-put.
func branchPut(cold bool) int {
	o := pool.Get().(*obj)
	if cold {
		pool.Put(o)
	}
	return o.id // want `use of o after it was recycled`
}

// Reassignment on the recycling branch revives the variable before
// the join: no path reaches the read with a dead box.
func branchRevive(cold bool) int {
	o := pool.Get().(*obj)
	if cold {
		pool.Put(o)
		o = new(obj)
	}
	return o.id
}

// A put at the bottom of a loop body kills the use at the top of the
// next iteration: the back edge carries the dead state around.
func loopPut(rounds int) {
	o := pool.Get().(*obj)
	for i := 0; i < rounds; i++ {
		o.id = i    // want `use of o after it was recycled`
		pool.Put(o) // want `use of o after it was recycled`
	}
}

// Re-leasing each iteration is the correct loop shape.
func loopLease(rounds int) {
	for i := 0; i < rounds; i++ {
		o := pool.Get().(*obj)
		o.id = i
		pool.Put(o)
	}
}

// --- map-mediated leases: the columnar source's shape ---

// The box is tracked through a side map and the release is keyed by
// the ticket rather than the box itself. The summarizer follows the
// map read back to the key parameter (PoolPuts via the map), so a
// caller touching the ticket after releasing it is flagged.
type ticket struct{ n int }

type keyed struct {
	free  []*obj
	byKey map[*ticket]*obj
}

func (k *keyed) lease(t *ticket) *obj {
	if n := len(k.free); n > 0 {
		o := k.free[n-1]
		k.free = k.free[:n-1]
		return o
	}
	o := new(obj)
	k.byKey[t] = o
	return o
}

func (k *keyed) releaseFor(t *ticket) {
	if o, ok := k.byKey[t]; ok {
		k.free = append(k.free, o)
	}
}

func mapMediated(k *keyed, t *ticket) int {
	o := k.lease(t)
	o.id = 4
	k.releaseFor(t)
	return t.n // want `use of t after it was recycled`
}

func mapMediatedClean(k *keyed, t *ticket) int {
	o := k.lease(t)
	o.id = 5
	n := t.n
	k.releaseFor(t)
	return n
}
