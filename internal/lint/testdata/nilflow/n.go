// Package nilflow exercises the rcvet nilflow analyzer: dereferences
// of pointers that are nil on EVERY path reaching the use. Maybe-nil
// is deliberately silent — only guaranteed crashes are findings.
package nilflow

type node struct {
	val  int
	next *node
}

func (n *node) lenChain() int { // pointer receiver: legal on nil
	if n == nil {
		return 0
	}
	return 1 + n.next.lenChain()
}

type view struct{ n *node }

func (v view) first() *node { return v.n } // value receiver: derefs

// Straight-line: declared without a value, dereferenced before any
// assignment could make it non-nil.
func zeroValueDeref() int {
	var p *node
	return p.val // want `guaranteed nil pointer dereference`
}

// The error-pair convention: err != nil proves the pointer result nil
// on that branch, so using it inside the error arm is a guaranteed
// crash.
func errArmDeref(mk func() (*node, error)) int {
	p, err := mk()
	if err != nil {
		return p.val // want `guaranteed nil pointer dereference`
	}
	return p.val
}

// The same pair used correctly: the happy arm proved p non-nil.
func errArmClean(mk func() (*node, error)) int {
	p, err := mk()
	if err != nil {
		return -1
	}
	return p.val
}

// An explicit nil test guards the dereference.
func guardedDeref(p *node) int {
	if p == nil {
		return 0
	}
	return p.val
}

// ...and the inverted guard dereferencing on the proven-nil arm.
func invertedGuard(p *node) int {
	if p != nil {
		return p.val
	}
	return p.val // want `guaranteed nil pointer dereference`
}

// Maybe-nil at a join is silent: one path assigns, the analyzer only
// reports when every path agrees the pointer is nil.
func maybeNil(ok bool) int {
	var p *node
	if ok {
		p = &node{val: 1}
	}
	return p.val
}

// Reassignment revives: the nil fact dies at the new definition.
func reassigned() int {
	var p *node
	p = &node{val: 2}
	return p.val
}

// Pointer-receiver method calls on a proven-nil value are legal Go —
// lenChain handles its own nil receiver.
func nilReceiverCall() int {
	var p *node
	return p.lenChain()
}

// A value-receiver method call must copy the receiver and crashes.
func valueReceiverCall() *node {
	var v *view
	return v.first() // want `guaranteed nil pointer dereference`
}

// Explicit dereference of a literal-nil assignment.
func starDeref() node {
	p := (*node)(nil)
	return *p // want `guaranteed nil pointer dereference`
}

// Address-taken pointers are excluded: somebody else may write
// through the alias between the definition and the use.
func addressTaken(fill func(**node)) int {
	var p *node
	fill(&p)
	return p.val
}

// Assigned inside a closure: execution order is not statically known,
// so the variable is excluded from tracking.
func closureAssigned() int {
	var p *node
	set := func() { p = &node{val: 3} }
	set()
	return p.val
}

// A human judged the site unreachable in practice.
func allowedDeref() int {
	var p *node
	return p.val //rcvet:allow(exercised only by the panic-path test harness)
}
