// Package engine is raw material for the summary-engine unit tests:
// mutual recursion for the SCC fixed point, and cross-package wrappers
// whose summaries must compose through lintfixture's exported facts.
package engine

import (
	"time"

	"resourcecentral/internal/lint/fixture/lintfixture"
)

// ping and pong are mutually recursive; only pong reads the clock. The
// per-SCC fixed point must taint both.
func ping(n int) time.Time {
	if n == 0 {
		return pong(n)
	}
	return ping(n - 1)
}

func pong(n int) time.Time {
	if n > 0 {
		return ping(n - 1)
	}
	return time.Now()
}

// wrap composes lintfixture.Stamp's summary: the chain runs three
// frames deep, ending at time.Now two packages away.
func wrap() time.Time { return lintfixture.Stamp() }

// clean calls only summarized-clean code and must stay untainted.
func clean(x int) int { return lintfixture.Pure(x) + 1 }
