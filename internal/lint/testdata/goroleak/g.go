// Package goroleak exercises the rcvet goroleak analyzer: every go
// statement's body must reach a join signal (WaitGroup Done/Wait, a
// channel operation, or a select), possibly through the summaries.
package goroleak

import (
	"context"
	"sync"

	"resourcecentral/internal/lint/fixture/lintfixture"
)

var counter int

func fireAndForget() {
	go func() { // want `goroutine literal has no reachable join signal`
		counter++
	}()
}

// The repo's dominant idiom: deferred Done with a Wait in the owner.
func joined(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		counter++
	}()
}

// Any channel operation counts as a join signal.
func channelJoined(ch chan int) {
	go func() { ch <- 1 }()
}

// A select over ctx.Done is the daemon-with-shutdown idiom.
func ctxLoop(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				counter++
			}
		}
	}()
}

// Transitive join, multi-hop and cross-package: waitFor ->
// lintfixture.Joined -> channel receive. Must not flag.
func transitiveJoin(done chan struct{}) {
	go waitFor(done)
}

func waitFor(done chan struct{}) { lintfixture.Joined(done) }

// Transitive leak, multi-hop and cross-package: spin ->
// lintfixture.Forever, which never joins.
func transitiveLeak() {
	go spin() // want `goroutine goroleak\.spin has no reachable join signal`
}

func spin() { lintfixture.Forever() }

// A function value has an unknown target: rcvet cannot prove a join.
func funcValue(f func()) {
	go f() // want `goroutine spawned through a function value`
}

func daemon() {
	for {
		counter++
	}
}

// Deliberate process-lifetime daemons take an allow on the go statement.
func allowedDaemon() {
	go daemon() //rcvet:allow(process-lifetime counter by design; dies with the process)
}
