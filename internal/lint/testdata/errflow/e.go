// Package errflow exercises the rcvet errflow analyzer: ignored error
// returns from I/O — direct stdlib calls, store calls (modeled remote
// blob I/O), and calls whose summaries say I/O is reachable.
package errflow

import (
	"os"
	"strconv"

	"resourcecentral/internal/lint/fixture/lintfixture"
	"resourcecentral/internal/store"
)

// Direct discards of stdlib I/O errors.
func direct(path string, data []byte) {
	os.WriteFile(path, data, 0o644) // want `error from os\.WriteFile ignored: an I/O failure here is silently dropped`
	_ = os.Remove(path)             // want `error from os\.Remove ignored: an I/O failure here is silently dropped`
}

func deferred(f *os.File) {
	defer f.Close()             // want `error from \(\*os\.File\)\.Close ignored: an I/O failure here is silently dropped`
	_, _ = f.Write([]byte("x")) // want `error from \(\*os\.File\)\.Write ignored: an I/O failure here is silently dropped`
}

// Store calls model the remote Azure-storage tier: their errors must
// be handled even though the in-memory implementation cannot fail.
func viaStore(s *store.Store) {
	s.Put("model/lifetime", nil) // want `error from \(\*store\.Store\)\.Put ignored: store calls model remote blob I/O`
}

// Transitive: WriteState wraps os.WriteFile one package away.
func transitive(path string) {
	lintfixture.WriteState(path, nil) // want `error from lintfixture\.WriteState ignored: I/O is reachable from this call`
}

// Deeper still: persist -> lintfixture.WriteState -> os.WriteFile,
// three hops, composed through two summaries.
func deep(path string) {
	persist(path) // want `error from errflow\.persist ignored: I/O is reachable from this call`
}

func persist(path string) error { return lintfixture.WriteState(path, nil) }

// Must not flag: handled errors and non-I/O discards.
func handled(path string) error {
	if err := os.Remove(path); err != nil {
		return err
	}
	return nil
}

func pureDiscard(s string) int {
	n, _ := strconv.Atoi(s) // pure computation: ignoring its error is local style
	return n
}

// Best-effort discards take an allow with the justification inline.
func allowedCleanup(tmp string) {
	_ = os.Remove(tmp) //rcvet:allow(best-effort temp cleanup; failure only leaks a file)
}
