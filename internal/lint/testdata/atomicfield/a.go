// Package atomicfield exercises the rcvet atomicfield analyzer: a
// struct field accessed through sync/atomic anywhere — locally or
// through a multi-hop cross-package chain recorded in the summary
// sidecars — must be accessed atomically everywhere.
package atomicfield

import (
	"sync/atomic"

	"resourcecentral/internal/lint/fixture/lintfixture"
)

type counters struct {
	n    uint64
	cold uint64
}

// hot establishes the atomic discipline for counters.n.
func hot(c *counters) { atomic.AddUint64(&c.n, 1) }

func plainRead(c *counters) uint64 {
	return c.n // want `plain access of atomicfield\.counters\.n`
}

func plainWrite(c *counters) {
	c.n++ // want `plain access of atomicfield\.counters\.n`
}

// cold is never touched atomically: the must-not-flag control.
func coldInc(c *counters) { c.cold++ }

// Cross-package, multi-hop transitive positive: lintfixture.Stats.Hits
// is atomic two hops away (Bump -> bump -> atomic.AddUint64); the
// analyzer sees only the summary fact, never that package's syntax.
func peek(s *lintfixture.Stats) uint64 {
	return s.Hits // want `plain access of lintfixture\.Stats\.Hits`
}

// The sanctioned forms: typed-atomic methods, and handing out a typed
// atomic's address (the type keeps the discipline).
type typed struct{ g atomic.Int64 }

func typedOK(t *typed) int64 { return t.g.Load() }

func handOut(t *typed) *atomic.Int64 { return &t.g }

// The escape hatch: a plain write judged safe (no goroutines yet).
func initWrite(c *counters) {
	//rcvet:allow(constructor-time write before the struct is shared)
	c.n = 0
}
