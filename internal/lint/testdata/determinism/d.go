// Package determinism exercises the rcvet determinism analyzer. The
// golden test runs the analyzer on this package directly, standing in
// for a seeded package (the driver scopes the analyzer by import path).
package determinism

import (
	mrand "math/rand"
	"math/rand/v2"
	"time"

	"resourcecentral/internal/lint/fixture/lintfixture"
)

func wallClock() time.Duration {
	t0 := time.Now()    // want `time\.Now in seeded package`
	d := time.Since(t0) // want `time\.Since in seeded package`
	_ = time.Until(t0)  // want `time\.Until in seeded package`
	return d
}

func notWallClock() time.Time {
	// Constructing times from parts is deterministic; only reading the
	// clock is flagged.
	return time.Date(2017, time.October, 28, 0, 0, 0, 0, time.UTC)
}

func globalRand() {
	_ = rand.IntN(10)                  // want `global rand\.IntN in seeded package`
	_ = rand.Float64()                 // want `global rand\.Float64 in seeded package`
	rand.Shuffle(3, func(i, j int) {}) // want `global rand\.Shuffle in seeded package`
	_ = mrand.Intn(10)                 // want `global rand\.Intn in seeded package`
}

func seededRand(seed uint64) float64 {
	// The sanctioned idiom: explicitly-seeded generator state. Neither
	// the constructors nor methods on *rand.Rand are flagged.
	r := rand.New(rand.NewPCG(seed, 0x5ca1ab1e))
	if r.IntN(2) == 0 {
		return r.Float64()
	}
	return r.NormFloat64()
}

func allowedWallClock() time.Time {
	//rcvet:allow(progress logging only; never feeds a seeded result)
	return time.Now()
}

func allowedSameLine() int64 {
	return time.Now().UnixNano() //rcvet:allow(entropy for a throwaway temp-file name)
}

// Transitive positives: the taint lives two hops away in another
// package; the diagnostic must carry the full witness chain composed
// from lintfixture's exported summary.

func transitiveClock() time.Time {
	return lintfixture.Stamp() // want `call to lintfixture\.Stamp transitively reads the wall clock .*chain: fixture\.go:\d+: calls lintfixture\.now -> fixture\.go:\d+: calls time\.Now`
}

func transitiveRand() int {
	return lintfixture.Roll() // want `call to lintfixture\.Roll transitively draws from global rand .*chain: fixture\.go:\d+: calls lintfixture\.draw -> fixture\.go:\d+: calls rand\.IntN`
}

// localHop's in-package call to hop is NOT flagged (the tainted site in
// hop already gets its own diagnostic); only the cross-package call is.
func localHop() time.Time {
	return hop()
}

func hop() time.Time { return lintfixture.Stamp() } // want `call to lintfixture\.Stamp transitively reads the wall clock`

// transitiveClean must not flag: the callee is summarized and clean.
func transitiveClean() int { return lintfixture.Pure(7) }

// allowedTransitive: an allow on the call site suppresses the
// transitive report (and keeps this function's own summary clean).
func allowedTransitive() time.Time {
	return lintfixture.Stamp() //rcvet:allow(startup banner timestamp; not part of any seeded result)
}

// clock is a caller-supplied time source: methods named Now on our own
// types are seeded state, not wall-clock reads.
type clock struct{ t time.Time }

func (c clock) Now() time.Time { return c.t }

func viaClock(c clock) time.Time { return c.Now() }
