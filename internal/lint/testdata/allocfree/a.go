// Package allocfree exercises the rcvet allocfree analyzer: functions
// annotated //rcvet:hotpath must be transitively allocation-free, and
// violations name the allocating chain.
package allocfree

import (
	"strconv"
	"sync"

	"resourcecentral/internal/lint/fixture/lintfixture"
)

// Direct allocation sites inside an annotated body are each reported
// by kind.
//
//rcvet:hotpath
func direct(n int, s string) int {
	buf := make([]byte, n) // want `make in //rcvet:hotpath function direct`
	m := map[int]int{}     // want `map literal in //rcvet:hotpath function direct`
	m[n] = n               // want `map assignment \(may grow the table\) in //rcvet:hotpath function direct`
	t := s + "x"           // want `string concatenation in //rcvet:hotpath function direct`
	return len(buf) + len(m) + len(t)
}

//rcvet:hotpath
func closes() func() int {
	x := 0
	return func() int { x++; return x } // want `function literal \(closure allocation\) in //rcvet:hotpath function closes`
}

func sink(args ...any) {}

//rcvet:hotpath
func vararg(x int) {
	sink(x) // want `variadic call \(allocates the argument slice\) in //rcvet:hotpath function vararg` `interface boxing of int in //rcvet:hotpath function vararg`
}

// Transitive, same package: helper is not annotated, but its summary
// says it may allocate, and the diagnostic carries the chain down to
// the stdlib default.
//
//rcvet:hotpath
func viaHelper(n int) string {
	return helper(n) // want `call to allocfree\.helper in //rcvet:hotpath function viaHelper may allocate \(chain: a\.go:\d+: calls strconv\.Itoa -> no summary for strconv\.Itoa \(assumed to allocate\)\)`
}

func helper(n int) string { return strconv.Itoa(n) }

// Transitive, cross-package and multi-hop: Describe -> format ->
// fmt.Sprintf, all outside this package, witnessed through the
// composed summary chain.
//
//rcvet:hotpath
func crossPackage(x int) string {
	return lintfixture.Describe(x) // want `call to lintfixture\.Describe in //rcvet:hotpath function crossPackage may allocate \(chain: fixture\.go:\d+: calls lintfixture\.format -> fixture\.go:\d+: variadic call`
}

// Must not flag: the CacheKey idiom. strconv.Append* writes into the
// caller's buffer and the string conversion in call-argument position
// does not copy (the gc non-escaping optimization the site model
// encodes).
//
//rcvet:hotpath
func fold(h uint64, c int64) uint64 {
	var num [32]byte
	return fnv(h, string(strconv.AppendInt(num[:0], c, 10)))
}

//rcvet:hotpath
func fnv(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// Must not flag: lock/unlock and plain loads are free, and a
// summarized-clean cross-package callee composes clean.
//
//rcvet:hotpath
func locked(mu *sync.Mutex, v *int) int {
	mu.Lock()
	x := lintfixture.Pure(*v)
	mu.Unlock()
	return x
}

// Must not flag: un-annotated functions may allocate freely.
func coldPath(n int) []int { return make([]int, n) }

// An allow on the site clears it (and keeps the summary clean for
// callers).
//
//rcvet:hotpath
func allowedSetup(n int) []float64 {
	buf := make([]float64, n) //rcvet:allow(one-time setup allocation, amortized across the run)
	return buf
}
