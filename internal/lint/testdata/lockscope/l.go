// Package lockscope exercises the rcvet lockscope analyzer: by-value
// copies of mutex-bearing structs and heavyweight calls inside mutex
// critical sections.
package lockscope

import (
	"sync"

	"resourcecentral/internal/lint/fixture/lintfixture"
	"resourcecentral/internal/model"
	"resourcecentral/internal/obs"
	"resourcecentral/internal/store"
)

// shard mirrors the result cache's lock-per-shard shape.
type shard struct {
	mu      sync.Mutex
	entries map[uint64]int
}

func consume(shard) {}

func copies(s *shard, all []shard) {
	bad := *s // want `assignment copies lock-bearing shard by value`
	_ = bad
	consume(*s)              // want `call passes lock-bearing shard by value`
	for _, sh := range all { // want `range copies lock-bearing shard by value`
		_ = sh
	}
}

// pointerDiscipline is the sanctioned idiom: index and take addresses.
func pointerDiscipline(all []shard) {
	for i := range all {
		sh := &all[i]
		sh.mu.Lock()
		sh.entries[0]++
		sh.mu.Unlock()
	}
}

// freshValue constructs a new value whose zero mutex is unshared; not a
// copy of live lock state, so not flagged.
func freshValue() shard {
	return shard{entries: make(map[uint64]int)}
}

type cache struct {
	mu   sync.Mutex
	reg  *obs.Registry
	st   *store.Store
	hits obs.Counter
	n    int
}

func (c *cache) underLock(spec *model.Spec, in *model.ClientInputs) {
	c.mu.Lock()
	c.n++
	c.hits.Inc()                                                                     // lock-free atomic op: fine under the lock
	ctr := c.reg.Counter("rc_test_total", "registry lookup takes the registry lock") // want `call to obs\.Counter while`
	_, _ = c.st.Get("model/lifetime")                                                // want `call to store\.Get while`
	buf := spec.Featurize(in, nil, nil)                                              // want `Featurize while`
	_ = buf
	c.mu.Unlock()
	ctr.Inc()
	c.reg.Counter("rc_test_total", "after unlock: fine").Inc()
}

func (c *cache) deferredUnlock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	c.reg.Gauge("rc_test_gauge", "deferred unlock keeps the region open") // want `call to obs\.Gauge while`
}

func (c *cache) rlockRegion(mu *sync.RWMutex) {
	mu.RLock()
	c.reg.Counter("rc_test_total", "read locks count too") // want `call to obs\.Counter while`
	mu.RUnlock()
}

func (c *cache) nestedBranch(cond bool) {
	c.mu.Lock()
	if cond {
		c.reg.Counter("rc_test_total", "held state reaches nested blocks") // want `call to obs\.Counter while`
	}
	c.mu.Unlock()
}

func (c *cache) allowedStartup() {
	c.mu.Lock()
	//rcvet:allow(one-time registration during construction, before any concurrency)
	c.reg.Counter("rc_test_startup_total", "annotated")
	c.mu.Unlock()
}

// transitiveBlocking reaches the store two hops away: the direct call
// is innocuous-looking, but lintfixture.TouchStore's summary carries
// the Blocking taint with the witness chain.
func (c *cache) transitiveBlocking() {
	c.mu.Lock()
	lintfixture.TouchStore(c.st) // want `call to lintfixture\.TouchStore while .* transitively reaches a blocking call \(chain: fixture\.go:\d+: calls \(\*store\.Store\)\.Get`
	c.mu.Unlock()
}

// transitiveClean calls a summarized-clean function under the lock:
// must not flag.
func (c *cache) transitiveClean() {
	c.mu.Lock()
	c.n = lintfixture.Pure(c.n)
	c.mu.Unlock()
}

// allowedTransitive: the allow on the call site suppresses the report.
func (c *cache) allowedTransitive() {
	c.mu.Lock()
	//rcvet:allow(shutdown path; no concurrent predictions remain)
	lintfixture.TouchStore(c.st)
	c.mu.Unlock()
}

// goroutineBody spawns work from inside the critical section; the
// closure runs elsewhere, after the lock may be gone, so its body is
// not treated as under-lock.
func (c *cache) goroutineBody(wg *sync.WaitGroup) {
	c.mu.Lock()
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.reg.Counter("rc_test_async_total", "runs outside the region")
	}()
	c.mu.Unlock()
}
