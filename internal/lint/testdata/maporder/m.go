// Package maporder exercises the rcvet maporder analyzer: range-over-map
// bodies whose output depends on randomized iteration order.
package maporder

import (
	"slices"
	"sort"
)

func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside range over map without a later sort`
	}
	return keys
}

// sortedAfter is the canonical collect-then-sort idiom and must not be
// flagged: the sort erases the iteration order.
func sortedAfter(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// slicesSorted uses the slices package instead of sort; also exempt.
func slicesSorted(m map[string]int) []int {
	vals := make([]int, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	slices.Sort(vals)
	return vals
}

func floatSum(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want `float accumulation inside range over map`
	}
	return sum
}

// intSum is commutative and exact; integer accumulation is never
// order-sensitive and must not be flagged.
func intSum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func sendEach(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want `send on a channel inside range over map`
	}
}

type acc struct{ sum float64 }

// perEntry mutates each map entry through the loop-local pointer: every
// iteration touches only its own entry, so order cannot leak out. Must
// not be flagged (the featuredata normalization pass is this shape).
func perEntry(m map[string]*acc) {
	for _, a := range m {
		a.sum /= 2
	}
}

func sharedAccumulator(m map[string]float64, tot *acc) {
	for _, v := range m {
		tot.sum += v // want `float accumulation inside range over map`
	}
}

func allowedEstimate(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		//rcvet:allow(diagnostic estimate only; rounded to whole percent before use)
		sum += v
	}
	return sum
}

// loopLocal appends to a slice that dies with the iteration; no order
// can escape. Must not be flagged.
func loopLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// mapIndexTarget appends into a map-of-slices owned by the caller; the
// root object is outside the loop, so it is flagged.
func mapIndexTarget(src map[string]int, dst map[string][]string) {
	for k := range src {
		dst["all"] = append(dst["all"], k) // want `append to dst inside range over map`
	}
}
