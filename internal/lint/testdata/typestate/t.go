// Package typestate exercises the rcvet typestate analyzer: values
// with a lifecycle protocol (open files, HTTP response bodies) must be
// released on every path out of the function, with acquire and release
// facts composed across package boundaries through the summary table.
package typestate

import (
	"net/http"
	"os"

	"resourcecentral/internal/lint/fixture/lintfixture"
)

// Straight-line leak: opened, inspected, never closed.
func leakLocal(path string) (string, error) {
	f, err := os.Open(path) // want `open file acquired here`
	if err != nil {
		return "", err
	}
	return f.Name(), nil
}

// The paired-error convention: the err != nil early return acquired
// nothing, and the happy path closes, so no path leaks.
func cleanDefer(path string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// One branch closes, the other returns with the file still open: the
// diagnostic names the leaking return, not the whole function.
func branchLeak(path string, flush bool) error {
	f, err := os.Create(path) // want `open file acquired here`
	if err != nil {
		return err
	}
	if flush {
		return f.Close()
	}
	return nil
}

// Every path closes — including the error path — so the branchy shape
// alone is not a finding.
func branchClean(path string, b []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Returning the obligated value transfers the duty to the caller:
// wrappers are how lifecycles compose, so this is an Acquires fact,
// not a diagnostic.
func openLog(dir string) (*os.File, error) {
	return os.Create(dir + "/log")
}

// ...and the caller of the local wrapper inherits the obligation.
func useLog(dir string) (string, error) {
	f, err := openLog(dir) // want `open file acquired here`
	if err != nil {
		return "", err
	}
	return f.Name(), nil
}

// Cross-package, multi-hop transfer: OpenScratch -> openScratch2 ->
// os.CreateTemp is a fact from lintfixture's sidecar — no os call is
// visible in this package's syntax.
func scratchLeak() (string, error) {
	f, err := lintfixture.OpenScratch() // want `open file acquired here`
	if err != nil {
		return "", err
	}
	return f.Name(), nil
}

// Discharged through the cross-package releaser (CloseScratch ->
// closeScratch2 -> Close, a two-hop Releases fact).
func scratchRoundTrip() error {
	f, err := lintfixture.OpenScratch()
	if err != nil {
		return err
	}
	return lintfixture.CloseScratch(f)
}

// DropScratch only borrows the file (no Releases fact): handing it
// over does not discharge the caller.
func scratchDropped() (string, error) {
	f, err := lintfixture.OpenScratch() // want `open file acquired here`
	if err != nil {
		return "", err
	}
	return lintfixture.DropScratch(f), nil
}

// A human judged this safe: the allow clears the obligation at the
// acquire site.
func scratchAllowed() string {
	f, err := lintfixture.OpenScratch() //rcvet:allow(process-lifetime scratch; the OS reclaims it at exit)
	if err != nil {
		return ""
	}
	return f.Name()
}

// Release through a path selection: the obligation lives on the
// response, the release is Body.Close.
func fetchClean(url string) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	return resp.StatusCode, nil
}

// The response body is never closed on the happy path.
func fetchLeak(url string) (int, error) {
	resp, err := http.Get(url) // want `HTTP response acquired here`
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}
