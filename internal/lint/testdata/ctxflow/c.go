// Package ctxflow exercises the rcvet ctxflow analyzer: goroutines
// and HTTP handlers whose call chains carry blocking taint must also
// consume a cancellation signal (ctx.Done or a stop channel), with the
// taint composed through cross-package summary facts.
package ctxflow

import (
	"context"
	"net/http"
	"time"

	"resourcecentral/internal/lint/fixture/lintfixture"
)

// Uncancellable spawn, direct: the literal's receive blocks forever.
func spawnRecv(ch chan int) {
	go func() { // want `goroutine literal blocks`
		<-ch
	}()
}

// Cross-package, multi-hop transitive positive: BlockForever ->
// recvLoop -> channel receive, known only through the sidecar.
func spawnTransitive(ch chan int) {
	go lintfixture.BlockForever(ch) // want `goroutine lintfixture\.BlockForever blocks`
}

// Cancellable two hops down via ctx.Done: must not flag.
func spawnCancellable(ctx context.Context, ch chan int) {
	go lintfixture.AwaitDone(ctx, ch)
}

// A stop-channel select also counts as a cancellation signal.
func spawnStopChan(stop chan struct{}, ch chan int) {
	go loopWithStop(stop, ch)
}

func loopWithStop(stop chan struct{}, ch chan int) {
	for {
		select {
		case <-stop:
			return
		case v := <-ch:
			_ = v
		}
	}
}

// A blocking handler that ignores r.Context pins its connection
// goroutine after the client is gone.
func slowHandler(w http.ResponseWriter, r *http.Request) { // want `HTTP handler ctxflow\.slowHandler blocks`
	time.Sleep(time.Second)
}

// A handler that honors the request context: must not flag.
func politeHandler(w http.ResponseWriter, r *http.Request) {
	select {
	case <-r.Context().Done():
	case <-time.After(time.Second):
	}
}

// The escape hatch.
func spawnAllowed(ch chan int) {
	//rcvet:allow(harness drains ch before joining, so the send is bounded)
	go func() { ch <- 1 }()
}

// --- channel proofs: disciplines that no longer need an allow ---

// A buffered error channel with a single send can never block: the
// package-wide channel proof marks the send bounded, so the goroutine
// carries no blocking taint.
func boundedSend(work func() error) error {
	errCh := make(chan error, 1)
	go func() {
		errCh <- work()
	}()
	return <-errCh
}

// The counting-semaphore idiom: a struct{} token channel, acquire by
// send, release by deferred receive. Both operations are proven
// non-blocking-in-the-deadlock-sense (the send bounds parallelism by
// design), so neither the literal nor its spawner is flagged.
func semaphoreWorkers(n int, jobs []func()) {
	sem := make(chan struct{}, n)
	for _, job := range jobs {
		go func(job func()) {
			sem <- struct{}{}
			defer func() { <-sem }()
			job()
		}(job)
	}
}
