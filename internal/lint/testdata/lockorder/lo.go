// Package lockorder completes a lock-order cycle whose other half
// lives in lintfixture (NestBA acquires MuB then MuA): this package
// acquires MuA and then — transitively, through a helper — MuB. It
// owns the cycle's lexicographically smallest edge, so the cycle is
// reported here, once, at the edge's witness line.
package lockorder

import (
	"sync"

	"resourcecentral/internal/lint/fixture/lintfixture"
)

func viaHelper() {
	lintfixture.MuA.Lock()
	grabB() // want `lock-order cycle .*lintfixture\.MuA -> .*lintfixture\.MuB -> .*lintfixture\.MuA: two goroutines interleaving these acquisitions deadlock; witnesses: \[holding .*lintfixture\.MuA: lo\.go:\d+: calls lockorder\.grabB -> lo\.go:\d+: acquires .*lintfixture\.MuB \| holding .*lintfixture\.MuB: fixture\.go:\d+: acquires .*lintfixture\.MuA\]`
	lintfixture.MuA.Unlock()
}

// grabB acquires MuB with nothing held: the edge exists only through
// viaHelper's composition.
func grabB() {
	lintfixture.MuB.Lock()
	lintfixture.MuB.Unlock()
}

var (
	pMu sync.Mutex
	qMu sync.Mutex
)

// consistent nests p -> q; an edge, but no cycle: must not flag.
func consistent() {
	pMu.Lock()
	qMu.Lock()
	qMu.Unlock()
	pMu.Unlock()
}

// allowedInversion nests q -> p, which would complete a cycle with
// consistent's edge; the allow on the inner acquisition removes the
// edge from the summary, so no cycle exists anywhere.
func allowedInversion() {
	qMu.Lock()
	//rcvet:allow(init-time only: runs before any goroutine can hold pMu)
	pMu.Lock()
	pMu.Unlock()
	qMu.Unlock()
}

// localOnly nests a function-local mutex under pMu; local locks cannot
// be contended across functions and never form edges.
func localOnly() {
	var mu sync.Mutex
	pMu.Lock()
	mu.Lock()
	mu.Unlock()
	pMu.Unlock()
}
