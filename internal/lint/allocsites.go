package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// forEachAllocSite walks a syntax tree and reports every statically
// detected allocation site: the base facts behind the allocfree
// analyzer and the Alloc component of function summaries. Nested
// function literals are reported as one site (the closure allocation)
// and not entered — they are separate summary nodes. Calls into other
// functions are NOT classified here; callers compose callee Alloc
// summaries themselves (composeCall in the engine, the call walk in
// allocfree).
//
// The site model, chosen to make PR 2's measured-zero-alloc hot paths
// provably clean while staying conservative everywhere else:
//
//   - make, new, growing append: allocate. append always counts — cap
//     headroom is not statically provable.
//   - slice and map composite literals allocate; struct and array
//     literals are stack values, but taking their address (&T{...})
//     escapes and counts.
//   - non-constant string concatenation allocates.
//   - string<->[]byte/[]rune conversions allocate, EXCEPT in call
//     argument position, which models the gc compiler's non-escaping
//     conversion optimization — string(strconv.AppendInt(buf[:0], ...))
//     as an argument does not copy, and CacheKey relies on exactly that.
//   - boxing a non-pointer-shaped concrete value into an interface
//     (call arguments, assignments, var decls) allocates; pointers,
//     channels, maps, and funcs are stored directly.
//   - variadic calls with at least one variadic argument allocate the
//     argument slice.
//   - map assignment may grow the table.
//   - function literals allocate their closure; go statements allocate
//     the goroutine.
//   - calls through function-typed values have unknown targets and are
//     reported here (named callees are composed via summaries instead).
func forEachAllocSite(info *types.Info, root ast.Node, report func(pos token.Pos, what string)) {
	// Conversions appearing directly as call arguments are exempt from
	// the string-conversion rule; parents are visited before children,
	// so the marking below is always seen in time.
	exemptConv := make(map[ast.Expr]bool)
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(), "function literal (closure allocation)")
			return false
		case *ast.GoStmt:
			report(n.Pos(), "go statement (goroutine spawn allocates)")
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(info, n) && !isConstExpr(info, n) {
				report(n.Pos(), "string concatenation")
			}
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), "slice literal")
			case *types.Map:
				report(n.Pos(), "map literal")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "address of composite literal (escapes to heap)")
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if _, ok := info.TypeOf(idx.X).Underlying().(*types.Map); ok {
						report(lhs.Pos(), "map assignment (may grow the table)")
					}
				}
			}
			if len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					if boxes(info, info.TypeOf(n.Lhs[i]), rhs) {
						report(rhs.Pos(), "interface boxing of "+info.TypeOf(rhs).String())
					}
				}
			}
		case *ast.ValueSpec:
			if n.Type != nil {
				for _, v := range n.Values {
					if boxes(info, info.TypeOf(n.Type), v) {
						report(v.Pos(), "interface boxing of "+info.TypeOf(v).String())
					}
				}
			}
		case *ast.CallExpr:
			classifyCallAlloc(info, n, exemptConv, report)
		}
		return true
	})
}

// classifyCallAlloc handles the call-shaped allocation sites: builtins,
// conversions, variadic packing, argument boxing, and dynamic calls.
func classifyCallAlloc(info *types.Info, call *ast.CallExpr, exemptConv map[ast.Expr]bool, report func(token.Pos, string)) {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if exemptConv[call] {
			return
		}
		classifyConversion(info, call, tv.Type, report)
		return
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make")
			case "new":
				report(call.Pos(), "new")
			case "append":
				report(call.Pos(), "append (may grow the backing array)")
			}
			return
		}
	}
	sig, _ := info.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	// Mark conversion arguments exempt before they are visited.
	for _, a := range call.Args {
		if conv, ok := ast.Unparen(a).(*ast.CallExpr); ok {
			if tv, ok := info.Types[conv.Fun]; ok && tv.IsType() && stringBytesConversion(info, conv, tv.Type) {
				exemptConv[conv] = true
			}
		}
	}
	if calleeFunc(info, call) == nil {
		if _, isLit := ast.Unparen(call.Fun).(*ast.FuncLit); !isLit {
			report(call.Pos(), "call through function value (unknown target)")
			return
		}
	}
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= sig.Params().Len() {
		report(call.Pos(), "variadic call (allocates the argument slice)")
	}
	for i, a := range call.Args {
		if pt := paramType(sig, i); pt != nil && boxes(info, pt, a) {
			report(a.Pos(), "interface boxing of "+info.TypeOf(a).String())
		}
	}
}

// classifyConversion reports conversions that copy memory: between
// string and byte/rune slices, or rune/int to string.
func classifyConversion(info *types.Info, conv *ast.CallExpr, dst types.Type, report func(token.Pos, string)) {
	if stringBytesConversion(info, conv, dst) {
		report(conv.Pos(), "string/[]byte conversion (copies)")
		return
	}
	if len(conv.Args) != 1 {
		return
	}
	if isString(dst) {
		if b, ok := info.TypeOf(conv.Args[0]).Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			report(conv.Pos(), "integer-to-string conversion")
		}
	}
}

// stringBytesConversion reports whether conv converts between string
// and []byte / []rune (either direction).
func stringBytesConversion(info *types.Info, conv *ast.CallExpr, dst types.Type) bool {
	if len(conv.Args) != 1 {
		return false
	}
	src := info.TypeOf(conv.Args[0])
	if src == nil {
		return false
	}
	return (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	return t != nil && isString(t)
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// boxes reports whether assigning e to a destination of type dst stores
// a concrete non-pointer-shaped value into an interface, which heap-
// allocates the boxed copy. Pointer-shaped values (pointers, channels,
// maps, funcs, unsafe pointers) are stored directly; nil and
// interface-to-interface assignments never box.
func boxes(info *types.Info, dst types.Type, e ast.Expr) bool {
	if dst == nil {
		return false
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return false
	}
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	src := tv.Type
	if _, ok := src.Underlying().(*types.Interface); ok {
		return false
	}
	switch u := src.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

// paramType returns the static type of the i-th argument slot of sig,
// unrolling the variadic tail.
func paramType(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	n := params.Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		if s, ok := params.At(n - 1).Type().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i < n {
		return params.At(i).Type()
	}
	return nil
}
