package lint

import (
	"go/types"
	"strings"
)

// Intrinsic knowledge about callees that have no computed summary —
// the standard library, mostly. The rules err conservative: anything
// not provably clean is assumed to allocate, with a witness frame
// saying so, which is exactly the behavior the allocfree goldens pin.

// defaultSummary synthesizes a conservative summary for a callee whose
// package has not been summarized.
func defaultSummary(fn *types.Func) *FuncSummary {
	s := &FuncSummary{}
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	name := fn.Name()
	recv := fn.Signature().Recv()
	switch pkg {
	case "time":
		if recv == nil && (name == "Now" || name == "Since" || name == "Until") {
			// Empty chain: the caller's composed frame ("file.go:12:
			// calls time.Now") already names the read.
			s.Clock = &Taint{}
		}
	case "math/rand", "math/rand/v2":
		// Package-level functions draw from the global process-seeded
		// source; constructors and *rand.Rand methods are seeded state.
		if recv == nil && !deterministicRandFuncs[name] {
			s.Rand = &Taint{}
		}
	}
	if !allocFreeIntrinsic(fn, pkg, name, recv) {
		s.Alloc = &Taint{Chain: []Frame{{Call: "no summary for " + shortFuncName(fn) + " (assumed to allocate)"}}}
	}
	if ioIntrinsic(fn, pkg, name) {
		s.IO = true
	}
	if pkg == "sync" && (name == "Done" || name == "Wait") {
		// WaitGroup.Done / WaitGroup.Wait / Cond.Wait are the join
		// signals goroleak accepts from the stdlib.
		s.JoinSignal = true
	}
	if blockingIntrinsic(pkg, name, recv) {
		s.Blocks = &Taint{Chain: []Frame{{Call: shortFuncName(fn) + " blocks"}}}
	}
	if cancelIntrinsic(pkg, name) {
		s.Cancel = true
	}
	return s
}

// blockingIntrinsic lists the stdlib calls ctxflow treats as unbounded
// (or unboundedly slow) waits: sleeps, HTTP round trips, dials, and
// accept loops. Channel operations in repo code are detected
// syntactically by scanBlockFacts; this table covers the waits hidden
// behind stdlib calls.
func blockingIntrinsic(pkg, name string, recv *types.Var) bool {
	switch pkg {
	case "time":
		return recv == nil && name == "Sleep"
	case "net/http":
		// Client round trips: package helpers and *Client methods.
		switch name {
		case "Do", "Get", "Post", "PostForm", "Head", "RoundTrip":
			return true
		}
	case "net":
		if recv == nil {
			return name == "Dial" || name == "DialTimeout" || name == "DialIP" ||
				name == "DialTCP" || name == "DialUDP" || name == "DialUnix"
		}
		return name == "Accept"
	}
	return false
}

// cancelIntrinsic lists stdlib calls whose presence means the caller
// threads a context through its blocking work: a request built with
// NewRequestWithContext (or rebound via WithContext) is cancelled by
// the context even though the Do call itself shows as blocking.
func cancelIntrinsic(pkg, name string) bool {
	return pkg == "net/http" && (name == "NewRequestWithContext" || name == "WithContext")
}

// allocFreeIntrinsic lists the stdlib calls the allocfree analyzer
// trusts not to allocate. Everything outside this list (and outside
// computed summaries) is assumed allocating.
func allocFreeIntrinsic(fn *types.Func, pkg, name string, recv *types.Var) bool {
	switch pkg {
	case "math", "math/bits", "sync", "sync/atomic", "unsafe", "errors":
		// sync: Lock/Unlock/atomic ops; Pool.Get can allocate via New
		// but returns pooled memory by design — treating the sync
		// package as clean is the contract hot paths rely on.
		// errors: only Is/As walk chains without allocating; New/Errorf
		// are caught because errors.New constructs, but keeping the
		// whole package simple is wrong — restrict below.
		if pkg == "errors" {
			return name == "Is" || name == "As"
		}
		return true
	case "time":
		if recv == nil {
			return name == "Now" || name == "Since" || name == "Until"
		}
		rt := deref(recv.Type())
		if named, ok := rt.(*types.Named); ok {
			switch named.Obj().Name() {
			case "Duration":
				// Duration methods are arithmetic (Seconds, Nanoseconds,
				// ...) except the formatting one.
				return name != "String"
			case "Time":
				switch name {
				case "Sub", "Before", "After", "Equal", "Compare", "IsZero",
					"Unix", "UnixNano", "UnixMilli", "UnixMicro":
					return true
				}
			}
		}
		return false
	case "strconv":
		// strconv.Append* write into a caller-provided buffer.
		return strings.HasPrefix(name, "Append")
	case "sort":
		// sort.Search* binary-search without touching the heap.
		return strings.HasPrefix(name, "Search")
	}
	return false
}

// ioPackages are the stdlib packages whose calls count as I/O for the
// errflow analyzer; an error ignored from one of these is a dropped
// failure the server or pipeline will never see.
var ioPackages = map[string]bool{
	"os":            true,
	"io":            true,
	"io/fs":         true,
	"io/ioutil":     true,
	"bufio":         true,
	"net":           true,
	"net/http":      true,
	"compress/gzip": true,
	"encoding/csv":  true,
	"encoding/gob":  true,
	"database/sql":  true,
}

// ioIntrinsic reports whether a call into an unsummarized package is an
// I/O operation. encoding/json counts only for the streaming
// Encoder/Decoder methods, which wrap a writer/reader; Marshal and
// Unmarshal are pure.
func ioIntrinsic(fn *types.Func, pkg, name string) bool {
	if ioPackages[pkg] {
		return true
	}
	if pkg == "encoding/json" {
		return name == "Encode" || name == "Decode"
	}
	return false
}

// StoreIO reports whether an import path is internal/store. The store
// models the paper's remote Azure-storage blob tier, so errflow treats
// every error-returning store call as I/O even though the in-memory
// implementation's computed summary performs none itself.
func StoreIO(path string) bool {
	return path == "internal/store" || strings.HasSuffix(path, "/internal/store")
}
