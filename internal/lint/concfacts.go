package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// This file computes the concurrency value-flow facts the atomicfield,
// poolescape, and ctxflow analyzers compose through the summary table:
// which struct fields a function touches through sync/atomic, whether
// a function returns pooled memory or recycles a parameter, and
// whether it blocks without consuming a cancellation signal. The
// scanners run inside the summarizer's SCC fixed point (summary.go),
// so the facts — like every other taint — carry witness chains and
// compose across packages through the sidecars.

// --- atomic field facts ---

// FieldFact records that a struct field (keyed "pkgpath.Type.field",
// the same naming scheme lock classes use) is accessed through
// sync/atomic somewhere, with the chain witnessing the access.
type FieldFact struct {
	Field string  `json:"field"`
	Chain []Frame `json:"chain,omitempty"`
}

// fieldKeyOf names the struct field a selector denotes, or "" when the
// selector is not a field selection (a method, a package name, a
// qualified import). The owning type comes from the selection's
// receiver, so promoted fields key by the embedded type that declares
// them — one field, one key, across every access path.
func fieldKeyOf(info *types.Info, sel *ast.SelectorExpr) string {
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return ""
	}
	field := selection.Obj().(*types.Var)
	recv := selection.Recv()
	for i := 0; i < len(selection.Index())-1; i++ {
		recv = deref(recv).Underlying().(*types.Struct).Field(selection.Index()[i]).Type()
	}
	named, ok := deref(recv).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + field.Name()
}

// shortFieldKey collapses a field key's import path to its last
// element for diagnostics: "a/b/internal/obs.counter.v" → "obs.counter.v".
func shortFieldKey(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}

// isAtomicType reports whether a type is one of sync/atomic's typed
// atomics (Int64, Uint64, Bool, Value, Pointer[T], ...).
func isAtomicType(t types.Type) bool {
	named, ok := deref(t).(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync/atomic"
}

// scanAtomicFacts records the fields this body accesses atomically:
// method calls on atomic-typed fields (s.f.Add(1)) and sync/atomic
// package functions over a field's address (atomic.AddUint64(&s.f, 1)).
func (s *summarizer) scanAtomicFacts(sum *FuncSummary, body *ast.BlockStmt) {
	info := s.pkg.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if s.allowed(n.Pos()) {
				return true
			}
			if key := atomicAccessField(info, n); key != "" {
				s.addAtomicField(sum, FieldFact{Field: key, Chain: []Frame{{
					Pos: s.shortPos(n.Pos()), Call: "atomic access of " + shortFieldKey(key),
				}}})
			}
		}
		return true
	})
}

// atomicAccessField names the field one call accesses atomically, or "".
func atomicAccessField(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	// Method on an atomic-typed field: s.f.Add(1).
	if isAtomicType(info.TypeOf(sel.X)) {
		if fsel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
			return fieldKeyOf(info, fsel)
		}
		return ""
	}
	// sync/atomic package function over a field address.
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" ||
		fn.Signature().Recv() != nil || len(call.Args) == 0 {
		return ""
	}
	ue, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || ue.Op != token.AND {
		return ""
	}
	if fsel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr); ok {
		return fieldKeyOf(info, fsel)
	}
	return ""
}

func (s *summarizer) addAtomicField(sum *FuncSummary, f FieldFact) {
	for _, have := range sum.AtomicFields {
		if have.Field == f.Field {
			return
		}
	}
	f.Chain = capChain(f.Chain)
	sum.AtomicFields = append(sum.AtomicFields, f)
	s.changed = true
}

// AllAtomicFields returns every atomically-accessed field known to the
// table, one fact per field key, sorted by key. Among competing
// witnesses the shortest chain wins (ties broken by sorted function
// key), so the witness names the direct access site rather than a
// caller of it.
func (t *SummaryTable) AllAtomicFields() []FieldFact {
	keys := make([]string, 0, len(t.funcs))
	for k := range t.funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	best := make(map[string]FieldFact)
	var order []string
	for _, k := range keys {
		for _, f := range t.funcs[k].AtomicFields {
			have, ok := best[f.Field]
			if !ok {
				best[f.Field] = f
				order = append(order, f.Field)
				continue
			}
			if len(f.Chain) < len(have.Chain) {
				best[f.Field] = f
			}
		}
	}
	sort.Strings(order)
	out := make([]FieldFact, 0, len(order))
	for _, field := range order {
		out = append(out, best[field])
	}
	return out
}

// --- blocking / cancellation facts ---

// cancelNameRe matches identifiers that name a stop/done channel by
// convention; receiving from one is consuming a cancellation signal,
// not blocking on data.
var cancelNameRe = regexp.MustCompile(`(?i)(done|stop|quit|shut|cancel|clos|exit)`)

// isCancelExpr reports whether a received-from expression is a
// cancellation source: ctx.Done() (any context.Context method named
// Done), time.After (a bounded wait), or a channel whose name follows
// the done/stop convention.
func isCancelExpr(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return false
		}
		if fn.Name() == "Done" && fn.Pkg().Path() == "context" {
			return true
		}
		return fn.Pkg().Path() == "time" && fn.Name() == "After"
	}
	var name string
	switch x := e.(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	default:
		return false
	}
	return cancelNameRe.MatchString(name)
}

// scanBlockFacts records the ctxflow facts of one body: Blocks (an
// unguarded potentially-unbounded wait — a channel op outside a select
// that has a default or cancellation case) and Cancel (the body
// consumes a cancellation signal: a ctx.Done/stop-channel case, a
// close-terminated comma-ok receive, or ranging over a channel, which
// the producer ends by closing it). Bodies spawned by go statements
// are their own summary nodes and do not leak facts into the spawner.
func (s *summarizer) scanBlockFacts(sum *FuncSummary, body *ast.BlockStmt) {
	info := s.pkg.TypesInfo
	guarded := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			hasDefault, hasCancel := false, false
			for _, c := range n.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok {
					continue
				}
				if cc.Comm == nil {
					hasDefault = true
					continue
				}
				markGuardedComm(guarded, cc.Comm)
				if recv := commRecvExpr(cc.Comm); recv != nil && isCancelExpr(info, recv) {
					hasCancel = true
				}
			}
			if hasCancel {
				s.setBool(&sum.Cancel)
			} else if !hasDefault && !s.allowed(n.Pos()) {
				s.setTaint(&sum.Blocks, []Frame{{
					Pos: s.shortPos(n.Pos()), Call: "select with no cancellation case or default",
				}})
			}
		case *ast.AssignStmt:
			// Comma-ok receive: v, ok := <-ch is close-aware by
			// construction — the ok arm is the producer's stop signal.
			if len(n.Lhs) == 2 && len(n.Rhs) == 1 {
				if ue, ok := ast.Unparen(n.Rhs[0]).(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
					guarded[ue] = true
					s.setBool(&sum.Cancel)
				}
			}
		case *ast.SendStmt:
			if !guarded[n] && !s.boundedSend[n] && !s.semOps[n] && !s.allowed(n.Pos()) {
				s.setTaint(&sum.Blocks, []Frame{{Pos: s.shortPos(n.Pos()), Call: "channel send"}})
			}
		case *ast.UnaryExpr:
			if n.Op != token.ARROW || guarded[n] || s.semOps[n] {
				return true
			}
			if isCancelExpr(info, n.X) {
				s.setBool(&sum.Cancel)
			} else if !s.allowed(n.Pos()) {
				s.setTaint(&sum.Blocks, []Frame{{Pos: s.shortPos(n.Pos()), Call: "channel receive"}})
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					// Close-terminated loop: closing the channel stops it.
					s.setBool(&sum.Cancel)
				}
			}
		}
		return true
	})
}

// --- package-wide channel proofs ---

// chanUse accumulates everything scanChanProofs learns about one
// function-local channel variable.
type chanUse struct {
	minCap     int64 // smallest constant make capacity seen (-1: none yet)
	capUnknown bool  // some make has a non-constant capacity
	otherDef   bool  // some definition is not a make at all
	sends      []ast.Node
	recvs      []ast.Node
	multiSend  bool // a send may execute more than once per make
	deferRecv  bool // a receive inside a deferred function literal
	isToken    bool // element type struct{} (semaphore convention)
	escapes    bool // the channel value leaves send/recv/close/len/cap/range positions
}

func (u *chanUse) recordDef(c int64, isMake, constCap bool) {
	switch {
	case !isMake:
		u.otherDef = true
	case !constCap:
		// Still a make — fine for the semaphore proof, which needs
		// only the pairing discipline, but the bounded-send proof
		// cannot count sends against an unknown capacity.
		u.capUnknown = true
	case u.minCap < 0 || c < u.minCap:
		u.minCap = c
	}
}

// scanChanProofs runs once per package, before summarization, and
// proves two channel disciplines that are invisible statement by
// statement:
//
//   - bounded send: every definition of the channel is
//     make(chan T, N) with constant N, there are at most N send
//     statements, none of them can execute twice per channel (no loop
//     or re-callable literal above them), and the channel never
//     escapes — so no send can ever block. The rcserve errCh pattern.
//
//   - semaphore: a struct{}-element channel whose receives include a
//     `defer func() { <-sem }()` — the acquire/release pairing whose
//     sends block only until a peer's deferred release, bounded by
//     the channel's capacity. The forest worker-limit pattern.
//
// Send/receive nodes proven safe are recorded in boundedSend/semOps;
// scanBlockFacts consults them instead of forcing //rcvet:allow on
// ordering the flow-insensitive scan cannot see.
func (s *summarizer) scanChanProofs(files []*ast.File) {
	s.boundedSend = make(map[ast.Node]bool)
	s.semOps = make(map[ast.Node]bool)
	info := s.pkg.TypesInfo
	uses := make(map[*types.Var]*chanUse)
	order := make([]*types.Var, 0, 8)
	useOf := func(v *types.Var) *chanUse {
		u, ok := uses[v]
		if !ok {
			u = &chanUse{minCap: -1}
			if ch, isch := v.Type().Underlying().(*types.Chan); isch {
				if st, isst := ch.Elem().Underlying().(*types.Struct); isst && st.NumFields() == 0 {
					u.isToken = true
				}
			}
			uses[v] = u
			order = append(order, v)
		}
		return u
	}
	// chanLocalVar resolves an identifier to a function-local
	// channel-typed variable, or nil.
	chanLocalVar := func(id *ast.Ident) *types.Var {
		var v *types.Var
		if d, ok := info.Defs[id].(*types.Var); ok {
			v = d
		} else if u, ok := info.Uses[id].(*types.Var); ok {
			v = u
		}
		if v == nil || v.Pkg() == nil || v.Pkg().Scope().Lookup(v.Name()) == v {
			return nil
		}
		if _, ok := v.Type().Underlying().(*types.Chan); !ok {
			return nil
		}
		return v
	}
	for _, f := range files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v := chanLocalVar(id)
			if v == nil {
				return true
			}
			u := useOf(v)
			parent := ast.Node(nil)
			if len(stack) >= 2 {
				parent = stack[len(stack)-2]
			}
			switch p := parent.(type) {
			case *ast.SendStmt:
				if p.Chan == ast.Expr(id) {
					u.sends = append(u.sends, parent)
					if multiExec(stack[:len(stack)-1]) {
						u.multiSend = true
					}
					return true
				}
			case *ast.UnaryExpr:
				if p.Op == token.ARROW && p.X == ast.Expr(id) {
					u.recvs = append(u.recvs, parent)
					if inDeferredLit(stack[:len(stack)-1]) {
						u.deferRecv = true
					}
					return true
				}
			case *ast.CallExpr:
				if fid, ok := ast.Unparen(p.Fun).(*ast.Ident); ok &&
					(fid.Name == "close" || fid.Name == "len" || fid.Name == "cap") {
					for _, arg := range p.Args {
						if arg == ast.Expr(id) {
							return true
						}
					}
				}
			case *ast.RangeStmt:
				if p.X == ast.Expr(id) {
					return true // close-terminated drain
				}
			case *ast.AssignStmt:
				for i, lhs := range p.Lhs {
					if lhs != ast.Expr(id) {
						continue
					}
					var rhs ast.Expr
					if len(p.Lhs) == len(p.Rhs) {
						rhs = p.Rhs[i]
					}
					u.recordDef(makeChanCap(info, rhs))
					return true
				}
			case *ast.ValueSpec:
				for i, nm := range p.Names {
					if nm != id {
						continue
					}
					var rhs ast.Expr
					if i < len(p.Values) {
						rhs = p.Values[i]
					}
					u.recordDef(makeChanCap(info, rhs))
					return true
				}
			}
			u.escapes = true
			return true
		})
	}
	for _, v := range order {
		u := uses[v]
		if u.escapes || u.otherDef {
			continue
		}
		if u.isToken && u.deferRecv && len(u.sends) > 0 {
			for _, n := range u.sends {
				s.semOps[n] = true
			}
			for _, n := range u.recvs {
				s.semOps[n] = true
			}
			continue
		}
		if !u.capUnknown && !u.multiSend && int64(len(u.sends)) <= u.minCap {
			for _, n := range u.sends {
				s.boundedSend[n] = true
			}
		}
	}
}

// multiExec reports whether the statement at the top of the ancestor
// stack may execute more than once per enclosing function activation:
// a loop above it, or a function literal above it that is not in
// called position (go/defer/immediate invocation) — a stored or
// passed literal may be invoked any number of times.
func multiExec(stack []ast.Node) bool {
	for i, n := range stack {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncLit:
			call, ok := ast.Node(nil), false
			if i > 0 {
				call = stack[i-1]
			}
			if c, isCall := call.(*ast.CallExpr); isCall && c.Fun == n {
				ok = true
			}
			if !ok {
				return true
			}
		}
	}
	return false
}

// inDeferredLit reports whether the nearest enclosing function literal
// is the callee of a defer statement.
func inDeferredLit(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		lit, ok := stack[i].(*ast.FuncLit)
		if !ok {
			continue
		}
		if i >= 2 {
			if c, isCall := stack[i-1].(*ast.CallExpr); isCall && c.Fun == lit {
				if _, isDefer := stack[i-2].(*ast.DeferStmt); isDefer {
					return true
				}
			}
		}
		return false
	}
	return false
}

// makeChanCap classifies a channel definition's right-hand side:
// isMake reports a make(chan T, ...) expression, constCap that its
// capacity is a compile-time constant (capacity 0 for unbuffered
// makes), and c that capacity.
func makeChanCap(info *types.Info, e ast.Expr) (c int64, isMake, constCap bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return 0, false, false
	}
	fid, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fid.Name != "make" || len(call.Args) == 0 {
		return 0, false, false
	}
	if t := info.TypeOf(call); t == nil {
		return 0, false, false
	} else if _, isch := t.Underlying().(*types.Chan); !isch {
		return 0, false, false
	}
	if len(call.Args) == 1 {
		return 0, true, true
	}
	tv, ok := info.Types[call.Args[1]]
	if !ok || tv.Value == nil {
		return 0, true, false
	}
	n, exact := constant.Int64Val(tv.Value)
	if !exact {
		return 0, true, false
	}
	return n, true, true
}

// markGuardedComm marks the channel-op nodes of one select comm clause
// so the channel-op cases above skip them: the select, not the op,
// decides whether the wait is guarded.
func markGuardedComm(guarded map[ast.Node]bool, comm ast.Stmt) {
	guarded[comm] = true
	switch c := comm.(type) {
	case *ast.ExprStmt:
		if ue, ok := ast.Unparen(c.X).(*ast.UnaryExpr); ok {
			guarded[ue] = true
		}
	case *ast.AssignStmt:
		if len(c.Rhs) == 1 {
			if ue, ok := ast.Unparen(c.Rhs[0]).(*ast.UnaryExpr); ok {
				guarded[ue] = true
			}
		}
	}
}

// commRecvExpr returns the received-from expression of a select comm
// statement, or nil for sends.
func commRecvExpr(comm ast.Stmt) ast.Expr {
	var e ast.Expr
	switch c := comm.(type) {
	case *ast.ExprStmt:
		e = c.X
	case *ast.AssignStmt:
		if len(c.Rhs) != 1 {
			return nil
		}
		e = c.Rhs[0]
	default:
		return nil
	}
	if ue, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
		return ue.X
	}
	return nil
}

// --- pool / free-list facts ---

// findFreelistFields identifies the package's free-list fields: a
// pointer-slice field that some function both indexes (the pop) and
// shrinks via a reslice (s.free = s.free[:n-1]). Indexing alone (a
// live table) or appending alone (a plain collection) does not
// qualify, so subscriber lists and batch groups stay out of the set.
func findFreelistFields(info *types.Info, files []*ast.File) map[string]bool {
	indexed := make(map[string]bool)
	shrunk := make(map[string]bool)
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.IndexExpr:
				if key := ptrSliceFieldKey(info, n.X); key != "" {
					indexed[key] = true
				}
			case *ast.AssignStmt:
				if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
					return true
				}
				key := ptrSliceFieldKey(info, n.Lhs[0])
				if key == "" {
					return true
				}
				if sl, ok := ast.Unparen(n.Rhs[0]).(*ast.SliceExpr); ok && ptrSliceFieldKey(info, sl.X) == key {
					shrunk[key] = true
				}
			}
			return true
		})
	}
	out := make(map[string]bool)
	for key := range indexed {
		if shrunk[key] {
			out[key] = true
		}
	}
	return out
}

// ptrSliceFieldKey returns the field key of a selector denoting a
// pointer-slice struct field, or "".
func ptrSliceFieldKey(info *types.Info, e ast.Expr) string {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	t := info.TypeOf(sel)
	if t == nil {
		return ""
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return ""
	}
	if _, ok := sl.Elem().Underlying().(*types.Pointer); !ok {
		return ""
	}
	return fieldKeyOf(info, sel)
}

// poolEnv bundles what pool-origin recognition needs, so the
// summarizer (computing exported facts during the fixed point) and the
// poolescape analyzer (reporting diagnostics afterwards) share one
// implementation. resolve returns the best available summary for a
// call — the in-progress local one inside the summarizer, the table's
// inside the analyzer.
type poolEnv struct {
	info       *types.Info
	fset       *token.FileSet
	freeFields map[string]bool
	resolve    func(*ast.CallExpr) (*FuncSummary, *types.Func)
}

func (s *summarizer) poolEnv() *poolEnv {
	return &poolEnv{
		info:       s.pkg.TypesInfo,
		fset:       s.pkg.Fset,
		freeFields: s.freeFields,
		resolve:    s.calleeSummary,
	}
}

func (e *poolEnv) shortPos(pos token.Pos) string {
	p := e.fset.Position(pos)
	return filepath.Base(p.Filename) + ":" + strconv.Itoa(p.Line)
}

// originChain recognizes an expression that produces pooled memory —
// sync.Pool.Get (possibly type-asserted), a free-list pop, or a call
// into a function whose summary says it returns pooled memory — and
// returns the witness chain, or nil.
func (e *poolEnv) originChain(x ast.Expr) []Frame {
	x = ast.Unparen(x)
	if ta, ok := x.(*ast.TypeAssertExpr); ok {
		return e.originChain(ta.X)
	}
	if idx, ok := x.(*ast.IndexExpr); ok {
		if key := ptrSliceFieldKey(e.info, idx.X); key != "" && e.freeFields[key] {
			return []Frame{{Pos: e.shortPos(x.Pos()), Call: "pops free list " + shortFieldKey(key)}}
		}
		return nil
	}
	call, ok := x.(*ast.CallExpr)
	if !ok {
		return nil
	}
	if isPoolGet(e.info, call) {
		return []Frame{{Pos: e.shortPos(call.Pos()), Call: "sync.Pool.Get"}}
	}
	cs, fn := e.resolve(call)
	if cs == nil || cs.PoolSource == nil {
		return nil
	}
	name := "func literal"
	if fn != nil {
		name = shortFuncName(fn)
	}
	return prependFrame(Frame{Pos: e.shortPos(call.Pos()), Call: "calls " + name}, cs.PoolSource.Chain)
}

// isPoolGet / isPoolPut recognize sync.Pool's accessors.
func isPoolMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	recv := fn.Signature().Recv()
	if recv == nil {
		return false
	}
	named, ok := deref(recv.Type()).(*types.Named)
	return ok && named.Obj().Name() == "Pool"
}

func isPoolGet(info *types.Info, call *ast.CallExpr) bool { return isPoolMethod(info, call, "Get") }
func isPoolPut(info *types.Info, call *ast.CallExpr) bool { return isPoolMethod(info, call, "Put") }

// recycledArgs returns the expressions a statement hands back to a
// pool or free list: sync.Pool.Put's argument, the arguments at a
// callee's recycled parameter indices, or the values appended to a
// free-list field. Deferred puts run at function exit and recycle
// nothing mid-body.
func (e *poolEnv) recycledArgs(st ast.Stmt) []ast.Expr {
	switch st := st.(type) {
	case *ast.ExprStmt:
		call, ok := ast.Unparen(st.X).(*ast.CallExpr)
		if !ok {
			return nil
		}
		if isPoolPut(e.info, call) && len(call.Args) == 1 {
			return call.Args[:1]
		}
		cs, _ := e.resolve(call)
		if cs == nil || len(cs.PoolPuts) == 0 {
			return nil
		}
		var out []ast.Expr
		for _, i := range cs.PoolPuts {
			if i < len(call.Args) {
				out = append(out, call.Args[i])
			}
		}
		return out
	case *ast.AssignStmt:
		if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
			return nil
		}
		key := ptrSliceFieldKey(e.info, st.Lhs[0])
		if key == "" || !e.freeFields[key] {
			return nil
		}
		call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return nil
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
			return nil
		}
		return call.Args[1:]
	}
	return nil
}

// scanPoolFacts computes the exported pool facts of one function:
// PoolSource when a return statement hands out pooled memory, and
// PoolPuts for parameters the body recycles. Both compose through the
// summary table, so multi-hop accessors (get2 → get1 → Pool.Get) carry
// full chains across packages.
// poolSites are the statements scanPoolFacts needs to revisit on each
// fixed-point pass, collected in one body walk: return statements, and
// statements that could recycle a value (expression-statement calls
// and single-assign appends). Iterating these lists per pass replaces
// a full AST walk — the fact scan's cost no longer scales with pass
// count times body size.
type poolSites struct {
	rets  []*ast.ReturnStmt
	calls []ast.Stmt
}

func (s *summarizer) poolSitesFor(n *funcNode, body *ast.BlockStmt) *poolSites {
	if sites, ok := s.sites[n]; ok {
		return sites
	}
	sites := &poolSites{}
	ast.Inspect(body, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			sites.rets = append(sites.rets, nd)
		case *ast.ExprStmt:
			if _, ok := ast.Unparen(nd.X).(*ast.CallExpr); ok {
				sites.calls = append(sites.calls, nd)
			}
		case *ast.AssignStmt:
			if len(nd.Lhs) == 1 && len(nd.Rhs) == 1 {
				if call, ok := ast.Unparen(nd.Rhs[0]).(*ast.CallExpr); ok && isAppendCall(call) {
					sites.calls = append(sites.calls, nd)
				}
			}
		}
		return true
	})
	s.sites[n] = sites
	return sites
}

func (s *summarizer) scanPoolFacts(n *funcNode, sum *FuncSummary, body *ast.BlockStmt) {
	env := s.poolEnv()
	sites := s.poolSitesFor(n, body)
	vf := s.flows[n]
	if vf == nil {
		vf = buildValueFlow(s.pkg.TypesInfo, body)
		s.flows[n] = vf
	}

	// PoolSource: a return of a pooled origin or a pooled variable.
	if sum.PoolSource == nil && len(sites.rets) > 0 {
		pooled := vf.originSet(func(e ast.Expr) bool { return env.originChain(e) != nil })
		for _, ret := range sites.rets {
			for _, res := range ret.Results {
				if chain := env.returnChain(vf, res, pooled); chain != nil {
					s.setTaint(&sum.PoolSource, chain)
					break
				}
			}
			if sum.PoolSource != nil {
				break
			}
		}
	}

	// PoolPuts: a recycled argument that is one of our parameters.
	params := s.paramVars(n)
	if len(params) == 0 {
		return
	}
	for _, st := range sites.calls {
		for _, arg := range env.recycledArgs(st) {
			v := baseIdentVar(s.pkg.TypesInfo, arg)
			if v == nil || s.allowed(st.Pos()) {
				continue
			}
			for i, p := range params {
				if p == v {
					s.addPoolPut(sum, i)
				}
			}
			// Map-mediated recycle: the recycled box was looked up in
			// a map keyed by a parameter (a, ok := s.byReq[req];
			// s.free = append(s.free, a)). Recycling the box retires
			// the lease the caller holds through that key, so the put
			// is attributed to the key parameter — callers of
			// release(req) must not touch req's box afterwards.
			for _, rhs := range vf.defs[v] {
				ix, ok := ast.Unparen(rhs).(*ast.IndexExpr)
				if !ok {
					continue
				}
				if t := s.pkg.TypesInfo.TypeOf(ix.X); t == nil {
					continue
				} else if _, isMap := t.Underlying().(*types.Map); !isMap {
					continue
				}
				kv := baseIdentVar(s.pkg.TypesInfo, ix.Index)
				if kv == nil {
					continue
				}
				for i, p := range params {
					if p == kv {
						s.addPoolPut(sum, i)
					}
				}
			}
		}
	}
}

// returnChain resolves the witness chain of a returned pooled value:
// either the expression is an origin itself, or it is (an alias of) a
// pooled variable, in which case the chain starts at one of the
// variable's origin definitions.
func (e *poolEnv) returnChain(vf *valueFlow, x ast.Expr, pooled map[*types.Var]bool) []Frame {
	if chain := e.originChain(x); chain != nil {
		return chain
	}
	v := baseIdentVar(e.info, ast.Unparen(x))
	if v == nil || !pooled[v] {
		return nil
	}
	return prependFrame(Frame{Pos: e.shortPos(x.Pos()), Call: "returns pooled " + v.Name()},
		e.varOriginChain(vf, v, make(map[*types.Var]bool)))
}

// varOriginChain finds the first origin chain reachable from a pooled
// variable's definitions, in source order.
func (e *poolEnv) varOriginChain(vf *valueFlow, v *types.Var, seen map[*types.Var]bool) []Frame {
	if seen[v] {
		return nil
	}
	seen[v] = true
	for _, rhs := range vf.defs[v] {
		if chain := e.originChain(rhs); chain != nil {
			return chain
		}
	}
	for _, rhs := range vf.defs[v] {
		if w := baseIdentVar(e.info, ast.Unparen(rhs)); w != nil && w != v {
			if chain := e.varOriginChain(vf, w, seen); chain != nil {
				return chain
			}
		}
	}
	return nil
}

// paramVars returns the declared parameter variables of a node's
// function, in order (nil for function literals — their parameters are
// not callable cross-package by name, so no put facts are exported).
func (s *summarizer) paramVars(n *funcNode) []*types.Var {
	if n.Fn == nil {
		return nil
	}
	sig := n.Fn.Signature()
	params := make([]*types.Var, 0, sig.Params().Len())
	for i := 0; i < sig.Params().Len(); i++ {
		params = append(params, sig.Params().At(i))
	}
	return params
}

func (s *summarizer) addPoolPut(sum *FuncSummary, idx int) {
	for _, have := range sum.PoolPuts {
		if have == idx {
			return
		}
	}
	sum.PoolPuts = append(sum.PoolPuts, idx)
	sort.Ints(sum.PoolPuts)
	s.changed = true
}

// calleeSummary resolves a call's best available summary: the local
// in-progress one during the fixed point, else the table's (sidecar or
// intrinsic default). The second result is the callee when it is a
// named function.
func (s *summarizer) calleeSummary(call *ast.CallExpr) (*FuncSummary, *types.Func) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		if node := s.graph.byLit[lit]; node != nil {
			return s.local[node], nil
		}
		return nil, nil
	}
	fn := calleeFunc(s.pkg.TypesInfo, call)
	if fn == nil {
		return nil, nil
	}
	if node := s.graph.Resolve(fn); node != nil {
		return s.local[node], fn
	}
	return s.table.ResolveFunc(fn), fn
}
