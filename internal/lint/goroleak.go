package lint

import (
	"go/ast"
	"go/token"
)

// GoroLeak requires every goroutine launched in non-test code to be
// joinable: a join signal must be reachable from the spawned function's
// body. Accepted signals, composed transitively through the summaries:
//
//   - sync.WaitGroup Done/Wait (the repo's dominant idiom:
//     `defer wg.Done()` in the body, Wait in the owner);
//   - any channel operation — send, receive, range — including
//     receiving from ctx.Done() or a done channel;
//   - a select statement (which always communicates).
//
// A goroutine with none of these can outlive its owner: in the paper's
// deployment model the client library lives inside the fabric
// controller host, where a leaked goroutine is a leaked OS resource
// that survives model reloads for the life of the process. This is a
// reachability heuristic, not a liveness proof — a channel op on the
// wrong channel satisfies it — but it catches the common failure of a
// fire-and-forget `go func(){ work() }()` with no join at all.
// Deliberate daemons take //rcvet:allow(reason) on the go statement.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc: "require every go statement's body to reach a join signal " +
		"(WaitGroup Done/Wait, channel op, or select)",
	Run: runGoroLeak,
}

func runGoroLeak(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(pass, gs)
			return true
		})
	}
	return nil
}

func checkGoStmt(pass *Pass, gs *ast.GoStmt) {
	var sum *FuncSummary
	var what string
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		sum = pass.Summaries.Lookup(litKeyAt(pass.Fset, pass.Pkg.Path(), fun))
		what = "goroutine literal"
	default:
		fn := calleeFunc(pass.TypesInfo, gs.Call)
		if fn == nil {
			pass.Report(gs.Pos(),
				"goroutine spawned through a function value: rcvet cannot prove it is ever "+
					"joined; spawn a named function or literal, or annotate with //rcvet:allow(reason)")
			return
		}
		sum = pass.Summaries.ResolveFunc(fn)
		what = "goroutine " + shortFuncName(fn)
	}
	if sum == nil || !sum.JoinSignal {
		pass.Reportf(gs.Pos(),
			"%s has no reachable join signal (WaitGroup Done/Wait, channel op, select, or "+
				"ctx.Done): it can outlive its owner; join it, or annotate with //rcvet:allow(reason)",
			what)
	}
}

// litKeyAt is litKey without a *Package: the summary key of a function
// literal, derivable from any Pass.
func litKeyAt(fset *token.FileSet, pkgPath string, lit *ast.FuncLit) string {
	return litKeyPos(fset, pkgPath, lit.Pos())
}
