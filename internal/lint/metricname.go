package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MetricName requires metric names and label keys passed to
// internal/obs registration calls (Registry.Counter, Gauge, GaugeFunc,
// Histogram) to be compile-time constants.
//
// Metric identity is the merge key everywhere downstream: sweep workers
// gather per-run registries and obs.MergeFamilies folds them by family
// name, dashboards and BENCH_*.json trackers key on the exposition
// name, and the registry panics at runtime on a family re-registered
// with a different kind. A name built at call time (fmt.Sprintf, a
// variable) can silently mint a new family per call site or per run,
// which merges with nothing and explodes cardinality. Dynamic label
// *values* are fine — that is what labels are for; only the name and
// the label keys must be constant.
//
// Calls that splat a prebuilt label slice (labels...) are not checked
// here: the slice's construction site is responsible (the sim sweep
// builds its policy/run label sets from constant keys).
var MetricName = &Analyzer{
	Name: "metricname",
	Doc: "require constant metric names and label keys in obs registration " +
		"calls so families merge across runs (obs.MergeFamilies) and stay " +
		"stable for dashboards",
	Run: runMetricName,
}

// obsRegistrationLabelStart maps Registry method names to the index of
// their first variadic label argument (... key, value pairs).
var obsRegistrationLabelStart = map[string]int{
	"Counter":   2, // (name, help, labels...)
	"Gauge":     2, // (name, help, labels...)
	"GaugeFunc": 3, // (name, help, fn, labels...)
	"Histogram": 3, // (name, help, bounds, labels...)
}

func runMetricName(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || !isObsRegistryMethod(fn) {
				return true
			}
			labelStart, ok := obsRegistrationLabelStart[fn.Name()]
			if !ok {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			if !isConstString(pass.TypesInfo, call.Args[0]) {
				pass.Reportf(call.Args[0].Pos(),
					"metric name passed to obs.Registry.%s is not a compile-time constant: "+
						"dynamic names mint unmergeable families (obs.MergeFamilies keys on the "+
						"name); use a const, or annotate with //rcvet:allow(reason)", fn.Name())
			}
			if call.Ellipsis.IsValid() {
				return true // splatted label slice: checked at its construction site
			}
			for i := labelStart; i < len(call.Args); i += 2 {
				if !isConstString(pass.TypesInfo, call.Args[i]) {
					pass.Reportf(call.Args[i].Pos(),
						"label key passed to obs.Registry.%s is not a compile-time constant: "+
							"dynamic keys fork the label schema within a family; use a const "+
							"(dynamic label values are fine), or annotate with //rcvet:allow(reason)",
						fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

// isObsRegistryMethod reports whether fn is a method on
// internal/obs.Registry.
func isObsRegistryMethod(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	if p := fn.Pkg().Path(); p != "internal/obs" && !strings.HasSuffix(p, "/internal/obs") {
		return false
	}
	recv := fn.Signature().Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}

// isConstString reports whether the expression has a constant value
// (string literals, consts, and constant concatenations).
func isConstString(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
