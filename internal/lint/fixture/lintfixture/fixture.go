// Package lintfixture is cross-package raw material for the rcvet
// golden tests: small functions whose interprocedural facts (clock
// reads, global rand draws, allocations, lock acquisitions, I/O,
// join signals) the testdata packages observe through the summary
// table. Each golden exercises real cross-package composition — the
// analyzer never sees this package's syntax, only its exported
// summaries — so these functions pin the sidecar format and the
// chain rendering at the same time.
//
// The package itself must stay clean under the full rcvet suite: it
// contributes single facts (for example, exactly one lock-order edge)
// and the testdata packages complete the violations.
package lintfixture

import (
	"context"
	"fmt"
	"math/rand/v2"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"resourcecentral/internal/store"
)

// Stamp reads the wall clock two hops down (Stamp -> now -> time.Now);
// determinism goldens want the full chain in the diagnostic.
func Stamp() time.Time { return now() }

func now() time.Time { return time.Now() }

// Roll draws from the global process-seeded source two hops down.
func Roll() int { return draw() }

func draw() int { return rand.IntN(6) }

// Pure is deterministic and allocation-free: the must-not-flag control
// for determinism and allocfree composition.
func Pure(x int) int { return x*x + 1 }

// Describe allocates two hops down (Describe -> format -> fmt.Sprintf);
// allocfree goldens want the chain.
func Describe(x int) string { return format(x) }

func format(x int) string { return fmt.Sprintf("x=%d", x) }

// MuA and MuB are package-level mutexes shared with the lockorder
// golden. NestBA contributes the single edge MuB -> MuA; the testdata
// package acquires MuA -> MuB, completing a cycle whose
// lexicographically-smallest edge it owns, so the diagnostic is
// reported there (and exactly once).
var (
	MuA sync.Mutex
	MuB sync.Mutex
)

// NestBA acquires MuB then MuA: one half of a lock-order cycle.
func NestBA() {
	MuB.Lock()
	MuA.Lock()
	MuA.Unlock()
	MuB.Unlock()
}

// TouchStore reaches a blocking store call; lockscope goldens call it
// under a lock to exercise the transitive Blocking fact.
func TouchStore(s *store.Store) store.Blob {
	b, err := s.Get("model/lifetime")
	if err != nil {
		return store.Blob{}
	}
	return b
}

// WriteState performs file I/O and returns its error; errflow goldens
// discard it to exercise the transitive IO fact.
func WriteState(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// Joined blocks on a channel — a join signal goroleak accepts
// transitively.
func Joined(done <-chan struct{}) { <-done }

var spins int

// Forever never reaches a join signal: goroleak's transitive positive.
func Forever() {
	for {
		spins++
	}
}

// Stats carries a field that is only ever accessed atomically, two
// hops down (Bump -> bump -> atomic.AddUint64). The atomicfield
// goldens read it plainly from another package to exercise the
// transitive AtomicFields fact.
type Stats struct{ Hits uint64 }

// Bump increments the hit count atomically.
func (s *Stats) Bump() { s.bump() }

func (s *Stats) bump() { atomic.AddUint64(&s.Hits, 1) }

// Box is pooled scratch memory; GetBox/PutBox are two-hop wrappers
// around the pool, so the poolescape goldens observe PoolSource and
// PoolPuts facts across the package boundary rather than seeing
// sync.Pool syntax.
type Box struct{ Buf []byte }

var bufPool = sync.Pool{New: func() any { return new(Box) }}

// GetBox leases a Box from the pool (PoolSource, two hops).
func GetBox() *Box { return getBox() }

func getBox() *Box { return bufPool.Get().(*Box) }

// PutBox returns a Box to the pool (PoolPuts parameter 0, two hops).
func PutBox(b *Box) { putBox(b) }

func putBox(b *Box) { bufPool.Put(b) }

// BlockForever blocks on a data channel two hops down with no
// cancellation path: ctxflow's transitive positive.
func BlockForever(ch chan int) { recvLoop(ch) }

func recvLoop(ch chan int) { <-ch }

// AwaitDone blocks but consumes ctx.Done: ctxflow's transitive
// negative control.
func AwaitDone(ctx context.Context, ch chan int) {
	select {
	case <-ctx.Done():
	case <-ch:
	}
}

// OpenScratch leases a temp file two hops down (OpenScratch ->
// openScratch2 -> os.CreateTemp). Typestate goldens observe the
// Acquires fact across the package boundary: the caller owes a Close
// even though no os call is visible in its own syntax.
func OpenScratch() (*os.File, error) { return openScratch2() }

func openScratch2() (*os.File, error) { return os.CreateTemp("", "rcvet-scratch-*") }

// CloseScratch discharges the obligation (Releases parameter 0, two
// hops): handing the file here is as good as closing it locally.
func CloseScratch(f *os.File) error { return closeScratch2(f) }

func closeScratch2(f *os.File) error { return f.Close() }

// DropScratch only borrows the file — it inspects it and returns
// without closing, so it earns no Releases fact and the caller stays
// obligated.
func DropScratch(f *os.File) string { return f.Name() }
