package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the intraprocedural value-flow layer under the
// concurrency analyzers (atomicfield, poolescape, ctxflow): def-use
// chains over one function body's typed AST. It deliberately stays
// flow-insensitive at the variable level — a variable's origin set is
// the union of every right-hand side ever assigned to it — and
// statement-order-sensitive only where the analyzers need it (use
// after Put). That is cheap (one walk per body), deterministic, and
// conservative in the direction each client wants: poolescape only
// *adds* pooled origins, never loses them to a branch.
//
// Cross-function flow is not handled here. The summary engine
// (summary.go) exports per-function facts — "returns pooled memory",
// "recycles parameter i", "accesses field F atomically" — and the
// analyzers compose them through the SummaryTable, so a value that
// crosses a call boundary is tracked by facts, not by chasing syntax
// into the callee.

// valueFlow holds the def-use chains of one function body.
type valueFlow struct {
	info *types.Info
	// defs maps each local variable to every expression assigned to it:
	// initializers, plain assignments, and range/type-switch bindings.
	defs map[*types.Var][]ast.Expr
}

// buildValueFlow walks one body (cutting at nested function literals,
// which are separate summary nodes) and records every definition.
func buildValueFlow(info *types.Info, body *ast.BlockStmt) *valueFlow {
	vf := &valueFlow{info: info, defs: make(map[*types.Var][]ast.Expr)}
	if body == nil {
		return vf
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			vf.recordAssign(n)
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if v := vf.localVar(name); v != nil && i < len(n.Values) {
					vf.defs[v] = append(vf.defs[v], n.Values[i])
				}
			}
		}
		return true
	})
	return vf
}

// recordAssign records one assignment's variable definitions. A
// multi-value RHS (x, ok := f()) defines every LHS variable from the
// same call expression.
func (vf *valueFlow) recordAssign(as *ast.AssignStmt) {
	if len(as.Lhs) == len(as.Rhs) {
		for i, lhs := range as.Lhs {
			if v := vf.lhsVar(lhs); v != nil {
				vf.defs[v] = append(vf.defs[v], as.Rhs[i])
			}
		}
		return
	}
	if len(as.Rhs) == 1 {
		for _, lhs := range as.Lhs {
			if v := vf.lhsVar(lhs); v != nil {
				vf.defs[v] = append(vf.defs[v], as.Rhs[0])
			}
		}
	}
}

// lhsVar resolves an assignment target to the local variable it
// defines (nil for blank, fields, and indexed stores).
func (vf *valueFlow) lhsVar(lhs ast.Expr) *types.Var {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return vf.localVar(id)
}

// localVar resolves an identifier to the *types.Var it defines or
// uses, or nil.
func (vf *valueFlow) localVar(id *ast.Ident) *types.Var {
	if v, ok := vf.info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := vf.info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// baseIdentVar strips an expression down to the variable at its base:
// parens, pointer derefs, address-of, field selections, indexing, and
// type assertions all keep the base. `&a.req`, `a.vm.Name`, and
// `boxes[i]` all resolve to a / boxes. Returns nil when the base is
// not a simple variable (a call, a literal, a package selector).
func baseIdentVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			// A package-qualified name (pkg.Var) is not a local base.
			if _, ok := info.Uses[x.Sel].(*types.Var); !ok {
				return nil
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok {
				return v
			}
			if v, ok := info.Defs[x].(*types.Var); ok {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// originSet computes, by fixed point over the def chains, the set of
// variables whose value may originate from an expression isOrigin
// accepts. Copies propagate through plain variable-to-variable
// assignments, parens, type assertions, and address-of — the aliasing
// forms that keep a pooled box reachable — but not through field or
// index *reads*, which copy a value out of the box.
func (vf *valueFlow) originSet(isOrigin func(ast.Expr) bool) map[*types.Var]bool {
	tainted := make(map[*types.Var]bool)
	for changed := true; changed; {
		changed = false
		for v, rhss := range vf.defs {
			if tainted[v] {
				continue
			}
			for _, rhs := range rhss {
				if vf.exprTainted(rhs, tainted, isOrigin) {
					tainted[v] = true
					changed = true
					break
				}
			}
		}
	}
	return tainted
}

// exprTainted reports whether one expression produces a value from an
// origin or from an already-tainted variable.
func (vf *valueFlow) exprTainted(e ast.Expr, tainted map[*types.Var]bool, isOrigin func(ast.Expr) bool) bool {
	e = ast.Unparen(e)
	if isOrigin(e) {
		return true
	}
	switch x := e.(type) {
	case *ast.Ident:
		if v, ok := vf.info.Uses[x].(*types.Var); ok {
			return tainted[v]
		}
	case *ast.TypeAssertExpr:
		return vf.exprTainted(x.X, tainted, isOrigin)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return vf.exprTainted(x.X, tainted, isOrigin)
		}
	}
	return false
}

// aliasesTainted reports whether an expression keeps a tainted box
// reachable when stored: the expression is a tainted variable itself,
// or an address into one (&v, &v.field, &v.elems[i]). A plain field or
// index read (v.field) copies the value and does not alias.
func aliasesTainted(info *types.Info, e ast.Expr, tainted map[*types.Var]bool) bool {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			return tainted[v]
		}
	case *ast.TypeAssertExpr:
		return aliasesTainted(info, x.X, tainted)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if v := baseIdentVar(info, x.X); v != nil {
				return tainted[v]
			}
		}
	case *ast.SelectorExpr, *ast.IndexExpr:
		// Reading a pointer-typed field out of the box hands out memory
		// the recycler may reuse only if the field points back into the
		// box; that cannot be decided statically, so only pointer-typed
		// reads whose base is tainted count when the read's type is a
		// pointer into the same struct — too rare to model. Value reads
		// are safe copies.
		return false
	}
	return false
}
