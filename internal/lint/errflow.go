package lint

import (
	"go/ast"
	"strings"
)

// ErrFlow flags ignored error returns from I/O calls — the errcheck
// subset that matters for this repo's durability paths. A statement
// that discards an error (`_ = call(...)`, a bare expression statement,
// or `defer call()`) is flagged when the callee performs I/O:
//
//   - directly, per the stdlib intrinsic table (os, io, bufio, net,
//     net/http, encoding/json Encode/Decode, ...);
//   - via internal/store, which models the paper's remote
//     Azure-storage tier — its in-memory implementation cannot fail
//     today, but callers must not bake that in;
//   - transitively, when the callee's summary says I/O is reachable
//     from it (a pipeline helper that wraps os.WriteFile).
//
// Drivers scope this analyzer to ErrFlowPackagePatterns: the offline
// pipeline (artifacts silently missing poison later stages), the store,
// the trace spill/codec paths (a dropped write error leaves a truncated
// trace file that only fails the next run), the server (a dropped write
// error turns a failed response into a hung client), and the load
// generator (a swallowed response error would overstate measured
// throughput). Pure in-memory error returns elsewhere stay unflagged.
// Deliberate discards take //rcvet:allow(reason).
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc: "flag ignored error returns from I/O calls (direct, via store, or " +
		"transitive through summaries) in pipeline/store/server code",
	Run: runErrFlow,
}

// ErrFlowPackagePatterns lists the import-path suffixes errflow runs on
// (matched like SeededPackagePatterns).
var ErrFlowPackagePatterns = []string{
	"internal/pipeline",
	"internal/store",
	"internal/trace",
	"cmd/rcserve",
	"cmd/rcload",
}

// IsErrFlowPackage reports whether errflow applies to an import path.
func IsErrFlowPackage(path string) bool {
	for _, pat := range ErrFlowPackagePatterns {
		if path == pat || strings.HasSuffix(path, "/"+pat) {
			return true
		}
	}
	return false
}

func runErrFlow(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(ast.Stmt)
			if !ok {
				return true
			}
			call := ignoredErrorCall(pass.TypesInfo, st)
			if call == nil {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			pkg := ""
			if fn.Pkg() != nil {
				pkg = fn.Pkg().Path()
			}
			switch {
			case ioIntrinsic(fn, pkg, fn.Name()):
				pass.Reportf(call.Pos(),
					"error from %s ignored: an I/O failure here is silently dropped; "+
						"handle or log it, or annotate with //rcvet:allow(reason)", shortFuncName(fn))
			case StoreIO(pkg) && pkg != pass.Pkg.Path():
				pass.Reportf(call.Pos(),
					"error from %s ignored: store calls model remote blob I/O and their "+
						"errors must be handled, or annotate with //rcvet:allow(reason)", shortFuncName(fn))
			default:
				if sum := pass.Summaries.ResolveFunc(fn); sum.IO {
					pass.Reportf(call.Pos(),
						"error from %s ignored: I/O is reachable from this call and its failure "+
							"is silently dropped; handle or log it, or annotate with //rcvet:allow(reason)",
						shortFuncName(fn))
				}
			}
			return true
		})
	}
	return nil
}
