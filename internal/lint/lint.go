// Package lint is a self-contained static-analysis framework plus the
// rcvet analyzer suite that enforces this repository's determinism,
// locking, and metrics invariants.
//
// The reproduction's evaluation (paper Section 6.2) and its seed
// equivalence tests depend on byte-identical, seed-deterministic
// results: no wall-clock or global-rand reads in seeded code, no
// unordered map iteration feeding floats, slices, or channels, lock
// discipline around the sharded caches, and constant metric names so
// obs.MergeFamilies merges are well defined. Those invariants used to be
// enforced only by convention and after-the-fact tests; this package
// turns them into build-time checks.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// API (Analyzer, Pass, Diagnostic) so the analyzers could be ported to a
// stock multichecker, but it is implemented entirely on the standard
// library: packages are loaded with `go list -export` and type-checked
// with go/types against the build cache's export data (see load.go), so
// the suite needs no third-party modules.
//
// Deliberate violations are annotated in source with
//
//	//rcvet:allow(reason)
//
// on the offending line or the line above it; the framework suppresses
// diagnostics at annotated positions and the reason is kept next to the
// code it excuses.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one rcvet check. It intentionally has the same
// shape as golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the rcvet
	// command line.
	Name string
	// Doc is the one-paragraph description shown by `rcvet -list`.
	Doc string
	// Run executes the check over one package, reporting findings via
	// pass.Report / pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Summaries holds the interprocedural function summaries for this
	// package and (when the driver loaded sidecars or summarized
	// dependencies) its deps. Never nil inside an analyzer Run.
	Summaries *SummaryTable

	// report receives diagnostics that survived allow-comment
	// suppression.
	report func(Diagnostic)
	// allow maps "filename:line" to the allow reason for lines carrying
	// (or directly below) an //rcvet:allow(reason) comment.
	allow map[string]string
	// suppressed counts diagnostics dropped by allow comments.
	suppressed int
}

// Diagnostic is one finding at a source position. Witness, when
// non-nil, is the interprocedural chain that led the analyzer here
// (e.g. the call path from a goroutine to its blocking channel op);
// it is already rendered into Message for humans and carried
// structurally for -json consumers.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	Witness  []Frame
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// jsonDiagnostic is the machine-readable -json form of one finding.
type jsonDiagnostic struct {
	File     string  `json:"file"`
	Line     int     `json:"line"`
	Column   int     `json:"column"`
	Analyzer string  `json:"analyzer"`
	Message  string  `json:"message"`
	Witness  []Frame `json:"witness,omitempty"`
}

// EncodeDiagnosticsJSON renders diagnostics as a JSON array of
// {file, line, column, analyzer, message, witness} objects — the
// machine-readable format behind `rcvet -json`, stable in the same
// order SortDiagnostics produces. An empty slice encodes as [].
func EncodeDiagnosticsJSON(diags []Diagnostic) ([]byte, error) {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
			Witness:  d.Witness,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// allowRe matches the escape-hatch comment. The reason is mandatory:
// an annotation that does not say why it is safe is not an annotation.
var allowRe = regexp.MustCompile(`//rcvet:allow\(([^)]+)\)`)

// buildAllowIndex records, for every file, the lines on which an
// //rcvet:allow(reason) comment suppresses diagnostics: the comment's
// own line and, for a comment alone on its line, the line below it.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) map[string]string {
	idx := make(map[string]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				idx[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = m[1]
				idx[fmt.Sprintf("%s:%d", pos.Filename, pos.Line+1)] = m[1]
			}
		}
	}
	return idx
}

// Report emits a diagnostic unless an //rcvet:allow comment covers its
// line.
func (p *Pass) Report(pos token.Pos, msg string) {
	position := p.Fset.Position(pos)
	if _, ok := p.allow[fmt.Sprintf("%s:%d", position.Filename, position.Line)]; ok {
		p.suppressed++
		return
	}
	p.report(Diagnostic{Analyzer: p.Analyzer.Name, Pos: position, Message: msg})
}

// Reportf is Report with formatting.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// ReportWitness is Reportf carrying the interprocedural witness chain
// structurally (for -json output) as well as in the message text.
func (p *Pass) ReportWitness(pos token.Pos, witness []Frame, format string, args ...any) {
	position := p.Fset.Position(pos)
	if _, ok := p.allow[fmt.Sprintf("%s:%d", position.Filename, position.Line)]; ok {
		p.suppressed++
		return
	}
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
		Witness:  witness,
	})
}

// RunAnalyzers executes the given analyzers over one loaded package and
// returns the surviving diagnostics in a stable order (file, line,
// column, analyzer name, message). Test files (*_test.go) are excluded:
// tests are allowed to read clocks and drive maps however they like.
//
// table carries interprocedural summaries. Passing nil gets a fresh
// table (cross-package callees fall back to conservative defaults);
// drivers that loaded sidecars or summarized dependencies pass their
// shared table. The package itself is summarized here if it has not
// been already.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer, table *SummaryTable) ([]Diagnostic, error) {
	if table == nil {
		table = NewSummaryTable()
	}
	table.Summarize(pkg)
	files := nonTestFiles(pkg)
	allow := buildAllowIndex(pkg.Fset, files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Summaries: table,
			allow:     allow,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	SortDiagnostics(diags)
	return diags, nil
}

// SortDiagnostics orders findings by file, line, column, analyzer, and
// message so rcvet output is byte-stable across runs — the lint gate
// itself honors the invariant it enforces.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// All returns the full rcvet suite in the order findings are reported.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism, MapOrder, LockScope, MetricName,
		LockOrder, AllocFree, GoroLeak, ErrFlow,
		AtomicField, PoolEscape, CtxFlow,
		Typestate, NilFlow,
	}
}

// ByName returns the named analyzers, or an error naming the first
// unknown one.
func ByName(names []string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// SeededPackagePatterns lists the import-path suffixes of the packages
// whose results must be byte-identical for a fixed seed: the synthetic
// trace generator, the simulator and its cluster model, the
// characterization pass, the offline pipeline, feature-data generation,
// the FFT period detector, the statistics helpers, and the ML stack.
// The determinism analyzer runs only on these (plus anything a driver
// adds); wall-clock and global-rand reads elsewhere are legitimate.
var SeededPackagePatterns = []string{
	"internal/synth",
	"internal/sim",
	"internal/cluster",
	"internal/charz",
	"internal/pipeline",
	"internal/featuredata",
	"internal/fftperiod",
	"internal/stats",
	"internal/ml/",
}

// IsSeededPackage reports whether the import path belongs to the seeded
// (deterministic-by-contract) part of the tree. A trailing slash in a
// pattern matches a whole subtree; otherwise the pattern must match a
// full trailing path component.
func IsSeededPackage(path string) bool {
	for _, pat := range SeededPackagePatterns {
		if strings.HasSuffix(pat, "/") {
			if strings.Contains(path+"/", pat) {
				return true
			}
			continue
		}
		if path == pat || strings.HasSuffix(path, "/"+pat) {
			return true
		}
	}
	return false
}
