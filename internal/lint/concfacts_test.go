package lint_test

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"resourcecentral/internal/lint"
)

// TestConcurrencyFacts pins the value-flow fact kinds the atomicfield,
// poolescape, and ctxflow goldens compose through the sidecars: the
// facts must exist on the fixture's two-hop wrappers with chains that
// name the innermost access.
func TestConcurrencyFacts(t *testing.T) {
	table, _ := newFixtureTable(t)

	bump := table.Lookup("(*" + fixturePath + ".Stats).Bump")
	if bump == nil || len(bump.AtomicFields) != 1 {
		t.Fatalf("Bump = %+v, want one AtomicFields fact", bump)
	}
	if f := bump.AtomicFields[0]; f.Field != fixturePath+".Stats.Hits" || len(f.Chain) < 2 {
		t.Fatalf("Bump atomic fact = %+v, want Stats.Hits with a two-hop chain", f)
	}

	getBox := table.Lookup(fixturePath + ".GetBox")
	if getBox == nil || getBox.PoolSource == nil {
		t.Fatalf("GetBox = %+v, want PoolSource", getBox)
	}
	if chain := getBox.PoolSource.String(); !strings.Contains(chain, "sync.Pool.Get") {
		t.Fatalf("GetBox chain %q does not name sync.Pool.Get", chain)
	}

	putBox := table.Lookup(fixturePath + ".PutBox")
	if putBox == nil || len(putBox.PoolPuts) != 1 || putBox.PoolPuts[0] != 0 {
		t.Fatalf("PutBox = %+v, want PoolPuts [0]", putBox)
	}

	block := table.Lookup(fixturePath + ".BlockForever")
	if block == nil || block.Blocks == nil || block.Cancel {
		t.Fatalf("BlockForever = %+v, want Blocks without Cancel", block)
	}
	if chain := block.Blocks.String(); !strings.Contains(chain, "channel receive") {
		t.Fatalf("BlockForever chain %q does not name the receive", chain)
	}

	await := table.Lookup(fixturePath + ".AwaitDone")
	if await == nil || !await.Cancel || await.Blocks != nil {
		t.Fatalf("AwaitDone = %+v, want Cancel without Blocks", await)
	}
}

// TestAllAtomicFields pins the table-wide accessor: one fact per field
// key, deterministically ordered, shortest witness preferred.
func TestAllAtomicFields(t *testing.T) {
	table, _ := newFixtureTable(t)
	facts := table.AllAtomicFields()
	var hits *lint.FieldFact
	for i := range facts {
		if i > 0 && facts[i-1].Field >= facts[i].Field {
			t.Fatalf("facts not strictly sorted: %q before %q", facts[i-1].Field, facts[i].Field)
		}
		if facts[i].Field == fixturePath+".Stats.Hits" {
			hits = &facts[i]
		}
	}
	if hits == nil {
		t.Fatalf("no fact for Stats.Hits in %d facts", len(facts))
	}
	// Both Bump (2 hops) and bump (1 hop) carry the fact; the direct
	// access must win so diagnostics point at the real atomic site.
	if len(hits.Chain) != 1 || !strings.Contains(hits.Chain[0].Call, "atomic access") {
		t.Fatalf("Stats.Hits witness = %+v, want the one-frame direct access", hits.Chain)
	}
}

// TestSidecarSchemaMismatch: a sidecar written by an older rcvet (or a
// future one) silently invalidates — its facts predate the current
// fact kinds, so trusting it would hide diagnostics.
func TestSidecarSchemaMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.json")
	stale := `{"schema":1,"path":"example.com/p","funcs":{}}`
	if err := os.WriteFile(path, []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}
	if ps, err := lint.ReadSidecar(path); ps != nil || err != nil {
		t.Fatalf("stale-schema sidecar: got %+v, %v; want nil, nil", ps, err)
	}
}

// TestEncodeDiagnosticsJSON pins the -json wire format CI consumes:
// file/line/column/analyzer/message plus the structural witness chain.
func TestEncodeDiagnosticsJSON(t *testing.T) {
	diags := []lint.Diagnostic{{
		Analyzer: "ctxflow",
		Pos:      token.Position{Filename: "serve.go", Line: 7, Column: 2},
		Message:  "goroutine literal blocks",
		Witness: []lint.Frame{
			{Pos: "serve.go:9", Call: "calls serve.loop"},
			{Pos: "loop.go:12", Call: "channel receive"},
		},
	}}
	data, err := lint.EncodeDiagnosticsJSON(diags)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []struct {
		File     string       `json:"file"`
		Line     int          `json:"line"`
		Column   int          `json:"column"`
		Analyzer string       `json:"analyzer"`
		Message  string       `json:"message"`
		Witness  []lint.Frame `json:"witness"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("invalid JSON %s: %v", data, err)
	}
	if len(decoded) != 1 {
		t.Fatalf("decoded %d diagnostics, want 1", len(decoded))
	}
	d := decoded[0]
	if d.File != "serve.go" || d.Line != 7 || d.Column != 2 || d.Analyzer != "ctxflow" {
		t.Fatalf("position/analyzer mismatch: %+v", d)
	}
	if len(d.Witness) != 2 || d.Witness[1].Call != "channel receive" {
		t.Fatalf("witness chain mismatch: %+v", d.Witness)
	}
	// Zero findings must encode as [], not null: CI scripts index it.
	empty, err := lint.EncodeDiagnosticsJSON(nil)
	if err != nil || strings.TrimSpace(string(empty)) != "[]" {
		t.Fatalf("empty encoding = %q, %v; want []", empty, err)
	}
}

// TestRcvetColdPassBudget is the latency gate behind `make bench-lint`:
// with RCVET_BUDGET_MS set it runs one cold whole-repo pass (the same
// work BenchmarkRcvetWholeRepo times, loading excluded) and fails if
// it exceeds the budget. Unset, it skips — plain `go test ./...` stays
// robust on loaded machines.
func TestRcvetColdPassBudget(t *testing.T) {
	env := os.Getenv("RCVET_BUDGET_MS")
	if env == "" {
		t.Skip("RCVET_BUDGET_MS not set")
	}
	budget, err := strconv.Atoi(env)
	if err != nil {
		t.Fatalf("bad RCVET_BUDGET_MS %q: %v", env, err)
	}
	pkgs, err := lint.Load("../..", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	ordered := topoSort(pkgs)
	start := time.Now()
	table := lint.NewSummaryTable()
	for _, pkg := range ordered {
		table.Summarize(pkg)
	}
	for _, pkg := range pkgs {
		diags, err := lint.RunAnalyzers(pkg, gated(pkg.Path), table)
		if err != nil {
			t.Fatal(err)
		}
		if len(diags) != 0 {
			t.Fatalf("%s: %d unexpected findings, first: %s", pkg.Path, len(diags), diags[0].Message)
		}
	}
	elapsed := time.Since(start)
	t.Logf("cold pass: %v (budget %dms)", elapsed, budget)
	if elapsed > time.Duration(budget)*time.Millisecond {
		t.Fatalf("cold rcvet pass took %v, budget %dms", elapsed, budget)
	}
}
