package lint

import (
	"go/ast"
	"go/types"
)

// Determinism flags wall-clock reads and global (process-seeded)
// randomness in code that must be a pure function of its seed.
//
// The seed-equivalence tests (sim, cluster, featuredata) prove the
// optimized paths byte-identical to the reference implementations; that
// proof only holds if nothing in a seeded package consults state outside
// the seed. Three sources are flagged:
//
//   - time.Now, and the wall-clock deltas time.Since / time.Until;
//   - package-level math/rand and math/rand/v2 functions (rand.IntN,
//     rand.Float64, rand.Shuffle, ...), which draw from the global,
//     process-seeded source. Explicitly-seeded generators
//     (rand.New(rand.NewPCG(seed, ...)) and methods on *rand.Rand) are
//     the sanctioned idiom and are not flagged;
//   - os.Getenv-style ambient reads are NOT covered: configuration is
//     visible in profiles and diffs, clocks and global rand are not.
//
// Beyond the direct (syntactic) checks, the analyzer consults the
// interprocedural summaries (summary.go): a call from a seeded package
// into a function whose summary is clock- or rand-tainted is flagged
// with the full witness chain — `time.Now()` two calls deep in another
// package no longer hides. Two deliberate exemptions:
//
//   - internal/obs is an observational sink: clock values that flow
//     into it feed metrics, never results, so taint does not propagate
//     out of obs;
//   - an //rcvet:allow at a base site clears the fact from the
//     function's exported summary, so a human-approved clock read does
//     not re-trigger in every transitive caller.
//
// Drivers run this analyzer only over the seeded packages
// (SeededPackagePatterns); a clock read in cmd/rcserve's HTTP middleware
// is fine. Deliberate uses inside seeded code take
// //rcvet:allow(reason).
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "flag wall-clock (time.Now/Since/Until) and global math/rand reads " +
		"in seeded packages, where results must be a pure function of the seed",
	Run: runDeterminism,
}

// deterministicRandFuncs are the package-level math/rand{,/v2} functions
// that only construct explicitly-seeded state and therefore stay legal
// in seeded code.
var deterministicRandFuncs = map[string]bool{
	"New":        true,
	"NewPCG":     true,
	"NewSource":  true,
	"NewChaCha8": true,
	"NewZipf":    true,
}

func runDeterminism(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			// Direct reads. Only package-level functions matter here:
			// methods on *rand.Rand or on a caller-supplied clock are
			// seeded state.
			switch fn.Pkg().Path() {
			case "time":
				if fn.Signature().Recv() == nil {
					switch fn.Name() {
					case "Now", "Since", "Until":
						pass.Reportf(call.Pos(),
							"time.%s in seeded package %s: results must depend only on the seed; "+
								"thread a timestamp through, or annotate with //rcvet:allow(reason)",
							fn.Name(), pass.Pkg.Path())
					}
				}
				return true
			case "math/rand", "math/rand/v2":
				if fn.Signature().Recv() == nil && !deterministicRandFuncs[fn.Name()] {
					pass.Reportf(call.Pos(),
						"global rand.%s in seeded package %s: draws from the process-seeded source; "+
							"use a *rand.Rand from rand.New(rand.NewPCG(seed, ...)), or annotate with //rcvet:allow(reason)",
						fn.Name(), pass.Pkg.Path())
				}
				return true
			}
			checkTransitiveDeterminism(pass, call, fn)
			return true
		})
	}
	return nil
}

// checkTransitiveDeterminism flags a call whose callee's summary says
// the wall clock or the global rand source is reachable from it. Calls
// within the package are skipped — the base site already got its own
// diagnostic there; cross-package calls carry the witness chain, since
// the tainted site is outside the file the reader is looking at.
func checkTransitiveDeterminism(pass *Pass, call *ast.CallExpr, fn *types.Func) {
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	if pkgPath == pass.Pkg.Path() || isObsPath(pkgPath) {
		return
	}
	sum := pass.Summaries.ResolveFunc(fn)
	if sum.Clock != nil {
		pass.Reportf(call.Pos(),
			"call to %s transitively reads the wall clock in seeded package %s "+
				"(chain: %s); results must depend only on the seed, or annotate with //rcvet:allow(reason)",
			shortFuncName(fn), pass.Pkg.Path(), sum.Clock)
	}
	if sum.Rand != nil {
		pass.Reportf(call.Pos(),
			"call to %s transitively draws from global rand in seeded package %s "+
				"(chain: %s); use explicitly seeded state, or annotate with //rcvet:allow(reason)",
			shortFuncName(fn), pass.Pkg.Path(), sum.Rand)
	}
}

// calleeFunc resolves a call's callee to its types.Func, or nil for
// calls through variables, built-ins, and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
