package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// This file builds the package-local call graph the summary engine
// (summary.go) runs over. Nodes are the functions and methods declared
// in one package plus every function literal (literals execute in
// contexts of their own — a goroutine body, a callback — so they are
// summarized separately and their facts only flow into an enclosing
// function when the literal is invoked on the spot). Edges are static
// calls: identifier and selector calls resolved through the type
// checker, plus immediately-invoked literals. Calls through interfaces
// and function values are not edges here; the summary engine resolves
// those against exported interface-method summaries or conservative
// defaults at composition time.

// funcNode is one function in the package-local call graph.
type funcNode struct {
	// Key identifies the function across packages: types.Func.FullName
	// for declared functions and methods, a synthesized position-based
	// key for literals.
	Key string
	// Fn is the type-checker object; nil for function literals.
	Fn *types.Func
	// Decl / Lit hold the syntax (exactly one is non-nil).
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	// Calls lists the package-local static callees, in source order.
	Calls []*funcNode

	// Tarjan bookkeeping.
	index, lowlink int
	onStack        bool
}

// Body returns the function body (nil for bodyless declarations, e.g.
// assembly-backed functions).
func (n *funcNode) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// callGraph is the package-local static call graph.
type callGraph struct {
	Pkg   *Package
	Nodes []*funcNode // deterministic order: file order, then position
	byFn  map[*types.Func]*funcNode
	byLit map[*ast.FuncLit]*funcNode
}

// litKey synthesizes a stable cross-run key for a function literal from
// its source position.
func litKey(pkg *Package, lit *ast.FuncLit) string {
	return litKeyPos(pkg.Fset, pkg.Path, lit.Pos())
}

func litKeyPos(fset *token.FileSet, pkgPath string, p token.Pos) string {
	pos := fset.Position(p)
	return fmt.Sprintf("%s.func@%s:%d:%d", pkgPath, filepath.Base(pos.Filename), pos.Line, pos.Column)
}

// buildCallGraph collects the package's functions and resolves their
// static intra-package calls. Test files are excluded by the caller
// (the graph is built over the files the analyzers see).
func buildCallGraph(pkg *Package, files []*ast.File) *callGraph {
	g := &callGraph{
		Pkg:   pkg,
		byFn:  make(map[*types.Func]*funcNode),
		byLit: make(map[*ast.FuncLit]*funcNode),
	}
	// Pass 1: nodes.
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				fn, _ := pkg.TypesInfo.Defs[n.Name].(*types.Func)
				if fn == nil {
					return true
				}
				node := &funcNode{Key: fn.FullName(), Fn: fn, Decl: n}
				g.Nodes = append(g.Nodes, node)
				g.byFn[fn] = node
			case *ast.FuncLit:
				node := &funcNode{Key: litKey(pkg, n), Lit: n}
				g.Nodes = append(g.Nodes, node)
				g.byLit[n] = node
			}
			return true
		})
	}
	// Pass 2: edges. Each node's body is walked without descending into
	// nested literals (they are their own nodes); a literal invoked on
	// the spot — (func(){...})() — contributes a regular call edge, so
	// its facts flow into the enclosing function like any callee's.
	for _, node := range g.Nodes {
		body := node.Body()
		if body == nil {
			continue
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
					if callee := g.byLit[lit]; callee != nil {
						node.Calls = append(node.Calls, callee)
					}
					return true
				}
				if fn := calleeFunc(pkg.TypesInfo, n); fn != nil {
					if callee := g.byFn[fn]; callee != nil {
						node.Calls = append(node.Calls, callee)
					}
				}
			}
			return true
		})
	}
	return g
}

// callsSelf reports whether the node has a direct self-edge (direct
// recursion), which keeps it on the summary engine's fixed-point path.
func callsSelf(n *funcNode) bool {
	for _, c := range n.Calls {
		if c == n {
			return true
		}
	}
	return false
}

// Resolve maps a call's callee to its local node, or nil when the
// callee is not declared in this package.
func (g *callGraph) Resolve(fn *types.Func) *funcNode { return g.byFn[fn] }

// SCCs returns the strongly connected components of the call graph in
// reverse topological order of the condensation: every component is
// emitted after all components it calls into, so a bottom-up summary
// pass can process the slice front to back. Mutual recursion lands two
// functions in one component; the summary engine iterates such a
// component to a fixed point.
func (g *callGraph) SCCs() [][]*funcNode {
	var (
		out   [][]*funcNode
		stack []*funcNode
		next  = 1
	)
	var strongconnect func(v *funcNode)
	strongconnect = func(v *funcNode) {
		v.index, v.lowlink = next, next
		next++
		stack = append(stack, v)
		v.onStack = true
		for _, w := range v.Calls {
			if w.index == 0 {
				strongconnect(w)
				if w.lowlink < v.lowlink {
					v.lowlink = w.lowlink
				}
			} else if w.onStack && w.index < v.lowlink {
				v.lowlink = w.index
			}
		}
		if v.lowlink == v.index {
			var scc []*funcNode
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				w.onStack = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			out = append(out, scc)
		}
	}
	for _, v := range g.Nodes {
		if v.index == 0 {
			strongconnect(v)
		}
	}
	return out
}
