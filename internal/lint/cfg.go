package lint

import (
	"go/ast"
	"go/token"
)

// This file is the control-flow layer under the flow-sensitive
// analyzers (typestate, nilflow, poolescape's use-after-put): a
// per-function CFG of basic blocks over the AST, and a small forward
// dataflow solver that iterates meet-over-paths lattices to a fixed
// point. The builder is purely syntactic — it reads no type
// information — so it can be fuzzed over arbitrary parseable bodies
// (cfg_fuzz_test.go); consumers bring go/types when their transfer
// functions need it.
//
// Two properties the consumers rely on:
//
//   - Short-circuit conditions are decomposed: `if leader && !ok {`
//     places `leader` and `ok` in separate blocks joined by True/False
//     edges, each edge carrying the condition leaf it refines on. A
//     typestate obligation conditioned on a bool result is dropped on
//     the edge where that bool is false, and a call buried in the
//     right operand is only seen on paths that reach it.
//
//   - Every simple statement of the source body is placed in exactly
//     one block, including statements after a return or terminator
//     (they land in a fresh block with no predecessor, which the
//     solver never visits). The fuzz test asserts this placement
//     property, so an analyzer re-walking blocks sees the whole
//     function.
//
// Composite statements are not themselves placed; their parts are:
// conditions as decomposed leaves, switch tags and case expressions as
// nodes of the dispatching blocks, select comm statements as the first
// node of their clause block. The one exception is *ast.RangeStmt,
// placed as the loop-head node so transfer functions can see its X and
// Key/Value bindings — consumers must walk placed nodes with
// cfgInspect, which cuts at nested *ast.BlockStmt (the range body) and
// *ast.FuncLit boundaries.

// EdgeKind classifies a CFG edge.
type EdgeKind uint8

const (
	// EdgeNext is unconditional flow: sequence, jumps, switch/select
	// dispatch (which rcvet does not refine on).
	EdgeNext EdgeKind = iota
	// EdgeTrue / EdgeFalse leave a decomposed condition leaf. Cond
	// holds the leaf expression (nil for a range loop's implicit
	// "another element" test).
	EdgeTrue
	EdgeFalse
	// EdgePanic models unwinding to the function exit: panic(...) and
	// the process/goroutine terminators (os.Exit, log.Fatal*,
	// runtime.Goexit). Obligation analyses clear state across it —
	// leak-on-panic is not a diagnostic rcvet raises.
	EdgePanic
)

// Edge is one directed CFG edge.
type Edge struct {
	To   *Block
	Kind EdgeKind
	// Cond is the condition leaf a True/False edge tests, for edge
	// refinement (nil-comparison narrowing, conditional obligations).
	Cond ast.Expr
}

// Block is one basic block: nodes that execute in sequence with no
// branching between them, then the outgoing edges.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []Edge
}

// CFG is the control-flow graph of one function body. Exit is the
// synthetic block every return, fall-off-the-end, and panic edge
// reaches; it has no nodes and no successors.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// buildCFG constructs the CFG of one function body. The builder never
// descends into nested function literals (they are separate summary
// nodes with CFGs of their own); a FuncLit inside a placed statement
// is visible to transfer functions as part of that node.
func buildCFG(body *ast.BlockStmt) *CFG {
	c := &CFG{}
	b := &cfgBuilder{cfg: c, labels: make(map[string]*Block)}
	c.Entry = b.newBlock()
	c.Exit = b.newBlock()
	b.cur = c.Entry
	b.collectLabels(body)
	b.stmtList(body.List)
	b.edge(c.Exit, EdgeNext, nil)
	return c
}

// cfgBuilder holds the in-progress build state.
type cfgBuilder struct {
	cfg *CFG
	cur *Block
	// labels maps label names to their (pre-created) target blocks, so
	// a goto can jump forward to a label not yet reached.
	labels map[string]*Block
	// scopes is the stack of enclosing breakable constructs; entries
	// with a non-nil cont are continuable (loops).
	scopes []branchScope
	// ft is the fallthrough target inside a switch case, nil elsewhere.
	ft *Block
	// pendingLabel names the label wrapping the next loop/switch/select
	// statement, so labeled break/continue resolve to it.
	pendingLabel string
}

type branchScope struct {
	label string
	brk   *Block
	cont  *Block // nil for switch/select
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) add(n ast.Node) { b.cur.Nodes = append(b.cur.Nodes, n) }

func (b *cfgBuilder) edge(to *Block, kind EdgeKind, cond ast.Expr) {
	b.cur.Succs = append(b.cur.Succs, Edge{To: to, Kind: kind, Cond: cond})
}

// jump ends the current block with an unconditional edge and continues
// in a fresh one. Statements after a return/branch land in the fresh
// block, which has no predecessors and is therefore never solved.
func (b *cfgBuilder) jump(to *Block) {
	b.edge(to, EdgeNext, nil)
	b.cur = b.newBlock()
}

// collectLabels pre-creates a block per labeled statement so forward
// gotos have a target. Function literals are cut: their labels are
// their own CFG's business.
func (b *cfgBuilder) collectLabels(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.LabeledStmt:
			if _, ok := b.labels[n.Label.Name]; !ok {
				b.labels[n.Label.Name] = b.newBlock()
			}
		}
		return true
	})
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.EmptyStmt:
		// nothing executes
	case *ast.LabeledStmt:
		target := b.labels[s.Label.Name]
		b.edge(target, EdgeNext, nil)
		b.cur = target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		then := b.newBlock()
		after := b.newBlock()
		alt := after
		if s.Else != nil {
			alt = b.newBlock()
		}
		b.cond(s.Cond, then, alt)
		b.cur = then
		b.stmtList(s.Body.List)
		b.edge(after, EdgeNext, nil)
		if s.Else != nil {
			b.cur = alt
			b.stmt(s.Else)
			b.edge(after, EdgeNext, nil)
		}
		b.cur = after
	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		b.edge(head, EdgeNext, nil)
		b.cur = head
		if s.Cond != nil {
			b.cond(s.Cond, body, after)
		} else {
			b.edge(body, EdgeNext, nil)
		}
		b.cur = body
		b.pushScope(branchScope{label: label, brk: after, cont: post})
		b.stmtList(s.Body.List)
		b.popScope()
		b.edge(post, EdgeNext, nil)
		if s.Post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.edge(head, EdgeNext, nil)
		}
		b.cur = after
	case *ast.RangeStmt:
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, EdgeNext, nil)
		b.cur = head
		b.add(s) // header only: X and the Key/Value bindings
		b.edge(body, EdgeTrue, nil)
		b.edge(after, EdgeFalse, nil)
		b.cur = body
		b.pushScope(branchScope{label: label, brk: after, cont: head})
		b.stmtList(s.Body.List)
		b.popScope()
		b.edge(head, EdgeNext, nil)
		b.cur = after
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(label, s.Body.List, func(cc *ast.CaseClause, blk *Block) {
			for _, v := range cc.List {
				blk.Nodes = append(blk.Nodes, v)
			}
		})
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(label, s.Body.List, nil)
	case *ast.SelectStmt:
		head := b.cur
		after := b.newBlock()
		b.pushScope(branchScope{label: label, brk: after})
		any := false
		for _, clause := range s.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			any = true
			blk := b.newBlock()
			head.Succs = append(head.Succs, Edge{To: blk, Kind: EdgeNext})
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edge(after, EdgeNext, nil)
		}
		b.popScope()
		if !any {
			// select{} blocks forever: no successors.
			b.cur = b.newBlock()
			return
		}
		b.cur = after
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cfg.Exit, EdgeNext, nil)
		b.cur = b.newBlock()
	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if t := b.findScope(s.Label, false); t != nil {
				b.jump(t.brk)
				return
			}
		case token.CONTINUE:
			if t := b.findScope(s.Label, true); t != nil {
				b.jump(t.cont)
				return
			}
		case token.GOTO:
			if s.Label != nil {
				if target, ok := b.labels[s.Label.Name]; ok {
					b.jump(target)
					return
				}
			}
		case token.FALLTHROUGH:
			if b.ft != nil {
				b.jump(b.ft)
				return
			}
		}
		// Malformed branch (unknown label, stray fallthrough): treat as
		// a dead end so the builder never panics on bad input.
		b.cur = b.newBlock()
	case *ast.ExprStmt:
		b.add(s)
		if isTerminatorCall(s.X) {
			b.edge(b.cfg.Exit, EdgePanic, nil)
			b.cur = b.newBlock()
		}
	default:
		// AssignStmt, DeclStmt, IncDecStmt, SendStmt, GoStmt,
		// DeferStmt: straight-line nodes. A DeferStmt is placed where
		// it registers, so deferred releases are flow-sensitive: a
		// defer reached only on some paths only discharges on them.
		b.add(s)
	}
}

// switchClauses builds the dispatch structure shared by value and type
// switches: the current block fans out to every case block (and to
// after, when there is no default), case bodies flow to after, and
// fallthrough chains to the next case in source order.
func (b *cfgBuilder) switchClauses(label string, clauses []ast.Stmt, caseExprs func(*ast.CaseClause, *Block)) {
	head := b.cur
	after := b.newBlock()
	b.pushScope(branchScope{label: label, brk: after})
	blocks := make([]*Block, 0, len(clauses))
	hasDefault := false
	for _, clause := range clauses {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		blocks = append(blocks, blk)
		head.Succs = append(head.Succs, Edge{To: blk, Kind: EdgeNext})
		if cc.List == nil {
			hasDefault = true
		}
		if caseExprs != nil {
			caseExprs(cc, blk)
		}
	}
	if !hasDefault {
		head.Succs = append(head.Succs, Edge{To: after, Kind: EdgeNext})
	}
	i := 0
	for _, clause := range clauses {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		b.cur = blocks[i]
		savedFT := b.ft
		if i+1 < len(blocks) {
			b.ft = blocks[i+1]
		} else {
			b.ft = nil
		}
		b.stmtList(cc.Body)
		b.ft = savedFT
		b.edge(after, EdgeNext, nil)
		i++
	}
	b.popScope()
	b.cur = after
}

// cond decomposes a boolean condition into CFG structure: &&/|| become
// chained blocks, ! swaps the targets, and each leaf gets True/False
// edges carrying the leaf for refinement. Leaves are placed as block
// nodes, so calls inside conditions are visible to transfer functions.
func (b *cfgBuilder) cond(e ast.Expr, t, f *Block) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		b.cond(x.X, t, f)
		return
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			mid := b.newBlock()
			b.cond(x.X, mid, f)
			b.cur = mid
			b.cond(x.Y, t, f)
			return
		case token.LOR:
			mid := b.newBlock()
			b.cond(x.X, t, mid)
			b.cur = mid
			b.cond(x.Y, t, f)
			return
		}
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			b.cond(x.X, f, t)
			return
		}
	}
	b.add(e)
	b.edge(t, EdgeTrue, e)
	b.edge(f, EdgeFalse, e)
}

func (b *cfgBuilder) pushScope(s branchScope) { b.scopes = append(b.scopes, s) }
func (b *cfgBuilder) popScope()               { b.scopes = b.scopes[:len(b.scopes)-1] }

// findScope resolves a break/continue target: the innermost matching
// scope, or the labeled one. Continue only matches loops.
func (b *cfgBuilder) findScope(label *ast.Ident, needCont bool) *branchScope {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		s := &b.scopes[i]
		if needCont && s.cont == nil {
			continue
		}
		if label == nil || s.label == label.Name {
			return s
		}
	}
	return nil
}

// isTerminatorCall recognizes, purely syntactically, calls that never
// return: panic(...), os.Exit, log.Fatal/Fatalf/Fatalln, and
// runtime.Goexit. The check is deliberately name-based (the builder
// has no type information); shadowing `os` with a local would
// misclassify, which costs one spurious panic edge, never a missed
// statement.
func isTerminatorCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name {
		case "os":
			return fun.Sel.Name == "Exit"
		case "log":
			return fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln"
		case "runtime":
			return fun.Sel.Name == "Goexit"
		}
	}
	return false
}

// cfgInspect walks one placed node the way CFG consumers must: cutting
// at nested *ast.BlockStmt (a range statement's body belongs to other
// blocks) and at *ast.FuncLit (separate summary nodes). The root is
// visited even when it is itself one of the cut kinds.
func cfgInspect(root ast.Node, f func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n != root {
			switch n.(type) {
			case *ast.BlockStmt, *ast.FuncLit:
				f(n)
				return false
			}
		}
		return f(n)
	})
}

// --- forward dataflow solver ---

// FlowProblem defines one forward meet-over-paths dataflow problem
// over a CFG. Implementations must treat states as immutable values:
// Transfer and Refine return fresh (or shared-unchanged) states and
// never mutate their input, because the solver hands one block's
// out-state to every outgoing edge.
type FlowProblem[S any] interface {
	// Boundary is the state on entry to the function.
	Boundary() S
	// Transfer applies one placed node's effect.
	Transfer(n ast.Node, s S) S
	// Refine narrows the state along one edge (condition leaves on
	// True/False edges, clearing across EdgePanic). Most edges return
	// s unchanged.
	Refine(e Edge, s S) S
	// Merge joins two states where paths meet; it must be monotone
	// with Equal detecting the fixed point.
	Merge(a, b S) S
	// Equal reports whether two states are indistinguishable.
	Equal(a, b S) bool
}

// SolveCFG iterates a forward dataflow problem to its fixed point and
// returns each reachable block's in-state. Unreachable blocks (dead
// code after returns, bodies of `select{}`) have no entry in the map.
// Consumers re-walk a block's nodes with Transfer from its in-state to
// recover the state at each node for reporting.
func SolveCFG[S any](c *CFG, p FlowProblem[S]) map[*Block]S {
	in := make(map[*Block]S, len(c.Blocks))
	in[c.Entry] = p.Boundary()
	work := []*Block{c.Entry}
	queued := make(map[*Block]bool, len(c.Blocks))
	queued[c.Entry] = true
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		s := in[blk]
		for _, n := range blk.Nodes {
			s = p.Transfer(n, s)
		}
		for _, e := range blk.Succs {
			ns := p.Refine(e, s)
			old, seen := in[e.To]
			if seen {
				merged := p.Merge(old, ns)
				if p.Equal(merged, old) {
					continue
				}
				in[e.To] = merged
			} else {
				in[e.To] = ns
			}
			if !queued[e.To] {
				queued[e.To] = true
				work = append(work, e.To)
			}
		}
	}
	return in
}
