package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Typestate enforces resource lifecycle protocols — acquire → use* →
// release-on-every-path — over the CFG layer (cfg.go). Each protocol
// is a declarative protoSpec: the type that carries the obligation,
// the call that creates it, and the operations that discharge it. The
// registered lifecycles are the ones the repo's correctness depends
// on: ColumnsWriter.Close (an unclosed writer silently drops the
// pending chunk and footer), obs Span.End (an unended span corrupts
// latency histograms), the serve coalescer's flight done-close (an
// unclosed flight deadlocks every follower), and the stdlib pair
// os.File / http.Response.Body Close.
//
// The analysis is flow-sensitive and path-aware: obligations ride the
// dataflow solver's meet-over-paths lattice, so `defer w.Close()` on
// one branch discharges only that branch, an `err != nil` early
// return is recognized as "nothing was acquired" via the paired error
// variable, and a flight obligation conditioned on the leader bool is
// dropped on the follower edge. Leaks are reported once per acquire
// site, naming the first escaping path.
//
// Wrappers compose across packages through two summary fact kinds
// (sidecar schema 3): Acquires — the function returns a value its
// caller must release (result/cond indices) — and Releases — the
// function discharges the obligation of parameter i. A two-hop
// wrapper chain (OpenScratch → openScratch2 → os.CreateTemp)
// transfers the obligation to the outermost caller, and CloseScratch
// discharges it, with witness chains naming the underlying
// acquisition. Interface-method entries deliberately carry no
// obligation facts: joining "releases" over implementations would
// grant a discharge some implementation does not perform.
//
// Store/Hub subscriptions (store.Subscribe → Unsubscribe) are checked
// structurally per package instead: the channel registered at startup
// is conventionally removed in a Close/shutdown method, a pairing no
// single function body exhibits.
var Typestate = &Analyzer{
	Name: "typestate",
	Doc: "enforce resource lifecycle protocols (ColumnsWriter/os.File/" +
		"http body Close, obs Span.End, coalescer flight done-close, " +
		"store Subscribe/Unsubscribe) on every control-flow path, with " +
		"obligations transferred across wrappers via summary facts",
	Run: runTypestate,
}

// --- protocol registry ---

// protoSpec declares one resource lifecycle.
type protoSpec struct {
	// name keys the protocol in Acquire/Release facts ("file", "span").
	name string
	// typePkg/typeName identify the obligated named type; a parameter
	// of this type (pointer or value) seeds an obligation the
	// summarizer may convert into a Releases fact.
	typePkg  string
	typeName string
	// release is the method that discharges the obligation (Close,
	// End); releasePath, when set, is the field selected before the
	// method — "Body" makes resp.Body.Close() the release of resp.
	release     string
	releasePath string
	// doneField, when set, makes close(v.<doneField>) a release — the
	// coalescer flight's broadcast.
	doneField string
	// sendReleases: sending the value on a channel transfers ownership
	// to a consumer contractually bound to release it (the coalescer
	// hands flights to the batcher loop); elsewhere a send is an
	// escape that merely silences the leak report.
	sendReleases bool
	// noun and hint render diagnostics.
	noun string
	hint string
}

var protoSpecs = []*protoSpec{
	{name: "file", typePkg: "os", typeName: "File",
		release: "Close", noun: "open file", hint: "Close it"},
	{name: "httpbody", typePkg: "net/http", typeName: "Response",
		release: "Close", releasePath: "Body", noun: "HTTP response",
		hint: "close resp.Body"},
	{name: "colwriter", typePkg: "resourcecentral/internal/trace", typeName: "ColumnsWriter",
		release: "Close", noun: "columnar writer",
		hint: "Close it (Close flushes the pending chunk and the footer; an unclosed writer is a truncated trace)"},
	{name: "span", typePkg: "resourcecentral/internal/obs", typeName: "Span",
		release: "End", noun: "span",
		hint: "call End (an unended span never records its latency sample)"},
	{name: "flight", typePkg: "resourcecentral/internal/serve", typeName: "call",
		doneField: "done", sendReleases: true, noun: "coalesced flight",
		hint: "close(c.done) or hand it to the batcher (followers block on done forever otherwise)"},
}

func protoByName(name string) *protoSpec {
	for _, p := range protoSpecs {
		if p.name == name {
			return p
		}
	}
	return nil
}

// protoForType matches a (possibly pointer) type against the registry.
func protoForType(t types.Type) *protoSpec {
	if t == nil {
		return nil
	}
	named, ok := deref(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	for _, p := range protoSpecs {
		if p.typePkg == pkg && p.typeName == name {
			return p
		}
	}
	return nil
}

// rootAcquire marks a function whose call mints a fresh obligation:
// result is the obligated result index, cond (or -1) the index of a
// bool result gating the obligation — the coalescer's join returns
// (flight, leader), and only the leader owes the done-close.
type rootAcquire struct {
	proto  string
	result int
	cond   int
}

// acquireRoots is keyed by types.Func.FullName. Constructors are
// listed explicitly because building a struct literal is not
// acquisition — only these entry points hand out values somebody must
// release.
var acquireRoots = map[string]rootAcquire{
	"os.Open":       {"file", 0, -1},
	"os.Create":     {"file", 0, -1},
	"os.OpenFile":   {"file", 0, -1},
	"os.CreateTemp": {"file", 0, -1},

	"net/http.Get":                {"httpbody", 0, -1},
	"net/http.Post":               {"httpbody", 0, -1},
	"net/http.PostForm":           {"httpbody", 0, -1},
	"net/http.Head":               {"httpbody", 0, -1},
	"(*net/http.Client).Do":       {"httpbody", 0, -1},
	"(*net/http.Client).Get":      {"httpbody", 0, -1},
	"(*net/http.Client).Post":     {"httpbody", 0, -1},
	"(*net/http.Client).PostForm": {"httpbody", 0, -1},
	"(*net/http.Client).Head":     {"httpbody", 0, -1},

	"resourcecentral/internal/trace.NewColumnsWriter":    {"colwriter", 0, -1},
	"(*resourcecentral/internal/obs.Registry).StartSpan": {"span", 0, -1},
	"(*resourcecentral/internal/serve.coalescer).join":   {"flight", 0, 1},
}

// acquireRootPkgs holds the package paths occurring in acquireRoots
// keys, derived at init. types.Func.FullName formats the receiver
// type on every call, so checking the (interned) package path first
// skips the allocation for the overwhelming majority of call sites.
var acquireRootPkgs = func() map[string]bool {
	out := make(map[string]bool, len(acquireRoots))
	for k := range acquireRoots {
		s := k
		if strings.HasPrefix(s, "(*") {
			if i := strings.IndexByte(s, ')'); i >= 0 {
				s = s[2:i]
			}
		}
		if i := strings.LastIndexByte(s, '.'); i >= 0 {
			out[s[:i]] = true
		}
	}
	return out
}()

// rootAcquireOf looks fn up in the root table, package path first.
func rootAcquireOf(fn *types.Func) (rootAcquire, bool) {
	if fn.Pkg() == nil || !acquireRootPkgs[fn.Pkg().Path()] {
		return rootAcquire{}, false
	}
	r, ok := acquireRoots[fn.FullName()]
	return r, ok
}

// --- obligation facts (sidecar schema 3) ---

// AcquireFact exports "calling this function acquires an obligation":
// the caller receives a Proto-obligated value at result index Result;
// when Cond >= 0 the bool at that result index gates the obligation
// (false = some other caller owns it). Chain witnesses the underlying
// acquisition through however many wrapper hops produced it.
type AcquireFact struct {
	Proto  string  `json:"proto"`
	Result int     `json:"result"`
	Cond   int     `json:"cond"`
	Chain  []Frame `json:"chain,omitempty"`
}

// ReleaseFact exports "this function discharges parameter Param's
// Proto obligation on every path that returns" — granted only when
// the parameter is released structurally (release method, done-close,
// a callee's ReleaseFact, or the flight hand-off send), never when it
// merely escapes (returned, stored, captured by a closure).
type ReleaseFact struct {
	Proto string `json:"proto"`
	Param int    `json:"param"`
}

// --- the obligation flow problem ---

// obligation is one outstanding resource, keyed in obState by its
// acquire position (the call site, or the parameter's declaration for
// summarizer-seeded obligations).
type obligation struct {
	spec  *protoSpec
	pos   token.Pos
	chain []Frame
	// vars are the variables through which the resource is reachable;
	// pathVars hold the value *behind* releasePath (body := resp.Body),
	// on which the release method applies without the path.
	vars     map[*types.Var]bool
	pathVars map[*types.Var]bool
	// cond gates the obligation on a bool variable (flight leader);
	// errv is the error paired with the acquisition — err != nil means
	// nothing was acquired.
	cond *types.Var
	errv *types.Var
	// param is the seeded parameter index, -1 for local acquisitions.
	param int
}

func (ob *obligation) clone() *obligation {
	nb := *ob
	nb.vars = make(map[*types.Var]bool, len(ob.vars))
	for v := range ob.vars {
		nb.vars[v] = true
	}
	if ob.pathVars != nil {
		nb.pathVars = make(map[*types.Var]bool, len(ob.pathVars))
		for v := range ob.pathVars {
			nb.pathVars[v] = true
		}
	}
	return &nb
}

// aliases reports whether v reaches the resource (directly or behind
// the release path).
func (ob *obligation) aliases(v *types.Var) bool {
	return ob.vars[v] || ob.pathVars[v]
}

// obState maps acquire position → outstanding obligation. States are
// immutable values; obMut below implements copy-on-write so Transfer
// never mutates its input.
type obState map[token.Pos]*obligation

// obKeys returns the state's acquire positions in ascending order, so
// scans that accumulate across obligations never observe map iteration
// order.
func obKeys(s obState) []token.Pos {
	ks := make([]token.Pos, 0, len(s))
	for p := range s {
		ks = append(ks, p)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

type obMut struct {
	state  obState
	copied bool
}

func (m *obMut) ensure() obState {
	if !m.copied {
		ns := make(obState, len(m.state)+1)
		for k, v := range m.state {
			ns[k] = v
		}
		m.state, m.copied = ns, true
	}
	return m.state
}

func (m *obMut) mutOb(pos token.Pos) *obligation {
	s := m.ensure()
	ob := s[pos].clone()
	s[pos] = ob
	return ob
}

func (m *obMut) discharge(pos token.Pos) { delete(m.ensure(), pos) }

// obFlow is the FlowProblem tracking obligations through one body. It
// serves two masters: the summarizer (seeded parameters, fact
// derivation via onReturn and the weak-escape veto) and the typestate
// analyzer (no seeds, leak reporting over the solved states).
type obFlow struct {
	info    *types.Info
	fset    *token.FileSet
	resolve func(*ast.CallExpr) (*FuncSummary, *types.Func)
	// seed is the boundary state (summarizer: proto-typed parameters).
	seed obState
	// results are the body's named result variables, so a bare
	// `return` discharges obligations held in them.
	results []*types.Var
	// weak records acquire positions discharged by escape rather than
	// release — returned, stored into a structure, captured by a
	// closure, handed to a goroutine. An escape silences the leak
	// report (ownership moved somewhere the analysis cannot follow)
	// but vetoes a Releases fact.
	weak map[token.Pos]bool
	// onReturn fires when a return discharges a locally acquired
	// obligation: the summarizer derives an AcquireFact from it.
	onReturn func(ob *obligation, result, cond int)
	// allowed suppresses obligation creation at //rcvet:allow sites
	// (summarizer-side; the analyzer reports at the acquire position,
	// where the framework's own allow check applies).
	allowed func(token.Pos) bool
}

func (f *obFlow) Boundary() obState {
	if len(f.seed) == 0 {
		return obState{}
	}
	out := make(obState, len(f.seed))
	for k, ob := range f.seed {
		out[k] = ob
	}
	return out
}

func (f *obFlow) Merge(a, b obState) obState {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make(obState, len(a)+len(b))
	for k, ob := range a {
		out[k] = ob
	}
	for k, ob := range b {
		have, ok := out[k]
		if !ok {
			out[k] = ob
			continue
		}
		out[k] = mergeOb(have, ob)
	}
	return out
}

// mergeOb joins two views of one obligation where paths meet: aliases
// union (reachable on either path is reachable), cond and errv only
// survive when both paths agree — dropping them is the conservative
// direction (the obligation becomes unconditional).
func mergeOb(a, b *obligation) *obligation {
	if a == b {
		return a
	}
	if obEqual(a, b) {
		return a
	}
	out := a.clone()
	for v := range b.vars {
		out.vars[v] = true
	}
	for v := range b.pathVars {
		if out.pathVars == nil {
			out.pathVars = make(map[*types.Var]bool)
		}
		out.pathVars[v] = true
	}
	if a.cond != b.cond {
		out.cond = nil
	}
	if a.errv != b.errv {
		out.errv = nil
	}
	return out
}

func (f *obFlow) Equal(a, b obState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, oa := range a {
		ob, ok := b[k]
		if !ok || !obEqual(oa, ob) {
			return false
		}
	}
	return true
}

func obEqual(a, b *obligation) bool {
	if a == b {
		return true
	}
	if a.spec != b.spec || a.cond != b.cond || a.errv != b.errv ||
		len(a.vars) != len(b.vars) || len(a.pathVars) != len(b.pathVars) {
		return false
	}
	for v := range a.vars {
		if !b.vars[v] {
			return false
		}
	}
	for v := range a.pathVars {
		if !b.pathVars[v] {
			return false
		}
	}
	return true
}

func (f *obFlow) Transfer(n ast.Node, s obState) obState {
	st := &obMut{state: s}
	f.scanCalls(n, st)
	switch n := n.(type) {
	case *ast.AssignStmt:
		f.assign(n.Lhs, n.Rhs, st)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, nm := range vs.Names {
						lhs[i] = nm
					}
					f.assign(lhs, vs.Values, st)
				}
			}
		}
	case *ast.ReturnStmt:
		f.ret(n, st)
	case *ast.SendStmt:
		f.send(n, st)
	case *ast.GoStmt:
		f.escapeRefs(n.Call, st)
	case *ast.RangeStmt:
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if e == nil {
				continue
			}
			if id, ok := ast.Unparen(e).(*ast.Ident); ok {
				f.killIdent(id, st)
			}
		}
	}
	return st.state
}

func (f *obFlow) Refine(e Edge, s obState) obState {
	if e.Kind == EdgePanic {
		// Unwinding: leak-on-panic is not a diagnostic rcvet raises,
		// and a panic path must not poison the exit join.
		return obState{}
	}
	if e.Cond == nil || len(s) == 0 || (e.Kind != EdgeTrue && e.Kind != EdgeFalse) {
		return s
	}
	st := &obMut{state: s}
	switch x := ast.Unparen(e.Cond).(type) {
	case *ast.Ident:
		// A leader/ok bool gating the obligation: the false edge means
		// some other caller owns it. The true edge keeps the condition
		// attached rather than clearing it — a join with an untested
		// path would otherwise launder the obligation into an
		// unconditional one, and a wrapper's `return c, leader` would
		// publish an Acquires fact with the cond index lost.
		if v, ok := f.info.Uses[x].(*types.Var); ok {
			for pos, ob := range st.state {
				if ob.cond == v && e.Kind == EdgeFalse {
					st.discharge(pos)
				}
			}
		}
	case *ast.UnaryExpr:
		// `if !leader { ... }`: cond() decomposes the negation, so
		// this leaf never arrives here — kept for safety.
	case *ast.BinaryExpr:
		if x.Op != token.EQL && x.Op != token.NEQ {
			return s
		}
		var operand ast.Expr
		switch {
		case isNilIdent(x.Y):
			operand = x.X
		case isNilIdent(x.X):
			operand = x.Y
		default:
			return s
		}
		v := baseAliasVar(f.info, operand)
		if v == nil {
			return s
		}
		// Truth of "operand == nil" along this edge.
		nilBranch := (x.Op == token.EQL) == (e.Kind == EdgeTrue)
		for pos, ob := range st.state {
			switch {
			case ob.errv == v:
				if nilBranch {
					// err == nil: the acquisition succeeded; the
					// obligation stands on its own from here.
					st.mutOb(pos).errv = nil
				} else {
					// err != nil: by the (value, error) contract
					// nothing was acquired on this path.
					st.discharge(pos)
				}
			case ob.aliases(v):
				if nilBranch {
					st.discharge(pos) // the value is nil: nothing to release
				}
			}
		}
	}
	return st.state
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// scanCalls applies the call-borne effects syntactically inside one
// placed node: structural releases (v.Close(), sp.End(),
// resp.Body.Close(), close(c.done)), callee Releases facts, and
// closure captures. A call that merely takes an obligated value as an
// argument — without a Releases fact — is a borrow and has no effect.
func (f *obFlow) scanCalls(n ast.Node, st *obMut) {
	cfgInspect(n, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.FuncLit:
			f.litEscape(nd, st)
			return false
		case *ast.BlockStmt:
			return false
		case *ast.CallExpr:
			f.applyCall(nd, st)
		}
		return true
	})
}

func (f *obFlow) applyCall(call *ast.CallExpr, st *obMut) {
	// close(v.done): the flight broadcast. Other plain-identifier
	// callees fall through to the Releases-fact composition below —
	// a same-package wrapper is spelled as a bare ident too.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
		if sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr); ok {
			if v := baseIdentVar(f.info, sel.X); v != nil {
				for pos, ob := range st.state {
					if ob.spec.doneField == sel.Sel.Name && ob.aliases(v) {
						st.discharge(pos)
					}
				}
			}
		}
		return
	}
	// Structural release method.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		for pos, ob := range st.state {
			if ob.spec.release == "" || sel.Sel.Name != ob.spec.release {
				continue
			}
			target := ast.Unparen(sel.X)
			if ob.spec.releasePath != "" {
				if inner, ok := target.(*ast.SelectorExpr); ok && inner.Sel.Name == ob.spec.releasePath {
					if v := baseIdentVar(f.info, inner.X); v != nil && ob.vars[v] {
						st.discharge(pos)
						continue
					}
				}
				// A pathVar (body := resp.Body) releases directly.
				if v := baseIdentVar(f.info, target); v != nil && ob.pathVars[v] {
					st.discharge(pos)
				}
				continue
			}
			if v := baseIdentVar(f.info, target); v != nil && ob.vars[v] {
				st.discharge(pos)
			}
		}
	}
	// Callee Releases facts: wrapper(f) discharges f's obligation.
	cs, _ := f.resolve(call)
	if cs == nil || len(cs.Releases) == 0 {
		return
	}
	for _, rf := range cs.Releases {
		if rf.Param < 0 || rf.Param >= len(call.Args) {
			continue
		}
		v := baseAliasVar(f.info, call.Args[rf.Param])
		if v == nil {
			continue
		}
		for pos, ob := range st.state {
			if ob.spec.name == rf.Proto && ob.aliases(v) {
				st.discharge(pos)
			}
		}
	}
}

// litEscape discharges obligations captured by a nested function
// literal: the closure's execution is not ordered against this body's
// paths, so the leak check cannot follow it — ownership is assumed
// handed over, weakly.
func (f *obFlow) litEscape(lit *ast.FuncLit, st *obMut) {
	if len(st.state) == 0 {
		return
	}
	used := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := f.info.Uses[id].(*types.Var); ok {
				used[v] = true
			}
		}
		return true
	})
	for pos, ob := range st.state {
		for v := range used {
			if ob.aliases(v) {
				f.markWeak(ob)
				st.discharge(pos)
				break
			}
		}
	}
}

func (f *obFlow) markWeak(ob *obligation) {
	if f.weak != nil {
		f.weak[ob.pos] = true
	}
}

func (f *obFlow) assign(lhs, rhs []ast.Expr, st *obMut) {
	// Pair targets with sources: i-th for a balanced assignment, the
	// single call for a multi-value one.
	single := len(rhs) == 1 && len(lhs) > 1
	// 1. Transfer-out: storing an obligated value into a field, slot,
	//    element, or package variable passes the duty to the owner of
	//    that structure (weak: silences the leak, vetoes a Releases
	//    fact).
	for i, l := range lhs {
		var r ast.Expr
		switch {
		case len(lhs) == len(rhs):
			r = rhs[i]
		case single:
			continue // call results carry no aliases
		default:
			continue
		}
		if !obStoreTarget(f.info, l) {
			continue
		}
		f.escapeExpr(r, st)
	}
	// 2. Alias sources, read before the kills below (the RHS is
	//    evaluated before the assignment takes effect).
	type aliasAdd struct {
		pos     token.Pos
		v       *types.Var
		viaPath bool
	}
	var adds []aliasAdd
	if len(lhs) == len(rhs) {
		for i, r := range rhs {
			tv := defVar(f.info, lhs[i])
			if tv == nil {
				continue
			}
			if v := baseAliasVar(f.info, r); v != nil {
				for _, pos := range obKeys(st.state) {
					ob := st.state[pos]
					if ob.vars[v] {
						adds = append(adds, aliasAdd{pos, tv, false})
					} else if ob.pathVars[v] {
						adds = append(adds, aliasAdd{pos, tv, true})
					}
				}
				continue
			}
			// body := resp.Body — the value behind the release path.
			if sel, ok := ast.Unparen(r).(*ast.SelectorExpr); ok {
				if v := baseIdentVar(f.info, sel.X); v != nil {
					for _, pos := range obKeys(st.state) {
						ob := st.state[pos]
						if ob.spec.releasePath == sel.Sel.Name && ob.vars[v] {
							adds = append(adds, aliasAdd{pos, tv, true})
						}
					}
				}
			}
			// A composite literal embedding an obligated variable keeps
			// it reachable through the new value.
			if cl, ok := ast.Unparen(r).(*ast.CompositeLit); ok {
				for _, pos := range obKeys(st.state) {
					if f.compositeAliases(cl, st.state[pos]) {
						adds = append(adds, aliasAdd{pos, tv, false})
					}
				}
			}
		}
	}
	// 3. Kills: a plain-identifier target loses whatever it pointed at.
	for _, l := range lhs {
		if id, ok := ast.Unparen(l).(*ast.Ident); ok {
			f.killIdent(id, st)
		}
	}
	// 4. Acquisitions from call RHSs.
	if single {
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
			f.acquireCall(call, lhs, st)
		}
	} else if len(lhs) == len(rhs) {
		for i, r := range rhs {
			if call, ok := ast.Unparen(r).(*ast.CallExpr); ok {
				f.acquireCall(call, lhs[i:i+1], st)
			}
		}
	}
	// 5. Apply the aliases recorded in step 2.
	for _, a := range adds {
		if _, live := st.state[a.pos]; !live {
			continue
		}
		nb := st.mutOb(a.pos)
		if a.viaPath {
			if nb.pathVars == nil {
				nb.pathVars = make(map[*types.Var]bool)
			}
			nb.pathVars[a.v] = true
		} else {
			nb.vars[a.v] = true
		}
	}
}

// escapeExpr weakly discharges obligations aliased by an expression
// being stored somewhere long-lived (directly, or appended).
func (f *obFlow) escapeExpr(r ast.Expr, st *obMut) {
	if v := baseAliasVar(f.info, r); v != nil {
		for pos, ob := range st.state {
			if ob.aliases(v) {
				f.markWeak(ob)
				st.discharge(pos)
			}
		}
		return
	}
	if call, ok := ast.Unparen(r).(*ast.CallExpr); ok && isAppendCall(call) {
		for _, arg := range call.Args[1:] {
			f.escapeExpr(arg, st)
		}
	}
	if cl, ok := ast.Unparen(r).(*ast.CompositeLit); ok {
		for pos, ob := range st.state {
			if f.compositeAliases(cl, ob) {
				f.markWeak(ob)
				st.discharge(pos)
			}
		}
	}
}

func (f *obFlow) compositeAliases(cl *ast.CompositeLit, ob *obligation) bool {
	found := false
	ast.Inspect(cl, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := f.info.Uses[id].(*types.Var); ok && ob.aliases(v) {
				found = true
			}
		}
		return true
	})
	return found
}

// obStoreTarget reports whether an assignment target outlives this
// body's locals: a field, element, or dereference, or a package-level
// variable.
func obStoreTarget(info *types.Info, l ast.Expr) bool {
	switch x := ast.Unparen(l).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.Ident:
		v, ok := info.Uses[x].(*types.Var)
		return ok && v.Pkg() != nil && v.Pkg().Scope().Lookup(v.Name()) == v
	}
	return false
}

func (f *obFlow) killIdent(id *ast.Ident, st *obMut) {
	v := defVar(f.info, id)
	if v == nil {
		return
	}
	for pos, ob := range st.state {
		if !ob.aliases(v) && ob.cond != v && ob.errv != v {
			continue
		}
		nb := st.mutOb(pos)
		delete(nb.vars, v)
		delete(nb.pathVars, v)
		if nb.cond == v {
			nb.cond = nil
		}
		if nb.errv == v {
			nb.errv = nil
		}
	}
}

// callAcq is one obligation a call mints: the protocol, the result
// index carrying the obligated value, the optional gating bool result,
// and the witness chain through however many wrapper hops produced it.
type callAcq struct {
	spec         *protoSpec
	result, cond int
	chain        []Frame
}

// callAcquires lists the obligations one call mints, from the explicit
// root table or the callee's Acquires facts. Empty under an
// //rcvet:allow covering the call line.
func (f *obFlow) callAcquires(call *ast.CallExpr) []callAcq {
	if f.allowed != nil && f.allowed(call.Pos()) {
		return nil
	}
	var acqs []callAcq
	fn := calleeFunc(f.info, call)
	if fn != nil {
		if root, ok := rootAcquireOf(fn); ok {
			if spec := protoByName(root.proto); spec != nil {
				acqs = append(acqs, callAcq{spec, root.result, root.cond, []Frame{{
					Pos:  shortPosAt(f.fset, call.Pos()),
					Call: "acquires " + spec.noun + " from " + shortFuncName(fn),
				}}})
			}
		}
	}
	if cs, cfn := f.resolve(call); cs != nil {
		frame := Frame{Pos: shortPosAt(f.fset, call.Pos()), Call: "calls func literal"}
		if cfn != nil {
			frame.Call = "calls " + shortFuncName(cfn)
		}
		for _, af := range cs.Acquires {
			dup := false
			for _, have := range acqs {
				if have.spec.name == af.Proto && have.result == af.Result {
					dup = true
				}
			}
			if dup {
				continue
			}
			if spec := protoByName(af.Proto); spec != nil {
				acqs = append(acqs, callAcq{spec, af.Result, af.Cond, prependFrame(frame, af.Chain)})
			}
		}
	}
	return acqs
}

// acquireCall mints obligations for a call's results: from the
// explicit root table or from the callee's Acquires facts.
func (f *obFlow) acquireCall(call *ast.CallExpr, lhs []ast.Expr, st *obMut) {
	acqs := f.callAcquires(call)
	if len(acqs) == 0 {
		return
	}
	errIdx := errResultIndex(f.info, call)
	for _, a := range acqs {
		if a.result < 0 || a.result >= len(lhs) {
			continue
		}
		v := defVar(f.info, lhs[a.result])
		if v == nil {
			continue // blank or non-variable target: deliberately untracked
		}
		ob := &obligation{
			spec:  a.spec,
			pos:   call.Pos(),
			chain: a.chain,
			vars:  map[*types.Var]bool{v: true},
			param: -1,
		}
		if a.cond >= 0 && a.cond < len(lhs) {
			ob.cond = defVar(f.info, lhs[a.cond])
		}
		if errIdx >= 0 && errIdx < len(lhs) {
			ob.errv = defVar(f.info, lhs[errIdx])
		}
		st.ensure()[call.Pos()] = ob
	}
}

func (f *obFlow) ret(n *ast.ReturnStmt, st *obMut) {
	// Direct-return wrappers: `return os.Open(p)` never binds the
	// obligation to a variable, so the transfer fact is minted straight
	// off the returned call — this is what lets a two-hop wrapper chain
	// (OpenScratch -> openScratch2 -> os.CreateTemp) carry the duty
	// across packages without a single local assignment.
	if f.onReturn != nil {
		if len(n.Results) == 1 {
			if call, ok := ast.Unparen(n.Results[0]).(*ast.CallExpr); ok {
				for _, a := range f.callAcquires(call) {
					f.onReturn(&obligation{spec: a.spec, pos: call.Pos(), chain: a.chain, param: -1}, a.result, a.cond)
				}
			}
		} else {
			for i, res := range n.Results {
				call, ok := ast.Unparen(res).(*ast.CallExpr)
				if !ok {
					continue
				}
				for _, a := range f.callAcquires(call) {
					// A single-value call in a multi-expression return:
					// only result 0 exists, and any gating bool lives in
					// a different expression the fact cannot name.
					if a.result == 0 {
						f.onReturn(&obligation{spec: a.spec, pos: call.Pos(), chain: a.chain, param: -1}, i, -1)
					}
				}
			}
		}
	}
	for pos, ob := range st.state {
		ri, ci := -1, -1
		if len(n.Results) == 0 {
			// Bare return with named results.
			for i, rv := range f.results {
				if rv == nil {
					continue
				}
				if ob.aliases(rv) && ri < 0 {
					ri = i
				}
				if ob.cond == rv {
					ci = i
				}
			}
		} else {
			for i, res := range n.Results {
				v := baseAliasVar(f.info, res)
				if v == nil {
					continue
				}
				if ob.aliases(v) && ri < 0 {
					ri = i
				}
				if ob.cond == v {
					ci = i
				}
			}
		}
		if ri < 0 {
			continue
		}
		if f.onReturn != nil && ob.param < 0 && len(ob.chain) > 0 {
			f.onReturn(ob, ri, ci)
		}
		f.markWeak(ob)
		st.discharge(pos)
	}
}

func (f *obFlow) send(n *ast.SendStmt, st *obMut) {
	v := baseAliasVar(f.info, n.Value)
	if v == nil {
		return
	}
	for pos, ob := range st.state {
		if !ob.aliases(v) {
			continue
		}
		if !ob.spec.sendReleases {
			f.markWeak(ob)
		}
		st.discharge(pos)
	}
}

// escapeRefs weakly discharges every obligation referenced anywhere
// in a go statement's call: the goroutine's lifetime is not ordered
// against this body.
func (f *obFlow) escapeRefs(call *ast.CallExpr, st *obMut) {
	if len(st.state) == 0 {
		return
	}
	used := make(map[*types.Var]bool)
	ast.Inspect(call, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := f.info.Uses[id].(*types.Var); ok {
				used[v] = true
			}
		}
		return true
	})
	for pos, ob := range st.state {
		for v := range used {
			if ob.aliases(v) {
				f.markWeak(ob)
				st.discharge(pos)
				break
			}
		}
	}
}

// --- shared helpers ---

// defVar resolves an assignment target identifier to its variable
// (defined or reused), nil for blank and non-identifiers.
func defVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// baseAliasVar resolves whole-value alias chains — parens, address-of,
// dereference, type assertions — to the underlying variable. Unlike
// baseIdentVar it deliberately refuses selections and indexing:
// reading a field out of an obligated struct copies data, it does not
// alias the resource (the one exception, the release path, is handled
// explicitly by the assign/alias rules).
func baseAliasVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// errResultIndex finds the error position in a call's result tuple,
// or -1.
func errResultIndex(info *types.Info, call *ast.CallExpr) int {
	t := info.TypeOf(call)
	if t == nil {
		return -1
	}
	tup, ok := t.(*types.Tuple)
	if !ok {
		return -1
	}
	for i := 0; i < tup.Len(); i++ {
		if isErrorType(tup.At(i).Type()) {
			return i
		}
	}
	return -1
}

func shortPosAt(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return filepath.Base(p.Filename) + ":" + strconv.Itoa(p.Line)
}

// passResolver adapts a Pass to the resolver the flow problem needs —
// the same shape poolescape builds: function literals resolve to
// their lit-key summaries, named callees through the table.
func passResolver(pass *Pass) func(*ast.CallExpr) (*FuncSummary, *types.Func) {
	return func(call *ast.CallExpr) (*FuncSummary, *types.Func) {
		if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
			return pass.Summaries.Lookup(litKeyAt(pass.Fset, pass.Pkg.Path(), lit)), nil
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return nil, nil
		}
		return pass.Summaries.ResolveFunc(fn), fn
	}
}

// --- the analyzer ---

func runTypestate(pass *Pass) error {
	resolve := passResolver(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkTypestateBody(pass, resolve, n.Body, n.Type)
			case *ast.FuncLit:
				checkTypestateBody(pass, resolve, n.Body, n.Type)
			}
			return true
		})
	}
	checkSubscriptionPairs(pass)
	return nil
}

// hasAcquireSite pre-filters bodies: the solver only runs where some
// call can mint an obligation. This keeps the whole-repo cold pass
// inside the bench-lint budget — most functions never touch a
// registered protocol.
func hasAcquireSite(info *types.Info, resolve func(*ast.CallExpr) (*FuncSummary, *types.Func), body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			fn := calleeFunc(info, n)
			if fn != nil {
				if _, ok := rootAcquireOf(fn); ok {
					found = true
					return false
				}
			}
			if cs, _ := resolve(n); cs != nil && len(cs.Acquires) > 0 {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func checkTypestateBody(pass *Pass, resolve func(*ast.CallExpr) (*FuncSummary, *types.Func), body *ast.BlockStmt, ftyp *ast.FuncType) {
	if body == nil || !hasAcquireSite(pass.TypesInfo, resolve, body) {
		return
	}
	flow := &obFlow{
		info:    pass.TypesInfo,
		fset:    pass.Fset,
		resolve: resolve,
		results: namedResultVars(pass.TypesInfo, ftyp),
	}
	cfg := pass.Summaries.CFGOf(body)
	in := SolveCFG[obState](cfg, flow)
	type leak struct {
		ob    *obligation
		where token.Pos
	}
	leaks := make(map[token.Pos]leak)
	record := func(s obState, where token.Pos) {
		for pos, ob := range s {
			if ob.param >= 0 {
				continue // parameters are the caller's obligation
			}
			if _, have := leaks[pos]; !have {
				leaks[pos] = leak{ob, where}
			}
		}
	}
	for _, blk := range cfg.Blocks {
		s, ok := in[blk]
		if !ok {
			continue
		}
		lastReturn := false
		for _, n := range blk.Nodes {
			s = flow.Transfer(n, s)
			if ret, isRet := n.(*ast.ReturnStmt); isRet {
				record(s, ret.Pos())
				lastReturn = true
			} else {
				lastReturn = false
			}
		}
		if lastReturn {
			continue
		}
		for _, e := range blk.Succs {
			if e.To == cfg.Exit && e.Kind == EdgeNext {
				record(s, body.Rbrace)
				break
			}
		}
	}
	positions := make([]token.Pos, 0, len(leaks))
	for pos := range leaks {
		positions = append(positions, pos)
	}
	sort.Slice(positions, func(i, j int) bool { return positions[i] < positions[j] })
	for _, pos := range positions {
		l := leaks[pos]
		where := "the end of the function"
		if wp := pass.Fset.Position(l.where); l.where != body.Rbrace {
			where = "the return at line " + strconv.Itoa(wp.Line)
		}
		pass.ReportWitness(pos, l.ob.chain,
			"%s acquired here (%s) is not released on the path reaching %s: %s, "+
				"or annotate with //rcvet:allow(reason)",
			l.ob.spec.noun, renderChain(l.ob.chain), where, l.ob.spec.hint)
	}
}

// namedResultVars returns the declared result variables of a
// signature, positionally (nil entries for unnamed results).
func namedResultVars(info *types.Info, ftyp *ast.FuncType) []*types.Var {
	if ftyp == nil || ftyp.Results == nil {
		return nil
	}
	var out []*types.Var
	named := false
	for _, fld := range ftyp.Results.List {
		if len(fld.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, nm := range fld.Names {
			v, _ := info.Defs[nm].(*types.Var)
			if v != nil {
				named = true
			}
			out = append(out, v)
		}
	}
	if !named {
		return nil
	}
	return out
}

// --- summarizer-side fact derivation ---

// hasObligationCalls reports whether any call in the body can mint an
// obligation. The candidate call list is collected once per node and
// re-evaluated against the (growing) summaries on each fixed-point
// pass, so a recursive wrapper that acquires through its SCC sibling
// is still found.
func (s *summarizer) hasObligationCalls(n *funcNode, body *ast.BlockStmt) bool {
	calls, ok := s.obsites[n]
	if !ok {
		ast.Inspect(body, func(nd ast.Node) bool {
			switch nd := nd.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				calls = append(calls, nd)
			}
			return true
		})
		s.obsites[n] = calls
	}
	for _, call := range calls {
		if fn := calleeFunc(s.pkg.TypesInfo, call); fn != nil {
			if _, ok := rootAcquireOf(fn); ok {
				return true
			}
		}
		if cs, _ := s.calleeSummary(call); cs != nil && len(cs.Acquires) > 0 {
			return true
		}
	}
	return false
}

// scanObligationFacts derives one function's schema-3 obligation
// facts by solving the obligation flow over its CFG: Acquires for
// locally minted obligations the function returns to its caller, and
// Releases for proto-typed parameters discharged structurally before
// every return. A parameter that merely escapes (returned, stored,
// captured) earns no Releases fact — the weak-discharge veto — so an
// identity wrapper cannot masquerade as a releaser. When the exit is
// unreachable (a run-forever loop) there is no returning path and
// "released before every return" holds vacuously.
func (s *summarizer) scanObligationFacts(n *funcNode, sum *FuncSummary, body *ast.BlockStmt) {
	params := s.paramVars(n)
	var seed obState
	for i, p := range params {
		spec := protoForType(p.Type())
		if spec == nil {
			continue
		}
		if seed == nil {
			seed = make(obState)
		}
		seed[p.Pos()] = &obligation{
			spec:  spec,
			pos:   p.Pos(),
			vars:  map[*types.Var]bool{p: true},
			param: i,
		}
	}
	if seed == nil && !s.hasObligationCalls(n, body) {
		return
	}
	var ftyp *ast.FuncType
	if n.Decl != nil {
		ftyp = n.Decl.Type
	} else {
		ftyp = n.Lit.Type
	}
	flow := &obFlow{
		info:    s.pkg.TypesInfo,
		fset:    s.pkg.Fset,
		resolve: s.calleeSummary,
		seed:    seed,
		results: namedResultVars(s.pkg.TypesInfo, ftyp),
		weak:    make(map[token.Pos]bool),
		allowed: s.allowed,
	}
	flow.onReturn = func(ob *obligation, result, cond int) {
		s.addAcquire(sum, AcquireFact{Proto: ob.spec.name, Result: result, Cond: cond, Chain: capChain(ob.chain)})
	}
	cfg := s.table.CFGOf(body)
	in := SolveCFG[obState](cfg, flow)
	exit := in[cfg.Exit]
	for i, p := range params {
		spec := protoForType(p.Type())
		if spec == nil {
			continue
		}
		if _, outstanding := exit[p.Pos()]; outstanding {
			continue
		}
		if flow.weak[p.Pos()] {
			continue
		}
		s.addRelease(sum, ReleaseFact{Proto: spec.name, Param: i})
	}
}

func (s *summarizer) addAcquire(sum *FuncSummary, f AcquireFact) {
	for _, have := range sum.Acquires {
		if have.Proto == f.Proto && have.Result == f.Result {
			return
		}
	}
	sum.Acquires = append(sum.Acquires, f)
	s.changed = true
}

func (s *summarizer) addRelease(sum *FuncSummary, f ReleaseFact) {
	for _, have := range sum.Releases {
		if have.Proto == f.Proto && have.Param == f.Param {
			return
		}
	}
	sum.Releases = append(sum.Releases, f)
	s.changed = true
}

// --- subscription pairing ---

// pairProto declares a package-scope acquire/release pair: the
// subscription registered somewhere in a package must be removed
// somewhere in the same package. This is deliberately not
// flow-sensitive — Subscribe in Initialize and Unsubscribe in Close
// is the correct shape, and no single body shows both.
type pairProto struct {
	what        string
	subscribe   string
	unsubscribe string
	// keyed: match by the field key of the channel argument when
	// resolvable (core.Client.notif ↔ the same field at the
	// Unsubscribe site); otherwise any same-package release pairs.
	keyed bool
}

var pairProtos = []pairProto{
	{
		what:        "store subscription",
		subscribe:   "(*resourcecentral/internal/store.Store).Subscribe",
		unsubscribe: "(*resourcecentral/internal/store.Store).Unsubscribe",
		keyed:       true,
	},
	{
		what:        "hub subscription",
		subscribe:   "(*resourcecentral/internal/serve.Hub).Subscribe",
		unsubscribe: "(*resourcecentral/internal/serve.Hub).Unsubscribe",
		keyed:       false,
	},
}

func checkSubscriptionPairs(pass *Pass) {
	type subSite struct {
		pos  token.Pos
		what string
		key  string
		idx  int
	}
	var subs []subSite
	released := make(map[int]map[string]bool) // proto index → arg field keys (“” = unkeyed)
	argKey := func(call *ast.CallExpr) string {
		if len(call.Args) == 0 {
			return ""
		}
		if sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr); ok {
			return fieldKeyOf(pass.TypesInfo, sel)
		}
		return ""
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			full := fn.FullName()
			for i, p := range pairProtos {
				switch full {
				case p.subscribe:
					key := ""
					if p.keyed {
						key = argKey(call)
					}
					subs = append(subs, subSite{call.Pos(), p.what, key, i})
				case p.unsubscribe:
					if released[i] == nil {
						released[i] = make(map[string]bool)
					}
					if p.keyed {
						released[i][argKey(call)] = true
					} else {
						released[i][""] = true
					}
				}
			}
			return true
		})
	}
	for _, s := range subs {
		rel := released[s.idx]
		if rel != nil {
			if rel[s.key] || (s.key != "" && rel[""]) || (s.key == "" && len(rel) > 0) {
				continue
			}
		}
		what := s.what
		if s.key != "" {
			what += " of " + shortFieldKey(s.key)
		}
		pass.Reportf(s.pos,
			"%s registered here is never unsubscribed in this package: the store "+
				"will keep signaling a dead channel after shutdown; call Unsubscribe "+
				"on the teardown path (Close/Stop), or annotate with //rcvet:allow(reason)",
			what)
	}
}
