package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// AllocFree statically enforces the zero-allocation hot paths PR 2
// measured. A function whose doc comment carries the line
//
//	//rcvet:hotpath
//
// must be *transitively* allocation-free: no allocation site in its own
// body (see forEachAllocSite for the exact model), and no call —
// however deep, across package boundaries — into a function whose
// summary says it may allocate. The benchmark gate
// (BenchmarkPredictSingleParallel's 0 allocs/op) catches regressions
// after the fact on one measured input; this analyzer rejects them at
// lint time on every path.
//
// The annotation is a contract, not a hint: annotate only functions
// that must stay on the sub-microsecond path (CacheKey and its FNV
// helper, the result-cache shard reads, the obs counter/gauge/histogram
// hit operations, the in-place quickselect helpers). Callees of an
// annotated function do not need their own annotation — the summary
// composition covers them — but annotating them too pins the contract
// closer to the code. False positives from the conservative model (a
// provably non-escaping &T{}, a never-growing append) take
// //rcvet:allow(reason), which clears the site from the summary as
// well.
var AllocFree = &Analyzer{
	Name: "allocfree",
	Doc: "require //rcvet:hotpath functions to be transitively allocation-free, " +
		"naming the allocating call chain otherwise",
	Run: runAllocFree,
}

// hotpathMarker is matched against the lines of a function's doc
// comment.
const hotpathMarker = "//rcvet:hotpath"

// isHotpath reports whether a function declaration carries the
// //rcvet:hotpath annotation.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), hotpathMarker) {
			return true
		}
	}
	return false
}

func runAllocFree(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			checkHotpath(pass, fd)
		}
	}
	return nil
}

func checkHotpath(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	// Direct allocation sites in this body.
	forEachAllocSite(pass.TypesInfo, fd.Body, func(pos token.Pos, what string) {
		pass.Reportf(pos,
			"%s in //rcvet:hotpath function %s: hot paths must be allocation-free "+
				"(fix it, or annotate the site with //rcvet:allow(reason))", what, name)
	})
	// Calls into may-allocate summaries, at any depth.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // already reported as a closure allocation above
		case *ast.CallExpr:
			fn := calleeFunc(pass.TypesInfo, n)
			if fn == nil {
				return true // builtins/conversions/dynamic calls: handled above
			}
			if sum := pass.Summaries.ResolveFunc(fn); sum.Alloc != nil {
				pass.Reportf(n.Pos(),
					"call to %s in //rcvet:hotpath function %s may allocate "+
						"(chain: %s); hot paths must be transitively allocation-free",
					shortFuncName(fn), name, sum.Alloc)
			}
		}
		return true
	})
}
