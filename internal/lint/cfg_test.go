package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses one function's source and returns its body.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	f, err := parser.ParseFile(token.NewFileSet(), "t.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return fd.Body
		}
	}
	t.Fatal("no function body")
	return nil
}

// simpleStmts collects the body's placeable statements, cutting at
// nested function literals — the set checkPlacement requires the CFG
// to place exactly once.
func simpleStmts(body *ast.BlockStmt) []ast.Stmt {
	var out []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ExprStmt, *ast.AssignStmt, *ast.IncDecStmt, *ast.SendStmt,
			*ast.DeclStmt, *ast.GoStmt, *ast.DeferStmt, *ast.ReturnStmt,
			*ast.BranchStmt, *ast.RangeStmt:
			out = append(out, n.(ast.Stmt))
		}
		return true
	})
	return out
}

// checkPlacement asserts the builder's core property: every simple
// statement of the body appears in exactly one block.
func checkPlacement(t *testing.T, body *ast.BlockStmt, c *CFG) {
	t.Helper()
	placed := make(map[ast.Node]int)
	for _, blk := range c.Blocks {
		for _, n := range blk.Nodes {
			placed[n]++
		}
	}
	for _, s := range simpleStmts(body) {
		if placed[s] != 1 {
			t.Errorf("statement at offset %d (%T) placed %d times, want 1", s.Pos(), s, placed[s])
		}
	}
}

// reachable returns the blocks reachable from entry.
func reachable(c *CFG) map[*Block]bool {
	seen := map[*Block]bool{c.Entry: true}
	work := []*Block{c.Entry}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		for _, e := range b.Succs {
			if !seen[e.To] {
				seen[e.To] = true
				work = append(work, e.To)
			}
		}
	}
	return seen
}

func TestCFGPlacement(t *testing.T) {
	cases := map[string]string{
		"straightline": `func f() { x := 1; x++; _ = x }`,
		"ifelse":       `func f(a bool) int { if a { return 1 } else { return 2 } }`,
		"shortcircuit": `func f(a, b bool) { if a && !b { println(1) } else if a || b { println(2) } }`,
		"forloop":      `func f() { for i := 0; i < 4; i++ { if i == 2 { continue }; if i == 3 { break }; println(i) } }`,
		"rangeloop":    `func f(xs []int) { for i, x := range xs { _ = i; _ = x } }`,
		"switch":       `func f(x int) { switch x { case 1: println(1); fallthrough; case 2: println(2); default: println(3) } }`,
		"typeswitch":   `func f(x any) { switch v := x.(type) { case int: _ = v; default: } }`,
		"selectstmt":   `func f(ch chan int, done chan struct{}) { select { case v := <-ch: _ = v; case <-done: return; default: } }`,
		"goto":         `func f() { i := 0; L: i++; if i < 3 { goto L }; goto M; M: println(i) }`,
		"labels":       `func f() { outer: for i := 0; i < 3; i++ { for { continue outer } }; println() }`,
		"terminator":   `func f(x int) { if x < 0 { panic("neg") }; os.Exit(1); println("dead") }`,
		"deferred":     `func f() { defer println("bye"); go println("hi") }`,
		"funclit":      `func f() { g := func() { println("inner") }; g() }`,
		"emptyselect":  `func f() { select {}; println("dead") }`,
		"declstmt":     `func f() { var x, y = 1, 2; _, _ = x, y }`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			body := parseBody(t, src)
			c := buildCFG(body)
			checkPlacement(t, body, c)
			if !reachable(c)[c.Exit] && name != "emptyselect" {
				t.Errorf("exit not reachable from entry")
			}
		})
	}
}

func TestCFGDeadCodeUnreachable(t *testing.T) {
	body := parseBody(t, `func f() int { return 1; println("dead"); return 2 }`)
	c := buildCFG(body)
	checkPlacement(t, body, c)
	live := reachable(c)
	for _, blk := range c.Blocks {
		if !live[blk] {
			continue
		}
		for _, n := range blk.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				call, _ := es.X.(*ast.CallExpr)
				if call != nil {
					t.Errorf("dead call placed in reachable block %d", blk.Index)
				}
			}
		}
	}
}

func TestCFGShortCircuitEdges(t *testing.T) {
	body := parseBody(t, `func f(a, b bool) { if a && b { println(1) } }`)
	c := buildCFG(body)
	// The leaf `a` must have a False edge that skips the evaluation of
	// `b`: find the block holding `a` and check its False target does
	// not contain `b`.
	var aBlk *Block
	for _, blk := range c.Blocks {
		for _, n := range blk.Nodes {
			if id, ok := n.(*ast.Ident); ok && id.Name == "a" {
				aBlk = blk
			}
		}
	}
	if aBlk == nil {
		t.Fatal("condition leaf a not placed")
	}
	var sawTrue, sawFalse bool
	for _, e := range aBlk.Succs {
		switch e.Kind {
		case EdgeTrue:
			sawTrue = true
			found := false
			for _, n := range e.To.Nodes {
				if id, ok := n.(*ast.Ident); ok && id.Name == "b" {
					found = true
				}
			}
			if !found {
				t.Error("true edge of a does not lead to evaluation of b")
			}
		case EdgeFalse:
			sawFalse = true
			if e.Cond == nil {
				t.Error("false edge carries no condition leaf")
			}
		}
	}
	if !sawTrue || !sawFalse {
		t.Errorf("leaf a edges: true=%v false=%v, want both", sawTrue, sawFalse)
	}
}

func TestCFGPanicEdge(t *testing.T) {
	body := parseBody(t, `func f(x int) { if x < 0 { panic("neg") }; println(x) }`)
	c := buildCFG(body)
	found := false
	for _, blk := range c.Blocks {
		for _, e := range blk.Succs {
			if e.Kind == EdgePanic && e.To == c.Exit {
				found = true
			}
		}
	}
	if !found {
		t.Error("no panic edge to exit")
	}
}

// reachingDefs is a tiny flow problem used to test the solver: the set
// of println arguments (as literal strings) that may have executed.
type reachingPrints struct{}

func (reachingPrints) Boundary() string { return "" }
func (reachingPrints) Transfer(n ast.Node, s string) string {
	es, ok := n.(*ast.ExprStmt)
	if !ok {
		return s
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return s
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok {
		return s
	}
	name := strings.Trim(lit.Value, `"`)
	if strings.Contains(s, name) {
		return s
	}
	return s + name
}
func (reachingPrints) Refine(e Edge, s string) string { return s }
func (reachingPrints) Merge(a, b string) string {
	out := a
	for _, r := range b {
		if !strings.ContainsRune(out, r) {
			out += string(r)
		}
	}
	// canonicalize
	rs := strings.Split(out, "")
	for i := range rs {
		for j := i + 1; j < len(rs); j++ {
			if rs[j] < rs[i] {
				rs[i], rs[j] = rs[j], rs[i]
			}
		}
	}
	return strings.Join(rs, "")
}
func (reachingPrints) Equal(a, b string) bool { return a == b }

func TestSolveCFGJoin(t *testing.T) {
	body := parseBody(t, `func f(c bool) {
		if c { println("a") } else { println("b") }
		println("j")
	}`)
	c := buildCFG(body)
	in := SolveCFG[string](c, reachingPrints{})
	exitState, ok := in[c.Exit]
	if !ok {
		t.Fatal("exit unreached")
	}
	for _, want := range []string{"a", "b", "j"} {
		if !strings.Contains(exitState, want) {
			t.Errorf("exit state %q missing %q", exitState, want)
		}
	}
}

func TestSolveCFGLoopFixpoint(t *testing.T) {
	body := parseBody(t, `func f(n int) {
		for i := 0; i < n; i++ {
			println("l")
		}
		println("e")
	}`)
	c := buildCFG(body)
	in := SolveCFG[string](c, reachingPrints{})
	exitState := in[c.Exit]
	if !strings.Contains(exitState, "l") || !strings.Contains(exitState, "e") {
		t.Errorf("exit state %q, want both l (loop body may run) and e", exitState)
	}
}
