package lint

import (
	"go/ast"
	"go/token"
)

// AtomicField enforces all-or-nothing atomicity per struct field: a
// field that is accessed through sync/atomic anywhere in the repo —
// directly or through a multi-hop call chain, witnessed by the
// AtomicFields summary facts — must be accessed atomically everywhere.
// A plain read or write of such a field races with the atomic side
// (the Go memory model gives plain accesses no ordering against
// atomic ones), which is exactly how a "lock-free" counter silently
// corrupts: one careless `s.n++` in a cold path undoes every
// atomic.Add in the hot one. This guards internal/obs's counters and
// gauges, internal/serve's admission budget, and internal/core's
// cache stats.
//
// Taking a field's address is sanctioned only where the atomic
// discipline is visible: as the pointer argument of a sync/atomic
// call, or — for fields of sync/atomic's typed atomics, whose every
// method is atomic — anywhere, since the type itself enforces the
// discipline.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc: "report plain (non-atomic) accesses of struct fields that are accessed " +
		"via sync/atomic elsewhere in the repository, including through " +
		"multi-hop call chains recorded in summary sidecars",
	Run: runAtomicField,
}

func runAtomicField(pass *Pass) error {
	facts := pass.Summaries.AllAtomicFields()
	if len(facts) == 0 {
		return nil
	}
	atomicFields := make(map[string]FieldFact, len(facts))
	for _, f := range facts {
		atomicFields[f.Field] = f
	}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		// Pass 1: collect the sanctioned selector nodes — receivers of
		// atomic-type method calls, address-of arguments to sync/atomic
		// functions, and addresses of typed-atomic fields (handing
		// &t.inflight to a registrar is fine; the type stays atomic).
		sanctioned := make(map[ast.Node]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if atomicAccessField(info, n) == "" {
					return true
				}
				sel := ast.Unparen(n.Fun).(*ast.SelectorExpr)
				if fsel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
					sanctioned[fsel] = true
				}
				if len(n.Args) > 0 {
					if ue, ok := ast.Unparen(n.Args[0]).(*ast.UnaryExpr); ok && ue.Op == token.AND {
						if fsel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr); ok {
							sanctioned[fsel] = true
						}
					}
				}
			case *ast.UnaryExpr:
				if n.Op != token.AND {
					return true
				}
				if fsel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok && isAtomicType(info.TypeOf(fsel)) {
					sanctioned[fsel] = true
				}
			}
			return true
		})
		// Pass 2: any other selector of a known-atomic field is a plain
		// access racing with the atomic side.
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			key := fieldKeyOf(info, sel)
			fact, hot := atomicFields[key]
			if !hot {
				return true
			}
			pass.ReportWitness(sel.Pos(), fact.Chain,
				"plain access of %s, which is accessed atomically elsewhere (%s): "+
					"plain and atomic accesses of the same field race; use the atomic "+
					"API here too, or annotate with //rcvet:allow(reason)",
				shortFieldKey(key), renderChain(fact.Chain))
			return true
		})
	}
	return nil
}
