package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockScope enforces the two lock-discipline rules the sharded hot
// paths rely on:
//
//  1. Mutex-bearing values must not be copied. The result cache's
//     resultShard, the store, and the obs registry all embed sync
//     mutexes; a by-value copy silently forks the lock while sharing
//     the guarded data. Flagged sites: assignments that read an
//     existing lock-bearing value, passing one as a call argument, and
//     ranging over a container of them with a value variable (take
//     `&slice[i]` instead).
//
//  2. Shard-lock critical sections must stay small and local. While a
//     sync.Mutex/RWMutex is held, calls into obs *Registry methods,
//     anything in store, and Featurize (the expensive feature-vector
//     build) are flagged: obs registration/lookup takes the registry
//     lock (lock-order risk and contention on the hottest path), store
//     calls can block on subscriber fan-out, and featurization is
//     exactly the work the batched PredictMany paths hoist out of the
//     lock. Lock-free metric operations (Counter.Inc,
//     Histogram.Observe) are a single atomic op and stay legal. Record
//     under the lock, observe after unlock — or annotate with
//     //rcvet:allow(reason).
//
// Rule 2 is a per-block syntactic approximation: a region opens at
// `x.Lock()` / `x.RLock()` and closes at the matching `x.Unlock()` /
// `x.RUnlock()` in the same statement list (a deferred unlock keeps the
// region open to the end of the list). Nested blocks inherit the held
// set; function literals do not (they run elsewhere).
var LockScope = &Analyzer{
	Name: "lockscope",
	Doc: "flag by-value copies of mutex-bearing structs and calls into " +
		"obs/store/Featurize while a shard lock is held",
	Run: runLockScope,
}

// LockScopeForbidden lists import-path suffixes that must not be called
// while a mutex is held (see IsSeededPackage for the matching rules).
var LockScopeForbidden = []string{
	"internal/obs",
	"internal/store",
}

// forbiddenUnderLock reports whether a callee package path is banned
// inside critical sections.
func forbiddenUnderLock(path string) bool {
	for _, pat := range LockScopeForbidden {
		if path == pat || strings.HasSuffix(path, "/"+pat) {
			return true
		}
	}
	return false
}

func runLockScope(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkLockCopyAssign(pass, n)
			case *ast.CallExpr:
				checkLockCopyArgs(pass, n)
			case *ast.RangeStmt:
				checkLockCopyRange(pass, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					walkLocked(pass, n.Body.List, nil)
				}
			case *ast.FuncLit:
				walkLocked(pass, n.Body.List, nil)
			}
			return true
		})
	}
	return nil
}

// --- rule 1: no by-value copies of mutex-bearing structs ---

func checkLockCopyAssign(pass *Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		// Assigning to _ discards the copy; nothing can use the forked
		// mutex afterwards.
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		if !isValueRead(rhs) {
			continue
		}
		if t := pass.TypesInfo.TypeOf(rhs); containsLock(t) {
			pass.Reportf(rhs.Pos(),
				"assignment copies lock-bearing %s by value: the copy's mutex no longer guards "+
					"the original's state; use a pointer", types.TypeString(t, types.RelativeTo(pass.Pkg)))
		}
	}
}

func checkLockCopyArgs(pass *Pass, call *ast.CallExpr) {
	for _, arg := range call.Args {
		if !isValueRead(arg) {
			continue
		}
		if t := pass.TypesInfo.TypeOf(arg); containsLock(t) {
			pass.Reportf(arg.Pos(),
				"call passes lock-bearing %s by value: the callee receives a forked mutex; "+
					"pass a pointer", types.TypeString(t, types.RelativeTo(pass.Pkg)))
		}
	}
}

func checkLockCopyRange(pass *Pass, rs *ast.RangeStmt) {
	if rs.Value == nil {
		return
	}
	if t := pass.TypesInfo.TypeOf(rs.Value); containsLock(t) {
		pass.Reportf(rs.Value.Pos(),
			"range copies lock-bearing %s by value each iteration; iterate by index and "+
				"take a pointer (&xs[i])", types.TypeString(t, types.RelativeTo(pass.Pkg)))
	}
}

// isValueRead reports whether the expression reads an existing value
// (as opposed to constructing a fresh one, which owns its zero mutex).
func isValueRead(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name != "nil"
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.TypeAssertExpr:
		return isValueRead(e.X)
	}
	return false
}

// containsLock reports whether a value of type t embeds sync lock state
// (directly, via struct fields, or via arrays).
func containsLock(t types.Type) bool {
	return containsLock1(t, 0)
}

func containsLock1(t types.Type, depth int) bool {
	if t == nil || depth > 10 {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
				return true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock1(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return containsLock1(u.Elem(), depth+1)
	}
	return false
}

// --- rule 2: no obs/store/Featurize calls while a lock is held ---

// walkLocked processes a statement list in order, tracking which lock
// receivers are held, and checks every statement executed under a lock.
// Nested statement lists are processed with a copy of the held set;
// lock transitions inside them stay local to that list (a conservative
// approximation that cannot leak a false "held" state out of a branch).
func walkLocked(pass *Pass, stmts []ast.Stmt, held []string) {
	held = append([]string(nil), held...)
	for _, s := range stmts {
		if recv, kind := lockCall(pass.TypesInfo, s); recv != "" {
			if kind == lockAcquire {
				held = append(held, recv)
			} else {
				for i := len(held) - 1; i >= 0; i-- {
					if held[i] == recv {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			}
			continue
		}
		if len(held) > 0 {
			checkUnderLock(pass, s, held)
		}
		walkNested(pass, s, held)
	}
}

type lockKind int

const (
	lockNone lockKind = iota
	lockAcquire
	lockRelease
)

// lockCall recognizes a statement of the form `expr.Lock()`,
// `expr.RLock()`, `expr.Unlock()`, or `expr.RUnlock()` on a sync
// mutex and returns the receiver expression's source form.
func lockCall(info *types.Info, s ast.Stmt) (recv string, kind lockKind) {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return "", lockNone
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return "", lockNone
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", lockNone
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", lockNone
	}
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
		return types.ExprString(sel.X), lockAcquire
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), lockRelease
	}
	return "", lockNone
}

// checkUnderLock flags forbidden calls syntactically inside one
// statement executed while locks are held. Function literals are
// skipped (they run at their call site, not here), and so are nested
// statement lists, which walkNested re-checks with the same held set.
//
// Two tiers: a direct call into obs-registry/store/Featurize is flagged
// as before, and any other call — including an intra-package helper —
// whose interprocedural summary says such a call is *reachable* is
// flagged with the witness chain. PR 4's version trusted intra-package
// helpers ("manage their own discipline"); the summaries close that
// hole.
func checkUnderLock(pass *Pass, s ast.Stmt, held []string) {
	if _, ok := s.(*ast.DeferStmt); ok {
		// Deferred calls (canonically `defer mu.Unlock()`) run at
		// function exit, outside this region.
		return
	}
	ast.Inspect(s, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit, *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if fn.Pkg().Path() != pass.Pkg.Path() {
			switch {
			case forbiddenUnderLock(fn.Pkg().Path()) && locksInternally(fn):
				pass.Reportf(call.Pos(),
					"call to %s.%s while %q is locked: metrics/store calls take their own locks and "+
						"can block; record under the lock, call after unlock, or annotate with "+
						"//rcvet:allow(reason)", fn.Pkg().Name(), fn.Name(), held[len(held)-1])
				return true
			case fn.Name() == "Featurize":
				pass.Reportf(call.Pos(),
					"Featurize while %q is locked: feature-vector builds are the expensive step the "+
						"batched paths hoist out of shard locks; featurize before locking, or annotate "+
						"with //rcvet:allow(reason)", held[len(held)-1])
				return true
			}
		}
		// Transitive: the callee's summary says an obs-registry, store,
		// or Featurize call is reachable from it.
		if sum := pass.Summaries.ResolveFunc(fn); sum.Blocking != nil {
			pass.Reportf(call.Pos(),
				"call to %s while %q is locked transitively reaches a blocking call "+
					"(chain: %s); hoist it out of the critical section, or annotate with "+
					"//rcvet:allow(reason)", shortFuncName(fn), held[len(held)-1], sum.Blocking)
		}
		return true
	})
}

// locksInternally reports whether a call into a forbidden package can
// itself take locks or block. For obs, only *Registry methods do
// (family registration and lookup take the registry lock); the metric
// operations themselves (Counter.Inc, Histogram.Observe, Gauge.Set)
// are single atomic ops and are fine inside a critical section.
// Everything in store is fan-out or blob I/O and always counts.
func locksInternally(fn *types.Func) bool {
	p := fn.Pkg().Path()
	if p == "internal/obs" || strings.HasSuffix(p, "/internal/obs") {
		return isObsRegistryMethod(fn)
	}
	return true
}

// walkNested recurses into the statement lists nested inside s,
// carrying the current held set.
func walkNested(pass *Pass, s ast.Stmt, held []string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		walkLocked(pass, s.List, held)
	case *ast.IfStmt:
		walkLocked(pass, s.Body.List, held)
		if s.Else != nil {
			walkNested(pass, s.Else, held)
		}
	case *ast.ForStmt:
		walkLocked(pass, s.Body.List, held)
	case *ast.RangeStmt:
		walkLocked(pass, s.Body.List, held)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkLocked(pass, cc.Body, held)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkLocked(pass, cc.Body, held)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				walkLocked(pass, cc.Body, held)
			}
		}
	case *ast.LabeledStmt:
		walkNested(pass, s.Stmt, held)
	}
}
