package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags range-over-map loops whose bodies produce
// order-sensitive output: appending to a slice declared outside the
// loop, accumulating into a float, or sending on a channel. Go
// randomizes map iteration order per run, so each of these bodies is a
// source of run-to-run nondeterminism — exactly the bug class the
// simulator's regrouping tests (AvgUtilizationPct per-server subtotals)
// exist to catch after the fact.
//
// The canonical safe idiom — collect the keys, sort, then iterate — is
// recognized: an append whose slice is passed to a sort/slices function
// later in the same block is not flagged. Integer counters and other
// commutative updates are not flagged either (addition over uint64 is
// order-independent; float addition is not associative and is).
// Deliberately order-free walks take //rcvet:allow(reason).
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag range-over-map loops that append to outer slices, accumulate " +
		"floats, or send on channels without sorting, making output depend on " +
		"randomized map iteration order",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapType(pass.TypesInfo.TypeOf(rs.X)) {
				return true
			}
			checkMapRange(pass, rs, stack)
			return true
		})
	}
	return nil
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange inspects one range-over-map body. stack is the node
// path from the file down to rs, used to find the statements that
// follow the loop (for the sorted-after-range exemption).
func checkMapRange(pass *Pass, rs *ast.RangeStmt, stack []ast.Node) {
	following := stmtsAfter(rs, stack)

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure built in the loop runs later (or elsewhere);
			// its body is that call site's problem.
			return false
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"send on a channel inside range over map: receivers observe randomized "+
					"map iteration order; collect and sort the keys first, or annotate with //rcvet:allow(reason)")
		case *ast.AssignStmt:
			checkFloatAccum(pass, rs, n)
		case *ast.CallExpr:
			checkUnsortedAppend(pass, rs, n, following)
		}
		return true
	})
}

// checkFloatAccum flags `acc op= v` where acc is a float declared
// outside the loop: float addition is not associative, so the result
// depends on map iteration order.
func checkFloatAccum(pass *Pass, rs *ast.RangeStmt, as *ast.AssignStmt) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return
	}
	if len(as.Lhs) != 1 {
		return
	}
	t := pass.TypesInfo.TypeOf(as.Lhs[0])
	if t == nil {
		return
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsFloat == 0 {
		return
	}
	if obj := refObject(pass.TypesInfo, as.Lhs[0]); obj == nil || declaredWithin(obj, rs) {
		return
	}
	pass.Reportf(as.Pos(),
		"float accumulation inside range over map: float addition is not associative, so the "+
			"sum depends on randomized iteration order; accumulate over sorted keys or "+
			"per-key subtotals, or annotate with //rcvet:allow(reason)")
}

// checkUnsortedAppend flags `s = append(s, ...)` where s outlives the
// loop and is not sorted afterwards in the same block.
func checkUnsortedAppend(pass *Pass, rs *ast.RangeStmt, call *ast.CallExpr, following []ast.Stmt) {
	if b, ok := pass.TypesInfo.Uses[calleeIdent(call)].(*types.Builtin); !ok || b.Name() != "append" {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	obj := refObject(pass.TypesInfo, call.Args[0])
	if obj == nil || declaredWithin(obj, rs) {
		return
	}
	if sortedLater(pass.TypesInfo, following, obj) {
		return
	}
	pass.Reportf(call.Pos(),
		"append to %s inside range over map without a later sort: element order follows "+
			"randomized map iteration order; sort %s after the loop (sort/slices in the same "+
			"block), or annotate with //rcvet:allow(reason)", obj.Name(), obj.Name())
}

// stmtsAfter returns the statements that follow rs in its innermost
// enclosing statement list.
func stmtsAfter(rs *ast.RangeStmt, stack []ast.Node) []ast.Stmt {
	for i := len(stack) - 2; i >= 0; i-- {
		var list []ast.Stmt
		switch n := stack[i].(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			continue
		}
		for j, s := range list {
			if s == ast.Stmt(rs) {
				return list[j+1:]
			}
		}
		return nil
	}
	return nil
}

// sortedLater reports whether any of the statements passes obj to a
// function from package sort or slices.
func sortedLater(info *types.Info, stmts []ast.Stmt, obj types.Object) bool {
	for _, s := range stmts {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if refObject(info, arg) == obj {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// refObject resolves an assignable expression (ident, field selector,
// index, deref) to the root object that names the storage being
// referenced: for `f.MeanCores` or `out[k]` that is `f` / `out`. Using
// the root is what lets per-entry updates through a loop-local pointer
// (`for _, f := range m { f.Sum /= n }`) pass: each iteration touches
// its own entry, so iteration order cannot leak into the result.
func refObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if o := info.Uses[e]; o != nil {
			return o
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		root := refObject(info, e.X)
		if _, isPkg := root.(*types.PkgName); root == nil || isPkg {
			// Qualified identifier (pkg.Var): the named object is the root.
			return info.Uses[e.Sel]
		}
		return root
	case *ast.IndexExpr:
		return refObject(info, e.X)
	case *ast.StarExpr:
		return refObject(info, e.X)
	}
	return nil
}

// declaredWithin reports whether obj's declaration lies inside the
// range statement (loop-local state cannot leak iteration order out).
func declaredWithin(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End()
}

// calleeIdent returns the identifier of a call's callee, if it is a
// plain identifier (built-ins always are).
func calleeIdent(call *ast.CallExpr) *ast.Ident {
	id, _ := ast.Unparen(call.Fun).(*ast.Ident)
	return id
}
