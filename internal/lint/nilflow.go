package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NilFlow reports pointer dereferences that are guaranteed to panic:
// uses where the pointer is nil on EVERY control-flow path reaching
// the dereference. The analyzer is deliberately may-not-must inverted
// relative to classic nilness checkers — a maybe-nil deref is silent
// (merge of nil and non-nil facts is unknown), so every report is a
// crash waiting for its first execution, not a style nit.
//
// Two idioms produce definite nils in practice:
//
//   - zero-value declarations: `var p *T` followed by a straight-line
//     dereference, usually after a refactor removed the assignment in
//     between;
//
//   - the (value, error) convention: after `p, err := f()`, Go
//     convention makes p nil exactly when err != nil, so a dereference
//     of p inside the `if err != nil` arm — typically a log line
//     reaching for p.Name while reporting the error — is a guaranteed
//     nil deref. The flow state pairs each err with its result
//     pointer, and the branch refinement turns the error test into a
//     nilness fact about the pointer.
//
// Dereference means a memory access the runtime cannot survive on a
// nil pointer: field selection through the pointer, explicit *p, and
// calls of value-receiver methods (which auto-deref). Pointer-receiver
// method calls are NOT derefs — methods on nil pointers are legal Go.
//
// Soundness guards: variables whose address is taken, and variables
// assigned inside nested function literals, are never tracked — a
// write through an alias or a closure would invalidate the flow facts.
var NilFlow = &Analyzer{
	Name: "nilflow",
	Doc: "report pointer dereferences that execute with a guaranteed-nil " +
		"pointer on every path, including results the (value, error) " +
		"convention makes nil inside err != nil branches",
	Run: runNilFlow,
}

func runNilFlow(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			default:
				return true
			}
			if body != nil {
				checkNilBody(pass, body)
			}
			return true
		})
	}
	return nil
}

// --- flow lattice ---

type nilRank uint8

const (
	nilUnknown nilRank = iota // absent from the state map
	nilYes
	nilNo
)

// nilVal is one pointer variable's fact: definitely nil (with the
// position that established the nil, for the diagnostic) or definitely
// non-nil. Unknown pointers are simply absent from the map.
type nilVal struct {
	rank   nilRank
	origin token.Pos
}

// nilPair records that an error variable and a pointer variable were
// produced by the same (value, error) call, so refining the error's
// nilness refines the pointer's.
type nilPair struct {
	ptr *types.Var
	pos token.Pos
}

type nilState struct {
	vals  map[*types.Var]nilVal
	pairs map[*types.Var]nilPair
}

// nilMut wraps a state with copy-on-write mutation, so unchanged
// states flow through the solver without allocation.
type nilMut struct {
	st     nilState
	copied bool
}

func (m *nilMut) ensure() {
	if m.copied {
		return
	}
	vals := make(map[*types.Var]nilVal, len(m.st.vals)+1)
	for k, v := range m.st.vals {
		vals[k] = v
	}
	pairs := make(map[*types.Var]nilPair, len(m.st.pairs))
	for k, v := range m.st.pairs {
		pairs[k] = v
	}
	m.st = nilState{vals: vals, pairs: pairs}
	m.copied = true
}

// setVal records a fact about a pointer variable. Any error pairing
// that points at the variable is stale after a direct assignment, so
// the caller passes breakPairs=true on writes and false on branch
// refinements (which only sharpen the existing value).
func (m *nilMut) setVal(v *types.Var, nv nilVal, breakPairs bool) {
	if cur, ok := m.st.vals[v]; ok && cur == nv && !breakPairs {
		return
	}
	m.ensure()
	if nv.rank == nilUnknown {
		delete(m.st.vals, v)
	} else {
		m.st.vals[v] = nv
	}
	if breakPairs {
		for e, p := range m.st.pairs {
			if p.ptr == v {
				delete(m.st.pairs, e)
			}
		}
	}
}

func (m *nilMut) setPair(errv, ptr *types.Var, pos token.Pos) {
	m.ensure()
	m.st.pairs[errv] = nilPair{ptr: ptr, pos: pos}
}

func (m *nilMut) dropPair(errv *types.Var) {
	if _, ok := m.st.pairs[errv]; !ok {
		return
	}
	m.ensure()
	delete(m.st.pairs, errv)
}

// nilFlow is the FlowProblem. excluded holds variables the analysis
// refuses to track: address-taken, or assigned inside a nested
// function literal.
type nilFlow struct {
	info     *types.Info
	excluded map[*types.Var]bool
}

func (nf *nilFlow) Boundary() nilState { return nilState{} }

func (nf *nilFlow) Equal(a, b nilState) bool {
	if len(a.vals) != len(b.vals) || len(a.pairs) != len(b.pairs) {
		return false
	}
	for k, v := range a.vals {
		if b.vals[k] != v {
			return false
		}
	}
	for k, v := range a.pairs {
		if b.pairs[k] != v {
			return false
		}
	}
	return true
}

// Merge keeps only facts both paths agree on: a variable nil on one
// path and non-nil (or unknown) on the other merges to unknown. This
// is what restricts reports to guaranteed derefs.
func (nf *nilFlow) Merge(a, b nilState) nilState {
	vals := make(map[*types.Var]nilVal)
	for k, av := range a.vals {
		bv, ok := b.vals[k]
		if !ok || bv.rank != av.rank {
			continue
		}
		if bv.origin < av.origin {
			av.origin = bv.origin
		}
		vals[k] = av
	}
	pairs := make(map[*types.Var]nilPair)
	for k, ap := range a.pairs {
		bp, ok := b.pairs[k]
		if !ok || bp.ptr != ap.ptr {
			continue
		}
		if bp.pos < ap.pos {
			ap.pos = bp.pos
		}
		pairs[k] = ap
	}
	return nilState{vals: vals, pairs: pairs}
}

func (nf *nilFlow) Transfer(n ast.Node, st nilState) nilState {
	m := &nilMut{st: st}
	switch n := n.(type) {
	case *ast.AssignStmt:
		nf.assign(m, n)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					nf.valueSpec(m, vs)
				}
			}
		}
	case *ast.RangeStmt:
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if v := nf.trackedVar(e); v != nil {
				m.setVal(v, nilVal{}, true)
			}
		}
	}
	return m.st
}

// Refine sharpens the state along a conditional edge. Two shapes
// matter: `p == nil` / `p != nil` on a tracked pointer, and the same
// tests on an error variable paired with a pointer result — there the
// (value, error) convention converts the error fact into a pointer
// fact.
func (nf *nilFlow) Refine(e Edge, st nilState) nilState {
	if e.Cond == nil || e.Kind == EdgePanic {
		return st
	}
	be, ok := ast.Unparen(e.Cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return st
	}
	var operand ast.Expr
	switch {
	case nf.isNilLit(be.Y):
		operand = be.X
	case nf.isNilLit(be.X):
		operand = be.Y
	default:
		return st
	}
	id, ok := ast.Unparen(operand).(*ast.Ident)
	if !ok {
		return st
	}
	v, _ := nf.info.Uses[id].(*types.Var)
	if v == nil || nf.excluded[v] {
		return st
	}
	// nilBranch: this edge is taken when the operand IS nil.
	nilBranch := (be.Op == token.EQL) == (e.Kind == EdgeTrue)
	m := &nilMut{st: st}
	if p, ok := st.pairs[v]; ok && isErrorType(v.Type()) {
		// err != nil edge → the paired result is nil by convention;
		// err == nil edge → the result is valid.
		if nilBranch {
			m.setVal(p.ptr, nilVal{rank: nilNo}, false)
		} else {
			m.setVal(p.ptr, nilVal{rank: nilYes, origin: p.pos}, false)
		}
		return m.st
	}
	if !isPointerType(v.Type()) {
		return st
	}
	if nilBranch {
		m.setVal(v, nilVal{rank: nilYes, origin: be.Pos()}, false)
	} else {
		m.setVal(v, nilVal{rank: nilNo}, false)
	}
	return m.st
}

func (nf *nilFlow) assign(m *nilMut, a *ast.AssignStmt) {
	if a.Tok != token.ASSIGN && a.Tok != token.DEFINE {
		return
	}
	if len(a.Lhs) == len(a.Rhs) {
		for i, lhs := range a.Lhs {
			nf.assignOne(m, lhs, a.Rhs[i])
		}
		return
	}
	// Multi-value: p, err := f() with a (pointer, error) result tuple
	// establishes a pairing; every other shape just kills the targets.
	if len(a.Rhs) == 1 {
		if call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr); ok && len(a.Lhs) == 2 {
			if tup, ok := nf.info.TypeOf(call).(*types.Tuple); ok && tup.Len() == 2 &&
				isPointerType(tup.At(0).Type()) && isErrorType(tup.At(1).Type()) {
				ptr := nf.trackedVar(a.Lhs[0])
				errv := nf.defOrUseVar(a.Lhs[1])
				if ptr != nil {
					m.setVal(ptr, nilVal{}, true)
				}
				if errv != nil {
					m.dropPair(errv)
					if ptr != nil {
						m.setPair(errv, ptr, call.Pos())
					}
				}
				return
			}
		}
	}
	for _, lhs := range a.Lhs {
		if v := nf.trackedVar(lhs); v != nil {
			m.setVal(v, nilVal{}, true)
		}
		if v := nf.defOrUseVar(lhs); v != nil && isErrorType(v.Type()) {
			m.dropPair(v)
		}
	}
}

func (nf *nilFlow) assignOne(m *nilMut, lhs, rhs ast.Expr) {
	if v := nf.defOrUseVar(lhs); v != nil && isErrorType(v.Type()) {
		m.dropPair(v)
	}
	v := nf.trackedVar(lhs)
	if v == nil {
		return
	}
	m.setVal(v, nf.eval(m.st, rhs), true)
}

func (nf *nilFlow) valueSpec(m *nilMut, vs *ast.ValueSpec) {
	for i, name := range vs.Names {
		v := nf.trackedVar(name)
		if v == nil {
			continue
		}
		if len(vs.Values) == 0 {
			// Zero value of a pointer declaration is nil.
			m.setVal(v, nilVal{rank: nilYes, origin: name.Pos()}, true)
			continue
		}
		if i < len(vs.Values) {
			m.setVal(v, nf.eval(m.st, vs.Values[i]), true)
		} else {
			m.setVal(v, nilVal{}, true)
		}
	}
}

// eval computes the nilness of an assigned value.
func (nf *nilFlow) eval(st nilState, e ast.Expr) nilVal {
	e = ast.Unparen(e)
	if nf.isNilLit(e) {
		return nilVal{rank: nilYes, origin: e.Pos()}
	}
	switch e := e.(type) {
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return nilVal{rank: nilNo}
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "new" {
			if _, isBuiltin := nf.info.Uses[id].(*types.Builtin); isBuiltin {
				return nilVal{rank: nilNo}
			}
		}
		// A pointer conversion — (*T)(x) — carries its operand's
		// nilness through unchanged.
		if tv, ok := nf.info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return nf.eval(st, e.Args[0])
		}
	case *ast.Ident:
		if v, ok := nf.info.Uses[e].(*types.Var); ok && !nf.excluded[v] {
			if nv, ok := st.vals[v]; ok {
				return nv
			}
		}
	}
	return nilVal{}
}

// trackedVar resolves lhs/range idents to a pointer-typed variable the
// analysis is willing to track.
func (nf *nilFlow) trackedVar(e ast.Expr) *types.Var {
	v := nf.defOrUseVar(e)
	if v == nil || nf.excluded[v] || !isPointerType(v.Type()) {
		return nil
	}
	return v
}

func (nf *nilFlow) defOrUseVar(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := nf.info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := nf.info.Uses[id].(*types.Var)
	return v
}

func (nf *nilFlow) isNilLit(e ast.Expr) bool {
	tv, ok := nf.info.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}

func isPointerType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}

// --- reporting ---

// checkNilBody solves the nilness flow over one body's CFG and walks
// each reachable block, replaying the transfer node by node and
// reporting dereferences that execute against a definitely-nil state.
func checkNilBody(pass *Pass, body *ast.BlockStmt) {
	nf := &nilFlow{
		info:     pass.TypesInfo,
		excluded: nilExcludedVars(pass.TypesInfo, body),
	}
	c := pass.Summaries.CFGOf(body)
	in := SolveCFG[nilState](c, nf)
	seen := make(map[token.Pos]bool)
	for _, blk := range c.Blocks {
		st, ok := in[blk]
		if !ok {
			continue // unreachable
		}
		for _, nd := range blk.Nodes {
			checkNilDerefs(pass, nf, nd, st, seen)
			st = nf.Transfer(nd, st)
		}
	}
}

// checkNilDerefs reports every dereference inside n of a variable the
// incoming state proves nil. Nested function literals are separate
// bodies with their own CFGs, so the walk cuts there.
func checkNilDerefs(pass *Pass, nf *nilFlow, n ast.Node, st nilState, seen map[token.Pos]bool) {
	report := func(at token.Pos, v *types.Var, what string, origin token.Pos) {
		if seen[at] {
			return
		}
		seen[at] = true
		pass.Reportf(at, "guaranteed nil pointer dereference: %s of %s, which is nil on every "+
			"path reaching this point (nil established at %s); add a nil check or annotate "+
			"with //rcvet:allow(reason)",
			what, v.Name(), shortPosAt(pass.Fset, origin))
	}
	nilVarOf := func(e ast.Expr) (*types.Var, token.Pos, bool) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil, token.NoPos, false
		}
		v, _ := nf.info.Uses[id].(*types.Var)
		if v == nil || nf.excluded[v] {
			return nil, token.NoPos, false
		}
		nv, ok := st.vals[v]
		if !ok || nv.rank != nilYes {
			return nil, token.NoPos, false
		}
		return v, nv.origin, true
	}
	ast.Inspect(n, func(e ast.Node) bool {
		switch e := e.(type) {
		case *ast.FuncLit:
			return false
		case *ast.StarExpr:
			if v, origin, ok := nilVarOf(e.X); ok {
				report(e.Pos(), v, "explicit dereference", origin)
			}
		case *ast.SelectorExpr:
			sel, ok := nf.info.Selections[e]
			if !ok {
				return true
			}
			v, origin, isNil := nilVarOf(e.X)
			if !isNil {
				return true
			}
			switch sel.Kind() {
			case types.FieldVal:
				report(e.Sel.Pos(), v, "field access "+e.Sel.Name, origin)
			case types.MethodVal:
				// Value-receiver methods auto-deref the pointer;
				// pointer-receiver methods are legal on nil.
				if fn, ok := sel.Obj().(*types.Func); ok {
					if recv := fn.Type().(*types.Signature).Recv(); recv != nil &&
						!isPointerType(recv.Type()) {
						report(e.Sel.Pos(), v, "value-receiver call "+e.Sel.Name, origin)
					}
				}
			}
		}
		return true
	})
}

// nilExcludedVars collects the variables nilflow must not track for
// this body: anything address-taken (a write through the pointer
// would invalidate the facts) and anything assigned inside a nested
// function literal (the closure may run at any point relative to the
// outer flow).
func nilExcludedVars(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	ex := make(map[*types.Var]bool)
	exclude := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok {
				ex[v] = true
			} else if v, ok := info.Defs[id].(*types.Var); ok {
				ex[v] = true
			}
		}
	}
	var depth int
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(e ast.Node) bool {
			switch e := e.(type) {
			case *ast.FuncLit:
				depth++
				walk(e.Body)
				depth--
				return false
			case *ast.UnaryExpr:
				if e.Op == token.AND {
					exclude(e.X)
				}
			case *ast.AssignStmt:
				if depth > 0 {
					for _, lhs := range e.Lhs {
						exclude(lhs)
					}
				}
			}
			return true
		})
	}
	walk(body)
	return ex
}
