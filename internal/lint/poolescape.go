package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolEscape enforces the lifetime contract of recycled memory: a
// value obtained from sync.Pool.Get or one of the repo's free lists
// (the simulator's scratch VMs/requests, the parallel codec's frame
// slots) must not outlive its lease. Two failure modes are diagnosed:
//
//   - retention: storing the pooled value (or an alias into it) in a
//     field, map, slice, package variable, or channel — a long-lived
//     structure now points into memory the recycler will hand to
//     someone else;
//   - use-after-put: reading the value after sync.Pool.Put, after a
//     free-list append, or after passing it to a function whose
//     summary says it recycles that parameter (PoolPuts).
//
// Origins are tracked through the intraprocedural value-flow layer
// (valueflow.go) and across calls through the PoolSource/PoolPuts
// summary facts, so a wrapper like getBox() → bufPool.Get() is still
// an origin two packages away. Writing *into* the pooled box
// (a.vm = x where a is pooled) is the intended use and not flagged;
// copying a value out of the box (name := a.vm.Name) is a safe copy.
var PoolEscape = &Analyzer{
	Name: "poolescape",
	Doc: "report pooled / free-list values that escape their lease: retained in " +
		"long-lived structures or used after Put/recycle, tracked through " +
		"per-function PoolSource/PoolPuts summary facts",
	Run: runPoolEscape,
}

func runPoolEscape(pass *Pass) error {
	env := &poolEnv{
		info:       pass.TypesInfo,
		fset:       pass.Fset,
		freeFields: findFreelistFields(pass.TypesInfo, pass.Files),
		resolve: func(call *ast.CallExpr) (*FuncSummary, *types.Func) {
			if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
				return pass.Summaries.Lookup(litKeyAt(pass.Fset, pass.Pkg.Path(), lit)), nil
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil {
				return nil, nil
			}
			return pass.Summaries.ResolveFunc(fn), fn
		},
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			default:
				return true
			}
			checkPoolBody(pass, env, body)
			return true
		})
	}
	return nil
}

// checkPoolBody runs both checks over one function body.
func checkPoolBody(pass *Pass, env *poolEnv, body *ast.BlockStmt) {
	if body == nil {
		return
	}
	vf := buildValueFlow(pass.TypesInfo, body)
	pooled := vf.originSet(func(e ast.Expr) bool { return env.originChain(e) != nil })
	if len(pooled) > 0 {
		checkRetention(pass, env, vf, body, pooled)
	}
	checkUseAfterPut(pass, env, body.List, pooled)
}

// checkRetention flags stores that keep a pooled value reachable past
// its lease. A store into the pooled box itself is fine; a store whose
// *target* base is not pooled but whose value aliases a pooled box is
// a retention. Free-list appends are the sanctioned recycle path, not
// a retention. Returning a pooled value is a PoolSource fact, not a
// diagnostic: wrappers are how pools are meant to be consumed.
func checkRetention(pass *Pass, env *poolEnv, vf *valueFlow, body *ast.BlockStmt, pooled map[*types.Var]bool) {
	info := pass.TypesInfo
	report := func(pos token.Pos, what string, origin []Frame) {
		pass.ReportWitness(pos, origin,
			"pooled value %s: the pool may hand this memory to another goroutine "+
				"after recycling (origin: %s); copy the needed data out instead, or "+
				"annotate with //rcvet:allow(reason)",
			what, renderChain(origin))
	}
	originOf := func(e ast.Expr) []Frame {
		if chain := env.originChain(e); chain != nil {
			return chain
		}
		if v := baseIdentVar(info, e); v != nil && pooled[v] {
			return env.varOriginChain(vf, v, make(map[*types.Var]bool))
		}
		return nil
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			if aliasesTainted(info, n.Value, pooled) {
				report(n.Pos(), "sent on a channel", originOf(n.Value))
			}
		case *ast.AssignStmt:
			// The sanctioned recycle path: s.free = append(s.free, x).
			if len(env.recycledArgs(n)) > 0 {
				return true
			}
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				switch {
				case len(n.Lhs) == len(n.Rhs):
					rhs = n.Rhs[i]
				case len(n.Rhs) == 1:
					rhs = n.Rhs[0]
				default:
					continue
				}
				if !retentionTarget(info, lhs, pooled) {
					continue
				}
				if aliasesTainted(info, rhs, pooled) {
					report(n.Pos(), "stored in a long-lived structure", originOf(rhs))
					continue
				}
				// append(longlived, pooledValue...) through an assignment.
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isAppendCall(call) {
					for _, arg := range call.Args[1:] {
						if aliasesTainted(info, arg, pooled) {
							report(arg.Pos(), "appended to a long-lived slice", originOf(arg))
						}
					}
				}
			}
		}
		return true
	})
}

// retentionTarget reports whether an assignment target outlives the
// function: a field or element of something *not* itself pooled, or a
// package-level variable. Plain locals (including pooled boxes being
// written into) are not retention targets.
func retentionTarget(info *types.Info, lhs ast.Expr, pooled map[*types.Var]bool) bool {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		if v := baseIdentVar(info, x); v != nil && pooled[v] {
			return false // writing into the pooled box is the intended use
		}
		return true
	case *ast.Ident:
		v, ok := info.Uses[x].(*types.Var)
		if !ok || v.Pkg() == nil {
			return false
		}
		return v.Pkg().Scope().Lookup(v.Name()) == v // package-level variable
	}
	return false
}

func isAppendCall(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "append" && len(call.Args) >= 2
}

// checkUseAfterPut walks each statement list in order: once a
// statement recycles a variable (Pool.Put, free-list append, or a call
// with a PoolPuts summary), any later use of that variable in the same
// list is a use of memory another goroutine may already own.
// Reassigning the variable starts a fresh lease. Deferred puts run at
// function exit and are ignored. Nested lists (blocks, ifs, loops) are
// checked independently; a put inside a branch does not poison
// statements after the branch — conservative in the quiet direction.
func checkUseAfterPut(pass *Pass, env *poolEnv, stmts []ast.Stmt, pooled map[*types.Var]bool) {
	dead := make(map[*types.Var][]Frame)
	for _, st := range stmts {
		// Uses of dead variables in this statement (before it can
		// reassign or re-recycle anything).
		if len(dead) > 0 {
			reportDeadUses(pass, env, st, dead)
		}
		// A reassignment revives the variable.
		if as, ok := st.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if v, _ := pass.TypesInfo.Defs[id].(*types.Var); v != nil {
						delete(dead, v)
					} else if v, _ := pass.TypesInfo.Uses[id].(*types.Var); v != nil {
						delete(dead, v)
					}
				}
			}
		}
		// New recycles introduced by this statement.
		for _, arg := range env.recycledArgs(st) {
			if v := baseIdentVar(pass.TypesInfo, arg); v != nil {
				dead[v] = []Frame{{Pos: env.shortPos(st.Pos()), Call: "recycled here"}}
			}
		}
		// Recurse into nested statement lists.
		for _, nested := range nestedStmtLists(st) {
			checkUseAfterPut(pass, env, nested, pooled)
		}
	}
}

// reportDeadUses flags identifiers inside one statement that name a
// recycled variable. Function literals are cut: they are separate
// summary nodes and their execution time is not statically ordered
// against the put.
func reportDeadUses(pass *Pass, env *poolEnv, st ast.Stmt, dead map[*types.Var][]Frame) {
	ast.Inspect(st, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			v, ok := pass.TypesInfo.Uses[n].(*types.Var)
			if !ok {
				return true
			}
			if witness, isDead := dead[v]; isDead {
				pass.ReportWitness(n.Pos(), witness,
					"use of %s after it was recycled (%s): the pool may already have "+
						"handed this memory to another goroutine; recycle after the last "+
						"use, or annotate with //rcvet:allow(reason)",
					n.Name, renderChain(witness))
				delete(dead, v) // one diagnostic per lease
			}
		}
		return true
	})
}

// nestedStmtLists returns the statement lists nested directly inside
// one statement, for independent use-after-put checking.
func nestedStmtLists(st ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	switch st := st.(type) {
	case *ast.BlockStmt:
		out = append(out, st.List)
	case *ast.IfStmt:
		out = append(out, st.Body.List)
		if st.Else != nil {
			out = append(out, nestedStmtLists(st.Else)...)
		}
	case *ast.ForStmt:
		out = append(out, st.Body.List)
	case *ast.RangeStmt:
		out = append(out, st.Body.List)
	case *ast.SwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.LabeledStmt:
		out = append(out, nestedStmtLists(st.Stmt)...)
	}
	return out
}
