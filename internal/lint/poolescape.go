package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolEscape enforces the lifetime contract of recycled memory: a
// value obtained from sync.Pool.Get or one of the repo's free lists
// (the simulator's scratch VMs/requests, the parallel codec's frame
// slots) must not outlive its lease. Two failure modes are diagnosed:
//
//   - retention: storing the pooled value (or an alias into it) in a
//     field, map, slice, package variable, or channel — a long-lived
//     structure now points into memory the recycler will hand to
//     someone else;
//   - use-after-put: reading the value after sync.Pool.Put, after a
//     free-list append, or after passing it to a function whose
//     summary says it recycles that parameter (PoolPuts).
//
// Origins are tracked through the intraprocedural value-flow layer
// (valueflow.go) and across calls through the PoolSource/PoolPuts
// summary facts, so a wrapper like getBox() → bufPool.Get() is still
// an origin two packages away. Writing *into* the pooled box
// (a.vm = x where a is pooled) is the intended use and not flagged;
// copying a value out of the box (name := a.vm.Name) is a safe copy.
var PoolEscape = &Analyzer{
	Name: "poolescape",
	Doc: "report pooled / free-list values that escape their lease: retained in " +
		"long-lived structures or used after Put/recycle, tracked through " +
		"per-function PoolSource/PoolPuts summary facts",
	Run: runPoolEscape,
}

func runPoolEscape(pass *Pass) error {
	env := &poolEnv{
		info:       pass.TypesInfo,
		fset:       pass.Fset,
		freeFields: findFreelistFields(pass.TypesInfo, pass.Files),
		resolve: func(call *ast.CallExpr) (*FuncSummary, *types.Func) {
			if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
				return pass.Summaries.Lookup(litKeyAt(pass.Fset, pass.Pkg.Path(), lit)), nil
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil {
				return nil, nil
			}
			return pass.Summaries.ResolveFunc(fn), fn
		},
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			default:
				return true
			}
			checkPoolBody(pass, env, body)
			return true
		})
	}
	return nil
}

// checkPoolBody runs both checks over one function body.
func checkPoolBody(pass *Pass, env *poolEnv, body *ast.BlockStmt) {
	if body == nil {
		return
	}
	vf := buildValueFlow(pass.TypesInfo, body)
	pooled := vf.originSet(func(e ast.Expr) bool { return env.originChain(e) != nil })
	if len(pooled) > 0 {
		checkRetention(pass, env, vf, body, pooled)
	}
	checkUseAfterPut(pass, env, body)
}

// checkRetention flags stores that keep a pooled value reachable past
// its lease. A store into the pooled box itself is fine; a store whose
// *target* base is not pooled but whose value aliases a pooled box is
// a retention. Free-list appends are the sanctioned recycle path, not
// a retention. Returning a pooled value is a PoolSource fact, not a
// diagnostic: wrappers are how pools are meant to be consumed.
func checkRetention(pass *Pass, env *poolEnv, vf *valueFlow, body *ast.BlockStmt, pooled map[*types.Var]bool) {
	info := pass.TypesInfo
	report := func(pos token.Pos, what string, origin []Frame) {
		pass.ReportWitness(pos, origin,
			"pooled value %s: the pool may hand this memory to another goroutine "+
				"after recycling (origin: %s); copy the needed data out instead, or "+
				"annotate with //rcvet:allow(reason)",
			what, renderChain(origin))
	}
	originOf := func(e ast.Expr) []Frame {
		if chain := env.originChain(e); chain != nil {
			return chain
		}
		if v := baseIdentVar(info, e); v != nil && pooled[v] {
			return env.varOriginChain(vf, v, make(map[*types.Var]bool))
		}
		return nil
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			if aliasesTainted(info, n.Value, pooled) {
				report(n.Pos(), "sent on a channel", originOf(n.Value))
			}
		case *ast.AssignStmt:
			// The sanctioned recycle path: s.free = append(s.free, x).
			if len(env.recycledArgs(n)) > 0 {
				return true
			}
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				switch {
				case len(n.Lhs) == len(n.Rhs):
					rhs = n.Rhs[i]
				case len(n.Rhs) == 1:
					rhs = n.Rhs[0]
				default:
					continue
				}
				if !retentionTarget(info, lhs, pooled) {
					continue
				}
				if aliasesTainted(info, rhs, pooled) {
					report(n.Pos(), "stored in a long-lived structure", originOf(rhs))
					continue
				}
				// append(longlived, pooledValue...) through an assignment.
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isAppendCall(call) {
					for _, arg := range call.Args[1:] {
						if aliasesTainted(info, arg, pooled) {
							report(arg.Pos(), "appended to a long-lived slice", originOf(arg))
						}
					}
				}
			}
		}
		return true
	})
}

// retentionTarget reports whether an assignment target outlives the
// function: a field or element of something *not* itself pooled, or a
// package-level variable. Plain locals (including pooled boxes being
// written into) are not retention targets.
func retentionTarget(info *types.Info, lhs ast.Expr, pooled map[*types.Var]bool) bool {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		if v := baseIdentVar(info, x); v != nil && pooled[v] {
			return false // writing into the pooled box is the intended use
		}
		return true
	case *ast.Ident:
		v, ok := info.Uses[x].(*types.Var)
		if !ok || v.Pkg() == nil {
			return false
		}
		return v.Pkg().Scope().Lookup(v.Name()) == v // package-level variable
	}
	return false
}

func isAppendCall(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "append" && len(call.Args) >= 2
}

// deadState maps each variable that MAY have been recycled on some
// path reaching the current point to the witness of its recycle site.
type deadState map[*types.Var][]Frame

// deadFlow is the may-dead forward problem checkUseAfterPut solves
// over the CFG: once a node recycles a variable (Pool.Put, free-list
// append, or a call with a PoolPuts summary), the variable is dead on
// every path out of that node until a reassignment revives it. Solving
// on the CFG — instead of the old per-statement-list walk — makes the
// analysis see through branches (a put inside `if` poisons the code
// after the join, because SOME execution recycled it) and around loop
// back edges (a put at the bottom of a loop body kills the use at the
// top of the next iteration).
type deadFlow struct {
	env  *poolEnv
	info *types.Info
}

func (d *deadFlow) Boundary() deadState                  { return nil }
func (d *deadFlow) Refine(e Edge, s deadState) deadState { return s }

func (d *deadFlow) Equal(a, b deadState) bool {
	if len(a) != len(b) {
		return false
	}
	// Key-set equality: the witness is fixed at the recycle site, so
	// two states with the same dead variables are the same state.
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

func (d *deadFlow) Merge(a, b deadState) deadState {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make(deadState, len(a)+len(b))
	for k, w := range a {
		out[k] = w
	}
	for k, w := range b {
		if _, ok := out[k]; !ok {
			out[k] = w
		}
	}
	return out
}

func (d *deadFlow) Transfer(n ast.Node, s deadState) deadState {
	st, ok := n.(ast.Stmt)
	if !ok {
		return s
	}
	var out deadState
	mutate := func() {
		if out == nil {
			out = make(deadState, len(s)+1)
			for k, w := range s {
				out[k] = w
			}
		}
	}
	// A reassignment revives the variable: a fresh lease (or a fresh
	// value entirely) now lives in it.
	if as, ok := st.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				var v *types.Var
				if dv, _ := d.info.Defs[id].(*types.Var); dv != nil {
					v = dv
				} else if uv, _ := d.info.Uses[id].(*types.Var); uv != nil {
					v = uv
				}
				if v != nil {
					if _, dead := s[v]; dead {
						mutate()
						delete(out, v)
					}
				}
			}
		}
	}
	// Recycles introduced by this node. recycledArgs ignores deferred
	// puts (they run at function exit), so a defer never kills the
	// body it protects.
	for _, arg := range d.env.recycledArgs(st) {
		if v := baseIdentVar(d.info, arg); v != nil {
			mutate()
			out[v] = []Frame{{Pos: d.env.shortPos(st.Pos()), Call: "recycled here"}}
		}
	}
	if out == nil {
		return s
	}
	return out
}

// checkUseAfterPut solves the may-dead flow over the body's CFG and
// replays each reachable block, reporting identifiers that read a
// variable some path has already recycled. The check runs against the
// state BEFORE the node's own transfer, so `use(x); put(x)` on one
// line order is respected, and a reassignment in the same statement
// does not retroactively excuse the read.
func checkUseAfterPut(pass *Pass, env *poolEnv, body *ast.BlockStmt) {
	flow := &deadFlow{env: env, info: pass.TypesInfo}
	c := pass.Summaries.CFGOf(body)
	in := SolveCFG[deadState](c, flow)
	seen := make(map[token.Pos]bool)
	for _, blk := range c.Blocks {
		st, ok := in[blk]
		if !ok {
			continue // unreachable
		}
		for _, nd := range blk.Nodes {
			if len(st) > 0 {
				reportDeadUses(pass, nd, st, seen)
			}
			st = flow.Transfer(nd, st)
		}
	}
}

// reportDeadUses flags identifiers inside one node that name a
// recycled variable, at most once per use position. Function literals
// are cut: they are separate summary nodes and their execution time is
// not statically ordered against the put. A plain identifier on the
// left of an assignment is a rebind, not a use — the transfer revives
// it — but a selector or index target (o.f = x) still reads the dead
// base.
func reportDeadUses(pass *Pass, n ast.Node, dead deadState, seen map[token.Pos]bool) {
	rebinds := make(map[*ast.Ident]bool)
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				rebinds[id] = true
			}
		}
	}
	ast.Inspect(n, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if rebinds[nd] {
				return true
			}
			v, ok := pass.TypesInfo.Uses[nd].(*types.Var)
			if !ok {
				return true
			}
			witness, isDead := dead[v]
			if !isDead || seen[nd.Pos()] {
				return true
			}
			seen[nd.Pos()] = true
			pass.ReportWitness(nd.Pos(), witness,
				"use of %s after it was recycled (%s): the pool may already have "+
					"handed this memory to another goroutine; recycle after the last "+
					"use, or annotate with //rcvet:allow(reason)",
				nd.Name, renderChain(witness))
		}
		return true
	})
}
