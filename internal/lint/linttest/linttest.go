// Package linttest is a golden-test harness for the rcvet analyzers,
// modeled on golang.org/x/tools/go/analysis/analysistest but built on
// the stdlib-only framework in internal/lint.
//
// A test points Run at a directory of Go source under testdata/. Lines
// that must produce a diagnostic carry a trailing comment of the form
//
//	code() // want "regexp" "second regexp"
//
// Each quoted regexp must match the message of a distinct diagnostic
// reported on that line; diagnostics on lines without a matching want,
// and wants without a matching diagnostic, fail the test. Lines
// carrying //rcvet:allow(reason) exercise the suppression path: the
// framework drops their diagnostics before matching, so an allow line
// simply expects nothing.
package linttest

import (
	"go/types"
	"os"
	"regexp"
	"strings"
	"testing"

	"resourcecentral/internal/lint"
)

// wantRe matches a want comment; quoted patterns follow.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// patRe matches one double-quoted or backquoted pattern.
var patRe = regexp.MustCompile("^(?:\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`)\\s*")

// Run loads dir as one package (resolving imports against this module)
// and checks the analyzer's diagnostics against the want comments.
//
// Before the analyzer runs, every module package the testdata imports
// (directly or transitively) is loaded and summarized into the pass's
// summary table, dependency-first — so goldens can exercise real
// cross-package summary composition against packages like
// internal/lint/fixture/lintfixture.
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	pkg, err := lint.LoadDir(".", dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	table := lint.NewSummaryTable()
	summarizeModuleImports(t, table, pkg.Types.Imports())
	diags, err := lint.RunAnalyzers(pkg, []*lint.Analyzer{a}, table)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	remaining := make(map[lineKey][]string)
	for _, d := range diags {
		k := lineKey{d.Pos.Filename, d.Pos.Line}
		remaining[k] = append(remaining[k], d.Message)
	}

	for _, f := range pkg.Syntax {
		name := pkg.Fset.Position(f.Pos()).Filename
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			k := lineKey{name, i + 1}
			for _, pat := range wantPatterns(t, name, i+1, line) {
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", name, i+1, pat, err)
				}
				if !matchAndRemove(remaining, k, re) {
					t.Errorf("%s:%d: no diagnostic matching %q (got %v)",
						name, i+1, pat, remaining[k])
				}
			}
		}
	}

	for k, msgs := range remaining {
		for _, m := range msgs {
			t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, m)
		}
	}
}

// summarizeModuleImports loads and summarizes this module's packages
// reachable from the testdata package's import graph, dependencies
// before dependents.
func summarizeModuleImports(t *testing.T, table *lint.SummaryTable, imps []*types.Package) {
	t.Helper()
	for _, imp := range imps {
		path := imp.Path()
		if !strings.HasPrefix(path, "resourcecentral/") || table.HasPackage(path) {
			continue
		}
		summarizeModuleImports(t, table, imp.Imports())
		pkgs, err := lint.Load(".", []string{path})
		if err != nil {
			t.Fatalf("loading dependency %s for summaries: %v", path, err)
		}
		for _, p := range pkgs {
			table.Summarize(p)
		}
	}
}

// wantPatterns extracts the quoted regexps of a want comment on one
// source line.
func wantPatterns(t *testing.T, file string, lineNo int, line string) []string {
	m := wantRe.FindStringSubmatch(line)
	if m == nil {
		return nil
	}
	rest := strings.TrimSpace(m[1])
	var pats []string
	for rest != "" {
		pm := patRe.FindStringSubmatch(rest)
		if pm == nil {
			t.Fatalf("%s:%d: malformed want comment near %q", file, lineNo, rest)
		}
		if pm[1] != "" {
			pats = append(pats, pm[1])
		} else {
			pats = append(pats, pm[2])
		}
		rest = strings.TrimSpace(rest[len(pm[0]):])
	}
	if len(pats) == 0 {
		t.Fatalf("%s:%d: want comment with no patterns", file, lineNo)
	}
	return pats
}

// lineKey addresses one source line of the package under test.
type lineKey struct {
	file string
	line int
}

// matchAndRemove consumes one diagnostic at k whose message matches re.
func matchAndRemove(remaining map[lineKey][]string, k lineKey, re *regexp.Regexp) bool {
	msgs := remaining[k]
	for i, m := range msgs {
		if re.MatchString(m) {
			remaining[k] = append(msgs[:i:i], msgs[i+1:]...)
			if len(remaining[k]) == 0 {
				delete(remaining, k)
			}
			return true
		}
	}
	return false
}
