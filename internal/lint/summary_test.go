package lint_test

import (
	"go/types"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"resourcecentral/internal/lint"
)

const fixturePath = "resourcecentral/internal/lint/fixture/lintfixture"

// loadOne loads a single package by pattern from this directory.
func loadOne(t testing.TB, pattern string) *lint.Package {
	t.Helper()
	pkgs, err := lint.Load(".", []string{pattern})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load(%q) returned %d packages", pattern, len(pkgs))
	}
	return pkgs[0]
}

// scopeFunc resolves a package-scope function by name.
func scopeFunc(t testing.TB, pkg *lint.Package, name string) *types.Func {
	t.Helper()
	fn, ok := pkg.Types.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("no function %s in %s", name, pkg.Path)
	}
	return fn
}

// newFixtureTable summarizes lintfixture (and its module dependency,
// the store, dependency-first) into a fresh table.
func newFixtureTable(t testing.TB) (*lint.SummaryTable, *lint.Package) {
	t.Helper()
	table := lint.NewSummaryTable()
	table.Summarize(loadOne(t, "resourcecentral/internal/store"))
	fixture := loadOne(t, fixturePath)
	table.Summarize(fixture)
	return table, fixture
}

// TestSCCFixedPoint pins the engine's convergence on mutual recursion:
// ping and pong form one SCC, only pong reads the clock, and the fixed
// point must taint both (with pong's chain naming time.Now directly).
func TestSCCFixedPoint(t *testing.T) {
	pkg, err := lint.LoadDir(".", "testdata/engine")
	if err != nil {
		t.Fatal(err)
	}
	table := lint.NewSummaryTable()
	table.Summarize(pkg)
	ping := table.ResolveFunc(scopeFunc(t, pkg, "ping"))
	pong := table.ResolveFunc(scopeFunc(t, pkg, "pong"))
	if pong.Clock == nil || !strings.Contains(pong.Clock.String(), "calls time.Now") {
		t.Fatalf("pong.Clock = %v, want a chain ending at time.Now", pong.Clock)
	}
	if ping.Clock == nil {
		t.Fatalf("ping.Clock = nil: taint did not propagate around the ping<->pong cycle")
	}
	// Idempotent: a second Summarize returns the same package summary.
	ps := table.Summarize(pkg)
	if ps != table.Package(pkg.Path) {
		t.Fatal("Summarize is not idempotent per package path")
	}
}

// TestCrossPackageComposition pins the composed witness chain of a
// two-package-deep clock read: engine.wrap -> lintfixture.Stamp ->
// lintfixture.now -> time.Now, with positions from both packages.
func TestCrossPackageComposition(t *testing.T) {
	table, _ := newFixtureTable(t)
	pkg, err := lint.LoadDir(".", "testdata/engine")
	if err != nil {
		t.Fatal(err)
	}
	table.Summarize(pkg)
	wrap := table.ResolveFunc(scopeFunc(t, pkg, "wrap"))
	if wrap.Clock == nil {
		t.Fatal("wrap.Clock = nil: cross-package composition failed")
	}
	want := regexp.MustCompile(
		`^en\.go:\d+: calls lintfixture\.Stamp -> fixture\.go:\d+: calls lintfixture\.now -> fixture\.go:\d+: calls time\.Now$`)
	if got := wrap.Clock.String(); !want.MatchString(got) {
		t.Fatalf("wrap.Clock chain = %q, want match for %q", got, want)
	}
	clean := table.ResolveFunc(scopeFunc(t, pkg, "clean"))
	if clean.Clock != nil || clean.Rand != nil || clean.Alloc != nil {
		t.Fatalf("clean has facts %+v, want none", clean)
	}
}

// TestFixtureSummaries pins the base facts the goldens rely on.
func TestFixtureSummaries(t *testing.T) {
	table, fixture := newFixtureTable(t)
	stamp := table.ResolveFunc(scopeFunc(t, fixture, "Stamp"))
	if stamp.Clock == nil || stamp.Rand != nil {
		t.Fatalf("Stamp = %+v, want Clock only", stamp)
	}
	roll := table.ResolveFunc(scopeFunc(t, fixture, "Roll"))
	if roll.Rand == nil {
		t.Fatalf("Roll = %+v, want Rand", roll)
	}
	ws := table.ResolveFunc(scopeFunc(t, fixture, "WriteState"))
	if !ws.IO {
		t.Fatal("WriteState.IO = false, want true (wraps os.WriteFile)")
	}
	joined := table.ResolveFunc(scopeFunc(t, fixture, "Joined"))
	if !joined.JoinSignal {
		t.Fatal("Joined.JoinSignal = false, want true (channel receive)")
	}
	touch := table.ResolveFunc(scopeFunc(t, fixture, "TouchStore"))
	if touch.Blocking == nil {
		t.Fatal("TouchStore.Blocking = nil, want a store-call taint")
	}
}

// TestAllEdges pins the lock-order edge lintfixture contributes and
// that edge enumeration is deterministic.
func TestAllEdges(t *testing.T) {
	table, _ := newFixtureTable(t)
	edges := table.AllEdges()
	found := false
	for _, e := range edges {
		if strings.HasSuffix(e.Held, "lintfixture.MuB") && strings.HasSuffix(e.Acquired, "lintfixture.MuA") {
			found = true
			if e.Pkg != fixturePath {
				t.Fatalf("edge Pkg = %q, want %q", e.Pkg, fixturePath)
			}
		}
		if strings.HasSuffix(e.Held, "lintfixture.MuA") {
			t.Fatalf("unexpected reverse edge %+v: fixture must contribute only MuB -> MuA", e)
		}
	}
	if !found {
		t.Fatalf("edge MuB -> MuA not found in %+v", edges)
	}
	if again := table.AllEdges(); !reflect.DeepEqual(edges, again) {
		t.Fatal("AllEdges is not deterministic")
	}
}

// TestInterfaceEntrySummaries pins the interface-method join: the obs
// Counter/Histogram hit operations must summarize allocation-free, or
// every //rcvet:hotpath function that bumps a metric would flag.
func TestInterfaceEntrySummaries(t *testing.T) {
	table := lint.NewSummaryTable()
	obs := loadOne(t, "resourcecentral/internal/obs")
	table.Summarize(obs)
	for _, name := range []string{
		"(resourcecentral/internal/obs.Counter).Inc",
		"(resourcecentral/internal/obs.Histogram).Observe",
		"(resourcecentral/internal/obs.Histogram).ObserveSince",
	} {
		sum := table.Lookup(name)
		if sum == nil {
			t.Fatalf("no interface-method summary for %s", name)
		}
		if sum.Alloc != nil {
			t.Fatalf("%s joins to may-allocate (%v); the hotpath contract depends on it being clean", name, sum.Alloc)
		}
	}
}

// TestSidecarRoundTrip pins the exported-summary format: facts survive
// the write/read cycle byte-for-byte at the chain level.
func TestSidecarRoundTrip(t *testing.T) {
	table, fixture := newFixtureTable(t)
	ps := table.Summarize(fixture)
	path := filepath.Join(t.TempDir(), "lintfixture.json")
	if err := lint.WriteSidecar(path, ps); err != nil {
		t.Fatal(err)
	}
	back, err := lint.ReadSidecar(path)
	if err != nil {
		t.Fatal(err)
	}
	if back == nil || back.Path != ps.Path || len(back.Funcs) != len(ps.Funcs) {
		t.Fatalf("round trip lost shape: %+v", back)
	}
	table2 := lint.NewSummaryTable()
	table2.AddPackage(back)
	stampKey := fixturePath + ".Stamp"
	a, b := table.Lookup(stampKey), table2.Lookup(stampKey)
	if a == nil || b == nil || a.Clock.String() != b.Clock.String() {
		t.Fatalf("Stamp chain changed across the sidecar: %v vs %v", a, b)
	}
	edges1, edges2 := table.AllEdges(), table2.AllEdges()
	if !reflect.DeepEqual(edges1, edges2) {
		t.Fatalf("edges changed across the sidecar: %v vs %v", edges1, edges2)
	}
}

// TestReadSidecarTolerant: missing and foreign files degrade to nil
// (conservative defaults), never an error that would break `go vet`.
func TestReadSidecarTolerant(t *testing.T) {
	if ps, err := lint.ReadSidecar(filepath.Join(t.TempDir(), "absent.json")); ps != nil || err != nil {
		t.Fatalf("missing sidecar: got %v, %v", ps, err)
	}
}

// TestHashPackage pins the cache key: stable for identical inputs,
// sensitive to dependency hashes.
func TestHashPackage(t *testing.T) {
	pkg := loadOne(t, "resourcecentral/internal/metric")
	h1 := lint.HashPackage(pkg, nil)
	h2 := lint.HashPackage(pkg, nil)
	if h1 == "" || h1 != h2 {
		t.Fatalf("hash unstable: %q vs %q", h1, h2)
	}
	if h3 := lint.HashPackage(pkg, []string{"dep-hash"}); h3 == h1 {
		t.Fatal("dependency hashes do not affect the package hash")
	}
}

// topoSort orders loaded packages dependencies-first, mirroring the
// rcvet driver, so summaries compose against real facts.
func topoSort(pkgs []*lint.Package) []*lint.Package {
	byPath := make(map[string]*lint.Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	seen := make(map[string]bool, len(pkgs))
	out := make([]*lint.Package, 0, len(pkgs))
	var visit func(p *lint.Package)
	visit = func(p *lint.Package) {
		if seen[p.Path] {
			return
		}
		seen[p.Path] = true
		for _, imp := range p.Types.Imports() {
			if dep := byPath[imp.Path()]; dep != nil {
				visit(dep)
			}
		}
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}

// gated mirrors the driver's per-package analyzer scoping.
func gated(path string) []*lint.Analyzer {
	var out []*lint.Analyzer
	for _, a := range lint.All() {
		if a == lint.Determinism && !lint.IsSeededPackage(path) {
			continue
		}
		if a == lint.ErrFlow && !lint.IsErrFlowPackage(path) {
			continue
		}
		out = append(out, a)
	}
	return out
}

// BenchmarkRcvetWholeRepo measures a full cold rcvet pass — summarize
// every module package bottom-up, then run all eleven analyzers — the
// cost `make lint` pays with an empty summary cache. It doubles as the
// repo-wide cleanliness gate: any diagnostic fails the benchmark.
func BenchmarkRcvetWholeRepo(b *testing.B) {
	pkgs, err := lint.Load("../..", []string{"./..."})
	if err != nil {
		b.Fatal(err)
	}
	ordered := topoSort(pkgs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table := lint.NewSummaryTable()
		for _, pkg := range ordered {
			table.Summarize(pkg)
		}
		for _, pkg := range pkgs {
			diags, err := lint.RunAnalyzers(pkg, gated(pkg.Path), table)
			if err != nil {
				b.Fatal(err)
			}
			if len(diags) != 0 {
				b.Fatalf("%s: %d unexpected findings, first: %s", pkg.Path, len(diags), diags[0].Message)
			}
		}
	}
}
