package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	Path      string
	Dir       string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load lists the packages matching patterns (in module dir), resolves
// every dependency's export data out of the build cache, and
// type-checks the matched packages from source. It shells out to
// `go list -export`, so the tree must build; run it after `go build`.
//
// This is the stdlib replacement for golang.org/x/tools/go/packages:
// dependencies are consumed as compiler export data (the same artifacts
// `go build` produces), only the packages under analysis are parsed.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Error",
		"--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var roots []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			if p.Error != nil {
				return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
			}
			roots = append(roots, p)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, func(path string) (string, error) {
		if f, ok := exports[path]; ok {
			return f, nil
		}
		return "", fmt.Errorf("no export data for %q (does the tree build?)", path)
	})

	pkgs := make([]*Package, 0, len(roots))
	for _, root := range roots {
		paths := make([]string, len(root.GoFiles))
		for i, name := range root.GoFiles {
			paths[i] = filepath.Join(root.Dir, name)
		}
		pkg, err := check(fset, imp, root.ImportPath, root.Dir, paths)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir parses and type-checks the .go files of a single directory
// that `go list` cannot see (analyzer testdata lives under testdata/,
// which package patterns skip). Imports are resolved lazily: the first
// use of each dependency runs `go list -export` for just that path, so
// testdata may import both the standard library and this module's
// packages. moduleDir anchors the `go list` invocations.
func LoadDir(moduleDir, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if n := e.Name(); strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	sort.Strings(names)

	fset := token.NewFileSet()
	imp := exportImporter(fset, lazyExportLookup(moduleDir))
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	paths := make([]string, len(names))
	for i, name := range names {
		paths[i] = filepath.Join(abs, name)
	}
	return check(fset, imp, filepath.ToSlash(filepath.Base(abs)), abs, paths)
}

// CheckFiles type-checks an explicit file list as one package,
// resolving imports through resolve (import path → gc export data
// file). It is the loading primitive for `go vet -vettool` mode, where
// the go command hands rcvet the file list and the export-file map.
func CheckFiles(importPath, dir string, filePaths []string, resolve func(string) (string, error)) (*Package, error) {
	fset := token.NewFileSet()
	imp := exportImporter(fset, resolve)
	return check(fset, imp, importPath, dir, filePaths)
}

// check parses the files (full paths) and type-checks them into a
// Package.
func check(fset *token.FileSet, imp types.Importer, path, dir string, filePaths []string) (*Package, error) {
	files := make([]*ast.File, 0, len(filePaths))
	for _, fp := range filePaths {
		f, err := parser.ParseFile(fset, fp, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{
		Path:      path,
		Dir:       dir,
		Fset:      fset,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// exportImporter adapts a path→export-file resolver into a go/types
// importer reading gc export data.
func exportImporter(fset *token.FileSet, resolve func(string) (string, error)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, err := resolve(path)
		if err != nil {
			return nil, err
		}
		return os.Open(f)
	})
}

// lazyExportLookup resolves one import path at a time with
// `go list -export`, caching results for the process lifetime.
func lazyExportLookup(moduleDir string) func(string) (string, error) {
	var mu sync.Mutex
	cache := make(map[string]string)
	return func(path string) (string, error) {
		mu.Lock()
		defer mu.Unlock()
		if f, ok := cache[path]; ok {
			return f, nil
		}
		cmd := exec.Command("go", "list", "-export", "-deps",
			"-json=ImportPath,Export", "--", path)
		cmd.Dir = moduleDir
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return "", fmt.Errorf("go list -export %s: %v\n%s", path, err, stderr.Bytes())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p listedPkg
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return "", err
			}
			if p.Export != "" {
				cache[p.ImportPath] = p.Export
			}
		}
		f, ok := cache[path]
		if !ok {
			return "", fmt.Errorf("no export data for %q", path)
		}
		return f, nil
	}
}
