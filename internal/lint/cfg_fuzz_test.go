package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// FuzzCFGBuilder drives buildCFG over arbitrary parseable Go files and
// asserts its two invariants: the builder never panics, and every
// simple statement of every function body is placed in exactly one
// block. The seed corpus is this package's own sources plus every
// lint testdata fixture, so the fuzzer starts from real control-flow
// shapes (short-circuit chains, labeled loops, selects, gotos).
func FuzzCFGBuilder(f *testing.F) {
	seedDirs := []string{"."}
	entries, err := os.ReadDir("testdata")
	if err == nil {
		for _, e := range entries {
			if e.IsDir() {
				seedDirs = append(seedDirs, filepath.Join("testdata", e.Name()))
			}
		}
	}
	for _, dir := range seedDirs {
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			continue
		}
		for _, name := range files {
			src, err := os.ReadFile(name)
			if err != nil {
				continue
			}
			f.Add(string(src))
		}
	}
	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, 0)
		if err != nil {
			return // not valid Go: nothing to build
		}
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			c := buildCFG(body)
			placed := make(map[ast.Node]int)
			for _, blk := range c.Blocks {
				for _, nd := range blk.Nodes {
					placed[nd]++
				}
			}
			for _, s := range simpleStmts(body) {
				if placed[s] != 1 {
					t.Errorf("%s: %T placed %d times, want 1",
						fset.Position(s.Pos()), s, placed[s])
				}
			}
			return true
		})
	})
}
