package lint_test

import (
	"testing"

	"resourcecentral/internal/lint"
	"resourcecentral/internal/lint/linttest"
)

// The golden tests double as the acceptance demonstration for the lint
// gate: each testdata package injects violations of one analyzer (which
// must be reported), the sanctioned idioms (which must not be), and an
// //rcvet:allow(reason) escape (which must be suppressed).

func TestDeterminism(t *testing.T) {
	linttest.Run(t, lint.Determinism, "testdata/determinism")
}

func TestMapOrder(t *testing.T) {
	linttest.Run(t, lint.MapOrder, "testdata/maporder")
}

func TestLockScope(t *testing.T) {
	linttest.Run(t, lint.LockScope, "testdata/lockscope")
}

func TestMetricName(t *testing.T) {
	linttest.Run(t, lint.MetricName, "testdata/metricname")
}

// The interprocedural analyzers' goldens import
// internal/lint/fixture/lintfixture, whose summaries the harness
// computes first: every transitive case below crosses a real package
// boundary through the summary table.

func TestLockOrder(t *testing.T) {
	linttest.Run(t, lint.LockOrder, "testdata/lockorder")
}

func TestAllocFree(t *testing.T) {
	linttest.Run(t, lint.AllocFree, "testdata/allocfree")
}

func TestGoroLeak(t *testing.T) {
	linttest.Run(t, lint.GoroLeak, "testdata/goroleak")
}

func TestErrFlow(t *testing.T) {
	linttest.Run(t, lint.ErrFlow, "testdata/errflow")
}

func TestAtomicField(t *testing.T) {
	linttest.Run(t, lint.AtomicField, "testdata/atomicfield")
}

func TestPoolEscape(t *testing.T) {
	linttest.Run(t, lint.PoolEscape, "testdata/poolescape")
}

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, lint.CtxFlow, "testdata/ctxflow")
}

func TestTypestate(t *testing.T) {
	linttest.Run(t, lint.Typestate, "testdata/typestate")
}

func TestNilFlow(t *testing.T) {
	linttest.Run(t, lint.NilFlow, "testdata/nilflow")
}
