package lint_test

import (
	"testing"

	"resourcecentral/internal/lint"
	"resourcecentral/internal/lint/linttest"
)

// The golden tests double as the acceptance demonstration for the lint
// gate: each testdata package injects violations of one analyzer (which
// must be reported), the sanctioned idioms (which must not be), and an
// //rcvet:allow(reason) escape (which must be suppressed).

func TestDeterminism(t *testing.T) {
	linttest.Run(t, lint.Determinism, "testdata/determinism")
}

func TestMapOrder(t *testing.T) {
	linttest.Run(t, lint.MapOrder, "testdata/maporder")
}

func TestLockScope(t *testing.T) {
	linttest.Run(t, lint.LockScope, "testdata/lockscope")
}

func TestMetricName(t *testing.T) {
	linttest.Run(t, lint.MetricName, "testdata/metricname")
}
