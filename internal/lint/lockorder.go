package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"strings"
)

// LockOrder builds the global lock-acquisition-order graph from the
// interprocedural summaries and reports every cycle as a potential
// deadlock, with a witness chain for each edge.
//
// An edge A -> B means: somewhere, code acquires lock class B while
// holding lock class A (directly, or through any chain of calls — the
// summaries carry transitive acquisitions). Classes name locks by
// owning type and field ("resourcecentral/internal/core.resultShard.mu")
// or package-level variable, so the same field on any instance is one
// class: the sharded result cache, the store mutex, and the obs
// registry mutex each collapse to a single node. A cycle A -> B -> A
// means two goroutines can each hold one lock while waiting for the
// other — the classic deadlock the paper's "the client library must
// never take the host down" requirement cannot tolerate.
//
// Each cycle is reported exactly once repo-wide: by the package owning
// the cycle's lexicographically smallest edge, at that edge's witness
// position. Function-local mutexes never form edges (they cannot be
// contended across functions); intentional nesting can be excused with
// //rcvet:allow(reason) on the inner acquisition, which removes the
// edge from the summary.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "build the cross-package lock-acquisition-order graph from function " +
		"summaries and report ordering cycles as potential deadlocks",
	Run: runLockOrder,
}

func runLockOrder(pass *Pass) error {
	edges := pass.Summaries.AllEdges()
	adj := make(map[string][]LockEdge)
	for _, e := range edges {
		adj[e.Held] = append(adj[e.Held], e)
	}
	for _, e := range edges {
		if e.Pkg != pass.Pkg.Path() {
			continue // another unit owns (and reports) this edge's cycles
		}
		back := shortestLockPath(adj, e.Acquired, e.Held)
		if back == nil {
			continue
		}
		cycle := append([]LockEdge{e}, back...)
		if !isCanonicalEdge(e, cycle) {
			continue // the cycle's smallest edge reports it, once
		}
		var classes []string
		for _, ce := range cycle {
			classes = append(classes, ce.Held)
		}
		classes = append(classes, e.Held)
		var witnesses []string
		for _, ce := range cycle {
			witnesses = append(witnesses, fmt.Sprintf("holding %s: %s", ce.Held, renderChain(ce.Chain)))
		}
		pass.Reportf(edgePos(pass, e),
			"lock-order cycle %s: two goroutines interleaving these acquisitions deadlock; "+
				"witnesses: [%s]; fix the ordering or annotate the inner acquisition with //rcvet:allow(reason)",
			strings.Join(classes, " -> "), strings.Join(witnesses, " | "))
	}
	return nil
}

// shortestLockPath BFSes from lock class `from` to `to` over the edge
// adjacency, returning the edge path, or nil. Deterministic: adjacency
// lists come from AllEdges' sorted order.
func shortestLockPath(adj map[string][]LockEdge, from, to string) []LockEdge {
	type state struct {
		cls  string
		path []LockEdge
	}
	seen := map[string]bool{from: true}
	queue := []state{{cls: from}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range adj[cur.cls] {
			path := append(append([]LockEdge(nil), cur.path...), e)
			if e.Acquired == to {
				return path
			}
			if !seen[e.Acquired] {
				seen[e.Acquired] = true
				queue = append(queue, state{cls: e.Acquired, path: path})
			}
		}
	}
	return nil
}

// isCanonicalEdge reports whether e is the lexicographically smallest
// (held, acquired) edge of the cycle.
func isCanonicalEdge(e LockEdge, cycle []LockEdge) bool {
	for _, ce := range cycle {
		if ce.Held < e.Held || (ce.Held == e.Held && ce.Acquired < e.Acquired) {
			return false
		}
	}
	return true
}

// edgePos recovers a token.Pos for an edge's witness (stored in the
// summary as short "file.go:line" strings) so the diagnostic lands on
// the acquisition line and //rcvet:allow suppression applies there.
func edgePos(pass *Pass, e LockEdge) token.Pos {
	short := ""
	if len(e.Chain) > 0 {
		short = e.Chain[0].Pos
	}
	base, line := splitShortPos(short)
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if tf == nil || filepath.Base(tf.Name()) != base {
			continue
		}
		if line >= 1 && line <= tf.LineCount() {
			return tf.LineStart(line)
		}
	}
	if len(pass.Files) > 0 {
		return pass.Files[0].Pos()
	}
	return token.NoPos
}

func splitShortPos(s string) (file string, line int) {
	i := strings.LastIndex(s, ":")
	if i < 0 {
		return s, 0
	}
	fmt.Sscanf(s[i+1:], "%d", &line)
	return s[:i], line
}
