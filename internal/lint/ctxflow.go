package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces cancellability where blocking meets concurrency: a
// function spawned by a `go` statement, or serving as an HTTP handler,
// whose summary carries Blocks taint (an unguarded channel op, a
// select with no escape, a sleep, a dial, an HTTP round trip — found
// by scanBlockFacts, composed through call chains) must also consume a
// cancellation signal — a context.Context's Done, a stop channel
// select case, or a close-terminated receive (Cancel fact). Without
// one, the goroutine is unkillable: shutdown leaks it, tests hang on
// it, and the serving tier's drain path waits forever. This guards
// internal/serve's hub and batcher loops and cmd/rcload's workers.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "report goroutines and HTTP handlers whose call chains block " +
		"(channel ops, sleeps, dials) without consuming a context.Context " +
		"or stop channel, making them uncancellable",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				checkCtxSpawn(pass, n)
			case *ast.FuncDecl:
				if fn, _ := pass.TypesInfo.Defs[n.Name].(*types.Func); fn != nil && isHandlerSig(fn.Signature()) {
					checkCtxHandler(pass, n, fn)
				}
			}
			return true
		})
	}
	return nil
}

// checkCtxSpawn checks one go statement's spawned function.
func checkCtxSpawn(pass *Pass, gs *ast.GoStmt) {
	var sum *FuncSummary
	var what string
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		sum = pass.Summaries.Lookup(litKeyAt(pass.Fset, pass.Pkg.Path(), fun))
		what = "goroutine literal"
	default:
		fn := calleeFunc(pass.TypesInfo, gs.Call)
		if fn == nil {
			return // function-value spawns are goroleak's finding
		}
		sum = pass.Summaries.ResolveFunc(fn)
		what = "goroutine " + shortFuncName(fn)
	}
	if sum == nil || sum.Blocks == nil || sum.Cancel {
		return
	}
	pass.ReportWitness(gs.Pos(), sum.Blocks.Chain,
		"%s blocks (%s) but consumes no cancellation signal (context.Context "+
			"or stop channel): it cannot be shut down; select on ctx.Done()/a done "+
			"channel around the blocking op, or annotate with //rcvet:allow(reason)",
		what, renderChain(sum.Blocks.Chain))
}

// checkCtxHandler checks one http.Handler-shaped function: handlers
// outlive nothing — the server cancels r.Context() when the client
// goes away, and a handler that blocks without honoring it pins a
// connection goroutine for as long as the wait lasts.
func checkCtxHandler(pass *Pass, decl *ast.FuncDecl, fn *types.Func) {
	sum := pass.Summaries.Lookup(fn.FullName())
	if sum == nil || sum.Blocks == nil || sum.Cancel {
		return
	}
	pass.ReportWitness(decl.Name.Pos(), sum.Blocks.Chain,
		"HTTP handler %s blocks (%s) without consuming r.Context(): a gone "+
			"client pins the connection goroutine until the wait ends; select on "+
			"ctx.Done() around the blocking op, or annotate with //rcvet:allow(reason)",
		shortFuncName(fn), renderChain(sum.Blocks.Chain))
}

// isHandlerSig reports whether a signature is http.Handler-shaped:
// func(http.ResponseWriter, *http.Request).
func isHandlerSig(sig *types.Signature) bool {
	if sig.Params().Len() != 2 || sig.Results().Len() != 0 {
		return false
	}
	p0, ok := sig.Params().At(0).Type().(*types.Named)
	if !ok || p0.Obj().Pkg() == nil || p0.Obj().Pkg().Path() != "net/http" || p0.Obj().Name() != "ResponseWriter" {
		return false
	}
	ptr, ok := sig.Params().At(1).Type().(*types.Pointer)
	if !ok {
		return false
	}
	p1, ok := ptr.Elem().(*types.Named)
	return ok && p1.Obj().Pkg() != nil && p1.Obj().Pkg().Path() == "net/http" && p1.Obj().Name() == "Request"
}
