package fftperiod

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestFFTKnownValues(t *testing.T) {
	// FFT of [1,0,0,0] is [1,1,1,1].
	x := []complex128{1, 0, 0, 0}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTImpulseAtOne(t *testing.T) {
	// FFT of [0,1,0,0] is [1, -i, -1, i].
	x := []complex128{0, 1, 0, 0}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	want := []complex128{1, complex(0, -1), -1, complex(0, 1)}
	for i := range want {
		if cmplx.Abs(x[i]-want[i]) > 1e-12 {
			t.Errorf("bin %d = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	if err := FFT(make([]complex128, 3)); err == nil {
		t.Error("expected error for length 3")
	}
	if err := FFT(nil); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestFFTIFFTRoundTrip(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 1))
	x := make([]complex128, 256)
	orig := make([]complex128, 256)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
		orig[i] = x[i]
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	if err := IFFT(x); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
			t.Fatalf("round trip mismatch at %d: %v vs %v", i, x[i], orig[i])
		}
	}
}

func TestFFTParseval(t *testing.T) {
	r := rand.New(rand.NewPCG(2, 2))
	n := 128
	x := make([]complex128, n)
	timeEnergy := 0.0
	for i := range x {
		x[i] = complex(r.NormFloat64(), 0)
		timeEnergy += real(x[i]) * real(x[i])
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	freqEnergy := 0.0
	for _, v := range x {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	freqEnergy /= float64(n)
	if math.Abs(timeEnergy-freqEnergy) > 1e-6 {
		t.Errorf("Parseval violated: %v vs %v", timeEnergy, freqEnergy)
	}
}

func TestPeriodogramPeakAtSinusoidFrequency(t *testing.T) {
	// 1024 samples of a sinusoid with exactly 8 cycles → peak at bin 8.
	n := 1024
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 5 + 2*math.Sin(2*math.Pi*8*float64(i)/float64(n))
	}
	power, padded, err := Periodogram(xs)
	if err != nil {
		t.Fatal(err)
	}
	if padded != n {
		t.Errorf("padded = %d, want %d", padded, n)
	}
	best := 0
	for k, p := range power {
		if p > power[best] {
			best = k
		}
	}
	if best != 8 {
		t.Errorf("peak at bin %d, want 8", best)
	}
}

func TestPeriodogramTooShort(t *testing.T) {
	if _, _, err := Periodogram([]float64{1, 2}); err == nil {
		t.Error("expected error for short series")
	}
}

func TestClassStrings(t *testing.T) {
	cases := map[Class]string{
		ClassUnknown:          "unknown",
		ClassInteractive:      "interactive",
		ClassDelayInsensitive: "delay-insensitive",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}

// diurnalSeries builds a days-long 5-minute series with a daily sinusoidal
// swing plus noise — the shape of an interactive workload.
func diurnalSeries(days int, amplitude, base, noise float64, r *rand.Rand) []float64 {
	perDay := 24 * 60 / 5
	xs := make([]float64, days*perDay)
	for i := range xs {
		phase := 2 * math.Pi * float64(i%perDay) / float64(perDay)
		xs[i] = base + amplitude*math.Sin(phase) + noise*r.NormFloat64()
		if xs[i] < 0 {
			xs[i] = 0
		}
		if xs[i] > 100 {
			xs[i] = 100
		}
	}
	return xs
}

func TestDetectorClassifiesDiurnalAsInteractive(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 3))
	d := NewDetector()
	class, ratio := d.Classify(diurnalSeries(4, 25, 40, 3, r))
	if class != ClassInteractive {
		t.Errorf("diurnal series classified %v (ratio %v), want interactive", class, ratio)
	}
}

func TestDetectorClassifiesNoiseAsDelayInsensitive(t *testing.T) {
	r := rand.New(rand.NewPCG(4, 4))
	d := NewDetector()
	perDay := 24 * 60 / 5
	xs := make([]float64, 4*perDay)
	for i := range xs {
		xs[i] = 50 + 10*r.NormFloat64()
	}
	class, _ := d.Classify(xs)
	if class != ClassDelayInsensitive {
		t.Errorf("white noise classified %v, want delay-insensitive", class)
	}
}

func TestDetectorClassifiesFlatAsDelayInsensitive(t *testing.T) {
	d := NewDetector()
	xs := make([]float64, d.MinSamples())
	for i := range xs {
		xs[i] = 70
	}
	class, ratio := d.Classify(xs)
	if class != ClassDelayInsensitive || ratio != 0 {
		t.Errorf("flat series classified %v ratio %v", class, ratio)
	}
}

func TestDetectorShortSeriesUnknown(t *testing.T) {
	d := NewDetector()
	xs := make([]float64, d.MinSamples()-1)
	class, _ := d.Classify(xs)
	if class != ClassUnknown {
		t.Errorf("short series classified %v, want unknown", class)
	}
}

func TestDetectorMinSamples(t *testing.T) {
	d := NewDetector()
	// 3 days of 5-minute samples = 864.
	if got := d.MinSamples(); got != 864 {
		t.Errorf("MinSamples = %d, want 864", got)
	}
}

func TestDetectorBatchRampNotInteractive(t *testing.T) {
	// A monotone ramp (e.g. a long batch job heating up) has low-frequency
	// energy but no diurnal peak; it must not be classified interactive.
	d := NewDetector()
	xs := make([]float64, d.MinSamples())
	for i := range xs {
		xs[i] = 100 * float64(i) / float64(len(xs))
	}
	class, _ := d.Classify(xs)
	if class == ClassInteractive {
		t.Error("monotone ramp classified as interactive")
	}
}

// Property: FFT is linear — FFT(a*x + b*y) == a*FFT(x) + b*FFT(y).
func TestQuickFFTLinearity(t *testing.T) {
	f := func(seedA, seedB uint64) bool {
		r := rand.New(rand.NewPCG(seedA, seedB))
		n := 64
		x := make([]complex128, n)
		y := make([]complex128, n)
		sum := make([]complex128, n)
		for i := 0; i < n; i++ {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
			y[i] = complex(r.NormFloat64(), r.NormFloat64())
			sum[i] = 2*x[i] + 3*y[i]
		}
		if FFT(x) != nil || FFT(y) != nil || FFT(sum) != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if cmplx.Abs(sum[i]-(2*x[i]+3*y[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: the periodogram never produces negative power and detects the
// planted frequency for any cycle count in range.
func TestQuickPeriodogramPlantedFrequency(t *testing.T) {
	f := func(cycles uint8) bool {
		k := int(cycles)%30 + 2 // 2..31 cycles
		n := 512
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Sin(2 * math.Pi * float64(k) * float64(i) / float64(n))
		}
		power, _, err := Periodogram(xs)
		if err != nil {
			return false
		}
		best := 0
		for i, p := range power {
			if p < 0 {
				return false
			}
			if p > power[best] {
				best = i
			}
		}
		return best == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
