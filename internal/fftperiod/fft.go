// Package fftperiod implements the Fast Fourier Transform and the
// diurnal-periodicity detector used by Section 3.6 of the paper to classify
// VM workloads as potentially interactive (periodic at the daily scale) or
// delay-insensitive.
package fftperiod

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"sync"
)

// twiddleCache maps transform size n to its precomputed twiddle table
// (exp(-2πi·j/n) for j in [0, n/2)). Tables are immutable once published,
// so concurrent transforms share them without copying. The detector's
// bounded classify window keeps the set of sizes small (a handful of
// powers of two), so the cache never grows past a few entries.
var twiddleCache sync.Map // int -> []complex128

// twiddles returns the twiddle table for transform size n (a power of
// two), computing and caching it on first use.
func twiddles(n int) []complex128 {
	if t, ok := twiddleCache.Load(n); ok {
		return t.([]complex128)
	}
	t := make([]complex128, n/2)
	for j := range t {
		angle := -2 * math.Pi * float64(j) / float64(n)
		t[j] = complex(math.Cos(angle), math.Sin(angle))
	}
	actual, _ := twiddleCache.LoadOrStore(n, t)
	return actual.([]complex128)
}

// FFT computes the in-place radix-2 decimation-in-time discrete Fourier
// transform of x. len(x) must be a power of two. Twiddle factors come
// from a per-size cached table, so repeated transforms of the same size
// (the detector's steady state) never call cmplx.Exp.
func FFT(x []complex128) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("fftperiod: length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterflies. At stage `size` the factor for butterfly k is
	// exp(-2πi·k/size) = tw[k·(n/size)].
	tw := twiddles(n)
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		stride := n / size
		for start := 0; start < n; start += size {
			ti := 0
			for k := 0; k < half; k++ {
				w := tw[ti]
				ti += stride
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
	return nil
}

// IFFT computes the inverse transform of x in place.
func IFFT(x []complex128) error {
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	if err := FFT(x); err != nil {
		return err
	}
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) / n
	}
	return nil
}

// nextPow2 returns the smallest power of two >= n.
func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// Plan holds reusable FFT scratch buffers so repeated periodograms and
// classifications (the offline pipeline runs one per VM) allocate nothing
// in steady state. A Plan is not safe for concurrent use; give each
// worker its own. The zero value is ready to use.
type Plan struct {
	buf   []complex128
	power []float64
}

// complexScratch returns a zeroed complex buffer of length n, growing the
// plan's scratch as needed.
func (p *Plan) complexScratch(n int) []complex128 {
	if cap(p.buf) < n {
		p.buf = make([]complex128, n)
	}
	p.buf = p.buf[:n]
	for i := range p.buf {
		p.buf[i] = 0
	}
	return p.buf
}

// powerScratch returns a power buffer of length n from the plan.
func (p *Plan) powerScratch(n int) []float64 {
	if cap(p.power) < n {
		p.power = make([]float64, n)
	}
	p.power = p.power[:n]
	return p.power
}

// Periodogram is the plan-backed variant of the package-level Periodogram.
// The returned power slice aliases the plan's scratch and is only valid
// until the plan's next use.
func (p *Plan) Periodogram(xs []float64) (power []float64, padded int, err error) {
	if len(xs) < 4 {
		return nil, 0, errors.New("fftperiod: series too short")
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))

	padded = nextPow2(len(xs))
	buf := p.complexScratch(padded)
	for i, x := range xs {
		buf[i] = complex(x-mean, 0)
	}
	if err := FFT(buf); err != nil {
		return nil, 0, err
	}
	power = p.powerScratch(padded / 2)
	for k := range power {
		power[k] = real(buf[k])*real(buf[k]) + imag(buf[k])*imag(buf[k])
	}
	return power, padded, nil
}

// Periodogram returns the power spectrum of the real series xs: the squared
// magnitude of each positive-frequency FFT bin, after mean removal and
// zero-padding to a power of two. The returned slice has padded/2 entries;
// entry k corresponds to frequency k / (padded * dt) for sample spacing dt.
// It also returns the padded length so callers can map bins to periods.
// The result is freshly allocated; hot loops should reuse a Plan instead.
func Periodogram(xs []float64) (power []float64, padded int, err error) {
	var p Plan
	return p.Periodogram(xs)
}

// Class labels a workload per Section 3.6.
type Class int

// Workload classes. Unknown covers VMs that did not run long enough
// (< MinSamples of history) for a reliable periodicity verdict.
const (
	ClassUnknown Class = iota
	ClassDelayInsensitive
	ClassInteractive
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassInteractive:
		return "interactive"
	case ClassDelayInsensitive:
		return "delay-insensitive"
	default:
		return "unknown"
	}
}

// Detector classifies utilization time series by looking for spectral
// concentration at the diurnal frequency and its harmonics.
type Detector struct {
	// SampleInterval is the spacing of the utilization series in minutes
	// (the paper's telemetry reports every 5 minutes).
	SampleIntervalMin float64
	// MinDays is the minimum series length in days to attempt
	// classification (the paper uses 3 days).
	MinDays float64
	// PowerRatio is the fraction of total (mean-removed) spectral power
	// that must be concentrated at diurnal-scale bins to call the series
	// periodic. The classification is deliberately conservative in the
	// interactive direction (Section 3.6): false interactive positives are
	// acceptable, false delay-insensitive positives are not, so the
	// threshold is low.
	PowerRatio float64
	// Harmonics is how many multiples of the diurnal frequency to include
	// (1 = 24h only; 2 adds 12h; ...). Interactive workloads often carry
	// harmonic energy because their daily shape is not sinusoidal.
	Harmonics int
}

// NewDetector returns a detector configured as in the paper: 5-minute
// samples, 3-day minimum window.
func NewDetector() *Detector {
	return &Detector{
		SampleIntervalMin: 5,
		MinDays:           3,
		PowerRatio:        0.18,
		Harmonics:         3,
	}
}

// MinSamples returns the minimum number of samples required to classify.
func (d *Detector) MinSamples() int {
	return int(d.MinDays * 24 * 60 / d.SampleIntervalMin)
}

// maxClassifyWindow bounds the series length used for classification
// (~14 days of 5-minute samples). Diurnal behaviour is stationary at that
// scale, and the bound keeps classification O(1) per VM over month-long
// traces.
const maxClassifyWindow = 4096

// Classify analyses the utilization series and returns its workload class
// plus the diurnal power ratio that drove the decision. Series shorter than
// MinSamples return ClassUnknown with ratio 0; series longer than ~14 days
// are classified on their most recent window. It allocates per call;
// batch callers should hold a Plan and use ClassifyWith.
func (d *Detector) Classify(util []float64) (Class, float64) {
	return d.ClassifyWith(nil, util)
}

// ClassifyWith is Classify with caller-owned scratch: repeated calls with
// the same plan reuse its FFT buffers and allocate nothing. A nil plan
// uses temporary buffers (equivalent to Classify).
func (d *Detector) ClassifyWith(p *Plan, util []float64) (Class, float64) {
	if len(util) < d.MinSamples() {
		return ClassUnknown, 0
	}
	if len(util) > maxClassifyWindow {
		util = util[len(util)-maxClassifyWindow:]
	}
	if p == nil {
		p = &Plan{}
	}
	power, padded, err := p.Periodogram(util)
	if err != nil {
		return ClassUnknown, 0
	}
	total := 0.0
	for _, p := range power {
		total += p
	}
	if total == 0 {
		// A perfectly flat series has no periodic structure.
		return ClassDelayInsensitive, 0
	}

	samplesPerDay := 24 * 60 / d.SampleIntervalMin
	// Frequency bin of a 24-hour period: k = padded / samplesPerDay.
	base := float64(padded) / samplesPerDay
	diurnal := 0.0
	for h := 1; h <= d.Harmonics; h++ {
		center := base * float64(h)
		// Spectral leakage: integrate a small neighbourhood around each
		// harmonic bin.
		lo := int(math.Floor(center)) - 1
		hi := int(math.Ceil(center)) + 1
		for k := lo; k <= hi; k++ {
			if k >= 1 && k < len(power) {
				diurnal += power[k]
			}
		}
	}
	ratio := diurnal / total
	if ratio >= d.PowerRatio {
		return ClassInteractive, ratio
	}
	return ClassDelayInsensitive, ratio
}
