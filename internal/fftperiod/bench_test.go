package fftperiod

import (
	"math"
	"testing"
)

func BenchmarkFFT1024(b *testing.B) {
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(math.Sin(float64(i)), 0)
	}
	buf := make([]complex128, len(x))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		if err := FFT(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFFTDetector measures the per-VM classification cost the
// offline pipeline pays for every VM in the trace: "alloc" is the
// plain Classify path, "planned" reuses one Plan's scratch buffers the
// way featuredata.Build's workers do.
func BenchmarkFFTDetector(b *testing.B) {
	d := NewDetector()
	perDay := 24 * 60 / 5
	xs := make([]float64, 12*perDay)
	for i := range xs {
		xs[i] = 30 + 25*math.Sin(2*math.Pi*float64(i%perDay)/float64(perDay)) +
			5*math.Sin(float64(i))
	}
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if cls, _ := d.Classify(xs); cls != ClassInteractive {
				b.Fatal("misclassified")
			}
		}
	})
	b.Run("planned", func(b *testing.B) {
		var p Plan
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if cls, _ := d.ClassifyWith(&p, xs); cls != ClassInteractive {
				b.Fatal("misclassified")
			}
		}
	})
}

func BenchmarkClassifyThreeDays(b *testing.B) {
	d := NewDetector()
	perDay := 24 * 60 / 5
	xs := make([]float64, 4*perDay)
	for i := range xs {
		xs[i] = 30 + 25*math.Sin(2*math.Pi*float64(i%perDay)/float64(perDay))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cls, _ := d.Classify(xs); cls != ClassInteractive {
			b.Fatal("misclassified")
		}
	}
}
